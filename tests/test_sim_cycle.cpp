// Unit tests for the 2-step cycle-based kernel: phase ordering, the
// evaluate/update split, run control and activity counters.

#include <gtest/gtest.h>

#include <vector>

#include "sim/cycle_kernel.hpp"

namespace {

using namespace ahbp::sim;

TEST(CycleKernel, StepRunsEvaluateThenUpdate) {
  CycleKernel k;
  std::vector<std::string> log;
  CallbackClocked c(
      "c", 0, [&](Cycle) { log.push_back("eval"); },
      [&](Cycle) { log.push_back("update"); });
  k.add(c);
  k.step();
  EXPECT_EQ(log, (std::vector<std::string>{"eval", "update"}));
}

TEST(CycleKernel, PhaseOrderingControlsEvaluationOrder) {
  CycleKernel k;
  std::vector<int> order;
  CallbackClocked late("late", 5, [&](Cycle) { order.push_back(5); });
  CallbackClocked early("early", 0, [&](Cycle) { order.push_back(0); });
  CallbackClocked mid("mid", 2, [&](Cycle) { order.push_back(2); });
  k.add(late);
  k.add(early);
  k.add(mid);
  k.step();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 5}));
}

TEST(CycleKernel, EqualPhasesKeepRegistrationOrder) {
  CycleKernel k;
  std::vector<int> order;
  CallbackClocked a("a", 1, [&](Cycle) { order.push_back(1); });
  CallbackClocked b("b", 1, [&](Cycle) { order.push_back(2); });
  k.add(a);
  k.add(b);
  k.step();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(CycleKernel, AllEvaluatesBeforeAnyUpdate) {
  CycleKernel k;
  std::vector<std::string> log;
  CallbackClocked a(
      "a", 0, [&](Cycle) { log.push_back("a.eval"); },
      [&](Cycle) { log.push_back("a.upd"); });
  CallbackClocked b(
      "b", 1, [&](Cycle) { log.push_back("b.eval"); },
      [&](Cycle) { log.push_back("b.upd"); });
  k.add(a);
  k.add(b);
  k.step();
  EXPECT_EQ(log, (std::vector<std::string>{"a.eval", "b.eval", "a.upd",
                                           "b.upd"}));
}

TEST(CycleKernel, NowAdvancesPerStep) {
  CycleKernel k;
  CallbackClocked c("c", 0, [](Cycle) {});
  k.add(c);
  EXPECT_EQ(k.now(), 0u);
  k.step();
  EXPECT_EQ(k.now(), 1u);
  k.run(9);
  EXPECT_EQ(k.now(), 10u);
}

TEST(CycleKernel, EvaluateSeesCurrentCycleNumber) {
  CycleKernel k;
  std::vector<Cycle> seen;
  CallbackClocked c("c", 0, [&](Cycle now) { seen.push_back(now); });
  k.add(c);
  k.run(3);
  EXPECT_EQ(seen, (std::vector<Cycle>{0, 1, 2}));
}

TEST(CycleKernel, RequestStopEndsRun) {
  CycleKernel k;
  CallbackClocked c("c", 0, [&](Cycle now) {
    if (now == 4) {
      k.request_stop();
    }
  });
  k.add(c);
  k.run(100);
  EXPECT_EQ(k.now(), 5u);  // stop takes effect at the end of cycle 4
}

TEST(CycleKernel, RunUntilPredicate) {
  CycleKernel k;
  int counter = 0;
  CallbackClocked c("c", 0, [&](Cycle) { ++counter; });
  k.add(c);
  const Cycle ran = k.run_until([&] { return counter >= 7; }, 1000);
  EXPECT_EQ(ran, 7u);
  EXPECT_EQ(counter, 7);
}

TEST(CycleKernel, RunUntilHonoursMaxCycles) {
  CycleKernel k;
  CallbackClocked c("c", 0, [](Cycle) {});
  k.add(c);
  const Cycle ran = k.run_until([] { return false; }, 25);
  EXPECT_EQ(ran, 25u);
}

TEST(CycleKernel, EvaluationCounterCountsComponents) {
  CycleKernel k;
  CallbackClocked a("a", 0, [](Cycle) {});
  CallbackClocked b("b", 0, [](Cycle) {});
  k.add(a);
  k.add(b);
  k.run(10);
  EXPECT_EQ(k.evaluations(), 20u);
}

TEST(CycleKernel, ComponentAddedLateJoinsNextStep) {
  CycleKernel k;
  int a_runs = 0, b_runs = 0;
  CallbackClocked a("a", 0, [&](Cycle) { ++a_runs; });
  CallbackClocked b("b", 0, [&](Cycle) { ++b_runs; });
  k.add(a);
  k.step();
  k.add(b);
  k.step();
  EXPECT_EQ(a_runs, 2);
  EXPECT_EQ(b_runs, 1);
}

TEST(CycleKernel, TwoStepStateExchange) {
  // Classic 2-step usage: both components read each other's committed
  // state during evaluate and commit in update — order independence.
  CycleKernel k;
  int a_state = 0, b_state = 100;
  int a_next = 0, b_next = 0;
  CallbackClocked a(
      "a", 0, [&](Cycle) { a_next = b_state + 1; },
      [&](Cycle) { a_state = a_next; });
  CallbackClocked b(
      "b", 1, [&](Cycle) { b_next = a_state + 1; },
      [&](Cycle) { b_state = b_next; });
  k.add(a);
  k.add(b);
  k.step();
  // Both read pre-cycle values: a sees b=100, b sees a=0.
  EXPECT_EQ(a_state, 101);
  EXPECT_EQ(b_state, 1);
}

}  // namespace
