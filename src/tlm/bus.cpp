#include "tlm/bus.hpp"

#include <algorithm>
#include <cstdio>

#include "assertions/assert.hpp"
#include "obs/timeline.hpp"

namespace ahbp::tlm {

namespace {

/// Bus-track span label: owner + direction + address.
std::string owner_label(std::string_view owner, const ahb::Transaction& t) {
  char buf[56];
  std::snprintf(buf, sizeof(buf), "%.*s %s@0x%llx",
                static_cast<int>(owner.size()), owner.data(),
                t.dir == ahb::Dir::kRead ? "rd" : "wr",
                static_cast<unsigned long long>(t.addr));
  return buf;
}

}  // namespace

AhbPlusBus::AhbPlusBus(const ahb::BusConfig& cfg, ahb::QosRegisterFile& qos,
                       TlmDdrc& ddrc, unsigned masters,
                       chk::ViolationLog* checker_log)
    : cfg_(cfg),
      qos_(qos),
      ddrc_(ddrc),
      masters_(masters),
      arbiter_(cfg_, qos),
      wbuf_(cfg.write_buffer_depth, cfg.drain_watermark,
            cfg.write_buffer_enabled),
      slots_(masters),
      master_profiles_(masters) {
  AHBP_ASSERT_MSG(masters >= 1 && masters <= 30,
                  "AhbPlusBus supports 1..30 masters");
  AHBP_ASSERT_MSG(ahb::valid_beat_bytes(cfg.data_width_bytes),
                  "bus.data_width_bytes must be 1, 2, 4 or 8");
  AHBP_ASSERT(qos.masters() == masters);
  for (unsigned m = 0; m < masters; ++m) {
    master_profiles_[m].name = "M" + std::to_string(m);
  }
  if (checker_log != nullptr) {
    checker_.emplace(
        chk::CheckerConfig{masters, cfg.write_buffer_depth,
                           cfg.write_buffer_enabled, cfg.data_width_bytes},
        *checker_log);
    qos_checker_.emplace(qos_, *checker_log);
  }
}

// --------------------------------------------------------- master port

void AhbPlusBus::request(ahb::MasterId m, const ahb::Transaction& txn,
                         sim::Cycle now) {
  AHBP_ASSERT(m < masters_);
  Slot& s = slots_[m];
  AHBP_ASSERT_MSG(s.st == Slot::St::kIdle,
                  "master issued a request with one already outstanding");
  AHBP_ASSERT_MSG(ahb::structurally_valid(txn), "malformed transaction");
  s.txn = txn;
  s.txn.master = m;
  s.txn.issued_at = now;
  s.st = Slot::St::kRequested;
  arbiter_.on_request(m, now);
}

GrantPoll AhbPlusBus::poll_grant(ahb::MasterId m) const {
  AHBP_ASSERT(m < masters_);
  const Slot& s = slots_[m];
  switch (s.st) {
    case Slot::St::kOwner:
      return GrantPoll::kGranted;
    case Slot::St::kBuffered:
      return GrantPoll::kBuffered;
    default:
      return GrantPoll::kWait;
  }
}

bool AhbPlusBus::poll_done(ahb::MasterId m, ahb::Transaction& out) {
  AHBP_ASSERT(m < masters_);
  Slot& s = slots_[m];
  if (s.st != Slot::St::kDone) {
    return false;
  }
  // Copy (not move): the slot keeps its beat-buffer capacity for the
  // master's next transaction, and `out` is the caller's reusable scratch.
  out = s.txn;
  s.st = Slot::St::kIdle;
  return true;
}

void AhbPlusBus::set_timeline(obs::Timeline& tl, unsigned pid) {
  tl_ = &tl;
  for (unsigned m = 0; m < masters_; ++m) {
    master_profiles_[m].timeline = &tl;
    master_profiles_[m].timeline_track =
        tl.add_track(pid, master_profiles_[m].name);
  }
  tl_bus_track_ = tl.add_track(pid, "bus");
  tl_wbuf_track_ = tl.add_track(pid, "wbuf");
  tl_last_occ_ = ~0U;
}

bool AhbPlusBus::quiescent() const noexcept {
  if (inflight_active_ || granted_ || !wbuf_.empty() || ddrc_.busy()) {
    return false;
  }
  if (ddrc_.channels().pending_write_chunks() != 0) {
    return false;
  }
  return std::all_of(slots_.begin(), slots_.end(), [](const Slot& s) {
    return s.st == Slot::St::kIdle;
  });
}

// --------------------------------------------------------- quantum skip

sim::Cycle AhbPlusBus::idle_until(sim::Cycle now) const noexcept {
  if (inflight_active_ || granted_ || !wbuf_.empty()) {
    return now;
  }
  for (const Slot& s : slots_) {
    if (s.st != Slot::St::kIdle) {
      return now;
    }
  }
  return ddrc_.idle_until(now);
}

void AhbPlusBus::skip_idle(sim::Cycle from, sim::Cycle to) {
  AHBP_ASSERT(to > from);
  const sim::Cycle n = to - from;
  // Mirror of evaluate() on an inert bus, cycle by cycle: tick() is the
  // epoch clock (closed-form catch-up); begin/BI/step/beat/completion/
  // arbitration/absorption all no-op with no requests and an idle DDRC;
  // what remains is bookkeeping, which commutes across cycles and
  // collapses to bulk updates.
  arbiter_.skip_idle(from, to);
  // do_arbitration() with zero hazard candidates clears a stale hazard
  // flag on the first idle cycle; the call is idempotent after that.
  wbuf_.clear_hazard_if_unneeded(false);
  for (unsigned m = 0; m < masters_; ++m) {
    master_profiles_[m].stalls.add_n(obs::StallClass::kThink, n);
  }
  wbuf_.sample_n(n);
  bus_profile_.sample_idle_n(n);
  // Occupancy counter: constant (empty) over the stretch, so at most the
  // first skipped cycle can emit a sample.
  if (tl_ != nullptr && wbuf_.enabled() && wbuf_.occupancy() != tl_last_occ_) {
    tl_last_occ_ = wbuf_.occupancy();
    tl_->counter(tl_wbuf_track_, from, "occupancy", tl_last_occ_);
  }
  if (checker_) {
    checker_->skip_idle(from, to);
  }
}

// ------------------------------------------------------------ evaluate

void AhbPlusBus::evaluate(sim::Cycle now) {
  arbiter_.tick(now);

  // Buffered writes finish once their data has streamed into the buffer.
  for (Slot& s : slots_) {
    if (s.st == Slot::St::kBuffered && now >= s.buffered_done_at) {
      s.st = Slot::St::kDone;
    }
  }

  do_begin(now);

  // BI downstream: advertise the next transaction (the pending grant)
  // ahead of its address phase so the DDRC can prep the bank (§2, §3.4).
  BiDownstream down;
  if (cfg_.bi_hints_enabled && granted_) {
    const ahb::Transaction& next = *granted_ == masters_
                                       ? wbuf_.front()
                                       : slots_[*granted_].txn;
    down.next_coord = ddrc_.coord_of(next.addr);
    down.next_is_write = next.dir == ahb::Dir::kWrite;
  }
  ddrc_.bi_downstream(down);

  ddrc_.step(now);

  const bool moved = move_data_beat(now);
  const bool busy = inflight_active_;
  const unsigned moved_bytes =
      moved && inflight_active_ ? ahb::size_bytes(inflight_.txn.size) : 0;

  // Capture the checker view before completion tears the transfer down —
  // the final beat must still be visible as an accepted SEQ/NONSEQ cycle.
  chk::BusCycleView view;
  if (checker_) {
    view.cycle = now;
    if (inflight_active_) {
      const Inflight& f = inflight_;
      const unsigned shown =
          moved ? f.beat - 1 : std::min(f.beat, f.txn.beats - 1);
      view.hmaster = f.owner;
      view.htrans = shown == 0 ? ahb::Trans::kNonSeq : ahb::Trans::kSeq;
      view.haddr =
          ahb::burst_beat_addr(f.txn.addr, f.txn.size, f.txn.burst, shown);
      view.hburst = f.txn.burst;
      view.hsize = f.txn.size;
      view.hwrite = f.txn.dir;
      view.hready = moved;
    } else {
      view.hmaster = ahb::kNoMaster;
      view.htrans = ahb::Trans::kIdle;
      view.hready = true;
    }
  }

  do_completion(now);
  do_arbitration(now);
  do_absorption(now);
  account_stalls(now);

  unsigned requesters = wbuf_.requesting() ? 1U : 0U;
  for (const Slot& s : slots_) {
    if (s.st == Slot::St::kRequested) {
      ++requesters;
    }
  }
  wbuf_.sample();
  bus_profile_.sample(requesters, busy, moved_bytes);
  if (tl_ != nullptr && wbuf_.enabled() && wbuf_.occupancy() != tl_last_occ_) {
    tl_last_occ_ = wbuf_.occupancy();
    tl_->counter(tl_wbuf_track_, now, "occupancy", tl_last_occ_);
  }
  emit_view(now, view);
}

void AhbPlusBus::account_stalls(sim::Cycle now) {
  for (unsigned m = 0; m < masters_; ++m) {
    const Slot& s = slots_[m];
    obs::StallClass c = obs::StallClass::kThink;
    switch (s.st) {
      case Slot::St::kIdle:
        c = obs::StallClass::kThink;
        break;
      case Slot::St::kOwner:
      case Slot::St::kBuffered:
      case Slot::St::kDone:
        c = obs::StallClass::kRunning;
        break;
      case Slot::St::kRequested:
        if (s.txn.dir == ahb::Dir::kWrite && wbuf_.enabled() && wbuf_.full()) {
          c = obs::StallClass::kWbufFull;
        } else if (inflight_active_) {
          c = obs::StallClass::kBusBusy;
        } else if (ddrc_.busy() || !ddrc_.bi_upstream(now).access_permitted) {
          c = obs::StallClass::kDdrBusy;
        } else {
          c = obs::StallClass::kArbWait;
        }
        break;
    }
    master_profiles_[m].stalls.add(c);
  }
}

void AhbPlusBus::do_begin(sim::Cycle now) {
  if (!granted_ || inflight_active_ || ddrc_.busy()) {
    return;
  }
  // Calibrated grant-to-address latency: models the registered HGRANT,
  // HMASTER mux handover and NONSEQ launch of the pin-level fabric.
  if (now < granted_cycle_ + cfg_.tlm_grant_to_start) {
    return;
  }
  // Rebuild the in-flight record in place (beat buffers keep capacity).
  Inflight& f = inflight_;
  f.owner = *granted_;
  f.from_wbuf = *granted_ == masters_;
  f.beat = 0;
  if (f.from_wbuf) {
    AHBP_ASSERT_MSG(!wbuf_.empty(), "wbuf grant with empty buffer");
    f.txn = wbuf_.front();
  } else {
    Slot& s = slots_[f.owner];
    AHBP_ASSERT(s.st == Slot::St::kRequested);
    s.st = Slot::St::kOwner;
    f.txn = s.txn;
    f.txn.started_at = now;
    s.txn.started_at = now;
    if (f.txn.locked) {
      lock_owner_ = f.owner;
    }
  }
  if (f.txn.dir == ahb::Dir::kRead) {
    f.txn.data.assign(f.txn.beats, 0);
  }
  f.addr_cycle = now;
  ddrc_.begin(f.txn, now);
  if (tl_ != nullptr) {
    tl_->begin(tl_bus_track_, now,
               owner_label(f.from_wbuf ? std::string_view("wbuf")
                                       : master_profiles_[f.owner].name,
                           f.txn));
  }
  inflight_active_ = true;
  granted_.reset();
}

bool AhbPlusBus::move_data_beat(sim::Cycle now) {
  if (!inflight_active_) {
    return false;
  }
  Inflight& f = inflight_;
  if (f.beat >= f.txn.beats) {
    return false;
  }
  if (f.txn.dir == ahb::Dir::kRead) {
    if (!ddrc_.read_beat_available(now)) {
      return false;
    }
    f.txn.data[f.beat] = ddrc_.take_read_beat(now);
    ++f.beat;
    return true;
  }
  // Write: data phase begins the cycle after the address phase (AHB
  // pipeline), then one beat per cycle while the DDRC accepts.
  if (now <= f.addr_cycle || !ddrc_.write_beat_ready(now)) {
    return false;
  }
  ddrc_.put_write_beat(now, f.txn.data[f.beat]);
  ++f.beat;
  return true;
}

void AhbPlusBus::do_completion(sim::Cycle now) {
  if (!inflight_active_ || inflight_.beat < inflight_.txn.beats ||
      !ddrc_.done()) {
    return;
  }
  ddrc_.finish();
  Inflight& f = inflight_;
  f.txn.finished_at = now;
  if (f.from_wbuf) {
    wbuf_.pop_front(now);
  } else {
    Slot& s = slots_[f.owner];
    AHBP_ASSERT(s.st == Slot::St::kOwner);
    s.txn = f.txn;  // return read data + timestamps to the master
    s.st = Slot::St::kDone;
    master_profiles_[f.owner].record(s.txn, /*buffered=*/false);
    if (f.txn.locked) {
      lock_owner_ = ahb::kNoMaster;
    }
  }
  if (tl_ != nullptr) {
    tl_->end(tl_bus_track_, now);
  }
  inflight_active_ = false;
}

void AhbPlusBus::do_arbitration(sim::Cycle now) {
  if (granted_) {
    return;  // a grant is already waiting to begin
  }
  // Request pipelining (§2): overlap the next arbitration with the tail of
  // the current transfer.  Without it, arbitrate only on an idle bus.
  if (inflight_active_) {
    if (!cfg_.request_pipelining) {
      return;
    }
    const unsigned remaining = inflight_.txn.beats - inflight_.beat;
    if (remaining > 2) {
      return;
    }
  }
  // BI upstream: bank status + admission (refresh wins over new grants).
  const BiUpstream up = ddrc_.bi_upstream(now);
  if (!up.access_permitted) {
    return;
  }

  ArbContext& ctx = ctx_;
  ctx.now = now;
  ctx.cfg = &cfg_;
  ctx.qos = &qos_;
  ctx.masters = masters_;
  ctx.lock_owner = lock_owner_;
  ctx.candidates.assign(masters_ + 1, ArbCandidate{});
  bool any_hazard = false;
  for (unsigned m = 0; m < masters_; ++m) {
    const Slot& s = slots_[m];
    ArbCandidate& c = ctx.candidates[m];
    if (s.st != Slot::St::kRequested) {
      continue;
    }
    // Edge-sampled requests: the arbiter sees a request one cycle after
    // the master raised it, as the registered fabric does.
    if (s.txn.issued_at >= now) {
      continue;
    }
    c.requesting = true;
    c.is_write = s.txn.dir == ahb::Dir::kWrite;
    c.locked = s.txn.locked;
    c.beats = s.txn.beats;
    c.requested_at = s.txn.issued_at;
    c.affinity = cfg_.bi_hints_enabled
                     ? ddrc_.affinity(s.txn.addr, now)
                     : ddr::BankAffinity::kIdle;
    // Read-after-write (and write-after-write) ordering against the
    // buffer: an overlapping transaction must not be granted before the
    // buffered writes drain.
    if (wbuf_.overlaps(s.txn.addr, s.txn.addr + s.txn.bytes())) {
      c.blocked_by_hazard = true;
      wbuf_.flag_hazard();
      any_hazard = true;
      if (s.txn.dir == ahb::Dir::kRead) {
        wbuf_.count_forward();
      }
    }
  }
  ArbCandidate& wc = ctx.candidates[masters_];
  // The front entry may already be draining (granted while the previous
  // drain streams its tail); the buffer only re-requests while it holds a
  // further entry to drain.
  const unsigned draining =
      inflight_active_ && inflight_.from_wbuf ? 1U : 0U;
  wc.requesting = wbuf_.requesting() && wbuf_.occupancy() > draining;
  if (wc.requesting) {
    const ahb::Transaction& next = wbuf_.peek(draining);
    wc.is_write = true;
    wc.beats = next.beats;
    wc.affinity = cfg_.bi_hints_enabled ? ddrc_.affinity(next.addr, now)
                                        : ddr::BankAffinity::kIdle;
  }
  ctx.wbuf_urgent = wbuf_.urgent();
  wbuf_.clear_hazard_if_unneeded(any_hazard);

  const auto grant = arbiter_.arbitrate(ctx);
  if (!grant) {
    return;
  }
  granted_ = grant->master;
  granted_cycle_ = now;
  if (tl_ != nullptr) {
    tl_->instant(tl_bus_track_, now,
                 grant->is_wbuf
                     ? std::string("grant wbuf")
                     : "grant " + master_profiles_[grant->master].name);
  }
  ++bus_profile_.grants;
  if (!inflight_active_ || inflight_.owner != grant->master) {
    ++bus_profile_.handovers;
  }
  if (!grant->is_wbuf) {
    Slot& s = slots_[grant->master];
    s.txn.granted_at = now;
    if (qos_checker_) {
      qos_checker_->on_grant(grant->master, grant->waited, now);
    }
    if (grant->waited > qos_.config(grant->master).objective &&
        qos_.config(grant->master).cls == ahb::MasterClass::kRealTime) {
      ++master_profiles_[grant->master].qos_misses;
      ++qos_.state(grant->master).qos_misses;
    }
  }
}

void AhbPlusBus::do_absorption(sim::Cycle now) {
  if (!wbuf_.enabled()) {
    return;
  }
  for (unsigned m = 0; m < masters_; ++m) {
    Slot& s = slots_[m];
    if (s.st != Slot::St::kRequested || s.txn.dir != ahb::Dir::kWrite) {
      continue;
    }
    if (s.txn.issued_at >= now) {
      continue;  // not yet visible to the arbiter — no absorb decision yet
    }
    if (granted_ && *granted_ == m) {
      wbuf_.count_bypass();  // won arbitration outright: no buffering
      continue;
    }
    // Never absorb a write that overlaps the address range of a granted,
    // not-yet-started read — the read would then see stale memory.
    if (granted_ && *granted_ != masters_) {
      const ahb::Transaction& g = slots_[*granted_].txn;
      const bool overlap =
          s.txn.addr < g.addr + g.bytes() && g.addr < s.txn.addr + s.txn.bytes();
      if (overlap && g.dir == ahb::Dir::kRead) {
        continue;
      }
    }
    if (wbuf_.full()) {
      wbuf_.count_full_stall();
      continue;
    }
    ahb::Transaction t = s.txn;
    t.granted_at = now;
    t.started_at = now;
    // The buffer ingests the write data at one beat per cycle (off the
    // bus); the master is released when the streaming finishes.
    t.finished_at = now + t.beats;
    if (wbuf_.absorb(t, now)) {
      s.txn = t;
      s.st = Slot::St::kBuffered;
      s.buffered_done_at = t.finished_at;
      qos_.state(static_cast<ahb::MasterId>(m)).requesting =
          false;  // request satisfied by the buffer
      master_profiles_[m].record(t, /*buffered=*/true);
    }
  }
}

void AhbPlusBus::save_state(state::StateWriter& w) const {
  w.begin("ahb-bus");
  w.put_u64(slots_.size());
  for (const Slot& s : slots_) {
    w.put_u8(static_cast<std::uint8_t>(s.st));
    ahb::save_state(w, s.txn);
    w.put_u64(s.buffered_done_at);
  }
  w.put_bool(inflight_active_);
  if (inflight_active_) {
    w.put_u8(inflight_.owner);
    ahb::save_state(w, inflight_.txn);
    w.put_u32(inflight_.beat);
    w.put_u64(inflight_.addr_cycle);
    w.put_bool(inflight_.from_wbuf);
  }
  w.put_bool(granted_.has_value());
  w.put_u8(granted_ ? *granted_ : ahb::kNoMaster);
  w.put_u64(granted_cycle_);
  w.put_u8(lock_owner_);
  arbiter_.save_state(w);
  wbuf_.save_state(w);
  bus_profile_.save_state(w);
  for (const stats::MasterProfile& p : master_profiles_) {
    p.save_state(w);
  }
  w.put_bool(checker_.has_value());
  if (checker_) {
    checker_->save_state(w);
    qos_checker_->save_state(w);
  }
  w.end();
}

void AhbPlusBus::restore_state(state::StateReader& r) {
  r.enter("ahb-bus");
  const std::uint64_t n = r.get_u64();
  if (n != slots_.size()) {
    throw state::StateError("AhbPlusBus: snapshot has " + std::to_string(n) +
                            " masters, platform has " +
                            std::to_string(slots_.size()));
  }
  for (Slot& s : slots_) {
    s.st = static_cast<Slot::St>(r.get_u8());
    ahb::restore_state(r, s.txn);
    s.buffered_done_at = r.get_u64();
  }
  if (r.get_bool()) {
    inflight_active_ = true;
    inflight_.owner = r.get_u8();
    ahb::restore_state(r, inflight_.txn);
    inflight_.beat = r.get_u32();
    inflight_.addr_cycle = r.get_u64();
    inflight_.from_wbuf = r.get_bool();
  } else {
    inflight_active_ = false;
  }
  const bool has_grant = r.get_bool();
  const ahb::MasterId g = r.get_u8();
  granted_ = has_grant ? std::optional<ahb::MasterId>(g) : std::nullopt;
  granted_cycle_ = r.get_u64();
  lock_owner_ = r.get_u8();
  arbiter_.restore_state(r);
  wbuf_.restore_state(r);
  bus_profile_.restore_state(r);
  for (stats::MasterProfile& p : master_profiles_) {
    p.restore_state(r);
  }
  state::expect_presence_match(r.get_bool(), checker_.has_value(),
                               "AhbPlusBus checkers");
  if (checker_) {
    checker_->restore_state(r);
    qos_checker_->restore_state(r);
  }
  r.leave();
}

void AhbPlusBus::emit_view(sim::Cycle now, chk::BusCycleView view) {
  (void)now;
  if (!checker_) {
    return;
  }
  for (unsigned m = 0; m < masters_; ++m) {
    if (slots_[m].st == Slot::St::kRequested) {
      view.request_mask |= 1U << m;
    }
  }
  if (wbuf_.requesting()) {
    view.request_mask |= 1U << masters_;
  }
  view.wbuf_occupancy = wbuf_.occupancy();
  checker_->on_cycle(view);
}

}  // namespace ahbp::tlm
