#include "rtl/bitlevel.hpp"

#include "ahb/types.hpp"

namespace ahbp::rtl {

BitBus::BitBus(sim::EventKernel& k, const std::string& base, unsigned width)
    : width_(width) {
  bits_.reserve(width);
  for (unsigned i = 0; i < width; ++i) {
    bits_.push_back(std::make_unique<sim::Signal<bool>>(
        k, base + ".b" + std::to_string(i)));
  }
}

void BitBus::drive(std::uint64_t v) {
  for (unsigned i = 0; i < width_; ++i) {
    bits_[i]->write(((v >> i) & 1ULL) != 0);
  }
}

std::uint64_t BitBus::sample() const {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < width_; ++i) {
    if (bits_[i]->read()) {
      v |= 1ULL << i;
    }
  }
  return v;
}

RippleIncrementer::RippleIncrementer(sim::EventKernel& k,
                                     const std::string& base, BitBus& input,
                                     sim::Signal<std::uint8_t>& step)
    : in_(input), step_(step) {
  const unsigned width = input.width();
  const unsigned nibbles = (width + 3) / 4;
  sum_ = std::make_unique<BitBus>(k, base + ".sum", width);
  signal_count_ += width;
  carry_.reserve(nibbles);
  for (unsigned n = 0; n < nibbles; ++n) {
    carry_.push_back(std::make_unique<sim::Signal<bool>>(
        k, base + ".c" + std::to_string(n)));
    ++signal_count_;
  }
  // One combinational process per nibble: adds its 4 input bits, the
  // incoming carry, and (for nibble 0) the step value; drives 4 sum bits
  // and the outgoing carry.  Carries chain the processes so an increment
  // ripples across delta cycles like a real adder netlist.
  for (unsigned n = 0; n < nibbles; ++n) {
    auto body = [this, n, width] {
      unsigned acc = 0;
      for (unsigned b = 0; b < 4; ++b) {
        const unsigned i = n * 4 + b;
        if (i < width && in_.bit(i).read()) {
          acc += 1U << b;
        }
      }
      if (n == 0) {
        acc += step_.read();
      } else if (carry_[n - 1]->read()) {
        acc += 1;
      }
      for (unsigned b = 0; b < 4; ++b) {
        const unsigned i = n * 4 + b;
        if (i < width) {
          sum_->bit(i).write(((acc >> b) & 1U) != 0);
        }
      }
      carry_[n]->write(acc >= 16);
    };
    nibbles_.push_back(std::make_unique<sim::Process>(
        k, base + ".nib" + std::to_string(n), body));
    sim::Process& p = *nibbles_.back();
    for (unsigned b = 0; b < 4; ++b) {
      const unsigned i = n * 4 + b;
      if (i < width) {
        in_.bit(i).subscribe(p);
      }
    }
    if (n == 0) {
      step_.subscribe(p);
    } else {
      carry_[n - 1]->subscribe(p);
    }
  }
}

BitLevelLayer::BitLevelLayer(sim::EventKernel& k, SharedWires& shared,
                             std::vector<MasterWires*> columns)
    : sh_(shared), cols_(std::move(columns)) {
  // Blasted shared buses: the pins of the fabric.
  haddr_bits_ = std::make_unique<BitBus>(k, "pin.haddr", 32);
  hwdata_bits_ = std::make_unique<BitBus>(k, "pin.hwdata", 32);
  hrdata_bits_ = std::make_unique<BitBus>(k, "pin.hrdata", 32);
  signal_count_ += 96;
  haddr_blast_ = std::make_unique<sim::Process>(k, "pin.haddr.blast", [this] {
    haddr_bits_->drive(sh_.haddr.read());
  });
  sh_.haddr.subscribe(*haddr_blast_);
  hwdata_blast_ = std::make_unique<sim::Process>(k, "pin.hwdata.blast", [this] {
    hwdata_bits_->drive(sh_.hwdata.read());
  });
  sh_.hwdata.subscribe(*hwdata_blast_);
  hrdata_blast_ = std::make_unique<sim::Process>(k, "pin.hrdata.blast", [this] {
    hrdata_bits_->drive(sh_.hrdata.read());
  });
  sh_.hrdata.subscribe(*hrdata_blast_);

  // Per-column: blasted address output + the ripple-carry incrementer that
  // computes the next sequential address.
  for (unsigned i = 0; i < cols_.size(); ++i) {
    ColumnBits cb;
    const std::string base = "pin.m" + std::to_string(i);
    cb.haddr_bits = std::make_unique<BitBus>(k, base + ".haddr", 32);
    signal_count_ += 32;
    MasterWires* col = cols_[i];
    BitBus* bb = cb.haddr_bits.get();
    cb.blast = std::make_unique<sim::Process>(
        k, base + ".blast", [col, bb] { bb->drive(col->haddr.read()); });
    col->haddr.subscribe(*cb.blast);

    cb.step = std::make_unique<sim::Signal<std::uint8_t>>(k, base + ".step");
    ++signal_count_;
    sim::Signal<std::uint8_t>* step = cb.step.get();
    cb.step_proc = std::make_unique<sim::Process>(
        k, base + ".stepdec", [col, step] {
          step->write(static_cast<std::uint8_t>(
              ahb::size_bytes(unpack_size(col->hsize.read()))));
        });
    col->hsize.subscribe(*cb.step_proc);

    cb.incr = std::make_unique<RippleIncrementer>(k, base + ".incr",
                                                  *cb.haddr_bits, *cb.step);
    signal_count_ += cb.incr->signal_count();
    col_bits_.push_back(std::move(cb));
  }
}

}  // namespace ahbp::rtl
