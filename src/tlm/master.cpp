#include "tlm/master.hpp"

namespace ahbp::tlm {

void TlmMaster::evaluate(sim::Cycle now) {
  switch (state_) {
    case State::kIdle: {
      if (source_.ready(now)) {
        ahb::Transaction t = source_.pop(now);
        bus_.request(id_, t, now);
        state_ = State::kWaiting;
      }
      break;
    }
    case State::kWaiting: {
      ahb::Transaction done;
      if (bus_.poll_done(id_, done)) {
        ++completed_;
        source_.on_complete(now);
        if (on_complete) {
          on_complete(done);
        }
        state_ = State::kIdle;
      }
      break;
    }
  }
}

}  // namespace ahbp::tlm
