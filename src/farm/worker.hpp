#pragma once

#include <cstddef>

/// \file worker.hpp
/// The farm worker loop: the code a spawned worker process runs.
///
/// A worker speaks the farm protocol over two stream file descriptors —
/// commands in, outcomes out (pipes when spawned locally, sockets when the
/// farm grows remote).  It holds no sweep state of its own: the Hello
/// message delivers the base configuration (scenario text + embedded
/// traces + warm snapshots), each Batch delivers points as override lists,
/// and every completed point is answered immediately with one Outcome
/// frame — the coordinator treats that frame as the acknowledgement, so a
/// worker that dies mid-batch simply never acks its remaining points and
/// the coordinator re-issues them elsewhere.
///
/// Entry points: `ahbp_sim farm-worker --in FD --out FD` (the hidden CLI
/// subcommand, used when the coordinator re-executes the binary) or a
/// direct call after fork() (the default local spawn mode, and what the
/// tests drive).

namespace ahbp::farm {

/// Serve one coordinator connection until Shutdown or EOF on `in_fd`.
/// Returns the number of points simulated.  Throws state::StateError on
/// protocol violations (bad frame, decode failure, batch before hello) —
/// callers turn that into a nonzero exit.
std::size_t worker_loop(int in_fd, int out_fd);

}  // namespace ahbp::farm
