#include "stats/profiles.hpp"

namespace ahbp::stats {

void MasterProfile::record(const ahb::Transaction& t, bool buffered) {
  if (t.dir == ahb::Dir::kRead) {
    ++reads;
    bytes_read += t.bytes();
  } else {
    ++writes;
    bytes_written += t.bytes();
    if (buffered) {
      ++buffered_writes;
    }
  }
  grant_wait.add(t.wait());
  latency.add(t.latency());
}

void BusProfile::sample(unsigned requesters, bool busy, unsigned moved_bytes) {
  ++cycles;
  if (busy) {
    ++busy_cycles;
  }
  if (requesters > 1) {
    ++contention_cycles;
  }
  if (requesters >= 1 && !busy) {
    ++wait_cycles;
  }
  bytes += moved_bytes;
}

}  // namespace ahbp::stats
