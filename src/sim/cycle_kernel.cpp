#include "sim/cycle_kernel.hpp"

#include <algorithm>
#include <string>

#include "obs/selfprof.hpp"

namespace ahbp::sim {

void CycleKernel::add(Clocked& component) {
  components_.push_back(&component);
  sorted_ = false;
  prof_dirty_ = true;
}

void CycleKernel::sort_if_needed() {
  if (!sorted_) {
    std::stable_sort(
        components_.begin(), components_.end(),
        [](const Clocked* a, const Clocked* b) { return a->phase() < b->phase(); });
    sorted_ = true;
  }
}

void CycleKernel::step() {
  sort_if_needed();
  if (profiler_ != nullptr) {
    step_profiled();
    return;
  }
  for (Clocked* c : components_) {
    c->evaluate(now_);
    ++evaluations_;
  }
  for (Clocked* c : components_) {
    c->update(now_);
  }
  ++now_;
}

void CycleKernel::step_profiled() {
  // Resolve per-component phase ids lazily (sorting or registration
  // invalidates the parallel-array correspondence).
  if (prof_dirty_) {
    prof_ids_.clear();
    for (const Clocked* c : components_) {
      prof_ids_.push_back(profiler_->phase("tlm." + std::string(c->name())));
    }
    prof_dirty_ = false;
  }
  for (std::size_t i = 0; i < components_.size(); ++i) {
    obs::ScopedTimer t(profiler_, prof_ids_[i]);
    components_[i]->evaluate(now_);
    ++evaluations_;
  }
  for (std::size_t i = 0; i < components_.size(); ++i) {
    obs::ScopedTimer t(profiler_, prof_ids_[i]);
    components_[i]->update(now_);
  }
  ++now_;
}

void CycleKernel::run(Cycle cycles) {
  stop_ = false;
  for (Cycle i = 0; i < cycles && !stop_; ++i) {
    step();
  }
}

Cycle CycleKernel::run_until(const std::function<bool()>& predicate,
                             Cycle max_cycles) {
  stop_ = false;
  Cycle executed = 0;
  while (executed < max_cycles && !stop_ && !predicate()) {
    step();
    ++executed;
  }
  return executed;
}

void CycleKernel::save_state(state::StateWriter& w) const {
  w.begin("cycle-kernel");
  w.put_u64(now_);
  w.put_u64(evaluations_);
  w.end();
}

void CycleKernel::restore_state(state::StateReader& r) {
  r.enter("cycle-kernel");
  now_ = r.get_u64();
  evaluations_ = r.get_u64();
  r.leave();
}

}  // namespace ahbp::sim
