#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "stats/profiles.hpp"

/// \file report.hpp
/// Human-readable and CSV renderings of run profiles — the "good analysis
/// environment ... tied with the model" the paper's introduction demands
/// (bus contention, utilization and throughput are called out explicitly).

namespace ahbp::stats {

/// Simple fixed-width text table builder used by reports and the benchmark
/// harness (so every bench prints paper-style tables uniformly).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Add one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment.
  void print(std::ostream& os) const;

  /// Render as CSV.
  void print_csv(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by reports and benches.
std::string fmt_double(double v, int precision = 2);
std::string fmt_percent(double fraction, int precision = 1);

/// Full textual report of a run profile.
void print_report(std::ostream& os, const RunProfile& p,
                  const std::string& title);

/// Machine-readable CSV (one row per master plus summary rows).
void print_csv(std::ostream& os, const RunProfile& p);

}  // namespace ahbp::stats
