#pragma once

#include <memory>
#include <vector>

#include "ddr/channels.hpp"
#include "rtl/signals.hpp"
#include "sim/event_kernel.hpp"

/// \file detail.hpp
/// Register-transfer detail layer of the signal-level reference model.
///
/// The architectural wires in signals.hpp are only the *interface* of the
/// design.  A real RTL netlist also evaluates every internal register and
/// combinational cone: the arbiter's per-stage filter wires, the DDRC's
/// per-bank state machines and timing counters, the datapath staging
/// registers, byte-lane steering and the write-buffer RAM cells.  The
/// paper's speed comparison (§4: 0.47 Kcycles/s RTL vs 166 Kcycles/s TLM)
/// is against that full population, so the reference model instantiates it
/// too: every signal below is a genuine wire of a plausible AHB+
/// implementation carrying its true value, re-evaluated with the same
/// delta-cycle machinery an RTL simulator uses.
///
/// The layer is purely structural — it observes and re-derives values; the
/// architectural behaviour is unchanged whether it is instantiated or not
/// (RtlFabricConfig::rt_detail toggles it, which is itself an ablation the
/// speed benchmark reports).

namespace ahbp::rtl {

class DetailLayer {
 public:
  /// \param columns   master wire columns including the write buffer's.
  /// \param channels  the sharded DDRC (bank states / timers of *every*
  ///                  channel are re-derived each cycle, as the per-channel
  ///                  RTL FSM registers would — more channels, more wires).
  DetailLayer(sim::EventKernel& kernel, SharedWires& shared,
              std::vector<MasterWires*> columns,
              const ddr::ChannelSet& channels, const sim::Cycle* now);

  DetailLayer(const DetailLayer&) = delete;
  DetailLayer& operator=(const DetailLayer&) = delete;

  void bind_clock(sim::Signal<bool>& clk);

  /// Number of detail signals instantiated (reported by the speed bench).
  std::size_t signal_count() const noexcept { return signal_count_; }

 private:
  void make_column_detail(sim::EventKernel& k, unsigned i);
  void make_datapath_detail(sim::EventKernel& k);
  void make_arbiter_detail(sim::EventKernel& k);
  void make_ddrc_detail(sim::EventKernel& k);
  void at_edge();

  SharedWires& sh_;
  std::vector<MasterWires*> cols_;
  const ddr::ChannelSet& set_;
  const sim::Cycle* now_;

  // --- per-column pipeline registers and address incrementers ---
  struct ColumnDetail {
    std::unique_ptr<sim::Signal<std::uint64_t>> haddr_r;   ///< addr stage reg
    std::unique_ptr<sim::Signal<std::uint64_t>> hwdata_r;  ///< data stage reg
    std::unique_ptr<sim::Signal<std::uint8_t>> htrans_r;
    std::unique_ptr<sim::Signal<std::uint64_t>> haddr_next; ///< incrementer
    std::unique_ptr<sim::Signal<std::uint8_t>> size_bytes_w;///< size decode
    std::unique_ptr<sim::Signal<bool>> active_w;            ///< htrans != IDLE
    std::unique_ptr<sim::Process> incr_proc;                 ///< comb cone
  };
  std::vector<ColumnDetail> col_detail_;

  // --- shared datapath: byte lanes + read-data register ---
  std::vector<std::unique_ptr<sim::Signal<std::uint8_t>>> wlane_;
  std::vector<std::unique_ptr<sim::Signal<std::uint8_t>>> rlane_;
  std::unique_ptr<sim::Signal<std::uint64_t>> hrdata_r_;
  std::unique_ptr<sim::Process> wlane_proc_;
  std::unique_ptr<sim::Process> rlane_proc_;

  // --- arbiter combinational structure ---
  std::unique_ptr<sim::Signal<std::uint32_t>> req_mask_w_;
  std::unique_ptr<sim::Signal<std::uint8_t>> req_count_w_;
  std::unique_ptr<sim::Signal<std::uint8_t>> first_req_w_;
  std::vector<std::unique_ptr<sim::Signal<bool>>> stage_pass_;  ///< per master
  std::unique_ptr<sim::Process> arb_proc_;

  // --- DDRC register-transfer state ---
  struct BankDetail {
    std::unique_ptr<sim::Signal<std::uint8_t>> state_onehot;
    std::unique_ptr<sim::Signal<std::uint32_t>> row_r;
    std::unique_ptr<sim::Signal<std::uint32_t>> ready_timer;  ///< to column-ready
    /// The individual interval counters an RTL controller decrements every
    /// cycle a constraint is outstanding: tRCD, tRAS, tRP, tRC, tWR.
    std::vector<std::unique_ptr<sim::Signal<std::uint32_t>>> timers;
  };
  std::vector<BankDetail> banks_;
  /// (channel, channel-local bank) of each banks_ entry.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> bank_of_;
  std::unique_ptr<sim::Signal<std::uint32_t>> wq_level_;   ///< write queue level
  std::unique_ptr<sim::Signal<std::uint32_t>> xfer_beat_;  ///< current beat ctr
  /// Per-channel tREFI countdowns (channels may override tREFI).
  std::vector<std::unique_ptr<sim::Signal<std::uint32_t>>> refresh_ctr_;

  // --- write-buffer RAM and DDRC data FIFOs (real storage cells) ---
  std::vector<std::unique_ptr<sim::Signal<std::uint64_t>>> wbuf_ram_;
  std::vector<std::unique_ptr<sim::Signal<std::uint64_t>>> rd_fifo_;
  std::vector<std::unique_ptr<sim::Signal<std::uint64_t>>> wr_fifo_;
  std::unique_ptr<sim::Signal<std::uint8_t>> rd_ptr_;
  std::unique_ptr<sim::Signal<std::uint8_t>> wr_ptr_;

  // --- per-master QoS state registers (slack / budget counters) ---
  std::vector<std::unique_ptr<sim::Signal<std::uint32_t>>> slack_ctr_;
  std::vector<std::unique_ptr<sim::Signal<std::uint32_t>>> wait_ctr_;

  std::unique_ptr<sim::Process> edge_proc_;
  std::size_t signal_count_ = 0;
};

}  // namespace ahbp::rtl
