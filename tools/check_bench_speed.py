#!/usr/bin/env python3
"""Regression gate for BENCH_SPEED.json.

Compares a freshly measured BENCH_SPEED.json against the committed
reference artifact and fails when any model's cycles/sec regressed beyond
the tolerance.

Raw kcycles/sec are machine-dependent (CI runners differ run to run), so
the gate is *median-ratio normalized*: for every model present in both
files it computes ratio = new/old, takes the median ratio as the "this
machine vs the reference machine" speed factor, and fails any model whose
ratio falls below tolerance x median.  A uniform slowdown (slower runner)
passes; one model regressing relative to the others fails.

Also re-asserts the artifact's shape invariants (shape_ok, positive
throughputs, phase tables, quantum batching not slower than cycle-by-cycle)
so the gate subsumes the old shape check.

usage: check_bench_speed.py NEW.json REFERENCE.json [--tolerance 0.85]
"""

import argparse
import json
import statistics
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("new_json")
    ap.add_argument("ref_json")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.85,
        help="fail a model below tolerance x median ratio (default 0.85 "
        "= >15%% relative regression)",
    )
    args = ap.parse_args()

    new = load(args.new_json)
    ref = load(args.ref_json)

    # Shape invariants of the fresh run.
    assert new.get("shape_ok"), "shape_ok is false in fresh run"
    for m, row in new["models"].items():
        assert row["kcycles_per_sec"] > 0, f"non-positive throughput: {m}"
    assert new["phases"]["tlm"] and new["phases"]["rtl"], "missing phase tables"
    uplift = new.get("quantum_uplift", 0.0)
    assert uplift >= 1.0, (
        f"quantum batching slower than cycle-by-cycle (uplift {uplift:.2f})"
    )

    models = sorted(set(new["models"]) & set(ref["models"]))
    if not models:
        print("no common models between new and reference artifacts")
        return 1

    ratios = {}
    for m in models:
        old_k = ref["models"][m]["kcycles_per_sec"]
        new_k = new["models"][m]["kcycles_per_sec"]
        if old_k <= 0:
            print(f"reference has non-positive throughput for {m}; skipping")
            continue
        ratios[m] = new_k / old_k

    med = statistics.median(ratios.values())
    floor = args.tolerance * med
    print(f"machine speed factor (median new/ref ratio): {med:.3f}")
    print(f"per-model floor: {floor:.3f}")

    failed = []
    for m in models:
        r = ratios.get(m)
        if r is None:
            continue
        verdict = "ok" if r >= floor else "REGRESSED"
        print(
            f"  {m:16s} ref {ref['models'][m]['kcycles_per_sec']:10.1f} "
            f"new {new['models'][m]['kcycles_per_sec']:10.1f} "
            f"ratio {r:.3f}  {verdict}"
        )
        if r < floor:
            failed.append(m)

    if failed:
        print(
            f"FAIL: {', '.join(failed)} regressed >"
            f"{(1 - args.tolerance) * 100:.0f}% relative to the fleet"
        )
        return 1
    print("PASS: no model regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
