#include "sim/clock.hpp"

#include <stdexcept>
#include <utility>

namespace ahbp::sim {

Clock::Clock(EventKernel& kernel, std::string name, Tick period, Tick phase)
    : kernel_(kernel), sig_(kernel, std::move(name), false), period_(period) {
  if (period < 2 || period % 2 != 0) {
    throw std::invalid_argument("Clock period must be an even number >= 2");
  }
  kernel_.schedule(phase + period_ / 2, [this] { toggle(); });
}

void Clock::toggle() {
  if (!running_) {
    return;
  }
  const bool next = !sig_.read();
  sig_.write(next);
  if (next) {
    ++posedges_;
  }
  kernel_.schedule(period_ / 2, [this] { toggle(); });
}

}  // namespace ahbp::sim
