#include "core/platform.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "assertions/assert.hpp"
#include "core/checkpoint.hpp"

namespace ahbp::core {

std::vector<ddr::ChannelConfig> ddr_channel_configs(const PlatformConfig& cfg) {
  AHBP_ASSERT_MSG(cfg.interleave.valid(),
                  "ddr.channels must be 1/2/4/8 with a power-of-two"
                  " interleave stripe >= 8 bytes");
  return ddr::resolve_channels(cfg.timing, cfg.geom, cfg.interleave,
                               cfg.ddr_channels);
}

std::uint64_t ddr_aperture_bytes(const PlatformConfig& cfg) {
  const auto channels = ddr_channel_configs(cfg);
  std::uint64_t min_capacity = channels.front().geom.capacity();
  for (const ddr::ChannelConfig& ch : channels) {
    min_capacity = std::min(min_capacity, ch.geom.capacity());
  }
  return min_capacity * cfg.interleave.channels;
}

void resolve_stimulus(PlatformConfig& cfg) {
  for (MasterSpec& m : cfg.masters) {
    traffic::resolve(m.traffic);
  }
}

std::vector<traffic::Script> expand_stimulus(const PlatformConfig& cfg) {
  AHBP_ASSERT_MSG(ahb::valid_beat_bytes(cfg.bus.data_width_bytes),
                  "bus.data_width_bytes must be 1, 2, 4 or 8");
  std::vector<traffic::Script> scripts;
  scripts.reserve(cfg.masters.size());
  for (std::size_t m = 0; m < cfg.masters.size(); ++m) {
    scripts.push_back(traffic::expand_stimulus(
        cfg.masters[m].traffic, static_cast<ahb::MasterId>(m),
        cfg.bus.data_width_bytes));
  }
  // Synthetic windows are aperture-checked at scenario::validate; traces
  // carry arbitrary recorded addresses, so police them here where the
  // resolved channel geometry is known — a clear workload error beats a
  // decode assertion deep inside the DDR model.
  bool any_trace = false;
  for (const MasterSpec& m : cfg.masters) {
    any_trace = any_trace || m.traffic.is_trace();
  }
  if (any_trace) {
    const std::uint64_t aperture = ddr_aperture_bytes(cfg);
    for (std::size_t m = 0; m < cfg.masters.size(); ++m) {
      if (!cfg.masters[m].traffic.is_trace()) {
        continue;
      }
      for (const traffic::TrafficItem& item : scripts[m]) {
        const ahb::Transaction& t = item.txn;
        if (t.addr < cfg.ddr_base || t.addr - cfg.ddr_base > aperture ||
            t.bytes() > aperture - (t.addr - cfg.ddr_base)) {
          char addr_hex[32];
          std::snprintf(addr_hex, sizeof addr_hex, "0x%llx",
                        static_cast<unsigned long long>(t.addr));
          throw std::runtime_error(
              "master " + std::to_string(m) + " trace transaction " +
              std::to_string(t.id) + " at " + addr_hex +
              " falls outside the DDR aperture");
        }
      }
    }
  }
  return scripts;
}

SimResult run_tlm(const PlatformConfig& cfg) {
  Platform p(cfg, ModelKind::kTlm);
  p.run_to_completion();
  return p.result();
}

SimResult run_rtl(const PlatformConfig& cfg, std::ostream* vcd_out) {
  Platform p(cfg, ModelKind::kRtl);
  if (vcd_out != nullptr) {
    p.enable_vcd(*vcd_out);
  }
  p.run_to_completion();
  return p.result();
}

double kcycles_per_sec(const SimResult& r) {
  if (r.wall_seconds <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(r.ran_cycles) / r.wall_seconds / 1000.0;
}

}  // namespace ahbp::core
