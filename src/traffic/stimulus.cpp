#include "traffic/stimulus.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "assertions/assert.hpp"
#include "traffic/trace.hpp"
#include "traffic/trace_bin.hpp"

namespace ahbp::traffic {

std::string to_string(StimulusSource s) {
  return s == StimulusSource::kTrace ? "trace" : "synthetic";
}

void resolve(StimulusSpec& spec) {
  if (spec.resolved()) {
    return;
  }
  if (spec.trace_path.empty()) {
    throw std::runtime_error(
        "trace-backed stimulus needs a trace path (or pre-resolved text)");
  }
  // On Linux ifstream happily *opens* a directory; the reads then fail in
  // a way rdbuf() extraction reports identically to an empty file, so
  // without this check a directory path silently became an empty workload
  // with trace_loaded = true.
  std::error_code ec;
  if (std::filesystem::is_directory(spec.trace_path, ec)) {
    throw std::runtime_error("'" + spec.trace_path +
                             "' is a directory, not a trace file");
  }
  std::ifstream in(spec.trace_path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open trace file '" + spec.trace_path +
                             "'");
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  // failbit alone only says "zero characters extracted" (legal: an empty
  // trace); badbit on either stream is a genuine I/O failure and must not
  // resolve into an empty workload.
  if (in.bad() || ss.bad()) {
    throw std::runtime_error("error reading trace file '" + spec.trace_path +
                             "'");
  }
  spec.trace_text = ss.str();
  spec.trace_loaded = true;  // authoritative even when the file was empty
}

Script expand_stimulus(const StimulusSpec& spec, ahb::MasterId master,
                       unsigned bus_beat_bytes) {
  if (!spec.is_trace()) {
    // The §3.7 bus-width knob reaches the stimulus here: patterns keep the
    // bytes per transfer invariant and emit beats of the configured width.
    PatternConfig pat = spec;  // slice off the trace fields
    pat.beat_bytes = bus_beat_bytes;
    return make_script(pat, master);
  }

  const std::string origin = "master " + std::to_string(master) + " trace" +
                             (spec.trace_path.empty()
                                  ? std::string()
                                  : " '" + spec.trace_path + "'");
  // Only the unresolved branch pays for a spec copy; an already-resolved
  // spec (the common case — Platform resolves its config at construction)
  // parses straight from its own text.
  StimulusSpec loaded;
  const std::string* text = &spec.trace_text;
  if (!spec.resolved()) {
    loaded = spec;
    try {
      resolve(loaded);
    } catch (const std::runtime_error& e) {
      throw std::runtime_error(origin + ": " + e.what());
    }
    text = &loaded.trace_text;
  }

  Script script;
  try {
    // Format auto-detection: binary traces announce themselves with the
    // magic prefix (trace_bin.hpp); anything else is the text format.
    // Works identically for file-resolved and checkpoint-embedded bytes.
    if (is_trace_bin(*text)) {
      script = load_trace_bin(*text, master);
    } else {
      std::istringstream is(*text);
      script = load_trace(is, master);
    }
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(origin + ": " + e.what());
  }
  // A trace recorded on a wide bus cannot replay on a narrower one: HSIZE
  // may never exceed the data bus width (the ahb.hsize-width checker rule
  // would flag every beat — fail early with a workload error instead).
  for (const TrafficItem& item : script) {
    if (ahb::size_bytes(item.txn.size) > bus_beat_bytes) {
      throw std::runtime_error(
          origin + ": transaction " + std::to_string(item.txn.id) + " has " +
          std::to_string(ahb::size_bytes(item.txn.size)) +
          "-byte beats but bus.data_width_bytes is " +
          std::to_string(bus_beat_bytes));
    }
  }
  return script;
}

void TraceRecorder::record_issue(sim::Cycle now, const ahb::Transaction& txn) {
  // An issue can never precede the port's previous completion — a model
  // reporting one is contradicting itself, and the unsigned subtraction
  // below would wrap it into a near-2^64 gap that poisons the capture.
  AHBP_ASSERT_MSG(now >= last_complete_,
                  "trace capture observed an issue at cycle " +
                      std::to_string(now) +
                      " before the port's previous completion at cycle " +
                      std::to_string(last_complete_));
  TrafficItem item;
  // Observed think time: issue relative to this port's previous
  // completion, saturated at zero so the recorded gap can never wrap even
  // if a driver swallows the assertion and keeps capturing.  For the first
  // item this is the absolute issue cycle, which replay ignores (the
  // source's gap timer starts armed at 0).
  item.gap = now >= last_complete_ ? now - last_complete_ : 0;
  item.txn = txn;
  items_.push_back(std::move(item));
}

void TraceRecorder::record_complete(sim::Cycle now) { last_complete_ = now; }

std::string TraceRecorder::to_trace_text() const {
  std::ostringstream os;
  save_trace(os, items_);
  return os.str();
}

std::string TraceRecorder::to_trace_bin() const {
  return trace_bin_bytes(items_);
}

}  // namespace ahbp::traffic
