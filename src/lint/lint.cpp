#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace ahbp::lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// 1-based line of byte offset `pos` in `text`.
std::size_t line_of(std::string_view text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(),
                            text.begin() + static_cast<std::ptrdiff_t>(
                                               std::min(pos, text.size())),
                            '\n'));
}

/// Word-boundary occurrences of `token` in `text` (offsets).
std::vector<std::size_t> find_token(std::string_view text,
                                    std::string_view token) {
  std::vector<std::size_t> out;
  for (std::size_t pos = text.find(token); pos != std::string_view::npos;
       pos = text.find(token, pos + 1)) {
    const bool left_ok = pos == 0 || !is_word(text[pos - 1]);
    const std::size_t end = pos + token.size();
    // Tokens ending in ':' (qualified names) or containing '::' carry
    // their own boundary; otherwise require a non-word follower.
    const bool right_ok = end >= text.size() || !is_word(text[end]);
    if (left_ok && right_ok) {
      out.push_back(pos);
    }
  }
  return out;
}

std::size_t skip_ws(std::string_view s, std::size_t i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i])) != 0) {
    ++i;
  }
  return i;
}

/// Offset just past the matching close for the opener at `open` (which must
/// hold `lhs`); npos when unbalanced.
std::size_t match_pair(std::string_view s, std::size_t open, char lhs,
                       char rhs) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == lhs) {
      ++depth;
    } else if (s[i] == rhs) {
      if (--depth == 0) {
        return i + 1;
      }
    }
  }
  return std::string_view::npos;
}

}  // namespace

std::string strip_code(std::string_view text) {
  std::string out(text);
  enum class St {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  St st = St::kCode;
  std::string raw_close;  // e.g. )delim" for the active raw string
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !is_word(text[i - 1]))) {
          // R"delim( ... )delim"
          std::size_t p = i + 2;
          std::string delim;
          while (p < text.size() && text[p] != '(') {
            delim += text[p++];
          }
          raw_close = ")" + delim + "\"";
          st = St::kRawString;
          // Keep the prefix characters; blank from the '(' onwards.
        } else if (c == '"') {
          st = St::kString;
        } else if (c == '\'') {
          st = St::kChar;
        }
        break;
      case St::kLineComment:
        if (c == '\n') {
          st = St::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case St::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') {
            out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '"') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') {
            out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kRawString:
        if (text.compare(i, raw_close.size(), raw_close) == 0) {
          i += raw_close.size() - 1;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

SnapshotManifest parse_manifest(std::string_view text) {
  SnapshotManifest m;
  bool have_version = false;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) {
      continue;  // blank / comment-only
    }
    if (word == "version") {
      unsigned long v = 0;
      std::string rest;
      if (have_version || !(ls >> v) || (ls >> rest)) {
        throw std::runtime_error("snapshot manifest line " +
                                 std::to_string(lineno) +
                                 ": malformed version line");
      }
      m.version = static_cast<std::uint32_t>(v);
      have_version = true;
    } else {
      std::string rest;
      if (ls >> rest) {
        throw std::runtime_error("snapshot manifest line " +
                                 std::to_string(lineno) +
                                 ": one tag per line, got trailing '" + rest +
                                 "'");
      }
      m.tags.push_back(word);
    }
  }
  if (!have_version) {
    throw std::runtime_error(
        "snapshot manifest: missing 'version N' line (regenerate with"
        " ahbp_lint --update-snapshot-manifest)");
  }
  std::sort(m.tags.begin(), m.tags.end());
  m.tags.erase(std::unique(m.tags.begin(), m.tags.end()), m.tags.end());
  return m;
}

std::string render_manifest(const SnapshotManifest& m) {
  std::ostringstream os;
  os << "# Snapshot-format manifest — the StateWriter section tags declared\n"
        "# in src/ and the state::kFormatVersion they were generated"
        " against.\n"
        "# Regenerate with: ahbp_lint --update-snapshot-manifest (it refuses\n"
        "# to record a changed tag set until kFormatVersion is bumped).\n"
        "version "
     << m.version << "\n";
  std::vector<std::string> tags = m.tags;
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  for (const std::string& t : tags) {
    os << t << "\n";
  }
  return os.str();
}

std::vector<std::string> collect_snapshot_tags(
    const std::vector<SourceFile>& files, std::vector<Finding>* findings) {
  std::map<std::string, std::string> first_site;  // tag -> "file:line"
  std::vector<std::string> tags;
  for (const SourceFile& f : files) {
    if (!starts_with(f.path, "src/")) {
      continue;
    }
    const std::string_view text = f.text;
    for (const std::size_t pos : find_token(text, "begin")) {
      std::size_t i = skip_ws(text, pos + 5);
      if (i >= text.size() || text[i] != '(') {
        continue;
      }
      i = skip_ws(text, i + 1);
      if (i >= text.size() || text[i] != '"') {
        continue;
      }
      const std::size_t close = text.find('"', i + 1);
      if (close == std::string_view::npos) {
        continue;
      }
      const std::string tag(text.substr(i + 1, close - i - 1));
      const std::string site =
          f.path + ":" + std::to_string(line_of(text, pos));
      const auto [it, inserted] = first_site.emplace(tag, site);
      if (inserted) {
        tags.push_back(tag);
      } else if (findings != nullptr) {
        findings->push_back(
            {f.path, line_of(text, pos), "snapshot/tag-unique",
             "StateWriter tag \"" + tag + "\" is already used at " +
                 it->second +
                 " — every snapshottable component needs its own section"
                 " tag, or a reader cannot tell their streams apart"});
      }
    }
  }
  std::sort(tags.begin(), tags.end());
  return tags;
}

std::uint32_t find_format_version(const std::vector<SourceFile>& files) {
  for (const SourceFile& f : files) {
    if (f.path != "src/state/snapshot.hpp") {
      continue;
    }
    const std::string_view text = f.text;
    const std::size_t pos = text.find("kFormatVersion =");
    if (pos == std::string_view::npos) {
      return 0;
    }
    std::size_t i = skip_ws(text, pos + 16);
    std::uint32_t v = 0;
    bool any = false;
    while (i < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
      v = v * 10 + static_cast<std::uint32_t>(text[i] - '0');
      ++i;
      any = true;
    }
    return any ? v : 0;
  }
  return 0;
}

namespace {

struct Rule {
  const char* token;
  const char* rule;
  const char* message;
};

constexpr Rule kRngRules[] = {
    {"rand", "determinism/rng", "rand() in library code"},
    {"srand", "determinism/rng", "srand() in library code"},
    {"rand_r", "determinism/rng", "rand_r() in library code"},
    {"drand48", "determinism/rng", "drand48() in library code"},
    {"random_device", "determinism/rng", "std::random_device in library code"},
    {"mt19937", "determinism/rng", "raw std::mt19937 engine in library code"},
    {"mt19937_64", "determinism/rng",
     "raw std::mt19937_64 engine in library code"},
    {"minstd_rand", "determinism/rng", "std::minstd_rand in library code"},
    {"default_random_engine", "determinism/rng",
     "std::default_random_engine in library code"},
    {"random_shuffle", "determinism/rng",
     "std::random_shuffle in library code"},
};

constexpr Rule kClockRules[] = {
    {"system_clock", "determinism/wall-clock",
     "std::chrono::system_clock in library code"},
    {"high_resolution_clock", "determinism/wall-clock",
     "std::chrono::high_resolution_clock in library code (use steady_clock"
     " for profiling)"},
    {"gettimeofday", "determinism/wall-clock",
     "gettimeofday() in library code"},
    {"clock_gettime", "determinism/wall-clock",
     "clock_gettime() in library code"},
    {"localtime", "determinism/wall-clock", "localtime() in library code"},
    {"gmtime", "determinism/wall-clock", "gmtime() in library code"},
    {"strftime", "determinism/wall-clock", "strftime() in library code"},
};

constexpr Rule kStdoutRules[] = {
    {"std::cout", "library/no-stdout", "std::cout in library code"},
    {"std::cerr", "library/no-stdout", "std::cerr in library code"},
    {"std::clog", "library/no-stdout", "std::clog in library code"},
    {"printf", "library/no-stdout", "printf() in library code"},
    {"fprintf", "library/no-stdout", "fprintf() in library code"},
    {"puts", "library/no-stdout", "puts() in library code"},
};

const char* const kRngSuffix =
    " — all library randomness flows through traffic::TrafficRng"
    " (src/traffic/generator.*), the one owned, seeded, per-master stream;"
    " anything else breaks run-to-run determinism";

const char* const kClockSuffix =
    " — simulated behaviour must be a pure function of the scenario;"
    " std::chrono::steady_clock is the only sanctioned clock (wall-clock"
    " self-profiling)";

const char* const kStdoutSuffix =
    " — the library reports through return values and caller-supplied"
    " streams; stray output corrupts machine-readable reports (CSV, JSON)"
    " and the byte-stable sweep tables";

const char* const kCassertSuffix =
    " — use AHBP_ASSERT (src/assertions/assert.hpp): plain assert()"
    " vanishes under NDEBUG, and Release CI must keep model invariants"
    " armed";

const char* const kSimFnSuffix =
    " — kernel hot paths must use sim::InlineFunction"
    " (src/sim/inline_function.hpp): std::function heap-allocates large"
    " captures and defeats the allocation-free-stepping guarantee"
    " tests/test_alloc.cpp pins; setup-time-only callables may opt out"
    " with a 'lint:allow-std-function' comment on the same line";

void apply_token_rules(const SourceFile& f, std::string_view stripped,
                       const Rule* rules, std::size_t n, const char* suffix,
                       std::vector<Finding>& out) {
  for (std::size_t r = 0; r < n; ++r) {
    for (const std::size_t pos : find_token(stripped, rules[r].token)) {
      out.push_back({f.path, line_of(stripped, pos), rules[r].rule,
                     std::string(rules[r].message) + suffix});
    }
  }
}

/// std::function in src/sim/ — the kernels' hot paths.  The allow marker
/// lives in a comment, so it is looked up in the *original* text of the
/// flagged line (strip_code blanks comments before token search).
void check_sim_std_function(const SourceFile& f, std::string_view stripped,
                            std::vector<Finding>& out) {
  const auto original_line = [&](std::size_t line) {
    std::size_t start = 0;
    for (std::size_t n = 1; n < line; ++n) {
      start = f.text.find('\n', start);
      if (start == std::string::npos) {
        return std::string_view{};
      }
      ++start;
    }
    const std::size_t end = f.text.find('\n', start);
    return std::string_view(f.text).substr(
        start, end == std::string::npos ? end : end - start);
  };
  for (const std::size_t pos : find_token(stripped, "std::function")) {
    const std::size_t line = line_of(stripped, pos);
    if (original_line(line).find("lint:allow-std-function") !=
        std::string_view::npos) {
      continue;
    }
    out.push_back({f.path, line, "sim/no-std-function",
                   std::string("std::function in kernel code") +
                       kSimFnSuffix});
  }
}

/// `time(nullptr)` / `time(NULL)` / `time(0)` calls.
void check_time_calls(const SourceFile& f, std::string_view stripped,
                      std::vector<Finding>& out) {
  for (const std::size_t pos : find_token(stripped, "time")) {
    std::size_t i = skip_ws(stripped, pos + 4);
    if (i >= stripped.size() || stripped[i] != '(') {
      continue;
    }
    i = skip_ws(stripped, i + 1);
    bool null_arg = false;
    for (const std::string_view arg : {"nullptr", "NULL", "0"}) {
      if (stripped.compare(i, arg.size(), arg) == 0 &&
          skip_ws(stripped, i + arg.size()) < stripped.size() &&
          stripped[skip_ws(stripped, i + arg.size())] == ')') {
        null_arg = true;
      }
    }
    if (null_arg) {
      out.push_back({f.path, line_of(stripped, pos), "determinism/wall-clock",
                     std::string("time() in library code") + kClockSuffix});
    }
  }
}

void check_cassert(const SourceFile& f, std::string_view stripped,
                   std::vector<Finding>& out) {
  const std::size_t inc = stripped.find("#include <cassert>");
  if (inc != std::string_view::npos) {
    out.push_back({f.path, line_of(stripped, inc), "library/no-cassert",
                   std::string("#include <cassert> in library code") +
                       kCassertSuffix});
  }
  const std::size_t inc2 = stripped.find("#include <assert.h>");
  if (inc2 != std::string_view::npos) {
    out.push_back({f.path, line_of(stripped, inc2), "library/no-cassert",
                   std::string("#include <assert.h> in library code") +
                       kCassertSuffix});
  }
  for (const std::size_t pos : find_token(stripped, "assert")) {
    const std::size_t i = skip_ws(stripped, pos + 6);
    if (i < stripped.size() && stripped[i] == '(') {
      out.push_back({f.path, line_of(stripped, pos), "library/no-cassert",
                     std::string("bare assert() in library code") +
                         kCassertSuffix});
    }
  }
}

/// Names declared as unordered containers anywhere in the input (member or
/// local; the serialization rule needs cross-file visibility because
/// members live in headers and save_state in sources).
std::set<std::string> unordered_names(const std::vector<SourceFile>& files) {
  std::set<std::string> names;
  for (const SourceFile& f : files) {
    const std::string stripped = strip_code(f.text);
    const std::string_view text = stripped;
    for (const char* kw :
         {"unordered_map", "unordered_set", "unordered_multimap",
          "unordered_multiset"}) {
      for (const std::size_t pos : find_token(text, kw)) {
        std::size_t i = skip_ws(text, pos + std::string_view(kw).size());
        if (i >= text.size() || text[i] != '<') {
          continue;
        }
        const std::size_t after = match_pair(text, i, '<', '>');
        if (after == std::string_view::npos) {
          continue;
        }
        i = skip_ws(text, after);
        std::string name;
        while (i < text.size() && is_word(text[i])) {
          name += text[i++];
        }
        i = skip_ws(text, i);
        if (!name.empty() && i < text.size() &&
            (text[i] == ';' || text[i] == '=' || text[i] == '{')) {
          names.insert(name);
        }
      }
    }
  }
  return names;
}

/// Range-for loops inside `save_state` / `serialize` bodies that iterate an
/// unordered container *and* emit records from inside the loop.  Iterating
/// to collect-and-sort is fine; emitting in hash order is not.
void check_unordered_serialization(const SourceFile& f,
                                   std::string_view stripped,
                                   const std::set<std::string>& unordered,
                                   std::vector<Finding>& out) {
  for (const char* fn : {"save_state", "serialize"}) {
    for (const std::size_t pos : find_token(stripped, fn)) {
      // Find the function *definition*: name ( ... ) [const] {
      std::size_t i = skip_ws(stripped, pos + std::string_view(fn).size());
      if (i >= stripped.size() || stripped[i] != '(') {
        continue;
      }
      std::size_t after_args = match_pair(stripped, i, '(', ')');
      if (after_args == std::string_view::npos) {
        continue;
      }
      after_args = skip_ws(stripped, after_args);
      if (stripped.compare(after_args, 5, "const") == 0) {
        after_args = skip_ws(stripped, after_args + 5);
      }
      if (stripped.compare(after_args, 8, "override") == 0) {
        after_args = skip_ws(stripped, after_args + 8);
      }
      if (after_args >= stripped.size() || stripped[after_args] != '{') {
        continue;  // declaration, not definition
      }
      const std::size_t body_end =
          match_pair(stripped, after_args, '{', '}');
      if (body_end == std::string_view::npos) {
        continue;
      }
      const std::string_view body =
          stripped.substr(after_args, body_end - after_args);

      for (const std::size_t fpos : find_token(body, "for")) {
        std::size_t j = skip_ws(body, fpos + 3);
        if (j >= body.size() || body[j] != '(') {
          continue;
        }
        const std::size_t hdr_end = match_pair(body, j, '(', ')');
        if (hdr_end == std::string_view::npos) {
          continue;
        }
        const std::string_view hdr = body.substr(j + 1, hdr_end - j - 2);
        // The range-for separator: a ':' that is not half of a '::'.
        std::size_t colon = std::string_view::npos;
        for (std::size_t c = 0; c < hdr.size(); ++c) {
          if (hdr[c] != ':') {
            continue;
          }
          if (c + 1 < hdr.size() && hdr[c + 1] == ':') {
            ++c;
            continue;
          }
          colon = c;
          break;
        }
        if (colon == std::string_view::npos) {
          continue;  // not a range-for
        }
        // Trailing identifier of the range expression ("pages_",
        // "this->pages_").
        std::string_view range = hdr.substr(colon + 1);
        std::size_t e = range.size();
        while (e > 0 &&
               std::isspace(static_cast<unsigned char>(range[e - 1])) != 0) {
          --e;
        }
        std::size_t b = e;
        while (b > 0 && is_word(range[b - 1])) {
          --b;
        }
        const std::string var(range.substr(b, e - b));
        if (unordered.count(var) == 0) {
          continue;
        }
        const std::size_t loop_open = body.find('{', hdr_end);
        if (loop_open == std::string_view::npos) {
          continue;
        }
        const std::size_t loop_end = match_pair(body, loop_open, '{', '}');
        const std::string_view loop_body = body.substr(
            loop_open, loop_end == std::string_view::npos
                           ? body.size() - loop_open
                           : loop_end - loop_open);
        if (loop_body.find("put_") != std::string_view::npos) {
          out.push_back(
              {f.path, line_of(stripped, after_args + fpos),
               "snapshot/unordered-iteration",
               "serialization emits records while iterating unordered"
               " container '" +
                   var +
                   "' — hash order is not canonical; collect keys, sort,"
                   " then emit (save->restore->save byte-identity depends"
                   " on it)"});
        }
      }
    }
  }
}

/// obs::Timeline* / obs::SelfProfiler* member names declared anywhere.
std::set<std::string> obs_pointer_names(const std::vector<SourceFile>& files) {
  std::set<std::string> names;
  for (const SourceFile& f : files) {
    const std::string stripped = strip_code(f.text);
    const std::string_view text = stripped;
    for (const char* type : {"Timeline", "SelfProfiler"}) {
      for (const std::size_t pos : find_token(text, type)) {
        // Require the obs:: qualifier right before the type name.
        if (pos < 5 || text.compare(pos - 5, 5, "obs::") != 0) {
          continue;
        }
        std::size_t i = skip_ws(text, pos + std::string_view(type).size());
        if (i >= text.size() || text[i] != '*') {
          continue;
        }
        i = skip_ws(text, i + 1);
        std::string name;
        while (i < text.size() && is_word(text[i])) {
          name += text[i++];
        }
        i = skip_ws(text, i);
        // Member/variable declaration, not a parameter list use.
        if (!name.empty() && i < text.size() &&
            (text[i] == ';' || text[i] == '=')) {
          names.insert(name);
        }
      }
    }
  }
  return names;
}

bool has_null_gate(std::string_view stripped, const std::string& name) {
  for (const std::size_t pos : find_token(stripped, name)) {
    const std::size_t after = skip_ws(stripped, pos + name.size());
    // NAME != nullptr / NAME == nullptr / NAME && / NAME ?
    if (stripped.compare(after, 2, "!=") == 0 ||
        stripped.compare(after, 2, "==") == 0 ||
        stripped.compare(after, 2, "&&") == 0 ||
        (after < stripped.size() && stripped[after] == '?')) {
      return true;
    }
    // if (NAME) / while (NAME)
    if (after < stripped.size() && stripped[after] == ')' && pos >= 1) {
      std::size_t b = pos;
      while (b > 0 && std::isspace(static_cast<unsigned char>(
                          stripped[b - 1])) != 0) {
        --b;
      }
      if (b > 0 && stripped[b - 1] == '(') {
        return true;
      }
    }
    // !NAME
    std::size_t b = pos;
    while (b > 0 &&
           std::isspace(static_cast<unsigned char>(stripped[b - 1])) != 0) {
      --b;
    }
    if (b > 0 && stripped[b - 1] == '!') {
      return true;
    }
  }
  return false;
}

void check_obs_gates(const SourceFile& f, std::string_view stripped,
                     const std::set<std::string>& obs_ptrs,
                     std::vector<Finding>& out) {
  for (const std::string& name : obs_ptrs) {
    bool deref = false;
    std::size_t first_line = 0;
    for (const std::size_t pos : find_token(stripped, name)) {
      const std::size_t after = skip_ws(stripped, pos + name.size());
      if (stripped.compare(after, 2, "->") == 0) {
        deref = true;
        if (first_line == 0) {
          first_line = line_of(stripped, pos);
        }
      }
    }
    if (deref && !has_null_gate(stripped, name)) {
      out.push_back(
          {f.path, first_line, "obs/null-gate",
           "observability pointer '" + name +
               "' is dereferenced but never null-checked in this file —"
               " obs taps are optional by contract (instrumentation must"
               " not perturb, and must not be required); gate every"
               " emission on '" +
               name + " != nullptr'"});
    }
  }
}

}  // namespace

std::vector<Finding> lint_sources(const std::vector<SourceFile>& files,
                                  std::string_view manifest_text) {
  std::vector<Finding> out;

  const std::set<std::string> unordered = unordered_names(files);
  const std::set<std::string> obs_ptrs = obs_pointer_names(files);

  for (const SourceFile& f : files) {
    if (!starts_with(f.path, "src/")) {
      continue;  // library rules only; tools/tests/benches are drivers
    }
    const std::string stripped = strip_code(f.text);
    const bool rng_exempt = starts_with(f.path, "src/traffic/generator.");
    if (!rng_exempt) {
      apply_token_rules(f, stripped, kRngRules, std::size(kRngRules),
                        kRngSuffix, out);
    }
    apply_token_rules(f, stripped, kClockRules, std::size(kClockRules),
                      kClockSuffix, out);
    check_time_calls(f, stripped, out);
    apply_token_rules(f, stripped, kStdoutRules, std::size(kStdoutRules),
                      kStdoutSuffix, out);
    if (!starts_with(f.path, "src/assertions/assert.hpp")) {
      check_cassert(f, stripped, out);
    }
    if (starts_with(f.path, "src/sim/")) {
      check_sim_std_function(f, stripped, out);
    }
    check_unordered_serialization(f, stripped, unordered, out);
    if (!starts_with(f.path, "src/obs/")) {
      check_obs_gates(f, stripped, obs_ptrs, out);
    }
  }

  // Snapshot tag discipline: unique tags, and the tag set + format version
  // recorded in the manifest.
  const std::vector<std::string> tags = collect_snapshot_tags(files, &out);
  if (!tags.empty()) {
    if (manifest_text.empty()) {
      out.push_back(
          {"tools/snapshot_manifest.txt", 0, "snapshot/manifest",
           "missing snapshot manifest — generate it with ahbp_lint"
           " --update-snapshot-manifest"});
    } else {
      try {
        const SnapshotManifest m = parse_manifest(manifest_text);
        if (m.tags != tags) {
          std::string msg =
              "StateWriter tag set differs from tools/snapshot_manifest.txt"
              " (";
          for (const std::string& t : tags) {
            if (std::find(m.tags.begin(), m.tags.end(), t) == m.tags.end()) {
              msg += "+" + t + " ";
            }
          }
          for (const std::string& t : m.tags) {
            if (std::find(tags.begin(), tags.end(), t) == tags.end()) {
              msg += "-" + t + " ";
            }
          }
          msg +=
              ") — a changed tag set changes the snapshot layout: bump"
              " state::kFormatVersion and regenerate the manifest with"
              " ahbp_lint --update-snapshot-manifest";
          out.push_back({"tools/snapshot_manifest.txt", 0,
                         "snapshot/manifest", msg});
        }
        const std::uint32_t version = find_format_version(files);
        if (version != 0 && version != m.version) {
          out.push_back(
              {"tools/snapshot_manifest.txt", 0, "snapshot/manifest",
               "state::kFormatVersion is " + std::to_string(version) +
                   " but the manifest records " + std::to_string(m.version) +
                   " — regenerate with ahbp_lint"
                   " --update-snapshot-manifest"});
        }
      } catch (const std::exception& e) {
        out.push_back({"tools/snapshot_manifest.txt", 0, "snapshot/manifest",
                       e.what()});
      }
    }
  }

  std::sort(out.begin(), out.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) {
                return a.file < b.file;
              }
              if (a.line != b.line) {
                return a.line < b.line;
              }
              return a.rule < b.rule;
            });
  return out;
}

}  // namespace ahbp::lint
