// Scenario subsystem: the parse <-> serialize round trip is exact, every
// malformed input fails with a diagnostic (never a silently-default
// config), and every built-in preset is a valid, runnable platform.

#include <gtest/gtest.h>

#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace ahbp;
using scenario::ScenarioError;

// ------------------------------------------------------------ parsing ----

TEST(ScenarioParse, MinimalScenario) {
  const auto cfg = scenario::parse(R"(
[bus]
write_buffer_depth = 8

[master 0]
pattern = dma
items = 50
span = 0x40000
)");
  EXPECT_EQ(cfg.bus.write_buffer_depth, 8u);
  ASSERT_EQ(cfg.masters.size(), 1u);
  EXPECT_EQ(cfg.masters[0].traffic.kind, traffic::PatternKind::kDma);
  EXPECT_EQ(cfg.masters[0].traffic.items, 50u);
  EXPECT_EQ(cfg.masters[0].traffic.span, 0x40000u);
}

TEST(ScenarioParse, CommentsWhitespaceAndHexAccepted) {
  const auto cfg = scenario::parse(
      "# leading comment\n"
      "[bus]\n"
      "  filter_mask   =  0x5f   # trailing comment\n"
      "\n"
      "[platform]\n"
      "ddr_base = 0x1000\n");
  EXPECT_EQ(cfg.bus.filter_mask, 0x5F);
  EXPECT_EQ(cfg.ddr_base, 0x1000u);
}

TEST(ScenarioParse, DdrPresetThenOverride) {
  const auto cfg = scenario::parse(
      "[ddr]\n"
      "preset = toy\n"
      "tRFC = 11\n");
  EXPECT_EQ(cfg.timing.tRCD, ddr::toy_timing().tRCD);
  EXPECT_EQ(cfg.timing.tRFC, 11u);  // override wins over the preset
}

TEST(ScenarioParse, MasterWildcardSectionAppliesToAll) {
  const auto cfg = scenario::parse(
      "[master 0]\nitems = 10\n"
      "[master 1]\nitems = 20\n"
      "[master *]\nseed = 77\n");
  ASSERT_EQ(cfg.masters.size(), 2u);
  EXPECT_EQ(cfg.masters[0].traffic.seed, 77u);
  EXPECT_EQ(cfg.masters[1].traffic.seed, 77u);
  EXPECT_EQ(cfg.masters[0].traffic.items, 10u);
  // Wildcard before any master exists has nothing to apply to.
  EXPECT_THROW(scenario::parse("[master *]\nitems = 5\n"), ScenarioError);
}

TEST(ScenarioParse, RevisitingMasterSectionAllowed) {
  const auto cfg = scenario::parse(
      "[master 0]\nitems = 10\n"
      "[master 1]\nitems = 20\n"
      "[master 0]\nseed = 9\n");
  ASSERT_EQ(cfg.masters.size(), 2u);
  EXPECT_EQ(cfg.masters[0].traffic.items, 10u);
  EXPECT_EQ(cfg.masters[0].traffic.seed, 9u);
  EXPECT_EQ(cfg.masters[1].traffic.items, 20u);
}

// -------------------------------------------------------- error paths ----

TEST(ScenarioErrors, UnknownSection) {
  EXPECT_THROW(scenario::parse("[bogus]\nx = 1\n"), ScenarioError);
}

TEST(ScenarioErrors, UnknownKeyNamesSectionAndLine) {
  try {
    scenario::parse("[bus]\nnot_a_knob = 1\n");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("not_a_knob"), std::string::npos);
  }
}

TEST(ScenarioErrors, BadValues) {
  EXPECT_THROW(scenario::parse("[bus]\nwrite_buffer_depth = soon\n"),
               ScenarioError);
  EXPECT_THROW(scenario::parse("[bus]\nwrite_buffer = maybe\n"),
               ScenarioError);
  EXPECT_THROW(scenario::parse("[bus]\nfilter_mask = 0x80\n"),
               ScenarioError);  // beyond the 7 filters
  EXPECT_THROW(scenario::parse("[bus]\nwrite_buffer_depth = 4 trailing\n"),
               ScenarioError);
  EXPECT_THROW(scenario::parse("[master 0]\nread_ratio = 1.5\n"),
               ScenarioError);
  EXPECT_THROW(scenario::parse("[master 0]\npattern = fancy\n"),
               ScenarioError);
  EXPECT_THROW(scenario::parse("[ddr]\npreset = ddr9000\n"), ScenarioError);
  EXPECT_THROW(scenario::parse("[ddr]\nmapping = diagonal\n"), ScenarioError);
  // Negative numbers must not wrap through stoull to huge unsigneds.
  EXPECT_THROW(scenario::parse("[master 0]\nitems = -1\n"), ScenarioError);
  EXPECT_THROW(scenario::parse("[platform]\nmax_cycles = -5\n"),
               ScenarioError);
  // Zero geometry would divide by zero inside Geometry::decode.
  EXPECT_THROW(scenario::parse("[ddr]\ncols = 0\n"), ScenarioError);
  EXPECT_THROW(scenario::parse("[ddr]\nbanks = 0\n"), ScenarioError);
  EXPECT_THROW(scenario::parse("[bus]\ndata_width_bytes = 0\n"),
               ScenarioError);
}

TEST(ScenarioErrors, StructuralProblems) {
  EXPECT_THROW(scenario::parse("stray = 1\n"), ScenarioError);  // no section
  EXPECT_THROW(scenario::parse("[bus]\njust a line\n"), ScenarioError);
  EXPECT_THROW(scenario::parse("[master 2]\nitems = 1\n"),
               ScenarioError);  // indices must be contiguous from 0
  EXPECT_THROW(scenario::parse("[master]\nitems = 1\n"), ScenarioError);
}

TEST(ScenarioErrors, ApplyKeyValidation) {
  auto cfg = scenario::parse("[master 0]\nitems = 5\n");
  EXPECT_THROW(scenario::apply_key(cfg, "nodot", "1"), ScenarioError);
  EXPECT_THROW(scenario::apply_key(cfg, "master5.items", "1"), ScenarioError);
  EXPECT_THROW(scenario::apply_key(cfg, "galaxy.items", "1"), ScenarioError);
  scenario::apply_key(cfg, "master*.items", "7");
  EXPECT_EQ(cfg.masters[0].traffic.items, 7u);
  scenario::apply_key(cfg, "bus.write_buffer_depth", "16");
  EXPECT_EQ(cfg.bus.write_buffer_depth, 16u);
}

TEST(ScenarioErrors, MissingFile) {
  EXPECT_THROW(scenario::parse_file("/nonexistent/path.scn"), ScenarioError);
}

// ------------------------------------------------- sharded DDR keys ----

TEST(ScenarioChannels, ChannelKeysParse) {
  const auto cfg = scenario::parse(
      "[ddr]\n"
      "channels = 4\n"
      "interleave_bytes = 256\n"
      "[channel 2]\n"
      "tCL = 7\n"
      "[channel 0]\n"
      "banks = 8\n");
  EXPECT_EQ(cfg.interleave.channels, 4u);
  EXPECT_EQ(cfg.interleave.stripe_bytes, 256u);
  ASSERT_EQ(cfg.ddr_channels.size(), 3u);
  EXPECT_EQ(cfg.ddr_channels[2].tCL, 7u);
  EXPECT_EQ(cfg.ddr_channels[0].banks, 8u);
  EXPECT_FALSE(cfg.ddr_channels[1].any());  // untouched: inherits [ddr]
  // Resolution: overrides layer onto the shared base, gaps inherit.
  const auto chs = ddr::resolve_channels(cfg.timing, cfg.geom,
                                         cfg.interleave, cfg.ddr_channels);
  ASSERT_EQ(chs.size(), 4u);
  EXPECT_EQ(chs[0].geom.banks, 8u);
  EXPECT_EQ(chs[1].geom.banks, cfg.geom.banks);
  EXPECT_EQ(chs[2].timing.tCL, 7u);
  EXPECT_EQ(chs[3].timing.tCL, cfg.timing.tCL);
}

TEST(ScenarioChannels, BadChannelValuesRejected) {
  EXPECT_THROW(scenario::parse("[ddr]\nchannels = 3\n"), ScenarioError);
  EXPECT_THROW(scenario::parse("[ddr]\nchannels = 0\n"), ScenarioError);
  EXPECT_THROW(scenario::parse("[ddr]\nchannels = 16\n"), ScenarioError);
  EXPECT_THROW(scenario::parse("[ddr]\ninterleave_bytes = 4\n"),
               ScenarioError);  // below the widest beat
  EXPECT_THROW(scenario::parse("[ddr]\ninterleave_bytes = 96\n"),
               ScenarioError);  // not a power of two
  EXPECT_THROW(scenario::parse("[channel 0]\nfancy = 1\n"), ScenarioError);
  EXPECT_THROW(scenario::parse("[channel]\ntCL = 2\n"), ScenarioError);
  EXPECT_THROW(scenario::parse("[channel 9]\ntCL = 2\n"), ScenarioError);
  // Overriding a channel the interleave does not instantiate.
  EXPECT_THROW(
      scenario::parse("[ddr]\nchannels = 2\n[channel 3]\ntCL = 2\n"),
      ScenarioError);
  // The stripe must divide the per-channel capacity.
  EXPECT_THROW(scenario::parse("[ddr]\nchannels = 2\nbanks = 2\nrows = 4\n"
                               "cols = 8\ncol_bytes = 4\n"
                               "interleave_bytes = 1024\n"),
               ScenarioError);
  // apply_key speaks the same dialect.
  auto cfg = scenario::parse("[master 0]\nitems = 5\n");
  EXPECT_THROW(scenario::apply_key(cfg, "ddr.channels", "5"), ScenarioError);
  EXPECT_THROW(scenario::apply_key(cfg, "channel.tCL", "2"), ScenarioError);
  scenario::apply_key(cfg, "channel1.tCL", "4");
  EXPECT_EQ(cfg.ddr_channels.at(1).tCL, 4u);
}

TEST(ScenarioChannels, ApertureMustFitCapacityTimesChannels) {
  // Latent ddr_base coupling (fixed): a master window larger than the
  // device is rejected at parse instead of silently wrapping.  The default
  // geometry holds 32 MiB; one channel cannot back a 64 MiB window...
  const char* kOversized =
      "[master 0]\n"
      "base = 0\n"
      "span = 0x4000000\n";  // 64 MiB
  EXPECT_THROW(scenario::parse(kOversized), ScenarioError);
  // ...but two channels double the aperture and the same window fits.
  const auto cfg = scenario::parse(std::string("[ddr]\nchannels = 2\n") +
                                   kOversized);
  EXPECT_EQ(cfg.interleave.channels, 2u);

  // ddr_base shifts the aperture: a window straddling its end fails, and
  // one below ddr_base can never be DDR traffic.
  EXPECT_THROW(scenario::parse("[platform]\nddr_base = 0x1000\n"
                               "[master 0]\nbase = 0x2000000\n"
                               "span = 0x2000000\n"),
               ScenarioError);
  EXPECT_THROW(scenario::parse("[platform]\nddr_base = 0x1000\n"
                               "[master 0]\nbase = 0\nspan = 0x100\n"),
               ScenarioError);
  // Shrinking the geometry shrinks the aperture with it.
  EXPECT_THROW(scenario::parse("[ddr]\nrows = 16\n"
                               "[master 0]\nspan = 0x100000\n"),
               ScenarioError);
  // base + span summing past 2^64 must not wrap around the check.
  EXPECT_THROW(scenario::parse("[master 0]\nbase = 0x8000000000000000\n"
                               "span = 0x8000000000000000\n"),
               ScenarioError);
}

TEST(ScenarioChannels, ChannelSectionsRoundTrip) {
  const char* kText =
      "[ddr]\n"
      "channels = 4\n"
      "interleave_bytes = 512\n"
      "[channel 1]\n"
      "tCL = 6\n"
      "[channel 3]\n"
      "banks = 8\n"
      "mapping = bank-row-col\n"
      "[master 0]\n"
      "items = 10\n";
  const auto cfg = scenario::parse(kText);
  const std::string text = scenario::serialize(cfg);
  // Canonical form: only overridden channels, only their set keys.
  EXPECT_NE(text.find("[channel 1]"), std::string::npos);
  EXPECT_NE(text.find("[channel 3]"), std::string::npos);
  EXPECT_EQ(text.find("[channel 0]"), std::string::npos);
  EXPECT_EQ(text.find("[channel 2]"), std::string::npos);
  const auto reparsed = scenario::parse(text);
  EXPECT_EQ(scenario::serialize(reparsed), text);
  EXPECT_EQ(reparsed.interleave.channels, 4u);
  EXPECT_EQ(reparsed.interleave.stripe_bytes, 512u);
  EXPECT_EQ(reparsed.ddr_channels.at(1).tCL, 6u);
  EXPECT_EQ(reparsed.ddr_channels.at(3).banks, 8u);
  EXPECT_EQ(reparsed.ddr_channels.at(3).mapping, ddr::Mapping::kBankRowCol);
}

// ---------------------------------------------------------- round trip ----

TEST(ScenarioRoundTrip, SerializeParseSerializeIsIdentity) {
  const auto& reg = scenario::ScenarioRegistry::builtin();
  for (const auto& e : reg.entries()) {
    const auto cfg = e.build(0, 0);
    const std::string text = scenario::serialize(cfg);
    const auto reparsed = scenario::parse(text);
    EXPECT_EQ(scenario::serialize(reparsed), text) << e.name;
  }
}

TEST(ScenarioRoundTrip, FieldsSurvive) {
  auto cfg = scenario::ScenarioRegistry::builtin().build("qos-starvation");
  cfg.bus.filter_mask = 0x55;
  cfg.bus.request_pipelining = false;
  cfg.timing = ddr::ddr400();
  cfg.geom.mapping = ddr::Mapping::kBankRowCol;
  cfg.masters[2].traffic.read_ratio = 0.125;
  cfg.max_cycles = 123456;

  const auto rt = scenario::parse(scenario::serialize(cfg));
  EXPECT_EQ(rt.bus.filter_mask, 0x55);
  EXPECT_FALSE(rt.bus.request_pipelining);
  EXPECT_EQ(rt.timing.tRFC, ddr::ddr400().tRFC);
  EXPECT_EQ(rt.geom.mapping, ddr::Mapping::kBankRowCol);
  ASSERT_EQ(rt.masters.size(), cfg.masters.size());
  EXPECT_DOUBLE_EQ(rt.masters[2].traffic.read_ratio, 0.125);
  EXPECT_EQ(rt.masters[2].qos.cls, cfg.masters[2].qos.cls);
  EXPECT_EQ(rt.max_cycles, 123456u);
}

TEST(ScenarioRoundTrip, CheckpointSectionSurvives) {
  auto cfg = scenario::ScenarioRegistry::builtin().build("single-master");
  cfg.checkpoint.at_cycle = 10'000;
  cfg.checkpoint.path = "warm.ckpt";

  const std::string text = scenario::serialize(cfg);
  EXPECT_NE(text.find("[checkpoint]"), std::string::npos);
  const auto rt = scenario::parse(text);
  EXPECT_EQ(rt.checkpoint.at_cycle, 10'000u);
  EXPECT_EQ(rt.checkpoint.path, "warm.ckpt");
  EXPECT_TRUE(rt.checkpoint.enabled());
  EXPECT_EQ(scenario::serialize(rt), text);

  // Dotted overrides reach the section too (sweepable like any knob).
  scenario::apply_key(cfg, "checkpoint.at_cycle", "500");
  scenario::apply_key(cfg, "checkpoint.path", "other.ckpt");
  EXPECT_EQ(cfg.checkpoint.at_cycle, 500u);
  EXPECT_EQ(cfg.checkpoint.path, "other.ckpt");

  // Absent section stays absent (canonical minimal form).
  const auto plain = scenario::ScenarioRegistry::builtin().build("single-master");
  EXPECT_EQ(scenario::serialize(plain).find("[checkpoint]"),
            std::string::npos);
  EXPECT_FALSE(scenario::parse(scenario::serialize(plain)).checkpoint.enabled());
}

TEST(ScenarioErrors, CheckpointBadKeysRejected) {
  EXPECT_THROW(scenario::parse("[checkpoint]\nbogus = 1\n"),
               scenario::ScenarioError);
  EXPECT_THROW(scenario::parse("[checkpoint]\nat_cycle = nope\n"),
               scenario::ScenarioError);
}

TEST(ScenarioRoundTrip, SimSectionSurvives) {
  auto cfg = scenario::ScenarioRegistry::builtin().build("single-master");
  cfg.sim.quantum = 1024;
  cfg.sim.ddr_threads = 4;

  const std::string text = scenario::serialize(cfg);
  EXPECT_NE(text.find("[sim]"), std::string::npos);
  const auto rt = scenario::parse(text);
  EXPECT_EQ(rt.sim.quantum, 1024u);
  EXPECT_EQ(rt.sim.ddr_threads, 4u);
  EXPECT_EQ(scenario::serialize(rt), text);

  // Dotted overrides reach the knobs (sweepable like any other).
  scenario::apply_key(cfg, "sim.quantum", "8");
  scenario::apply_key(cfg, "sim.ddr_threads", "2");
  EXPECT_EQ(cfg.sim.quantum, 8u);
  EXPECT_EQ(cfg.sim.ddr_threads, 2u);

  // Defaults serialize to no section at all (canonical minimal form).
  const auto plain =
      scenario::ScenarioRegistry::builtin().build("single-master");
  EXPECT_EQ(scenario::serialize(plain).find("[sim]"), std::string::npos);
  EXPECT_EQ(scenario::parse(scenario::serialize(plain)).sim,
            core::SimTuning{});
}

TEST(ScenarioErrors, SimBadKeysRejected) {
  EXPECT_THROW(scenario::parse("[sim]\nbogus = 1\n"),
               scenario::ScenarioError);
  EXPECT_THROW(scenario::parse("[sim]\nquantum = 0\n"),
               scenario::ScenarioError);
  EXPECT_THROW(scenario::parse("[sim]\nddr_threads = 0\n"),
               scenario::ScenarioError);
}

// --------------------------------------------------- trace-backed masters --

TEST(ScenarioTrace, TraceMasterParsesAndRoundTrips) {
  const auto cfg = scenario::parse(
      "[master 0]\n"
      "pattern = trace\n"
      "trace = captures/m0.trace\n"
      "[master 1]\n"
      "pattern = cpu\n"
      "items = 20\n");
  ASSERT_EQ(cfg.masters.size(), 2u);
  EXPECT_TRUE(cfg.masters[0].traffic.is_trace());
  EXPECT_EQ(cfg.masters[0].traffic.trace_path, "captures/m0.trace");
  EXPECT_FALSE(cfg.masters[1].traffic.is_trace());

  // Canonical form for a trace master is the minimal delta (no inert
  // synthetic keys), and it round-trips byte-for-byte.
  const std::string text = scenario::serialize(cfg);
  EXPECT_NE(text.find("pattern = trace"), std::string::npos);
  EXPECT_NE(text.find("trace = captures/m0.trace"), std::string::npos);
  const auto reparsed = scenario::parse(text);
  EXPECT_EQ(scenario::serialize(reparsed), text);
  EXPECT_TRUE(reparsed.masters[0].traffic.is_trace());
  EXPECT_EQ(reparsed.masters[0].traffic.trace_path, "captures/m0.trace");
}

TEST(ScenarioTrace, KeyOrderDoesNotMatter) {
  const auto cfg = scenario::parse(
      "[master 0]\n"
      "trace = m0.trace\n"   // path before the pattern flips to trace
      "pattern = trace\n");
  EXPECT_TRUE(cfg.masters[0].traffic.is_trace());
  EXPECT_EQ(cfg.masters[0].traffic.trace_path, "m0.trace");
}

TEST(ScenarioTrace, UnknownPatternErrorListsTrace) {
  try {
    scenario::parse("[master 0]\npattern = fancy\n");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("cpu"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rt-stream"), std::string::npos) << msg;
    EXPECT_NE(msg.find("trace"), std::string::npos) << msg;
  }
}

TEST(ScenarioTrace, TraceWithoutPathRejected) {
  EXPECT_THROW(scenario::parse("[master 0]\npattern = trace\n"),
               ScenarioError);
}

TEST(ScenarioTrace, TracePathOnSyntheticMasterRejected) {
  EXPECT_THROW(scenario::parse(
                   "[master 0]\npattern = cpu\ntrace = m0.trace\n"),
               ScenarioError);
}

TEST(ScenarioTrace, DottedOverridesRouteToTraceKeys) {
  // The sweep axis machinery goes through apply_key; retargeting a trace
  // master must also drop any stale resolved text.
  auto cfg = scenario::parse(
      "[master 0]\npattern = trace\ntrace = a.trace\n");
  cfg.masters[0].traffic.trace_text = "# resolved from a.trace\n";
  scenario::apply_key(cfg, "master0.trace", "b.trace");
  EXPECT_EQ(cfg.masters[0].traffic.trace_path, "b.trace");
  EXPECT_TRUE(cfg.masters[0].traffic.trace_text.empty());
  scenario::apply_key(cfg, "master0.pattern", "dma");
  EXPECT_FALSE(cfg.masters[0].traffic.is_trace());
}

// ------------------------------------------------------------ registry ----

TEST(ScenarioRegistry, PresetsAreValidPlatforms) {
  const auto& reg = scenario::ScenarioRegistry::builtin();
  EXPECT_GE(reg.entries().size(), 17u);  // 12 table1 + single + 4 classes
  for (const auto& e : reg.entries()) {
    const auto cfg = e.build(0, 0);
    EXPECT_EQ(cfg.timing.validate(), "") << e.name;
    EXPECT_FALSE(cfg.masters.empty()) << e.name;
    for (const auto& m : cfg.masters) {
      EXPECT_GE(m.traffic.span, 1024u) << e.name;  // generator minimum
      EXPECT_LE(m.traffic.base + m.traffic.span, cfg.geom.capacity())
          << e.name;
      EXPECT_GT(m.traffic.items, 0u) << e.name;
    }
  }
}

TEST(ScenarioRegistry, LetterAliasesResolve) {
  const auto& reg = scenario::ScenarioRegistry::builtin();
  ASSERT_NE(reg.find("table1/cpu-a"), nullptr);
  EXPECT_EQ(reg.find("table1/cpu-a"), reg.find("table1/cpu-1"));
  EXPECT_EQ(reg.find("table1/rt-d"), reg.find("table1/rt-4"));
  EXPECT_EQ(reg.find("table1/cpu-e"), nullptr);
  EXPECT_EQ(reg.find("no-such"), nullptr);
  EXPECT_THROW(reg.build("no-such"), ScenarioError);
}

TEST(ScenarioRegistry, ItemsAndSeedOverrides) {
  const auto& reg = scenario::ScenarioRegistry::builtin();
  const auto cfg = reg.build("bursty-dma", 33, 99);
  for (const auto& m : cfg.masters) {
    EXPECT_EQ(m.traffic.items, 33u);
    EXPECT_EQ(m.traffic.seed, 99u);
  }
}

TEST(ScenarioRegistry, NewWorkloadClassesRunCleanOnTlm) {
  const auto& reg = scenario::ScenarioRegistry::builtin();
  for (const char* name :
       {"bursty-dma", "bank-conflict", "wbuf-stress", "qos-starvation"}) {
    auto cfg = reg.build(name, 30, 3);
    const auto r = core::run_tlm(cfg);
    EXPECT_TRUE(r.finished) << name;
    EXPECT_EQ(r.protocol_errors, 0u) << name << "\n" << r.first_violations;
    EXPECT_EQ(r.completed, 30u * cfg.masters.size()) << name;
  }
}

TEST(ScenarioRegistry, ParsedPresetRunsLikeBuiltPreset) {
  // A preset pushed through the text format must simulate identically.
  const auto& reg = scenario::ScenarioRegistry::builtin();
  const auto direct = reg.build("table1/cpu-1", 40, 5);
  const auto via_text = scenario::parse(scenario::serialize(direct));
  const auto r1 = core::run_tlm(direct);
  const auto r2 = core::run_tlm(via_text);
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(r1.completed, r2.completed);
}

}  // namespace
