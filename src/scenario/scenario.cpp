#include "scenario/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "ddr/timing.hpp"
#include "scenario/lexer.hpp"
#include "traffic/stimulus.hpp"

namespace ahbp::scenario {

namespace {

using lex::trim;

// ------------------------------------------------------ value parsers ----

std::uint64_t parse_u64(std::string_view v, std::size_t line) {
  const std::string s(trim(v));
  if (s.empty()) {
    throw ScenarioError("empty numeric value", line);
  }
  if (s.front() == '-' || s.front() == '+') {
    // std::stoull would silently wrap negatives to huge values.
    throw ScenarioError("value must be a plain unsigned number: '" + s + "'",
                        line);
  }
  std::size_t pos = 0;
  std::uint64_t out = 0;
  try {
    out = std::stoull(s, &pos, 0);  // base 0: decimal, 0x hex, 0 octal
  } catch (const std::exception&) {
    throw ScenarioError("not a number: '" + s + "'", line);
  }
  if (pos != s.size()) {
    throw ScenarioError("trailing characters in number: '" + s + "'", line);
  }
  return out;
}

std::uint64_t parse_u64_max(std::string_view v, std::uint64_t max,
                            std::size_t line) {
  const std::uint64_t x = parse_u64(v, line);
  if (x > max) {
    throw ScenarioError("value " + std::to_string(x) + " exceeds maximum " +
                            std::to_string(max),
                        line);
  }
  return x;
}

std::uint64_t parse_u64_range(std::string_view v, std::uint64_t min,
                              std::uint64_t max, std::size_t line) {
  const std::uint64_t x = parse_u64_max(v, max, line);
  if (x < min) {
    throw ScenarioError("value " + std::to_string(x) + " is below minimum " +
                            std::to_string(min),
                        line);
  }
  return x;
}

double parse_double(std::string_view v, std::size_t line) {
  const std::string s(trim(v));
  std::size_t pos = 0;
  double out = 0;
  try {
    out = std::stod(s, &pos);
  } catch (const std::exception&) {
    throw ScenarioError("not a number: '" + s + "'", line);
  }
  if (pos != s.size()) {
    throw ScenarioError("trailing characters in number: '" + s + "'", line);
  }
  return out;
}

bool parse_bool(std::string_view v, std::size_t line) {
  const std::string_view s = trim(v);
  if (s == "on" || s == "true" || s == "yes" || s == "1") {
    return true;
  }
  if (s == "off" || s == "false" || s == "no" || s == "0") {
    return false;
  }
  throw ScenarioError("not a boolean (use on/off): '" + std::string(s) + "'",
                      line);
}

// --------------------------------------------------------- formatting ----

std::string fmt_hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string fmt_g(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

// ------------------------------------------------------------ setters ----

void apply_platform(core::PlatformConfig& cfg, std::string_view key,
                    std::string_view value, std::size_t line) {
  if (key == "max_cycles") {
    cfg.max_cycles = parse_u64(value, line);
  } else if (key == "ddr_base") {
    cfg.ddr_base = parse_u64(value, line);
  } else if (key == "checkers") {
    cfg.enable_checkers = parse_bool(value, line);
  } else {
    throw ScenarioError("unknown [platform] key '" + std::string(key) + "'",
                        line);
  }
}

void apply_bus(core::PlatformConfig& cfg, std::string_view key,
               std::string_view value, std::size_t line) {
  ahb::BusConfig& b = cfg.bus;
  if (key == "data_width_bytes") {
    const auto w = static_cast<unsigned>(parse_u64_range(value, 1, 8, line));
    if (!ahb::valid_beat_bytes(w)) {
      // HSIZE encodes log2(bytes): a 3-byte beat does not exist on AHB.
      throw ScenarioError("data_width_bytes must be 1, 2, 4 or 8 (got " +
                              std::to_string(w) + ")",
                          line);
    }
    b.data_width_bytes = w;
  } else if (key == "filter_mask") {
    b.filter_mask =
        static_cast<std::uint8_t>(parse_u64_max(value, 0x7F, line));
  } else if (key == "write_buffer") {
    b.write_buffer_enabled = parse_bool(value, line);
  } else if (key == "write_buffer_depth") {
    b.write_buffer_depth = static_cast<unsigned>(parse_u64(value, line));
  } else if (key == "request_pipelining") {
    b.request_pipelining = parse_bool(value, line);
  } else if (key == "bi_hints") {
    b.bi_hints_enabled = parse_bool(value, line);
  } else if (key == "urgency_slack_threshold") {
    b.urgency_slack_threshold =
        static_cast<std::uint32_t>(parse_u64_max(value, ~std::uint32_t{0}, line));
  } else if (key == "drain_watermark") {
    b.drain_watermark = static_cast<unsigned>(parse_u64(value, line));
  } else if (key == "grant_to_start") {
    b.tlm_grant_to_start = parse_u64(value, line);
  } else {
    throw ScenarioError("unknown [bus] key '" + std::string(key) + "'", line);
  }
}

/// Timing knobs are table-driven (ddr::kTimingFields) so `[ddr]`,
/// `[channel K]` and the serializer share one key list.
const ddr::TimingField* timing_field(std::string_view key) {
  for (const ddr::TimingField& f : ddr::kTimingFields) {
    if (key == f.key) {
      return &f;
    }
  }
  return nullptr;
}

void apply_ddr(core::PlatformConfig& cfg, std::string_view key,
               std::string_view value, std::size_t line) {
  ddr::DdrTiming& t = cfg.timing;
  ddr::Geometry& g = cfg.geom;
  if (const ddr::TimingField* f = timing_field(key)) {
    t.*f->shared = parse_u64(value, line);
  } else if (key == "channels") {
    const auto n = parse_u64_range(value, 1, 8, line);
    if (!ddr::is_power_of_two(n)) {
      throw ScenarioError("channels must be 1, 2, 4 or 8 (got " +
                              std::to_string(n) + ")",
                          line);
    }
    cfg.interleave.channels = static_cast<std::uint32_t>(n);
  } else if (key == "interleave_bytes") {
    const auto b = parse_u64_range(value, 8, 1u << 30, line);
    if (!ddr::is_power_of_two(b)) {
      // The stripe rotation divides by this; non-power-of-two granules
      // would also split beats across channels.
      throw ScenarioError("interleave_bytes must be a power of two (got " +
                              std::to_string(b) + ")",
                          line);
    }
    cfg.interleave.stripe_bytes = b;
  } else if (key == "preset") {
    if (!ddr::timing_preset(trim(value), t)) {
      throw ScenarioError("unknown DDR preset '" + std::string(trim(value)) +
                              "' (ddr266, ddr400, toy)",
                          line);
    }
  } else if (key == "banks") {
    // Minimum 1: Geometry::decode divides by these, so 0 would SIGFPE.
    g.banks =
        static_cast<std::uint32_t>(parse_u64_range(value, 1, 1u << 16, line));
  } else if (key == "rows") {
    g.rows =
        static_cast<std::uint32_t>(parse_u64_range(value, 1, 1u << 24, line));
  } else if (key == "cols") {
    g.cols =
        static_cast<std::uint32_t>(parse_u64_range(value, 1, 1u << 24, line));
  } else if (key == "col_bytes") {
    g.col_bytes =
        static_cast<std::uint32_t>(parse_u64_range(value, 1, 64, line));
  } else if (key == "mapping") {
    const std::string_view m = trim(value);
    if (m == "row-bank-col") {
      g.mapping = ddr::Mapping::kRowBankCol;
    } else if (m == "bank-row-col") {
      g.mapping = ddr::Mapping::kBankRowCol;
    } else {
      throw ScenarioError("unknown mapping '" + std::string(m) +
                              "' (row-bank-col, bank-row-col)",
                          line);
    }
  } else {
    throw ScenarioError("unknown [ddr] key '" + std::string(key) + "'", line);
  }
}

/// `[channel K]` / `channelK.*`: per-channel timing/geometry overrides.
/// Accepts the same keys and bounds as `[ddr]`; unset keys fall back to
/// the shared `[ddr]` configuration at resolve time.
void apply_channel(ddr::ChannelOverride& ch, std::string_view key,
                   std::string_view value, std::size_t line) {
  if (const ddr::TimingField* f = timing_field(key)) {
    ch.*f->opt = parse_u64(value, line);
  } else if (key == "banks") {
    ch.banks =
        static_cast<std::uint32_t>(parse_u64_range(value, 1, 1u << 16, line));
  } else if (key == "rows") {
    ch.rows =
        static_cast<std::uint32_t>(parse_u64_range(value, 1, 1u << 24, line));
  } else if (key == "cols") {
    ch.cols =
        static_cast<std::uint32_t>(parse_u64_range(value, 1, 1u << 24, line));
  } else if (key == "col_bytes") {
    ch.col_bytes =
        static_cast<std::uint32_t>(parse_u64_range(value, 1, 64, line));
  } else if (key == "mapping") {
    const std::string_view m = trim(value);
    if (m == "row-bank-col") {
      ch.mapping = ddr::Mapping::kRowBankCol;
    } else if (m == "bank-row-col") {
      ch.mapping = ddr::Mapping::kBankRowCol;
    } else {
      throw ScenarioError("unknown mapping '" + std::string(m) +
                              "' (row-bank-col, bank-row-col)",
                          line);
    }
  } else {
    throw ScenarioError("unknown [channel] key '" + std::string(key) + "'",
                        line);
  }
}

void apply_master(core::MasterSpec& m, std::string_view key,
                  std::string_view value, std::size_t line) {
  if (key == "class") {
    const std::string_view c = trim(value);
    if (c == "rt") {
      m.qos.cls = ahb::MasterClass::kRealTime;
    } else if (c == "nrt") {
      m.qos.cls = ahb::MasterClass::kNonRealTime;
    } else {
      throw ScenarioError("unknown master class '" + std::string(c) +
                              "' (rt, nrt)",
                          line);
    }
  } else if (key == "objective") {
    m.qos.objective =
        static_cast<std::uint32_t>(parse_u64_max(value, ~std::uint32_t{0}, line));
  } else if (key == "pattern") {
    const std::string_view p = trim(value);
    if (p == "trace") {
      m.traffic.source = traffic::StimulusSource::kTrace;
    } else if (traffic::pattern_from_string(p, m.traffic.kind)) {
      m.traffic.source = traffic::StimulusSource::kSynthetic;
    } else {
      throw ScenarioError("unknown pattern '" + std::string(p) +
                              "' (cpu, dma, rt-stream, random, trace)",
                          line);
    }
  } else if (key == "trace") {
    // New path invalidates any previously resolved content (sweep axes
    // retarget trace masters through this setter).
    m.traffic.trace_path = std::string(trim(value));
    m.traffic.trace_text.clear();
    m.traffic.trace_loaded = false;
  } else if (key == "seed") {
    m.traffic.seed = parse_u64(value, line);
  } else if (key == "items") {
    m.traffic.items = static_cast<unsigned>(parse_u64(value, line));
  } else if (key == "base") {
    m.traffic.base = parse_u64(value, line);
  } else if (key == "span") {
    m.traffic.span = parse_u64(value, line);
  } else if (key == "read_ratio") {
    const double r = parse_double(value, line);
    if (!(r >= 0.0 && r <= 1.0)) {  // negated form also rejects NaN
      throw ScenarioError("read_ratio must be within [0, 1]", line);
    }
    m.traffic.read_ratio = r;
  } else if (key == "period") {
    m.traffic.period = parse_u64(value, line);
  } else if (key == "mean_gap") {
    m.traffic.mean_gap = parse_u64(value, line);
  } else if (key == "dma_burst_beats") {
    m.traffic.dma_burst_beats = static_cast<unsigned>(parse_u64(value, line));
  } else {
    throw ScenarioError("unknown [master] key '" + std::string(key) + "'",
                        line);
  }
}

void apply_checkpoint(core::PlatformConfig& cfg, std::string_view key,
                      std::string_view value, std::size_t line) {
  if (key == "at_cycle") {
    cfg.checkpoint.at_cycle = parse_u64(value, line);
  } else if (key == "path") {
    cfg.checkpoint.path = std::string(trim(value));
  } else {
    throw ScenarioError("unknown [checkpoint] key '" + std::string(key) + "'",
                        line);
  }
}

void apply_sim(core::PlatformConfig& cfg, std::string_view key,
               std::string_view value, std::size_t line) {
  if (key == "quantum") {
    const std::uint64_t q = parse_u64(value, line);
    if (q < 1) {
      throw ScenarioError("sim.quantum must be >= 1", line);
    }
    cfg.sim.quantum = q;
  } else if (key == "ddr_threads") {
    const std::uint64_t t = parse_u64(value, line);
    if (t < 1) {
      throw ScenarioError("sim.ddr_threads must be >= 1", line);
    }
    cfg.sim.ddr_threads = static_cast<unsigned>(t);
  } else {
    throw ScenarioError("unknown [sim] key '" + std::string(key) + "'", line);
  }
}

/// Hard ceiling on `[channel K]` indices (the widest interleave).
constexpr std::size_t kMaxChannels = 8;

/// Route "section" + key to the right setter.  `master_idx` is the index
/// for master sections (~0 for "every master"), or the channel index for
/// channel sections.
void apply_in_section(core::PlatformConfig& cfg, std::string_view section,
                      std::size_t master_idx, std::string_view key,
                      std::string_view value, std::size_t line) {
  if (section == "platform") {
    apply_platform(cfg, key, value, line);
  } else if (section == "bus") {
    apply_bus(cfg, key, value, line);
  } else if (section == "ddr") {
    apply_ddr(cfg, key, value, line);
  } else if (section == "checkpoint") {
    apply_checkpoint(cfg, key, value, line);
  } else if (section == "sim") {
    apply_sim(cfg, key, value, line);
  } else if (section == "channel") {
    if (master_idx >= kMaxChannels) {
      throw ScenarioError("channel index " + std::to_string(master_idx) +
                              " out of range (at most " +
                              std::to_string(kMaxChannels) + " channels)",
                          line);
    }
    if (cfg.ddr_channels.size() <= master_idx) {
      cfg.ddr_channels.resize(master_idx + 1);
    }
    apply_channel(cfg.ddr_channels[master_idx], key, value, line);
  } else if (section == "master") {
    if (master_idx == ~std::size_t{0}) {
      if (cfg.masters.empty()) {
        throw ScenarioError("'master*' override but scenario has no masters",
                            line);
      }
      for (core::MasterSpec& m : cfg.masters) {
        apply_master(m, key, value, line);
      }
    } else {
      if (master_idx >= cfg.masters.size()) {
        throw ScenarioError(
            "master index " + std::to_string(master_idx) + " out of range (" +
                std::to_string(cfg.masters.size()) + " masters)",
            line);
      }
      apply_master(cfg.masters[master_idx], key, value, line);
    }
  } else {
    throw ScenarioError("unknown section '" + std::string(section) + "'",
                        line);
  }
}

}  // namespace

void validate(const core::PlatformConfig& cfg) {
  if (!cfg.interleave.valid()) {
    throw ScenarioError(
        "invalid DDR interleave (channels 1/2/4/8, power-of-two"
        " interleave_bytes >= 8)");
  }
  for (std::size_t k = 0; k < cfg.ddr_channels.size(); ++k) {
    if (k >= cfg.interleave.channels && cfg.ddr_channels[k].any()) {
      throw ScenarioError("[channel " + std::to_string(k) +
                          "] overrides channel " + std::to_string(k) +
                          " but ddr.channels = " +
                          std::to_string(cfg.interleave.channels));
    }
  }
  const auto channels = ddr::resolve_channels(cfg.timing, cfg.geom,
                                              cfg.interleave,
                                              cfg.ddr_channels);
  for (std::size_t k = 0; k < channels.size(); ++k) {
    const std::uint64_t cap = channels[k].geom.capacity();
    if (cfg.interleave.channels > 1 &&
        cap % cfg.interleave.stripe_bytes != 0) {
      throw ScenarioError(
          "interleave_bytes " + std::to_string(cfg.interleave.stripe_bytes) +
          " does not divide channel " + std::to_string(k) + "'s capacity (" +
          std::to_string(cap) + " bytes)");
    }
  }
  // One aperture formula for synthetic windows and trace addresses:
  // core::ddr_aperture_bytes is also what stimulus expansion checks traces
  // against.
  const std::uint64_t aperture = core::ddr_aperture_bytes(cfg);
  const std::uint64_t min_capacity = aperture / cfg.interleave.channels;
  for (std::size_t i = 0; i < cfg.masters.size(); ++i) {
    const traffic::StimulusSpec& t = cfg.masters[i].traffic;
    if (t.is_trace()) {
      // Addresses come from the recorded trace, checked at expansion (the
      // file may legitimately be absent here — a checkpoint of a
      // trace-driven run re-parses its scenario after the file is gone).
      if (t.trace_path.empty() && t.trace_text.empty()) {
        throw ScenarioError("master " + std::to_string(i) +
                            " has pattern = trace but no trace = <path>");
      }
      continue;
    }
    if (!t.trace_path.empty()) {
      throw ScenarioError("master " + std::to_string(i) + " sets trace = " +
                          t.trace_path + " but pattern = " +
                          traffic::to_string(t.kind) +
                          " (use pattern = trace to replay it)");
    }
    if (t.base < cfg.ddr_base) {
      throw ScenarioError("master " + std::to_string(i) +
                          " window starts below ddr_base (base " +
                          fmt_hex(t.base) + " < " + fmt_hex(cfg.ddr_base) +
                          ")");
    }
    // Two-step form: `base - ddr_base + span > aperture` would wrap mod
    // 2^64 for adversarial base/span pairs and let them through.
    if (t.span > aperture || t.base - cfg.ddr_base > aperture - t.span) {
      throw ScenarioError(
          "master " + std::to_string(i) + " window [" + fmt_hex(t.base) +
          ", " + fmt_hex(t.base + t.span) + ") exceeds the DDR aperture (" +
          std::to_string(cfg.interleave.channels) + " channel(s) x " +
          std::to_string(min_capacity) + " bytes from " +
          fmt_hex(cfg.ddr_base) + ")");
    }
  }
}

core::PlatformConfig parse(std::string_view text) {
  core::PlatformConfig cfg;
  cfg.masters.clear();

  std::string section;          // current section name
  // Current [master N] (~0 = every master) or [channel K] index.
  std::size_t master_idx = 0;

  lex::for_each_line(text, [&](const lex::Line& l) {
    if (l.kind == lex::Line::Kind::kSection) {
      std::string_view idx;
      if (l.section == "platform" || l.section == "bus" ||
          l.section == "ddr" || l.section == "checkpoint" ||
          l.section == "sim") {
        section = l.section;
      } else if (lex::channel_section(l.section, idx)) {
        if (idx.empty()) {
          throw ScenarioError("channel section needs an index: [channel K]",
                              l.number);
        }
        master_idx = parse_u64(idx, l.number);
        section = "channel";
      } else if (lex::master_section(l.section, idx)) {
        if (idx.empty()) {
          throw ScenarioError("master section needs an index: [master N]",
                              l.number);
        }
        if (idx == "*") {
          master_idx = ~std::size_t{0};  // every master defined so far
        } else {
          const std::uint64_t n = parse_u64(idx, l.number);
          if (n > cfg.masters.size()) {
            throw ScenarioError("master indices must be contiguous: got " +
                                    std::to_string(n) + " after " +
                                    std::to_string(cfg.masters.size()) +
                                    " masters",
                                l.number);
          }
          if (n == cfg.masters.size()) {
            cfg.masters.emplace_back();
          }
          master_idx = n;
        }
        section = "master";
      } else {
        throw ScenarioError("unknown section '" + std::string(l.section) +
                                "'",
                            l.number);
      }
      return;
    }

    if (section.empty()) {
      throw ScenarioError("key outside any [section]", l.number);
    }
    apply_in_section(cfg, section, master_idx, l.key, l.value, l.number);
  });

  validate(cfg);
  return cfg;
}

core::PlatformConfig parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ScenarioError("cannot open scenario file '" + path + "'");
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

std::string serialize(const core::PlatformConfig& cfg) {
  std::ostringstream os;
  const auto onoff = [](bool b) { return b ? "on" : "off"; };

  os << "# ahbp scenario\n";
  os << "\n[platform]\n";
  os << "max_cycles = " << cfg.max_cycles << "\n";
  os << "ddr_base = " << fmt_hex(cfg.ddr_base) << "\n";
  os << "checkers = " << onoff(cfg.enable_checkers) << "\n";

  const ahb::BusConfig& b = cfg.bus;
  os << "\n[bus]\n";
  os << "data_width_bytes = " << b.data_width_bytes << "\n";
  os << "filter_mask = " << fmt_hex(b.filter_mask) << "\n";
  os << "write_buffer = " << onoff(b.write_buffer_enabled) << "\n";
  os << "write_buffer_depth = " << b.write_buffer_depth << "\n";
  os << "request_pipelining = " << onoff(b.request_pipelining) << "\n";
  os << "bi_hints = " << onoff(b.bi_hints_enabled) << "\n";
  os << "urgency_slack_threshold = " << b.urgency_slack_threshold << "\n";
  os << "drain_watermark = " << b.drain_watermark << "\n";
  os << "grant_to_start = " << b.tlm_grant_to_start << "\n";

  // Only when requested — the canonical form is the minimal delta.
  if (cfg.checkpoint.at_cycle != 0 || !cfg.checkpoint.path.empty()) {
    os << "\n[checkpoint]\n";
    os << "at_cycle = " << cfg.checkpoint.at_cycle << "\n";
    if (!cfg.checkpoint.path.empty()) {
      os << "path = " << cfg.checkpoint.path << "\n";
    }
  }

  // Simulator tuning: only when it deviates from the defaults — the knobs
  // never change results, so the canonical form is the minimal delta.
  if (cfg.sim != core::SimTuning{}) {
    os << "\n[sim]\n";
    if (cfg.sim.quantum != 1) {
      os << "quantum = " << cfg.sim.quantum << "\n";
    }
    if (cfg.sim.ddr_threads != 1) {
      os << "ddr_threads = " << cfg.sim.ddr_threads << "\n";
    }
  }

  const ddr::DdrTiming& t = cfg.timing;
  const ddr::Geometry& g = cfg.geom;
  os << "\n[ddr]\n";
  os << "channels = " << cfg.interleave.channels << "\n";
  os << "interleave_bytes = " << cfg.interleave.stripe_bytes << "\n";
  for (const ddr::TimingField& f : ddr::kTimingFields) {
    os << f.key << " = " << t.*f.shared << "\n";
  }
  os << "banks = " << g.banks << "\n";
  os << "rows = " << g.rows << "\n";
  os << "cols = " << g.cols << "\n";
  os << "col_bytes = " << g.col_bytes << "\n";
  os << "mapping = "
     << (g.mapping == ddr::Mapping::kRowBankCol ? "row-bank-col"
                                                : "bank-row-col")
     << "\n";

  // Per-channel overrides: only channels that deviate from [ddr] and only
  // their set keys — the canonical form is the minimal delta.
  for (std::size_t k = 0; k < cfg.ddr_channels.size(); ++k) {
    const ddr::ChannelOverride& c = cfg.ddr_channels[k];
    if (!c.any()) {
      continue;
    }
    os << "\n[channel " << k << "]\n";
    const auto emit = [&os](const char* key, const auto& opt) {
      if (opt) {
        os << key << " = " << *opt << "\n";
      }
    };
    for (const ddr::TimingField& f : ddr::kTimingFields) {
      emit(f.key, c.*f.opt);
    }
    emit("banks", c.banks);
    emit("rows", c.rows);
    emit("cols", c.cols);
    emit("col_bytes", c.col_bytes);
    if (c.mapping) {
      os << "mapping = "
         << (*c.mapping == ddr::Mapping::kRowBankCol ? "row-bank-col"
                                                     : "bank-row-col")
         << "\n";
    }
  }

  for (std::size_t i = 0; i < cfg.masters.size(); ++i) {
    const core::MasterSpec& m = cfg.masters[i];
    os << "\n[master " << i << "]\n";
    os << "class = "
       << (m.qos.cls == ahb::MasterClass::kRealTime ? "rt" : "nrt") << "\n";
    os << "objective = " << m.qos.objective << "\n";
    if (m.traffic.is_trace()) {
      // Trace-backed stimulus: the synthetic pattern fields are inert, so
      // the canonical form is the minimal delta — pattern + path.  The
      // resolved trace_text is deliberately not a scenario key (checkpoint
      // files embed it alongside the scenario instead).  A path-less spec
      // (resolved text only, e.g. a captured stream never parked on disk)
      // serializes the '<embedded>' marker so the text still parses — its
      // checkpoint supplies the content at restore; running it without
      // one fails with a clear cannot-open-'<embedded>' error.
      os << "pattern = trace\n";
      os << "trace = "
         << (m.traffic.trace_path.empty() ? "<embedded>"
                                          : m.traffic.trace_path)
         << "\n";
      continue;
    }
    os << "pattern = " << traffic::to_string(m.traffic.kind) << "\n";
    os << "seed = " << m.traffic.seed << "\n";
    os << "items = " << m.traffic.items << "\n";
    os << "base = " << fmt_hex(m.traffic.base) << "\n";
    os << "span = " << fmt_hex(m.traffic.span) << "\n";
    os << "read_ratio = " << fmt_g(m.traffic.read_ratio) << "\n";
    os << "period = " << m.traffic.period << "\n";
    os << "mean_gap = " << m.traffic.mean_gap << "\n";
    os << "dma_burst_beats = " << m.traffic.dma_burst_beats << "\n";
  }

  return os.str();
}

void apply_key(core::PlatformConfig& cfg, std::string_view dotted_key,
               std::string_view value) {
  const std::size_t dot = dotted_key.find('.');
  if (dot == std::string_view::npos) {
    throw ScenarioError("override key must be 'section.key': '" +
                        std::string(dotted_key) + "'");
  }
  const std::string_view section = trim(dotted_key.substr(0, dot));
  const std::string_view key = trim(dotted_key.substr(dot + 1));

  if (section == "platform" || section == "bus" || section == "ddr" ||
      section == "checkpoint" || section == "sim") {
    apply_in_section(cfg, section, 0, key, value, 0);
    return;
  }
  if (section.substr(0, 7) == "channel") {
    const std::string_view idx = section.substr(7);
    if (idx.empty()) {
      throw ScenarioError("channel override needs an index: 'channelK.key'");
    }
    apply_in_section(cfg, "channel", parse_u64(idx, 0), key, value, 0);
    return;
  }
  if (section.substr(0, 6) == "master") {
    const std::string_view idx = section.substr(6);
    if (idx == "*") {
      apply_in_section(cfg, "master", ~std::size_t{0}, key, value, 0);
    } else if (!idx.empty()) {
      apply_in_section(cfg, "master", parse_u64(idx, 0), key, value, 0);
    } else {
      throw ScenarioError(
          "master override needs an index or '*': 'masterN.key'");
    }
    return;
  }
  throw ScenarioError("unknown section '" + std::string(section) +
                      "' in override key");
}

}  // namespace ahbp::scenario
