#pragma once

#include <optional>
#include <vector>

#include "ahb/transaction.hpp"
#include "ddr/channels.hpp"
#include "sim/time.hpp"
#include "tlm/bi.hpp"

/// \file ddrc.hpp
/// Transaction-level DDR controller (§3.3): wraps the sharded channel set
/// behind the AHB+ slave-side method interface and the BI exchange.
///
/// The wrapper is deliberately thin — the controller FSMs live in
/// ddr::DdrcEngine and their multi-channel composition in ddr::ChannelSet,
/// both shared with the signal-level model — but it is the component
/// boundary the paper describes ("AHB+ and DDRC are interfaced with a
/// special protocol called BI"), and the TLM bus only ever talks through
/// this interface.

namespace ahbp::tlm {

class TlmDdrc {
 public:
  /// Single-channel controller (the pre-sharding platform, bit-exact).
  TlmDdrc(const ddr::DdrTiming& timing, const ddr::Geometry& geom,
          ahb::Addr region_base)
      : TlmDdrc(std::vector<ddr::ChannelConfig>{{timing, geom}},
                ddr::Interleave{}, region_base) {}

  /// Sharded controller: one resolved config per channel behind `ilv`.
  TlmDdrc(const std::vector<ddr::ChannelConfig>& cfgs,
          const ddr::Interleave& ilv, ahb::Addr region_base)
      : set_(cfgs, ilv), base_(region_base) {}

  /// --- BI exchange (once per cycle, §3.4) ---

  /// Arbiter -> DDRC: next transaction information.
  void bi_downstream(const BiDownstream& down) {
    set_.set_hint(down.next_coord);
  }

  /// DDRC -> arbiter: idle banks and access permission.
  BiUpstream bi_upstream(sim::Cycle now) const {
    return BiUpstream{set_.idle_bank_mask(now), set_.access_permitted(now)};
  }

  /// Bank affinity for a bus address (BI: arbiter evaluates candidates).
  ddr::BankAffinity affinity(ahb::Addr bus_addr, sim::Cycle now) const {
    return set_.affinity_for(offset(bus_addr), now);
  }

  /// --- AHB slave side ---

  bool busy() const noexcept { return set_.busy(); }

  /// Present the address phase of a transaction (NONSEQ cycle).
  void begin(const ahb::Transaction& t, sim::Cycle now);

  /// Advance the controller one cycle (each channel issues at most one
  /// DRAM command).
  ddr::Command step(sim::Cycle now) { return set_.step(now); }

  /// Idle-skip bound: step(t) is a guaranteed no-op for t in
  /// [now, idle_until(now)) (see ChannelSet::idle_until).
  sim::Cycle idle_until(sim::Cycle now) const noexcept {
    return set_.idle_until(now);
  }

  bool read_beat_available(sim::Cycle now) const {
    return set_.read_beat_available(now);
  }
  ahb::Word take_read_beat(sim::Cycle now) {
    return set_.take_read_beat(now);
  }
  bool write_beat_ready(sim::Cycle now) const {
    return set_.write_beat_ready(now);
  }
  void put_write_beat(sim::Cycle now, ahb::Word w) {
    set_.put_write_beat(now, w);
  }

  bool done() const noexcept { return set_.done(); }
  void finish() { set_.finish(); }

  /// Channel + coordinates of a bus address (for BI downstream hints).
  ddr::ChannelCoord coord_of(ahb::Addr bus_addr) const {
    return set_.coord_of(offset(bus_addr));
  }

  const ddr::ChannelSet& channels() const noexcept { return set_; }
  ddr::ChannelSet& channels() noexcept { return set_; }

 private:
  ahb::Addr offset(ahb::Addr bus_addr) const noexcept {
    return bus_addr - base_;
  }

  ddr::ChannelSet set_;
  ahb::Addr base_;
};

}  // namespace ahbp::tlm
