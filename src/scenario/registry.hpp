#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/platform.hpp"

/// \file registry.hpp
/// Named built-in scenarios.
///
/// Covers the paper's Table-1 suite (the twelve master-traffic mixes of
/// core/workloads.hpp, exposed as `table1/<row>`) plus workload classes the
/// table does not probe: bursty DMA trains, pathological single-bank
/// conflicts, write-buffer saturation, and QoS starvation pressure.  Every
/// preset is a plain `PlatformConfig` factory, so `ahbp_sim run <name>` and
/// sweep bases resolve through one table.

namespace ahbp::scenario {

struct ScenarioInfo {
  std::string name;
  std::string description;
  /// Build the configuration.  `items` scales transactions per master and
  /// `seed` the traffic streams; pass 0 to keep the preset's default.
  std::function<core::PlatformConfig(unsigned items, std::uint64_t seed)>
      build;
};

class ScenarioRegistry {
 public:
  /// The built-in presets (constructed once, in listing order).
  static const ScenarioRegistry& builtin();

  /// Look a preset up by name.  Table-1 rows answer to both their numeric
  /// name (`table1/cpu-1`) and a letter alias (`table1/cpu-a`).  Returns
  /// nullptr when unknown.
  const ScenarioInfo* find(std::string_view name) const;

  /// Build a preset's configuration (items/seed 0 = preset default).
  /// Throws ScenarioError on an unknown name.
  core::PlatformConfig build(std::string_view name, unsigned items = 0,
                             std::uint64_t seed = 0) const;

  const std::vector<ScenarioInfo>& entries() const noexcept {
    return entries_;
  }

  void add(ScenarioInfo info);

 private:
  std::vector<ScenarioInfo> entries_;
};

/// Resolve a scenario reference — a built-in preset name first, a scenario
/// file path second — the one lookup rule shared by the CLI and sweep
/// bases.  `items`/`seed` of 0 keep the preset's (or file's) own values.
/// Throws ScenarioError when `ref` is neither.
core::PlatformConfig load_scenario(const std::string& ref, unsigned items = 0,
                                   std::uint64_t seed = 0);

}  // namespace ahbp::scenario
