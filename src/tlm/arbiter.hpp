#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "ahb/config.hpp"
#include "ahb/qos.hpp"
#include "ahb/transaction.hpp"
#include "ddr/scheduler.hpp"
#include "sim/time.hpp"

/// \file arbiter.hpp
/// The AHB+ arbitration filter pipeline.
///
/// §3.3: "seven arbitration filters are implemented and they are always
/// activated without the consideration of master / slave combinations."
/// The Samsung-internal filter definitions are not public; DESIGN.md §5.3
/// documents our reconstruction.  Each filter narrows the candidate set; a
/// filter that would empty a non-empty set passes it through unchanged
/// (except the request filter, which defines the base set).  The final
/// priority filter always leaves exactly one candidate, so arbitration is
/// total and deterministic.
///
/// The pipeline is *decision logic only* — no bus state — so the TLM
/// arbiter and the signal-level arbiter execute the very same code, the TLM
/// feeding it from method calls and the RTL model from sampled signals.

namespace ahbp::tlm {

/// Candidate bitmask; bit i = master i, bit `masters` = write buffer.
using CandidateMask = std::uint32_t;

/// Everything a filter may consult about one candidate.
struct ArbCandidate {
  bool requesting = false;
  bool is_write = false;
  bool locked = false;
  unsigned beats = 0;  ///< burst length of the pending transaction
  sim::Cycle requested_at = 0;
  /// Bank affinity of the candidate's next transaction (BI information);
  /// kIdle when unknown (e.g. BI disabled).
  ddr::BankAffinity affinity = ddr::BankAffinity::kIdle;
  /// Read hazard: candidate's read overlaps a buffered write and must wait.
  bool blocked_by_hazard = false;
};

/// Snapshot consumed by the pipeline each arbitration round.
struct ArbContext {
  sim::Cycle now = 0;
  const ahb::BusConfig* cfg = nullptr;
  const ahb::QosRegisterFile* qos = nullptr;  ///< real masters only
  std::vector<ArbCandidate> candidates;       ///< size = masters + 1 (wbuf last)
  unsigned masters = 0;                       ///< real master count
  /// Owner of an in-flight locked transaction (kNoMaster when none).
  ahb::MasterId lock_owner = ahb::kNoMaster;
  /// Write buffer urgency (full or read hazard) — see WriteBuffer::urgent().
  bool wbuf_urgent = false;
  /// Most recent grant, for round-robin rotation.
  ahb::MasterId last_grant = ahb::kNoMaster;

  CandidateMask wbuf_bit() const noexcept { return 1U << masters; }
};

/// One stage of the pipeline.
class ArbitrationFilter {
 public:
  virtual ~ArbitrationFilter() = default;
  virtual std::string_view name() const noexcept = 0;
  virtual ahb::FilterBit bit() const noexcept = 0;
  virtual CandidateMask apply(const ArbContext& ctx,
                              CandidateMask in) const = 0;
};

/// The fixed seven-stage pipeline.  Stages honour the config's filter mask
/// (§3.7 "arbitration algorithm on/off"): a disabled stage is an identity.
class FilterPipeline {
 public:
  FilterPipeline();

  /// Run the pipeline.  Returns the winner, or nullopt when nobody is
  /// requesting.  `trace`, when non-null, receives the mask after every
  /// stage (diagnostics / the arbitration example app).
  std::optional<ahb::MasterId> arbitrate(
      const ArbContext& ctx,
      std::vector<std::pair<std::string_view, CandidateMask>>* trace =
          nullptr) const;

  /// Stage list (for tests that exercise filters in isolation).
  const std::vector<const ArbitrationFilter*>& stages() const noexcept {
    return stage_views_;
  }

 private:
  std::vector<std::unique_ptr<ArbitrationFilter>> stages_;
  std::vector<const ArbitrationFilter*> stage_views_;
};

/// Bookkeeping arbiter shared by both models: wraps the pipeline with QoS
/// state updates (request tracking, budget accounting, epoch refill) and
/// grant statistics.
class Arbiter {
 public:
  Arbiter(const ahb::BusConfig& cfg, ahb::QosRegisterFile& qos);

  /// Advance the budget-epoch clock.  Call once per bus cycle (both models
  /// do) so budget refills are periodic even when arbitration is idle.
  void tick(sim::Cycle now);

  /// Bulk-replay the epoch clock over skipped idle cycles: exactly the
  /// state tick() would have produced if called for every now in
  /// [from, to).  Only legal over a stretch with no requests and no grants
  /// (refill_budgets() is idempotent across consecutive epochs then).
  void skip_idle(sim::Cycle from, sim::Cycle to);

  /// Note that master `m` raised a request at `now` (updates QoS state).
  void on_request(ahb::MasterId m, sim::Cycle now);

  /// Run one arbitration round.  On a grant, updates budgets, round-robin
  /// state and QoS bookkeeping, and returns the winner with their wait.
  struct Grant {
    ahb::MasterId master = ahb::kNoMaster;
    sim::Cycle waited = 0;
    bool is_wbuf = false;
  };
  std::optional<Grant> arbitrate(ArbContext& ctx);

  ahb::MasterId last_grant() const noexcept { return last_grant_; }
  std::uint64_t grants() const noexcept { return grants_; }
  const FilterPipeline& pipeline() const noexcept { return pipeline_; }

  /// Round-robin cursor, grant counter and budget-epoch clock (the filter
  /// pipeline itself is stateless decision logic).
  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);

 private:
  const ahb::BusConfig& cfg_;
  ahb::QosRegisterFile& qos_;
  FilterPipeline pipeline_;
  ahb::MasterId last_grant_ = ahb::kNoMaster;
  std::uint64_t grants_ = 0;
  sim::Cycle last_epoch_ = 0;
};

}  // namespace ahbp::tlm
