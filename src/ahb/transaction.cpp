#include "ahb/transaction.hpp"

#include "ahb/address.hpp"

namespace ahbp::ahb {

bool structurally_valid(const Transaction& t) noexcept {
  if (t.beats == 0) {
    return false;
  }
  // Alignment: AHB requires the address aligned to the transfer size.
  if (t.addr % size_bytes(t.size) != 0) {
    return false;
  }
  // Fixed-length bursts must carry exactly their architectural beat count.
  const unsigned fixed = burst_fixed_beats(t.burst);
  if (fixed != 0 && t.beats != fixed) {
    return false;
  }
  // Undefined-length INCR must still respect the 1KB boundary.
  if (!burst_within_1kb(t.addr, t.size, t.burst, t.beats)) {
    return false;
  }
  // Write payloads must cover every beat.
  if (t.dir == Dir::kWrite && t.data.size() < t.beats) {
    return false;
  }
  return true;
}

}  // namespace ahbp::ahb
