// Traffic RNG ownership regression (the checkpoint-determinism bugfix):
// script expansion must be a pure function of (PatternConfig, master) — an
// explicitly owned, explicitly seeded engine per master stream, no
// function-local statics, no engine shared across masters or threads.
// Restored checkpoints regenerate their scripts, and `--jobs N` sweep
// workers expand scripts concurrently, so any hidden shared state here
// would surface as nondeterministic resumed runs.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/platform.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"
#include "state/snapshot.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"
#include "traffic/generator.hpp"

namespace {

using namespace ahbp;

bool same_script(const traffic::Script& a, const traffic::Script& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const ahb::Transaction& x = a[i].txn;
    const ahb::Transaction& y = b[i].txn;
    if (a[i].gap != b[i].gap || x.addr != y.addr || x.dir != y.dir ||
        x.size != y.size || x.burst != y.burst || x.beats != y.beats ||
        x.data != y.data) {
      return false;
    }
  }
  return true;
}

traffic::PatternConfig pattern(traffic::PatternKind kind) {
  traffic::PatternConfig cfg;
  cfg.kind = kind;
  cfg.seed = 99;
  cfg.items = 120;
  cfg.span = 1 << 20;
  return cfg;
}

TEST(TrafficDeterminism, RepeatedExpansionIsBitIdentical) {
  for (const auto kind :
       {traffic::PatternKind::kCpu, traffic::PatternKind::kDma,
        traffic::PatternKind::kRtStream, traffic::PatternKind::kRandom}) {
    const auto cfg = pattern(kind);
    const traffic::Script first = traffic::make_script(cfg, 2);
    for (int rep = 0; rep < 3; ++rep) {
      EXPECT_TRUE(same_script(first, traffic::make_script(cfg, 2)))
          << traffic::to_string(kind);
    }
  }
}

TEST(TrafficDeterminism, ConcurrentExpansionIsBitIdentical) {
  // 8 threads expand the same 4 master streams simultaneously; a shared or
  // static engine would interleave draws and diverge.
  const auto cfg = pattern(traffic::PatternKind::kRandom);
  std::vector<traffic::Script> expected;
  for (ahb::MasterId m = 0; m < 4; ++m) {
    expected.push_back(traffic::make_script(cfg, m));
  }
  std::vector<std::vector<traffic::Script>> got(8);
  std::vector<std::thread> threads;
  for (auto& slot : got) {
    threads.emplace_back([&cfg, &slot] {
      for (ahb::MasterId m = 0; m < 4; ++m) {
        slot.push_back(traffic::make_script(cfg, m));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (const auto& slot : got) {
    for (ahb::MasterId m = 0; m < 4; ++m) {
      EXPECT_TRUE(same_script(expected[m], slot[m])) << "master " << int(m);
    }
  }
}

TEST(TrafficDeterminism, MasterStreamsAreDecorrelated) {
  const auto cfg = pattern(traffic::PatternKind::kRandom);
  EXPECT_FALSE(same_script(traffic::make_script(cfg, 0),
                           traffic::make_script(cfg, 1)));
  EXPECT_NE(traffic::TrafficRng(cfg.seed, 0).stream_seed(),
            traffic::TrafficRng(cfg.seed, 1).stream_seed());
}

TEST(TrafficDeterminism, LongerItemsExtendTheScriptPrefix) {
  // Warm-up-forked sweeps over `items` axes rely on this: the first N
  // items never change when the script grows.
  for (const auto kind :
       {traffic::PatternKind::kCpu, traffic::PatternKind::kDma,
        traffic::PatternKind::kRtStream, traffic::PatternKind::kRandom}) {
    auto cfg = pattern(kind);
    const traffic::Script small = traffic::make_script(cfg, 1);
    cfg.items *= 2;
    traffic::Script big = traffic::make_script(cfg, 1);
    ASSERT_EQ(big.size(), small.size() * 2) << traffic::to_string(kind);
    big.resize(small.size());
    // Ids are stamped per script; compare content only.
    EXPECT_TRUE(same_script(small, big)) << traffic::to_string(kind);
  }
}

TEST(TrafficDeterminism, ScriptSourceStateRoundTrips) {
  const auto cfg = pattern(traffic::PatternKind::kRtStream);
  traffic::ScriptSource src(traffic::make_script(cfg, 0));
  (void)src.pop(0);
  src.on_complete(10);
  (void)src.pop(10 + cfg.period);
  src.on_complete(40);

  state::StateWriter w;
  src.save_state(w);
  const auto bytes = w.finish();

  traffic::ScriptSource fresh(traffic::make_script(cfg, 0));
  state::StateReader r(bytes.data(), bytes.size());
  fresh.restore_state(r);
  EXPECT_EQ(fresh.issued(), src.issued());
  EXPECT_EQ(fresh.ready(40 + cfg.period), src.ready(40 + cfg.period));

  // Restoring into a shorter script (fewer items than already issued) must
  // be rejected, not replayed into nonsense.
  auto short_cfg = cfg;
  short_cfg.items = 1;
  traffic::ScriptSource tiny(traffic::make_script(short_cfg, 0));
  state::StateReader r2(bytes.data(), bytes.size());
  EXPECT_THROW(tiny.restore_state(r2), state::StateError);
}

TEST(TrafficDeterminism, ForkedSweepIsDeterministicAcrossJobCounts) {
  // The end-to-end regression: a warm-up-forked sweep must produce
  // identical per-point results no matter how many workers raced, because
  // every worker regenerates scripts and restores the shared snapshot
  // independently.
  sweep::SweepSpec spec;
  spec.base = "table1/rt-1";
  spec.base_config =
      scenario::ScenarioRegistry::builtin().build("table1/rt-1", 80, 7);
  spec.axes.push_back({"master3.items", {"80", "96", "112"}});
  const auto points = sweep::expand(spec);

  const auto run = [&](unsigned jobs) {
    return sweep::SweepRunner(jobs).run(points, sweep::Model::kTlm,
                                        spec.base_config, 600);
  };
  const auto one = run(1);
  const auto four = run(4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].error, four[i].error) << i;
    EXPECT_EQ(one[i].tlm.cycles, four[i].tlm.cycles) << i;
    EXPECT_EQ(one[i].tlm.ran_cycles, four[i].tlm.ran_cycles) << i;
    EXPECT_EQ(one[i].tlm.completed, four[i].tlm.completed) << i;
    EXPECT_EQ(one[i].tlm.qos_warnings, four[i].tlm.qos_warnings) << i;
  }
}

}  // namespace
