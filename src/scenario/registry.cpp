#include "scenario/registry.hpp"

#include <fstream>

#include "core/workloads.hpp"
#include "scenario/scenario.hpp"

namespace ahbp::scenario {

namespace {

unsigned or_default(unsigned items, unsigned def) {
  return items ? items : def;
}
std::uint64_t or_default(std::uint64_t seed, std::uint64_t def) {
  return seed ? seed : def;
}

core::PlatformConfig bursty_dma(unsigned items, std::uint64_t seed) {
  // Three competing 16-beat DMA trains and one CPU master: sustained
  // back-to-back bursts keep the data bus saturated and make the grant
  // handover / request-pipelining path the bottleneck.
  core::PlatformConfig cfg = core::default_platform(4, seed, items);
  for (unsigned m = 0; m < 3; ++m) {
    auto& s = cfg.masters[m];
    s.qos.cls = ahb::MasterClass::kNonRealTime;
    s.qos.objective = 128;
    s.traffic.kind = traffic::PatternKind::kDma;
    s.traffic.dma_burst_beats = 16;
  }
  cfg.masters[3].traffic.mean_gap = 2;
  return cfg;
}

core::PlatformConfig bank_conflict(unsigned items, std::uint64_t seed) {
  // Pathological bank conflicts: the bank-serial mapping gives each bank a
  // contiguous quarter of the address space, and every master's window is
  // squeezed into bank 0 — so all traffic fights over one row buffer and
  // the bank-interleaving filter has nothing to exploit.
  core::PlatformConfig cfg = core::default_platform(4, seed, items);
  cfg.geom.mapping = ddr::Mapping::kBankRowCol;
  const ahb::Addr bank_bytes = cfg.geom.capacity() / cfg.geom.banks;
  const ahb::Addr window = bank_bytes / 4;
  for (unsigned m = 0; m < 4; ++m) {
    auto& t = cfg.masters[m].traffic;
    t.base = window * m;  // all four windows inside bank 0
    t.span = window / 2;
    t.mean_gap = 2;
  }
  return cfg;
}

core::PlatformConfig wbuf_stress(unsigned items, std::uint64_t seed) {
  // Write-buffer saturation: write-dominated traffic from every master
  // against a shallow 2-entry buffer, so absorption, watermark drain and
  // full-stall escalation are all exercised continuously.
  core::PlatformConfig cfg = core::default_platform(4, seed, items);
  cfg.bus.write_buffer_depth = 2;
  for (unsigned m = 0; m < 4; ++m) {
    auto& s = cfg.masters[m];
    s.traffic.kind = m % 2 == 0 ? traffic::PatternKind::kCpu
                                : traffic::PatternKind::kRandom;
    s.traffic.read_ratio = 0.05;
    s.traffic.mean_gap = 1;
  }
  return cfg;
}

core::PlatformConfig qos_starvation(unsigned items, std::uint64_t seed) {
  // QoS starvation pressure: a tight real-time stream against two
  // heavyweight DMA masters and a zero-weight best-effort master.  The RT
  // objective is barely feasible, so the urgency filter decides whether the
  // stream survives, and the best-effort master probes fairness floor.
  core::PlatformConfig cfg = core::default_platform(4, seed, items);
  auto& rt = cfg.masters[0];
  rt.qos.cls = ahb::MasterClass::kRealTime;
  rt.qos.objective = 24;
  rt.traffic.kind = traffic::PatternKind::kRtStream;
  rt.traffic.period = 32;
  for (unsigned m = 1; m < 3; ++m) {
    auto& s = cfg.masters[m];
    s.qos.objective = 255;
    s.traffic.kind = traffic::PatternKind::kDma;
    s.traffic.dma_burst_beats = 16;
  }
  auto& be = cfg.masters[3];
  be.qos.objective = 0;  // best effort
  be.traffic.kind = traffic::PatternKind::kRandom;
  be.traffic.mean_gap = 2;
  return cfg;
}

ScenarioRegistry make_builtin() {
  ScenarioRegistry r;

  // Table-1 rows: resolved lazily so changing `items`/`seed` regenerates
  // the whole suite consistently.
  const auto rows = core::table1_workloads(1, 1);  // names only
  for (std::size_t i = 0; i < rows.size(); ++i) {
    r.add({"table1/" + rows[i].name,
           "Table-1 row " + std::to_string(i + 1) + " (" + rows[i].name +
               "): 4-master mix from the paper's accuracy suite",
           [i](unsigned items, std::uint64_t seed) {
             return core::table1_workloads(or_default(items, 400u),
                                           or_default(seed, 1ull))[i]
                 .config;
           }});
  }

  r.add({"single-master",
         "one CPU master, the paper's 456 Kcycles/s speed data point",
         [](unsigned items, std::uint64_t seed) {
           return core::single_master_workload(or_default(items, 2000u),
                                               or_default(seed, 1ull))
               .config;
         }});

  r.add({"bursty-dma",
         "three 16-beat DMA trains + one CPU master: saturated data bus,"
         " grant-handover bound",
         [](unsigned items, std::uint64_t seed) {
           return bursty_dma(or_default(items, 400u), or_default(seed, 1ull));
         }});

  r.add({"bank-conflict",
         "bank-serial mapping with every master windowed into bank 0:"
         " worst-case row-buffer thrash",
         [](unsigned items, std::uint64_t seed) {
           return bank_conflict(or_default(items, 400u),
                                or_default(seed, 1ull));
         }});

  r.add({"wbuf-stress",
         "write-dominated traffic against a 2-entry write buffer: absorb /"
         " drain / full-stall paths saturated",
         [](unsigned items, std::uint64_t seed) {
           return wbuf_stress(or_default(items, 400u), or_default(seed, 1ull));
         }});

  r.add({"qos-starvation",
         "tight RT stream vs heavyweight DMA and a zero-weight best-effort"
         " master: urgency & budget filters under pressure",
         [](unsigned items, std::uint64_t seed) {
           return qos_starvation(or_default(items, 400u),
                                 or_default(seed, 1ull));
         }});

  return r;
}

}  // namespace

const ScenarioRegistry& ScenarioRegistry::builtin() {
  static const ScenarioRegistry r = make_builtin();
  return r;
}

void ScenarioRegistry::add(ScenarioInfo info) {
  entries_.push_back(std::move(info));
}

const ScenarioInfo* ScenarioRegistry::find(std::string_view name) const {
  for (const ScenarioInfo& e : entries_) {
    if (e.name == name) {
      return &e;
    }
  }
  // Letter alias for numbered rows: "table1/cpu-a" -> "table1/cpu-1".
  if (name.size() >= 2 && name[name.size() - 2] == '-') {
    const char c = name.back();
    if (c >= 'a' && c <= 'd') {
      std::string numbered(name);
      numbered.back() = static_cast<char>('1' + (c - 'a'));
      for (const ScenarioInfo& e : entries_) {
        if (e.name == numbered) {
          return &e;
        }
      }
    }
  }
  return nullptr;
}

core::PlatformConfig ScenarioRegistry::build(std::string_view name,
                                             unsigned items,
                                             std::uint64_t seed) const {
  const ScenarioInfo* info = find(name);
  if (info == nullptr) {
    throw ScenarioError("unknown scenario '" + std::string(name) +
                        "' (see `ahbp_sim list`)");
  }
  return info->build(items, seed);
}

core::PlatformConfig load_scenario(const std::string& ref, unsigned items,
                                   std::uint64_t seed) {
  const ScenarioRegistry& reg = ScenarioRegistry::builtin();
  if (reg.find(ref) != nullptr) {
    return reg.build(ref, items, seed);
  }
  // `workload/NAME` names a registered capture: the replay scenario that
  // `ahbp_sim run --capture-trace --register NAME` installed under
  // captures/NAME/ (resolved relative to the CWD, like any scenario path).
  if (ref.rfind("workload/", 0) == 0) {
    const std::string name = ref.substr(9);
    const std::string path = "captures/" + name + "/replay.scenario";
    std::ifstream reg_probe(path);
    if (!reg_probe) {
      throw ScenarioError(
          "workload '" + name + "' is not registered (no " + path +
          "); record one with: ahbp_sim run <scenario> --register " + name);
    }
    core::PlatformConfig cfg = parse_file(path);
    if (items != 0) {
      apply_key(cfg, "master*.items", std::to_string(items));
    }
    if (seed != 0) {
      apply_key(cfg, "master*.seed", std::to_string(seed));
    }
    return cfg;
  }
  std::ifstream probe(ref);
  if (!probe) {
    throw ScenarioError("'" + ref +
                        "' is neither a built-in scenario (see `ahbp_sim"
                        " list`) nor a readable scenario file");
  }
  core::PlatformConfig cfg = parse_file(ref);
  if (items != 0) {
    apply_key(cfg, "master*.items", std::to_string(items));
  }
  if (seed != 0) {
    apply_key(cfg, "master*.seed", std::to_string(seed));
  }
  return cfg;
}

}  // namespace ahbp::scenario
