#include "ddr/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "ahb/address.hpp"

namespace ahbp::ddr {

namespace {

/// Beats one CAS command may cover (DDR burst-length 8 equivalent).
constexpr unsigned kMaxCasBeats = 8;

/// Posted-write queue capacity (column-command chunks).
constexpr std::size_t kMaxWriteQueue = 8;

}  // namespace

BankAffinity bank_affinity(BankState state, std::uint32_t open_row,
                           const Coord& want) noexcept {
  switch (state) {
    case BankState::kActive:
    case BankState::kActivating:
      return open_row == want.row ? BankAffinity::kOpenRow
                                  : BankAffinity::kConflict;
    case BankState::kIdle:
      return BankAffinity::kIdle;
    case BankState::kPrecharging:
      return BankAffinity::kConflict;
  }
  return BankAffinity::kConflict;
}

DdrcEngine::DdrcEngine(const DdrTiming& timing, const Geometry& geom)
    : timing_(timing), geom_(geom), engine_(timing, geom) {}

void DdrcEngine::decompose(CurrentTxn& txn) const {
  if (!ahb::valid_beat_bytes(txn.req.beat_bytes)) {
    throw std::invalid_argument("DdrcEngine: beat_bytes must be 1/2/4/8");
  }
  const auto size = ahb::size_for_bytes(txn.req.beat_bytes);
  // Columns one sequential beat may advance: 1 for column-sized or
  // narrower beats (several narrow beats share a column, then step by
  // one), >1 for beats wider than a column.
  const std::uint32_t col_step =
      std::max(1u, txn.req.beat_bytes / geom_.col_bytes);
  txn.beat_addr.resize(txn.req.beats);
  txn.chunks.clear();
  Coord prev{};
  for (unsigned i = 0; i < txn.req.beats; ++i) {
    txn.beat_addr[i] =
        ahb::burst_beat_addr(txn.req.addr, size, txn.req.burst, i);
    const Coord c = geom_.decode(txn.beat_addr[i]);
    // A chunk is a run of beats in one (bank,row) whose columns advance
    // sequentially (sub-column beats repeat the same column, wide beats
    // stride several).  Each chunk maps onto a single CAS command, capped
    // at kMaxCasBeats.
    const bool extend =
        i > 0 && !txn.chunks.empty() &&
        txn.chunks.back().beats < kMaxCasBeats && prev.bank == c.bank &&
        prev.row == c.row &&
        (c.col == prev.col ||
         (c.col > prev.col && c.col - prev.col <= col_step));
    if (extend) {
      ++txn.chunks.back().beats;
    } else {
      txn.chunks.push_back(Chunk{c, 1, 0, false});
    }
    prev = c;
  }
}

void DdrcEngine::begin(const MemRequest& req, sim::Cycle now) {
  if (busy()) {
    throw std::logic_error("DdrcEngine::begin while busy");
  }
  if (req.beats == 0) {
    throw std::invalid_argument("DdrcEngine::begin: zero beats");
  }
  // Rebuild the persistent CurrentTxn in place: decompose() resizes
  // beat_addr / refills chunks, and beat_ready is assign()ed — all three
  // reuse whatever capacity earlier transactions left behind.
  cur_.req = req;
  decompose(cur_);
  if (!req.is_write) {
    cur_.beat_ready.assign(req.beats, sim::kNeverCycle);
  } else {
    cur_.beat_ready.clear();
  }
  cur_.active_chunk = 0;
  cur_.beats_issued = 0;
  cur_.beats_consumed = 0;
  cur_.last_consume = now;  // consumption can start next cycle at earliest
  cur_.beats_accepted = 0;
  cur_active_ = true;
}

bool DdrcEngine::done() const noexcept {
  if (!cur_active_) {
    return false;
  }
  const CurrentTxn& t = cur_;
  return t.req.is_write ? t.beats_accepted >= t.req.beats
                        : t.beats_consumed >= t.req.beats;
}

void DdrcEngine::finish() {
  if (!done()) {
    throw std::logic_error("DdrcEngine::finish before done");
  }
  cur_active_ = false;  // vectors keep their capacity for the next begin()
}

// ----------------------------------------------------------- read stream

bool DdrcEngine::read_beat_available(sim::Cycle now) const noexcept {
  if (!cur_active_ || cur_.req.is_write) {
    return false;
  }
  const CurrentTxn& t = cur_;
  if (t.beats_consumed >= t.req.beats) {
    return false;
  }
  const sim::Cycle ready = t.beat_ready[t.beats_consumed];
  if (ready == sim::kNeverCycle || now < ready) {
    return false;
  }
  // One beat per bus cycle.
  return t.beats_consumed == 0 || now > t.last_consume;
}

ahb::Word DdrcEngine::take_read_beat(sim::Cycle now) {
  if (!read_beat_available(now)) {
    throw std::logic_error("DdrcEngine::take_read_beat: no beat available");
  }
  CurrentTxn& t = cur_;
  const ahb::Word w =
      mem_.read(t.beat_addr[t.beats_consumed], t.req.beat_bytes);
  ++t.beats_consumed;
  t.last_consume = now;
  return w;
}

// ---------------------------------------------------------- write stream

bool DdrcEngine::write_beat_ready(sim::Cycle now) const noexcept {
  (void)now;
  if (!cur_active_ || !cur_.req.is_write) {
    return false;
  }
  if (cur_.beats_accepted >= cur_.req.beats) {
    return false;
  }
  // Back-pressure: no room to queue another chunk means no acceptance.
  return write_queue_.size() < kMaxWriteQueue;
}

void DdrcEngine::put_write_beat(sim::Cycle now, ahb::Word w) {
  if (!write_beat_ready(now)) {
    throw std::logic_error("DdrcEngine::put_write_beat: not ready");
  }
  CurrentTxn& t = cur_;
  mem_.write(t.beat_addr[t.beats_accepted], w, t.req.beat_bytes);
  ++t.beats_accepted;
  // When acceptance crosses a chunk boundary, queue that chunk for the
  // background drain.
  unsigned boundary = 0;
  for (const Chunk& c : t.chunks) {
    boundary += c.beats;
    if (boundary == t.beats_accepted) {
      write_queue_.push_back(WriteChunk{c.start, c.beats});
      break;
    }
    if (boundary > t.beats_accepted) {
      break;
    }
  }
}

// ----------------------------------------------------------------- hints

void DdrcEngine::set_hint(std::optional<Coord> hint) { hint_ = hint; }

bool DdrcEngine::access_permitted(sim::Cycle now) const noexcept {
  return !engine_.refresh_due(now) && !engine_.in_refresh(now);
}

BankAffinity DdrcEngine::affinity_for(ahb::Addr offset, sim::Cycle now) const {
  const Coord c = geom_.decode(offset);
  return bank_affinity(engine_.bank_state(c.bank, now),
                       engine_.open_row(c.bank), c);
}

// --------------------------------------------------------- command pick

bool DdrcEngine::bank_needed_soon(std::uint32_t bank) const {
  if (cur_active_) {
    const CurrentTxn& t = cur_;
    if (!t.req.is_write) {
      for (std::size_t i = t.active_chunk; i < t.chunks.size(); ++i) {
        if (t.chunks[i].start.bank == bank) {
          return true;
        }
      }
    } else {
      // Every chunk of an in-flight write will eventually drain.
      for (const Chunk& c : t.chunks) {
        if (c.start.bank == bank) {
          return true;
        }
      }
    }
  }
  for (const WriteChunk& w : write_queue_) {
    if (w.start.bank == bank) {
      return true;
    }
  }
  return false;
}

std::optional<Command> DdrcEngine::column_for_read(sim::Cycle now) {
  if (!cur_active_ || cur_.req.is_write) {
    return std::nullopt;
  }
  CurrentTxn& t = cur_;
  if (t.active_chunk >= t.chunks.size()) {
    return std::nullopt;
  }
  Chunk& c = t.chunks[t.active_chunk];
  Command cmd{CmdKind::kRead, c.start.bank, c.start.row, c.start.col, c.beats};
  if (!c.classified) {
    const BankAffinity a = bank_affinity(
        engine_.bank_state(c.start.bank, now), engine_.open_row(c.start.bank),
        c.start);
    c.classified = true;
    if (a == BankAffinity::kOpenRow) {
      ++hits_.row_hits;
    } else if (a == BankAffinity::kIdle) {
      ++hits_.row_misses;
    } else {
      ++hits_.row_conflicts;
    }
  }
  if (!engine_.can_issue(cmd, now)) {
    return std::nullopt;
  }
  return cmd;
}

std::optional<Command> DdrcEngine::column_for_write_drain(
    sim::Cycle now) const {
  if (write_queue_.empty()) {
    return std::nullopt;
  }
  const WriteChunk& w = write_queue_.front();
  Command cmd{CmdKind::kWrite, w.start.bank, w.start.row, w.start.col, w.beats};
  if (!engine_.can_issue(cmd, now)) {
    return std::nullopt;
  }
  return cmd;
}

std::optional<Command> DdrcEngine::row_or_pre_for(const Coord& c,
                                                  sim::Cycle now) {
  const BankState st = engine_.bank_state(c.bank, now);
  switch (bank_affinity(st, engine_.open_row(c.bank), c)) {
    case BankAffinity::kOpenRow:
      return std::nullopt;  // column path will serve it
    case BankAffinity::kIdle: {
      Command cmd{CmdKind::kActivate, c.bank, c.row, 0, 0};
      if (engine_.can_issue(cmd, now)) {
        return cmd;
      }
      return std::nullopt;
    }
    case BankAffinity::kConflict: {
      if (st != BankState::kActive && st != BankState::kActivating) {
        return std::nullopt;  // precharging already
      }
      Command cmd{CmdKind::kPrecharge, c.bank, 0, 0, 0};
      if (engine_.can_issue(cmd, now)) {
        return cmd;
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<Command> DdrcEngine::hint_work(sim::Cycle now) {
  if (!hint_) {
    return std::nullopt;
  }
  const Coord& h = *hint_;
  if (bank_needed_soon(h.bank)) {
    return std::nullopt;  // never disturb a bank live traffic needs
  }
  auto cmd = row_or_pre_for(h, now);
  if (cmd) {
    if (cmd->kind == CmdKind::kActivate) {
      ++hits_.hint_activates;
    } else if (cmd->kind == CmdKind::kPrecharge) {
      ++hits_.hint_precharges;
    }
  }
  return cmd;
}

Command DdrcEngine::pick_command(sim::Cycle now) {
  // Refresh handling: once due it outranks everything; open banks are
  // closed first, then the refresh issues.
  if (engine_.refresh_due(now)) {
    Command ref{CmdKind::kRefresh, 0, 0, 0, 0};
    if (engine_.can_issue(ref, now)) {
      return ref;
    }
    for (std::uint32_t b = 0; b < engine_.banks(); ++b) {
      Command pre{CmdKind::kPrecharge, b, 0, 0, 0};
      if (engine_.can_issue(pre, now)) {
        return pre;
      }
    }
    return Command{};  // waiting out tRAS/tWR before the precharges
  }

  // §3.3 priority scheme: column accesses first (they move data), then row
  // opens, then precharges; within a class the live transaction outranks
  // the posted-write drain, which outranks speculative hint work.
  if (auto cmd = column_for_read(now)) {
    return *cmd;
  }
  if (auto cmd = column_for_write_drain(now)) {
    return *cmd;
  }
  if (cur_active_ && !cur_.req.is_write &&
      cur_.active_chunk < cur_.chunks.size()) {
    if (auto cmd = row_or_pre_for(cur_.chunks[cur_.active_chunk].start, now)) {
      return *cmd;
    }
  }
  if (!write_queue_.empty()) {
    if (auto cmd = row_or_pre_for(write_queue_.front().start, now)) {
      return *cmd;
    }
  }
  if (auto cmd = hint_work(now)) {
    return *cmd;
  }
  return Command{};
}

Command DdrcEngine::step(sim::Cycle now) {
  // Idle fast path: nothing in flight, nothing queued, no hint, and
  // refresh not due — the common case on a lightly loaded bus.
  if (!cur_active_ && write_queue_.empty() && !hint_ &&
      !engine_.refresh_due(now)) {
    return Command{};
  }
  const Command cmd = pick_command(now);
  if (cmd.kind == CmdKind::kNop) {
    return cmd;
  }
  const sim::Cycle first_beat = engine_.issue(cmd, now);
  if (cmd.kind == CmdKind::kRead) {
    CurrentTxn& t = cur_;
    Chunk& c = t.chunks[t.active_chunk];
    c.issued = c.beats;
    unsigned base = 0;
    for (std::size_t i = 0; i < t.active_chunk; ++i) {
      base += t.chunks[i].beats;
    }
    for (unsigned k = 0; k < c.beats; ++k) {
      t.beat_ready[base + k] = first_beat + k;
    }
    t.beats_issued += c.beats;
    ++t.active_chunk;
  } else if (cmd.kind == CmdKind::kWrite) {
    write_queue_.pop_front();
  }
  return cmd;
}

namespace {

void save_coord(state::StateWriter& w, const Coord& c) {
  w.put_u32(c.bank);
  w.put_u32(c.row);
  w.put_u32(c.col);
}

Coord restore_coord(state::StateReader& r) {
  Coord c;
  c.bank = r.get_u32();
  c.row = r.get_u32();
  c.col = r.get_u32();
  return c;
}

}  // namespace

void save_state(state::StateWriter& w, const MemRequest& m) {
  w.put_bool(m.is_write);
  w.put_u64(m.addr);
  w.put_u32(m.beat_bytes);
  w.put_u32(m.beats);
  w.put_u8(static_cast<std::uint8_t>(m.burst));
}

void restore_state(state::StateReader& r, MemRequest& m) {
  m.is_write = r.get_bool();
  m.addr = r.get_u64();
  m.beat_bytes = r.get_u32();
  m.beats = r.get_u32();
  m.burst = static_cast<ahb::Burst>(r.get_u8());
}

void DdrcEngine::save_state(state::StateWriter& w) const {
  w.begin("ddrc-engine");
  engine_.save_state(w);
  mem_.save_state(w);
  w.put_bool(cur_active_);
  if (cur_active_) {
    const CurrentTxn& t = cur_;
    ddr::save_state(w, t.req);
    w.put_u64(t.beat_addr.size());
    for (const ahb::Addr a : t.beat_addr) {
      w.put_u64(a);
    }
    w.put_u64(t.chunks.size());
    for (const Chunk& c : t.chunks) {
      save_coord(w, c.start);
      w.put_u32(c.beats);
      w.put_u32(c.issued);
      w.put_bool(c.classified);
    }
    w.put_u64(t.active_chunk);
    w.put_u64(t.beat_ready.size());
    for (const sim::Cycle c : t.beat_ready) {
      w.put_u64(c);
    }
    w.put_u32(t.beats_issued);
    w.put_u32(t.beats_consumed);
    w.put_u64(t.last_consume);
    w.put_u32(t.beats_accepted);
  }
  w.put_u64(write_queue_.size());
  for (const WriteChunk& c : write_queue_) {
    save_coord(w, c.start);
    w.put_u32(c.beats);
  }
  w.put_bool(hint_.has_value());
  if (hint_) {
    save_coord(w, *hint_);
  }
  w.put_u64(hits_.row_hits);
  w.put_u64(hits_.row_misses);
  w.put_u64(hits_.row_conflicts);
  w.put_u64(hits_.hint_activates);
  w.put_u64(hits_.hint_precharges);
  w.end();
}

void DdrcEngine::restore_state(state::StateReader& r) {
  r.enter("ddrc-engine");
  engine_.restore_state(r);
  mem_.restore_state(r);
  if (r.get_bool()) {
    cur_active_ = true;
    CurrentTxn& t = cur_;
    ddr::restore_state(r, t.req);
    t.beat_addr.assign(r.get_count(), 0);
    for (ahb::Addr& a : t.beat_addr) {
      a = r.get_u64();
    }
    t.chunks.assign(r.get_count(), Chunk{});
    for (Chunk& c : t.chunks) {
      c.start = restore_coord(r);
      c.beats = r.get_u32();
      c.issued = r.get_u32();
      c.classified = r.get_bool();
    }
    t.active_chunk = r.get_u64();
    t.beat_ready.assign(r.get_count(), 0);
    for (sim::Cycle& c : t.beat_ready) {
      c = r.get_u64();
    }
    t.beats_issued = r.get_u32();
    t.beats_consumed = r.get_u32();
    t.last_consume = r.get_u64();
    t.beats_accepted = r.get_u32();
  } else {
    cur_active_ = false;
  }
  write_queue_.clear();
  const std::uint64_t wq = r.get_count();
  for (std::uint64_t i = 0; i < wq; ++i) {
    WriteChunk c;
    c.start = restore_coord(r);
    c.beats = r.get_u32();
    write_queue_.push_back(c);
  }
  if (r.get_bool()) {
    hint_ = restore_coord(r);
  } else {
    hint_.reset();
  }
  hits_.row_hits = r.get_u64();
  hits_.row_misses = r.get_u64();
  hits_.row_conflicts = r.get_u64();
  hits_.hint_activates = r.get_u64();
  hits_.hint_precharges = r.get_u64();
  r.leave();
}

}  // namespace ahbp::ddr
