// DdrcEngine behaviour: transaction decomposition, read/write streaming,
// posted-write drains, BI hints, refresh admission — plus the property
// that every command the engine ever issues passes the independent
// TimingChecker (the §3.5 property-checking family applied to the memory
// side).

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "ddr/scheduler.hpp"
#include "ddr/timing_checker.hpp"

namespace {

using namespace ahbp::ddr;
using ahbp::ahb::Addr;
using ahbp::ahb::Word;
using ahbp::sim::Cycle;

Geometry geom4() {
  Geometry g;
  g.banks = 4;
  g.rows = 64;
  g.cols = 32;
  g.col_bytes = 4;
  return g;
}

MemRequest read_req(Addr addr, unsigned beats,
                    ahbp::ahb::Burst burst = ahbp::ahb::Burst::kIncr) {
  MemRequest r;
  r.is_write = false;
  r.addr = addr;
  r.beat_bytes = 4;
  r.beats = beats;
  r.burst = burst;
  return r;
}

MemRequest write_req(Addr addr, unsigned beats) {
  MemRequest r = read_req(addr, beats);
  r.is_write = true;
  return r;
}

/// Drive the engine until the current transaction's bus side completes,
/// checking every issued command.  Returns the completion cycle.
Cycle drain_txn(DdrcEngine& e, TimingChecker& chk, Cycle now,
                std::vector<Word>* read_out = nullptr,
                const std::vector<Word>* write_in = nullptr) {
  unsigned wi = 0;
  for (; now < 100000; ++now) {
    chk.observe(e.step(now), now);
    if (e.read_beat_available(now)) {
      const Word w = e.take_read_beat(now);
      if (read_out) {
        read_out->push_back(w);
      }
    }
    if (write_in && wi < write_in->size() && e.write_beat_ready(now)) {
      e.put_write_beat(now, (*write_in)[wi++]);
    }
    if (e.done()) {
      e.finish();
      return now;
    }
  }
  ADD_FAILURE() << "transaction did not complete";
  return now;
}

TEST(DdrcEngine, SingleReadCompletesWithCorrectLatency) {
  DdrcEngine e(toy_timing(), geom4());
  TimingChecker chk(toy_timing(), geom4());
  e.memory().write(0x40, 0xDEADBEEF, 4);
  e.begin(read_req(0x40, 1, ahbp::ahb::Burst::kSingle), 10);
  std::vector<Word> data;
  const Cycle done = drain_txn(e, chk, 10, &data);
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data[0], 0xDEADBEEFu);
  // ACT@10 (tRCD=2) -> RD@12 (tCL=2) -> beat@14.
  EXPECT_EQ(done, 14u);
  EXPECT_TRUE(chk.clean()) << chk.violations().size();
}

TEST(DdrcEngine, BurstReadStreamsOneBeatPerCycle) {
  DdrcEngine e(toy_timing(), geom4());
  TimingChecker chk(toy_timing(), geom4());
  for (unsigned i = 0; i < 8; ++i) {
    e.memory().write(0x80 + 4 * i, 0x100 + i, 4);
  }
  e.begin(read_req(0x80, 8), 0);
  std::vector<Word> data;
  const Cycle done = drain_txn(e, chk, 0, &data);
  ASSERT_EQ(data.size(), 8u);
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(data[i], 0x100u + i);
  }
  // ACT@0 -> RD@2 -> beats 4..11.
  EXPECT_EQ(done, 11u);
  EXPECT_TRUE(chk.clean());
}

TEST(DdrcEngine, WriteIsPostedAndDrainsInBackground) {
  DdrcEngine e(toy_timing(), geom4());
  TimingChecker chk(toy_timing(), geom4());
  const std::vector<Word> payload{1, 2, 3, 4};
  e.begin(write_req(0x100, 4), 0);
  const Cycle done = drain_txn(e, chk, 0, nullptr, &payload);
  // Posted: bus side completes as fast as beats stream (cycle per beat).
  EXPECT_LE(done, 6u);
  // Data is already visible (engine writes through on acceptance).
  EXPECT_EQ(e.memory().read(0x100, 4), 1u);
  EXPECT_EQ(e.memory().read(0x10C, 4), 4u);
  // Background drain still holds a chunk until the column command issues.
  Cycle now = done + 1;
  while (e.pending_write_chunks() > 0 && now < 1000) {
    chk.observe(e.step(now), now);
    ++now;
  }
  EXPECT_EQ(e.pending_write_chunks(), 0u);
  EXPECT_TRUE(chk.clean());
  EXPECT_EQ(e.banks().counters().writes, 1u);
}

TEST(DdrcEngine, ReadAfterPostedWriteSameRowIsCoherent) {
  DdrcEngine e(toy_timing(), geom4());
  TimingChecker chk(toy_timing(), geom4());
  const std::vector<Word> payload{0xAA, 0xBB};
  e.begin(write_req(0x200, 2), 0);
  Cycle now = drain_txn(e, chk, 0, nullptr, &payload) + 1;
  e.begin(read_req(0x200, 2), now);
  std::vector<Word> data;
  drain_txn(e, chk, now, &data);
  ASSERT_EQ(data.size(), 2u);
  EXPECT_EQ(data[0], 0xAAu);
  EXPECT_EQ(data[1], 0xBBu);
  EXPECT_TRUE(chk.clean());
}

TEST(DdrcEngine, RowCrossingBurstSplitsChunks) {
  const Geometry g = geom4();
  DdrcEngine e(toy_timing(), g);
  TimingChecker chk(toy_timing(), g);
  // Start 2 columns before the end of a row: beats span two (bank,row)s.
  const Addr start = g.row_bytes() - 8;
  e.begin(read_req(start, 4), 0);
  std::vector<Word> data;
  drain_txn(e, chk, 0, &data);
  EXPECT_EQ(data.size(), 4u);
  EXPECT_TRUE(chk.clean());
  // Two activates: one per row/bank touched.
  EXPECT_EQ(e.banks().counters().activates, 2u);
}

TEST(DdrcEngine, WrapBurstDecomposesLegally) {
  DdrcEngine e(toy_timing(), geom4());
  TimingChecker chk(toy_timing(), geom4());
  for (unsigned i = 0; i < 4; ++i) {
    e.memory().write(0x30 + 4 * i, i + 1, 4);
  }
  // WRAP4 starting mid-window: 0x38,0x3C,0x30,0x34.
  e.begin(read_req(0x38, 4, ahbp::ahb::Burst::kWrap4), 0);
  std::vector<Word> data;
  drain_txn(e, chk, 0, &data);
  ASSERT_EQ(data.size(), 4u);
  EXPECT_EQ(data[0], 3u);  // 0x38
  EXPECT_EQ(data[1], 4u);  // 0x3C
  EXPECT_EQ(data[2], 1u);  // 0x30 (wrapped)
  EXPECT_EQ(data[3], 2u);  // 0x34
  EXPECT_TRUE(chk.clean());
}

TEST(DdrcEngine, RowHitSecondReadIsFaster) {
  DdrcEngine e(toy_timing(), geom4());
  TimingChecker chk(toy_timing(), geom4());
  e.begin(read_req(0x00, 1, ahbp::ahb::Burst::kSingle), 0);
  const Cycle first = drain_txn(e, chk, 0);
  e.begin(read_req(0x04, 1, ahbp::ahb::Burst::kSingle), first + 1);
  const Cycle second = drain_txn(e, chk, first + 1);
  // Row hit skips ACT: only CAS latency.
  EXPECT_LT(second - (first + 1), first - 0);
  EXPECT_EQ(e.hit_stats().row_hits, 1u);
  EXPECT_EQ(e.hit_stats().row_misses, 1u);
  EXPECT_TRUE(chk.clean());
}

TEST(DdrcEngine, HintPreActivatesIdleBank) {
  const Geometry g = geom4();
  DdrcEngine e(toy_timing(), g);
  TimingChecker chk(toy_timing(), g);
  // Current txn in bank 0; hint points at bank 1.
  e.begin(read_req(0x00, 8), 0);
  const Addr next_addr = g.row_bytes();  // bank 1 in kRowBankCol
  ASSERT_EQ(g.decode(next_addr).bank, 1u);
  e.set_hint(g.decode(next_addr));
  std::vector<Word> data;
  drain_txn(e, chk, 0, &data);
  EXPECT_GE(e.hit_stats().hint_activates, 1u);
  // Bank 1 is open on the hinted row: the follow-up read is a row hit.
  e.begin(read_req(next_addr, 1, ahbp::ahb::Burst::kSingle), 20);
  drain_txn(e, chk, 20);
  EXPECT_GE(e.hit_stats().row_hits, 1u);
  EXPECT_TRUE(chk.clean());
}

TEST(DdrcEngine, HintNeverTouchesBankNeededByCurrentTxn) {
  const Geometry g = geom4();
  DdrcEngine e(toy_timing(), g);
  e.begin(read_req(0x00, 4), 0);
  // Hint at the same bank the current transaction uses (different row):
  // the engine must not precharge under the live transaction.
  Coord same_bank = g.decode(0x00);
  same_bank.row += 1;
  e.set_hint(same_bank);
  TimingChecker chk(toy_timing(), g);
  std::vector<Word> data;
  drain_txn(e, chk, 0, &data);
  EXPECT_EQ(data.size(), 4u);
  EXPECT_EQ(e.hit_stats().hint_precharges, 0u);
  EXPECT_TRUE(chk.clean());
}

TEST(DdrcEngine, RefreshBlocksAdmissionAndRecovers) {
  DdrTiming t = toy_timing();
  t.tREFI = 50;
  t.tRFC = 8;
  DdrcEngine e(t, geom4());
  TimingChecker chk(t, geom4());
  EXPECT_TRUE(e.access_permitted(10));
  // Run idle cycles until refresh becomes due and is serviced.
  bool saw_refresh = false;
  bool saw_blocked = false;
  for (Cycle now = 0; now < 200; ++now) {
    if (!e.access_permitted(now)) {
      saw_blocked = true;
    }
    const Command c = e.step(now);
    chk.observe(c, now);
    if (c.kind == CmdKind::kRefresh) {
      saw_refresh = true;
    }
  }
  EXPECT_TRUE(saw_refresh);
  EXPECT_TRUE(saw_blocked);
  EXPECT_GE(e.banks().counters().refreshes, 2u);
  EXPECT_TRUE(chk.clean());
}

TEST(DdrcEngine, BeginWhileBusyThrows) {
  DdrcEngine e(toy_timing(), geom4());
  e.begin(read_req(0x0, 4), 0);
  EXPECT_THROW(e.begin(read_req(0x100, 1), 1), std::logic_error);
}

TEST(DdrcEngine, FinishBeforeDoneThrows) {
  DdrcEngine e(toy_timing(), geom4());
  e.begin(read_req(0x0, 4), 0);
  EXPECT_THROW(e.finish(), std::logic_error);
}

TEST(DdrcEngine, RemainingBeatsTracksProgress) {
  DdrcEngine e(toy_timing(), geom4());
  TimingChecker chk(toy_timing(), geom4());
  EXPECT_EQ(e.remaining_beats(), 0u);
  e.begin(read_req(0x0, 4), 0);
  EXPECT_EQ(e.remaining_beats(), 4u);
  Cycle now = 0;
  while (!e.done()) {
    chk.observe(e.step(now), now);
    if (e.read_beat_available(now)) {
      e.take_read_beat(now);
    }
    ++now;
  }
  EXPECT_EQ(e.remaining_beats(), 0u);
  EXPECT_TRUE(chk.clean());
}

TEST(DdrcEngine, AffinityReflectsBankState) {
  const Geometry g = geom4();
  DdrcEngine e(toy_timing(), g);
  EXPECT_EQ(e.affinity_for(0x00, 0), BankAffinity::kIdle);
  e.begin(read_req(0x00, 1, ahbp::ahb::Burst::kSingle), 0);
  TimingChecker chk(toy_timing(), g);
  drain_txn(e, chk, 0);
  // Row stays open after the read: same row = kOpenRow, other row = conflict.
  EXPECT_EQ(e.affinity_for(0x04, 20), BankAffinity::kOpenRow);
  EXPECT_EQ(e.affinity_for(0x04 + g.row_bytes() * g.banks, 20),
            BankAffinity::kConflict);
}

// Property sweep: random transaction streams never violate DDR timing and
// always return the data last written.
class DdrcRandomProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DdrcRandomProperty, TimingCleanAndDataCoherent) {
  std::mt19937_64 rng(GetParam());
  DdrTiming t = toy_timing();
  t.tREFI = 300;  // refresh in the mix
  t.tRFC = 8;
  const Geometry g = geom4();
  DdrcEngine e(t, g);
  TimingChecker chk(t, g);
  std::map<Addr, Word> shadow;
  Cycle now = 0;
  for (int txn = 0; txn < 60; ++txn) {
    const bool is_write = rng() % 2 == 0;
    const unsigned beats = 1 + static_cast<unsigned>(rng() % 8);
    Addr addr = (rng() % (g.capacity() / 4)) * 4;
    if ((addr % 1024) + beats * 4 > 1024) {
      addr -= (addr % 1024);  // keep inside a 1KB block for simplicity
    }
    MemRequest req = is_write ? write_req(addr, beats) : read_req(addr, beats);
    e.begin(req, now);
    std::vector<Word> payload(beats);
    for (auto& w : payload) {
      w = rng();
    }
    unsigned wi = 0;
    std::vector<Word> got;
    while (!e.done() && now < 1000000) {
      chk.observe(e.step(now), now);
      if (e.read_beat_available(now)) {
        got.push_back(e.take_read_beat(now));
      }
      if (is_write && wi < beats && e.write_beat_ready(now)) {
        e.put_write_beat(now, payload[wi++]);
      }
      ++now;
    }
    ASSERT_TRUE(e.done());
    e.finish();
    for (unsigned b = 0; b < beats; ++b) {
      const Addr a = addr + 4 * b;
      if (is_write) {
        shadow[a] = payload[b] & 0xFFFFFFFFull;  // 4-byte beats
      } else {
        const Word expect = shadow.count(a) ? shadow[a] : 0;
        ASSERT_EQ(got.at(b), expect) << "addr " << std::hex << a;
      }
    }
    now += rng() % 4;
  }
  // Drain all background writes.
  while (e.pending_write_chunks() > 0 && now < 2000000) {
    chk.observe(e.step(now), now);
    ++now;
  }
  EXPECT_TRUE(chk.clean()) << "violations: " << chk.violations().size();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DdrcRandomProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
