// Checkpoint economics: what a snapshot costs (bytes, save/restore
// latency, both models) and what fork-from-warm-up buys (wall-clock
// speedup of a 16-point sweep that shares a warmed-up prefix vs. re-cold-
// starting every point).  Writes BENCH_CHECKPOINT.json so the trajectory
// can be tracked across PRs.
//
// The forked sweep is also *verified* against the cold sweep point by
// point — a speedup that changed the answers would be a bug, and the bench
// exits non-zero.
//
// Usage: bench_checkpoint [items-per-master] [repeats]

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "scenario/registry.hpp"
#include "state/snapshot.hpp"
#include "stats/report.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct SnapshotCost {
  std::size_t bytes = 0;
  double save_ms = 0;
  double restore_ms = 0;
};

SnapshotCost measure_snapshot(const ahbp::core::PlatformConfig& cfg,
                              ahbp::core::ModelKind model,
                              ahbp::sim::Cycle warmup, unsigned repeats) {
  using namespace ahbp;
  SnapshotCost cost;
  core::Platform warm(cfg, model);
  warm.run(warmup);

  std::vector<std::uint8_t> bytes;
  cost.save_ms = 1e300;
  for (unsigned rep = 0; rep < repeats; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    state::StateWriter w;
    warm.save_state(w);
    bytes = w.finish();
    cost.save_ms = std::min(cost.save_ms, seconds_since(t0) * 1e3);
  }
  cost.bytes = bytes.size();

  cost.restore_ms = 1e300;
  for (unsigned rep = 0; rep < repeats; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    core::Platform fork(cfg, model);
    state::StateReader r(bytes.data(), bytes.size());
    fork.restore_state(r);
    cost.restore_ms = std::min(cost.restore_ms, seconds_since(t0) * 1e3);
  }
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ahbp;
  const unsigned items =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 400;
  const unsigned repeats =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 3;

  // Warm-up-dominated exploration batch: the rt-1 mix, 16 points extending
  // the rt stream's and the random mix's transaction counts — axes that
  // leave the shared prefix invariant, so the fork is exact.
  sweep::SweepSpec spec;
  spec.base = "table1/rt-1";
  spec.base_config =
      scenario::ScenarioRegistry::builtin().build("table1/rt-1", items, 7);
  const auto pct = [items](unsigned p) {
    return std::to_string(items + items * p / 100);
  };
  spec.axes.push_back(
      {"master0.items", {pct(0), pct(12), pct(25), pct(50)}});
  spec.axes.push_back(
      {"master3.items", {pct(0), pct(12), pct(25), pct(50)}});
  const auto points = sweep::expand(spec);

  // Size the warm-up from the base run: half the cold run is warm-up — by
  // then the banks/buffers/arbiter have long left their cold transient —
  // while the swept 60-items-per-48-cycle rt stream is still issuing.
  const core::SimResult base_run = core::run_tlm(spec.base_config);
  if (!base_run.finished) {
    std::cerr << "base scenario timed out\n";
    return 1;
  }
  const sim::Cycle warmup = base_run.ran_cycles / 2;

  std::cout << "=== Checkpoint: table1/rt-1, " << items
            << " txns/master, warm-up " << warmup << " of "
            << base_run.ran_cycles << " cycles, best of " << repeats
            << " ===\n\n";

  // --- snapshot cost, both models ---
  const SnapshotCost tlm_cost = measure_snapshot(
      spec.base_config, core::ModelKind::kTlm, warmup, repeats);
  const SnapshotCost rtl_cost = measure_snapshot(
      spec.base_config, core::ModelKind::kRtl, warmup, repeats);

  stats::TextTable cost_table(
      {"model", "snapshot bytes", "save ms", "restore ms"});
  cost_table.add_row({"tlm", std::to_string(tlm_cost.bytes),
                      stats::fmt_double(tlm_cost.save_ms, 3),
                      stats::fmt_double(tlm_cost.restore_ms, 3)});
  cost_table.add_row({"rtl", std::to_string(rtl_cost.bytes),
                      stats::fmt_double(rtl_cost.save_ms, 3),
                      stats::fmt_double(rtl_cost.restore_ms, 3)});
  cost_table.print(std::cout);

  // --- 16-point sweep: cold vs forked (single worker: pure wall ratio) ---
  const sweep::SweepRunner runner(1);
  double cold_s = 1e300, forked_s = 1e300;
  std::vector<sweep::PointOutcome> cold, forked;
  for (unsigned rep = 0; rep < repeats; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    cold = runner.run(points, sweep::Model::kTlm);
    cold_s = std::min(cold_s, seconds_since(t0));

    t0 = std::chrono::steady_clock::now();
    forked =
        runner.run(points, sweep::Model::kTlm, spec.base_config, warmup);
    forked_s = std::min(forked_s, seconds_since(t0));
  }

  // The speedup must not change the answers.
  for (std::size_t i = 0; i < cold.size(); ++i) {
    if (!cold[i].error.empty() || !forked[i].error.empty() ||
        cold[i].tlm.cycles != forked[i].tlm.cycles ||
        cold[i].tlm.completed != forked[i].tlm.completed ||
        cold[i].tlm.qos_warnings != forked[i].tlm.qos_warnings) {
      std::cerr << "point " << i << " (" << cold[i].label
                << "): forked sweep diverged from cold sweep\n"
                << "  cold:   " << cold[i].tlm.cycles << " cycles, err '"
                << cold[i].error << "'\n"
                << "  forked: " << forked[i].tlm.cycles << " cycles, err '"
                << forked[i].error << "'\n";
      return 1;
    }
  }

  const double speedup = cold_s / forked_s;
  std::cout << "\n16-point sweep, cold:   "
            << stats::fmt_double(cold_s, 3) << " s\n";
  std::cout << "16-point sweep, forked: " << stats::fmt_double(forked_s, 3)
            << " s  (" << stats::fmt_double(speedup, 2)
            << "x, answers verified identical)\n";

  std::ofstream json("BENCH_CHECKPOINT.json");
  if (json) {
    json << "{\n  \"bench\": \"checkpoint\",\n"
         << "  \"items_per_master\": " << items << ",\n"
         << "  \"warmup_cycles\": " << warmup << ",\n"
         << "  \"base_cycles\": " << base_run.ran_cycles << ",\n"
         << "  \"snapshot\": {\n"
         << "    \"tlm_bytes\": " << tlm_cost.bytes << ",\n"
         << "    \"tlm_save_ms\": " << stats::fmt_double(tlm_cost.save_ms, 3)
         << ",\n"
         << "    \"tlm_restore_ms\": "
         << stats::fmt_double(tlm_cost.restore_ms, 3) << ",\n"
         << "    \"rtl_bytes\": " << rtl_cost.bytes << ",\n"
         << "    \"rtl_save_ms\": " << stats::fmt_double(rtl_cost.save_ms, 3)
         << ",\n"
         << "    \"rtl_restore_ms\": "
         << stats::fmt_double(rtl_cost.restore_ms, 3) << "\n  },\n"
         << "  \"sweep\": {\n"
         << "    \"points\": " << points.size() << ",\n"
         << "    \"model\": \"tlm\",\n"
         << "    \"cold_seconds\": " << stats::fmt_double(cold_s, 4) << ",\n"
         << "    \"forked_seconds\": " << stats::fmt_double(forked_s, 4)
         << ",\n"
         << "    \"speedup\": " << stats::fmt_double(speedup, 2) << "\n"
         << "  }\n}\n";
    std::cout << "wrote BENCH_CHECKPOINT.json\n";
  }
  return 0;
}
