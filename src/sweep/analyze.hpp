#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/platform.hpp"
#include "stats/report.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"

/// \file analyze.hpp
/// Static scenario/sweep analysis — `ahbp_sim lint`.
///
/// A sweep of a few thousand points that times out, oversubscribes the bus,
/// or silently clobbers its own warm-up fork wastes hours before the first
/// CSV row appears.  This module answers "will this run do what the file
/// says" *without simulating*: it expands the stimulus scripts (the same
/// deterministic expansion both models consume) and checks the arithmetic
/// the models would otherwise discover the slow way:
///
///  * **Feasibility** — a script's gaps plus its bus beats are a provable
///    lower bound on completion; beats summed across masters bound the
///    shared bus.  Exceeding `max_cycles` is an error (the run *cannot*
///    finish); approaching it is a warning (contention will push it over).
///  * **Bandwidth** — offered bytes against the bus's peak
///    `data_width_bytes`/cycle.
///  * **Channel balance** — masters whose address windows touch only a
///    subset of a multi-channel memory (aperture-vs-stripe conflicts are
///    hard errors via scenario::validate; *imbalance* is only visible from
///    the expanded addresses).
///  * **Trace pre-validation** — trace files are parsed and checked against
///    the bus width and DDR aperture up front, with per-master attribution.
///  * **Axis hygiene** — duplicate axis keys (later silently wins),
///    duplicate values (redundant points), constant axes.
///  * **Warm-up fork hazards** (`--warmup-cycles`) — axes that change the
///    stimulus demote their points to cold runs (sweep/runner.hpp), and
///    structural memory axes cannot fork at all; both are reported here
///    before any cycles are spent.
///
/// Every expanded point (capped, see LintOptions::max_points) additionally
/// runs the whole-config checks, because an axis combination can break what
/// the base satisfies (e.g. swept `ddr.rows` shrinking the aperture under a
/// master's window).

namespace ahbp::sweep {

enum class LintSeverity : std::uint8_t { kNote = 0, kWarning = 1, kError = 2 };

std::string_view to_string(LintSeverity s);

struct LintFinding {
  LintSeverity severity = LintSeverity::kNote;
  std::string check;    ///< e.g. "timeout/provable", "warmup/stimulus-axis"
  std::string where;    ///< "" | "master 2" | "point 5 (bus.x=4)" | "axis k"
  std::string message;
};

struct LintReport {
  bool is_sweep = false;
  std::size_t points = 1;          ///< expansion size (1 for a scenario)
  std::size_t points_checked = 1;  ///< deep-checked points (capped)
  std::vector<LintFinding> findings;

  std::size_t count(LintSeverity s) const noexcept;
  std::size_t errors() const noexcept {
    return count(LintSeverity::kError);
  }
  std::size_t warnings() const noexcept {
    return count(LintSeverity::kWarning);
  }
  /// No errors (warnings/notes do not fail a lint unless the caller opts
  /// into --strict).
  bool ok() const noexcept { return errors() == 0; }
};

struct LintOptions {
  /// Lint under warm-up-forked sweep assumptions (`sweep --warmup-cycles N`
  /// is the run this models): flags stimulus axes that will demote points
  /// to cold runs and structural axes that cannot fork at all.
  sim::Cycle warmup_cycles = 0;

  /// Cap on deep-checked expanded points; a truncation note is emitted
  /// when the sweep is larger.  0 disables per-point checks.
  std::size_t max_points = 64;
};

/// Whole-config checks on one configuration (feasibility, bandwidth,
/// channel balance, trace validity, checkpoint liveness).
LintReport lint_config(const core::PlatformConfig& cfg,
                       const LintOptions& opts = {});

/// Sweep checks: axis hygiene, warm-up hazards, and the whole-config
/// checks per expanded point.
LintReport lint_spec(const SweepSpec& spec, const LintOptions& opts = {});

/// Lint scenario-or-sweep text (auto-detected: a `[sweep]` section or a
/// top-level `base =` makes it a sweep).  Parse errors become findings,
/// never exceptions.
LintReport lint_text(std::string_view text, const LintOptions& opts = {});

/// Lint a scenario reference the way `ahbp_sim run`/`sweep` resolve one: a
/// registry preset name first, a scenario/sweep file path second.
LintReport lint_ref(const std::string& ref, const LintOptions& opts = {});

/// Human-readable report: one `severity: [check] where: message` line per
/// finding plus a summary line.
void write_report(std::ostream& os, const LintReport& r);

// ------------------------------------------------------------ sensitivity --
// "Which knob moved the cycle count": post-sweep per-axis analysis over the
// outcomes the runner (or the farm) already produced.  For each swept axis,
// every combination of the *other* axes' values forms one group; within a
// group only that axis varies, so the spread of `cycles` inside the group
// is that knob's isolated effect.  `ahbp_sim sweep --sensitivity` surfaces
// the aggregation below next to the per-point table.

/// One axis's aggregated effect on the cycle count.
struct AxisSensitivity {
  std::string key;            ///< the dotted axis key
  std::size_t values = 0;     ///< candidate values on this axis
  std::size_t groups = 0;     ///< other-axis combinations with >= 2 usable points
  std::uint64_t min_cycles = 0;  ///< min cycles across all usable points
  std::uint64_t max_cycles = 0;  ///< max cycles across all usable points
  std::uint64_t max_spread = 0;  ///< largest within-group (max - min)
  double mean_spread = 0.0;      ///< mean within-group spread over groups

  /// max_spread relative to the smallest cycle count it was observed
  /// against — "varying this knob moved the run by up to X%".
  double relative_spread() const noexcept;
};

/// Compute per-axis sensitivity of one model's `cycles` over a sweep's
/// outcomes (`use_rtl` selects the RTL counts; the caller picks a model
/// that actually ran).  Points with a non-empty error or without the
/// requested model are skipped.  Sorted by descending max_spread, ties in
/// axis order.  Outcomes must be the expansion of `spec` (index-aligned),
/// as produced by SweepRunner::run or farm::Coordinator::run.
std::vector<AxisSensitivity> sensitivity(
    const SweepSpec& spec, const std::vector<PointOutcome>& outcomes,
    bool use_rtl);

/// Render a sensitivity report as a table (axis, values, groups, cycle
/// range, spreads).  Byte-stable: derived from cycle counts only.
stats::TextTable sensitivity_table(const std::vector<AxisSensitivity>& axes);

}  // namespace ahbp::sweep
