#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

/// \file assert.hpp
/// The first assertion family of the paper's §3.5: "functional debugging of
/// the model itself".  These fire on internal contradictions (a model bug,
/// never a property of the simulated design) and therefore throw — a model
/// that contradicts itself must not keep producing numbers.

namespace ahbp::chk {

/// Thrown by AHBP_ASSERT when a model invariant is violated.
class ModelAssertError : public std::logic_error {
 public:
  explicit ModelAssertError(const std::string& what)
      : std::logic_error(what) {}
};

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream ss;
  ss << "model assertion failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    ss << " — " << msg;
  }
  throw ModelAssertError(ss.str());
}

}  // namespace ahbp::chk

/// Model-debug assertion: always on (the models are simulators; the cost of
/// a branch is irrelevant next to silently wrong performance numbers).
#define AHBP_ASSERT(expr)                                              \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::ahbp::chk::assert_fail(#expr, __FILE__, __LINE__, "");         \
    }                                                                  \
  } while (false)

#define AHBP_ASSERT_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::ahbp::chk::assert_fail(#expr, __FILE__, __LINE__, (msg));      \
    }                                                                  \
  } while (false)
