#include "ddr/timing.hpp"

namespace ahbp::ddr {

std::string DdrTiming::validate() const {
  if (tRC < tRAS + tRP) {
    return "tRC must be >= tRAS + tRP";
  }
  if (tRAS < tRCD) {
    return "tRAS must be >= tRCD";
  }
  if (tRCD == 0 || tRP == 0) {
    return "tRCD and tRP must be nonzero";
  }
  if (tCCD == 0) {
    return "tCCD must be nonzero";
  }
  if (tREFI != 0 && tREFI <= tRFC) {
    return "tREFI must exceed tRFC (or be 0 to disable refresh)";
  }
  return {};
}

DdrTiming ddr266() {
  DdrTiming t;
  t.tRCD = 3;
  t.tRP = 3;
  t.tRAS = 7;
  t.tRC = 10;
  t.tRRD = 2;
  t.tCL = 3;
  t.tWL = 1;
  t.tWR = 3;
  t.tCCD = 1;
  t.tRFC = 20;
  t.tREFI = 1560;
  return t;
}

DdrTiming ddr400() {
  DdrTiming t;
  t.tRCD = 3;
  t.tRP = 3;
  t.tRAS = 8;
  t.tRC = 11;
  t.tRRD = 2;
  t.tCL = 3;
  t.tWL = 1;
  t.tWR = 3;
  t.tCCD = 1;
  t.tRFC = 26;
  t.tREFI = 1560;
  return t;
}

DdrTiming toy_timing() {
  DdrTiming t;
  t.tRCD = 2;
  t.tRP = 2;
  t.tRAS = 4;
  t.tRC = 6;
  t.tRRD = 1;
  t.tCL = 2;
  t.tWL = 1;
  t.tWR = 2;
  t.tCCD = 1;
  t.tRFC = 8;
  t.tREFI = 0;  // refresh off for deterministic micro-tests
  return t;
}

bool timing_preset(std::string_view name, DdrTiming& out) {
  if (name == "ddr266") {
    out = ddr266();
  } else if (name == "ddr400") {
    out = ddr400();
  } else if (name == "toy") {
    out = toy_timing();
  } else {
    return false;
  }
  return true;
}

}  // namespace ahbp::ddr
