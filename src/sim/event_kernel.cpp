#include "sim/event_kernel.hpp"

#include <algorithm>
#include <utility>

#include "obs/selfprof.hpp"

namespace ahbp::sim {

// ---------------------------------------------------------------- Process

Process::Process(EventKernel& kernel, std::string name,
                 std::function<void()> body)
    : kernel_(kernel), name_(std::move(name)), body_(std::move(body)) {}

void Process::trigger() { kernel_.make_runnable(*this); }

void Process::run() {
  scheduled_ = false;
  body_();
}

// -------------------------------------------------------------- SignalBase

SignalBase::SignalBase(EventKernel& kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)) {
  kernel_.register_signal(*this);
}

SignalBase::~SignalBase() { kernel_.unregister_signal(*this); }

void SignalBase::subscribe(Process& proc, Edge edge) {
  subs_.push_back(Subscription{&proc, edge});
}

void SignalBase::request_update() {
  if (!update_pending_) {
    update_pending_ = true;
    kernel_.request_update(*this);
  }
}

void SignalBase::notify(bool rose, bool fell) {
  for (const Subscription& s : subs_) {
    const bool fire = s.edge == Edge::kAny || (s.edge == Edge::kPos && rose) ||
                      (s.edge == Edge::kNeg && fell);
    if (fire) {
      s.proc->trigger();
    }
  }
}

// ------------------------------------------------------------- EventKernel

void EventKernel::make_runnable(Process& p) {
  if (!p.scheduled_) {
    p.scheduled_ = true;
    runnable_.push_back(&p);
  }
}

void EventKernel::request_update(SignalBase& s) { updates_.push_back(&s); }

void EventKernel::register_signal(SignalBase& s) { signals_.push_back(&s); }

void EventKernel::unregister_signal(SignalBase& s) {
  signals_.erase(std::remove(signals_.begin(), signals_.end(), &s),
                 signals_.end());
}

void EventKernel::schedule(Tick delay, std::function<void()> fn) {
  timed_.push(TimedEvent{now_ + delay, seq_++, std::move(fn)});
}

void EventKernel::run_delta_rounds() {
  // Each round: evaluate all runnable processes, then commit all signal
  // writes.  Commits that change values re-arm subscribed processes for the
  // next round.  Loop until quiescent.
  while (!runnable_.empty() || !updates_.empty()) {
    ++stats_.deltas;

    std::vector<Process*> to_run;
    to_run.swap(runnable_);
    for (Process* p : to_run) {
      ++stats_.process_activations;
      if (profiler_ == nullptr) {
        p->run();
      } else {
        if (p->prof_id_ == ~0U) {
          p->prof_id_ = profiler_->phase("rtl." + p->name_);
        }
        obs::ScopedTimer t(profiler_, p->prof_id_);
        p->run();
      }
    }

    std::vector<SignalBase*> to_commit;
    to_commit.swap(updates_);
    for (SignalBase* s : to_commit) {
      s->update_pending_ = false;
      if (s->commit()) {
        ++stats_.signal_commits;
      }
    }
  }
}

void EventKernel::settle() { run_delta_rounds(); }

void EventKernel::save_signals(state::StateWriter& w) const {
  if (!runnable_.empty() || !updates_.empty()) {
    throw state::StateError(
        "EventKernel: cannot snapshot mid-delta (processes runnable or"
        " commits pending)");
  }
  w.begin("signals");
  w.put_u64(signals_.size());
  for (const SignalBase* s : signals_) {
    w.put_str(s->name());
    w.put_u64(s->snapshot_value());
  }
  w.put_u64(stats_.deltas);
  w.put_u64(stats_.process_activations);
  w.put_u64(stats_.signal_commits);
  w.put_u64(stats_.timed_events);
  w.end();
}

void EventKernel::restore_signals(state::StateReader& r) {
  r.enter("signals");
  const std::uint64_t n = r.get_u64();
  if (n != signals_.size()) {
    throw state::StateError(
        "EventKernel: snapshot has " + std::to_string(n) +
        " signals, this platform has " + std::to_string(signals_.size()) +
        " (topology mismatch)");
  }
  for (SignalBase* s : signals_) {
    const std::string name = r.get_str();
    if (name != s->name()) {
      throw state::StateError("EventKernel: signal order mismatch: snapshot"
                              " has '" + name + "', platform has '" +
                              std::string(s->name()) + "'");
    }
    s->restore_value(r.get_u64());
  }
  stats_.deltas = r.get_u64();
  stats_.process_activations = r.get_u64();
  stats_.signal_commits = r.get_u64();
  stats_.timed_events = r.get_u64();
  r.leave();
}

void EventKernel::run_until(Tick until) {
  run_delta_rounds();
  while (!timed_.empty() && timed_.top().at <= until) {
    const Tick at = timed_.top().at;
    now_ = at;
    // Dispatch every timed event at this timestamp, then settle deltas.
    while (!timed_.empty() && timed_.top().at == at) {
      // priority_queue::top() is const; the handler is moved out via pop
      // after copying.  Keep it simple: copy the function, pop, run.
      auto fn = timed_.top().fn;
      timed_.pop();
      ++stats_.timed_events;
      fn();
    }
    run_delta_rounds();
  }
  if (now_ < until) {
    now_ = until;
  }
}

}  // namespace ahbp::sim
