#include "ddr/channels.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "ahb/address.hpp"
#include "obs/timeline.hpp"

namespace ahbp::ddr {

// ------------------------------------------------------ ChannelOverride --

bool ChannelOverride::any() const noexcept {
  for (const TimingField& f : kTimingFields) {
    if (this->*f.opt) {
      return true;
    }
  }
  return banks || rows || cols || col_bytes || mapping;
}

void ChannelOverride::apply(DdrTiming& t, Geometry& g) const {
  for (const TimingField& f : kTimingFields) {
    if (this->*f.opt) {
      t.*f.shared = *(this->*f.opt);
    }
  }
  if (banks) g.banks = *banks;
  if (rows) g.rows = *rows;
  if (cols) g.cols = *cols;
  if (col_bytes) g.col_bytes = *col_bytes;
  if (mapping) g.mapping = *mapping;
}

std::vector<std::uint32_t> bank_bases(
    const std::vector<ChannelConfig>& cfgs) {
  std::vector<std::uint32_t> bases;
  bases.reserve(cfgs.size() + 1);
  std::uint32_t base = 0;
  for (const ChannelConfig& c : cfgs) {
    bases.push_back(base);
    base += c.geom.banks;
  }
  bases.push_back(base);
  return bases;
}

std::vector<ChannelConfig> resolve_channels(
    const DdrTiming& shared_timing, const Geometry& shared_geom,
    const Interleave& ilv, const std::vector<ChannelOverride>& overrides) {
  std::vector<ChannelConfig> out(ilv.channels,
                                 ChannelConfig{shared_timing, shared_geom});
  for (std::uint32_t k = 0; k < ilv.channels && k < overrides.size(); ++k) {
    overrides[k].apply(out[k].timing, out[k].geom);
  }
  return out;
}

// ----------------------------------------------------------- ChannelSet --

ChannelSet::ChannelSet(const std::vector<ChannelConfig>& cfgs,
                       const Interleave& ilv)
    : ilv_(ilv) {
  if (!ilv.valid()) {
    throw std::invalid_argument(
        "ChannelSet: interleave must have 1/2/4/8 channels and a"
        " power-of-two stripe >= 8 bytes");
  }
  if (cfgs.size() != ilv.channels) {
    throw std::invalid_argument(
        "ChannelSet: one ChannelConfig per interleave channel required");
  }
  engines_.reserve(cfgs.size());
  for (const ChannelConfig& c : cfgs) {
    // Bijection precondition: a stripe that does not divide the device
    // capacity would map some aperture offsets beyond the channel's last
    // byte (the decode would silently wrap).
    if (ilv.channels > 1 && c.geom.capacity() % ilv.stripe_bytes != 0) {
      throw std::invalid_argument(
          "ChannelSet: interleave stripe must divide every channel's"
          " capacity");
    }
    engines_.push_back(std::make_unique<DdrcEngine>(c.timing, c.geom));
  }
  bank_base_ = bank_bases(cfgs);
  cmd_slots_.resize(engines_.size());
}

ChannelSet::~ChannelSet() { stop_workers(); }

bool ChannelSet::busy() const noexcept {
  return channels() == 1 ? engines_[0]->busy() : txn_active_;
}

void ChannelSet::split(const MemRequest& req) {
  segments_.clear();
  const ahb::Size size = ahb::size_for_bytes(req.beat_bytes);
  std::vector<ahb::Addr>& beat = split_scratch_;  // capacity reused per txn
  beat.resize(req.beats);
  for (unsigned i = 0; i < req.beats; ++i) {
    beat[i] = ahb::burst_beat_addr(req.addr, size, req.burst, i);
  }
  // A burst whose beats all land on one channel with their address pattern
  // preserved under localization forwards verbatim — wrap semantics and
  // chunking stay exactly what a dedicated controller would see.
  const std::uint32_t ch0 = ilv_.channel_of(beat[0]);
  const ahb::Addr l0 = ilv_.local_of(beat[0]);
  bool intact = true;
  for (unsigned i = 0; i < req.beats && intact; ++i) {
    intact = ilv_.channel_of(beat[i]) == ch0 &&
             ilv_.local_of(beat[i]) ==
                 ahb::burst_beat_addr(l0, size, req.burst, i);
  }
  if (intact) {
    MemRequest sub = req;
    sub.addr = l0;
    segments_.push_back(Segment{ch0, sub, false});
    return;
  }
  // Otherwise decompose into maximal runs of consecutive channel-local
  // addresses; each run is an INCR sub-request on its channel.
  for (unsigned i = 0; i < req.beats; ++i) {
    const std::uint32_t ch = ilv_.channel_of(beat[i]);
    const ahb::Addr l = ilv_.local_of(beat[i]);
    const bool extend =
        !segments_.empty() && segments_.back().channel == ch &&
        l == segments_.back().req.addr +
                 static_cast<ahb::Addr>(segments_.back().req.beats) *
                     req.beat_bytes;
    if (extend) {
      ++segments_.back().req.beats;
    } else {
      MemRequest sub = req;
      sub.addr = l;
      sub.beats = 1;
      sub.burst = ahb::Burst::kIncr;
      segments_.push_back(Segment{ch, sub, false});
    }
  }
}

void ChannelSet::advance(sim::Cycle now) {
  // Retire drained bus-facing segments in order.
  while (active_ < segments_.size()) {
    const Segment& s = segments_[active_];
    if (!s.begun) {
      break;
    }
    DdrcEngine& e = *engines_[s.channel];
    if (!e.busy() || !e.done()) {
      break;
    }
    e.finish();
    ++active_;
  }
  // Begin every pending segment whose channel engine is free.  In-order
  // iteration keeps same-channel segments sequential; different channels
  // begin immediately and overlap their bank/command work.
  for (std::size_t i = active_; i < segments_.size(); ++i) {
    Segment& s = segments_[i];
    if (!s.begun && !engines_[s.channel]->busy()) {
      engines_[s.channel]->begin(s.req, now);
      s.begun = true;
    }
  }
}

void ChannelSet::begin(const MemRequest& req, sim::Cycle now) {
  if (channels() == 1) {
    engines_[0]->begin(req, now);
    return;
  }
  if (txn_active_) {
    throw std::logic_error("ChannelSet::begin while busy");
  }
  split(req);
  txn_active_ = true;
  active_ = 0;
  advance(now);
}

bool ChannelSet::done() const noexcept {
  if (channels() == 1) {
    return engines_[0]->done();
  }
  return txn_active_ && active_ >= segments_.size();
}

void ChannelSet::finish() {
  if (channels() == 1) {
    engines_[0]->finish();
    return;
  }
  if (!done()) {
    throw std::logic_error("ChannelSet::finish before done");
  }
  txn_active_ = false;
  segments_.clear();
  active_ = 0;
}

unsigned ChannelSet::remaining_beats() const noexcept {
  if (channels() == 1) {
    return engines_[0]->remaining_beats();
  }
  if (!txn_active_) {
    return 0;
  }
  unsigned remaining = 0;
  for (std::size_t i = active_; i < segments_.size(); ++i) {
    const Segment& s = segments_[i];
    // Only the bus-facing segment has transferred beats; later segments
    // may have begun (command work overlaps) but their beats all remain.
    remaining += i == active_ && s.begun
                     ? engines_[s.channel]->remaining_beats()
                     : s.req.beats;
  }
  return remaining;
}

Command ChannelSet::step(sim::Cycle now) {
  if (channels() == 1) {
    const Command c = engines_[0]->step(now);
    if (tl_ != nullptr) {
      emit_command(0, c, now);
    }
    return c;
  }
  advance(now);
  // Step every engine (possibly on worker threads — engines are
  // data-independent within a cycle), then merge the per-channel command
  // slots on this thread in channel order.  The merge is the only place
  // that touches cross-channel state (timeline, live selection), so the
  // result is byte-identical whatever the thread count.
  step_engines(now);
  Command live{};
  for (std::uint32_t ch = 0; ch < channels(); ++ch) {
    const Command& c = cmd_slots_[ch];
    if (tl_ != nullptr) {
      emit_command(ch, c, now);
    }
    if (c.kind != CmdKind::kNop && active_ < segments_.size() &&
        segments_[active_].channel == ch) {
      live = c;
    }
  }
  return live;
}

void ChannelSet::step_engines(sim::Cycle now) {
  if (workers_.empty()) {
    for (std::uint32_t ch = 0; ch < channels(); ++ch) {
      cmd_slots_[ch] = engines_[ch]->step(now);
    }
    return;
  }
  // Publish the cycle and open the generation gate.  Workers and the
  // calling thread race on the claim cursor; each claimed channel is
  // stepped exactly once into its slot.
  step_now_ = now;
  step_cursor_.store(0, std::memory_order_relaxed);
  step_done_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(step_mutex_);
    ++step_gen_;
  }
  step_cv_.notify_all();
  for (;;) {
    const std::uint32_t ch =
        step_cursor_.fetch_add(1, std::memory_order_relaxed);
    if (ch >= channels()) {
      break;
    }
    cmd_slots_[ch] = engines_[ch]->step(now);
  }
  // Barrier: wait until every worker has drained the cursor.  The
  // release-increment in the workers pairs with this acquire loop, so all
  // engine mutations are visible before the merge.
  const auto target = static_cast<std::uint32_t>(workers_.size());
  while (step_done_.load(std::memory_order_acquire) != target) {
    std::this_thread::yield();
  }
}

void ChannelSet::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(step_mutex_);
      step_cv_.wait(lk, [&] { return workers_stop_ || step_gen_ != seen; });
      if (workers_stop_) {
        return;
      }
      seen = step_gen_;
    }
    const sim::Cycle now = step_now_;
    for (;;) {
      const std::uint32_t ch =
          step_cursor_.fetch_add(1, std::memory_order_relaxed);
      if (ch >= channels()) {
        break;
      }
      cmd_slots_[ch] = engines_[ch]->step(now);
    }
    step_done_.fetch_add(1, std::memory_order_release);
  }
}

void ChannelSet::stop_workers() {
  if (workers_.empty()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lk(step_mutex_);
    workers_stop_ = true;
  }
  step_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
  workers_.clear();
  workers_stop_ = false;
}

void ChannelSet::set_step_threads(unsigned n) {
  stop_workers();
  if (n <= 1 || channels() <= 1) {
    return;
  }
  // The calling thread participates, so spawn one fewer worker; more
  // threads than channels would only contend on the cursor.
  const unsigned spawn = std::min(n, channels()) - 1;
  workers_.reserve(spawn);
  for (unsigned i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

sim::Cycle ChannelSet::idle_until(sim::Cycle now) const noexcept {
  if (channels() > 1 && txn_active_) {
    return now;
  }
  sim::Cycle bound = sim::kNeverCycle;
  for (const auto& e : engines_) {
    const sim::Cycle b = e->idle_until(now);
    if (b < bound) {
      bound = b;
    }
  }
  return bound;
}

void ChannelSet::set_timeline(obs::Timeline* tl, unsigned pid) {
  tl_ = tl;
  tl_ch_track_.clear();
  tl_bank_track_.clear();
  if (tl_ == nullptr) {
    return;
  }
  for (std::uint32_t ch = 0; ch < channels(); ++ch) {
    tl_ch_track_.push_back(tl_->add_track(pid, "ddr ch" + std::to_string(ch)));
    const std::uint32_t banks = bank_base_[ch + 1] - bank_base_[ch];
    for (std::uint32_t b = 0; b < banks; ++b) {
      tl_bank_track_.push_back(tl_->add_track(
          pid, "ch" + std::to_string(ch) + " bank" + std::to_string(b)));
    }
  }
}

void ChannelSet::emit_command(std::uint32_t ch, const Command& c,
                              sim::Cycle now) {
  if (c.kind == CmdKind::kNop) {
    return;
  }
  const unsigned ch_track = tl_ch_track_[ch];
  switch (c.kind) {
    case CmdKind::kActivate:
      tl_->begin(tl_bank_track_[bank_base_[ch] + c.bank], now,
                 "row " + std::to_string(c.row));
      tl_->instant(ch_track, now, "ACT b" + std::to_string(c.bank));
      break;
    case CmdKind::kPrecharge:
      tl_->end(tl_bank_track_[bank_base_[ch] + c.bank], now);
      tl_->instant(ch_track, now, "PRE b" + std::to_string(c.bank));
      break;
    case CmdKind::kRead:
      tl_->instant(ch_track, now, "RD b" + std::to_string(c.bank));
      break;
    case CmdKind::kWrite:
      tl_->instant(ch_track, now, "WR b" + std::to_string(c.bank));
      break;
    case CmdKind::kRefresh:
      tl_->instant(ch_track, now, "REF");
      break;
    case CmdKind::kNop:
      break;
  }
}

bool ChannelSet::read_beat_available(sim::Cycle now) const noexcept {
  if (channels() == 1) {
    return engines_[0]->read_beat_available(now);
  }
  if (!txn_active_ || active_ >= segments_.size()) {
    return false;
  }
  const Segment& s = segments_[active_];
  return s.begun && engines_[s.channel]->read_beat_available(now);
}

ahb::Word ChannelSet::take_read_beat(sim::Cycle now) {
  if (channels() == 1) {
    return engines_[0]->take_read_beat(now);
  }
  if (!read_beat_available(now)) {
    throw std::logic_error("ChannelSet::take_read_beat: no beat available");
  }
  const ahb::Word w = engines_[segments_[active_].channel]->take_read_beat(now);
  advance(now);
  return w;
}

bool ChannelSet::write_beat_ready(sim::Cycle now) const noexcept {
  if (channels() == 1) {
    return engines_[0]->write_beat_ready(now);
  }
  if (!txn_active_ || active_ >= segments_.size()) {
    return false;
  }
  const Segment& s = segments_[active_];
  return s.begun && engines_[s.channel]->write_beat_ready(now);
}

void ChannelSet::put_write_beat(sim::Cycle now, ahb::Word w) {
  if (channels() == 1) {
    engines_[0]->put_write_beat(now, w);
    return;
  }
  if (!write_beat_ready(now)) {
    throw std::logic_error("ChannelSet::put_write_beat: not ready");
  }
  engines_[segments_[active_].channel]->put_write_beat(now, w);
  advance(now);
}

void ChannelSet::set_hint(std::optional<ChannelCoord> hint) {
  for (std::uint32_t ch = 0; ch < channels(); ++ch) {
    engines_[ch]->set_hint(hint && hint->channel == ch
                               ? std::optional<Coord>(hint->coord)
                               : std::nullopt);
  }
}

std::uint32_t ChannelSet::idle_bank_mask(sim::Cycle now) const {
  if (channels() == 1) {
    return engines_[0]->idle_bank_mask(now);
  }
  std::uint32_t mask = 0;
  for (std::uint32_t ch = 0; ch < channels(); ++ch) {
    if (bank_base_[ch] >= 32) {
      break;
    }
    mask |= engines_[ch]->idle_bank_mask(now) << bank_base_[ch];
  }
  return mask;
}

bool ChannelSet::access_permitted(sim::Cycle now) const noexcept {
  for (const auto& e : engines_) {
    if (!e->access_permitted(now)) {
      return false;
    }
  }
  return true;
}

BankAffinity ChannelSet::affinity_for(ahb::Addr offset, sim::Cycle now) const {
  return engines_[ilv_.channel_of(offset)]->affinity_for(ilv_.local_of(offset),
                                                         now);
}

std::size_t ChannelSet::pending_write_chunks() const noexcept {
  std::size_t n = 0;
  for (const auto& e : engines_) {
    n += e->pending_write_chunks();
  }
  return n;
}

BankEngine::Counters ChannelSet::command_counters() const noexcept {
  BankEngine::Counters sum;
  for (const auto& e : engines_) {
    const BankEngine::Counters& c = e->banks().counters();
    sum.activates += c.activates;
    sum.reads += c.reads;
    sum.writes += c.writes;
    sum.precharges += c.precharges;
    sum.refreshes += c.refreshes;
    sum.read_beats += c.read_beats;
    sum.write_beats += c.write_beats;
  }
  return sum;
}

void ChannelSet::save_state(state::StateWriter& w) const {
  w.begin("channel-set");
  w.put_u32(channels());
  for (const auto& e : engines_) {
    e->save_state(w);
  }
  w.put_bool(txn_active_);
  w.put_u64(segments_.size());
  for (const Segment& s : segments_) {
    w.put_u32(s.channel);
    ddr::save_state(w, s.req);
    w.put_bool(s.begun);
  }
  w.put_u64(active_);
  w.end();
}

void ChannelSet::restore_state(state::StateReader& r) {
  r.enter("channel-set");
  const std::uint32_t n = r.get_u32();
  if (n != channels()) {
    throw state::StateError(
        "ChannelSet: snapshot has " + std::to_string(n) +
        " channels, configuration has " + std::to_string(channels()));
  }
  for (auto& e : engines_) {
    e->restore_state(r);
  }
  txn_active_ = r.get_bool();
  segments_.assign(r.get_count(), Segment{});
  for (Segment& s : segments_) {
    s.channel = r.get_u32();
    ddr::restore_state(r, s.req);
    s.begun = r.get_bool();
  }
  active_ = r.get_u64();
  r.leave();
}

DdrcEngine::HitStats ChannelSet::hit_stats() const noexcept {
  DdrcEngine::HitStats sum;
  for (const auto& e : engines_) {
    const DdrcEngine::HitStats& h = e->hit_stats();
    sum.row_hits += h.row_hits;
    sum.row_misses += h.row_misses;
    sum.row_conflicts += h.row_conflicts;
    sum.hint_activates += h.hint_activates;
    sum.hint_precharges += h.hint_precharges;
  }
  return sum;
}

}  // namespace ahbp::ddr
