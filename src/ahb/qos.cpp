#include "ahb/qos.hpp"

#include <algorithm>

namespace ahbp::ahb {

void QosRegisterFile::refill_budgets() {
  for (std::size_t m = 0; m < configs_.size(); ++m) {
    const auto& cfg = configs_[m];
    auto& st = states_[m];
    // Each epoch a master earns `objective` tokens (RT masters use slack,
    // not budget, so their refill only matters if a filter chain runs with
    // the urgency filter disabled).  Debt carries over — a master that
    // overdrew its share pays it back before outranking others again —
    // but accumulation is capped at one epoch's allowance.
    const std::int64_t earn = static_cast<std::int64_t>(cfg.objective);
    st.budget = std::min(st.budget + earn, earn);
  }
}

std::int64_t QosRegisterFile::rt_slack(MasterId m, sim::Cycle now) const {
  const auto& cfg = config(m);
  const auto& st = state(m);
  if (!st.requesting) {
    return static_cast<std::int64_t>(cfg.objective);
  }
  const auto waited = static_cast<std::int64_t>(now - st.request_since);
  return static_cast<std::int64_t>(cfg.objective) - waited;
}

void QosRegisterFile::save_state(state::StateWriter& w) const {
  w.begin("qos");
  w.put_u64(states_.size());
  for (const QosState& s : states_) {
    w.put_bool(s.requesting);
    w.put_u64(s.request_since);
    w.put_i64(s.budget);
    w.put_u64(s.grants);
    w.put_u64(s.qos_misses);
  }
  w.put_u64(epoch_);
  w.end();
}

void QosRegisterFile::restore_state(state::StateReader& r) {
  r.enter("qos");
  const std::uint64_t n = r.get_u64();
  if (n != states_.size()) {
    throw state::StateError(
        "QosRegisterFile: snapshot has " + std::to_string(n) +
        " masters, platform has " + std::to_string(states_.size()));
  }
  for (QosState& s : states_) {
    s.requesting = r.get_bool();
    s.request_since = r.get_u64();
    s.budget = r.get_i64();
    s.grants = r.get_u64();
    s.qos_misses = r.get_u64();
  }
  epoch_ = r.get_u64();
  r.leave();
}

}  // namespace ahbp::ahb
