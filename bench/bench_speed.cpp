// Reproduces the paper's §4 simulation-speed comparison:
//
//   "At RTL, it is 0.47 Kcycles/sec, and at TL, 166 Kcycles/sec.  When we
//    used only one master ... the simulation speed went up to 456
//    Kcycles/sec. ... the implemented model is 353 times faster than RTL."
//
// We report the same three rows (pin-accurate reference, TLM multi-master,
// TLM single-master) plus the speedup factor, along with the kernel
// activity that explains the gap (delta rounds, signal commits, process
// activations per cycle vs two virtual calls per component).  Absolute
// numbers are hardware- and substrate-dependent; the shape under test is
// TLM >> signal-level, and single-master TLM > loaded TLM.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/checkpoint.hpp"
#include "core/platform.hpp"
#include "core/workloads.hpp"
#include "obs/json.hpp"
#include "obs/selfprof.hpp"
#include "rtl/fabric.hpp"
#include "stats/report.hpp"

namespace {

ahbp::core::SimResult best_of(unsigned reps,
                              const ahbp::core::PlatformConfig& cfg,
                              bool rtl) {
  ahbp::core::SimResult best;
  for (unsigned i = 0; i < reps; ++i) {
    auto r = rtl ? ahbp::core::run_rtl(cfg) : ahbp::core::run_tlm(cfg);
    if (i == 0 || r.wall_seconds < best.wall_seconds) {
      best = std::move(r);
    }
  }
  return best;
}

/// The reference model with the RT-detail + bit-level layers stripped —
/// architectural wires only.  The fidelity knob's speed side (tests pin
/// the behaviour side: cycle-identical either way).
ahbp::core::SimResult run_rtl_arch_only(
    const ahbp::core::PlatformConfig& cfg) {
  using namespace ahbp;
  rtl::RtlFabricConfig fc;
  fc.bus = cfg.bus;
  fc.timing = cfg.timing;
  fc.geom = cfg.geom;
  fc.ddr_base = cfg.ddr_base;
  fc.enable_checkers = false;
  fc.rt_detail = false;
  for (const auto& m : cfg.masters) {
    fc.qos.push_back(m.qos);
  }
  rtl::RtlFabric fabric(fc, core::expand_stimulus(cfg));
  const auto t0 = std::chrono::steady_clock::now();
  const sim::Cycle ran = fabric.run(cfg.max_cycles);
  const auto t1 = std::chrono::steady_clock::now();
  core::SimResult r;
  r.model = "rtl-arch";
  r.finished = fabric.finished();
  r.ran_cycles = ran;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.kernel_activity = fabric.kernel().stats().deltas;
  return r;
}

/// One instrumented run per model: a *separate* platform from the timed
/// best-of runs above (the ScopedTimer pairs would distort them), giving
/// the per-component wall-clock breakdown BENCH_SPEED.json records.
ahbp::obs::SelfProfiler profile_model(const ahbp::core::PlatformConfig& cfg,
                                      ahbp::core::ModelKind kind) {
  ahbp::obs::SelfProfiler sp;
  ahbp::core::Platform p(cfg, kind);
  p.enable_self_profile(sp);
  p.run_to_completion();
  return sp;
}

void model_json(ahbp::obs::JsonWriter& j, const ahbp::core::SimResult& r) {
  j.begin_object()
      .member("kcycles_per_sec", ahbp::core::kcycles_per_sec(r))
      .member("cycles", static_cast<std::uint64_t>(r.ran_cycles))
      .member("wall_seconds", r.wall_seconds)
      .member("kernel_activity", r.kernel_activity)
      .end_object();
}

void phases_json(ahbp::obs::JsonWriter& j, const ahbp::obs::SelfProfiler& sp) {
  j.begin_array();
  for (const auto& ph : sp.phases()) {
    j.begin_object()
        .member("name", ph.name)
        .member("calls", ph.calls)
        .member("total_ms", static_cast<double>(ph.ns) / 1e6)
        .end_object();
  }
  j.end_array();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ahbp;
  const unsigned items =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 3000;
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_SPEED.json";

  std::cout << "=== Simulation speed (paper §4) ===\n"
            << "    workload: Table-1 'cpu-1' mix, " << items
            << " txns/master, checkers off (measurement config)\n\n";

  auto cfg = core::table1_workloads(items, 3)[0].config;
  cfg.enable_checkers = false;
  cfg.max_cycles = 100'000'000;

  auto single = core::single_master_workload(items * 4, 3).config;
  single.enable_checkers = false;
  single.max_cycles = 100'000'000;

  // Temporal decoupling rows: the Table-1 RT mix is the idle-heavy member
  // of the preset family (periodic real-time streams leave long provably
  // idle stretches), so it is where quantum batching shows.  Same scenario
  // twice; only sim.quantum differs — reported cycle counts are identical
  // by construction (tests pin this).
  constexpr ahbp::sim::Cycle kQuantum = 1024;
  auto rt_cfg = core::table1_workloads(items, 3)[10].config;  // rt-3
  rt_cfg.enable_checkers = false;
  rt_cfg.max_cycles = 100'000'000;
  auto rt_q_cfg = rt_cfg;
  rt_q_cfg.sim.quantum = kQuantum;

  const auto rtl = best_of(3, cfg, true);
  const auto arch = run_rtl_arch_only(cfg);
  const auto tlm = best_of(3, cfg, false);
  const auto tlm1 = best_of(3, single, false);
  const auto tlm_rt = best_of(3, rt_cfg, false);
  const auto tlm_rtq = best_of(3, rt_q_cfg, false);

  const double rtl_k = core::kcycles_per_sec(rtl);
  const double arch_k = core::kcycles_per_sec(arch);
  const double tlm_k = core::kcycles_per_sec(tlm);
  const double tlm1_k = core::kcycles_per_sec(tlm1);
  const double rt_k = core::kcycles_per_sec(tlm_rt);
  const double rtq_k = core::kcycles_per_sec(tlm_rtq);

  stats::TextTable t({"model", "Kcycles/s", "cycles", "wall s",
                      "kernel activity / cycle"});
  t.add_row({"signal-level reference", stats::fmt_double(rtl_k, 1),
             std::to_string(rtl.ran_cycles),
             stats::fmt_double(rtl.wall_seconds, 3),
             stats::fmt_double(static_cast<double>(rtl.kernel_activity) /
                                   static_cast<double>(rtl.ran_cycles),
                               2) +
                 " delta rounds"});
  t.add_row({"  (architectural wires only)", stats::fmt_double(arch_k, 1),
             std::to_string(arch.ran_cycles),
             stats::fmt_double(arch.wall_seconds, 3),
             stats::fmt_double(static_cast<double>(arch.kernel_activity) /
                                   static_cast<double>(arch.ran_cycles),
                               2) +
                 " delta rounds"});
  t.add_row({"AHB+ TLM (4 masters)", stats::fmt_double(tlm_k, 1),
             std::to_string(tlm.ran_cycles),
             stats::fmt_double(tlm.wall_seconds, 3),
             stats::fmt_double(static_cast<double>(tlm.kernel_activity) /
                                   static_cast<double>(tlm.ran_cycles),
                               2) +
                 " component evals"});
  t.add_row({"AHB+ TLM (1 master)", stats::fmt_double(tlm1_k, 1),
             std::to_string(tlm1.ran_cycles),
             stats::fmt_double(tlm1.wall_seconds, 3),
             stats::fmt_double(static_cast<double>(tlm1.kernel_activity) /
                                   static_cast<double>(tlm1.ran_cycles),
                               2) +
                 " component evals"});
  t.add_row({"AHB+ TLM (rt-3 mix)", stats::fmt_double(rt_k, 1),
             std::to_string(tlm_rt.ran_cycles),
             stats::fmt_double(tlm_rt.wall_seconds, 3),
             stats::fmt_double(static_cast<double>(tlm_rt.kernel_activity) /
                                   static_cast<double>(tlm_rt.ran_cycles),
                               2) +
                 " component evals"});
  t.add_row({"  (quantum = " + std::to_string(kQuantum) + ")",
             stats::fmt_double(rtq_k, 1), std::to_string(tlm_rtq.ran_cycles),
             stats::fmt_double(tlm_rtq.wall_seconds, 3),
             stats::fmt_double(static_cast<double>(tlm_rtq.kernel_activity) /
                                   static_cast<double>(tlm_rtq.ran_cycles),
                               2) +
                 " component evals"});
  t.print(std::cout);

  std::cout << "\nTLM vs reference speedup : "
            << stats::fmt_double(tlm_k / rtl_k, 1)
            << "x   (paper: 353x against a commercial RTL simulation of the"
               " full netlist)\n";
  std::cout << "single-master TLM uplift : "
            << stats::fmt_double(tlm1_k / tlm_k, 2)
            << "x over loaded TLM (paper: 456 vs 166 Kcycles/s = 2.75x)\n";
  std::cout << "quantum batching uplift  : "
            << stats::fmt_double(rtq_k / rt_k, 2)
            << "x on the rt-3 mix at quantum=" << kQuantum
            << " (identical cycle counts: "
            << (tlm_rtq.ran_cycles == tlm_rt.ran_cycles ? "yes" : "NO")
            << ")\n";

  // Where the simulators' own time goes, from separate instrumented runs
  // (instrumentation would distort the timed best-of numbers above).
  const obs::SelfProfiler tlm_prof = profile_model(cfg, core::ModelKind::kTlm);
  const obs::SelfProfiler rtl_prof = profile_model(cfg, core::ModelKind::kRtl);

  // Shape: TLM >> signal-level, single-master > loaded, and quantum
  // batching moves wall clock but never a cycle count (determinism is part
  // of the shape; the speed side is gated against the committed artifact
  // by tools/check_bench_speed.py).
  const bool shape_ok = tlm_k > rtl_k * 3.0 && tlm1_k > tlm_k &&
                        tlm_rtq.ran_cycles == tlm_rt.ran_cycles;

  std::ofstream json_os(json_path);
  if (!json_os) {
    std::cerr << "cannot open '" << json_path << "' for writing\n";
    return 1;
  }
  {
    obs::JsonWriter j(json_os);
    j.begin_object().member("items", items);
    j.key("models").begin_object();
    j.key("rtl");
    model_json(j, rtl);
    j.key("rtl_arch");
    model_json(j, arch);
    j.key("tlm");
    model_json(j, tlm);
    j.key("tlm_single");
    model_json(j, tlm1);
    j.key("tlm_rt");
    model_json(j, tlm_rt);
    j.key("tlm_rt_quantum");
    model_json(j, tlm_rtq);
    j.end_object();
    j.member("speedup_tlm_vs_rtl", rtl_k > 0.0 ? tlm_k / rtl_k : 0.0)
        .member("single_master_uplift", tlm_k > 0.0 ? tlm1_k / tlm_k : 0.0)
        .member("quantum", static_cast<std::uint64_t>(kQuantum))
        .member("quantum_uplift", rt_k > 0.0 ? rtq_k / rt_k : 0.0);
    j.key("phases").begin_object();
    j.key("tlm");
    phases_json(j, tlm_prof);
    j.key("rtl");
    phases_json(j, rtl_prof);
    j.end_object();
    j.member("shape_ok", shape_ok).end_object();
  }
  json_os << '\n';
  json_os.close();
  std::cout << "\nmachine-readable results written to " << json_path << "\n";

  std::cout << "\nRESULT: " << (shape_ok ? "OK" : "FAIL")
            << " (shape: TLM >> signal-level, single-master > loaded)\n";
  return shape_ok ? 0 : 1;
}
