#include "traffic/generator.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "ahb/address.hpp"
#include "assertions/assert.hpp"
#include "traffic/stimulus.hpp"

namespace ahbp::traffic {

namespace {

/// Every pattern draws from the explicitly owned per-master engine.
using Rng = TrafficRng;

std::uint64_t mix_seed(std::uint64_t seed, ahb::MasterId master) {
  // splitmix64 step over (seed, master) for decorrelated streams
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (1 + master);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Align an address down to `bytes` and clamp a burst of `beats` into the
/// window so it cannot cross the window end or a 1KB boundary.
ahb::Addr place_burst(Rng& rng, ahb::Addr base, ahb::Addr span, unsigned bytes,
                      unsigned beats) {
  const ahb::Addr burst_bytes = static_cast<ahb::Addr>(bytes) * beats;
  AHBP_ASSERT_MSG(span >= 1024, "traffic window must be at least 1KB");
  // Choose a 1KB block, then an offset inside it that fits the burst.
  const ahb::Addr blocks = span / 1024;
  const ahb::Addr block = std::uniform_int_distribution<ahb::Addr>(
      0, blocks - 1)(rng);
  const ahb::Addr slots = (1024 - burst_bytes) / bytes + 1;
  const ahb::Addr slot =
      std::uniform_int_distribution<ahb::Addr>(0, slots - 1)(rng);
  return base + block * 1024 + slot * bytes;
}

/// Shape a transfer of `total_bytes` (a power of two) for a `bus_bytes`
/// wide bus: the widest legal beat, the resulting beat count, and the
/// incrementing burst kind carrying that count.  This is where the §3.7
/// "bus width" knob becomes real work: the bytes moved stay fixed while
/// beats = total / width.
void shape_transfer(ahb::Transaction& t, unsigned total_bytes,
                    unsigned bus_bytes) {
  const unsigned beat = ahb::beat_bytes_for(total_bytes, bus_bytes);
  AHBP_ASSERT_MSG(ahb::valid_beat_bytes(beat),
                  "transfer quantum must be a power of two");
  t.size = ahb::size_for_bytes(beat);
  t.beats = total_bytes / beat;
  t.burst = ahb::incr_burst_for(t.beats);
}

/// Smallest multiple of `bytes` at or above `a` (start-address alignment
/// for beats wider than the legacy 32-bit word).
ahb::Addr align_up(ahb::Addr a, unsigned bytes) {
  return (a + bytes - 1) & ~static_cast<ahb::Addr>(bytes - 1);
}

void fill_write_data(Rng& rng, ahb::Transaction& t) {
  if (t.dir != ahb::Dir::kWrite) {
    return;
  }
  t.data.resize(t.beats);
  for (auto& w : t.data) {
    w = rng();
  }
}

sim::Cycle geometric_gap(Rng& rng, sim::Cycle mean) {
  if (mean == 0) {
    return 0;
  }
  std::geometric_distribution<sim::Cycle> d(1.0 / (1.0 + static_cast<double>(mean)));
  return d(rng);
}

Script make_cpu(const PatternConfig& cfg, Rng& rng) {
  Script s;
  s.reserve(cfg.items);
  const unsigned bus = cfg.beat_bytes;
  // CPU traffic: runs of cache-line activity inside a hot region that
  // periodically jumps (working-set change).  Line fill/eviction moves one
  // 16-byte cache line, occasional scalar accesses move one 32-bit datum;
  // both are expressed in however many bus-wide beats that takes.
  ahb::Addr hot = place_burst(rng, cfg.base, cfg.span, bus, 64 / bus);
  unsigned run_left = 0;
  for (unsigned i = 0; i < cfg.items; ++i) {
    if (run_left == 0) {
      hot = place_burst(rng, cfg.base, cfg.span, bus, 64 / bus);
      run_left = 4 + static_cast<unsigned>(rng() % 12);
    }
    --run_left;
    TrafficItem item;
    item.gap = geometric_gap(rng, cfg.mean_gap);
    ahb::Transaction& t = item.txn;
    const bool line = rng() % 100 < 70;
    const bool read =
        std::uniform_real_distribution<double>(0, 1)(rng) < cfg.read_ratio;
    t.dir = read ? ahb::Dir::kRead : ahb::Dir::kWrite;
    shape_transfer(t, line ? 16 : 4, bus);
    // Stay close to the hot line: wander within +-8 lines.
    const ahb::Addr line_bytes = 16;
    const std::int64_t wander =
        static_cast<std::int64_t>(rng() % 17) - 8;
    ahb::Addr a = hot + static_cast<ahb::Addr>(wander * static_cast<std::int64_t>(line_bytes));
    a = std::clamp<ahb::Addr>(a, cfg.base, cfg.base + cfg.span - 64);
    a &= ~static_cast<ahb::Addr>(ahb::size_bytes(t.size) - 1);  // beat align
    // Keep the burst inside its 1KB block.
    const ahb::Addr block_off = a % 1024;
    const ahb::Addr burst_bytes = static_cast<ahb::Addr>(t.beats) *
                                  ahb::size_bytes(t.size);
    if (block_off + burst_bytes > 1024) {
      a -= block_off + burst_bytes - 1024;
    }
    t.addr = a;
    fill_write_data(rng, t);
    s.push_back(std::move(item));
  }
  return s;
}

Script make_dma(const PatternConfig& cfg, Rng& rng) {
  Script s;
  s.reserve(cfg.items);
  // DMA: long bursts marching sequentially through the window; a read and
  // a write phase alternate (memory-to-memory copy shape).  The burst
  // quantum is `dma_burst_beats` 32-bit-reference words; a wider bus moves
  // the same bytes in proportionally fewer beats.
  unsigned ref_beats = cfg.dma_burst_beats;
  if (ref_beats != 4 && ref_beats != 8 && ref_beats != 16) {
    ref_beats = 16;
  }
  const unsigned total_bytes = ref_beats * 4;
  const ahb::Addr stride = total_bytes;
  // Cursors are aligned to the burst stride, not just the beat: a
  // stride-aligned burst of `stride` bytes (a power of two <= 64) can
  // never straddle the AHB 1KB boundary.
  ahb::Addr rd_cursor = align_up(cfg.base, total_bytes);
  ahb::Addr wr_cursor = align_up(cfg.base + cfg.span / 2, total_bytes);
  for (unsigned i = 0; i < cfg.items; ++i) {
    TrafficItem item;
    item.gap = i % 2 == 0 ? 1 : 0;  // copy loop: tight back-to-back
    ahb::Transaction& t = item.txn;
    const bool read = i % 2 == 0;
    t.dir = read ? ahb::Dir::kRead : ahb::Dir::kWrite;
    shape_transfer(t, total_bytes, cfg.beat_bytes);
    ahb::Addr& cursor = read ? rd_cursor : wr_cursor;
    const ahb::Addr half = cfg.span / 2;
    const ahb::Addr lo =
        align_up(read ? cfg.base : cfg.base + half, total_bytes);
    if (cursor + stride > cfg.base + (read ? half : cfg.span)) {
      cursor = lo;
    }
    t.addr = cursor;
    cursor += stride;
    fill_write_data(rng, t);
    s.push_back(std::move(item));
  }
  return s;
}

Script make_rt_stream(const PatternConfig& cfg, Rng& rng) {
  Script s;
  s.reserve(cfg.items);
  // Real-time stream: fixed 32-byte read bursts sweeping a frame buffer,
  // one per period (INCR8 of words on the reference 32-bit bus).  The gap
  // models the period minus the transfer itself; the source re-arms from
  // completion, so use period as think time directly — the shape
  // (periodic, deadline-sensitive) is what matters.
  const unsigned total_bytes = 32;
  const ahb::Addr stride = total_bytes;
  // Stride-aligned 32-byte bursts can never straddle the 1KB boundary.
  ahb::Addr cursor = align_up(cfg.base, total_bytes);
  for (unsigned i = 0; i < cfg.items; ++i) {
    TrafficItem item;
    item.gap = cfg.period;
    ahb::Transaction& t = item.txn;
    t.dir = ahb::Dir::kRead;
    shape_transfer(t, total_bytes, cfg.beat_bytes);
    if (cursor + stride > cfg.base + cfg.span) {
      cursor = align_up(cfg.base, total_bytes);
    }
    t.addr = cursor;
    cursor += stride;
    fill_write_data(rng, t);
    s.push_back(std::move(item));
  }
  return s;
}

Script make_random(const PatternConfig& cfg, Rng& rng) {
  Script s;
  s.reserve(cfg.items);
  static constexpr ahb::Burst kBursts[] = {
      ahb::Burst::kSingle, ahb::Burst::kIncr4, ahb::Burst::kWrap4,
      ahb::Burst::kIncr8,  ahb::Burst::kWrap8, ahb::Burst::kIncr16,
      ahb::Burst::kWrap16, ahb::Burst::kIncr,
  };
  for (unsigned i = 0; i < cfg.items; ++i) {
    TrafficItem item;
    item.gap = geometric_gap(rng, cfg.mean_gap);
    ahb::Transaction& t = item.txn;
    t.dir = std::uniform_real_distribution<double>(0, 1)(rng) < cfg.read_ratio
                ? ahb::Dir::kRead
                : ahb::Dir::kWrite;
    t.burst = kBursts[rng() % std::size(kBursts)];
    // Any HSIZE up to the bus width (byte/half/word on the 32-bit bus,
    // plus dword once the bus is 8 bytes wide).
    t.size = static_cast<ahb::Size>(rng() % std::bit_width(cfg.beat_bytes));
    unsigned beats = ahb::burst_fixed_beats(t.burst);
    if (beats == 0) {
      beats = 2 + static_cast<unsigned>(rng() % 15);  // INCR 2..16
    }
    t.beats = beats;
    const unsigned bytes = ahb::size_bytes(t.size);
    if (ahb::burst_wraps(t.burst)) {
      // Wrapping bursts need only size alignment; place anywhere.
      const ahb::Addr slots = cfg.span / bytes;
      t.addr = cfg.base +
               (std::uniform_int_distribution<ahb::Addr>(0, slots - 1)(rng)) *
                   bytes;
    } else {
      t.addr = place_burst(rng, cfg.base, cfg.span, bytes, beats);
    }
    fill_write_data(rng, t);
    s.push_back(std::move(item));
  }
  return s;
}

}  // namespace

std::string to_string(PatternKind k) {
  switch (k) {
    case PatternKind::kCpu: return "cpu";
    case PatternKind::kDma: return "dma";
    case PatternKind::kRtStream: return "rt-stream";
    case PatternKind::kRandom: return "random";
  }
  return "?";
}

bool pattern_from_string(std::string_view name, PatternKind& out) {
  if (name == "cpu") {
    out = PatternKind::kCpu;
  } else if (name == "dma") {
    out = PatternKind::kDma;
  } else if (name == "rt-stream") {
    out = PatternKind::kRtStream;
  } else if (name == "random") {
    out = PatternKind::kRandom;
  } else {
    return false;
  }
  return true;
}

TrafficRng::TrafficRng(std::uint64_t seed, ahb::MasterId master)
    : stream_seed_(mix_seed(seed, master)), engine_(stream_seed_) {}

Script make_script(const PatternConfig& cfg, ahb::MasterId master) {
  AHBP_ASSERT_MSG(ahb::valid_beat_bytes(cfg.beat_bytes),
                  "beat_bytes must be 1, 2, 4 or 8 (HSIZE-encodable)");
  AHBP_ASSERT_MSG(cfg.base % cfg.beat_bytes == 0,
                  "traffic window base must be aligned to the bus width");
  if (cfg.items == 0) {
    return {};
  }
  // The stream's engine lives exactly as long as this expansion: owned
  // here, seeded from (seed, master), shared with nothing.
  Rng rng(cfg.seed, master);
  Script s;
  switch (cfg.kind) {
    case PatternKind::kCpu: s = make_cpu(cfg, rng); break;
    case PatternKind::kDma: s = make_dma(cfg, rng); break;
    case PatternKind::kRtStream: s = make_rt_stream(cfg, rng); break;
    case PatternKind::kRandom: s = make_random(cfg, rng); break;
  }
  // Stamp ids/master and validate: scripts must be structurally legal, or
  // the protocol checkers would blame the models for workload bugs.
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i].txn.id = i + 1;
    s[i].txn.master = master;
    AHBP_ASSERT_MSG(ahb::structurally_valid(s[i].txn),
                    "generated transaction is not structurally valid");
  }
  return s;
}

std::uint64_t script_bytes(const Script& s) {
  std::uint64_t total = 0;
  for (const TrafficItem& i : s) {
    total += i.txn.bytes();
  }
  return total;
}

std::uint64_t script_prefix_hash(const Script& s, std::size_t items) {
  // FNV-1a 64.  Field order is part of the snapshot format (v4).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFFU;
      h *= 0x100000001b3ULL;
    }
  };
  const std::size_t n = std::min(items, s.size());
  for (std::size_t i = 0; i < n; ++i) {
    const TrafficItem& it = s[i];
    mix(it.gap);
    mix(it.txn.master);
    mix(static_cast<std::uint64_t>(it.txn.dir));
    mix(it.txn.addr);
    mix(static_cast<std::uint64_t>(it.txn.size));
    mix(static_cast<std::uint64_t>(it.txn.burst));
    mix(it.txn.beats);
    mix(it.txn.locked ? 1 : 0);
    mix(it.txn.data.size());
    for (const ahb::Word w : it.txn.data) {
      mix(w);
    }
  }
  return h;
}

ahb::Transaction ScriptSource::pop(sim::Cycle now) {
  if (!ready(now)) {
    throw std::logic_error("ScriptSource::pop before ready");
  }
  AHBP_ASSERT_MSG(!in_flight_, "previous transaction not completed");
  in_flight_ = true;
  if (recorder_ != nullptr) {
    // The pristine script item (skeleton + write data, timestamps zero) at
    // the exact issue cycle — before the model stamps or fills anything.
    recorder_->record_issue(now, script_[index_].txn);
  }
  return script_[index_++].txn;
}

void ScriptSource::on_complete(sim::Cycle now) {
  AHBP_ASSERT_MSG(in_flight_, "on_complete without an in-flight transaction");
  in_flight_ = false;
  earliest_ = done() ? sim::kNeverCycle : now + script_[index_].gap;
  if (recorder_ != nullptr) {
    recorder_->record_complete(now);
  }
}

void ScriptSource::save_state(state::StateWriter& w) const {
  w.begin("script-source");
  w.put_u64(script_.size());
  w.put_u64(index_);
  w.put_u64(earliest_);
  w.put_bool(in_flight_);
  // v4: content hash of everything already issued, so a restore can prove
  // the receiving script shares this run's history (not just its length).
  w.put_u64(script_prefix_hash(script_, index_));
  w.end();
}

void ScriptSource::restore_state(state::StateReader& r) {
  r.enter("script-source");
  const std::uint64_t items = r.get_u64();
  index_ = r.get_u64();
  earliest_ = r.get_u64();
  in_flight_ = r.get_bool();
  const std::uint64_t prefix_hash = r.get_u64();
  r.leave();
  // Restoring into a *longer* script is legal (a sweep point extending
  // `items` shares the generated prefix); a shorter one would replay
  // transactions that never existed in the snapshotted run.
  if (index_ > script_.size()) {
    throw state::StateError(
        "ScriptSource: snapshot had issued " + std::to_string(index_) +
        " of " + std::to_string(items) + " items, but this script has only " +
        std::to_string(script_.size()));
  }
  // A snapshot parked at end-of-script cannot restore into a longer
  // script: the gap to the next (previously nonexistent) item was never
  // armed in the snapshotted run, so the resumed source could not issue it
  // at the cycle an uninterrupted run would have.  Reject the fork — the
  // warm-up must end while the source is still draining.
  if (index_ < script_.size() && !in_flight_ && earliest_ == sim::kNeverCycle) {
    throw state::StateError(
        "ScriptSource: snapshot exhausted its script; restoring into a"
        " longer script is only sound before the source drains");
  }
  // Same length bookkeeping, different history: the snapshotted run issued
  // transactions this script would not have issued (a swept seed, pattern,
  // window or trace axis reshaped the prefix).  Recoverable by running the
  // configuration cold — hence the distinct exception type.
  if (script_prefix_hash(script_, index_) != prefix_hash) {
    throw state::ForkDivergence(
        "ScriptSource: the warm-up snapshot issued " + std::to_string(index_) +
        " transaction(s) that differ from this configuration's script — the"
        " stimulus diverged before the fork point, so the warm state does"
        " not belong to this configuration (run it cold)");
  }
}

}  // namespace ahbp::traffic
