#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.hpp"

/// \file timeline.hpp
/// Structured event timeline in the Chrome trace-event format
/// (chrome://tracing, Perfetto).  Both models emit through the same
/// interface: one *process* per model, one *track* (thread) per
/// master/bus/write-buffer/DDR-channel/bank, spans ("B"/"E") for phases,
/// instants ("i") for decisions, counters ("C") for occupancies.
///
/// Components hold a `Timeline*` that is null when recording is off — the
/// disabled path is one pointer test.  Timestamps are bus cycles.  Events
/// are buffered and stably sorted by timestamp at write() time, so emission
/// order inside a cycle never matters; per-track open-span stacks guarantee
/// balanced begin/end pairs (an `end` with no matching `begin`, e.g. right
/// after a mid-span checkpoint restore, is dropped; spans still open at
/// finalize() are closed at the final cycle).

namespace ahbp::obs {

class Timeline {
 public:
  struct Event {
    char ph;            ///< 'B', 'E', 'i' or 'C'
    unsigned track;     ///< index into tracks()
    sim::Cycle ts;
    std::string name;   ///< span/instant/counter-series name
    std::uint64_t value;  ///< counter value (ph == 'C' only)
  };

  struct Track {
    unsigned pid;       ///< index into processes()
    std::string name;
    std::vector<std::string> open;  ///< names of open spans (stack)
  };

  /// Register a process (one per model).  Returns its id.
  unsigned add_process(std::string name);

  /// Register a track under process `pid`.  Returns the track id; display
  /// order follows creation order.
  unsigned add_track(unsigned pid, std::string name);

  void begin(unsigned track, sim::Cycle ts, std::string name);
  /// Close the innermost open span on `track`; no-op when none is open.
  void end(unsigned track, sim::Cycle ts);
  void instant(unsigned track, sim::Cycle ts, std::string name);
  /// Counter sample: one series named `name` on `track`.
  void counter(unsigned track, sim::Cycle ts, std::string name,
               std::uint64_t value);

  /// Close every still-open span at `ts` (call once, after the run).
  void finalize(sim::Cycle ts);

  /// Emit the Chrome trace-event JSON document.
  void write(std::ostream& os) const;

  const std::vector<Event>& events() const noexcept { return events_; }
  const std::vector<Track>& tracks() const noexcept { return tracks_; }
  const std::vector<std::string>& processes() const noexcept {
    return processes_;
  }

 private:
  std::vector<std::string> processes_;
  std::vector<Track> tracks_;
  std::vector<Event> events_;
};

}  // namespace ahbp::obs
