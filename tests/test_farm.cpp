// Sweep farm: the coordinator/worker process fan-out (src/farm/) must be
// observationally identical to the in-process SweepRunner — byte-identical
// aggregate table and per-point CSV at any worker count, through warm-up
// forks and demotions, and across a worker being SIGKILLed mid-sweep (its
// unacknowledged points are re-issued to survivors).  The wire layer must
// fail loudly: truncated, corrupted, or mis-tagged frames raise StateError
// with a usable message instead of desynchronizing or hanging.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/checkpoint.hpp"
#include "core/workloads.hpp"
#include "farm/coordinator.hpp"
#include "farm/protocol.hpp"
#include "state/snapshot.hpp"
#include "state/transport.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"

namespace {

using namespace ahbp;

std::string outcomes_csv(const std::vector<sweep::PointOutcome>& o,
                         sweep::Model model) {
  std::ostringstream os;
  sweep::write_point_csv(os, o, model);
  return os.str();
}

std::string outcomes_table(const std::vector<sweep::PointOutcome>& o,
                           sweep::Model model) {
  std::ostringstream os;
  sweep::aggregate_table(o, model).print(os);
  return os.str();
}

/// 8 x 4 x 2 = 64 points, all prefix-invariant axes (items only extend the
/// scripts), small enough to farm quickly.
const char* kSweep64 = R"(
base = table1/cpu-1

[master *]
items = 40

[sweep]
master0.items = 40, 41, 42, 43, 44, 45, 46, 47
master1.items = 40, 41, 42, 43
bus.write_buffer_depth = 2, 4
)";

// ------------------------------------------------------------ protocol ----

TEST(FarmProtocol, HelloRoundTrip) {
  farm::HelloMsg hello;
  hello.model = sweep::Model::kBoth;
  hello.scenario_text = "[bus]\ndata_width_bytes = 4\n";
  hello.traces.emplace_back(2, "# trace\nR 0x0 4 1\n");
  hello.warm_tlm = {1, 2, 3, 255};
  hello.warm_rtl = {};

  const farm::Msg msg = farm::decode(farm::encode_hello(hello));
  ASSERT_EQ(msg.kind, farm::MsgKind::kHello);
  EXPECT_EQ(msg.hello.model, sweep::Model::kBoth);
  EXPECT_EQ(msg.hello.scenario_text, hello.scenario_text);
  ASSERT_EQ(msg.hello.traces.size(), 1u);
  EXPECT_EQ(msg.hello.traces[0].first, 2u);
  EXPECT_EQ(msg.hello.traces[0].second, hello.traces[0].second);
  EXPECT_EQ(msg.hello.warm_tlm, hello.warm_tlm);
  EXPECT_TRUE(msg.hello.warm_rtl.empty());
}

TEST(FarmProtocol, BatchAndShutdownRoundTrip) {
  farm::PointAssignment p;
  p.index = 17;
  p.label = "bus.write_buffer_depth=4";
  p.overrides.emplace_back("bus.write_buffer_depth", "4");
  p.overrides.emplace_back("master0.items", "41");

  const farm::Msg batch = farm::decode(farm::encode_batch({p}));
  ASSERT_EQ(batch.kind, farm::MsgKind::kBatch);
  ASSERT_EQ(batch.batch.size(), 1u);
  EXPECT_EQ(batch.batch[0].index, 17u);
  EXPECT_EQ(batch.batch[0].label, p.label);
  ASSERT_EQ(batch.batch[0].overrides.size(), 2u);
  EXPECT_EQ(batch.batch[0].overrides[1].first, "master0.items");
  EXPECT_EQ(batch.batch[0].overrides[1].second, "41");

  EXPECT_EQ(farm::decode(farm::encode_shutdown()).kind,
            farm::MsgKind::kShutdown);
}

TEST(FarmProtocol, RealResultSurvivesTheWire) {
  // A genuine simulation result — profiles, stall attribution and all —
  // must cross the wire unchanged; the CSV writer reads every field
  // external tooling diffs.
  core::Platform p(core::table1_workloads(30, 1)[0].config,
                   core::ModelKind::kTlm);
  p.run_to_completion();

  sweep::PointOutcome o;
  o.index = 5;
  o.label = "master0.items=30";
  o.has_tlm = true;
  o.tlm = p.result();
  o.demoted = true;

  const farm::Msg msg = farm::decode(farm::encode_outcome(o));
  ASSERT_EQ(msg.kind, farm::MsgKind::kOutcome);
  const sweep::PointOutcome& back = msg.outcome;
  EXPECT_EQ(back.index, 5u);
  EXPECT_EQ(back.label, o.label);
  EXPECT_TRUE(back.demoted);
  EXPECT_TRUE(back.error.empty());
  EXPECT_EQ(back.tlm.cycles, o.tlm.cycles);
  EXPECT_EQ(back.tlm.completed, o.tlm.completed);
  EXPECT_EQ(back.tlm.wall_seconds, o.tlm.wall_seconds);
  EXPECT_EQ(back.tlm.profile.total_cycles, o.tlm.profile.total_cycles);
  ASSERT_EQ(back.tlm.profile.masters.size(), o.tlm.profile.masters.size());
  EXPECT_EQ(back.tlm.profile.masters[0].name, o.tlm.profile.masters[0].name);
  EXPECT_EQ(back.tlm.profile.ddr.commands.reads,
            o.tlm.profile.ddr.commands.reads);
  EXPECT_EQ(back.tlm.profile.ddr.hits.row_hits,
            o.tlm.profile.ddr.hits.row_hits);
  // The CSV row — the artifact the farm's byte-identity contract is about.
  EXPECT_EQ(outcomes_csv({back}, sweep::Model::kTlm),
            outcomes_csv({o}, sweep::Model::kTlm));
}

TEST(FarmProtocol, CorruptPayloadIsRejected) {
  std::vector<std::uint8_t> bytes = farm::encode_shutdown();
  ASSERT_GT(bytes.size(), 6u);
  bytes[bytes.size() / 2] ^= 0x40;
  EXPECT_THROW(farm::decode(bytes), state::StateError);
}

// ----------------------------------------------------------- transport ----

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    close_read();
    close_write();
  }
  void close_read() {
    if (fds[0] >= 0) {
      ::close(fds[0]);
      fds[0] = -1;
    }
  }
  void close_write() {
    if (fds[1] >= 0) {
      ::close(fds[1]);
      fds[1] = -1;
    }
  }
};

TEST(FarmTransport, FrameRoundTripAndCleanEof) {
  Pipe p;
  const std::vector<std::uint8_t> payload = {0, 1, 2, 250, 251, 252};
  state::write_frame(p.fds[1], payload);
  state::write_frame(p.fds[1], std::vector<std::uint8_t>{});
  p.close_write();

  auto a = state::read_frame(p.fds[0]);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, payload);
  auto b = state::read_frame(p.fds[0]);
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(b->empty());
  // Closed at a frame boundary: clean EOF, not an error.
  EXPECT_FALSE(state::read_frame(p.fds[0]).has_value());
}

TEST(FarmTransport, TruncatedFrameIsAnErrorNotAHang) {
  // Header promises 100 payload bytes; the writer dies after 3.  The
  // reader must fail with a StateError once the pipe closes — never block
  // forever, never return a short frame.
  Pipe p;
  const std::uint8_t header[12] = {0x41, 0x48, 0x42, 0x46,  // magic, LE
                                   100,  0,    0,    0,   0, 0, 0, 0};
  state::write_exact(p.fds[1], header, sizeof(header));
  const std::uint8_t partial[3] = {9, 9, 9};
  state::write_exact(p.fds[1], partial, sizeof(partial));
  p.close_write();
  EXPECT_THROW(state::read_frame(p.fds[0]), state::StateError);
}

TEST(FarmTransport, BadMagicIsRejected) {
  Pipe p;
  const std::uint8_t junk[12] = {'j', 'u', 'n', 'k', 4, 0, 0, 0, 0, 0, 0, 0};
  state::write_exact(p.fds[1], junk, sizeof(junk));
  p.close_write();
  try {
    state::read_frame(p.fds[0]);
    FAIL() << "bad magic must throw";
  } catch (const state::StateError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST(FarmTransport, OversizedLengthIsRejected) {
  // A corrupted length field must be refused before any allocation, not
  // trusted as a 2^60-byte read.
  Pipe p;
  std::uint8_t header[12] = {0x41, 0x48, 0x42, 0x46, 0, 0, 0, 0, 0, 0, 0, 0};
  header[11] = 0x10;  // length = 2^60
  state::write_exact(p.fds[1], header, sizeof(header));
  p.close_write();
  EXPECT_THROW(state::read_frame(p.fds[0]), state::StateError);
}

// ---------------------------------------------------------- end to end ----

TEST(FarmEndToEnd, ByteIdenticalToInProcessAtAnyWorkerCount) {
  const sweep::SweepSpec spec = sweep::parse_spec(kSweep64);
  const auto points = sweep::expand(spec);
  ASSERT_EQ(points.size(), 64u);

  const sweep::SweepRunner runner(2);
  const auto inproc = runner.run(points, sweep::Model::kTlm);
  const std::string want_csv = outcomes_csv(inproc, sweep::Model::kTlm);
  const std::string want_table = outcomes_table(inproc, sweep::Model::kTlm);

  for (const unsigned workers : {1u, 2u, 4u}) {
    farm::FarmOptions opts;
    opts.workers = workers;
    const auto farmed = farm::Coordinator(opts).run(spec, sweep::Model::kTlm);
    EXPECT_EQ(outcomes_csv(farmed, sweep::Model::kTlm), want_csv)
        << workers << " worker(s)";
    EXPECT_EQ(outcomes_table(farmed, sweep::Model::kTlm), want_table)
        << workers << " worker(s)";
  }
}

TEST(FarmEndToEnd, BothModelsFarmIdentically) {
  const sweep::SweepSpec spec = sweep::parse_spec(R"(
base = table1/cpu-1

[master *]
items = 30

[sweep]
bus.write_buffer_depth = 2, 4
master0.items = 30, 33
)");
  const auto points = sweep::expand(spec);
  ASSERT_EQ(points.size(), 4u);

  const sweep::SweepRunner runner(2);
  const auto inproc = runner.run(points, sweep::Model::kBoth);
  farm::FarmOptions opts;
  opts.workers = 2;
  const auto farmed = farm::Coordinator(opts).run(spec, sweep::Model::kBoth);
  EXPECT_EQ(outcomes_csv(farmed, sweep::Model::kBoth),
            outcomes_csv(inproc, sweep::Model::kBoth));
  for (const auto& o : farmed) {
    EXPECT_TRUE(o.has_tlm);
    EXPECT_TRUE(o.has_rtl);
    EXPECT_TRUE(o.error.empty()) << o.index << ": " << o.error;
  }
}

TEST(FarmEndToEnd, WarmForkAndDemotionTravelTheWire) {
  // A swept seed reshapes master0's stimulus prefix, so those points
  // cannot fork from the warm base: the worker demotes them to cold runs
  // and the flag must come back over the wire exactly as the in-process
  // runner sets it.
  const sweep::SweepSpec spec = sweep::parse_spec(R"(
base = table1/cpu-1

[master *]
items = 40

[sweep]
master0.seed = 1, 7
master0.items = 40, 44, 48
)");
  const auto points = sweep::expand(spec);
  ASSERT_EQ(points.size(), 6u);
  const sim::Cycle warmup = 400;

  const sweep::SweepRunner runner(2);
  const auto inproc =
      runner.run(points, sweep::Model::kTlm, spec.base_config, warmup);

  farm::FarmOptions opts;
  opts.workers = 2;
  opts.warmup_cycles = warmup;
  const auto farmed = farm::Coordinator(opts).run(spec, sweep::Model::kTlm);

  EXPECT_EQ(outcomes_csv(farmed, sweep::Model::kTlm),
            outcomes_csv(inproc, sweep::Model::kTlm));
  // seed=1 is the base's own seed (forks exactly); seed=7 diverges.
  std::size_t demoted = 0;
  for (const auto& o : farmed) {
    EXPECT_TRUE(o.error.empty()) << o.index << ": " << o.error;
    demoted += o.demoted ? 1 : 0;
  }
  EXPECT_EQ(demoted, 3u);
  EXPECT_FALSE(farmed[0].demoted);  // seed=1 points fork clean
  EXPECT_TRUE(farmed[3].demoted);   // seed=7 points run cold
}

TEST(FarmEndToEnd, SurvivesWorkerSigkillMidSweep) {
  const sweep::SweepSpec spec = sweep::parse_spec(kSweep64);
  const auto points = sweep::expand(spec);

  const sweep::SweepRunner runner(2);
  const auto inproc = runner.run(points, sweep::Model::kTlm);

  std::vector<pid_t> pids;
  bool killed = false;
  farm::FarmOptions opts;
  opts.workers = 4;
  opts.on_spawn = [&pids](const std::vector<pid_t>& p) { pids = p; };
  opts.progress = [&](std::size_t done, std::size_t) {
    // One SIGKILL, mid-sweep: whatever pids[0] had in flight must be
    // re-issued to the three survivors.
    if (!killed && done >= 3) {
      killed = true;
      ASSERT_EQ(pids.size(), 4u);
      ::kill(pids[0], SIGKILL);
    }
  };
  const auto farmed = farm::Coordinator(opts).run(spec, sweep::Model::kTlm);

  EXPECT_TRUE(killed);
  EXPECT_EQ(outcomes_csv(farmed, sweep::Model::kTlm),
            outcomes_csv(inproc, sweep::Model::kTlm));
  EXPECT_EQ(outcomes_table(farmed, sweep::Model::kTlm),
            outcomes_table(inproc, sweep::Model::kTlm));
}

TEST(FarmEndToEnd, AllWorkersDeadThrowsInsteadOfHanging) {
  const sweep::SweepSpec spec = sweep::parse_spec(kSweep64);
  farm::FarmOptions opts;
  opts.workers = 2;
  opts.on_spawn = [](const std::vector<pid_t>& pids) {
    for (const pid_t pid : pids) {
      ::kill(pid, SIGKILL);
    }
  };
  EXPECT_THROW(farm::Coordinator(opts).run(spec, sweep::Model::kTlm),
               std::runtime_error);
}

}  // namespace
