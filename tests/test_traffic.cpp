// Traffic generators: determinism, structural legality across every
// pattern/seed combination, windowing, and ScriptSource pacing semantics.

#include <gtest/gtest.h>

#include <tuple>

#include "traffic/generator.hpp"

namespace {

using namespace ahbp::traffic;
using ahbp::ahb::Addr;

PatternConfig base_cfg(PatternKind kind, std::uint64_t seed) {
  PatternConfig c;
  c.kind = kind;
  c.seed = seed;
  c.items = 64;
  c.base = 0x10000;
  c.span = 1 << 18;
  return c;
}

class PatternSweep
    : public ::testing::TestWithParam<std::tuple<PatternKind, std::uint64_t>> {
};

TEST_P(PatternSweep, DeterministicForSameSeed) {
  const auto [kind, seed] = GetParam();
  const auto cfg = base_cfg(kind, seed);
  const Script a = make_script(cfg, 2);
  const Script b = make_script(cfg, 2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].gap, b[i].gap);
    EXPECT_EQ(a[i].txn.addr, b[i].txn.addr);
    EXPECT_EQ(a[i].txn.beats, b[i].txn.beats);
    EXPECT_EQ(a[i].txn.dir, b[i].txn.dir);
    EXPECT_EQ(a[i].txn.data, b[i].txn.data);
  }
}

TEST_P(PatternSweep, AllTransactionsStructurallyValid) {
  const auto [kind, seed] = GetParam();
  const Script s = make_script(base_cfg(kind, seed), 1);
  ASSERT_EQ(s.size(), 64u);
  for (const TrafficItem& item : s) {
    EXPECT_TRUE(ahbp::ahb::structurally_valid(item.txn));
  }
}

TEST_P(PatternSweep, StaysInsideWindow) {
  const auto [kind, seed] = GetParam();
  const auto cfg = base_cfg(kind, seed);
  const Script s = make_script(cfg, 0);
  for (const TrafficItem& item : s) {
    EXPECT_GE(item.txn.addr, cfg.base);
    EXPECT_LE(item.txn.addr + item.txn.bytes(), cfg.base + cfg.span);
  }
}

TEST_P(PatternSweep, IdsAndMasterStamped) {
  const auto [kind, seed] = GetParam();
  const Script s = make_script(base_cfg(kind, seed), 3);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i].txn.id, i + 1);
    EXPECT_EQ(s[i].txn.master, 3);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, PatternSweep,
    ::testing::Combine(::testing::Values(PatternKind::kCpu, PatternKind::kDma,
                                         PatternKind::kRtStream,
                                         PatternKind::kRandom),
                       ::testing::Values(1ull, 7ull, 42ull)));

TEST(Traffic, DifferentMastersGetDifferentStreams) {
  const auto cfg = base_cfg(PatternKind::kRandom, 9);
  const Script a = make_script(cfg, 0);
  const Script b = make_script(cfg, 1);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].txn.addr != b[i].txn.addr) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Traffic, RtStreamIsPeriodicReads) {
  auto cfg = base_cfg(PatternKind::kRtStream, 5);
  cfg.period = 37;
  const Script s = make_script(cfg, 0);
  for (const TrafficItem& item : s) {
    EXPECT_EQ(item.gap, 37u);
    EXPECT_EQ(item.txn.dir, ahbp::ahb::Dir::kRead);
    EXPECT_EQ(item.txn.beats, 8u);
  }
}

TEST(Traffic, DmaAlternatesReadWrite) {
  auto cfg = base_cfg(PatternKind::kDma, 5);
  cfg.dma_burst_beats = 8;
  const Script s = make_script(cfg, 0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i].txn.dir,
              i % 2 == 0 ? ahbp::ahb::Dir::kRead : ahbp::ahb::Dir::kWrite);
    EXPECT_EQ(s[i].txn.beats, 8u);
  }
}

TEST(Traffic, WritesCarryData) {
  const Script s = make_script(base_cfg(PatternKind::kRandom, 3), 0);
  for (const TrafficItem& item : s) {
    if (item.txn.dir == ahbp::ahb::Dir::kWrite) {
      EXPECT_GE(item.txn.data.size(), item.txn.beats);
    }
  }
}

TEST(Traffic, ScriptBytesSumsTransactions) {
  Script s;
  TrafficItem a;
  a.txn.beats = 4;
  a.txn.size = ahbp::ahb::Size::kWord;
  s.push_back(a);
  TrafficItem b;
  b.txn.beats = 2;
  b.txn.size = ahbp::ahb::Size::kByte;
  s.push_back(b);
  EXPECT_EQ(script_bytes(s), 16u + 2u);
}

TEST(Traffic, ZeroItemsYieldsEmptyScript) {
  auto cfg = base_cfg(PatternKind::kCpu, 1);
  cfg.items = 0;
  EXPECT_TRUE(make_script(cfg, 0).empty());
}

TEST(ScriptSource, PacingHonoursGaps) {
  Script s;
  for (int i = 0; i < 2; ++i) {
    TrafficItem item;
    item.gap = 10;
    item.txn.beats = 1;
    item.txn.burst = ahbp::ahb::Burst::kSingle;
    item.txn.size = ahbp::ahb::Size::kWord;
    s.push_back(item);
  }
  ScriptSource src(std::move(s));
  // First item: gap applies from cycle 0 baseline (earliest 0).
  EXPECT_TRUE(src.ready(0));
  src.pop(0);
  EXPECT_FALSE(src.done());
  src.on_complete(50);
  EXPECT_FALSE(src.ready(59));
  EXPECT_TRUE(src.ready(60));  // 50 + gap 10
  src.pop(60);
  src.on_complete(70);
  EXPECT_TRUE(src.done());
  EXPECT_FALSE(src.ready(1000));
}

TEST(ScriptSource, PopBeforeReadyThrows) {
  Script s(2);
  s[1].gap = 100;
  ScriptSource src(std::move(s));
  src.pop(0);
  src.on_complete(10);
  EXPECT_THROW(src.pop(20), std::logic_error);  // 10 + 100 not reached
  EXPECT_NO_THROW(src.pop(110));
}

TEST(ScriptSource, IssuedAndTotalCounters) {
  Script s(3);
  ScriptSource src(std::move(s));
  EXPECT_EQ(src.total(), 3u);
  EXPECT_EQ(src.issued(), 0u);
  src.pop(0);
  EXPECT_EQ(src.issued(), 1u);
}

}  // namespace
