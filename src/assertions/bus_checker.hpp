#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ahb/address.hpp"
#include "ahb/qos.hpp"
#include "ahb/types.hpp"
#include "assertions/violation.hpp"
#include "sim/time.hpp"

/// \file bus_checker.hpp
/// AHB+ protocol property checkers.
///
/// Both models publish one `BusCycleView` per bus cycle; the checker suite
/// consumes the stream and records violations.  Because the view format is
/// model-independent, the *same* checkers validate the TLM and the
/// signal-level model — which is precisely how the paper uses assertions
/// when "the bus model is integrated with master models and simulated for
/// performance analysis" (§3.5).

namespace ahbp::chk {

/// Snapshot of the architecturally visible bus state in one cycle.
struct BusCycleView {
  sim::Cycle cycle = 0;

  std::uint32_t request_mask = 0;  ///< HBUSREQx per master (bit per master)
  ahb::MasterId hmaster = ahb::kNoMaster;  ///< address-phase owner

  ahb::Trans htrans = ahb::Trans::kIdle;
  ahb::Addr haddr = 0;
  ahb::Burst hburst = ahb::Burst::kSingle;
  ahb::Size hsize = ahb::Size::kWord;
  ahb::Dir hwrite = ahb::Dir::kRead;

  bool hready = true;
  ahb::Resp hresp = ahb::Resp::kOkay;

  /// Write-buffer occupancy this cycle (AHB+ extension visibility).
  unsigned wbuf_occupancy = 0;
};

/// Configuration the checkers need about the platform.
struct CheckerConfig {
  unsigned masters = 0;            ///< real masters (pseudo-master excluded)
  unsigned write_buffer_depth = 0;
  bool write_buffer_enabled = false;
  /// HWDATA/HRDATA width in bytes; 0 disables the width rule (legacy
  /// checker instantiations that predate the configurable datapath).
  unsigned bus_width_bytes = 0;
};

/// The protocol rule suite.  Rules implemented:
///
///  * `ahb.grant-implies-request` — the address-phase owner must have been
///    requesting when granted (write-buffer pseudo-master exempt).
///  * `ahb.stable-when-stalled` — address/control must hold while HREADY=0.
///  * `ahb.first-is-nonseq` — a burst starts with NONSEQ.
///  * `ahb.seq-addr` — SEQ beats present the successor address of the burst.
///  * `ahb.seq-ctrl` — SEQ beats keep burst/size/dir unchanged.
///  * `ahb.burst-len` — fixed-length bursts transfer exactly their count.
///  * `ahb.align` — HADDR aligned to HSIZE.
///  * `ahb.1kb` — INCR bursts never cross a 1KB boundary.
///  * `ahb.hsize-width` — HSIZE never exceeds the configured bus width.
///  * `ahbp.wbuf-depth` — write-buffer occupancy within its configured depth.
class BusChecker {
 public:
  BusChecker(CheckerConfig cfg, ViolationLog& log);

  /// Feed the view of one completed cycle.  Views must arrive in cycle
  /// order (but gaps are allowed if a model skips idle cycles).
  void on_cycle(const BusCycleView& v);

  /// Bulk-feed the idle cycles [from, to): exactly the state on_cycle()
  /// would produce given a default (idle) view per cycle.  Only legal when
  /// the model proved the bus inert over the stretch (no requests, no
  /// address phase, empty write buffer).
  void skip_idle(sim::Cycle from, sim::Cycle to);

  std::uint64_t cycles_checked() const noexcept { return cycles_; }

  /// The checker carries cross-cycle protocol state (previous view, burst
  /// follower, pending-request set) — it must snapshot with the platform or
  /// a resumed run would re-flag / miss rules at the boundary.
  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);

 private:
  void check_grant(const BusCycleView& v);
  void check_stability(const BusCycleView& v);
  void check_burst(const BusCycleView& v);
  void check_alignment(const BusCycleView& v);
  void check_width(const BusCycleView& v);
  void check_wbuf(const BusCycleView& v);

  CheckerConfig cfg_;
  ViolationLog& log_;
  std::uint64_t cycles_ = 0;

  std::optional<BusCycleView> prev_;
  /// Requests observed in the previous cycle (grants derive from these).
  std::uint32_t prev_requests_ = 0;
  /// Set of masters that requested at any point since their last grant —
  /// grant may lag request by many cycles.
  std::uint32_t pending_requests_ = 0;

  // Burst tracking state.
  bool in_burst_ = false;
  ahb::BurstSequencer seq_;
  ahb::Burst burst_kind_ = ahb::Burst::kSingle;
  ahb::Size burst_size_ = ahb::Size::kWord;
  ahb::Dir burst_dir_ = ahb::Dir::kRead;
  unsigned beats_seen_ = 0;
};

/// QoS property checker (the "performance analysis" assertions): records a
/// warning whenever a real-time master's request-to-grant wait exceeds its
/// programmed objective.  Fed by the arbiter of either model.
class QosChecker {
 public:
  QosChecker(const ahb::QosRegisterFile& regs, ViolationLog& log)
      : regs_(regs), log_(log) {}

  /// Report a completed grant: master `m` waited `waited` cycles.
  void on_grant(ahb::MasterId m, sim::Cycle waited, sim::Cycle now);

  std::uint64_t misses() const noexcept { return misses_; }

  void save_state(state::StateWriter& w) const { w.put_u64(misses_); }
  void restore_state(state::StateReader& r) { misses_ = r.get_u64(); }

 private:
  const ahb::QosRegisterFile& regs_;
  ViolationLog& log_;
  std::uint64_t misses_ = 0;
};

}  // namespace ahbp::chk
