#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "state/snapshot.hpp"

/// \file stall.hpp
/// Per-master stall attribution: every simulated cycle of every master is
/// charged to exactly one class, so the decomposition always sums to the
/// number of cycles the master was observed (paper §4: the accuracy/speed
/// story needs to explain *where* cycles go, not just count them).
///
/// The classification is computed from always-available component state
/// (slot/FSM states, write-buffer fullness, DDRC busy/permit), so keeping
/// it on unconditionally costs a handful of branches per master per cycle
/// and — crucially — cannot perturb simulated behaviour.

namespace ahbp::obs {

/// Why a master spent a cycle the way it did.  One class per cycle.
enum class StallClass : unsigned {
  kRunning = 0,  ///< owned the bus (address or data phase), or a posted
                 ///< write completed this cycle
  kArbWait = 1,  ///< requesting; bus and memory free, lost arbitration
  kBusBusy = 2,  ///< requesting; another owner's transfer occupies the bus
  kDdrBusy = 3,  ///< requesting; DDRC busy or access not permitted
                 ///< (refresh window / bank timing)
  kWbufFull = 4, ///< posted write blocked on a full write buffer
  kThink = 5,    ///< no transaction pending (source think time / drained)
};

inline constexpr unsigned kStallClassCount = 6;

constexpr std::string_view to_string(StallClass c) noexcept {
  switch (c) {
    case StallClass::kRunning: return "running";
    case StallClass::kArbWait: return "arb_wait";
    case StallClass::kBusBusy: return "bus_busy";
    case StallClass::kDdrBusy: return "ddr_busy";
    case StallClass::kWbufFull: return "wbuf_full";
    case StallClass::kThink: return "think";
  }
  return "?";
}

/// Cycle counters, one per class.  Plain data; rides inside
/// stats::MasterProfile and snapshots with it.
struct StallCounters {
  std::array<std::uint64_t, kStallClassCount> cycles{};

  void add(StallClass c) noexcept {
    ++cycles[static_cast<unsigned>(c)];
  }

  /// Equivalent to n calls to add(c) (bulk replay for skipped idle cycles).
  void add_n(StallClass c, std::uint64_t n) noexcept {
    cycles[static_cast<unsigned>(c)] += n;
  }

  std::uint64_t operator[](StallClass c) const noexcept {
    return cycles[static_cast<unsigned>(c)];
  }

  std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (const auto v : cycles) {
      t += v;
    }
    return t;
  }

  void save_state(state::StateWriter& w) const {
    for (const auto v : cycles) {
      w.put_u64(v);
    }
  }

  void restore_state(state::StateReader& r) {
    for (auto& v : cycles) {
      v = r.get_u64();
    }
  }
};

}  // namespace ahbp::obs
