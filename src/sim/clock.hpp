#pragma once

#include <string>

#include "sim/event_kernel.hpp"
#include "sim/time.hpp"

/// \file clock.hpp
/// Free-running clock generator for the event-driven kernel.

namespace ahbp::sim {

/// Generates a square wave on a `Signal<bool>` by self-scheduling timed
/// events.  The first rising edge occurs at `phase + period/2` ticks
/// (the clock starts low), matching a typical testbench clock.
class Clock {
 public:
  /// \param period  full clock period in ticks (must be >= 2 and even).
  /// \param phase   delay in ticks before the first half-period elapses.
  Clock(EventKernel& kernel, std::string name, Tick period, Tick phase = 0);

  Clock(const Clock&) = delete;
  Clock& operator=(const Clock&) = delete;

  Signal<bool>& signal() noexcept { return sig_; }
  const Signal<bool>& signal() const noexcept { return sig_; }

  Tick period() const noexcept { return period_; }

  /// Number of rising edges generated so far.
  std::uint64_t posedges() const noexcept { return posedges_; }

  /// Stop generating further edges (the pending event drains harmlessly).
  void stop() noexcept { running_ = false; }

  /// The edge counter and run flag.  The pending toggle event is *not*
  /// state: a fresh clock re-arms itself identically (one tick before its
  /// next rising edge), which is exactly the alignment checkpoints are
  /// taken at.
  void save_state(state::StateWriter& w) const {
    w.put_u64(posedges_);
    w.put_bool(running_);
  }
  void restore_state(state::StateReader& r) {
    posedges_ = r.get_u64();
    running_ = r.get_bool();
  }

 private:
  void toggle();

  EventKernel& kernel_;
  Signal<bool> sig_;
  Tick period_;
  std::uint64_t posedges_ = 0;
  bool running_ = true;
};

}  // namespace ahbp::sim
