#include "core/platform.hpp"

#include "assertions/assert.hpp"
#include "core/checkpoint.hpp"

namespace ahbp::core {

std::vector<ddr::ChannelConfig> ddr_channel_configs(const PlatformConfig& cfg) {
  AHBP_ASSERT_MSG(cfg.interleave.valid(),
                  "ddr.channels must be 1/2/4/8 with a power-of-two"
                  " interleave stripe >= 8 bytes");
  return ddr::resolve_channels(cfg.timing, cfg.geom, cfg.interleave,
                               cfg.ddr_channels);
}

std::vector<traffic::Script> make_scripts(const PlatformConfig& cfg) {
  AHBP_ASSERT_MSG(ahb::valid_beat_bytes(cfg.bus.data_width_bytes),
                  "bus.data_width_bytes must be 1, 2, 4 or 8");
  std::vector<traffic::Script> scripts;
  scripts.reserve(cfg.masters.size());
  for (std::size_t m = 0; m < cfg.masters.size(); ++m) {
    // The §3.7 bus-width knob reaches the stimulus here: patterns keep the
    // bytes per transfer invariant and emit beats of the configured width,
    // so both models see the same wide-beat workload.
    traffic::PatternConfig pat = cfg.masters[m].traffic;
    pat.beat_bytes = cfg.bus.data_width_bytes;
    scripts.push_back(
        traffic::make_script(pat, static_cast<ahb::MasterId>(m)));
  }
  return scripts;
}

SimResult run_tlm(const PlatformConfig& cfg) {
  Platform p(cfg, ModelKind::kTlm);
  p.run_to_completion();
  return p.result();
}

SimResult run_rtl(const PlatformConfig& cfg, std::ostream* vcd_out) {
  Platform p(cfg, ModelKind::kRtl);
  if (vcd_out != nullptr) {
    p.enable_vcd(*vcd_out);
  }
  p.run_to_completion();
  return p.result();
}

double kcycles_per_sec(const SimResult& r) {
  if (r.wall_seconds <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(r.ran_cycles) / r.wall_seconds / 1000.0;
}

}  // namespace ahbp::core
