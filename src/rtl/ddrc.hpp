#pragma once

#include <optional>
#include <vector>

#include "ahb/config.hpp"
#include "ahb/types.hpp"
#include "ddr/channels.hpp"
#include "rtl/signals.hpp"
#include "sim/event_kernel.hpp"

/// \file ddrc.hpp
/// Pin-level DDR controller front end.
///
/// The AHB slave interface (HREADY/HRDATA/HWDATA sampling, pipelined
/// address acceptance) and the BI signal bundle are modeled wire-by-wire;
/// behind it sit the per-channel controllers — the shared ddr::ChannelSet
/// of DdrcEngine FSMs, the same "FSM as accurate as RTL" (§3.3) the TLM
/// uses, so both models enforce identical DRAM timing at every channel
/// count.  Each channel drives its own slice of the BI bank-state wires
/// (channel-major: channel k's banks start at wire index
/// ChannelSet::bank_base(k)); the arbiter merges the slices when it
/// evaluates candidate affinity through the address interleave.

namespace ahbp::rtl {

class RtlDdrc {
 public:
  RtlDdrc(sim::EventKernel& kernel,
          const std::vector<ddr::ChannelConfig>& channels,
          const ddr::Interleave& ilv, ahb::Addr region_base,
          const ahb::BusConfig& cfg, SharedWires& shared,
          const sim::Cycle* now);

  RtlDdrc(const RtlDdrc&) = delete;
  RtlDdrc& operator=(const RtlDdrc&) = delete;

  void bind_clock(sim::Signal<bool>& clk);

  const ddr::ChannelSet& channels() const noexcept { return set_; }
  ddr::ChannelSet& channels() noexcept { return set_; }

  /// Nothing in flight and no background writes pending on any channel.
  bool quiescent() const noexcept {
    return !set_.busy() && set_.pending_write_chunks() == 0;
  }

  /// Channel engines + the AHB-front announce/transfer registers.
  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);

 private:
  void at_edge();
  void sample_inputs(sim::Cycle now);
  void drive_outputs(sim::Cycle now);
  void drive_bi(sim::Cycle now);

  ddr::ChannelSet set_;
  ahb::Addr base_;
  const ahb::BusConfig& cfg_;
  SharedWires& sh_;
  const sim::Cycle* now_;
  sim::Process proc_;

  /// BI announce latched from the arbiter (consumed at NONSEQ acceptance).
  struct Announce {
    ahb::Addr addr = 0;
    ahb::Burst burst = ahb::Burst::kSingle;
    ahb::Size size = ahb::Size::kWord;
    unsigned beats = 1;
    bool is_write = false;
  };
  std::optional<Announce> announce_;

  // Current bus-side transfer bookkeeping (write data-phase gating).
  bool cur_active_ = false;
  bool cur_is_write_ = false;
  unsigned cur_beats_ = 0;
  unsigned addr_accepted_ = 0;
  unsigned puts_done_ = 0;
};

}  // namespace ahbp::rtl
