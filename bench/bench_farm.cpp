// Sweep-farm benchmark: what does shipping one warm snapshot to worker
// processes buy over re-simulating the warm-up for every point?
//
// The workload is deliberately warm-up dominated — the regime the farm
// exists for (ISSUE: Table-1-style parameter sweeps where every point
// shares a long identical prefix).  The base runs to completion once to
// learn its length, the warm-up is pinned at 85% of it, and a 16-point
// `items` sweep (prefix-invariant axes, so forks are exact and nothing is
// demoted) is then run five ways:
//
//   * cold, in-process (SweepRunner, 4 threads)   <- the baseline
//   * warm, in-process (SweepRunner, 4 threads)
//   * farm, 1 / 2 / 4 worker processes, warm snapshot shipped in the Hello
//
// Every variant must produce the byte-identical per-point CSV (that is
// the farm's determinism contract, pinned harder in tests/test_farm.cpp);
// the committed BENCH_FARM.json records the scaling curve and the
// speedup of the 4-worker farm over the cold baseline, which
// tools/check_bench_farm.py gates in CI alongside BENCH_SPEED.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/platform.hpp"
#include "core/workloads.hpp"
#include "farm/coordinator.hpp"
#include "obs/json.hpp"
#include "stats/report.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string outcomes_csv(const std::vector<ahbp::sweep::PointOutcome>& o,
                         ahbp::sweep::Model model) {
  std::ostringstream os;
  ahbp::sweep::write_point_csv(os, o, model);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ahbp;
  const unsigned items =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 500;
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_FARM.json";

  std::cout << "=== Sweep farm: snapshot shipping vs per-point warm-up ===\n"
            << "    workload: Table-1 'cpu-1' mix, " << items
            << " txns/master, 16-point items sweep, checkers off\n\n";

  sweep::SweepSpec spec;
  spec.base = "bench-farm";
  spec.base_config = core::table1_workloads(items, 3)[0].config;
  spec.base_config.enable_checkers = false;
  spec.base_config.max_cycles = 100'000'000;
  // Prefix-invariant axes: `items` extends each master's script, so every
  // point shares the base's first W cycles exactly and no fork is demoted.
  sweep::Axis a0;
  a0.key = "master0.items";
  for (unsigned v = 0; v < 8; ++v) {
    a0.values.push_back(std::to_string(items + v));
  }
  sweep::Axis a1;
  a1.key = "master1.items";
  a1.values = {std::to_string(items), std::to_string(items + 1)};
  spec.axes = {a0, a1};
  const std::vector<sweep::SweepPoint> points = sweep::expand(spec);

  // Learn the shared prefix length from the base itself, then warm for 85%
  // of it — deep enough that re-simulating it per point dominates the
  // cold baseline, shallow enough that every point still has a tail.
  core::Platform probe(spec.base_config, core::ModelKind::kTlm);
  probe.run_to_completion();
  const sim::Cycle base_cycles = probe.result().ran_cycles;
  const sim::Cycle warmup = base_cycles * 85 / 100;

  const sweep::Model model = sweep::Model::kTlm;
  const unsigned inproc_jobs = 4;

  sweep::SweepRunner runner(inproc_jobs);
  auto t0 = std::chrono::steady_clock::now();
  const auto cold = runner.run(points, model);
  const double cold_s = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  const auto warm = runner.run(points, model, spec.base_config, warmup);
  const double warm_s = seconds_since(t0);

  const std::string cold_csv = outcomes_csv(cold, model);
  bool csv_identical = outcomes_csv(warm, model) == cold_csv;

  struct Row {
    unsigned workers;
    double wall_seconds;
  };
  std::vector<Row> farm_rows;
  for (const unsigned workers : {1u, 2u, 4u}) {
    farm::FarmOptions opts;
    opts.workers = workers;
    opts.warmup_cycles = warmup;
    farm::Coordinator coordinator(opts);
    t0 = std::chrono::steady_clock::now();
    const auto farmed = coordinator.run(spec, model);
    const double farm_s = seconds_since(t0);
    csv_identical = csv_identical && outcomes_csv(farmed, model) == cold_csv;
    farm_rows.push_back({workers, farm_s});
  }
  const double farm4_s = farm_rows.back().wall_seconds;
  const double speedup4 = farm4_s > 0.0 ? cold_s / farm4_s : 0.0;

  stats::TextTable t({"variant", "wall s", "speedup vs cold"});
  t.add_row({"cold in-process (4 threads)", stats::fmt_double(cold_s, 3),
             "1.00"});
  t.add_row({"warm in-process (4 threads)", stats::fmt_double(warm_s, 3),
             stats::fmt_double(warm_s > 0.0 ? cold_s / warm_s : 0.0, 2)});
  for (const Row& r : farm_rows) {
    t.add_row({"farm, " + std::to_string(r.workers) + " worker(s)",
               stats::fmt_double(r.wall_seconds, 3),
               stats::fmt_double(
                   r.wall_seconds > 0.0 ? cold_s / r.wall_seconds : 0.0, 2)});
  }
  t.print(std::cout);

  std::cout << "\nbase run: " << base_cycles << " cycles, warm-up fork at "
            << warmup << " (85%)\n"
            << "per-point CSV identical across all variants: "
            << (csv_identical ? "yes" : "NO") << "\n";

  // Shape: determinism is non-negotiable; the speed side must show the
  // warm-up amortization clearly (the committed artifact's >= 1.5x is
  // enforced against this JSON by tools/check_bench_farm.py, with a
  // noise-tolerant floor for fresh CI runs).
  const bool shape_ok = csv_identical && speedup4 >= 1.2;

  std::ofstream json_os(json_path);
  if (!json_os) {
    std::cerr << "cannot open '" << json_path << "' for writing\n";
    return 1;
  }
  {
    obs::JsonWriter j(json_os);
    j.begin_object()
        .member("items", items)
        .member("points", static_cast<std::uint64_t>(points.size()))
        .member("base_cycles", static_cast<std::uint64_t>(base_cycles))
        .member("warmup_cycles", static_cast<std::uint64_t>(warmup))
        .member("inproc_jobs", inproc_jobs)
        .member("cold_wall_seconds", cold_s)
        .member("warm_inproc_wall_seconds", warm_s);
    j.key("workers").begin_array();
    for (const Row& r : farm_rows) {
      j.begin_object()
          .member("workers", r.workers)
          .member("wall_seconds", r.wall_seconds)
          .member("speedup_vs_cold",
                  r.wall_seconds > 0.0 ? cold_s / r.wall_seconds : 0.0)
          .end_object();
    }
    j.end_array();
    j.member("speedup_4workers", speedup4)
        .member("csv_identical", csv_identical)
        .member("shape_ok", shape_ok)
        .end_object();
  }
  json_os << '\n';
  json_os.close();
  std::cout << "machine-readable results written to " << json_path << "\n";

  std::cout << "\nRESULT: " << (shape_ok ? "OK" : "FAIL")
            << " (shape: byte-identical CSV, farm >= 1.2x over cold)\n";
  return shape_ok ? 0 : 1;
}
