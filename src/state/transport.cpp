#include "state/transport.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "state/snapshot.hpp"

namespace ahbp::state {

namespace {

// 'A' 'H' 'B' 'F' on the wire, byte order fixed by the serialization below.
constexpr std::uint32_t kFrameMagic = 0x46424841u;

void put_u32le(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v & 0xffu);
  out[1] = static_cast<std::uint8_t>((v >> 8) & 0xffu);
  out[2] = static_cast<std::uint8_t>((v >> 16) & 0xffu);
  out[3] = static_cast<std::uint8_t>((v >> 24) & 0xffu);
}

std::uint32_t get_u32le(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

void put_u64le(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xffu);
  }
}

std::uint64_t get_u64le(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

[[noreturn]] void fail_errno(const char* what, int err) {
  throw StateError(std::string("frame transport: ") + what + ": " +
                   std::strerror(err));
}

constexpr std::size_t kHeaderBytes = 4 + 8;

}  // namespace

void write_exact(int fd, const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t left = size;
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      fail_errno("write failed", errno);
    }
    p += static_cast<std::size_t>(n);
    left -= static_cast<std::size_t>(n);
  }
}

bool read_exact(int fd, void* data, std::size_t size) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, p + got, size - got);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      fail_errno("read failed", errno);
    }
    if (n == 0) {
      if (got == 0) {
        return false;  // clean EOF before the first byte
      }
      throw StateError("frame transport: unexpected EOF after " +
                       std::to_string(got) + " of " + std::to_string(size) +
                       " bytes (peer died mid-frame?)");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void write_frame(int fd, const std::uint8_t* payload, std::size_t size) {
  if (size > kMaxFrameBytes) {
    throw StateError("frame transport: refusing to send " +
                     std::to_string(size) + "-byte frame (max " +
                     std::to_string(kMaxFrameBytes) + ")");
  }
  std::uint8_t header[kHeaderBytes];
  put_u32le(header, kFrameMagic);
  put_u64le(header + 4, static_cast<std::uint64_t>(size));
  write_exact(fd, header, sizeof(header));
  if (size > 0) {
    write_exact(fd, payload, size);
  }
}

void write_frame(int fd, const std::vector<std::uint8_t>& payload) {
  write_frame(fd, payload.data(), payload.size());
}

std::optional<std::vector<std::uint8_t>> read_frame(int fd) {
  std::uint8_t header[kHeaderBytes];
  if (!read_exact(fd, header, sizeof(header))) {
    return std::nullopt;
  }
  const std::uint32_t magic = get_u32le(header);
  if (magic != kFrameMagic) {
    throw StateError("frame transport: bad frame magic 0x" + [magic] {
      static const char* hex = "0123456789abcdef";
      std::string s;
      for (int shift = 28; shift >= 0; shift -= 4) {
        s += hex[(magic >> shift) & 0xfu];
      }
      return s;
    }() + " (stream desynchronized or not a farm peer)");
  }
  const std::uint64_t size = get_u64le(header + 4);
  if (size > kMaxFrameBytes) {
    throw StateError("frame transport: frame length " + std::to_string(size) +
                     " exceeds limit " + std::to_string(kMaxFrameBytes));
  }
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(size));
  if (size > 0 && !read_exact(fd, payload.data(), payload.size())) {
    throw StateError("frame transport: EOF before frame payload");
  }
  return payload;
}

}  // namespace ahbp::state
