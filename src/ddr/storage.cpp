#include "ddr/storage.hpp"

#include <algorithm>
#include <stdexcept>

namespace ahbp::ddr {

const std::vector<std::uint8_t>* SparseMemory::find_page(
    ahb::Addr page_base) const {
  const auto it = pages_.find(page_base);
  return it == pages_.end() ? nullptr : &it->second;
}

std::vector<std::uint8_t>& SparseMemory::touch_page(ahb::Addr page_base) {
  auto& page = pages_[page_base];
  if (page.empty()) {
    page.assign(kPageBytes, 0);
  }
  return page;
}

ahb::Word SparseMemory::read(ahb::Addr addr, unsigned bytes) const {
  if (bytes == 0 || bytes > 8) {
    throw std::invalid_argument("SparseMemory::read: bytes must be 1..8");
  }
  ahb::Word v = 0;
  for (unsigned i = 0; i < bytes; ++i) {
    const ahb::Addr a = addr + i;
    const ahb::Addr base = a / kPageBytes * kPageBytes;
    if (const auto* page = find_page(base)) {
      v |= static_cast<ahb::Word>((*page)[a - base]) << (8 * i);
    }
  }
  return v;
}

void SparseMemory::write(ahb::Addr addr, ahb::Word value, unsigned bytes) {
  if (bytes == 0 || bytes > 8) {
    throw std::invalid_argument("SparseMemory::write: bytes must be 1..8");
  }
  for (unsigned i = 0; i < bytes; ++i) {
    const ahb::Addr a = addr + i;
    const ahb::Addr base = a / kPageBytes * kPageBytes;
    touch_page(base)[a - base] =
        static_cast<std::uint8_t>((value >> (8 * i)) & 0xFF);
  }
}

void SparseMemory::save_state(state::StateWriter& w) const {
  w.begin("memory");
  std::vector<ahb::Addr> bases;
  bases.reserve(pages_.size());
  for (const auto& [base, page] : pages_) {
    bases.push_back(base);
  }
  std::sort(bases.begin(), bases.end());
  w.put_u64(bases.size());
  for (const ahb::Addr base : bases) {
    const std::vector<std::uint8_t>& page = pages_.at(base);
    w.put_u64(base);
    w.put_blob(page.data(), page.size());
  }
  w.end();
}

void SparseMemory::restore_state(state::StateReader& r) {
  r.enter("memory");
  pages_.clear();
  // Each page record owes a u64 base + a blob header (9 + 9 bytes).
  const std::uint64_t n = r.get_count(18);
  for (std::uint64_t i = 0; i < n; ++i) {
    const ahb::Addr base = r.get_u64();
    std::vector<std::uint8_t> page = r.get_blob();
    if (page.size() != kPageBytes) {
      throw state::StateError("SparseMemory: page size mismatch");
    }
    pages_.emplace(base, std::move(page));
  }
  r.leave();
}

}  // namespace ahbp::ddr
