// Quickstart: build a 4-master AHB+ platform, run the transaction-level
// model, and print the profiling report the paper's §3.6 describes
// (utilization, contention, throughput, per-master latencies).
//
//   $ ./quickstart
//
// Everything goes through the public core API: describe the platform in a
// PlatformConfig, call run_tlm(), read the SimResult.

#include <iostream>

#include "core/platform.hpp"
#include "core/workloads.hpp"
#include "stats/report.hpp"

int main() {
  using namespace ahbp;

  // A platform: DDR-266 behind the AHB+ bus, four masters.
  core::PlatformConfig cfg = core::default_platform(/*masters=*/4,
                                                    /*seed=*/42,
                                                    /*items_per_master=*/400);

  // Customize the masters: one real-time video stream, one DMA engine,
  // two CPU-like cores (see traffic::PatternKind for the archetypes).
  cfg.masters[0].qos = {ahb::MasterClass::kRealTime, /*objective=*/48};
  cfg.masters[0].traffic.kind = traffic::PatternKind::kRtStream;
  cfg.masters[0].traffic.period = 40;
  cfg.masters[1].traffic.kind = traffic::PatternKind::kDma;
  cfg.masters[1].traffic.dma_burst_beats = 16;
  cfg.masters[2].traffic.kind = traffic::PatternKind::kCpu;
  cfg.masters[3].traffic.kind = traffic::PatternKind::kCpu;

  // AHB+ knobs (§3.7): all seven filters, 4-deep write buffer, request
  // pipelining and BI bank hints — the defaults; shown for discoverability.
  cfg.bus.filter_mask = ahb::kAllFilters;
  cfg.bus.write_buffer_depth = 4;
  cfg.bus.request_pipelining = true;
  cfg.bus.bi_hints_enabled = true;

  std::cout << "running the AHB+ TLM...\n\n";
  const core::SimResult result = core::run_tlm(cfg);

  if (!result.finished) {
    std::cerr << "workload did not drain within " << cfg.max_cycles
              << " cycles\n";
    return 1;
  }

  stats::print_report(std::cout, result.profile, "quickstart platform");

  std::cout << "\nsimulation speed: "
            << stats::fmt_double(core::kcycles_per_sec(result), 1)
            << " Kcycles/s\n";
  std::cout << "protocol checkers: " << result.protocol_errors << " errors, "
            << result.qos_warnings << " QoS warnings\n";
  if (result.qos_warnings > 0) {
    std::cout << result.first_violations;
  }
  return 0;
}
