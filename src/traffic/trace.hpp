#pragma once

#include <iosfwd>
#include <string>

#include "traffic/generator.hpp"

/// \file trace.hpp
/// Script (trace) serialization.
///
/// A Script is the unit of reproducibility in this library: both models
/// replay it bit-identically.  Persisting scripts lets users capture a
/// workload once (from the synthetic generators or converted from a real
/// bus trace) and replay it across model versions, which is how the
/// paper-style accuracy comparisons stay stable over time.
///
/// Format: one line per transaction —
///
///   <gap> <R|W> <addr-hex> <size-bytes> <burst> <beats> [data-hex...]
///
/// '#' starts a comment; blank lines are ignored.  Hex fields (address,
/// write data) accept bare hex or a 0x/0X prefix; writes carry exactly
/// `beats` data words.  Any extra token on a line is an error (with its
/// line number), never silently dropped.

namespace ahbp::traffic {

/// Write a script as a trace.  Returns the number of transactions written.
std::size_t save_trace(std::ostream& os, const Script& script);

/// Parse a trace.  Throws std::runtime_error with a line number on any
/// malformed or structurally invalid entry.  `master` stamps ownership.
Script load_trace(std::istream& is, ahb::MasterId master);

/// Burst kind <-> trace token ("SINGLE", "INCR4", ...).
std::string burst_token(ahb::Burst b);
ahb::Burst parse_burst(const std::string& token);

}  // namespace ahbp::traffic
