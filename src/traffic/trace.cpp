#include "traffic/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ahbp::traffic {

std::string burst_token(ahb::Burst b) {
  return std::string(ahb::to_string(b));
}

ahb::Burst parse_burst(const std::string& token) {
  static constexpr ahb::Burst kAll[] = {
      ahb::Burst::kSingle, ahb::Burst::kIncr,   ahb::Burst::kWrap4,
      ahb::Burst::kIncr4,  ahb::Burst::kWrap8,  ahb::Burst::kIncr8,
      ahb::Burst::kWrap16, ahb::Burst::kIncr16,
  };
  for (const ahb::Burst b : kAll) {
    if (token == ahb::to_string(b)) {
      return b;
    }
  }
  throw std::runtime_error("unknown burst kind '" + token + "'");
}

namespace {

ahb::Size size_from_bytes(unsigned bytes) {
  if (!ahb::valid_beat_bytes(bytes)) {
    throw std::runtime_error("size must be 1/2/4/8 bytes");
  }
  return ahb::size_for_bytes(bytes);
}

}  // namespace

std::size_t save_trace(std::ostream& os, const Script& script) {
  os << "# ahbp trace v1: gap dir addr size burst beats [data...]\n";
  for (const TrafficItem& item : script) {
    const ahb::Transaction& t = item.txn;
    os << item.gap << ' ' << (t.dir == ahb::Dir::kRead ? 'R' : 'W') << ' '
       << std::hex << t.addr << std::dec << ' ' << ahb::size_bytes(t.size)
       << ' ' << burst_token(t.burst) << ' ' << t.beats;
    if (t.dir == ahb::Dir::kWrite) {
      os << std::hex;
      for (unsigned b = 0; b < t.beats; ++b) {
        os << ' ' << t.data[b];
      }
      os << std::dec;
    }
    os << '\n';
  }
  return script.size();
}

Script load_trace(std::istream& is, ahb::MasterId master) {
  Script script;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    TrafficItem item;
    char dir = 0;
    std::string burst;
    unsigned size_bytes = 0;
    if (!(ls >> item.gap)) {
      continue;  // blank / comment-only line
    }
    ahb::Transaction& t = item.txn;
    if (!(ls >> dir >> std::hex >> t.addr >> std::dec >> size_bytes >>
          burst >> t.beats)) {
      throw std::runtime_error("trace line " + std::to_string(lineno) +
                               ": malformed entry");
    }
    try {
      t.dir = dir == 'R'   ? ahb::Dir::kRead
              : dir == 'W' ? ahb::Dir::kWrite
                           : throw std::runtime_error("dir must be R or W");
      t.size = size_from_bytes(size_bytes);
      t.burst = parse_burst(burst);
    } catch (const std::runtime_error& e) {
      throw std::runtime_error("trace line " + std::to_string(lineno) + ": " +
                               e.what());
    }
    if (t.dir == ahb::Dir::kWrite) {
      t.data.resize(t.beats);
      ls >> std::hex;
      for (unsigned b = 0; b < t.beats; ++b) {
        if (!(ls >> t.data[b])) {
          throw std::runtime_error("trace line " + std::to_string(lineno) +
                                   ": missing write data");
        }
      }
    }
    t.id = script.size() + 1;
    t.master = master;
    if (!ahb::structurally_valid(t)) {
      throw std::runtime_error("trace line " + std::to_string(lineno) +
                               ": transaction violates AHB structure rules");
    }
    script.push_back(std::move(item));
  }
  return script;
}

}  // namespace ahbp::traffic
