#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "ddr/interleave.hpp"
#include "ddr/scheduler.hpp"

namespace ahbp::obs {
class Timeline;
}

/// \file channels.hpp
/// The sharded DDR subsystem: N independent DDRC channels behind the
/// address-interleave decoder.
///
/// The paper's accuracy claim rests on both models sharing the controller
/// FSM (ddr::DdrcEngine).  Scaling the memory side to N channels keeps the
/// same discipline one level up: the channel composition below — how a bus
/// transaction is split into channel-local segments, how segments hand
/// over, how per-channel bank state aggregates onto the BI — lives here
/// and is consumed by *both* the transaction-level and the signal-level
/// DDRC wrappers.  What differs between the models remains only the AHB
/// side (method calls vs. pin wiggling), so TLM-vs-RTL equivalence holds
/// at every channel count by construction.
///
/// With `channels == 1` every call is a verbatim pass-through to the single
/// engine: the pre-sharding platform is reproduced bit-exactly.

namespace ahbp::ddr {

/// Resolved configuration of one channel.
struct ChannelConfig {
  DdrTiming timing;
  Geometry geom;
};

/// Per-channel scenario overrides (`[channel K]` / `channelK.*` keys).
/// Every field is optional; unset fields fall back to the shared `[ddr]`
/// timing/geometry.
struct ChannelOverride {
  std::optional<sim::Cycle> tRCD, tRP, tRAS, tRC, tRRD, tCL, tWL, tWR, tCCD,
      tRFC, tREFI;
  std::optional<std::uint32_t> banks, rows, cols, col_bytes;
  std::optional<Mapping> mapping;

  bool operator==(const ChannelOverride&) const = default;

  /// True when at least one field is set (serialization emits the section).
  bool any() const noexcept;

  /// Layer the set fields over a shared base.
  void apply(DdrTiming& t, Geometry& g) const;
};

/// One row per DDR timing knob: the scenario key name and the matching
/// members of the shared DdrTiming and the per-channel ChannelOverride.
/// `[ddr]` parsing, `[channel K]` parsing, serialization and override
/// resolution all iterate this table, so the key sets cannot drift apart
/// (geometry keys carry heterogeneous types/bounds and stay explicit).
struct TimingField {
  const char* key;
  sim::Cycle DdrTiming::*shared;
  std::optional<sim::Cycle> ChannelOverride::*opt;
};

inline constexpr TimingField kTimingFields[] = {
    {"tRCD", &DdrTiming::tRCD, &ChannelOverride::tRCD},
    {"tRP", &DdrTiming::tRP, &ChannelOverride::tRP},
    {"tRAS", &DdrTiming::tRAS, &ChannelOverride::tRAS},
    {"tRC", &DdrTiming::tRC, &ChannelOverride::tRC},
    {"tRRD", &DdrTiming::tRRD, &ChannelOverride::tRRD},
    {"tCL", &DdrTiming::tCL, &ChannelOverride::tCL},
    {"tWL", &DdrTiming::tWL, &ChannelOverride::tWL},
    {"tWR", &DdrTiming::tWR, &ChannelOverride::tWR},
    {"tCCD", &DdrTiming::tCCD, &ChannelOverride::tCCD},
    {"tRFC", &DdrTiming::tRFC, &ChannelOverride::tRFC},
    {"tREFI", &DdrTiming::tREFI, &ChannelOverride::tREFI},
};

/// Expand shared timing/geometry + per-channel overrides into one resolved
/// configuration per channel.  `overrides` may be shorter than the channel
/// count (missing tails inherit the shared base untouched).
std::vector<ChannelConfig> resolve_channels(
    const DdrTiming& shared_timing, const Geometry& shared_geom,
    const Interleave& ilv, const std::vector<ChannelOverride>& overrides);

/// Bank-wire packing of a channel list: element k is the first BI bank
/// index of channel k, the extra last element the total bank count.  The
/// one definition of the layout shared by the channel set, the RTL BI
/// slices and the arbiter's wire lookups.
std::vector<std::uint32_t> bank_bases(const std::vector<ChannelConfig>& cfgs);

/// N independent DdrcEngine channels behind an Interleave, presenting the
/// single-engine cycle protocol to the AHB-side wrappers: one bus
/// transaction at a time, `step()` once per cycle, beat polls in between.
///
/// A transaction whose beats stripe across channels is decomposed into
/// channel-local *segments* (maximal runs of consecutive local addresses
/// on one channel).  Segments begin on their channels as soon as the
/// owning engine is free — channels genuinely overlap: a later segment's
/// activate/CAS work proceeds while the bus still streams an earlier
/// segment's beats — but the bus-facing beat stream consumes segments
/// strictly in order, preserving AHB beat ordering.
class ChannelSet {
 public:
  /// One resolved configuration per channel; `cfgs.size()` must equal
  /// `ilv.channels` and `ilv.valid()` must hold.
  ChannelSet(const std::vector<ChannelConfig>& cfgs, const Interleave& ilv);
  ~ChannelSet();

  ChannelSet(const ChannelSet&) = delete;
  ChannelSet& operator=(const ChannelSet&) = delete;

  // ------------------------------------------------- transaction control

  bool busy() const noexcept;

  /// Begin servicing a request (addresses are aperture offsets).
  /// Pre: !busy().
  void begin(const MemRequest& req, sim::Cycle now);

  /// True when every beat has transferred on the bus side (background
  /// write drains may still run per channel).
  bool done() const noexcept;

  /// Drop the completed transaction (pre: done()).
  void finish();

  /// Bus-side beats still to transfer (0 when idle).
  unsigned remaining_beats() const noexcept;

  // ------------------------------------------------------ per-cycle step

  /// Step every channel once (each has its own command bus, so up to one
  /// DRAM command per channel per cycle).  Returns the command issued by
  /// the channel serving the bus-facing segment (kNop when none) so
  /// wrappers/tracers keep a single-command view of the live transfer.
  Command step(sim::Cycle now);

  /// Use up to `n` threads (including the calling thread) to step the
  /// channel engines each cycle.  1 (default) = sequential.  Engines are
  /// data-independent within a cycle and every cross-engine decision
  /// (timeline emission, live-command selection) happens on the calling
  /// thread in channel order after a full barrier, so results are
  /// byte-identical to sequential stepping regardless of `n`.  Clamped to
  /// the channel count; a no-op for single-channel sets.
  void set_step_threads(unsigned n);

  /// Lower bound on the set's next "interesting" cycle: step(t) is
  /// guaranteed state-preserving for every t in [now, idle_until(now)).
  /// Returns `now` when any transaction/drain/hint is live; otherwise the
  /// earliest per-engine refresh deadline (kNeverCycle if refresh is off).
  sim::Cycle idle_until(sim::Cycle now) const noexcept;

  // ------------------------------------------------------- beat streams

  bool read_beat_available(sim::Cycle now) const noexcept;
  ahb::Word take_read_beat(sim::Cycle now);
  bool write_beat_ready(sim::Cycle now) const noexcept;
  void put_write_beat(sim::Cycle now, ahb::Word w);

  // --------------------------------------------------------------- hints

  /// BI next-transaction hint, routed to the owning channel (the others
  /// have their hints cleared).  std::nullopt clears every channel.
  void set_hint(std::optional<ChannelCoord> hint);

  /// Decode an aperture offset for BI hint plumbing.
  ChannelCoord coord_of(ahb::Addr offset) const {
    const std::uint32_t ch = ilv_.channel_of(offset);
    return ChannelCoord{ch,
                        engines_[ch]->geometry().decode(ilv_.local_of(offset))};
  }

  // ----------------------------------------------------------- BI upstream

  /// Aggregate idle-bank bitmap: channel k's banks occupy bits
  /// [bank_base(k), bank_base(k) + banks_k).  Banks beyond bit 31 are
  /// dropped (the field is informational — admission decisions use
  /// affinity_for / access_permitted).
  std::uint32_t idle_bank_mask(sim::Cycle now) const;

  /// Access permission: false while *any* channel must win a refresh.
  bool access_permitted(sim::Cycle now) const noexcept;

  /// Affinity of the bank targeted by aperture offset `offset`.
  BankAffinity affinity_for(ahb::Addr offset, sim::Cycle now) const;

  // ---------------------------------------------------------- inspection

  std::uint32_t channels() const noexcept {
    return static_cast<std::uint32_t>(engines_.size());
  }
  const Interleave& interleave() const noexcept { return ilv_; }
  DdrcEngine& engine(std::uint32_t ch) { return *engines_[ch]; }
  const DdrcEngine& engine(std::uint32_t ch) const { return *engines_[ch]; }

  /// First BI bank-wire index of channel `ch` (channels with differing
  /// bank counts pack densely).
  std::uint32_t bank_base(std::uint32_t ch) const noexcept {
    return bank_base_[ch];
  }
  /// Total bank wires across every channel.
  std::uint32_t total_banks() const noexcept { return bank_base_.back(); }

  /// Outstanding background write chunks across every channel.
  std::size_t pending_write_chunks() const noexcept;

  /// Aggregate DRAM command counters across channels (profiling).
  BankEngine::Counters command_counters() const noexcept;

  /// Aggregate row-buffer locality counters across channels (profiling).
  DdrcEngine::HitStats hit_stats() const noexcept;

  /// Attach a timeline under process `pid`: one command track per channel
  /// plus one row-open-span track per bank.  Pass nullptr to detach.
  /// Observation only; shared by both models' DDRC wrappers.
  void set_timeline(obs::Timeline* tl, unsigned pid);

  /// Snapshot every channel engine plus the segment decomposition of the
  /// transaction currently striping across channels.
  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);

 private:
  /// One channel-local slice of the current transaction.
  struct Segment {
    std::uint32_t channel = 0;
    MemRequest req;  ///< channel-local sub-request
    bool begun = false;
  };

  void split(const MemRequest& req);
  /// Finish drained segments, begin every segment whose channel is free.
  void advance(sim::Cycle now);
  /// Timeline emission for one channel's command this cycle.
  void emit_command(std::uint32_t ch, const Command& c, sim::Cycle now);

  /// Step every engine into cmd_slots_ (parallel when workers are up).
  void step_engines(sim::Cycle now);
  void worker_loop();
  void stop_workers();

  std::vector<std::unique_ptr<DdrcEngine>> engines_;
  Interleave ilv_;
  std::vector<std::uint32_t> bank_base_;  ///< size channels + 1

  bool txn_active_ = false;
  std::vector<Segment> segments_;
  std::size_t active_ = 0;  ///< bus-facing segment index
  std::vector<ahb::Addr> split_scratch_;  ///< per-beat addresses (reused)

  /// Parallel stepping state (inactive unless set_step_threads(>1)).
  /// Workers claim channels from an atomic cursor into cmd_slots_; the
  /// caller participates, then waits for the done-count barrier before
  /// merging in channel order on its own thread.
  std::vector<Command> cmd_slots_;        ///< per-channel step result
  std::vector<std::thread> workers_;
  std::mutex step_mutex_;
  std::condition_variable step_cv_;
  std::uint64_t step_gen_ = 0;            ///< bumped under step_mutex_
  bool workers_stop_ = false;
  sim::Cycle step_now_ = 0;               ///< published before the gen bump
  std::atomic<std::uint32_t> step_cursor_{0};
  std::atomic<std::uint32_t> step_done_{0};

  /// Timeline wiring (null when recording is off; never snapshotted).
  obs::Timeline* tl_ = nullptr;
  std::vector<unsigned> tl_ch_track_;    ///< per channel
  std::vector<unsigned> tl_bank_track_;  ///< per flattened bank index
};

}  // namespace ahbp::ddr
