#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ahb/config.hpp"
#include "ahb/qos.hpp"
#include "assertions/bus_checker.hpp"
#include "assertions/violation.hpp"
#include "ddr/channels.hpp"
#include "ddr/geometry.hpp"
#include "ddr/interleave.hpp"
#include "ddr/timing.hpp"
#include "rtl/arbiter.hpp"
#include "rtl/bitlevel.hpp"
#include "rtl/ddrc.hpp"
#include "rtl/detail.hpp"
#include "rtl/master.hpp"
#include "rtl/signals.hpp"
#include "rtl/write_buffer.hpp"
#include "sim/clock.hpp"
#include "sim/event_kernel.hpp"
#include "sim/vcd.hpp"
#include "stats/profiles.hpp"
#include "traffic/generator.hpp"

/// \file fabric.hpp
/// Top-level wiring of the pin-accurate AHB+ platform: clock, cycle
/// counter, per-master wire columns, address/control/write-data muxes,
/// masters, arbiter, write buffer, DDRC, protocol observer.
///
/// Process execution order within a clock edge is the subscription order
/// (a documented EventKernel guarantee): cycle counter, masters, arbiter,
/// write buffer, DDRC, observer.  All cross-component communication is
/// through two-phase signals except the arbiter->write-buffer reservation
/// call, whose ordering the subscription order pins down — mirroring the
/// TLM's arbitration-then-absorption sequence.

namespace ahbp::obs {
class SelfProfiler;
class Timeline;
}

namespace ahbp::rtl {

struct RtlFabricConfig {
  ahb::BusConfig bus;
  ddr::DdrTiming timing = ddr::ddr266();
  ddr::Geometry geom;
  /// Memory-side sharding (default: one channel, the classic platform).
  /// Each channel starts from timing/geom; `ddr_channels[k]` layers the
  /// per-channel overrides.
  ddr::Interleave interleave;
  std::vector<ddr::ChannelOverride> ddr_channels;
  ahb::Addr ddr_base = 0;
  std::vector<ahb::QosConfig> qos;  ///< one per master
  bool enable_checkers = true;
  /// Instantiate the full register-transfer detail layer (detail.hpp).
  /// On by default: the reference model is meant to pay RTL cost.
  bool rt_detail = true;
};

class RtlFabric : public state::Snapshottable {
 public:
  RtlFabric(const RtlFabricConfig& cfg,
            std::vector<traffic::Script> scripts);

  RtlFabric(const RtlFabric&) = delete;
  RtlFabric& operator=(const RtlFabric&) = delete;

  /// Run until every master finished and the fabric drained, or until
  /// `max_cycles`.  Returns the number of bus cycles executed.
  sim::Cycle run(sim::Cycle max_cycles);

  bool finished() const;

  /// Total bus cycles simulated so far (continues across restore).
  sim::Cycle cycle() const noexcept { return cycle_; }

  /// Bus cycle at which the last master transaction completed.
  sim::Cycle last_completion() const noexcept { return last_completion_; }

  std::uint64_t completed_txns() const noexcept { return completed_; }

  stats::RunProfile profile() const;

  const chk::ViolationLog& violations() const noexcept { return log_; }
  const sim::EventKernel& kernel() const noexcept { return kernel_; }
  const RtlDdrc& ddrc() const noexcept { return *ddrc_; }
  RtlDdrc& ddrc() noexcept { return *ddrc_; }
  const ahb::QosRegisterFile& qos() const noexcept { return qos_; }

  /// Per-transaction observer (set before run()).
  void set_on_complete(unsigned m,
                       std::function<void(const ahb::Transaction&)> fn);

  /// Attach a capture tap to master `m`'s port (set before run()).
  void set_trace_recorder(unsigned m, traffic::TraceRecorder* rec);

  /// Multi-line diagnostic snapshot (master states, buffer, arbiter, DDRC)
  /// for stall debugging.
  std::string dump_state() const;

  /// Dump the architectural bus signals to a VCD stream (viewable in
  /// GTKWave).  Call before run(); samples once per clock edge.
  void enable_vcd(std::ostream& os);

  /// Attach a timeline under process `pid`: per-master tracks, bus and
  /// write-buffer tracks, and the shared DDR channel/bank tracks.
  /// Observation only — never changes simulated behaviour.
  void enable_timeline(obs::Timeline& tl, unsigned pid);

  /// Attach a self-profiler: the event kernel times each process's run()
  /// (null detaches; the disabled path is one pointer test per activation).
  void set_profiler(obs::SelfProfiler* p);

  // ------------------------------------------------------------ snapshot
  // Whole-model checkpoint: counters, every component's FSM registers and
  // every wire's committed value.  Valid between run() calls (the kernel is
  // settled one tick before the next rising edge, which is exactly the
  // alignment a freshly constructed fabric starts from — so a restored
  // fabric resumes cycle-exactly without touching the timed-event queue).
  void save_state(state::StateWriter& w) const override;
  void restore_state(state::StateReader& r) override;

 private:
  void make_muxes();
  void observe_edge();

  RtlFabricConfig cfg_;
  unsigned masters_;
  sim::EventKernel kernel_;
  sim::Clock clock_;
  sim::Cycle cycle_ = 0;
  sim::Process tick_;

  ahb::QosRegisterFile qos_;
  /// Resolved per-channel DDR configs (sized by cfg_.interleave.channels);
  /// declared before sh_ so the BI bank wires can be sized from it.
  std::vector<ddr::ChannelConfig> ch_cfg_;
  std::vector<std::unique_ptr<MasterWires>> columns_;  ///< masters + wbuf
  SharedWires sh_;

  std::vector<stats::MasterProfile> master_profiles_;
  std::vector<std::unique_ptr<RtlMaster>> rtl_masters_;
  std::unique_ptr<RtlWriteBuffer> wbuf_;
  std::unique_ptr<RtlArbiter> arbiter_;
  std::unique_ptr<RtlDdrc> ddrc_;
  std::unique_ptr<DetailLayer> detail_;
  std::unique_ptr<BitLevelLayer> bitlevel_;

  std::unique_ptr<sim::Process> mux_proc_;
  std::unique_ptr<sim::Process> data_mux_proc_;
  sim::Process observer_;

  chk::ViolationLog log_;
  std::unique_ptr<chk::BusChecker> checker_;
  std::unique_ptr<sim::VcdWriter> vcd_;
  stats::BusProfile bus_profile_;

  // Observer's burst follower (for moved-bytes accounting).
  unsigned obs_pending_data_ = 0;
  unsigned obs_beat_bytes_ = 0;

  /// Timeline wiring (null when recording is off; never snapshotted).
  obs::Timeline* tl_ = nullptr;
  unsigned tl_bus_track_ = 0;
  unsigned tl_wbuf_track_ = 0;
  unsigned tl_last_occ_ = ~0U;     ///< last emitted wbuf occupancy sample
  std::uint8_t tl_last_owner_ = 0xFF;
  bool tl_busy_open_ = false;      ///< a bus-activity span is open

  sim::Cycle last_completion_ = 0;
  std::uint64_t completed_ = 0;
  std::vector<std::function<void(const ahb::Transaction&)>> user_hooks_;
};

}  // namespace ahbp::rtl
