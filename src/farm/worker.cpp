#include "farm/worker.hpp"

#include <utility>

#include "core/checkpoint.hpp"
#include "farm/protocol.hpp"
#include "scenario/scenario.hpp"
#include "state/transport.hpp"

namespace ahbp::farm {

std::size_t worker_loop(int in_fd, int out_fd) {
  auto first = state::read_frame(in_fd);
  if (!first) {
    return 0;  // coordinator vanished before saying hello; nothing to do
  }
  Msg hello = decode(*first);
  if (hello.kind == MsgKind::kShutdown) {
    return 0;
  }
  if (hello.kind != MsgKind::kHello) {
    throw state::StateError("farm worker: expected hello, got message kind " +
                            std::to_string(static_cast<int>(hello.kind)));
  }

  // Rebuild the base configuration exactly the way `resume` rebuilds a
  // checkpoint's: canonical scenario text + embedded trace content.  No
  // filesystem access — the worker may not share a disk with the
  // coordinator.
  core::PlatformConfig base = scenario::parse(hello.hello.scenario_text);
  core::CheckpointInfo embedded;
  embedded.traces = std::move(hello.hello.traces);
  core::apply_embedded_traces(base, embedded);

  const sweep::Model model = hello.hello.model;
  const std::vector<std::uint8_t>& warm_tlm = hello.hello.warm_tlm;
  const std::vector<std::uint8_t>& warm_rtl = hello.hello.warm_rtl;

  std::size_t simulated = 0;
  for (;;) {
    auto frame = state::read_frame(in_fd);
    if (!frame) {
      break;  // coordinator closed the command stream; we are done
    }
    Msg msg = decode(*frame);
    if (msg.kind == MsgKind::kShutdown) {
      break;
    }
    if (msg.kind != MsgKind::kBatch) {
      throw state::StateError(
          "farm worker: expected batch or shutdown, got message kind " +
          std::to_string(static_cast<int>(msg.kind)));
    }
    for (const PointAssignment& a : msg.batch) {
      sweep::SweepPoint point;
      point.index = static_cast<std::size_t>(a.index);
      point.label = a.label;
      point.config = base;
      std::string apply_error;
      try {
        for (const auto& [key, value] : a.overrides) {
          scenario::apply_key(point.config, key, value);
        }
        if (!a.overrides.empty()) {
          scenario::validate(point.config);
        }
      } catch (const std::exception& e) {
        apply_error = e.what();
      }

      sweep::PointOutcome outcome;
      if (apply_error.empty()) {
        outcome = sweep::simulate_point(point, model, warm_tlm, warm_rtl);
      } else {
        outcome.index = point.index;
        outcome.label = point.label;
        outcome.error = apply_error;
      }
      // The Outcome frame doubles as the ack: written only after the
      // point fully simulated, so a crash here leaves it unacknowledged
      // and the coordinator re-issues it.
      state::write_frame(out_fd, encode_outcome(outcome));
      ++simulated;
    }
  }
  return simulated;
}

}  // namespace ahbp::farm
