// Observability layer: JSON writer, stall attribution, self-profiling,
// timeline structure — and the invariant that instrumentation never
// perturbs simulated behaviour in either model.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/platform.hpp"
#include "core/workloads.hpp"
#include "obs/json.hpp"
#include "obs/selfprof.hpp"
#include "obs/stall.hpp"
#include "obs/timeline.hpp"
#include "state/snapshot.hpp"

namespace {

using namespace ahbp;

// ------------------------------------------------------------- JsonWriter --

TEST(JsonWriter, NestedStructuresAndCommas) {
  std::ostringstream os;
  obs::JsonWriter j(os);
  j.begin_object()
      .member("a", 1u)
      .key("b")
      .begin_array()
      .value("x\"y")
      .value(true)
      .value(0.5)
      .end_array()
      .key("c")
      .begin_object()
      .end_object()
      .end_object();
  EXPECT_EQ(os.str(), "{\"a\":1,\"b\":[\"x\\\"y\",true,0.5],\"c\":{}}");
}

TEST(JsonWriter, EscapesControlCharacters) {
  EXPECT_EQ(obs::json_escape("a\tb\nc"), "a\\tb\\nc");
  EXPECT_EQ(obs::json_escape(std::string("x\x01y", 3)), "x\\u0001y");
  EXPECT_EQ(obs::json_escape("q\\\"q"), "q\\\\\\\"q");
}

TEST(JsonWriter, NonFiniteDoublesDegradeToZero) {
  std::ostringstream os;
  obs::JsonWriter j(os);
  j.begin_array().value(0.0 / 0.0).value(1e308 * 10).end_array();
  EXPECT_EQ(os.str(), "[0,0]");
}

// ---------------------------------------------------------- StallCounters --

TEST(StallCounters, AddTotalAndRoundtrip) {
  obs::StallCounters c;
  c.add(obs::StallClass::kRunning);
  c.add(obs::StallClass::kThink);
  c.add(obs::StallClass::kThink);
  EXPECT_EQ(c[obs::StallClass::kRunning], 1u);
  EXPECT_EQ(c[obs::StallClass::kThink], 2u);
  EXPECT_EQ(c[obs::StallClass::kWbufFull], 0u);
  EXPECT_EQ(c.total(), 3u);

  state::StateWriter w;
  w.begin("stalls");
  c.save_state(w);
  w.end();
  const auto bytes = w.finish();

  obs::StallCounters back;
  state::StateReader r(bytes.data(), bytes.size());
  r.enter("stalls");
  back.restore_state(r);
  r.leave();
  EXPECT_EQ(back.cycles, c.cycles);
}

TEST(StallCounters, ClassNamesAreStable) {
  EXPECT_EQ(obs::to_string(obs::StallClass::kRunning), "running");
  EXPECT_EQ(obs::to_string(obs::StallClass::kArbWait), "arb_wait");
  EXPECT_EQ(obs::to_string(obs::StallClass::kBusBusy), "bus_busy");
  EXPECT_EQ(obs::to_string(obs::StallClass::kDdrBusy), "ddr_busy");
  EXPECT_EQ(obs::to_string(obs::StallClass::kWbufFull), "wbuf_full");
  EXPECT_EQ(obs::to_string(obs::StallClass::kThink), "think");
}

// ----------------------------------------------------------- SelfProfiler --

TEST(SelfProfiler, PhaseIdsAreDenseAndDeduped) {
  obs::SelfProfiler sp;
  const unsigned a = sp.phase("alpha");
  const unsigned b = sp.phase("beta");
  EXPECT_EQ(sp.phase("alpha"), a);
  EXPECT_NE(a, b);
  sp.add(a, 100);
  sp.add(a, 50);
  sp.add(b, 7);
  EXPECT_EQ(sp.phases()[a].calls, 2u);
  EXPECT_EQ(sp.phases()[a].ns, 150u);
  EXPECT_EQ(sp.total_ns(), 157u);
}

TEST(SelfProfiler, NullScopedTimerIsANoOp) {
  // The disabled fast path: no profiler, no effect (and no crash).
  obs::ScopedTimer t(nullptr, 12345);
  SUCCEED();
}

// --------------------------------------------------------------- Timeline --

TEST(Timeline, EndWithoutBeginIsDropped) {
  obs::Timeline tl;
  const unsigned pid = tl.add_process("p");
  const unsigned t = tl.add_track(pid, "t");
  tl.end(t, 5);
  EXPECT_TRUE(tl.events().empty());
}

TEST(Timeline, FinalizeClosesOpenSpans) {
  obs::Timeline tl;
  const unsigned pid = tl.add_process("p");
  const unsigned t = tl.add_track(pid, "t");
  tl.begin(t, 1, "outer");
  tl.begin(t, 2, "inner");
  tl.end(t, 3);
  tl.finalize(9);
  ASSERT_EQ(tl.events().size(), 4u);
  EXPECT_EQ(tl.events()[3].ph, 'E');
  EXPECT_EQ(tl.events()[3].ts, 9u);
  EXPECT_TRUE(tl.tracks()[t].open.empty());
}

/// Extract every "ts": value from a trace JSON document, in order.
std::vector<std::uint64_t> extract_ts(const std::string& s) {
  std::vector<std::uint64_t> out;
  const std::string key = "\"ts\":";
  for (std::size_t pos = s.find(key); pos != std::string::npos;
       pos = s.find(key, pos + 1)) {
    out.push_back(std::stoull(s.substr(pos + key.size())));
  }
  return out;
}

TEST(Timeline, WriteSortsTimestampsAndBalancesSpans) {
  obs::Timeline tl;
  const unsigned pid = tl.add_process("model");
  const unsigned t = tl.add_track(pid, "track");
  // Emit deliberately out of order; write() must sort.
  tl.instant(t, 10, "late");
  tl.counter(t, 3, "occ", 2);
  tl.begin(t, 1, "span");
  tl.end(t, 7);

  std::ostringstream os;
  tl.write(os);
  const std::string s = os.str();

  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(s.find("\"thread_name\""), std::string::npos);
  EXPECT_EQ(s.front(), '{');
  EXPECT_EQ(s.substr(s.size() - 2), "}\n");

  const auto ts = extract_ts(s);
  ASSERT_EQ(ts.size(), 4u);  // metadata events carry no "ts"
  for (std::size_t i = 1; i < ts.size(); ++i) {
    EXPECT_LE(ts[i - 1], ts[i]);
  }
}

// ----------------------------------------------- cross-model invariants --

/// B/E events nest and balance on every track.
void expect_balanced(const obs::Timeline& tl) {
  std::vector<int> depth(tl.tracks().size(), 0);
  for (const auto& e : tl.events()) {
    if (e.ph == 'B') {
      ++depth[e.track];
    } else if (e.ph == 'E') {
      --depth[e.track];
      EXPECT_GE(depth[e.track], 0);
    }
  }
  for (const int d : depth) {
    EXPECT_EQ(d, 0);
  }
}

TEST(Observability, InstrumentationDoesNotPerturbEitherModel) {
  auto cfg = core::table1_workloads(12, 3)[0].config;
  for (const auto kind : {core::ModelKind::kTlm, core::ModelKind::kRtl}) {
    core::Platform plain(cfg, kind);
    plain.run_to_completion();
    const core::SimResult base = plain.result();

    obs::Timeline tl;
    obs::SelfProfiler sp;
    core::Platform instr(cfg, kind);
    instr.enable_timeline(tl);
    instr.enable_self_profile(sp);
    instr.run_to_completion();
    tl.finalize(instr.now());
    const core::SimResult r = instr.result();

    EXPECT_EQ(base.cycles, r.cycles) << core::to_string(kind);
    EXPECT_EQ(base.ran_cycles, r.ran_cycles) << core::to_string(kind);
    EXPECT_EQ(base.completed, r.completed) << core::to_string(kind);
    EXPECT_EQ(base.kernel_activity, r.kernel_activity)
        << core::to_string(kind);

    EXPECT_FALSE(tl.events().empty());
    expect_balanced(tl);
    // Self-profiling saw the kernel components plus stimulus expansion.
    EXPECT_GT(sp.phases().size(), 1u);
  }
}

TEST(Observability, StallDecompositionSumsToSimulatedCycles) {
  auto cfg = core::table1_workloads(15, 5)[0].config;
  for (const auto kind : {core::ModelKind::kTlm, core::ModelKind::kRtl}) {
    core::Platform p(cfg, kind);
    p.run_to_completion();
    const core::SimResult r = p.result();
    ASSERT_FALSE(r.profile.masters.empty());
    for (const auto& m : r.profile.masters) {
      EXPECT_EQ(m.stalls.total(), r.ran_cycles)
          << core::to_string(kind) << " " << m.name;
      // Something happened: a finishing master has running cycles.
      EXPECT_GT(m.stalls[obs::StallClass::kRunning], 0u);
    }
  }
}

TEST(Observability, ProgressChunkingKeepsResultsBitIdentical) {
  auto cfg = core::table1_workloads(12, 7)[0].config;
  for (const auto kind : {core::ModelKind::kTlm, core::ModelKind::kRtl}) {
    core::Platform plain(cfg, kind);
    plain.run_to_completion();
    const core::SimResult base = plain.result();

    std::ostringstream sink;
    core::Platform chunked(cfg, kind);
    chunked.set_progress(&sink, /*interval_sec=*/0.0);
    chunked.run_to_completion();
    const core::SimResult r = chunked.result();

    EXPECT_EQ(base.cycles, r.cycles) << core::to_string(kind);
    EXPECT_EQ(base.ran_cycles, r.ran_cycles) << core::to_string(kind);
    EXPECT_EQ(base.completed, r.completed) << core::to_string(kind);
    EXPECT_EQ(base.kernel_activity, r.kernel_activity)
        << core::to_string(kind);
  }
}

TEST(Observability, StatsJsonIsWellFormedAndCarriesStalls) {
  auto cfg = core::table1_workloads(10, 3)[0].config;
  const core::SimResult r = core::run_tlm(cfg);
  std::ostringstream os;
  core::write_stats_json(os, r);
  const std::string s = os.str();

  EXPECT_NE(s.find("\"model\":\"tlm\""), std::string::npos);
  EXPECT_NE(s.find("\"stalls\""), std::string::npos);
  EXPECT_NE(s.find("\"violations\""), std::string::npos);
  EXPECT_NE(s.find("\"arb_wait\""), std::string::npos);

  // Structural sanity: braces and brackets balance (strings in this dump
  // never contain them).
  int braces = 0, brackets = 0;
  for (const char c : s) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Observability, TimelineJsonNamesBothModelsUnderOneFile) {
  auto cfg = core::table1_workloads(8, 3)[0].config;
  obs::Timeline tl;
  for (const auto kind : {core::ModelKind::kTlm, core::ModelKind::kRtl}) {
    core::Platform p(cfg, kind);
    p.enable_timeline(tl);
    p.run_to_completion();
    tl.finalize(p.now());
  }
  std::ostringstream os;
  tl.write(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"name\":\"tlm\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"rtl\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"bus\""), std::string::npos);
  EXPECT_NE(s.find("ddr ch0"), std::string::npos);
  expect_balanced(tl);
}

}  // namespace
