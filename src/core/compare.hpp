#pragma once

#include <string>
#include <vector>

#include "core/platform.hpp"
#include "core/workloads.hpp"

/// \file compare.hpp
/// TLM-vs-RTL accuracy comparison — the machinery behind Table 1.

namespace ahbp::core {

/// One row of the accuracy table.
struct AccuracyRow {
  std::string name;
  sim::Cycle rtl_cycles = 0;
  sim::Cycle tlm_cycles = 0;
  double error = 0.0;  ///< |tlm - rtl| / rtl
  bool both_finished = false;
  std::size_t protocol_errors = 0;  ///< across both models (must be 0)
};

/// Run a workload on both models and compare total cycles.
AccuracyRow compare_models(const Workload& w);

/// Run the whole suite.  Average error uses the arithmetic mean of row
/// errors (the paper reports "average accuracy difference").
struct AccuracySuite {
  std::vector<AccuracyRow> rows;
  double average_error = 0.0;
  double worst_error = 0.0;
};
AccuracySuite compare_suite(const std::vector<Workload>& workloads);

}  // namespace ahbp::core
