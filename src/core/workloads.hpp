#pragma once

#include <string>
#include <vector>

#include "core/platform.hpp"

/// \file workloads.hpp
/// Named workloads, including the Table-1 suite.
///
/// The paper's Table 1 "modeled and simulated a target system by changing
/// the traffic patterns of the masters" over a 4-master platform.  The
/// original master mixes are not public; DESIGN.md §2 documents this
/// reconstruction: three traffic classes (CPU-dominated, DMA-heavy,
/// RT-stream mix), four parameter variations each — twelve rows, matching
/// the table's shape (3 groups x 4 rows + summary).

namespace ahbp::core {

struct Workload {
  std::string name;
  PlatformConfig config;
};

/// A sensible default 4-master platform (all filters on, write buffer 4
/// deep, DDR-266, 8MB of DDR behind the controller).
PlatformConfig default_platform(unsigned masters, std::uint64_t seed = 1,
                                unsigned items_per_master = 400);

/// The twelve Table-1 rows.
/// `items_per_master` scales run length (tests use small values, the bench
/// uses the default for stable percentages).
std::vector<Workload> table1_workloads(unsigned items_per_master = 400,
                                       std::uint64_t seed = 1);

/// Single-master workload used for the paper's 456 Kcycles/s data point.
Workload single_master_workload(unsigned items = 2000, std::uint64_t seed = 1);

}  // namespace ahbp::core
