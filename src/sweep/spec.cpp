#include "sweep/spec.hpp"

#include <fstream>
#include <sstream>

#include "scenario/lexer.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"

namespace ahbp::sweep {

namespace {

using scenario::ScenarioError;
using scenario::lex::trim;

std::vector<std::string> split_list(std::string_view v, std::size_t line) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= v.size()) {
    const std::size_t comma = v.find(',', pos);
    const std::string_view item =
        trim(v.substr(pos, comma == std::string_view::npos ? std::string_view::npos
                                                           : comma - pos));
    if (item.empty()) {
      throw ScenarioError("empty value in axis list", line);
    }
    out.emplace_back(item);
    if (comma == std::string_view::npos) {
      break;
    }
    pos = comma + 1;
  }
  return out;
}

}  // namespace

std::size_t SweepSpec::points() const noexcept {
  std::size_t n = 1;
  for (const Axis& a : axes) {
    n *= a.values.size();
  }
  return n;
}

SweepSpec parse_spec(std::string_view text) {
  SweepSpec spec;

  // Pass 1: pull out `base =` (top level) and the [sweep] axes; everything
  // else is scenario text kept for pass 2.  Non-scenario lines are kept as
  // blanks so scenario::parse reports the sweep file's own line numbers.
  std::vector<std::string> scenario_lines;  // [i] = sweep-file line i+1 or ""
  bool saw_scenario = false;
  struct Override {
    std::string key;  // dotted
    std::string value;
    std::size_t line;
  };
  std::vector<Override> overrides;
  std::string section;      // "" = top level
  std::string master_idx;   // current [master N] index text

  scenario::lex::for_each_line(text, [&](const scenario::lex::Line& l) {
    while (scenario_lines.size() < l.number) {
      scenario_lines.emplace_back();
    }
    const auto keep_line = [&] {
      scenario_lines.back() = std::string(l.raw);
      saw_scenario = true;
    };

    if (l.kind == scenario::lex::Line::Kind::kSection) {
      std::string_view idx;
      if (l.section == "sweep") {
        section = "sweep";
      } else if (l.section == "platform" || l.section == "bus" ||
                 l.section == "ddr" || l.section == "checkpoint") {
        section = l.section;
        keep_line();
      } else if (scenario::lex::channel_section(l.section, idx)) {
        section = "channel";
        master_idx = std::string(idx);
        keep_line();
      } else if (scenario::lex::master_section(l.section, idx)) {
        section = "master";
        master_idx = std::string(idx);
        keep_line();
      } else {
        throw ScenarioError("unknown section '" + std::string(l.section) +
                                "'",
                            l.number);
      }
      return;
    }

    const std::string key(l.key);
    const std::string value(l.value);
    if (section.empty()) {
      if (key == "base") {
        if (saw_scenario || !overrides.empty()) {
          throw ScenarioError("'base =' must precede every scenario section",
                              l.number);
        }
        spec.base = value;
      } else {
        throw ScenarioError("unknown top-level key '" + key +
                                "' (only 'base' may appear before a section)",
                            l.number);
      }
    } else if (section == "sweep") {
      if (key == "base") {
        throw ScenarioError(
            "'base =' must appear before the first section, not inside"
            " [sweep]",
            l.number);
      }
      if (key.find('.') == std::string::npos) {
        throw ScenarioError("sweep axis key must be dotted, e.g."
                            " bus.write_buffer_depth",
                            l.number);
      }
      if (key.rfind("checkpoint.", 0) == 0) {
        throw ScenarioError(
            "checkpoint keys cannot be swept (points run in parallel and"
            " would clobber one snapshot file); warm-up forking is"
            " 'sweep --warmup-cycles N'",
            l.number);
      }
      spec.axes.push_back({key, split_list(value, l.number)});
    } else if (key == "base") {
      throw ScenarioError(
          "'base =' must appear before the first section", l.number);
    } else if (spec.base.empty()) {
      // No base: the scenario sections ARE the scenario.
      keep_line();
    } else {
      // With a base, scenario sections are targeted overrides.
      const std::string dotted =
          section == "master" || section == "channel"
              ? section + master_idx + "." + key
              : section + "." + key;
      overrides.push_back({dotted, value, l.number});
    }
  });

  // Pass 2: build the base configuration and layer the overrides.
  if (spec.base.empty()) {
    if (!saw_scenario) {
      throw ScenarioError(
          "sweep spec needs a 'base = <scenario>' line or inline scenario"
          " sections");
    }
    std::string scenario_text;
    for (const std::string& l : scenario_lines) {
      scenario_text.append(l).push_back('\n');
    }
    spec.base_config = scenario::parse(scenario_text);
  } else {
    try {
      spec.base_config = scenario::load_scenario(spec.base);
    } catch (const ScenarioError& e) {
      throw ScenarioError("base: " + std::string(e.what()));
    }
    for (const Override& o : overrides) {
      try {
        scenario::apply_key(spec.base_config, o.key, o.value);
      } catch (const ScenarioError& e) {
        throw ScenarioError(e.what(), o.line);
      }
    }
    // Targeted overrides bypass parse(); re-establish the whole-config
    // invariants (aperture, channel ranges, stripe divisibility) here.
    scenario::validate(spec.base_config);
  }

  // Resolve trace-backed stimulus once at spec time: every expanded point
  // (and the warm-up fork base) then carries the trace text by value
  // instead of re-reading the file per point — and a missing trace file
  // fails here, with spec context, not inside a worker thread.  Points
  // whose axes retarget `masterK.trace` re-resolve at Platform
  // construction (the setter clears the stale text).
  try {
    core::resolve_stimulus(spec.base_config);
  } catch (const std::exception& e) {
    throw ScenarioError("base: " + std::string(e.what()));
  }

  // A [checkpoint] request in the base would be silently dead (the runner
  // never snapshots per point — N parallel points would clobber one file);
  // reject it instead of ignoring configuration.
  if (spec.base_config.checkpoint.enabled()) {
    throw ScenarioError(
        "sweep bases cannot request a [checkpoint] (every point would"
        " write the same file); take the snapshot with 'ahbp_sim"
        " checkpoint' or fork the sweep with '--warmup-cycles N'");
  }

  return spec;
}

SweepSpec parse_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ScenarioError("cannot open sweep file '" + path + "'");
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_spec(ss.str());
}

std::vector<SweepPoint> expand(const SweepSpec& spec) {
  const std::size_t total = spec.points();
  std::vector<SweepPoint> out;
  out.reserve(total);

  // Strides: first axis slowest, last axis fastest.
  std::vector<std::size_t> stride(spec.axes.size(), 1);
  for (std::size_t a = spec.axes.size(); a-- > 1;) {
    stride[a - 1] = stride[a] * spec.axes[a].values.size();
  }

  for (std::size_t i = 0; i < total; ++i) {
    SweepPoint p;
    p.index = i;
    p.config = spec.base_config;
    std::string label;
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      const Axis& ax = spec.axes[a];
      const std::string& v = ax.values[(i / stride[a]) % ax.values.size()];
      scenario::apply_key(p.config, ax.key, v);
      if (!label.empty()) {
        label += ' ';
      }
      label += ax.key + "=" + v;
    }
    if (!spec.axes.empty()) {
      // Axis values pass through apply_key one at a time; the combined
      // point must still satisfy the whole-config invariants (e.g. a
      // swept ddr.rows shrinking the aperture under a master's window).
      try {
        scenario::validate(p.config);
      } catch (const scenario::ScenarioError& e) {
        throw scenario::ScenarioError("point " + std::to_string(i) + " (" +
                                      label + "): " + e.what());
      }
    }
    p.label = label.empty() ? "base" : label;
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace ahbp::sweep
