#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ahb/transaction.hpp"
#include "ahb/types.hpp"
#include "ddr/bank.hpp"
#include "ddr/scheduler.hpp"
#include "obs/stall.hpp"
#include "sim/time.hpp"
#include "stats/histogram.hpp"

namespace ahbp::obs {
class Timeline;
}

/// \file profiles.hpp
/// The profiling features of the paper's §3.6: "bus and master port
/// profiling features in transaction-level ports and some internal
/// functions such as arbiter, write buffer and so on".  Both models produce
/// the same profile structures, so accuracy comparisons can look beyond the
/// total cycle count.

namespace ahbp::stats {

/// Per-master port profile, fed by the transaction ports.
struct MasterProfile {
  std::string name;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t buffered_writes = 0;  ///< writes absorbed by the write buffer
  Log2Histogram grant_wait;   ///< request -> grant cycles
  Log2Histogram latency;      ///< request -> completion cycles
  std::uint64_t qos_misses = 0;  ///< RT transfers that blew the objective
  obs::StallCounters stalls;  ///< per-cycle stall attribution (obs/stall.hpp)

  /// Timeline hook (observation wiring, not state): when set, record()
  /// emits the grant-wait and transfer spans on this master's track.  Both
  /// models call record() at completion, so the emission is shared.
  obs::Timeline* timeline = nullptr;
  unsigned timeline_track = 0;

  void record(const ahb::Transaction& t, bool buffered);

  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);
};

/// Bus-level profile, fed by the arbiter each cycle.
struct BusProfile {
  sim::Cycle cycles = 0;            ///< total observed cycles
  sim::Cycle busy_cycles = 0;       ///< address or data phase active
  sim::Cycle contention_cycles = 0; ///< >1 request pending in one cycle
  sim::Cycle wait_cycles = 0;       ///< >=1 request pending but bus stalled
  std::uint64_t grants = 0;
  std::uint64_t handovers = 0;      ///< grant moved to a different master
  std::uint64_t bytes = 0;

  /// Fraction of cycles the bus moved or addressed data.
  double utilization() const noexcept {
    return cycles ? static_cast<double>(busy_cycles) / static_cast<double>(cycles)
                  : 0.0;
  }
  /// Fraction of cycles with more than one pending requester.
  double contention() const noexcept {
    return cycles ? static_cast<double>(contention_cycles) /
                        static_cast<double>(cycles)
                  : 0.0;
  }
  /// Bytes per cycle.
  double throughput() const noexcept {
    return cycles ? static_cast<double>(bytes) / static_cast<double>(cycles)
                  : 0.0;
  }

  /// Per-cycle sample: `requesters` = number of masters requesting this
  /// cycle, `busy` = bus occupied, `moved_bytes` = data moved this cycle.
  void sample(unsigned requesters, bool busy, unsigned moved_bytes);

  /// Bulk-record `n` provably idle cycles (no requesters, not busy, no
  /// data) — equivalent to calling sample(0, false, 0) `n` times.  Used by
  /// the quantum-skip fast path.
  void sample_idle_n(sim::Cycle n) noexcept { cycles += n; }

  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);
};

/// Write-buffer profile (§3.3 / §3.6).
struct WriteBufferProfile {
  std::uint64_t absorbed = 0;       ///< writes accepted into the buffer
  std::uint64_t drained = 0;        ///< writes drained to the DDRC
  std::uint64_t bypassed = 0;       ///< writes that went straight through
  std::uint64_t full_stalls = 0;    ///< cycles a write stalled on full buffer
  std::uint64_t forwards = 0;       ///< reads served/ordered against buffer hits
  Summary occupancy;                ///< sampled per cycle

  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);
};

/// DDR-side profile assembled from the engine counters.
struct DdrProfile {
  ddr::BankEngine::Counters commands;
  ddr::DdrcEngine::HitStats hits;

  double row_hit_rate() const noexcept {
    const auto total = hits.row_hits + hits.row_misses + hits.row_conflicts;
    return total ? static_cast<double>(hits.row_hits) /
                       static_cast<double>(total)
                 : 0.0;
  }
};

/// Everything one simulation run produces.
struct RunProfile {
  std::vector<MasterProfile> masters;
  BusProfile bus;
  WriteBufferProfile write_buffer;
  DdrProfile ddr;
  sim::Cycle total_cycles = 0;
  std::uint64_t completed_txns = 0;
  /// Checker findings aggregated by rule id (sorted by rule), so reports
  /// surface them without grepping the violation log text.
  std::vector<std::pair<std::string, std::uint64_t>> violation_rules;
};

}  // namespace ahbp::stats
