#include "rtl/fabric.hpp"

#include <algorithm>
#include <string>

#include "assertions/assert.hpp"
#include "obs/selfprof.hpp"
#include "obs/timeline.hpp"

namespace ahbp::rtl {

namespace {
constexpr sim::Tick kClockPeriod = 2;  // one bus cycle = 2 ticks
}

RtlFabric::RtlFabric(const RtlFabricConfig& cfg,
                     std::vector<traffic::Script> scripts)
    : cfg_(cfg),
      masters_(static_cast<unsigned>(scripts.size())),
      clock_(kernel_, "hclk", kClockPeriod),
      // The cycle counter must be the first posedge subscriber: every other
      // process reads the incremented value.
      tick_(kernel_, "cycle-tick", [this] { ++cycle_; }),
      qos_(masters_),
      ch_cfg_(ddr::resolve_channels(cfg.timing, cfg.geom, cfg.interleave,
                                    cfg.ddr_channels)),
      sh_(kernel_, masters_, ddr::bank_bases(ch_cfg_).back()),
      master_profiles_(masters_),
      observer_(kernel_, "observer", [this] { observe_edge(); }),
      user_hooks_(masters_) {
  AHBP_ASSERT_MSG(masters_ >= 1, "at least one master required");
  AHBP_ASSERT_MSG(ahb::valid_beat_bytes(cfg_.bus.data_width_bytes),
                  "bus.data_width_bytes must be 1, 2, 4 or 8");
  AHBP_ASSERT_MSG(cfg_.interleave.valid(),
                  "ddr.channels must be 1/2/4/8 with a power-of-two"
                  " interleave stripe >= 8 bytes");
  AHBP_ASSERT_MSG(cfg_.qos.size() == masters_,
                  "one QosConfig per master required");
  for (unsigned m = 0; m < masters_; ++m) {
    qos_.program(static_cast<ahb::MasterId>(m), cfg_.qos[m]);
  }

  clock_.signal().subscribe(tick_, sim::Edge::kPos);

  // Wire columns: one per master plus the write buffer's.
  columns_.reserve(masters_ + 1);
  for (unsigned m = 0; m <= masters_; ++m) {
    columns_.push_back(std::make_unique<MasterWires>(kernel_, m));
  }

  // Masters (subscribe before arbiter/wbuf/ddrc).
  std::vector<MasterWires*> mw;
  for (unsigned m = 0; m < masters_; ++m) {
    mw.push_back(columns_[m].get());
  }
  for (unsigned m = 0; m < masters_; ++m) {
    auto master = std::make_unique<RtlMaster>(
        kernel_, static_cast<ahb::MasterId>(m), *columns_[m], sh_,
        std::move(scripts[m]), &cycle_, master_profiles_[m]);
    master->on_complete = [this, m](const ahb::Transaction& t) {
      last_completion_ = cycle_;
      ++completed_;
      if (user_hooks_[m]) {
        user_hooks_[m](t);
      }
    };
    master->bind_clock(clock_.signal());
    rtl_masters_.push_back(std::move(master));
    master_profiles_[m].name = "M" + std::to_string(m);
  }

  wbuf_ = std::make_unique<RtlWriteBuffer>(kernel_, cfg_.bus, masters_, sh_,
                                           *columns_[masters_], mw, &cycle_);
  arbiter_ = std::make_unique<RtlArbiter>(
      kernel_, cfg_.bus, qos_, sh_, mw, *wbuf_, ch_cfg_, cfg_.interleave,
      cfg_.ddr_base, &cycle_, cfg_.enable_checkers ? &log_ : nullptr);
  // Subscription order: arbiter before write buffer (reservation happens
  // before the buffer's capture/drain pass, as in the TLM).
  arbiter_->bind_clock(clock_.signal());
  wbuf_->bind_clock(clock_.signal());

  ddrc_ = std::make_unique<RtlDdrc>(kernel_, ch_cfg_, cfg_.interleave,
                                    cfg_.ddr_base, cfg_.bus, sh_, &cycle_);
  ddrc_->bind_clock(clock_.signal());

  if (cfg_.rt_detail) {
    std::vector<MasterWires*> all_cols;
    for (auto& c : columns_) {
      all_cols.push_back(c.get());
    }
    detail_ = std::make_unique<DetailLayer>(kernel_, sh_, all_cols,
                                            ddrc_->channels(), &cycle_);
    detail_->bind_clock(clock_.signal());
    bitlevel_ = std::make_unique<BitLevelLayer>(kernel_, sh_, all_cols);
  }

  make_muxes();

  if (cfg_.enable_checkers) {
    checker_ = std::make_unique<chk::BusChecker>(
        chk::CheckerConfig{masters_, cfg_.bus.write_buffer_depth,
                           cfg_.bus.write_buffer_enabled,
                           cfg_.bus.data_width_bytes},
        log_);
  }
  clock_.signal().subscribe(observer_, sim::Edge::kPos);
}

void RtlFabric::make_muxes() {
  // Combinational address/control mux: routes the address-phase owner's
  // column (HMASTER-selected) onto the shared bus.  Settles through delta
  // cycles whenever the owner or any routed signal changes.
  mux_proc_ = std::make_unique<sim::Process>(kernel_, "bus-mux", [this] {
    const std::uint8_t owner = sh_.hmaster.read();
    if (owner >= columns_.size()) {
      sh_.htrans.write(pack(ahb::Trans::kIdle));
      return;
    }
    const MasterWires& c = *columns_[owner];
    sh_.htrans.write(c.htrans.read());
    sh_.haddr.write(c.haddr.read());
    sh_.hburst.write(c.hburst.read());
    sh_.hsize.write(c.hsize.read());
    sh_.hwrite.write(c.hwrite.read());
  });
  sh_.hmaster.subscribe(*mux_proc_);
  for (auto& col : columns_) {
    col->htrans.subscribe(*mux_proc_);
    col->haddr.subscribe(*mux_proc_);
    col->hburst.subscribe(*mux_proc_);
    col->hsize.subscribe(*mux_proc_);
    col->hwrite.subscribe(*mux_proc_);
  }

  // Write-data mux: selected by the *delayed* data-phase owner (HMASTERD).
  data_mux_proc_ = std::make_unique<sim::Process>(kernel_, "wdata-mux", [this] {
    const std::uint8_t owner = sh_.hmaster_data.read();
    if (owner < columns_.size()) {
      sh_.hwdata.write(columns_[owner]->hwdata.read());
    }
  });
  sh_.hmaster_data.subscribe(*data_mux_proc_);
  for (auto& col : columns_) {
    col->hwdata.subscribe(*data_mux_proc_);
  }
}

void RtlFabric::observe_edge() {
  if (vcd_) {
    vcd_->sample(cycle_);
  }
  // Views describe the previous bus cycle (all reads return values
  // committed before this edge).
  const auto tr = unpack_trans(sh_.htrans.read());
  const bool hr = sh_.hready.read();

  chk::BusCycleView v;
  v.cycle = cycle_;
  for (unsigned m = 0; m < masters_; ++m) {
    if (columns_[m]->hbusreq.read()) {
      v.request_mask |= 1U << m;
    }
  }
  if (sh_.wbuf_req.read()) {
    v.request_mask |= 1U << masters_;
  }
  v.hmaster = sh_.hmaster.read();
  v.htrans = tr;
  v.haddr = sh_.haddr.read();
  v.hburst = unpack_burst(sh_.hburst.read());
  v.hsize = unpack_size(sh_.hsize.read());
  v.hwrite = unpack_dir(sh_.hwrite.read());
  v.hready = hr;
  v.hresp = static_cast<ahb::Resp>(sh_.hresp.read());
  v.wbuf_occupancy = sh_.wbuf_occupancy.read();
  if (checker_) {
    checker_->on_cycle(v);
  }

  // Bus profile: track data-phase progress with a small burst follower.
  bool moved = false;
  if (hr && obs_pending_data_ > 0) {
    moved = true;
    --obs_pending_data_;
  }
  if (hr && (tr == ahb::Trans::kNonSeq || tr == ahb::Trans::kSeq)) {
    if (tr == ahb::Trans::kNonSeq) {
      obs_beat_bytes_ = ahb::size_bytes(v.hsize);
    }
    ++obs_pending_data_;
  }
  unsigned requesters = sh_.wbuf_req.read() ? 1U : 0U;
  for (unsigned m = 0; m < masters_; ++m) {
    if (columns_[m]->hbusreq.read()) {
      ++requesters;
    }
  }
  const bool busy = tr != ahb::Trans::kIdle || obs_pending_data_ > 0;
  bus_profile_.sample(requesters, busy, moved ? obs_beat_bytes_ : 0);

  // Stall attribution: charge this cycle to one class per master, from the
  // same committed wires the checker view reads (always on — observation
  // only, so it cannot perturb the simulation).
  const std::uint8_t owner = sh_.hmaster.read();
  const bool ddr_blocked =
      ddrc_->channels().busy() || !sh_.bi_permit.read();
  for (unsigned m = 0; m < masters_; ++m) {
    obs::StallClass c = obs::StallClass::kThink;
    switch (rtl_masters_[m]->state()) {
      case RtlMaster::State::kIdle:
        c = obs::StallClass::kThink;
        break;
      case RtlMaster::State::kTransfer:
      case RtlMaster::State::kBufStream:
        c = obs::StallClass::kRunning;
        break;
      case RtlMaster::State::kRequest:
        if (cfg_.bus.write_buffer_enabled &&
            rtl_masters_[m]->pending_txn().dir == ahb::Dir::kWrite &&
            !wbuf_->can_reserve()) {
          c = obs::StallClass::kWbufFull;
        } else if (busy && owner != m) {
          c = obs::StallClass::kBusBusy;
        } else if (ddr_blocked) {
          c = obs::StallClass::kDdrBusy;
        } else {
          c = obs::StallClass::kArbWait;
        }
        break;
    }
    master_profiles_[m].stalls.add(c);
  }

  if (tl_ != nullptr) {
    if (owner != tl_last_owner_ && owner <= masters_) {
      tl_->instant(tl_bus_track_, cycle_,
                   owner == masters_ ? std::string("grant wbuf")
                                     : "grant M" + std::to_string(owner));
    }
    tl_last_owner_ = owner;
    if (busy && !tl_busy_open_) {
      tl_busy_open_ = true;
      tl_->begin(tl_bus_track_, cycle_,
                 owner == masters_ ? std::string("xfer wbuf")
                 : owner < masters_ ? "xfer M" + std::to_string(owner)
                                    : std::string("xfer"));
    } else if (!busy && tl_busy_open_) {
      tl_busy_open_ = false;
      tl_->end(tl_bus_track_, cycle_);
    }
    const unsigned occ = sh_.wbuf_occupancy.read();
    if (cfg_.bus.write_buffer_enabled && occ != tl_last_occ_) {
      tl_last_occ_ = occ;
      tl_->counter(tl_wbuf_track_, cycle_, "occupancy", occ);
    }
  }
}

sim::Cycle RtlFabric::run(sim::Cycle max_cycles) {
  const sim::Cycle start = cycle_;
  while (cycle_ - start < max_cycles && !finished()) {
    // Chunks align to *absolute* 256-cycle boundaries, not to this call's
    // entry point: finished() is only sampled between chunks, so a resumed
    // fabric (entering mid-interval after a checkpoint restore) must test
    // it at the same cycles an uninterrupted run does or the two runs stop
    // at different ran_cycles.
    const sim::Cycle to_boundary = 256 - cycle_ % 256;
    const sim::Cycle chunk =
        std::min(to_boundary, max_cycles - (cycle_ - start));
    kernel_.run_until(kernel_.now() + chunk * kClockPeriod);
  }
  return cycle_ - start;
}

bool RtlFabric::finished() const {
  for (const auto& m : rtl_masters_) {
    if (!m->finished()) {
      return false;
    }
  }
  return !wbuf_->draining() && wbuf_->fifo().empty() && ddrc_->quiescent();
}

stats::RunProfile RtlFabric::profile() const {
  stats::RunProfile p;
  p.masters = master_profiles_;
  for (unsigned m = 0; m < masters_; ++m) {
    p.masters[m].qos_misses = qos_.state(static_cast<ahb::MasterId>(m)).qos_misses;
  }
  p.bus = bus_profile_;
  p.bus.grants = arbiter_->grants();
  p.bus.handovers = arbiter_->handovers();
  p.write_buffer = wbuf_->fifo().profile();
  p.ddr.commands = ddrc_->channels().command_counters();
  p.ddr.hits = ddrc_->channels().hit_stats();
  p.total_cycles = last_completion_;
  p.completed_txns = completed_;
  return p;
}

void RtlFabric::set_on_complete(
    unsigned m, std::function<void(const ahb::Transaction&)> fn) {
  AHBP_ASSERT(m < masters_);
  user_hooks_[m] = std::move(fn);
}

void RtlFabric::set_trace_recorder(unsigned m, traffic::TraceRecorder* rec) {
  AHBP_ASSERT(m < masters_);
  rtl_masters_[m]->set_trace_recorder(rec);
}

void RtlFabric::enable_vcd(std::ostream& os) {
  vcd_ = std::make_unique<sim::VcdWriter>(os);
  vcd_->add_signal(clock_.signal(), 1);
  vcd_->add_signal(sh_.hmaster, 8);
  vcd_->add_signal(sh_.htrans, 2);
  // Data buses are as wide as the configured datapath (HSIZE semantics:
  // a beat occupies the low size_bytes lanes of this width).
  const unsigned data_bits = cfg_.bus.data_width_bytes * 8;
  vcd_->add_signal(sh_.haddr, 32);
  vcd_->add_signal(sh_.hwdata, data_bits);
  vcd_->add_signal(sh_.hrdata, data_bits);
  vcd_->add_signal(sh_.hready, 1);
  for (unsigned m = 0; m < masters_; ++m) {
    vcd_->add_signal(columns_[m]->hbusreq, 1);
    vcd_->add_signal(*sh_.hgrant[m], 1);
  }
  vcd_->add_signal(sh_.wbuf_req, 1);
  vcd_->add_signal(sh_.wbuf_occupancy, 4);
  vcd_->add_signal(sh_.bi_permit, 1);
  vcd_->write_header();
}

void RtlFabric::enable_timeline(obs::Timeline& tl, unsigned pid) {
  tl_ = &tl;
  for (unsigned m = 0; m < masters_; ++m) {
    master_profiles_[m].timeline = &tl;
    master_profiles_[m].timeline_track =
        tl.add_track(pid, master_profiles_[m].name);
  }
  tl_bus_track_ = tl.add_track(pid, "bus");
  tl_wbuf_track_ = tl.add_track(pid, "wbuf");
  tl_last_occ_ = ~0U;
  tl_last_owner_ = 0xFF;
  tl_busy_open_ = false;
  ddrc_->channels().set_timeline(&tl, pid);
}

void RtlFabric::set_profiler(obs::SelfProfiler* p) {
  kernel_.set_profiler(p);
}

void RtlFabric::save_state(state::StateWriter& w) const {
  w.begin("rtl-fabric");
  w.put_u64(cycle_);
  w.put_u64(last_completion_);
  w.put_u64(completed_);
  w.put_u32(obs_pending_data_);
  w.put_u32(obs_beat_bytes_);
  clock_.save_state(w);
  qos_.save_state(w);
  log_.save_state(w);
  bus_profile_.save_state(w);
  w.put_u64(master_profiles_.size());
  for (const stats::MasterProfile& p : master_profiles_) {
    p.save_state(w);
  }
  for (const auto& m : rtl_masters_) {
    m->save_state(w);
  }
  wbuf_->save_state(w);
  arbiter_->save_state(w);
  ddrc_->save_state(w);
  w.put_bool(checker_ != nullptr);
  if (checker_) {
    checker_->save_state(w);
  }
  kernel_.save_signals(w);
  w.end();
}

void RtlFabric::restore_state(state::StateReader& r) {
  r.enter("rtl-fabric");
  cycle_ = r.get_u64();
  last_completion_ = r.get_u64();
  completed_ = r.get_u64();
  obs_pending_data_ = r.get_u32();
  obs_beat_bytes_ = r.get_u32();
  clock_.restore_state(r);
  qos_.restore_state(r);
  log_.restore_state(r);
  bus_profile_.restore_state(r);
  if (r.get_u64() != master_profiles_.size()) {
    throw state::StateError("RtlFabric: snapshot master count mismatch");
  }
  for (stats::MasterProfile& p : master_profiles_) {
    p.restore_state(r);
  }
  for (auto& m : rtl_masters_) {
    m->restore_state(r);
  }
  wbuf_->restore_state(r);
  arbiter_->restore_state(r);
  ddrc_->restore_state(r);
  state::expect_presence_match(r.get_bool(), checker_ != nullptr,
                               "RtlFabric checkers");
  if (checker_) {
    checker_->restore_state(r);
  }
  kernel_.restore_signals(r);
  r.leave();
}

std::string RtlFabric::dump_state() const {
  std::string s = "cycle " + std::to_string(cycle_) + "\n";
  for (unsigned m = 0; m < masters_; ++m) {
    s += "  m" + std::to_string(m) + ": " +
         std::string(rtl_masters_[m]->state_name()) + " completed=" +
         std::to_string(rtl_masters_[m]->completed()) + "\n";
  }
  s += "  wbuf: occ=" + std::to_string(wbuf_->fifo().occupancy()) +
       (wbuf_->draining() ? " draining" : "") + "\n";
  s += "  ddrc: " + std::string(ddrc_->channels().busy() ? "busy" : "idle") +
       " pending-wr=" +
       std::to_string(ddrc_->channels().pending_write_chunks()) + "\n";
  s += "  " + arbiter_->debug_string() + "\n";
  s += "  hready=" + std::string(sh_.hready.read() ? "1" : "0") +
       " htrans=" + std::to_string(sh_.htrans.read()) +
       " hmaster=" + std::to_string(sh_.hmaster.read()) + "\n";
  return s;
}

}  // namespace ahbp::rtl
