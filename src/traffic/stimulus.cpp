#include "traffic/stimulus.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "traffic/trace.hpp"

namespace ahbp::traffic {

std::string to_string(StimulusSource s) {
  return s == StimulusSource::kTrace ? "trace" : "synthetic";
}

void resolve(StimulusSpec& spec) {
  if (spec.resolved()) {
    return;
  }
  if (spec.trace_path.empty()) {
    throw std::runtime_error(
        "trace-backed stimulus needs a trace path (or pre-resolved text)");
  }
  std::ifstream in(spec.trace_path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open trace file '" + spec.trace_path +
                             "'");
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  spec.trace_text = ss.str();
  spec.trace_loaded = true;  // authoritative even when the file was empty
}

Script expand_stimulus(const StimulusSpec& spec, ahb::MasterId master,
                       unsigned bus_beat_bytes) {
  if (!spec.is_trace()) {
    // The §3.7 bus-width knob reaches the stimulus here: patterns keep the
    // bytes per transfer invariant and emit beats of the configured width.
    PatternConfig pat = spec;  // slice off the trace fields
    pat.beat_bytes = bus_beat_bytes;
    return make_script(pat, master);
  }

  const std::string origin = "master " + std::to_string(master) + " trace" +
                             (spec.trace_path.empty()
                                  ? std::string()
                                  : " '" + spec.trace_path + "'");
  // Only the unresolved branch pays for a spec copy; an already-resolved
  // spec (the common case — Platform resolves its config at construction)
  // parses straight from its own text.
  StimulusSpec loaded;
  const std::string* text = &spec.trace_text;
  if (!spec.resolved()) {
    loaded = spec;
    try {
      resolve(loaded);
    } catch (const std::runtime_error& e) {
      throw std::runtime_error(origin + ": " + e.what());
    }
    text = &loaded.trace_text;
  }

  Script script;
  try {
    std::istringstream is(*text);
    script = load_trace(is, master);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(origin + ": " + e.what());
  }
  // A trace recorded on a wide bus cannot replay on a narrower one: HSIZE
  // may never exceed the data bus width (the ahb.hsize-width checker rule
  // would flag every beat — fail early with a workload error instead).
  for (const TrafficItem& item : script) {
    if (ahb::size_bytes(item.txn.size) > bus_beat_bytes) {
      throw std::runtime_error(
          origin + ": transaction " + std::to_string(item.txn.id) + " has " +
          std::to_string(ahb::size_bytes(item.txn.size)) +
          "-byte beats but bus.data_width_bytes is " +
          std::to_string(bus_beat_bytes));
    }
  }
  return script;
}

void TraceRecorder::record_issue(sim::Cycle now, const ahb::Transaction& txn) {
  TrafficItem item;
  // Observed think time: issue relative to this port's previous
  // completion.  For the first item this is the absolute issue cycle,
  // which replay ignores (the source's gap timer starts armed at 0).
  item.gap = now - last_complete_;
  item.txn = txn;
  items_.push_back(std::move(item));
}

void TraceRecorder::record_complete(sim::Cycle now) { last_complete_ = now; }

std::string TraceRecorder::to_trace_text() const {
  std::ostringstream os;
  save_trace(os, items_);
  return os.str();
}

}  // namespace ahbp::traffic
