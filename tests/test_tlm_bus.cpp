// The method-based AHB+ bus TLM: port protocol, grant timing, write-buffer
// absorption and drain, read-after-write ordering, locked transfers,
// protocol-checker cleanliness and data integrity end to end.

#include <gtest/gtest.h>

#include <memory>

#include "assertions/assert.hpp"
#include "assertions/violation.hpp"
#include "sim/cycle_kernel.hpp"
#include "tlm/bus.hpp"
#include "tlm/ddrc.hpp"
#include "tlm/master.hpp"

namespace {

using namespace ahbp;
using namespace ahbp::tlm;

ddr::Geometry geom4() {
  ddr::Geometry g;
  g.banks = 4;
  g.rows = 64;
  g.cols = 32;
  g.col_bytes = 4;
  return g;
}

struct Rig {
  ahb::BusConfig cfg;
  ahb::QosRegisterFile qos;
  chk::ViolationLog log;
  TlmDdrc ddrc;
  sim::CycleKernel kernel;
  std::unique_ptr<AhbPlusBus> bus;

  explicit Rig(unsigned masters = 2, bool checkers = true)
      : qos(masters), ddrc(ddr::toy_timing(), geom4(), 0) {
    bus = std::make_unique<AhbPlusBus>(cfg, qos, ddrc, masters,
                                       checkers ? &log : nullptr);
    kernel.add(*bus);
  }

  /// Run one transaction through the port by hand; returns (txn, cycles).
  std::pair<ahb::Transaction, sim::Cycle> run_txn(ahb::MasterId m,
                                                  ahb::Transaction t,
                                                  sim::Cycle limit = 2000) {
    bool requested = false;
    ahb::Transaction out;
    for (sim::Cycle c = 0; c < limit; ++c) {
      if (!requested) {
        bus->request(m, t, kernel.now());
        requested = true;
      } else if (bus->poll_done(m, out)) {
        return {out, kernel.now()};
      }
      kernel.step();
    }
    ADD_FAILURE() << "transaction did not complete";
    return {out, limit};
  }
};

ahb::Transaction read_txn(ahb::Addr addr, unsigned beats) {
  ahb::Transaction t;
  t.dir = ahb::Dir::kRead;
  t.addr = addr;
  t.size = ahb::Size::kWord;
  t.burst = ahb::incr_burst_for(beats);
  t.beats = beats;
  return t;
}

ahb::Transaction write_txn(ahb::Addr addr, unsigned beats,
                           ahb::Word seed = 0x1000) {
  ahb::Transaction t = read_txn(addr, beats);
  t.dir = ahb::Dir::kWrite;
  t.data.resize(beats);
  for (unsigned i = 0; i < beats; ++i) {
    t.data[i] = seed + i;
  }
  return t;
}

TEST(TlmBus, WriteThenReadRoundtrip) {
  Rig rig;
  rig.run_txn(0, write_txn(0x100, 4, 0x40));
  const auto [rd, cyc] = rig.run_txn(0, read_txn(0x100, 4));
  ASSERT_EQ(rd.data.size(), 4u);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(rd.data[i], 0x40u + i);
  }
  EXPECT_EQ(rig.log.errors(), 0u);
}

TEST(TlmBus, TimestampsMonotone) {
  Rig rig;
  const auto [t, cyc] = rig.run_txn(0, read_txn(0x80, 4));
  EXPECT_LE(t.issued_at, t.granted_at);
  EXPECT_LE(t.granted_at, t.started_at);
  EXPECT_LT(t.started_at, t.finished_at);
  // Calibrated grant-to-start latency (§3.4 timing definition).
  EXPECT_EQ(t.started_at - t.granted_at, rig.cfg.tlm_grant_to_start);
}

TEST(TlmBus, WriteAbsorbedWhileBusIsBusy) {
  Rig rig;
  // Master 0 occupies the bus with a long read; master 1's write must be
  // absorbed by the buffer instead of waiting.
  bool m0_requested = false, m1_requested = false, m1_done = false;
  ahb::Transaction out;
  sim::Cycle m1_issue = 0, m1_fin = 0;
  for (sim::Cycle c = 0; c < 500 && !m1_done; ++c) {
    if (!m0_requested) {
      rig.bus->request(0, read_txn(0x0, 16), rig.kernel.now());
      m0_requested = true;
    }
    if (m0_requested && !m1_requested && rig.kernel.now() == 3) {
      rig.bus->request(1, write_txn(0x800, 4), rig.kernel.now());
      m1_issue = rig.kernel.now();
      m1_requested = true;
    }
    if (m1_requested && rig.bus->poll_done(1, out)) {
      m1_done = true;
      m1_fin = rig.kernel.now();
    }
    rig.kernel.step();
  }
  ASSERT_TRUE(m1_done);
  // Buffered completion: issue + absorb + beats streaming, far less than
  // waiting out a 16-beat DDR read.
  EXPECT_LE(m1_fin - m1_issue, 10u);
  EXPECT_EQ(rig.bus->write_buffer().profile().absorbed, 1u);
  // The buffered write must still land in memory (drain).
  ahb::Transaction chk_out;
  const auto [rd, cyc2] = rig.run_txn(1, read_txn(0x800, 4));
  EXPECT_EQ(rd.data[0], 0x1000u);
  EXPECT_EQ(rig.log.errors(), 0u);
}

TEST(TlmBus, ReadAfterBufferedWriteIsOrdered) {
  Rig rig;
  // Fill the buffer with a write to X while the bus is busy, then read X:
  // the read must return the buffered data (drain-before-read ordering).
  bool m0_requested = false, m1_write_done = false, m1_read_started = false;
  ahb::Transaction out;
  std::vector<ahb::Word> read_data;
  for (sim::Cycle c = 0; c < 1000; ++c) {
    if (!m0_requested) {
      rig.bus->request(0, read_txn(0x0, 16), rig.kernel.now());
      m0_requested = true;
    }
    if (rig.kernel.now() == 3 && !m1_write_done && !m1_read_started) {
      rig.bus->request(1, write_txn(0x900, 2, 0x77), rig.kernel.now());
      m1_read_started = true;  // request in flight
    }
    if (m1_read_started && !m1_write_done &&
        rig.bus->poll_done(1, out)) {
      m1_write_done = true;
      rig.bus->request(1, read_txn(0x900, 2), rig.kernel.now());
    } else if (m1_write_done && rig.bus->poll_done(1, out)) {
      read_data = out.data;
      break;
    }
    rig.kernel.step();
  }
  ASSERT_EQ(read_data.size(), 2u);
  EXPECT_EQ(read_data[0], 0x77u);
  EXPECT_EQ(read_data[1], 0x78u);
  EXPECT_EQ(rig.log.errors(), 0u);
}

TEST(TlmBus, LockedTransferHoldsBus) {
  Rig rig;
  ahb::Transaction locked = write_txn(0x400, 4);
  locked.locked = true;
  const auto [t, cyc] = rig.run_txn(0, locked);
  EXPECT_GE(t.finished_at, t.started_at);
  EXPECT_EQ(rig.log.errors(), 0u);
}

TEST(TlmBus, QuiescentOnlyWhenFullyDrained) {
  Rig rig;
  EXPECT_TRUE(rig.bus->quiescent());
  rig.bus->request(0, write_txn(0x100, 4), rig.kernel.now());
  EXPECT_FALSE(rig.bus->quiescent());
  ahb::Transaction out;
  for (sim::Cycle c = 0; c < 500; ++c) {
    rig.kernel.step();
    rig.bus->poll_done(0, out);
    if (rig.bus->quiescent()) {
      break;
    }
  }
  EXPECT_TRUE(rig.bus->quiescent());
}

TEST(TlmBus, PollGrantReflectsOwnership) {
  Rig rig;
  EXPECT_EQ(rig.bus->poll_grant(0), GrantPoll::kWait);
  rig.bus->request(0, read_txn(0x0, 4), rig.kernel.now());
  bool saw_granted = false;
  ahb::Transaction out;
  for (sim::Cycle c = 0; c < 200 && !rig.bus->poll_done(0, out); ++c) {
    if (rig.bus->poll_grant(0) == GrantPoll::kGranted) {
      saw_granted = true;
    }
    rig.kernel.step();
  }
  EXPECT_TRUE(saw_granted);
  EXPECT_EQ(rig.bus->poll_grant(0), GrantPoll::kWait);  // back to idle
}

TEST(TlmBus, DoubleRequestAsserts) {
  Rig rig;
  rig.bus->request(0, read_txn(0x0, 1), 0);
  EXPECT_THROW(rig.bus->request(0, read_txn(0x4, 1), 0),
               chk::ModelAssertError);
}

TEST(TlmBus, MalformedTransactionAsserts) {
  Rig rig;
  ahb::Transaction bad = read_txn(0x2, 1);  // misaligned word
  EXPECT_THROW(rig.bus->request(0, bad, 0), chk::ModelAssertError);
}

TEST(TlmBus, WriteBufferDisabledStillCorrect) {
  Rig rig;
  rig.cfg.write_buffer_enabled = false;
  Rig rig2(2);
  rig2.cfg.write_buffer_enabled = false;
  // Rebuild with the modified config.
  ahb::QosRegisterFile qos(2);
  TlmDdrc ddrc(ddr::toy_timing(), geom4(), 0);
  chk::ViolationLog log;
  ahb::BusConfig cfg;
  cfg.write_buffer_enabled = false;
  AhbPlusBus bus(cfg, qos, ddrc, 2, &log);
  sim::CycleKernel kernel;
  kernel.add(bus);
  bus.request(0, write_txn(0x100, 4, 0x9), kernel.now());
  ahb::Transaction out;
  for (sim::Cycle c = 0; c < 500 && !bus.poll_done(0, out); ++c) {
    kernel.step();
  }
  EXPECT_EQ(bus.write_buffer().profile().absorbed, 0u);
  bus.request(0, read_txn(0x100, 1), kernel.now());
  for (sim::Cycle c = 0; c < 500 && !bus.poll_done(0, out); ++c) {
    kernel.step();
  }
  EXPECT_EQ(out.data.at(0), 0x9u);
  EXPECT_EQ(log.errors(), 0u);
}

TEST(TlmBus, MasterComponentDrivesScript) {
  // End-to-end with TlmMaster components and generated traffic.
  ahb::BusConfig cfg;
  ahb::QosRegisterFile qos(2);
  TlmDdrc ddrc(ddr::ddr266(), geom4(), 0);
  chk::ViolationLog log;
  AhbPlusBus bus(cfg, qos, ddrc, 2, &log);
  sim::CycleKernel kernel;
  kernel.add(bus);

  traffic::PatternConfig pat;
  pat.kind = traffic::PatternKind::kCpu;
  pat.items = 30;
  pat.base = 0;
  pat.span = 8192;
  pat.seed = 5;
  TlmMaster m0(0, bus, traffic::make_script(pat, 0));
  pat.base = 8192;
  TlmMaster m1(1, bus, traffic::make_script(pat, 1));
  kernel.add(m0);
  kernel.add(m1);

  kernel.run_until(
      [&] { return m0.finished() && m1.finished() && bus.quiescent(); },
      100000);
  EXPECT_TRUE(m0.finished());
  EXPECT_TRUE(m1.finished());
  EXPECT_EQ(m0.completed(), 30u);
  EXPECT_EQ(m1.completed(), 30u);
  EXPECT_EQ(log.errors(), 0u) << log.to_string();
  EXPECT_GT(bus.bus_profile().utilization(), 0.0);
  EXPECT_EQ(bus.master_profiles()[0].reads + bus.master_profiles()[0].writes,
            30u);
}

TEST(TlmBus, ChecksRunWhenEnabled) {
  Rig rig;
  rig.run_txn(0, read_txn(0x0, 4));
  // The checker observed every cycle (no violations on a clean run).
  EXPECT_EQ(rig.log.count(), 0u);
}

}  // namespace
