#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "traffic/generator.hpp"

/// \file trace_bin.hpp
/// Binary, seekable trace format — the text format's fast sibling.
///
/// The text format (traffic/trace.hpp) is the human-facing one: greppable,
/// hand-editable, diff-friendly.  Parsing it dominates replay of recorded
/// workloads (BENCH_TRACE: ~13x slower than synthetic expansion), which
/// caps the million-transaction replay story.  This module provides the
/// same Script round-trip as a length-prefixed binary container that loads
/// by copying fixed-width fields instead of tokenizing, and that carries a
/// record index so a window of records [first, first+count) is reached by
/// one seek instead of parsing the whole prefix.
///
/// Layout (all integers little-endian, independent of host endianness):
///
///   header (40 bytes)
///     0   u8[8]  magic       "\x89AHBPTRC" (high bit first, like PNG: a
///                            7-bit-stripped or CRLF-translated copy fails
///                            the magic check instead of misparsing)
///     8   u32    version     = 1 (readers reject other versions)
///     12  u32    reserved    = 0
///     16  u64    records     transaction count
///     24  u64    index_offset byte offset of the record index, 0 = none
///     32  u64    payload_bytes record bytes following the header
///   records (payload_bytes bytes)
///     u64 gap, u64 addr,
///     u8 dir (0=R 1=W), u8 size (ahb::Size), u8 burst (ahb::Burst),
///     u8 flags (bit0 = locked, others reserved-zero),
///     u32 beats, then for writes exactly `beats` u64 data words
///   index (records x u64, at index_offset)
///     absolute byte offset of each record from the start of the file
///
/// `save_trace_bin` always writes the trailing index; `load_trace_bin`
/// tolerates index-less files (index_offset = 0) by scanning, so truncated
/// tooling output stays loadable.  Everything a loaded record is allowed to
/// contain is validated exactly as the text loader validates it (enum
/// ranges, beat ceilings, ahb::structurally_valid) — a corrupt or crafted
/// file throws with the record number, it never produces a malformed
/// transaction.
///
/// The read path is zero-copy: loaders take a `std::string_view` over the
/// bytes wherever they live — a resolved `StimulusSpec::trace_text`, an
/// embedded checkpoint payload, or a `MappedTrace` (mmap with a plain-read
/// fallback) for files too big to slurp.

namespace ahbp::traffic {

/// Format version written and accepted by this build.
inline constexpr std::uint32_t kTraceBinVersion = 1;

/// Magic prefix ("\x89AHBPTRC").  Exposed for tests and format sniffing.
inline constexpr unsigned char kTraceBinMagic[8] = {0x89, 'A', 'H', 'B',
                                                    'P',  'T', 'R', 'C'};

/// True when `bytes` starts with the binary-trace magic — the format
/// auto-detection `expand_stimulus` and the trace tools key off.  A text
/// trace can never collide: its first byte is printable ASCII.
bool is_trace_bin(std::string_view bytes) noexcept;

/// Header facts of a binary trace, without decoding any record.
struct TraceBinInfo {
  std::uint32_t version = 0;
  std::uint64_t records = 0;
  std::uint64_t index_offset = 0;   ///< 0 = no index present
  std::uint64_t payload_bytes = 0;  ///< record bytes after the header
  std::uint64_t file_bytes = 0;     ///< total image size
  bool indexed() const noexcept { return index_offset != 0; }
};

/// Parse and validate the header (magic, version, sizes consistent with
/// the image).  Throws std::runtime_error on anything malformed.
TraceBinInfo trace_bin_info(std::string_view bytes);

/// How much of the image a load actually touched — the observable proof
/// that window loads seek instead of parsing the prefix (pinned by tests).
struct TraceBinReadStats {
  std::uint64_t bytes_examined = 0;  ///< header + index + record bytes read
  std::uint64_t records_decoded = 0;
};

/// Serialize `script` (header + records + trailing index).  Returns the
/// number of records written.  The stream should be binary-mode; output is
/// byte-deterministic (same script, same bytes — the round-trip identity
/// the tests pin).
std::size_t save_trace_bin(std::ostream& os, const Script& script);

/// save_trace_bin into a string (e.g. a StimulusSpec::trace_text or a
/// checkpoint embedding).
std::string trace_bin_bytes(const Script& script);

/// Decode a whole binary trace.  `master` stamps ownership exactly like
/// the text loader; ids are 1-based record positions.  Throws
/// std::runtime_error with the record number on any malformed record.
Script load_trace_bin(std::string_view bytes, ahb::MasterId master,
                      TraceBinReadStats* stats = nullptr);

/// Decode the window [first, first+count).  `first` past the end yields an
/// empty script; `count` clamps to the remaining records.  With an index
/// this is one seek to record `first` (prefix records are never read —
/// `stats->bytes_examined` proves it); without one the prefix is skipped by
/// record-header hops, still never decoding data words.  Ids restart at 1:
/// a slice is a standalone script.
Script load_trace_bin_window(std::string_view bytes, ahb::MasterId master,
                             std::uint64_t first, std::uint64_t count,
                             TraceBinReadStats* stats = nullptr);

/// A read-only file image for the zero-copy loaders: mmap(2) where
/// available (no copy of the trace into process memory — many consumers
/// can share one page-cached file), falling back to a plain buffered read
/// anywhere mmap is unavailable or fails.  Rejects directories and
/// unreadable files with a clear error either way.
class MappedTrace {
 public:
  explicit MappedTrace(const std::string& path);
  ~MappedTrace();

  MappedTrace(const MappedTrace&) = delete;
  MappedTrace& operator=(const MappedTrace&) = delete;

  /// The file image (valid for the lifetime of this object).
  std::string_view bytes() const noexcept {
    return {static_cast<const char*>(data_), size_};
  }

  /// True when the image is a live mapping rather than a private copy.
  bool zero_copy() const noexcept { return mapped_; }

 private:
  const void* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::string fallback_;  ///< owns the bytes when !mapped_
};

}  // namespace ahbp::traffic
