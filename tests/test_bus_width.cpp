// The §3.7 bus-width knob, end to end: beat-shape math per width, scenario
// validation/round-trip of non-default widths, the DDR chunker on wide
// beats, the hsize-width protocol rule, and the acceptance sweep — TLM and
// RTL agree at every width of {1,2,4,8} bytes and a bandwidth-bound
// workload's cycle count never increases as the bus widens.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ahb/address.hpp"
#include "ahb/types.hpp"
#include "assertions/assert.hpp"
#include "assertions/bus_checker.hpp"
#include "core/platform.hpp"
#include "core/workloads.hpp"
#include "ddr/scheduler.hpp"
#include "scenario/scenario.hpp"
#include "traffic/generator.hpp"

namespace {

using namespace ahbp;

constexpr unsigned kWidths[] = {1, 2, 4, 8};

// ------------------------------------------------------------ type math --

TEST(BusWidthTypes, ValidBeatBytesIsPowersOfTwoUpTo8) {
  for (const unsigned w : kWidths) {
    EXPECT_TRUE(ahb::valid_beat_bytes(w));
  }
  for (const unsigned w : {0u, 3u, 5u, 6u, 7u, 16u}) {
    EXPECT_FALSE(ahb::valid_beat_bytes(w));
  }
}

TEST(BusWidthTypes, SizeForBytesInvertsSizeBytes) {
  for (const unsigned w : kWidths) {
    EXPECT_EQ(ahb::size_bytes(ahb::size_for_bytes(w)), w);
  }
}

TEST(BusWidthTypes, BeatBytesForClampsToTransferAndBus) {
  EXPECT_EQ(ahb::beat_bytes_for(16, 4), 4u);  // bus-limited
  EXPECT_EQ(ahb::beat_bytes_for(16, 8), 8u);
  EXPECT_EQ(ahb::beat_bytes_for(4, 8), 4u);   // transfer-limited
  EXPECT_EQ(ahb::beat_bytes_for(1, 8), 1u);
}

// ----------------------------------------------------- traffic shaping --

traffic::PatternConfig pattern(traffic::PatternKind kind, unsigned width) {
  traffic::PatternConfig c;
  c.kind = kind;
  c.seed = 7;
  c.items = 32;
  c.base = 0x10000;
  c.span = 1 << 18;
  c.beat_bytes = width;
  return c;
}

TEST(BusWidthTraffic, DmaMovesSameBytesInWidthScaledBeats) {
  for (const unsigned w : kWidths) {
    auto cfg = pattern(traffic::PatternKind::kDma, w);
    cfg.dma_burst_beats = 16;  // 64 bytes on the 32-bit reference bus
    const traffic::Script s = traffic::make_script(cfg, 0);
    ASSERT_FALSE(s.empty());
    for (const traffic::TrafficItem& item : s) {
      EXPECT_EQ(item.txn.bytes(), 64u) << "width " << w;
      EXPECT_EQ(item.txn.beats, 64u / w) << "width " << w;
      EXPECT_EQ(ahb::size_bytes(item.txn.size), w) << "width " << w;
      EXPECT_TRUE(ahb::structurally_valid(item.txn)) << "width " << w;
    }
  }
}

TEST(BusWidthTraffic, RtStreamKeepsItsFrameQuantum) {
  for (const unsigned w : kWidths) {
    const traffic::Script s =
        traffic::make_script(pattern(traffic::PatternKind::kRtStream, w), 1);
    for (const traffic::TrafficItem& item : s) {
      EXPECT_EQ(item.txn.bytes(), 32u) << "width " << w;
      EXPECT_EQ(item.txn.beats, 32u / w) << "width " << w;
    }
  }
}

TEST(BusWidthTraffic, CpuLinesAndScalarsScale) {
  for (const unsigned w : kWidths) {
    const traffic::Script s =
        traffic::make_script(pattern(traffic::PatternKind::kCpu, w), 2);
    for (const traffic::TrafficItem& item : s) {
      const auto bytes = item.txn.bytes();
      // Cache-line transfers move 16 bytes, scalar accesses one 32-bit
      // datum (which a wide bus still moves as a single narrow beat).
      EXPECT_TRUE(bytes == 16 || bytes == 4) << "width " << w;
      EXPECT_LE(ahb::size_bytes(item.txn.size), w) << "width " << w;
      EXPECT_TRUE(ahbp::ahb::structurally_valid(item.txn)) << "width " << w;
    }
  }
}

TEST(BusWidthTraffic, RandomNeverExceedsTheBusWidth) {
  for (const unsigned w : kWidths) {
    const traffic::Script s =
        traffic::make_script(pattern(traffic::PatternKind::kRandom, w), 3);
    bool any_at_width = false;
    for (const traffic::TrafficItem& item : s) {
      EXPECT_LE(ahb::size_bytes(item.txn.size), w) << "width " << w;
      any_at_width |= ahb::size_bytes(item.txn.size) == w;
      EXPECT_TRUE(ahb::structurally_valid(item.txn)) << "width " << w;
    }
    EXPECT_TRUE(any_at_width) << "width " << w << " never used full beats";
  }
}

TEST(BusWidthTraffic, DefaultWidthReproducesLegacyWordScripts) {
  // The 4-byte default must generate exactly the pre-widening stimulus —
  // the Table-1 calibration depends on it.
  auto legacy = pattern(traffic::PatternKind::kDma, 4);
  legacy.dma_burst_beats = 8;
  const traffic::Script s = traffic::make_script(legacy, 0);
  for (const traffic::TrafficItem& item : s) {
    EXPECT_EQ(item.txn.size, ahb::Size::kWord);
    EXPECT_EQ(item.txn.beats, 8u);
    EXPECT_EQ(item.txn.burst, ahb::Burst::kIncr8);
  }
}

TEST(BusWidthTraffic, InvalidWidthThrows) {
  auto cfg = pattern(traffic::PatternKind::kDma, 3);
  EXPECT_THROW(traffic::make_script(cfg, 0), chk::ModelAssertError);
}

TEST(BusWidthTraffic, MakeScriptsThreadsTheBusWidth) {
  core::PlatformConfig cfg = core::default_platform(1, 5, 10);
  cfg.masters[0].traffic.kind = traffic::PatternKind::kDma;
  cfg.bus.data_width_bytes = 8;
  const auto scripts = core::expand_stimulus(cfg);
  ASSERT_EQ(scripts.size(), 1u);
  for (const traffic::TrafficItem& item : scripts[0]) {
    EXPECT_EQ(item.txn.size, ahb::Size::kDword);
  }
}

TEST(BusWidthTraffic, StreamPatternsTolerateBeatAlignedOddBases) {
  // A window base that is beat-aligned but not burst-aligned (0x10008 at
  // width 8): the DMA/RT cursors must round up to the burst stride so no
  // burst straddles a 1KB boundary.
  for (const auto kind :
       {traffic::PatternKind::kDma, traffic::PatternKind::kRtStream}) {
    auto cfg = pattern(kind, 8);
    cfg.base = 0x10008;
    const traffic::Script s = traffic::make_script(cfg, 0);
    ASSERT_FALSE(s.empty());
    for (const traffic::TrafficItem& item : s) {
      EXPECT_TRUE(ahb::burst_within_1kb(item.txn.addr, item.txn.size,
                                        item.txn.burst, item.txn.beats));
      EXPECT_GE(item.txn.addr, cfg.base);
      EXPECT_LE(item.txn.addr + item.txn.bytes(), cfg.base + cfg.span);
    }
  }
}

TEST(BusWidthTraffic, BurstsNeverStraddle1KBAtAnyWidth) {
  for (const unsigned w : kWidths) {
    for (const auto kind :
         {traffic::PatternKind::kCpu, traffic::PatternKind::kDma,
          traffic::PatternKind::kRtStream, traffic::PatternKind::kRandom}) {
      const traffic::Script s = traffic::make_script(pattern(kind, w), 0);
      for (const traffic::TrafficItem& item : s) {
        EXPECT_TRUE(ahb::burst_within_1kb(item.txn.addr, item.txn.size,
                                          item.txn.burst, item.txn.beats))
            << traffic::to_string(kind) << " width " << w;
        EXPECT_EQ(item.txn.addr % ahb::size_bytes(item.txn.size), 0u);
      }
    }
  }
}

// ------------------------------------------------------------- scenario --

TEST(BusWidthScenario, NonDefaultWidthRoundTrips) {
  for (const unsigned w : kWidths) {
    core::PlatformConfig cfg = core::default_platform(1, 1, 10);
    cfg.bus.data_width_bytes = w;
    const core::PlatformConfig back =
        scenario::parse(scenario::serialize(cfg));
    EXPECT_EQ(back.bus.data_width_bytes, w);
  }
}

TEST(BusWidthScenario, RejectsNonPowerOfTwoWidths) {
  const auto with_width = [](const std::string& v) {
    return "[bus]\ndata_width_bytes = " + v + "\n";
  };
  EXPECT_THROW(scenario::parse(with_width("3")), scenario::ScenarioError);
  EXPECT_THROW(scenario::parse(with_width("5")), scenario::ScenarioError);
  EXPECT_THROW(scenario::parse(with_width("0")), scenario::ScenarioError);
  EXPECT_THROW(scenario::parse(with_width("16")), scenario::ScenarioError);
  EXPECT_NO_THROW(scenario::parse(with_width("8")));
}

TEST(BusWidthScenario, SweepOverrideKeyApplies) {
  core::PlatformConfig cfg = core::default_platform(1, 1, 10);
  scenario::apply_key(cfg, "bus.data_width_bytes", "2");
  EXPECT_EQ(cfg.bus.data_width_bytes, 2u);
  EXPECT_THROW(scenario::apply_key(cfg, "bus.data_width_bytes", "6"),
               scenario::ScenarioError);
}

// ------------------------------------------------------------- checkers --

TEST(BusWidthChecker, FlagsBeatsWiderThanTheBus) {
  chk::ViolationLog log;
  chk::BusChecker checker(
      chk::CheckerConfig{1, 0, false, /*bus_width_bytes=*/4}, log);
  chk::BusCycleView v;
  v.cycle = 1;
  v.hmaster = 0;
  v.request_mask = 1;
  v.htrans = ahb::Trans::kNonSeq;
  v.hburst = ahb::Burst::kSingle;
  v.hsize = ahb::Size::kDword;  // 8-byte beat on a 4-byte bus
  v.haddr = 0x100;
  v.hready = true;
  checker.on_cycle(v);
  EXPECT_EQ(log.errors(), 1u) << log.to_string();
}

TEST(BusWidthChecker, AcceptsFullWidthBeats) {
  chk::ViolationLog log;
  chk::BusChecker checker(
      chk::CheckerConfig{1, 0, false, /*bus_width_bytes=*/8}, log);
  chk::BusCycleView v;
  v.cycle = 1;
  v.hmaster = 0;
  v.request_mask = 1;
  v.htrans = ahb::Trans::kNonSeq;
  v.hburst = ahb::Burst::kSingle;
  v.hsize = ahb::Size::kDword;
  v.haddr = 0x100;
  v.hready = true;
  checker.on_cycle(v);
  EXPECT_EQ(log.errors(), 0u) << log.to_string();
}

// ------------------------------------------------- DDR wide-beat chunks --

TEST(BusWidthDdr, WideBeatsChunkIntoFewCasCommands) {
  // 8 dword beats = 64 bytes = 16 four-byte columns in one row: the chunker
  // must ride the wide column stride into one CAS, not one CAS per beat.
  ddr::Geometry geom;
  geom.banks = 4;
  geom.rows = 64;
  geom.cols = 64;
  geom.col_bytes = 4;
  ddr::DdrcEngine engine(ddr::toy_timing(), geom);
  ddr::MemRequest req;
  req.is_write = false;
  req.addr = 0;
  req.beat_bytes = 8;
  req.beats = 8;
  req.burst = ahb::Burst::kIncr8;
  engine.begin(req, 0);
  unsigned cas = 0;
  sim::Cycle now = 0;
  while (!engine.done() && now < 1000) {
    ++now;
    const ddr::Command cmd = engine.step(now);
    if (cmd.kind == ddr::CmdKind::kRead) {
      ++cas;
    }
    if (engine.read_beat_available(now)) {
      engine.take_read_beat(now);
    }
  }
  ASSERT_TRUE(engine.done());
  EXPECT_EQ(cas, 1u);
}

// ----------------------------------------- the acceptance-criterion sweep --

TEST(BusWidthEquivalence, ModelsAgreeAndCyclesNeverIncreaseWithWidth) {
  // Bandwidth-bound workload: two DMA masters streaming back-to-back.
  std::vector<sim::Cycle> tlm_cycles, rtl_cycles;
  for (const unsigned w : kWidths) {
    core::PlatformConfig cfg = core::default_platform(2, 11, 40);
    for (auto& m : cfg.masters) {
      m.traffic.kind = traffic::PatternKind::kDma;
      m.traffic.dma_burst_beats = 16;
    }
    cfg.bus.data_width_bytes = w;
    cfg.max_cycles = 400000;

    const core::SimResult t = core::run_tlm(cfg);
    const core::SimResult r = core::run_rtl(cfg);
    ASSERT_TRUE(t.finished) << "tlm width " << w;
    ASSERT_TRUE(r.finished) << "rtl width " << w;
    EXPECT_EQ(t.protocol_errors, 0u)
        << "width " << w << "\n" << t.first_violations;
    EXPECT_EQ(r.protocol_errors, 0u)
        << "width " << w << "\n" << r.first_violations;
    EXPECT_EQ(t.completed, r.completed) << "width " << w;

    // The Table-1 accuracy contract holds at every width.
    const double err =
        std::abs(static_cast<double>(t.cycles) -
                 static_cast<double>(r.cycles)) /
        static_cast<double>(r.cycles);
    EXPECT_LT(err, 0.15) << "width " << w << ": tlm=" << t.cycles
                         << " rtl=" << r.cycles;
    tlm_cycles.push_back(t.cycles);
    rtl_cycles.push_back(r.cycles);
  }
  // §3.7: widening the bus never costs cycles on a bandwidth-bound run...
  for (std::size_t i = 1; i < tlm_cycles.size(); ++i) {
    EXPECT_LE(tlm_cycles[i], tlm_cycles[i - 1]) << "tlm width step " << i;
    EXPECT_LE(rtl_cycles[i], rtl_cycles[i - 1]) << "rtl width step " << i;
  }
  // ...and 8x the width buys a real speedup end to end.
  EXPECT_LT(tlm_cycles.back() * 2, tlm_cycles.front());
  EXPECT_LT(rtl_cycles.back() * 2, rtl_cycles.front());
}

}  // namespace
