#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ahb/types.hpp"
#include "state/snapshot.hpp"

/// \file storage.hpp
/// Sparse byte-addressable backing store for the DDR device.
///
/// The paper abstracts the data path (§3.3); data *correctness* still
/// matters for validating the two models against each other, so the store
/// keeps real bytes.  Pages materialize on first touch; untouched memory
/// reads as zero.

namespace ahbp::ddr {

class SparseMemory {
 public:
  static constexpr std::size_t kPageBytes = 4096;

  /// Read `bytes` (1..8) little-endian starting at `addr`.
  ahb::Word read(ahb::Addr addr, unsigned bytes) const;

  /// Write the low `bytes` (1..8) of `value` little-endian at `addr`.
  void write(ahb::Addr addr, ahb::Word value, unsigned bytes);

  /// Number of materialized pages (for tests / memory diagnostics).
  std::size_t pages() const noexcept { return pages_.size(); }

  /// Snapshot the storage *deltas*: only materialized pages are written,
  /// sorted by page base so the byte stream is canonical (restore-then-save
  /// reproduces it bit-for-bit regardless of hash-map iteration order).
  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);

 private:
  const std::vector<std::uint8_t>* find_page(ahb::Addr page_base) const;
  std::vector<std::uint8_t>& touch_page(ahb::Addr page_base);

  std::unordered_map<ahb::Addr, std::vector<std::uint8_t>> pages_;
};

}  // namespace ahbp::ddr
