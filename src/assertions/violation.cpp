#include "assertions/violation.hpp"

#include <sstream>

namespace ahbp::chk {

void ViolationLog::record(Severity sev, sim::Cycle cycle, std::string rule,
                          std::string detail) {
  if (sev == Severity::kError) {
    ++errors_;
  }
  violations_.push_back(
      Violation{sev, cycle, std::move(rule), std::move(detail)});
}

std::size_t ViolationLog::count_rule(std::string_view rule) const noexcept {
  std::size_t n = 0;
  for (const Violation& v : violations_) {
    if (v.rule == rule) {
      ++n;
    }
  }
  return n;
}

std::string ViolationLog::to_string(std::size_t max) const {
  std::ostringstream ss;
  std::size_t shown = 0;
  for (const Violation& v : violations_) {
    if (shown++ == max) {
      ss << "... (" << violations_.size() - max << " more)\n";
      break;
    }
    ss << (v.severity == Severity::kError ? "[ERROR]" : "[warn ]") << " @"
       << v.cycle << " " << v.rule << ": " << v.detail << "\n";
  }
  return ss.str();
}

}  // namespace ahbp::chk
