#include "rtl/detail.hpp"

#include <bit>
#include <string>

namespace ahbp::rtl {

namespace {
std::string dname(unsigned i, const char* leaf) {
  return "d" + std::to_string(i) + "." + leaf;
}
}  // namespace

DetailLayer::DetailLayer(sim::EventKernel& kernel, SharedWires& shared,
                         std::vector<MasterWires*> columns,
                         const ddr::ChannelSet& channels,
                         const sim::Cycle* now)
    : sh_(shared), cols_(std::move(columns)), set_(channels), now_(now) {
  for (unsigned i = 0; i < cols_.size(); ++i) {
    make_column_detail(kernel, i);
  }
  make_datapath_detail(kernel);
  make_arbiter_detail(kernel);
  make_ddrc_detail(kernel);
  edge_proc_ = std::make_unique<sim::Process>(kernel, "rt-detail",
                                              [this] { at_edge(); });
}

void DetailLayer::bind_clock(sim::Signal<bool>& clk) {
  clk.subscribe(*edge_proc_, sim::Edge::kPos);
}

void DetailLayer::make_column_detail(sim::EventKernel& k, unsigned i) {
  ColumnDetail d;
  d.haddr_r = std::make_unique<sim::Signal<std::uint64_t>>(
      k, dname(i, "haddr_r"));
  d.hwdata_r = std::make_unique<sim::Signal<std::uint64_t>>(
      k, dname(i, "hwdata_r"));
  d.htrans_r = std::make_unique<sim::Signal<std::uint8_t>>(
      k, dname(i, "htrans_r"));
  d.haddr_next = std::make_unique<sim::Signal<std::uint64_t>>(
      k, dname(i, "haddr_next"));
  d.size_bytes_w = std::make_unique<sim::Signal<std::uint8_t>>(
      k, dname(i, "size_bytes"));
  d.active_w = std::make_unique<sim::Signal<bool>>(k, dname(i, "active"));
  signal_count_ += 6;

  MasterWires* col = cols_[i];
  sim::Signal<std::uint64_t>* next = d.haddr_next.get();
  sim::Signal<std::uint8_t>* sizew = d.size_bytes_w.get();
  sim::Signal<bool>* act = d.active_w.get();
  // Combinational cone: the sequential-address incrementer every AHB
  // master contains, plus the HSIZE decoder and activity wire.
  d.incr_proc = std::make_unique<sim::Process>(
      k, dname(i, "incr"), [col, next, sizew, act] {
        const auto size = unpack_size(col->hsize.read());
        const std::uint8_t bytes =
            static_cast<std::uint8_t>(ahb::size_bytes(size));
        sizew->write(bytes);
        next->write(col->haddr.read() + bytes);
        act->write(unpack_trans(col->htrans.read()) != ahb::Trans::kIdle);
      });
  col->haddr.subscribe(*d.incr_proc);
  col->hsize.subscribe(*d.incr_proc);
  col->htrans.subscribe(*d.incr_proc);
  col_detail_.push_back(std::move(d));
}

void DetailLayer::make_datapath_detail(sim::EventKernel& k) {
  for (unsigned b = 0; b < 8; ++b) {
    wlane_.push_back(std::make_unique<sim::Signal<std::uint8_t>>(
        k, "dp.wlane" + std::to_string(b)));
    rlane_.push_back(std::make_unique<sim::Signal<std::uint8_t>>(
        k, "dp.rlane" + std::to_string(b)));
    signal_count_ += 2;
  }
  hrdata_r_ =
      std::make_unique<sim::Signal<std::uint64_t>>(k, "dp.hrdata_r");
  ++signal_count_;

  // Byte-lane steering: real write datapaths route HWDATA through per-lane
  // byte enables; the read path mirrors it.
  wlane_proc_ = std::make_unique<sim::Process>(k, "dp.wsteer", [this] {
    const std::uint64_t w = sh_.hwdata.read();
    for (unsigned b = 0; b < 8; ++b) {
      wlane_[b]->write(static_cast<std::uint8_t>((w >> (8 * b)) & 0xFF));
    }
  });
  sh_.hwdata.subscribe(*wlane_proc_);

  rlane_proc_ = std::make_unique<sim::Process>(k, "dp.rsteer", [this] {
    const std::uint64_t w = sh_.hrdata.read();
    for (unsigned b = 0; b < 8; ++b) {
      rlane_[b]->write(static_cast<std::uint8_t>((w >> (8 * b)) & 0xFF));
    }
  });
  sh_.hrdata.subscribe(*rlane_proc_);
}

void DetailLayer::make_arbiter_detail(sim::EventKernel& k) {
  req_mask_w_ =
      std::make_unique<sim::Signal<std::uint32_t>>(k, "arb.req_mask");
  req_count_w_ =
      std::make_unique<sim::Signal<std::uint8_t>>(k, "arb.req_count");
  first_req_w_ =
      std::make_unique<sim::Signal<std::uint8_t>>(k, "arb.first_req");
  signal_count_ += 3;
  for (unsigned i = 0; i + 1 < cols_.size(); ++i) {
    stage_pass_.push_back(std::make_unique<sim::Signal<bool>>(
        k, "arb.pass" + std::to_string(i)));
    ++signal_count_;
  }

  // The request-population cone of the arbiter: mask, population count and
  // fixed-priority encode — the wires stages 1 and 7 are built from.
  arb_proc_ = std::make_unique<sim::Process>(k, "arb.cone", [this] {
    std::uint32_t mask = 0;
    for (unsigned i = 0; i + 1 < cols_.size(); ++i) {
      if (cols_[i]->hbusreq.read()) {
        mask |= 1U << i;
      }
    }
    if (sh_.wbuf_req.read()) {
      mask |= 1U << (cols_.size() - 1);
    }
    req_mask_w_->write(mask);
    req_count_w_->write(static_cast<std::uint8_t>(std::popcount(mask)));
    first_req_w_->write(static_cast<std::uint8_t>(
        mask ? std::countr_zero(mask) : 0xFF));
    for (unsigned i = 0; i < stage_pass_.size(); ++i) {
      stage_pass_[i]->write((mask & (1U << i)) != 0);
    }
  });
  for (unsigned i = 0; i + 1 < cols_.size(); ++i) {
    cols_[i]->hbusreq.subscribe(*arb_proc_);
  }
  sh_.wbuf_req.subscribe(*arb_proc_);
}

void DetailLayer::make_ddrc_detail(sim::EventKernel& k) {
  static const char* kTimerNames[] = {"trcd", "tras", "trp", "trc", "twr"};
  // One FSM register block per bank of *every* channel (a sharded design
  // pays the register cost per channel; single-channel names stay stable).
  for (std::uint32_t ch = 0; ch < set_.channels(); ++ch) {
    const std::string chpre =
        set_.channels() == 1 ? "ddrc." : "ddrc.c" + std::to_string(ch) + ".";
    const std::uint32_t banks = set_.engine(ch).banks().banks();
    for (std::uint32_t b = 0; b < banks; ++b) {
      BankDetail d;
      const std::string pre = chpre + "b" + std::to_string(b) + ".";
      d.state_onehot =
          std::make_unique<sim::Signal<std::uint8_t>>(k, pre + "state1h");
      d.row_r = std::make_unique<sim::Signal<std::uint32_t>>(k, pre + "row");
      d.ready_timer =
          std::make_unique<sim::Signal<std::uint32_t>>(k, pre + "timer");
      signal_count_ += 3;
      for (const char* t : kTimerNames) {
        d.timers.push_back(
            std::make_unique<sim::Signal<std::uint32_t>>(k, pre + t));
        ++signal_count_;
      }
      banks_.push_back(std::move(d));
      bank_of_.emplace_back(ch, b);
    }
  }
  wq_level_ = std::make_unique<sim::Signal<std::uint32_t>>(k, "ddrc.wq");
  xfer_beat_ = std::make_unique<sim::Signal<std::uint32_t>>(k, "ddrc.beat");
  signal_count_ += 2;
  for (std::uint32_t ch = 0; ch < set_.channels(); ++ch) {
    const std::string name = set_.channels() == 1
                                 ? "ddrc.refctr"
                                 : "ddrc.c" + std::to_string(ch) + ".refctr";
    refresh_ctr_.push_back(
        std::make_unique<sim::Signal<std::uint32_t>>(k, name));
    ++signal_count_;
  }

  // Data FIFOs between the AHB side and the DRAM side: 8 words each plus
  // head/tail pointers — the registers a real controller clocks data
  // through (the abstract engine moves data directly; these cells shadow
  // the same values at RT granularity).
  for (unsigned i = 0; i < 8; ++i) {
    rd_fifo_.push_back(std::make_unique<sim::Signal<std::uint64_t>>(
        k, "ddrc.rdfifo" + std::to_string(i)));
    wr_fifo_.push_back(std::make_unique<sim::Signal<std::uint64_t>>(
        k, "ddrc.wrfifo" + std::to_string(i)));
    signal_count_ += 2;
  }
  rd_ptr_ = std::make_unique<sim::Signal<std::uint8_t>>(k, "ddrc.rdptr");
  wr_ptr_ = std::make_unique<sim::Signal<std::uint8_t>>(k, "ddrc.wrptr");
  signal_count_ += 2;

  // Write-buffer RAM: depth x 16 beat cells (written as data streams in,
  // like the real macro).
  for (unsigned e = 0; e < 4; ++e) {
    for (unsigned w = 0; w < 16; ++w) {
      wbuf_ram_.push_back(std::make_unique<sim::Signal<std::uint64_t>>(
          k, "wbuf.ram" + std::to_string(e) + "_" + std::to_string(w)));
      ++signal_count_;
    }
  }

  // Per-master QoS registers: wait counters (increment while requesting)
  // and slack counters, clocked every cycle — the registers backing §2's
  // "special internal registers".
  for (unsigned m = 0; m + 1 < cols_.size(); ++m) {
    slack_ctr_.push_back(std::make_unique<sim::Signal<std::uint32_t>>(
        k, "qos.slack" + std::to_string(m)));
    wait_ctr_.push_back(std::make_unique<sim::Signal<std::uint32_t>>(
        k, "qos.wait" + std::to_string(m)));
    signal_count_ += 2;
  }
}

void DetailLayer::at_edge() {
  const sim::Cycle now = *now_;
  // Pipeline registers: every column's address/data/trans stage.
  for (unsigned i = 0; i < cols_.size(); ++i) {
    ColumnDetail& d = col_detail_[i];
    d.haddr_r->write(cols_[i]->haddr.read());
    d.hwdata_r->write(cols_[i]->hwdata.read());
    d.htrans_r->write(cols_[i]->htrans.read());
  }
  hrdata_r_->write(sh_.hrdata.read());

  // DDRC register-transfer state: per-bank FSM one-hot, open row, and the
  // interval counters an RTL controller decrements every cycle — for every
  // channel's controller.
  for (std::size_t i = 0; i < banks_.size(); ++i) {
    const auto [ch, b] = bank_of_[i];
    const ddr::BankEngine& be = set_.engine(ch).banks();
    BankDetail& bd = banks_[i];
    const ddr::BankState st = be.bank_state(b, now);
    bd.state_onehot->write(
        static_cast<std::uint8_t>(1U << static_cast<unsigned>(st)));
    bd.row_r->write(be.open_row(b));
    const ddr::Coord c{b, be.open_row(b), 0};
    const sim::Cycle ready = be.earliest_column(c, now);
    const std::uint32_t togo =
        static_cast<std::uint32_t>(ready > now ? ready - now : 0);
    bd.ready_timer->write(togo);
    // The individual constraint counters all converge toward zero with the
    // composite readiness; RTL holds them separately per JEDEC rule.
    for (std::size_t t = 0; t < bd.timers.size(); ++t) {
      const std::uint32_t v = togo > t ? togo - static_cast<std::uint32_t>(t) : 0;
      bd.timers[t]->write(v);
    }
  }
  wq_level_->write(
      static_cast<std::uint32_t>(set_.pending_write_chunks()));
  xfer_beat_->write(set_.remaining_beats());
  for (std::uint32_t ch = 0; ch < set_.channels(); ++ch) {
    const sim::Cycle trefi = set_.engine(ch).banks().timing().tREFI;
    refresh_ctr_[ch]->write(static_cast<std::uint32_t>(
        trefi == 0 ? 0 : trefi - (now % (trefi + 1))));
  }

  // Data FIFO cells: the current beat circulates through the FIFO slot its
  // pointer selects (writes only when the bus actually moves data).
  const auto tr = unpack_trans(sh_.htrans.read());
  const bool moving = sh_.hready.read() && tr != ahb::Trans::kIdle;
  if (moving) {
    const std::uint8_t wp = wr_ptr_->read();
    const std::uint8_t rp = rd_ptr_->read();
    if (unpack_dir(sh_.hwrite.read()) == ahb::Dir::kWrite) {
      wr_fifo_[wp % 8]->write(sh_.hwdata.read());
      wr_ptr_->write(static_cast<std::uint8_t>((wp + 1) % 8));
    } else {
      rd_fifo_[rp % 8]->write(sh_.hrdata.read());
      rd_ptr_->write(static_cast<std::uint8_t>((rp + 1) % 8));
    }
  }

  // Write-buffer RAM shadow: streaming beats land in the RAM cell of the
  // entry/beat the buffer is filling.
  for (unsigned m = 0; m + 1 < cols_.size(); ++m) {
    if (cols_[m]->wbuf_stream.read()) {
      const std::uint32_t occ = sh_.wbuf_occupancy.read();
      const unsigned entry = occ % 4;
      const unsigned beat =
          static_cast<unsigned>(cols_[m]->hwdata.read() & 0xF);
      wbuf_ram_[entry * 16 + beat % 16]->write(cols_[m]->hwdata.read());
    }
  }

  // QoS registers: wait counters advance while a request is outstanding.
  for (unsigned m = 0; m + 1 < cols_.size(); ++m) {
    if (cols_[m]->hbusreq.read()) {
      wait_ctr_[m]->write(wait_ctr_[m]->read() + 1);
      const std::uint32_t w = wait_ctr_[m]->read();
      slack_ctr_[m]->write(w < 0xFFFF ? 0xFFFF - w : 0);
    } else if (wait_ctr_[m]->read() != 0) {
      wait_ctr_[m]->write(0);
      slack_ctr_[m]->write(0xFFFF);
    }
  }
}

}  // namespace ahbp::rtl
