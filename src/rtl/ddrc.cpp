#include "rtl/ddrc.hpp"

#include "assertions/assert.hpp"

namespace ahbp::rtl {

RtlDdrc::RtlDdrc(sim::EventKernel& kernel,
                 const std::vector<ddr::ChannelConfig>& channels,
                 const ddr::Interleave& ilv, ahb::Addr region_base,
                 const ahb::BusConfig& cfg, SharedWires& shared,
                 const sim::Cycle* now)
    : set_(channels, ilv),
      base_(region_base),
      cfg_(cfg),
      sh_(shared),
      now_(now),
      proc_(kernel, "rtl-ddrc", [this] { at_edge(); }) {}

void RtlDdrc::bind_clock(sim::Signal<bool>& clk) {
  clk.subscribe(proc_, sim::Edge::kPos);
}

void RtlDdrc::sample_inputs(sim::Cycle now) {
  // Latch the BI announce whenever the arbiter drives a fresh one.
  if (sh_.bi_next_valid.read()) {
    Announce a;
    a.addr = sh_.bi_next_addr.read();
    a.burst = unpack_burst(sh_.bi_next_burst.read());
    a.size = unpack_size(sh_.bi_next_size.read());
    a.beats = sh_.bi_next_beats.read();
    a.is_write = sh_.bi_next_write.read();
    announce_ = a;
  }

  const bool hready_prev = sh_.hready.read();
  const auto tr = unpack_trans(sh_.htrans.read());

  // 1. Write data phase completing during the previous cycle: sample the
  //    write bus into the channel set.
  if (cur_active_ && cur_is_write_ && hready_prev &&
      puts_done_ < addr_accepted_) {
    set_.put_write_beat(now, sh_.hwdata.read());
    ++puts_done_;
  }

  // 2. Address-phase acceptance.
  bool begin_now = false;
  if (hready_prev && (tr == ahb::Trans::kNonSeq || tr == ahb::Trans::kSeq)) {
    if (tr == ahb::Trans::kNonSeq) {
      begin_now = true;
    } else if (cur_active_) {
      ++addr_accepted_;
    }
  }

  // 3. Completion of the current transaction.
  if (set_.busy() && set_.done()) {
    set_.finish();
    cur_active_ = false;
  }

  // 4. Begin the newly accepted transaction.
  if (begin_now) {
    AHBP_ASSERT_MSG(!set_.busy(),
                    "NONSEQ accepted while a transaction is in flight");
    AHBP_ASSERT_MSG(announce_.has_value(),
                    "NONSEQ accepted without a BI announce");
    const Announce& a = *announce_;
    AHBP_ASSERT_MSG(a.addr == sh_.haddr.read(),
                    "BI announce does not match the presented address");
    ddr::MemRequest req;
    req.is_write = a.is_write;
    req.addr = a.addr - base_;
    req.beat_bytes = ahb::size_bytes(a.size);
    req.beats = a.beats;
    req.burst = a.burst;
    set_.begin(req, now);
    cur_active_ = true;
    cur_is_write_ = a.is_write;
    cur_beats_ = a.beats;
    addr_accepted_ = 1;
    puts_done_ = 0;
    announce_.reset();
  }

  // 5. Bank-prep hint from the (unconsumed) announce, routed to the
  //    owning channel.
  if (cfg_.bi_hints_enabled && announce_) {
    set_.set_hint(set_.coord_of(announce_->addr - base_));
  } else {
    set_.set_hint(std::nullopt);
  }
}

void RtlDdrc::drive_outputs(sim::Cycle now) {
  sh_.hresp.write(static_cast<std::uint8_t>(ahb::Resp::kOkay));
  if (set_.busy()) {
    if (!cur_is_write_) {
      if (set_.read_beat_available(now)) {
        sh_.hrdata.write(set_.take_read_beat(now));
        sh_.hready.write(true);
      } else {
        sh_.hready.write(false);
      }
    } else {
      // Write data phase active this cycle?
      const bool data_active = puts_done_ < addr_accepted_;
      sh_.hready.write(data_active && set_.write_beat_ready(now));
    }
  } else {
    sh_.hready.write(true);  // idle slave: zero-wait-state acceptance
  }
}

void RtlDdrc::drive_bi(sim::Cycle now) {
  // Per-channel slices: channel ch's banks occupy wire indices
  // [bank_base(ch), bank_base(ch+1)).
  for (std::uint32_t ch = 0; ch < set_.channels(); ++ch) {
    const ddr::BankEngine& banks = set_.engine(ch).banks();
    const std::uint32_t base = set_.bank_base(ch);
    for (std::uint32_t b = 0; b < banks.banks(); ++b) {
      sh_.bi_bank_state[base + b]->write(
          static_cast<std::uint8_t>(banks.bank_state(b, now)));
      sh_.bi_open_row[base + b]->write(banks.open_row(b));
    }
  }
  sh_.bi_idle_mask.write(set_.idle_bank_mask(now));
  sh_.bi_permit.write(set_.access_permitted(now));
  sh_.bi_remaining.write(set_.remaining_beats());
}

void RtlDdrc::at_edge() {
  const sim::Cycle now = *now_;
  sample_inputs(now);
  set_.step(now);
  drive_outputs(now);
  drive_bi(now);
}

void RtlDdrc::save_state(state::StateWriter& w) const {
  w.begin("rtl-ddrc");
  set_.save_state(w);
  w.put_bool(announce_.has_value());
  if (announce_) {
    w.put_u64(announce_->addr);
    w.put_u8(static_cast<std::uint8_t>(announce_->burst));
    w.put_u8(static_cast<std::uint8_t>(announce_->size));
    w.put_u32(announce_->beats);
    w.put_bool(announce_->is_write);
  }
  w.put_bool(cur_active_);
  w.put_bool(cur_is_write_);
  w.put_u32(cur_beats_);
  w.put_u32(addr_accepted_);
  w.put_u32(puts_done_);
  w.end();
}

void RtlDdrc::restore_state(state::StateReader& r) {
  r.enter("rtl-ddrc");
  set_.restore_state(r);
  if (r.get_bool()) {
    announce_.emplace();
    announce_->addr = r.get_u64();
    announce_->burst = static_cast<ahb::Burst>(r.get_u8());
    announce_->size = static_cast<ahb::Size>(r.get_u8());
    announce_->beats = r.get_u32();
    announce_->is_write = r.get_bool();
  } else {
    announce_.reset();
  }
  cur_active_ = r.get_bool();
  cur_is_write_ = r.get_bool();
  cur_beats_ = r.get_u32();
  addr_accepted_ = r.get_u32();
  puts_done_ = r.get_u32();
  r.leave();
}

}  // namespace ahbp::rtl
