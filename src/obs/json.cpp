#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace ahbp::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!started_.empty()) {
    if (started_.back()) {
      os_ << ',';
    }
    started_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  os_ << '{';
  started_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  started_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  os_ << '[';
  started_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  started_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma();
  os_ << '"' << json_escape(k) << "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma();
  os_ << '"' << json_escape(s) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma();
  os_ << (b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  comma();
  if (!std::isfinite(d)) {
    d = 0.0;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", d);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  os_ << v;
  return *this;
}

}  // namespace ahbp::obs
