#include "core/workloads.hpp"

#include "assertions/assert.hpp"

namespace ahbp::core {

namespace {

/// Disjoint per-master address windows keep write traffic race-free so the
/// two models must produce bitwise identical read data.
void set_window(traffic::PatternConfig& t, unsigned master,
                const ddr::Geometry& geom) {
  const ahb::Addr capacity = geom.capacity();
  const ahb::Addr slice = capacity / 8;  // up to 8 masters
  t.base = slice * master;
  t.span = slice / 2;  // generous margin inside the slice
  AHBP_ASSERT(t.span >= 1024);
}

MasterSpec cpu_master(unsigned m, const ddr::Geometry& geom,
                      std::uint64_t seed, unsigned items, double read_ratio,
                      sim::Cycle gap) {
  MasterSpec s;
  s.qos.cls = ahb::MasterClass::kNonRealTime;
  s.qos.objective = 64;  // bandwidth weight (beats per epoch)
  s.traffic.kind = traffic::PatternKind::kCpu;
  s.traffic.seed = seed;
  s.traffic.items = items;
  s.traffic.read_ratio = read_ratio;
  s.traffic.mean_gap = gap;
  set_window(s.traffic, m, geom);
  return s;
}

MasterSpec dma_master(unsigned m, const ddr::Geometry& geom,
                      std::uint64_t seed, unsigned items, unsigned beats) {
  MasterSpec s;
  s.qos.cls = ahb::MasterClass::kNonRealTime;
  s.qos.objective = 128;  // DMA gets a bigger bandwidth share
  s.traffic.kind = traffic::PatternKind::kDma;
  s.traffic.seed = seed;
  s.traffic.items = items;
  s.traffic.dma_burst_beats = beats;
  set_window(s.traffic, m, geom);
  return s;
}

MasterSpec rt_master(unsigned m, const ddr::Geometry& geom,
                     std::uint64_t seed, unsigned items, sim::Cycle period,
                     std::uint32_t objective) {
  MasterSpec s;
  s.qos.cls = ahb::MasterClass::kRealTime;
  s.qos.objective = objective;  // max tolerable request->grant wait
  s.traffic.kind = traffic::PatternKind::kRtStream;
  s.traffic.seed = seed;
  s.traffic.items = items;
  s.traffic.period = period;
  set_window(s.traffic, m, geom);
  return s;
}

MasterSpec random_master(unsigned m, const ddr::Geometry& geom,
                         std::uint64_t seed, unsigned items,
                         double read_ratio, sim::Cycle gap) {
  MasterSpec s;
  s.qos.cls = ahb::MasterClass::kNonRealTime;
  s.qos.objective = 0;  // best effort
  s.traffic.kind = traffic::PatternKind::kRandom;
  s.traffic.seed = seed;
  s.traffic.items = items;
  s.traffic.read_ratio = read_ratio;
  s.traffic.mean_gap = gap;
  set_window(s.traffic, m, geom);
  return s;
}

}  // namespace

PlatformConfig default_platform(unsigned masters, std::uint64_t seed,
                                unsigned items_per_master) {
  PlatformConfig cfg;
  cfg.geom.banks = 4;
  cfg.geom.rows = 1024;
  cfg.geom.cols = 512;
  cfg.geom.col_bytes = 4;  // 8MB device
  cfg.timing = ddr::ddr266();
  for (unsigned m = 0; m < masters; ++m) {
    cfg.masters.push_back(
        cpu_master(m, cfg.geom, seed, items_per_master, 0.7, 4));
  }
  return cfg;
}

std::vector<Workload> table1_workloads(unsigned items, std::uint64_t seed) {
  std::vector<Workload> rows;
  const ddr::Geometry geom = default_platform(4).geom;

  auto base = [&] {
    PlatformConfig cfg = default_platform(4, seed, items);
    cfg.masters.clear();
    return cfg;
  };

  // ---- Group A: CPU-dominated ----
  {
    struct V { double rr; sim::Cycle gap; unsigned dma; };
    const V vars[] = {{0.8, 4, 8}, {0.6, 2, 8}, {0.9, 12, 8}, {0.7, 6, 16}};
    int i = 1;
    for (const V& v : vars) {
      PlatformConfig cfg = base();
      cfg.masters.push_back(cpu_master(0, geom, seed, items, v.rr, v.gap));
      cfg.masters.push_back(cpu_master(1, geom, seed + 1, items, v.rr, v.gap));
      cfg.masters.push_back(cpu_master(2, geom, seed + 2, items, v.rr, v.gap));
      cfg.masters.push_back(dma_master(3, geom, seed + 3, items, v.dma));
      rows.push_back({"cpu-" + std::to_string(i++), cfg});
    }
  }

  // ---- Group B: DMA-heavy ----
  {
    struct V { unsigned dma; double rr; sim::Cycle gap; };
    const V vars[] = {{16, 0.7, 4}, {8, 0.7, 4}, {4, 0.5, 4}, {16, 0.7, 1}};
    int i = 1;
    for (const V& v : vars) {
      PlatformConfig cfg = base();
      cfg.masters.push_back(dma_master(0, geom, seed, items, v.dma));
      cfg.masters.push_back(dma_master(1, geom, seed + 1, items, v.dma));
      cfg.masters.push_back(cpu_master(2, geom, seed + 2, items, 0.8, v.gap));
      cfg.masters.push_back(
          random_master(3, geom, seed + 3, items, v.rr, v.gap));
      rows.push_back({"dma-" + std::to_string(i++), cfg});
    }
  }

  // ---- Group C: real-time stream mix ----
  {
    struct V { sim::Cycle period; std::uint32_t obj; unsigned dma; sim::Cycle gap; };
    const V vars[] = {{48, 40, 8, 4}, {24, 32, 8, 4}, {96, 64, 16, 4},
                      {32, 40, 8, 1}};
    int i = 1;
    for (const V& v : vars) {
      PlatformConfig cfg = base();
      cfg.masters.push_back(
          rt_master(0, geom, seed, items, v.period, v.obj));
      cfg.masters.push_back(cpu_master(1, geom, seed + 1, items, 0.7, v.gap));
      cfg.masters.push_back(dma_master(2, geom, seed + 2, items, v.dma));
      cfg.masters.push_back(
          random_master(3, geom, seed + 3, items, 0.6, v.gap));
      rows.push_back({"rt-" + std::to_string(i++), cfg});
    }
  }

  return rows;
}

Workload single_master_workload(unsigned items, std::uint64_t seed) {
  PlatformConfig cfg = default_platform(1, seed, items);
  return {"single-master", cfg};
}

}  // namespace ahbp::core
