#include "tlm/threaded_master.hpp"

namespace ahbp::tlm {

ThreadedMaster::ThreadedMaster(ahb::MasterId id, AhbPlusBus& bus,
                               traffic::Script script)
    : id_(id),
      bus_(bus),
      source_(std::move(script)),
      name_("threaded-master" + std::to_string(id)) {
  worker_ = std::thread([this] { thread_main(); });
}

ThreadedMaster::~ThreadedMaster() {
  {
    std::lock_guard<std::mutex> lk(m_);
    shutdown_ = true;
    master_turn_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) {
    worker_.join();
  }
}

void ThreadedMaster::evaluate(sim::Cycle now) {
  // Hand the cycle to the worker and block until it yields — the two
  // context switches per master per cycle that method-based modeling
  // avoids.
  std::unique_lock<std::mutex> lk(m_);
  if (finished_) {
    return;
  }
  now_ = now;
  master_turn_ = true;
  kernel_turn_ = false;
  cv_.notify_all();
  cv_.wait(lk, [this] { return kernel_turn_; });
}

void ThreadedMaster::wait_cycle() {
  // Called on the worker: yield to the kernel, resume next cycle.
  std::unique_lock<std::mutex> lk(m_);
  kernel_turn_ = true;
  master_turn_ = false;
  cv_.notify_all();
  cv_.wait(lk, [this] { return master_turn_; });
  if (shutdown_) {
    throw int{0};  // unwound and swallowed in thread_main
  }
}

void ThreadedMaster::thread_main() {
  try {
    // Wait for the first cycle.
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_.wait(lk, [this] { return master_turn_; });
      if (shutdown_) {
        return;
      }
    }
    // The sequential, blocking master program (§4's "thread-based method").
    while (!source_.done()) {
      while (!source_.ready(now_)) {
        wait_cycle();
      }
      ahb::Transaction t = source_.pop(now_);
      bus_.request(id_, t, now_);
      ahb::Transaction done;
      wait_cycle();
      while (!bus_.poll_done(id_, done)) {
        wait_cycle();
      }
      ++completed_;
      source_.on_complete(now_);
      if (source_.done()) {
        break;  // finished in the completion cycle, like TlmMaster
      }
      wait_cycle();
    }
    std::unique_lock<std::mutex> lk(m_);
    finished_ = true;
    kernel_turn_ = true;
    cv_.notify_all();
  } catch (int) {
    // shutdown unwind
  }
}

}  // namespace ahbp::tlm
