#include "rtl/signals.hpp"

#include <string>

namespace ahbp::rtl {

namespace {
std::string mname(unsigned i, const char* leaf) {
  return "m" + std::to_string(i) + "." + leaf;
}
}  // namespace

MasterWires::MasterWires(sim::EventKernel& k, unsigned i)
    : hbusreq(k, mname(i, "hbusreq")),
      hlock(k, mname(i, "hlock")),
      haddr(k, mname(i, "haddr")),
      htrans(k, mname(i, "htrans")),
      hburst(k, mname(i, "hburst")),
      hsize(k, mname(i, "hsize")),
      hwrite(k, mname(i, "hwrite")),
      hwdata(k, mname(i, "hwdata")),
      req_addr(k, mname(i, "req_addr")),
      req_dir(k, mname(i, "req_dir")),
      req_burst(k, mname(i, "req_burst")),
      req_size(k, mname(i, "req_size")),
      req_beats(k, mname(i, "req_beats")),
      wbuf_stream(k, mname(i, "wbuf_stream")) {}

SharedWires::SharedWires(sim::EventKernel& k, unsigned masters,
                         unsigned banks)
    : hmaster(k, "hmaster", ahb::kNoMaster),
      hmaster_data(k, "hmaster_data", ahb::kNoMaster),
      haddr(k, "haddr"),
      htrans(k, "htrans"),
      hburst(k, "hburst"),
      hsize(k, "hsize"),
      hwrite(k, "hwrite"),
      hwdata(k, "hwdata"),
      hready(k, "hready", true),
      hresp(k, "hresp"),
      hrdata(k, "hrdata"),
      wbuf_req(k, "wbuf_req"),
      wbuf_occupancy(k, "wbuf_occupancy"),
      wb_req_addr(k, "wb_req_addr"),
      wb_req_burst(k, "wb_req_burst"),
      wb_req_size(k, "wb_req_size"),
      wb_req_beats(k, "wb_req_beats"),
      bi_next_valid(k, "bi_next_valid"),
      bi_next_addr(k, "bi_next_addr"),
      bi_next_burst(k, "bi_next_burst"),
      bi_next_size(k, "bi_next_size"),
      bi_next_beats(k, "bi_next_beats"),
      bi_next_write(k, "bi_next_write"),
      bi_idle_mask(k, "bi_idle_mask"),
      bi_permit(k, "bi_permit", true),
      bi_remaining(k, "bi_remaining") {
  hgrant.reserve(masters + 1);
  wbuf_take.reserve(masters);
  wbuf_hazard.reserve(masters);
  for (unsigned i = 0; i <= masters; ++i) {
    hgrant.push_back(
        std::make_unique<Signal<bool>>(k, "hgrant" + std::to_string(i)));
  }
  for (unsigned i = 0; i < masters; ++i) {
    wbuf_take.push_back(
        std::make_unique<Signal<bool>>(k, "wbuf_take" + std::to_string(i)));
    wbuf_hazard.push_back(
        std::make_unique<Signal<bool>>(k, "wbuf_hazard" + std::to_string(i)));
  }
  bi_bank_state.reserve(banks);
  bi_open_row.reserve(banks);
  for (unsigned b = 0; b < banks; ++b) {
    bi_bank_state.push_back(std::make_unique<Signal<std::uint8_t>>(
        k, "bi_bank_state" + std::to_string(b)));
    bi_open_row.push_back(std::make_unique<Signal<std::uint32_t>>(
        k, "bi_open_row" + std::to_string(b)));
  }
}

}  // namespace ahbp::rtl
