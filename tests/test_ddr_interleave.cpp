// Address-interleave properties: for every (channels, interleave_bytes,
// geometry) combination the decode is a bijection on the DDR aperture,
// channel-local addresses stay inside the channel's device, and one
// channel is the identity mapping.  Plus the ChannelSet composition:
// single-channel pass-through is cycle-identical to a bare DdrcEngine,
// and striped transactions preserve data integrity end to end.

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "ddr/channels.hpp"
#include "ddr/interleave.hpp"
#include "ddr/scheduler.hpp"
#include "ddr/timing.hpp"

namespace {

using namespace ahbp::ddr;
using ahbp::ahb::Addr;
using ahbp::ahb::Word;
using ahbp::sim::Cycle;

Geometry tiny_geom(Mapping mapping = Mapping::kRowBankCol) {
  Geometry g;
  g.banks = 2;
  g.rows = 4;
  g.cols = 8;
  g.col_bytes = 4;  // capacity: 2 * 4 * 8 * 4 = 256 bytes
  g.mapping = mapping;
  return g;
}

Geometry small_geom() {
  Geometry g;
  g.banks = 4;
  g.rows = 8;
  g.cols = 16;
  g.col_bytes = 4;  // capacity: 2048 bytes
  return g;
}

// ------------------------------------------------------------ validity ----

TEST(Interleave, ValidityRules) {
  EXPECT_TRUE((Interleave{1, 1024}.valid()));
  EXPECT_TRUE((Interleave{2, 8}.valid()));
  EXPECT_TRUE((Interleave{4, 64}.valid()));
  EXPECT_TRUE((Interleave{8, 1u << 20}.valid()));
  EXPECT_FALSE((Interleave{0, 1024}.valid()));
  EXPECT_FALSE((Interleave{3, 1024}.valid()));   // not a power of two
  EXPECT_FALSE((Interleave{16, 1024}.valid()));  // too many channels
  EXPECT_FALSE((Interleave{2, 4}.valid()));      // below the 8-byte beat
  EXPECT_FALSE((Interleave{2, 24}.valid()));     // not a power of two
  EXPECT_FALSE((Interleave{2, 0}.valid()));
}

// ------------------------------------------- bijection on the aperture ----

TEST(Interleave, DecodeIsABijectionOnTheAperture) {
  for (const std::uint32_t channels : {1u, 2u, 4u, 8u}) {
    for (const Addr stripe : {Addr{8}, Addr{64}, Addr{256}, Addr{1024}}) {
      for (const Geometry& g : {tiny_geom(), small_geom()}) {
        if (g.capacity() % stripe != 0) {
          // A stripe must divide the channel capacity (enforced by
          // ChannelSet and scenario validation); the bijection only holds
          // under that precondition.
          continue;
        }
        const Interleave ilv{channels, stripe};
        ASSERT_TRUE(ilv.valid());
        const std::uint64_t aperture = g.capacity() * channels;
        std::set<std::pair<std::uint32_t, Addr>> seen;
        for (Addr a = 0; a < aperture; ++a) {
          const std::uint32_t ch = ilv.channel_of(a);
          const Addr local = ilv.local_of(a);
          // Channel in range, local address inside the channel's device.
          ASSERT_LT(ch, channels);
          ASSERT_LT(local, g.capacity())
              << "channels=" << channels << " stripe=" << stripe
              << " addr=" << a;
          // Invertible: the {channel, local} pair maps back to the
          // aperture offset...
          ASSERT_EQ(ilv.global_of(ch, local), a);
          // ...and is therefore unique.
          ASSERT_TRUE(seen.emplace(ch, local).second);
        }
        // Surjective onto channels x capacity: every pair was hit.
        EXPECT_EQ(seen.size(), aperture);
      }
    }
  }
}

TEST(Interleave, SingleChannelIsTheIdentityMapping) {
  const Interleave ilv{1, 1024};
  for (const Addr a :
       {Addr{0}, Addr{7}, Addr{1023}, Addr{1024}, Addr{123456789}}) {
    EXPECT_EQ(ilv.channel_of(a), 0u);
    EXPECT_EQ(ilv.local_of(a), a);
    EXPECT_EQ(ilv.global_of(0, a), a);
  }
}

TEST(Interleave, StripesRotateRoundRobin) {
  const Interleave ilv{4, 64};
  for (Addr a = 0; a < 4 * 64; ++a) {
    EXPECT_EQ(ilv.channel_of(a), (a / 64) % 4);
  }
  // Consecutive stripes of one channel are `channels` stripes apart in the
  // aperture but contiguous in channel-local space.
  EXPECT_EQ(ilv.local_of(0), 0u);
  EXPECT_EQ(ilv.local_of(4 * 64), 64u);
  EXPECT_EQ(ilv.local_of(2 * 4 * 64 + 5), 2 * 64 + 5u);
}

// -------------------------------------------------- ChannelSet decode -----

TEST(ChannelSet, CoordDecodeMatchesChannelLocalGeometry) {
  const Geometry g = small_geom();
  const Interleave ilv{2, 64};
  const ChannelSet set(std::vector<ChannelConfig>(2, {toy_timing(), g}), ilv);
  for (Addr a = 0; a < 2 * g.capacity(); a += g.col_bytes) {
    const ChannelCoord cc = set.coord_of(a);
    EXPECT_EQ(cc.channel, ilv.channel_of(a));
    EXPECT_EQ(cc.coord, g.decode(ilv.local_of(a)));
    // Column-aligned addresses survive the encode round trip.
    EXPECT_EQ(ilv.global_of(cc.channel, g.encode(cc.coord)), a);
  }
}

// ------------------------------------- ChannelSet cycle-level behaviour ----

/// Drive a set like the bus does: step once per cycle, move at most one
/// beat.  Returns the completion cycle.
Cycle drain(ChannelSet& set, Cycle now, std::vector<Word>* read_out,
            const std::vector<Word>* write_in) {
  unsigned wi = 0;
  for (; now < 100000; ++now) {
    set.step(now);
    if (read_out && set.read_beat_available(now)) {
      read_out->push_back(set.take_read_beat(now));
    }
    if (write_in && wi < write_in->size() && set.write_beat_ready(now)) {
      set.put_write_beat(now, (*write_in)[wi++]);
    }
    if (set.done()) {
      set.finish();
      return now;
    }
  }
  ADD_FAILURE() << "transaction did not complete";
  return now;
}

MemRequest request(Addr addr, unsigned beats, bool is_write) {
  MemRequest r;
  r.is_write = is_write;
  r.addr = addr;
  r.beat_bytes = 4;
  r.beats = beats;
  r.burst = ahbp::ahb::Burst::kIncr;
  return r;
}

TEST(ChannelSet, SingleChannelIsCycleIdenticalToABareEngine) {
  const Geometry g = small_geom();
  DdrcEngine bare(toy_timing(), g);
  ChannelSet set(std::vector<ChannelConfig>{{toy_timing(), g}},
                 Interleave{1, 1024});

  // Identical request sequence, identical per-cycle protocol: every
  // beat-availability decision and the completion cycles must agree.
  const std::vector<Addr> starts = {0x00, 0x40, 0x200, 0x44, 0x7C0};
  Cycle now = 1;
  for (const Addr a : starts) {
    bare.begin(request(a, 4, false), now);
    set.begin(request(a, 4, false), now);
    for (; now < 100000; ++now) {
      bare.step(now);
      set.step(now);
      ASSERT_EQ(bare.read_beat_available(now), set.read_beat_available(now))
          << "cycle " << now;
      if (bare.read_beat_available(now)) {
        ASSERT_EQ(bare.take_read_beat(now), set.take_read_beat(now));
      }
      ASSERT_EQ(bare.done(), set.done()) << "cycle " << now;
      if (bare.done()) {
        bare.finish();
        set.finish();
        ++now;
        break;
      }
    }
  }
}

TEST(ChannelSet, StripedWriteReadsBackIdenticalData) {
  // A 16-beat burst striped across 2 channels at 32-byte granularity: the
  // data must come back beat-for-beat even though the transaction was
  // split into per-channel segments.
  const Geometry g = small_geom();
  ChannelSet set(std::vector<ChannelConfig>(2, {toy_timing(), g}),
                 Interleave{2, 32});

  std::vector<Word> data;
  for (unsigned i = 0; i < 16; ++i) {
    data.push_back(0xA0000000u + i);
  }
  set.begin(request(0x10, 16, true), 1);
  Cycle now = drain(set, 2, nullptr, &data);

  std::vector<Word> read_back;
  set.begin(request(0x10, 16, false), now + 1);
  drain(set, now + 2, &read_back, nullptr);
  EXPECT_EQ(read_back, data);
}

TEST(ChannelSet, StripedDataLandsOnTheDecodedChannel) {
  const Geometry g = small_geom();
  ChannelSet set(std::vector<ChannelConfig>(2, {toy_timing(), g}),
                 Interleave{2, 32});
  const Interleave& ilv = set.interleave();

  std::vector<Word> data;
  for (unsigned i = 0; i < 8; ++i) {
    data.push_back(0xB0000000u + i);
  }
  set.begin(request(0x20, 8, true), 1);
  drain(set, 2, nullptr, &data);

  // Each beat is stored in the owning channel's device at the
  // channel-local address the interleave decodes.
  for (unsigned i = 0; i < 8; ++i) {
    const Addr a = 0x20 + 4 * i;
    const Word w =
        set.engine(ilv.channel_of(a)).memory().read(ilv.local_of(a), 4);
    EXPECT_EQ(w, data[i]) << "beat " << i;
  }
}

TEST(ChannelSet, ChannelsDrainPostedWritesIndependently) {
  const Geometry g = small_geom();
  // 16 beats x 4 bytes = 64 bytes = four 16-byte stripes: one per channel.
  ChannelSet set(std::vector<ChannelConfig>(4, {toy_timing(), g}),
                 Interleave{4, 16});

  std::vector<Word> data(16, 0x5A5A5A5Au);
  set.begin(request(0, 16, true), 1);
  const Cycle done = drain(set, 2, nullptr, &data);

  // The posted chunks spread across all four channels' queues.
  EXPECT_GT(set.pending_write_chunks(), 0u);
  // Let the background drains finish; every channel's write counters move.
  for (Cycle now = done + 1; now < done + 2000; ++now) {
    set.step(now);
  }
  EXPECT_EQ(set.pending_write_chunks(), 0u);
  for (std::uint32_t ch = 0; ch < 4; ++ch) {
    EXPECT_GT(set.engine(ch).banks().counters().writes, 0u) << "ch " << ch;
  }
}

}  // namespace
