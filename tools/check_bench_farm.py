#!/usr/bin/env python3
"""Gate for BENCH_FARM.json — the sweep-farm scaling artifact.

Two artifacts are checked:

* the **fresh CI run** (NEW.json) must be internally sound: per-point CSV
  byte-identical across the in-process runner and every farmed worker
  count (`csv_identical` — determinism is never machine-dependent, so it
  gets no tolerance), `shape_ok` from the bench itself, and a 4-worker
  speedup over the cold in-process baseline that clears a noise-tolerant
  floor (CI runners are slower and noisier than the reference machine).

* the **committed reference** (REFERENCE.json) must still say what the
  README claims: >= 1.5x at 4 workers on the warm-up-dominated workload,
  with the full 1/2/4 scaling curve present.

usage: check_bench_farm.py NEW.json REFERENCE.json
       [--fresh-floor 1.3] [--ref-floor 1.5]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def fail(msg):
    print(f"check_bench_farm: FAIL: {msg}")
    sys.exit(1)


def check_shape(name, j):
    if not j.get("csv_identical"):
        fail(f"{name}: farmed CSV differs from the in-process runner "
             "(determinism broken — this is never a flake)")
    if not j.get("shape_ok"):
        fail(f"{name}: shape_ok is false")
    workers = j.get("workers", [])
    counts = [row.get("workers") for row in workers]
    if counts != [1, 2, 4]:
        fail(f"{name}: expected the 1/2/4-worker scaling curve, got {counts}")
    for row in workers:
        if row.get("wall_seconds", 0) <= 0:
            fail(f"{name}: non-positive wall time at "
                 f"{row.get('workers')} workers")
    if j.get("warmup_cycles", 0) <= 0:
        fail(f"{name}: warmup_cycles is 0 — the bench must measure the "
             "warm-up-amortization regime")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("new_json")
    ap.add_argument("ref_json")
    ap.add_argument(
        "--fresh-floor", type=float, default=1.3,
        help="minimum 4-worker speedup for a fresh CI run (default 1.3; "
        "noise-tolerant)")
    ap.add_argument(
        "--ref-floor", type=float, default=1.5,
        help="minimum 4-worker speedup the committed artifact must record "
        "(default 1.5; the README's claim)")
    args = ap.parse_args()

    new = load(args.new_json)
    ref = load(args.ref_json)

    check_shape("fresh run", new)
    check_shape("committed reference", ref)

    new_speedup = new.get("speedup_4workers", 0.0)
    ref_speedup = ref.get("speedup_4workers", 0.0)
    if new_speedup < args.fresh_floor:
        fail(f"fresh run: 4-worker speedup {new_speedup:.2f}x is below the "
             f"{args.fresh_floor}x floor")
    if ref_speedup < args.ref_floor:
        fail(f"committed reference: records {ref_speedup:.2f}x at 4 workers, "
             f"below the {args.ref_floor}x the artifact must demonstrate")

    print(f"check_bench_farm: OK (fresh {new_speedup:.2f}x, "
          f"reference {ref_speedup:.2f}x at 4 workers, CSV identical)")


if __name__ == "__main__":
    main()
