// Reproduces the paper's §4 modeling-style claim:
//
//   "To increase simulation speed, we used method-based modeling method
//    rather than thread-based method."
//
// The same platform runs twice: once with method-based masters (TlmMaster —
// one evaluate() call per cycle) and once with thread-based masters
// (ThreadedMaster — each master is a blocking sequential program on its own
// thread, two context switches per master per cycle, the SC_THREAD cost
// model).  Results are cycle-identical; only wall-clock differs.

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/platform.hpp"
#include "core/workloads.hpp"
#include "sim/cycle_kernel.hpp"
#include "stats/report.hpp"
#include "tlm/bus.hpp"
#include "tlm/ddrc.hpp"
#include "tlm/master.hpp"
#include "tlm/threaded_master.hpp"

namespace {

struct RunOut {
  ahbp::sim::Cycle cycles = 0;
  std::uint64_t completed = 0;
  double wall = 0.0;
};

template <typename MasterT>
RunOut run_style(const ahbp::core::PlatformConfig& cfg) {
  using namespace ahbp;
  sim::CycleKernel kernel;
  ahb::QosRegisterFile qos(static_cast<unsigned>(cfg.masters.size()));
  for (unsigned m = 0; m < cfg.masters.size(); ++m) {
    qos.program(static_cast<ahb::MasterId>(m), cfg.masters[m].qos);
  }
  tlm::TlmDdrc ddrc(cfg.timing, cfg.geom, cfg.ddr_base);
  tlm::AhbPlusBus bus(cfg.bus, qos, ddrc,
                      static_cast<unsigned>(cfg.masters.size()), nullptr);
  kernel.add(bus);
  auto scripts = core::expand_stimulus(cfg);
  std::vector<std::unique_ptr<MasterT>> masters;
  for (unsigned m = 0; m < cfg.masters.size(); ++m) {
    masters.push_back(std::make_unique<MasterT>(
        static_cast<ahb::MasterId>(m), bus, std::move(scripts[m])));
    kernel.add(*masters.back());
  }
  const auto t0 = std::chrono::steady_clock::now();
  kernel.run_until(
      [&] {
        for (const auto& m : masters) {
          if (!m->finished()) {
            return false;
          }
        }
        return bus.quiescent();
      },
      cfg.max_cycles);
  const auto t1 = std::chrono::steady_clock::now();
  RunOut out;
  out.cycles = kernel.now();
  for (const auto& m : masters) {
    out.completed += m->completed();
  }
  out.wall = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ahbp;
  const unsigned items =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 800;

  std::cout << "=== Modeling style: method-based vs thread-based masters"
               " (paper §4) ===\n    cpu-1 mix, "
            << items << " txns/master, 4 masters\n\n";

  auto cfg = core::table1_workloads(items, 3)[0].config;
  cfg.enable_checkers = false;
  cfg.max_cycles = 10'000'000;

  const RunOut method = run_style<tlm::TlmMaster>(cfg);
  const RunOut threaded = run_style<tlm::ThreadedMaster>(cfg);

  stats::TextTable t({"masters", "cycles", "txns", "wall s", "Kcycles/s"});
  t.add_row({"method-based (evaluate())", std::to_string(method.cycles),
             std::to_string(method.completed),
             stats::fmt_double(method.wall, 3),
             stats::fmt_double(
                 static_cast<double>(method.cycles) / method.wall / 1000.0, 1)});
  t.add_row({"thread-based (blocking)", std::to_string(threaded.cycles),
             std::to_string(threaded.completed),
             stats::fmt_double(threaded.wall, 3),
             stats::fmt_double(
                 static_cast<double>(threaded.cycles) / threaded.wall / 1000.0,
                 1)});
  t.print(std::cout);

  const bool identical = method.cycles == threaded.cycles &&
                         method.completed == threaded.completed;
  const double slowdown = threaded.wall / method.wall;
  std::cout << "\nresults cycle-identical: " << (identical ? "yes" : "NO")
            << "\nthread-based slowdown  : " << stats::fmt_double(slowdown, 1)
            << "x (context-switch cost per master per cycle)\n";
  const bool ok = identical && slowdown > 1.5;
  std::cout << "\nRESULT: " << (ok ? "OK" : "FAIL")
            << " (same behaviour, method-based faster)\n";
  return ok ? 0 : 1;
}
