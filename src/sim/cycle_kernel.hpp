#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/time.hpp"
#include "state/snapshot.hpp"

namespace ahbp::obs {
class SelfProfiler;
}

/// \file cycle_kernel.hpp
/// 2-step cycle-based simulation kernel.
///
/// This is the kernel the paper's §4 describes: to maximize speed the TLM is
/// *method-based* (components exchange transactions through direct function
/// calls, not signal toggling) and scheduled by a *2-step cycle-based*
/// engine.  Each simulated bus cycle consists of exactly two sweeps over the
/// registered components:
///
///   1. `evaluate(now)` — components read committed state from the previous
///      cycle and compute/communicate (masters issue transaction calls, the
///      arbiter filters requests, the DDR controller picks commands).
///   2. `update(now)`   — components commit their next state.
///
/// There is no event queue, no sensitivity bookkeeping and no delta
/// iteration.  Registration is a template (`add<T>`) that freezes each
/// component's `evaluate`/`update` into plain function-pointer thunks: for
/// `final` component types the calls are fully devirtualized at compile time
/// and a component that inherits the no-op `update` default pays nothing in
/// the update sweep.  Cost per cycle is two indirect (not virtual) calls per
/// component that needs them.  Ordering within a phase is controlled by a
/// small integer `phase()` so a platform can guarantee e.g. masters evaluate
/// before the arbiter, independent of registration order.

namespace ahbp::sim {

/// Interface for components clocked by the CycleKernel.
class Clocked {
 public:
  virtual ~Clocked() = default;

  /// Phase 1: read committed state, compute, call methods on peers.
  virtual void evaluate(Cycle now) = 0;

  /// Phase 2: commit next state.  Default: nothing to commit.
  virtual void update(Cycle now) { (void)now; }

  /// Evaluation order within a cycle (lower runs earlier in both phases).
  virtual int phase() const { return 0; }

  /// Component name for diagnostics.
  virtual std::string_view name() const { return "clocked"; }
};

/// Convenience adapter turning two lambdas into a Clocked component.
/// Move-only: the callables live in fixed inline storage (no heap).
class CallbackClocked final : public Clocked {
 public:
  using Fn = InlineFunction<void(Cycle)>;

  CallbackClocked(std::string name, int phase, Fn evaluate, Fn update = {})
      : name_(std::move(name)),
        phase_(phase),
        evaluate_(std::move(evaluate)),
        update_(std::move(update)) {}

  void evaluate(Cycle now) override {
    if (evaluate_) {
      evaluate_(now);
    }
  }
  void update(Cycle now) override {
    if (update_) {
      update_(now);
    }
  }
  int phase() const override { return phase_; }
  std::string_view name() const override { return name_; }

 private:
  std::string name_;
  int phase_;
  Fn evaluate_;
  Fn update_;
};

/// The 2-step cycle-based scheduler.
class CycleKernel {
 public:
  CycleKernel() = default;

  CycleKernel(const CycleKernel&) = delete;
  CycleKernel& operator=(const CycleKernel&) = delete;

  /// Register a component (non-owning).  Components are sorted by phase();
  /// ties keep registration order (stable).
  ///
  /// The component's static type is captured here: `final` types get direct
  /// (devirtualized) thunks, and a type that inherits the default no-op
  /// `update` is skipped entirely in the update sweep.
  template <typename T>
  void add(T& component) {
    static_assert(std::is_base_of_v<Clocked, T>,
                  "CycleKernel components must derive from Clocked");
    Entry e;
    e.obj = &component;
    e.base = &component;
    if constexpr (std::is_final_v<T>) {
      e.eval = [](void* o, Cycle now) { static_cast<T*>(o)->T::evaluate(now); };
    } else {
      // Non-final static type: the dynamic type may override further, so the
      // thunk keeps virtual dispatch (still hoisted out of std::function).
      e.eval = [](void* o, Cycle now) { static_cast<T*>(o)->evaluate(now); };
    }
    if constexpr (std::is_same_v<decltype(&T::update),
                                 void (Clocked::*)(Cycle)>) {
      e.upd = nullptr;  // inherited no-op default — nothing to commit
    } else if constexpr (std::is_final_v<T>) {
      e.upd = [](void* o, Cycle now) { static_cast<T*>(o)->T::update(now); };
    } else {
      e.upd = [](void* o, Cycle now) { static_cast<T*>(o)->update(now); };
    }
    components_.push_back(e);
    sorted_ = false;
    prof_dirty_ = true;
  }

  /// Execute one cycle: evaluate sweep then update sweep.
  void step();

  /// Run `cycles` cycles, or fewer if request_stop() is called.
  void run(Cycle cycles);

  /// Run until `predicate` returns true (checked after each cycle) or
  /// `max_cycles` elapse.  Returns the number of cycles executed.
  /// Templated so the per-cycle predicate check is a direct call.
  template <typename Pred>
  Cycle run_until(Pred&& predicate, Cycle max_cycles) {
    stop_ = false;
    Cycle executed = 0;
    while (executed < max_cycles && !stop_ && !predicate()) {
      step();
      ++executed;
    }
    return executed;
  }

  /// Current cycle number (cycles completed so far).
  Cycle now() const noexcept { return now_; }

  /// Fast-forward the clock to `target` without evaluating any component.
  /// This is the temporal-decoupling primitive: the platform may only call
  /// it after proving (via the components' idle bounds) that every skipped
  /// cycle would have been a no-op, and after bulk-replaying any per-cycle
  /// bookkeeping the components owe for the gap.  No-op if `target <= now`.
  void skip_to(Cycle target) noexcept {
    if (target > now_) {
      now_ = target;
    }
  }

  /// Stop at the end of the current cycle.
  void request_stop() noexcept { stop_ = true; }

  bool stop_requested() const noexcept { return stop_; }

  /// Total component evaluations performed (for the speed benchmarks).
  std::uint64_t evaluations() const noexcept { return evaluations_; }

  /// Attach a self-profiler: each component's evaluate+update time is
  /// accumulated under a phase named after the component.  Null detaches.
  /// When detached (the default), step() takes the untimed fast path.
  void set_profiler(obs::SelfProfiler* p) {
    profiler_ = p;
    prof_dirty_ = true;
  }

  /// Snapshot the clock: the cycle counter and the evaluation counter
  /// (components snapshot themselves; registration is configuration).
  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);

 private:
  /// Frozen dispatch record: direct function-pointer thunks, no virtual
  /// call and no std::function on the per-cycle path.
  struct Entry {
    void* obj = nullptr;
    Clocked* base = nullptr;  ///< for phase()/name() (setup/diagnostics only)
    void (*eval)(void*, Cycle) = nullptr;
    void (*upd)(void*, Cycle) = nullptr;  ///< null: inherited no-op update
  };

  void sort_if_needed();
  void step_profiled();

  std::vector<Entry> components_;
  bool sorted_ = true;
  Cycle now_ = 0;
  bool stop_ = false;
  std::uint64_t evaluations_ = 0;

  obs::SelfProfiler* profiler_ = nullptr;
  bool prof_dirty_ = false;  ///< phase ids need (re)resolving
  std::vector<unsigned> prof_ids_;  ///< parallel to components_ once sorted
};

}  // namespace ahbp::sim
