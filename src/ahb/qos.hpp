#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "ahb/types.hpp"
#include "sim/time.hpp"
#include "state/snapshot.hpp"

/// \file qos.hpp
/// AHB+ QoS register file.
///
/// The paper (§2): "In order to guarantee QoS of IPs, AHB+ has special
/// internal registers.  These registers store QoS objective value and the
/// type of real-time/Non-real time master."  This module is that register
/// file, plus the per-master runtime QoS state (slack tracking and bandwidth
/// budget accounting) the arbitration filters consume.

namespace ahbp::ahb {

/// Master service class.
enum class MasterClass : std::uint8_t {
  kNonRealTime = 0,
  kRealTime = 1,
};

/// Programmed QoS registers of one master.
struct QosConfig {
  MasterClass cls = MasterClass::kNonRealTime;

  /// QoS objective value.  Interpretation depends on the class:
  ///  * Real-time:      maximum tolerable request-to-grant latency (cycles).
  ///  * Non-real-time:  bandwidth share weight used by the budget filter
  ///                    (relative to other NRT masters; 0 = best effort).
  std::uint32_t objective = 0;
};

/// Runtime QoS bookkeeping for one master, updated each cycle by the
/// arbiter and read by the urgency/budget filters.
struct QosState {
  bool requesting = false;         ///< has an outstanding bus request
  sim::Cycle request_since = 0;    ///< cycle the pending request was raised
  std::int64_t budget = 0;         ///< bandwidth budget tokens (may go negative)
  std::uint64_t grants = 0;        ///< grants received (for fairness metrics)
  std::uint64_t qos_misses = 0;    ///< RT grants that exceeded the objective
};

/// The register file: one QosConfig per master, written at configuration
/// time (the paper's §3.7 lists RT/NRT type and QoS value among the model
/// parameters), plus shared epoch parameters for the budget filter.
class QosRegisterFile {
 public:
  explicit QosRegisterFile(std::size_t masters)
      : configs_(masters), states_(masters) {}

  std::size_t masters() const noexcept { return configs_.size(); }

  void program(MasterId m, QosConfig cfg) { at(m) = cfg; }

  const QosConfig& config(MasterId m) const { return at(m); }

  QosState& state(MasterId m) {
    check(m);
    return states_[m];
  }
  const QosState& state(MasterId m) const {
    check(m);
    return states_[m];
  }

  /// Budget refill epoch length in cycles (paper does not give a value; 256
  /// is a typical service-period granularity and is test-overridable).
  sim::Cycle epoch() const noexcept { return epoch_; }
  void set_epoch(sim::Cycle e) { epoch_ = e == 0 ? 1 : e; }

  /// Refill every master's budget proportionally to its objective weight.
  /// Called by the arbiter at each epoch boundary.  Budgets saturate at one
  /// epoch's worth to avoid unbounded accumulation by idle masters.
  void refill_budgets();

  /// Slack of a requesting RT master at cycle `now`: objective minus cycles
  /// already waited.  Negative slack means the objective is already missed.
  std::int64_t rt_slack(MasterId m, sim::Cycle now) const;

  /// Snapshot the runtime QoS state (the programmed configs are platform
  /// configuration and are re-programmed at construction, not restored).
  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);

 private:
  QosConfig& at(MasterId m) {
    check(m);
    return configs_[m];
  }
  const QosConfig& at(MasterId m) const {
    check(m);
    return configs_[m];
  }
  void check(MasterId m) const {
    if (m >= configs_.size()) {
      throw std::out_of_range("QosRegisterFile: master id out of range");
    }
  }

  std::vector<QosConfig> configs_;
  std::vector<QosState> states_;
  sim::Cycle epoch_ = 256;
};

}  // namespace ahbp::ahb
