// Trace serialization: save/load round-trips for every pattern, error
// reporting on malformed input, and replay equivalence (a loaded trace
// drives the TLM to the same result as the original script).

#include <gtest/gtest.h>

#include <sstream>

#include "core/platform.hpp"
#include "core/workloads.hpp"
#include "traffic/trace.hpp"
#include "traffic/trace_bin.hpp"

namespace {

using namespace ahbp;
using namespace ahbp::traffic;

class TraceRoundtrip : public ::testing::TestWithParam<PatternKind> {};

TEST_P(TraceRoundtrip, SaveLoadPreservesEverything) {
  PatternConfig cfg;
  cfg.kind = GetParam();
  cfg.items = 40;
  cfg.seed = 77;
  cfg.base = 0x4000;
  cfg.span = 1 << 16;
  const Script original = make_script(cfg, 2);

  std::stringstream ss;
  EXPECT_EQ(save_trace(ss, original), original.size());
  const Script loaded = load_trace(ss, 2);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].gap, original[i].gap) << i;
    EXPECT_EQ(loaded[i].txn.dir, original[i].txn.dir) << i;
    EXPECT_EQ(loaded[i].txn.addr, original[i].txn.addr) << i;
    EXPECT_EQ(loaded[i].txn.size, original[i].txn.size) << i;
    EXPECT_EQ(loaded[i].txn.burst, original[i].txn.burst) << i;
    EXPECT_EQ(loaded[i].txn.beats, original[i].txn.beats) << i;
    EXPECT_EQ(loaded[i].txn.id, original[i].txn.id) << i;
    EXPECT_EQ(loaded[i].txn.master, 2) << i;
    if (original[i].txn.dir == ahb::Dir::kWrite) {
      ASSERT_GE(loaded[i].txn.data.size(), loaded[i].txn.beats) << i;
      for (unsigned b = 0; b < loaded[i].txn.beats; ++b) {
        EXPECT_EQ(loaded[i].txn.data[b], original[i].txn.data[b])
            << i << " beat " << b;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, TraceRoundtrip,
                         ::testing::Values(PatternKind::kCpu,
                                           PatternKind::kDma,
                                           PatternKind::kRtStream,
                                           PatternKind::kRandom));

TEST(Trace, CommentsAndBlankLinesIgnored) {
  std::stringstream ss("# header\n\n3 R 100 4 INCR4 4\n  # trailing\n");
  const Script s = load_trace(ss, 0);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].gap, 3u);
  EXPECT_EQ(s[0].txn.addr, 0x100u);
  EXPECT_EQ(s[0].txn.burst, ahb::Burst::kIncr4);
}

TEST(Trace, WriteDataParsedHex) {
  std::stringstream ss("0 W 200 4 INCR4 4 de adbeef 0 ffffffff\n");
  const Script s = load_trace(ss, 1);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].txn.data[0], 0xDEu);
  EXPECT_EQ(s[0].txn.data[1], 0xADBEEFu);
  EXPECT_EQ(s[0].txn.data[3], 0xFFFFFFFFu);
}

TEST(Trace, MalformedLineReportsLineNumber) {
  std::stringstream ss("0 R 100 4 INCR4 4\n1 X 100 4 INCR4 4\n");
  try {
    load_trace(ss, 0);
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Trace, HexPrefixAcceptedForAddressAndData) {
  std::stringstream ss(
      "0 R 0x100 4 INCR4 4\n"
      "2 W 0X200 4 INCR4 4 0xde 0Xadbeef 0 0xffffffff\n");
  const Script s = load_trace(ss, 1);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].txn.addr, 0x100u);
  EXPECT_EQ(s[1].txn.addr, 0x200u);
  EXPECT_EQ(s[1].txn.data[0], 0xDEu);
  EXPECT_EQ(s[1].txn.data[1], 0xADBEEFu);
  EXPECT_EQ(s[1].txn.data[3], 0xFFFFFFFFu);
}

TEST(Trace, TrailingGarbageRejectedWithLineNumber) {
  // A read with an extra token after beats...
  std::stringstream read_extra("0 R 100 4 INCR4 4\n0 R 200 4 INCR4 4 beef\n");
  try {
    load_trace(read_extra, 0);
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("trailing garbage"), std::string::npos) << msg;
    EXPECT_NE(msg.find("beef"), std::string::npos) << msg;
  }
  // ...and a write with more data words than beats.
  std::stringstream write_extra("0 W 100 4 INCR4 4 1 2 3 4 5\n");
  EXPECT_THROW(load_trace(write_extra, 0), std::runtime_error);
  // Comments after the fields are still fine.
  std::stringstream commented("0 R 100 4 INCR4 4 # a comment\n");
  EXPECT_EQ(load_trace(commented, 0).size(), 1u);
}

TEST(Trace, BadGapAndBadHexRejected) {
  std::stringstream neg_gap("-1 R 100 4 INCR4 4\n");
  EXPECT_THROW(load_trace(neg_gap, 0), std::runtime_error);
  std::stringstream bad_addr("0 R zz00 4 INCR4 4\n");
  EXPECT_THROW(load_trace(bad_addr, 0), std::runtime_error);
  std::stringstream bare_prefix("0 R 0x 4 INCR4 4\n");
  EXPECT_THROW(load_trace(bare_prefix, 0), std::runtime_error);
  std::stringstream bad_data("0 W 100 4 SINGLE 1 xyzzy\n");
  EXPECT_THROW(load_trace(bad_data, 0), std::runtime_error);
  // Signed tokens must not wrap through stoull to huge unsigneds.
  std::stringstream neg_addr("0 R -100 4 INCR4 4\n");
  EXPECT_THROW(load_trace(neg_addr, 0), std::runtime_error);
  std::stringstream neg_data("0 W 100 4 SINGLE 1 -ff\n");
  EXPECT_THROW(load_trace(neg_data, 0), std::runtime_error);
  std::stringstream plus_data("0 W 100 4 SINGLE 1 +ff\n");
  EXPECT_THROW(load_trace(plus_data, 0), std::runtime_error);
  // Values past 2^32 must error, not wrap into a legal-looking field
  // (4294967297 would truncate to 1 beat and satisfy the data arity).
  std::stringstream wrap_beats("0 W 100 4 SINGLE 4294967297 aa\n");
  EXPECT_THROW(load_trace(wrap_beats, 0), std::runtime_error);
  std::stringstream wrap_size("0 R 100 4294967300 SINGLE 1\n");
  EXPECT_THROW(load_trace(wrap_size, 0), std::runtime_error);
}

TEST(Trace, EmptyInputYieldsEmptyScript) {
  // An empty trace is a valid (instantly finished) stimulus, not an error:
  // a master can legitimately record zero transactions.
  std::stringstream empty("");
  EXPECT_TRUE(load_trace(empty, 0).empty());
  std::stringstream only_comments("# ahbp trace v1\n\n  # nothing here\n");
  EXPECT_TRUE(load_trace(only_comments, 0).empty());
}

TEST(Trace, WideBeatRoundTripPreservesWriteData) {
  // beat_bytes = 8: doubleword beats carry full 64-bit data words through
  // save/load (the paper's §3.7 widest bus).
  PatternConfig cfg;
  cfg.kind = PatternKind::kDma;  // alternating read/write bursts
  cfg.items = 24;
  cfg.seed = 11;
  cfg.base = 0x8000;
  cfg.span = 1 << 16;
  cfg.beat_bytes = 8;
  const Script original = make_script(cfg, 1);

  bool saw_wide_write = false;
  for (const TrafficItem& item : original) {
    if (item.txn.dir == ahb::Dir::kWrite) {
      ASSERT_EQ(ahb::size_bytes(item.txn.size), 8u);
      saw_wide_write = true;
    }
  }
  ASSERT_TRUE(saw_wide_write);

  std::stringstream ss;
  EXPECT_EQ(save_trace(ss, original), original.size());
  const Script loaded = load_trace(ss, 1);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].gap, original[i].gap) << i;
    EXPECT_EQ(loaded[i].txn.addr, original[i].txn.addr) << i;
    EXPECT_EQ(loaded[i].txn.size, original[i].txn.size) << i;
    EXPECT_EQ(loaded[i].txn.beats, original[i].txn.beats) << i;
    EXPECT_EQ(loaded[i].txn.data, original[i].txn.data) << i;
  }
}

TEST(Trace, MissingWriteDataRejected) {
  std::stringstream ss("0 W 100 4 INCR4 4 1 2\n");
  EXPECT_THROW(load_trace(ss, 0), std::runtime_error);
}

TEST(Trace, StructurallyInvalidRejected) {
  // Misaligned word transfer.
  std::stringstream ss("0 R 102 4 SINGLE 1\n");
  EXPECT_THROW(load_trace(ss, 0), std::runtime_error);
}

TEST(Trace, UnknownBurstRejected) {
  std::stringstream ss("0 R 100 4 BOGUS 1\n");
  EXPECT_THROW(load_trace(ss, 0), std::runtime_error);
}

TEST(Trace, BadSizeRejected) {
  std::stringstream ss("0 R 100 3 SINGLE 1\n");
  EXPECT_THROW(load_trace(ss, 0), std::runtime_error);
}

TEST(Trace, BurstTokensRoundTrip) {
  for (const auto b : {ahb::Burst::kSingle, ahb::Burst::kIncr,
                       ahb::Burst::kWrap4, ahb::Burst::kIncr4,
                       ahb::Burst::kWrap8, ahb::Burst::kIncr8,
                       ahb::Burst::kWrap16, ahb::Burst::kIncr16}) {
    EXPECT_EQ(parse_burst(burst_token(b)), b);
  }
}

TEST(Trace, SaveIsImmuneToCallerStreamFormatting) {
  // Regression: save_trace on a stream carrying hex/uppercase/showbase/
  // fill/width state used to emit corrupted fields ("0XDE" addresses,
  // fill-padded gaps) that load_trace rejects or misreads.  The writer
  // must produce identical bytes regardless of inherited stream state.
  PatternConfig cfg;
  cfg.kind = PatternKind::kDma;  // has write data: exercises hex fields
  cfg.items = 20;
  cfg.seed = 9;
  cfg.base = 0x4000;
  cfg.span = 1 << 16;
  const Script script = make_script(cfg, 1);

  std::ostringstream clean;
  save_trace(clean, script);

  std::ostringstream poisoned;
  poisoned.setf(std::ios_base::hex, std::ios_base::basefield);
  poisoned.setf(std::ios_base::uppercase | std::ios_base::showbase |
                std::ios_base::showpos);
  poisoned.fill('*');
  poisoned.width(7);
  save_trace(poisoned, script);
  EXPECT_EQ(poisoned.str(), clean.str());

  // And the poisoned output still round-trips.
  std::istringstream back(poisoned.str());
  EXPECT_EQ(load_trace(back, 1).size(), script.size());
}

TEST(Trace, SaveRestoresCallerStreamState) {
  // The hex/dec toggling inside the writer must not leak: the caller's
  // formatting state (however odd) is restored on return.
  std::ostringstream os;
  os.setf(std::ios_base::hex, std::ios_base::basefield);
  os.setf(std::ios_base::uppercase | std::ios_base::showbase);
  os.fill('*');
  os.width(6);
  const std::ios_base::fmtflags before = os.flags();

  Script script(1);
  script[0].txn.addr = 0x100;
  save_trace(os, script);

  EXPECT_EQ(os.flags(), before);
  EXPECT_EQ(os.fill(), '*');
  EXPECT_EQ(os.width(), 6);
  os << 0xde;  // consumes the pending width
  const std::string tail = os.str().substr(os.str().size() - 6);
  EXPECT_EQ(tail, "**0XDE");
}

TEST(Trace, CrlfLineEndingsParse) {
  // A trace that went through a Windows editor or a text-mode transfer
  // must load identically — '\r' is whitespace to the tokenizer.
  std::stringstream unix_ss("0 R 100 4 INCR4 4\n2 W 200 4 SINGLE 1 aa\n");
  std::stringstream crlf_ss("0 R 100 4 INCR4 4\r\n2 W 200 4 SINGLE 1 aa\r\n");
  const Script a = load_trace(unix_ss, 0);
  const Script b = load_trace(crlf_ss, 0);
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(b[i].gap, a[i].gap) << i;
    EXPECT_EQ(b[i].txn.addr, a[i].txn.addr) << i;
    EXPECT_EQ(b[i].txn.data, a[i].txn.data) << i;
  }
}

TEST(Trace, RandomizedScriptsRoundTripBothFormats) {
  // Property-style sweep: randomized valid scripts (every archetype, every
  // bus width, varied shapes seeded through the deterministic traffic RNG)
  // must survive save->load->save as the identity in BOTH formats, and the
  // two formats must agree on the loaded script.
  const PatternKind kinds[] = {PatternKind::kCpu, PatternKind::kDma,
                               PatternKind::kRtStream, PatternKind::kRandom};
  const unsigned widths[] = {1, 2, 4, 8};
  TrafficRng rng(0xA11CE, 0);
  for (unsigned round = 0; round < 24; ++round) {
    PatternConfig cfg;
    cfg.kind = kinds[rng() % 4];
    cfg.items = 1 + static_cast<unsigned>(rng() % 50);
    cfg.seed = rng();
    cfg.base = (rng() % 16) * 0x1000;
    cfg.span = std::uint64_t{1} << (12 + rng() % 8);
    cfg.read_ratio = static_cast<double>(rng() % 100) / 100.0;
    cfg.beat_bytes = widths[rng() % 4];
    const auto master = static_cast<ahb::MasterId>(rng() % 4);
    const Script script = make_script(cfg, master);
    const std::string what = "round " + std::to_string(round);

    // Text identity.
    std::stringstream text1;
    save_trace(text1, script);
    const Script from_text = load_trace(text1, master);
    std::ostringstream text2;
    save_trace(text2, from_text);
    EXPECT_EQ(text2.str(), text1.str()) << what;

    // Binary identity.
    const std::string bin1 = trace_bin_bytes(script);
    const Script from_bin = load_trace_bin(bin1, master);
    EXPECT_EQ(trace_bin_bytes(from_bin), bin1) << what;

    // Cross-format agreement, field by field.
    ASSERT_EQ(from_bin.size(), from_text.size()) << what;
    for (std::size_t i = 0; i < from_bin.size(); ++i) {
      EXPECT_EQ(from_bin[i].gap, from_text[i].gap) << what << " item " << i;
      EXPECT_EQ(from_bin[i].txn.id, from_text[i].txn.id) << what;
      EXPECT_EQ(from_bin[i].txn.addr, from_text[i].txn.addr) << what;
      EXPECT_EQ(from_bin[i].txn.size, from_text[i].txn.size) << what;
      EXPECT_EQ(from_bin[i].txn.burst, from_text[i].txn.burst) << what;
      EXPECT_EQ(from_bin[i].txn.beats, from_text[i].txn.beats) << what;
      EXPECT_EQ(from_bin[i].txn.data, from_text[i].txn.data) << what;
    }
  }
}

TEST(Trace, ReplayMatchesOriginalRun) {
  // Running the TLM from a reloaded trace must reproduce the original
  // run's cycle count exactly.
  core::PlatformConfig cfg = core::default_platform(2, 5, 30);
  const auto original = core::run_tlm(cfg);

  auto scripts = core::expand_stimulus(cfg);
  std::vector<Script> replayed;
  for (unsigned m = 0; m < scripts.size(); ++m) {
    std::stringstream ss;
    save_trace(ss, scripts[m]);
    replayed.push_back(load_trace(ss, static_cast<ahb::MasterId>(m)));
  }
  // Feed the reloaded scripts through a custom platform run by reusing the
  // generator seeds — simplest check: scripts themselves must be equal, so
  // the deterministic run is too.
  for (unsigned m = 0; m < scripts.size(); ++m) {
    ASSERT_EQ(replayed[m].size(), scripts[m].size());
    for (std::size_t i = 0; i < scripts[m].size(); ++i) {
      EXPECT_EQ(replayed[m][i].txn.addr, scripts[m][i].txn.addr);
      EXPECT_EQ(replayed[m][i].txn.data, scripts[m][i].txn.data);
    }
  }
  EXPECT_TRUE(original.finished);
}

}  // namespace
