// The checkpoint/restore acceptance contract.
//
// The snapshot layer is only sound if it is *complete*: for every registry
// preset, run(W) -> checkpoint -> restore -> run(rest) must produce
// bit-identical cycles and statistics to an uninterrupted run, in both the
// transaction-level and the signal-level model, including sharded-DDR
// configurations.  These tests pin that property, the canonical-bytes
// round trip (save -> restore -> save is byte-identical), and the
// fork-from-warm-up sweep reproducing a cold sweep's aggregate table
// exactly.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/platform.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"
#include "state/snapshot.hpp"
#include "stats/report.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"

namespace {

using namespace ahbp;

core::PlatformConfig preset(const std::string& name, unsigned items) {
  return scenario::ScenarioRegistry::builtin().build(name, items);
}

/// Full-depth equality of two run outcomes (everything except wall clock).
void expect_identical(const core::SimResult& a, const core::SimResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.finished, b.finished) << what;
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.ran_cycles, b.ran_cycles) << what;
  EXPECT_EQ(a.completed, b.completed) << what;
  EXPECT_EQ(a.protocol_errors, b.protocol_errors) << what;
  EXPECT_EQ(a.qos_warnings, b.qos_warnings) << what;
  EXPECT_EQ(a.first_violations, b.first_violations) << what;
  EXPECT_EQ(a.kernel_activity, b.kernel_activity) << what;

  const stats::RunProfile& pa = a.profile;
  const stats::RunProfile& pb = b.profile;
  EXPECT_EQ(pa.total_cycles, pb.total_cycles) << what;
  EXPECT_EQ(pa.completed_txns, pb.completed_txns) << what;
  EXPECT_EQ(pa.bus.cycles, pb.bus.cycles) << what;
  EXPECT_EQ(pa.bus.busy_cycles, pb.bus.busy_cycles) << what;
  EXPECT_EQ(pa.bus.contention_cycles, pb.bus.contention_cycles) << what;
  EXPECT_EQ(pa.bus.wait_cycles, pb.bus.wait_cycles) << what;
  EXPECT_EQ(pa.bus.grants, pb.bus.grants) << what;
  EXPECT_EQ(pa.bus.handovers, pb.bus.handovers) << what;
  EXPECT_EQ(pa.bus.bytes, pb.bus.bytes) << what;
  EXPECT_EQ(pa.write_buffer.absorbed, pb.write_buffer.absorbed) << what;
  EXPECT_EQ(pa.write_buffer.drained, pb.write_buffer.drained) << what;
  EXPECT_EQ(pa.write_buffer.bypassed, pb.write_buffer.bypassed) << what;
  EXPECT_EQ(pa.write_buffer.full_stalls, pb.write_buffer.full_stalls) << what;
  EXPECT_EQ(pa.write_buffer.forwards, pb.write_buffer.forwards) << what;
  EXPECT_EQ(pa.write_buffer.occupancy.count(), pb.write_buffer.occupancy.count())
      << what;
  EXPECT_EQ(pa.write_buffer.occupancy.sum(), pb.write_buffer.occupancy.sum())
      << what;
  EXPECT_EQ(pa.ddr.commands.activates, pb.ddr.commands.activates) << what;
  EXPECT_EQ(pa.ddr.commands.reads, pb.ddr.commands.reads) << what;
  EXPECT_EQ(pa.ddr.commands.writes, pb.ddr.commands.writes) << what;
  EXPECT_EQ(pa.ddr.commands.precharges, pb.ddr.commands.precharges) << what;
  EXPECT_EQ(pa.ddr.commands.refreshes, pb.ddr.commands.refreshes) << what;
  EXPECT_EQ(pa.ddr.hits.row_hits, pb.ddr.hits.row_hits) << what;
  EXPECT_EQ(pa.ddr.hits.row_misses, pb.ddr.hits.row_misses) << what;
  EXPECT_EQ(pa.ddr.hits.row_conflicts, pb.ddr.hits.row_conflicts) << what;
  EXPECT_EQ(pa.ddr.hits.hint_activates, pb.ddr.hits.hint_activates) << what;
  ASSERT_EQ(pa.masters.size(), pb.masters.size()) << what;
  for (std::size_t m = 0; m < pa.masters.size(); ++m) {
    EXPECT_EQ(pa.masters[m].reads, pb.masters[m].reads) << what << " m" << m;
    EXPECT_EQ(pa.masters[m].writes, pb.masters[m].writes) << what << " m" << m;
    EXPECT_EQ(pa.masters[m].bytes_read, pb.masters[m].bytes_read)
        << what << " m" << m;
    EXPECT_EQ(pa.masters[m].bytes_written, pb.masters[m].bytes_written)
        << what << " m" << m;
    EXPECT_EQ(pa.masters[m].buffered_writes, pb.masters[m].buffered_writes)
        << what << " m" << m;
    EXPECT_EQ(pa.masters[m].qos_misses, pb.masters[m].qos_misses)
        << what << " m" << m;
    EXPECT_EQ(pa.masters[m].latency.total(), pb.masters[m].latency.total())
        << what << " m" << m;
    EXPECT_EQ(pa.masters[m].latency.summary().sum(),
              pb.masters[m].latency.summary().sum())
        << what << " m" << m;
    EXPECT_EQ(pa.masters[m].grant_wait.summary().sum(),
              pb.masters[m].grant_wait.summary().sum())
        << what << " m" << m;
  }
}

/// run(W) -> snapshot -> restore into a fresh platform -> run(rest), then
/// compare against the uninterrupted run.  Returns the snapshot size.
std::size_t check_roundtrip(const core::PlatformConfig& cfg,
                            core::ModelKind model, const std::string& what) {
  core::Platform straight(cfg, model);
  straight.run_to_completion();
  const core::SimResult expect = straight.result();

  // A checkpoint boundary strictly inside the run (the property is trivial
  // at 0 and at the end).
  const sim::Cycle w = expect.ran_cycles / 3 + 1;

  core::Platform warm(cfg, model);
  state::StateWriter sw;
  warm.checkpoint_at(w, sw);
  EXPECT_EQ(warm.now(), w) << what;
  const std::vector<std::uint8_t> bytes = sw.finish();

  core::Platform resumed(cfg, model);
  state::StateReader sr(bytes.data(), bytes.size());
  resumed.restore_state(sr);
  sr.expect_end();
  EXPECT_EQ(resumed.now(), w) << what;
  resumed.run_to_completion();

  expect_identical(resumed.result(), expect, what);

  // Canonical bytes: save -> restore -> save is byte-identical.
  core::Platform again(cfg, model);
  state::StateReader sr2(bytes.data(), bytes.size());
  again.restore_state(sr2);
  state::StateWriter sw2;
  again.save_state(sw2);
  EXPECT_EQ(sw2.finish(), bytes) << what << " (round trip not canonical)";
  return bytes.size();
}

// ------------------------------------------- per-preset, both models -----

class CheckpointEveryPreset : public ::testing::TestWithParam<const char*> {};

TEST_P(CheckpointEveryPreset, TlmRestoreIsCycleExact) {
  const core::PlatformConfig cfg = preset(GetParam(), 60);
  check_roundtrip(cfg, core::ModelKind::kTlm,
                  std::string(GetParam()) + " tlm");
}

TEST_P(CheckpointEveryPreset, RtlRestoreIsCycleExact) {
  const core::PlatformConfig cfg = preset(GetParam(), 40);
  check_roundtrip(cfg, core::ModelKind::kRtl,
                  std::string(GetParam()) + " rtl");
}

INSTANTIATE_TEST_SUITE_P(
    Registry, CheckpointEveryPreset,
    ::testing::Values("table1/cpu-1", "table1/cpu-2", "table1/cpu-3",
                      "table1/cpu-4", "table1/dma-1", "table1/dma-2",
                      "table1/dma-3", "table1/dma-4", "table1/rt-1",
                      "table1/rt-2", "table1/rt-3", "table1/rt-4",
                      "single-master", "bursty-dma", "bank-conflict",
                      "wbuf-stress", "qos-starvation"),
    [](const auto& pinfo) {
      std::string n = pinfo.param;
      for (char& c : n) {
        if (c == '/' || c == '-') {
          c = '_';
        }
      }
      return n;
    });

// ---------------------------------------------- sharded-DDR coverage -----

TEST(Checkpoint, MultiChannelRestoreIsCycleExactBothModels) {
  for (const unsigned channels : {2u, 4u}) {
    core::PlatformConfig cfg = preset("table1/dma-1", 40);
    scenario::apply_key(cfg, "ddr.channels", std::to_string(channels));
    scenario::validate(cfg);
    check_roundtrip(cfg, core::ModelKind::kTlm,
                    "dma-1 tlm channels=" + std::to_string(channels));
    check_roundtrip(cfg, core::ModelKind::kRtl,
                    "dma-1 rtl channels=" + std::to_string(channels));
  }
}

TEST(Checkpoint, WideBusRestoreIsCycleExact) {
  core::PlatformConfig cfg = preset("table1/rt-1", 50);
  scenario::apply_key(cfg, "bus.data_width_bytes", "8");
  scenario::validate(cfg);
  check_roundtrip(cfg, core::ModelKind::kTlm, "rt-1 tlm width=8");
  check_roundtrip(cfg, core::ModelKind::kRtl, "rt-1 rtl width=8");
}

// --------------------------------------------- checkpoint file format -----

TEST(Checkpoint, FileEmbedsScenarioAndResumes) {
  const core::PlatformConfig cfg = preset("table1/cpu-1", 60);
  const std::string text = scenario::serialize(cfg);

  core::Platform straight(cfg, core::ModelKind::kTlm);
  straight.run_to_completion();

  const std::string path = ::testing::TempDir() + "ahbp_ckpt_test.snap";
  core::Platform warm(cfg, core::ModelKind::kTlm);
  warm.run(straight.result().ran_cycles / 2);
  core::write_checkpoint_file(path, warm, text);

  state::StateReader r = state::StateReader::from_file(path);
  const core::CheckpointInfo info = core::read_checkpoint_header(r);
  EXPECT_EQ(info.model, "tlm");
  EXPECT_EQ(info.taken_at, warm.now());
  EXPECT_EQ(info.scenario_text, text);

  const core::PlatformConfig reparsed = scenario::parse(info.scenario_text);
  core::ModelKind model{};
  ASSERT_TRUE(core::model_kind_from_string(info.model, model));
  const core::SimResult resumed = core::run_from(reparsed, model, r);
  expect_identical(resumed, straight.result(), "file resume");
  std::remove(path.c_str());
}

// ------------------------------------------- fork-from-warm-up sweeps -----

TEST(Checkpoint, ForkedWarmupSweepReproducesColdSweepExactly) {
  // Sweep axes that leave the warm-up prefix invariant (items axes: scripts
  // extend the base's prefix; pinned by test_traffic_determinism).  The
  // forked sweep must reproduce the cold sweep's aggregate table — the
  // user-facing artifact — byte-for-byte, in both models.
  // The swept masters (the rt stream and the random mix) must still be
  // issuing at the checkpoint boundary — extending a master's `items` only
  // leaves the prefix invariant while its base script has not drained, and
  // the runner rejects forks that violate this instead of diverging.
  sweep::SweepSpec spec;
  spec.base = "table1/rt-1";
  spec.base_config =
      scenario::ScenarioRegistry::builtin().build("table1/rt-1", 60, 7);
  spec.axes.push_back({"master0.items", {"60", "72"}});
  spec.axes.push_back({"master3.items", {"60", "80"}});
  const auto points = sweep::expand(spec);

  const sweep::SweepRunner runner(2);
  const auto cold = runner.run(points, sweep::Model::kBoth);
  ASSERT_FALSE(cold.empty());
  for (const auto& o : cold) {
    ASSERT_TRUE(o.error.empty()) << o.error;
    ASSERT_TRUE(o.tlm.finished && o.rtl.finished) << o.label;
  }
  // A warm-up strictly inside every point's run, early enough that the
  // swept 60-item streams are still active (the rt stream alone paces
  // ~one item per 48-cycle period).
  const sim::Cycle warmup = 600;
  ASSERT_LT(warmup, cold.front().tlm.ran_cycles);
  const auto forked =
      runner.run(points, sweep::Model::kBoth, spec.base_config, warmup);

  std::ostringstream cold_table, forked_table;
  sweep::aggregate_table(cold, sweep::Model::kBoth).print(cold_table);
  sweep::aggregate_table(forked, sweep::Model::kBoth).print(forked_table);
  EXPECT_EQ(forked_table.str(), cold_table.str());

  std::ostringstream cold_csv, forked_csv;
  sweep::write_point_csv(cold_csv, cold, sweep::Model::kBoth);
  sweep::write_point_csv(forked_csv, forked, sweep::Model::kBoth);
  EXPECT_EQ(forked_csv.str(), cold_csv.str());

  // Beyond the table: per-point outcomes are identical in depth.
  for (std::size_t i = 0; i < cold.size(); ++i) {
    expect_identical(forked[i].tlm, cold[i].tlm,
                     "forked tlm " + cold[i].label);
    expect_identical(forked[i].rtl, cold[i].rtl,
                     "forked rtl " + cold[i].label);
  }
}

TEST(Checkpoint, ForkedSweepRejectsStructuralAxes) {
  // An axis that changes the platform's shape (channel count) cannot fork
  // from the base snapshot; the point must fail with a clear error, not
  // diverge silently.
  sweep::SweepSpec spec;
  spec.base = "table1/dma-1";
  spec.base_config =
      scenario::ScenarioRegistry::builtin().build("table1/dma-1", 40);
  spec.axes.push_back({"ddr.channels", {"1", "2"}});
  const auto points = sweep::expand(spec);

  const sweep::SweepRunner runner(1);
  const auto outcomes =
      runner.run(points, sweep::Model::kTlm, spec.base_config, 500);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].error.empty()) << outcomes[0].error;
  EXPECT_FALSE(outcomes[1].error.empty());
  EXPECT_NE(outcomes[1].error.find("channel"), std::string::npos)
      << outcomes[1].error;
}

TEST(Checkpoint, SweepSpecsRejectDeadCheckpointConfig) {
  // The runner never snapshots per point, so a [checkpoint] in the base —
  // or a swept checkpoint.* key — must be rejected, not silently ignored.
  EXPECT_THROW(sweep::parse_spec("base = table1/cpu-1\n"
                                 "[checkpoint]\n"
                                 "at_cycle = 1000\n"
                                 "path = warm.ckpt\n"
                                 "[sweep]\n"
                                 "bus.write_buffer_depth = 2, 4\n"),
               scenario::ScenarioError);
  EXPECT_THROW(sweep::parse_spec("base = table1/cpu-1\n"
                                 "[sweep]\n"
                                 "checkpoint.at_cycle = 100, 200\n"),
               scenario::ScenarioError);
}

TEST(Checkpoint, ModelMismatchIsRejected) {
  const core::PlatformConfig cfg = preset("single-master", 30);
  core::Platform tlm(cfg, core::ModelKind::kTlm);
  tlm.run(100);
  state::StateWriter w;
  tlm.save_state(w);
  const auto bytes = w.finish();

  core::Platform rtl(cfg, core::ModelKind::kRtl);
  state::StateReader r(bytes.data(), bytes.size());
  EXPECT_THROW(rtl.restore_state(r), state::StateError);
}

TEST(Checkpoint, StructuralMismatchIsRejected) {
  const core::PlatformConfig cfg = preset("table1/cpu-1", 30);
  core::Platform p(cfg, core::ModelKind::kTlm);
  p.run(200);
  state::StateWriter w;
  p.save_state(w);
  const auto bytes = w.finish();

  // Fewer masters than the snapshot.
  const core::PlatformConfig other = preset("single-master", 30);
  core::Platform q(other, core::ModelKind::kTlm);
  state::StateReader r(bytes.data(), bytes.size());
  EXPECT_THROW(q.restore_state(r), state::StateError);

  // Checker enablement must match.
  core::PlatformConfig nochk = cfg;
  nochk.enable_checkers = false;
  core::Platform s(nochk, core::ModelKind::kTlm);
  state::StateReader r2(bytes.data(), bytes.size());
  EXPECT_THROW(s.restore_state(r2), state::StateError);
}

}  // namespace
