// Trace replay throughput: what does swapping synthetic expansion for
// recorded-trace parsing cost on the stimulus path?
//
// The capture→replay loop turns a synthetic Table-1 preset into per-master
// trace files and feeds them back through `pattern = trace`.  This bench
// pins the stages against each other — synthetic expansion, save_trace /
// save_trace_bin serialization, load_trace / load_trace_bin parsing — in
// transactions/sec, and cross-checks that full TLM replay runs from both
// formats reproduce the synthetic run's cycle count exactly (the
// equivalence the closed-loop tests gate).  Writes BENCH_TRACE.json so
// the stimulus-path trajectory (and the binary format's speedup over
// text) is tracked across PRs.
//
// Usage: bench_trace [items-per-master] [repeats]

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/platform.hpp"
#include "scenario/registry.hpp"
#include "stats/report.hpp"
#include "traffic/stimulus.hpp"
#include "traffic/trace.hpp"
#include "traffic/trace_bin.hpp"

int main(int argc, char** argv) {
  using namespace ahbp;
  using Clock = std::chrono::steady_clock;
  const unsigned items =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 2000;
  const unsigned repeats =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 5;

  const core::PlatformConfig cfg =
      scenario::ScenarioRegistry::builtin().build("table1/rt-1", items, 7);
  const std::size_t total_txns = [&] {
    std::size_t n = 0;
    for (const auto& s : core::expand_stimulus(cfg)) {
      n += s.size();
    }
    return n;
  }();

  const auto best_of = [&](auto&& fn) {
    double best = 1e300;
    for (unsigned r = 0; r < repeats; ++r) {
      const auto t0 = Clock::now();
      fn();
      const auto t1 = Clock::now();
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
  };

  // --- stage 1: synthetic expansion (the baseline stimulus path) ---
  const double synth_s = best_of([&] { core::expand_stimulus(cfg); });

  // --- stage 2: capture serialization (save_trace) ---
  const auto scripts = core::expand_stimulus(cfg);
  std::vector<std::string> texts(scripts.size());
  const double save_s = best_of([&] {
    for (std::size_t m = 0; m < scripts.size(); ++m) {
      std::ostringstream os;
      traffic::save_trace(os, scripts[m]);
      texts[m] = os.str();
    }
  });

  // --- stage 3: replay expansion (load_trace from resolved text) ---
  core::PlatformConfig replay = cfg;
  for (std::size_t m = 0; m < replay.masters.size(); ++m) {
    auto& spec = replay.masters[m].traffic;
    spec.source = traffic::StimulusSource::kTrace;
    spec.trace_text = texts[m];
  }
  const double load_s = best_of([&] { core::expand_stimulus(replay); });

  // --- stages 4/5: the binary sibling (save_trace_bin / load_trace_bin) ---
  std::vector<std::string> bins(scripts.size());
  const double bin_save_s = best_of([&] {
    for (std::size_t m = 0; m < scripts.size(); ++m) {
      bins[m] = traffic::trace_bin_bytes(scripts[m]);
    }
  });
  core::PlatformConfig bin_replay = cfg;
  for (std::size_t m = 0; m < bin_replay.masters.size(); ++m) {
    auto& spec = bin_replay.masters[m].traffic;
    spec.source = traffic::StimulusSource::kTrace;
    spec.trace_text = bins[m];
  }
  const double bin_load_s = best_of([&] { core::expand_stimulus(bin_replay); });

  std::uint64_t trace_bytes = 0;
  for (const std::string& t : texts) {
    trace_bytes += t.size();
  }
  std::uint64_t bin_bytes = 0;
  for (const std::string& b : bins) {
    bin_bytes += b.size();
  }

  // --- cross-check: replay runs must land on the synthetic cycle count ---
  // (equality of outcome, not completion: a million-transaction workload
  // legitimately hits the cycle cap — the replay must hit it identically)
  const core::SimResult synth_run = core::run_tlm(cfg);
  for (const auto* r : {&replay, &bin_replay}) {
    const core::SimResult replay_run = core::run_tlm(*r);
    if (synth_run.finished != replay_run.finished ||
        synth_run.cycles != replay_run.cycles ||
        synth_run.completed != replay_run.completed) {
      std::cerr << "replay diverged: synthetic " << synth_run.cycles
                << " cycles / " << synth_run.completed << " txns vs replay "
                << replay_run.cycles << " / " << replay_run.completed << "\n";
      return 1;
    }
  }

  const double txns = static_cast<double>(total_txns);
  std::cout << "=== Trace replay vs synthetic expansion: " << total_txns
            << " txns over " << cfg.masters.size() << " masters, best of "
            << repeats << " ===\n\n";
  stats::TextTable table({"stage", "wall ms", "txns/sec"});
  const auto row = [&](const char* stage, double s) {
    table.add_row({stage, stats::fmt_double(s * 1e3, 3),
                   stats::fmt_double(txns / s, 0)});
  };
  row("synthetic expansion", synth_s);
  row("save_trace (text)", save_s);
  row("load_trace (text replay)", load_s);
  row("save_trace_bin", bin_save_s);
  row("load_trace_bin (bin replay)", bin_load_s);
  table.print(std::cout);
  std::cout << "\ntrace size: text " << trace_bytes << " bytes ("
            << stats::fmt_double(static_cast<double>(trace_bytes) / txns, 1)
            << " bytes/txn), binary " << bin_bytes << " bytes ("
            << stats::fmt_double(static_cast<double>(bin_bytes) / txns, 1)
            << " bytes/txn)\nbinary load speedup over text: "
            << stats::fmt_double(load_s / bin_load_s, 1)
            << "x; both replays == synthetic at " << synth_run.cycles
            << " cycles\n";

  std::ofstream json("BENCH_TRACE.json");
  if (json) {
    json << "{\n  \"bench\": \"trace_replay\",\n  \"items_per_master\": "
         << items << ",\n  \"total_txns\": " << total_txns
         << ",\n  \"trace_bytes\": " << trace_bytes
         << ",\n  \"synthetic_expand_txns_per_sec\": "
         << stats::fmt_double(txns / synth_s, 0)
         << ",\n  \"save_trace_txns_per_sec\": "
         << stats::fmt_double(txns / save_s, 0)
         << ",\n  \"load_trace_txns_per_sec\": "
         << stats::fmt_double(txns / load_s, 0)
         << ",\n  \"trace_bin_bytes\": " << bin_bytes
         << ",\n  \"save_trace_bin_txns_per_sec\": "
         << stats::fmt_double(txns / bin_save_s, 0)
         << ",\n  \"load_trace_bin_txns_per_sec\": "
         << stats::fmt_double(txns / bin_load_s, 0)
         << ",\n  \"bin_vs_text_load\": "
         << stats::fmt_double(load_s / bin_load_s, 3)
         << ",\n  \"replay_vs_synthetic_expand\": "
         << stats::fmt_double(synth_s / load_s, 3)
         << ",\n  \"replay_cycles_equal\": true\n}\n";
    std::cout << "wrote BENCH_TRACE.json\n";
  }
  return 0;
}
