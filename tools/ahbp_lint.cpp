// ahbp_lint — the repo-specific source linter.
//
// Walks src/ under the repo root, runs every rule in src/lint/lint.cpp, and
// prints findings as `file:line: [rule] message` (exit 1 when any fire).
// `--update-snapshot-manifest` regenerates tools/snapshot_manifest.txt from
// the StateWriter tags declared in the sources — and refuses when the tag
// set changed but state::kFormatVersion did not, which is the enforcement
// point for "snapshot layout changes bump the format version".

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

#ifndef AHBP_SOURCE_ROOT
#define AHBP_SOURCE_ROOT "."
#endif

namespace {

namespace fs = std::filesystem;
using ahbp::lint::Finding;
using ahbp::lint::SnapshotManifest;
using ahbp::lint::SourceFile;

int usage(std::ostream& os, int rc) {
  os << "usage: ahbp_lint [options]\n"
        "\n"
        "Repo-specific linter: determinism, serialization canonicality,\n"
        "snapshot tag discipline, and observability null-gating.  Checks\n"
        "src/ under the repo root.\n"
        "\n"
        "options:\n"
        "  --root <dir>       repo root to lint (default: the tree this\n"
        "                     binary was configured from)\n"
        "  --manifest <file>  snapshot manifest path (default:\n"
        "                     <root>/tools/snapshot_manifest.txt)\n"
        "  --update-snapshot-manifest\n"
        "                     rewrite the manifest from the current sources;\n"
        "                     refuses when the tag set changed without a\n"
        "                     state::kFormatVersion bump\n"
        "  -h, --help         this text\n";
  return rc;
}

std::string read_file(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  if (!is) {
    throw std::runtime_error("cannot read '" + p.string() + "'");
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

/// Repo-relative path with '/' separators (the rule scopes key off these).
std::string rel_path(const fs::path& root, const fs::path& p) {
  std::string s = p.lexically_relative(root).generic_string();
  return s;
}

std::vector<SourceFile> collect_sources(const fs::path& root) {
  std::vector<SourceFile> files;
  const fs::path src = root / "src";
  if (!fs::exists(src)) {
    throw std::runtime_error("no src/ directory under '" + root.string() +
                             "'");
  }
  for (const fs::directory_entry& e :
       fs::recursive_directory_iterator(src)) {
    if (!e.is_regular_file()) {
      continue;
    }
    const std::string ext = e.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") {
      continue;
    }
    files.push_back({rel_path(root, e.path()), read_file(e.path())});
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return files;
}

int update_manifest(const std::vector<SourceFile>& files,
                    const fs::path& manifest_path) {
  std::vector<Finding> dup_findings;
  SnapshotManifest next;
  next.tags = ahbp::lint::collect_snapshot_tags(files, &dup_findings);
  next.version = ahbp::lint::find_format_version(files);
  if (next.version == 0) {
    std::cerr << "ahbp_lint: cannot find state::kFormatVersion in "
                 "src/state/snapshot.hpp — refusing to write a manifest\n";
    return 2;
  }
  for (const Finding& f : dup_findings) {
    std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!dup_findings.empty()) {
    std::cerr << "ahbp_lint: duplicate tags must be fixed before the "
                 "manifest can be regenerated\n";
    return 1;
  }

  if (fs::exists(manifest_path)) {
    const SnapshotManifest prev =
        ahbp::lint::parse_manifest(read_file(manifest_path));
    if (prev.tags != next.tags && prev.version == next.version) {
      std::cerr
          << "ahbp_lint: the StateWriter tag set changed but "
             "state::kFormatVersion is still "
          << next.version
          << " — a changed tag set changes the snapshot layout; bump "
             "kFormatVersion in src/state/snapshot.hpp first, then rerun "
             "--update-snapshot-manifest\n";
      return 1;
    }
    if (prev.tags == next.tags && prev.version == next.version) {
      std::cout << "ahbp_lint: manifest already current (version "
                << next.version << ", " << next.tags.size() << " tags)\n";
      return 0;
    }
  }

  std::ofstream os(manifest_path, std::ios::trunc);
  if (!os) {
    std::cerr << "ahbp_lint: cannot write '" << manifest_path.string()
              << "'\n";
    return 2;
  }
  os << ahbp::lint::render_manifest(next);
  std::cout << "ahbp_lint: wrote " << manifest_path.string() << " (version "
            << next.version << ", " << next.tags.size() << " tags)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = AHBP_SOURCE_ROOT;
  fs::path manifest_path;
  bool update = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      return usage(std::cout, 0);
    }
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--manifest" && i + 1 < argc) {
      manifest_path = argv[++i];
    } else if (arg == "--update-snapshot-manifest") {
      update = true;
    } else {
      std::cerr << "ahbp_lint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    }
  }
  if (manifest_path.empty()) {
    manifest_path = root / "tools" / "snapshot_manifest.txt";
  }

  try {
    const std::vector<SourceFile> files = collect_sources(root);
    if (update) {
      return update_manifest(files, manifest_path);
    }
    std::string manifest_text;
    if (fs::exists(manifest_path)) {
      manifest_text = read_file(manifest_path);
    }
    const std::vector<Finding> findings =
        ahbp::lint::lint_sources(files, manifest_text);
    for (const Finding& f : findings) {
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    }
    if (findings.empty()) {
      std::cout << "ahbp_lint: " << files.size() << " files clean\n";
      return 0;
    }
    std::cout << "ahbp_lint: " << findings.size() << " finding(s) in "
              << files.size() << " files\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "ahbp_lint: " << e.what() << "\n";
    return 2;
  }
}
