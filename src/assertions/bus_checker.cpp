#include "assertions/bus_checker.hpp"

#include <sstream>

namespace ahbp::chk {

namespace {

std::string hex(ahb::Addr a) {
  std::ostringstream ss;
  ss << "0x" << std::hex << a;
  return ss.str();
}

}  // namespace

BusChecker::BusChecker(CheckerConfig cfg, ViolationLog& log)
    : cfg_(cfg), log_(log) {}

void BusChecker::on_cycle(const BusCycleView& v) {
  ++cycles_;
  check_grant(v);
  check_stability(v);
  check_alignment(v);
  check_width(v);
  check_burst(v);
  check_wbuf(v);

  pending_requests_ |= v.request_mask;
  prev_requests_ = v.request_mask;
  prev_ = v;
}

void BusChecker::skip_idle(sim::Cycle from, sim::Cycle to) {
  if (to <= from) {
    return;
  }
  // The first skipped cycle goes through the real rule suite (it closes
  // out any cross-cycle rule armed by the previous, non-idle view).  A
  // default-constructed view *is* the idle view: HREADY high, no owner,
  // IDLE transfer, empty write buffer.
  BusCycleView idle;
  idle.cycle = from;
  on_cycle(idle);
  const sim::Cycle rest = to - from - 1;
  if (rest == 0) {
    return;
  }
  // Replaying further idle views touches nothing but the cycle counter and
  // the previous-view registers (every rule early-outs on an idle view
  // following an idle view), so the remainder collapses to bookkeeping.
  cycles_ += rest;
  prev_requests_ = 0;
  idle.cycle = to - 1;
  prev_ = idle;
}

void BusChecker::check_grant(const BusCycleView& v) {
  const bool handover = !prev_ || prev_->hmaster != v.hmaster;
  if (!handover || v.hmaster == ahb::kNoMaster) {
    return;
  }
  if (v.hmaster >= cfg_.masters) {
    return;  // write-buffer pseudo-master drains without HBUSREQ history
  }
  const std::uint32_t bit = 1U << v.hmaster;
  if ((pending_requests_ & bit) == 0 && (v.request_mask & bit) == 0) {
    log_.record(Severity::kError, v.cycle, "ahb.grant-implies-request",
                "master " + std::to_string(v.hmaster) +
                    " owns the bus without a pending request");
  }
  pending_requests_ &= ~bit;  // grant consumed the request
}

void BusChecker::check_stability(const BusCycleView& v) {
  if (!prev_ || prev_->hready) {
    return;
  }
  // Previous cycle stalled: the address phase must be held unchanged.
  const BusCycleView& p = *prev_;
  if (p.htrans == ahb::Trans::kIdle) {
    return;
  }
  if (v.htrans != p.htrans || v.haddr != p.haddr || v.hburst != p.hburst ||
      v.hsize != p.hsize || v.hwrite != p.hwrite) {
    log_.record(Severity::kError, v.cycle, "ahb.stable-when-stalled",
                "address/control changed while HREADY was low (addr " +
                    hex(p.haddr) + " -> " + hex(v.haddr) + ")");
  }
}

void BusChecker::check_alignment(const BusCycleView& v) {
  if (v.htrans != ahb::Trans::kNonSeq && v.htrans != ahb::Trans::kSeq) {
    return;
  }
  if (v.haddr % ahb::size_bytes(v.hsize) != 0) {
    log_.record(Severity::kError, v.cycle, "ahb.align",
                "HADDR " + hex(v.haddr) + " unaligned for HSIZE " +
                    std::string(ahb::to_string(v.hsize)));
  }
}

void BusChecker::check_width(const BusCycleView& v) {
  if (cfg_.bus_width_bytes == 0) {
    return;  // width rule disabled
  }
  if (v.htrans != ahb::Trans::kNonSeq && v.htrans != ahb::Trans::kSeq) {
    return;
  }
  if (ahb::size_bytes(v.hsize) > cfg_.bus_width_bytes) {
    log_.record(Severity::kError, v.cycle, "ahb.hsize-width",
                "HSIZE " + std::string(ahb::to_string(v.hsize)) + " (" +
                    std::to_string(ahb::size_bytes(v.hsize)) +
                    " bytes) exceeds the " +
                    std::to_string(cfg_.bus_width_bytes) + "-byte bus");
  }
}

void BusChecker::check_burst(const BusCycleView& v) {
  const bool accepted = v.hready && (v.htrans == ahb::Trans::kNonSeq ||
                                     v.htrans == ahb::Trans::kSeq);
  const unsigned fixed = ahb::burst_fixed_beats(burst_kind_);

  if (v.htrans == ahb::Trans::kBusy && !in_burst_) {
    log_.record(Severity::kError, v.cycle, "ahb.first-is-nonseq",
                "BUSY outside a burst");
    return;
  }

  if (!accepted) {
    return;
  }

  if (v.htrans == ahb::Trans::kNonSeq) {
    if (in_burst_ && fixed != 0 && beats_seen_ < fixed) {
      log_.record(Severity::kError, v.cycle, "ahb.burst-len",
                  "fixed burst terminated after " +
                      std::to_string(beats_seen_) + "/" +
                      std::to_string(fixed) + " beats");
    }
    // Start tracking the new burst.
    in_burst_ = true;
    burst_kind_ = v.hburst;
    burst_size_ = v.hsize;
    burst_dir_ = v.hwrite;
    const unsigned total = ahb::burst_fixed_beats(v.hburst);
    seq_ = ahb::BurstSequencer(v.haddr, v.hsize, v.hburst,
                               total == 0 ? 1024 : total);
    beats_seen_ = 1;
    if (v.hburst == ahb::Burst::kSingle) {
      in_burst_ = false;
    }
    // 1KB rule for the declared burst (checked on the full fixed length).
    if (total != 0 &&
        !ahb::burst_within_1kb(v.haddr, v.hsize, v.hburst, total)) {
      log_.record(Severity::kError, v.cycle, "ahb.1kb",
                  "burst from " + hex(v.haddr) + " crosses a 1KB boundary");
    }
    return;
  }

  // SEQ beat.
  if (!in_burst_) {
    log_.record(Severity::kError, v.cycle, "ahb.first-is-nonseq",
                "SEQ beat with no burst in progress at " + hex(v.haddr));
    return;
  }
  seq_.advance();
  ++beats_seen_;
  if (v.haddr != seq_.current()) {
    log_.record(Severity::kError, v.cycle, "ahb.seq-addr",
                "expected " + hex(seq_.current()) + " got " + hex(v.haddr));
  }
  if (v.hburst != burst_kind_ || v.hsize != burst_size_ ||
      v.hwrite != burst_dir_) {
    log_.record(Severity::kError, v.cycle, "ahb.seq-ctrl",
                "burst control changed mid-burst");
  }
  const unsigned total = ahb::burst_fixed_beats(burst_kind_);
  if (total != 0 && beats_seen_ >= total) {
    in_burst_ = false;  // burst complete
  }
}

void BusChecker::check_wbuf(const BusCycleView& v) {
  const unsigned depth = cfg_.write_buffer_enabled ? cfg_.write_buffer_depth : 0;
  if (v.wbuf_occupancy > depth) {
    log_.record(Severity::kError, v.cycle, "ahbp.wbuf-depth",
                "write buffer holds " + std::to_string(v.wbuf_occupancy) +
                    " entries, depth is " + std::to_string(depth));
  }
}

void QosChecker::on_grant(ahb::MasterId m, sim::Cycle waited, sim::Cycle now) {
  const ahb::QosConfig& cfg = regs_.config(m);
  if (cfg.cls != ahb::MasterClass::kRealTime) {
    return;
  }
  if (waited > cfg.objective) {
    ++misses_;
    log_.record(Severity::kWarning, now, "ahbp.qos-objective",
                "RT master " + std::to_string(m) + " waited " +
                    std::to_string(waited) + " > objective " +
                    std::to_string(cfg.objective));
  }
}

namespace {

void save_view(state::StateWriter& w, const BusCycleView& v) {
  w.put_u64(v.cycle);
  w.put_u32(v.request_mask);
  w.put_u8(v.hmaster);
  w.put_u8(static_cast<std::uint8_t>(v.htrans));
  w.put_u64(v.haddr);
  w.put_u8(static_cast<std::uint8_t>(v.hburst));
  w.put_u8(static_cast<std::uint8_t>(v.hsize));
  w.put_u8(static_cast<std::uint8_t>(v.hwrite));
  w.put_bool(v.hready);
  w.put_u8(static_cast<std::uint8_t>(v.hresp));
  w.put_u32(v.wbuf_occupancy);
}

void restore_view(state::StateReader& r, BusCycleView& v) {
  v.cycle = r.get_u64();
  v.request_mask = r.get_u32();
  v.hmaster = r.get_u8();
  v.htrans = static_cast<ahb::Trans>(r.get_u8());
  v.haddr = r.get_u64();
  v.hburst = static_cast<ahb::Burst>(r.get_u8());
  v.hsize = static_cast<ahb::Size>(r.get_u8());
  v.hwrite = static_cast<ahb::Dir>(r.get_u8());
  v.hready = r.get_bool();
  v.hresp = static_cast<ahb::Resp>(r.get_u8());
  v.wbuf_occupancy = r.get_u32();
}

}  // namespace

void BusChecker::save_state(state::StateWriter& w) const {
  w.begin("bus-checker");
  w.put_u64(cycles_);
  w.put_bool(prev_.has_value());
  if (prev_) {
    save_view(w, *prev_);
  }
  w.put_u32(prev_requests_);
  w.put_u32(pending_requests_);
  w.put_bool(in_burst_);
  seq_.save_state(w);
  w.put_u8(static_cast<std::uint8_t>(burst_kind_));
  w.put_u8(static_cast<std::uint8_t>(burst_size_));
  w.put_u8(static_cast<std::uint8_t>(burst_dir_));
  w.put_u32(beats_seen_);
  w.end();
}

void BusChecker::restore_state(state::StateReader& r) {
  r.enter("bus-checker");
  cycles_ = r.get_u64();
  if (r.get_bool()) {
    prev_.emplace();
    restore_view(r, *prev_);
  } else {
    prev_.reset();
  }
  prev_requests_ = r.get_u32();
  pending_requests_ = r.get_u32();
  in_burst_ = r.get_bool();
  seq_.restore_state(r);
  burst_kind_ = static_cast<ahb::Burst>(r.get_u8());
  burst_size_ = static_cast<ahb::Size>(r.get_u8());
  burst_dir_ = static_cast<ahb::Dir>(r.get_u8());
  beats_seen_ = r.get_u32();
  r.leave();
}

}  // namespace ahbp::chk
