#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "state/snapshot.hpp"
#include "sweep/runner.hpp"

/// \file protocol.hpp
/// The sweep-farm wire protocol: what flows between the coordinator and
/// its worker processes.
///
/// Every message is one transport frame (state/transport.hpp) whose
/// payload is a sealed `StateWriter` image — so each message carries the
/// snapshot format's magic, version and CRC-32, and a corrupted or
/// truncated message fails decode with a precise `StateError` instead of
/// desynchronizing the stream.  The conversation, per worker:
///
/// ```
///   coordinator -> worker   Hello     base scenario + embedded traces +
///                                     warm snapshot bytes (sent ONCE)
///   coordinator -> worker   Batch     index-addressed points as dotted-key
///                                     override lists (repeated)
///   worker -> coordinator   Outcome   one serialized PointOutcome per
///                                     completed point (streamed)
///   coordinator -> worker   Shutdown  no more work; exit cleanly
/// ```
///
/// Workers are deliberately *stateless between batches*: everything a
/// point needs travels as `base + overrides`, and everything the warm-up
/// amortization needs travels once in the Hello.  That makes the protocol
/// socket-ready — nothing references coordinator memory or a shared
/// filesystem — and makes re-issuing a dead worker's points to a survivor
/// a plain retransmit.

namespace ahbp::farm {

enum class MsgKind : std::uint8_t {
  kHello = 0,
  kBatch = 1,
  kOutcome = 2,
  kShutdown = 3,
};

/// Everything a worker needs before it can simulate: the canonical base
/// scenario text, resolved trace content for trace-backed masters (the
/// scenario names only paths — workers must not touch the coordinator's
/// filesystem), and the sealed warm snapshot per model (empty = run every
/// point cold).
struct HelloMsg {
  sweep::Model model = sweep::Model::kTlm;
  std::string scenario_text;
  /// (master index, trace text) for every trace-backed master, exactly as
  /// checkpoint files embed them (core::CheckpointInfo::traces).
  std::vector<std::pair<std::uint64_t, std::string>> traces;
  std::vector<std::uint8_t> warm_tlm;
  std::vector<std::uint8_t> warm_rtl;
};

/// One sweep point, shipped as its expansion index plus the dotted-key
/// overrides that produced it (applied to the Hello base in order).
struct PointAssignment {
  std::uint64_t index = 0;
  std::string label;
  std::vector<std::pair<std::string, std::string>> overrides;
};

/// A decoded message.  `kind` selects which member is meaningful.
struct Msg {
  MsgKind kind = MsgKind::kShutdown;
  HelloMsg hello;                      ///< kHello
  std::vector<PointAssignment> batch;  ///< kBatch
  sweep::PointOutcome outcome;         ///< kOutcome
};

std::vector<std::uint8_t> encode_hello(const HelloMsg& msg);
std::vector<std::uint8_t> encode_batch(const std::vector<PointAssignment>& b);
std::vector<std::uint8_t> encode_outcome(const sweep::PointOutcome& o);
std::vector<std::uint8_t> encode_shutdown();

/// Decode one frame payload.  Throws state::StateError on version or CRC
/// mismatch, an unknown message kind, or any structural drift.
Msg decode(const std::vector<std::uint8_t>& frame);

/// SimResult <-> records, exposed for tests: every field external tooling
/// sees (counters, profiles, stall attribution, violation digests) must
/// survive the wire so a farmed CSV is byte-identical to an in-process one.
void put_result(state::StateWriter& w, const core::SimResult& r);
core::SimResult get_result(state::StateReader& r);

}  // namespace ahbp::farm
