#include "sim/cycle_kernel.hpp"

#include <algorithm>

namespace ahbp::sim {

void CycleKernel::add(Clocked& component) {
  components_.push_back(&component);
  sorted_ = false;
}

void CycleKernel::sort_if_needed() {
  if (!sorted_) {
    std::stable_sort(
        components_.begin(), components_.end(),
        [](const Clocked* a, const Clocked* b) { return a->phase() < b->phase(); });
    sorted_ = true;
  }
}

void CycleKernel::step() {
  sort_if_needed();
  for (Clocked* c : components_) {
    c->evaluate(now_);
    ++evaluations_;
  }
  for (Clocked* c : components_) {
    c->update(now_);
  }
  ++now_;
}

void CycleKernel::run(Cycle cycles) {
  stop_ = false;
  for (Cycle i = 0; i < cycles && !stop_; ++i) {
    step();
  }
}

Cycle CycleKernel::run_until(const std::function<bool()>& predicate,
                             Cycle max_cycles) {
  stop_ = false;
  Cycle executed = 0;
  while (executed < max_cycles && !stop_ && !predicate()) {
    step();
    ++executed;
  }
  return executed;
}

void CycleKernel::save_state(state::StateWriter& w) const {
  w.begin("cycle-kernel");
  w.put_u64(now_);
  w.put_u64(evaluations_);
  w.end();
}

void CycleKernel::restore_state(state::StateReader& r) {
  r.enter("cycle-kernel");
  now_ = r.get_u64();
  evaluations_ = r.get_u64();
  r.leave();
}

}  // namespace ahbp::sim
