#include "sim/vcd.hpp"

#include <cstdint>
#include <stdexcept>

namespace ahbp::sim {

VcdWriter::VcdWriter(std::ostream& out) : out_(out) {}

void VcdWriter::add_signal(const SignalBase& sig, unsigned width) {
  if (header_written_) {
    throw std::logic_error("VcdWriter: add_signal after write_header");
  }
  entries_.push_back(Entry{&sig, make_id(entries_.size()), width, {}});
}

std::string VcdWriter::make_id(std::size_t index) {
  // VCD identifiers use printable ASCII 33..126 as digits.
  std::string id;
  do {
    id.push_back(static_cast<char>(33 + index % 94));
    index /= 94;
  } while (index != 0);
  return id;
}

std::string VcdWriter::to_binary(const std::string& decimal, unsigned width) {
  std::uint64_t v = 0;
  try {
    v = std::stoull(decimal);
  } catch (const std::exception&) {
    v = 0;
  }
  std::string bits(width, '0');
  for (unsigned i = 0; i < width; ++i) {
    if ((v >> i) & 1ULL) {
      bits[width - 1 - i] = '1';
    }
  }
  return bits;
}

void VcdWriter::write_header(const std::string& timescale) {
  out_ << "$timescale " << timescale << " $end\n";
  out_ << "$scope module ahbp $end\n";
  for (const Entry& e : entries_) {
    out_ << "$var wire " << e.width << " " << e.id << " " << e.sig->name()
         << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
  header_written_ = true;
}

void VcdWriter::sample(Tick t) {
  if (!header_written_) {
    throw std::logic_error("VcdWriter: sample before write_header");
  }
  bool stamped = false;
  for (Entry& e : entries_) {
    const std::string v = e.sig->value_string();
    if (!first_sample_ && v == e.last) {
      continue;
    }
    if (!stamped) {
      out_ << "#" << t << "\n";
      stamped = true;
    }
    if (e.width == 1) {
      out_ << (v == "1" ? "1" : "0") << e.id << "\n";
    } else {
      out_ << "b" << to_binary(v, e.width) << " " << e.id << "\n";
    }
    e.last = v;
    ++changes_;
  }
  first_sample_ = false;
}

}  // namespace ahbp::sim
