#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/time.hpp"
#include "state/snapshot.hpp"

namespace ahbp::obs {
class SelfProfiler;
}

/// \file event_kernel.hpp
/// Event-driven simulation kernel with delta cycles.
///
/// This kernel hosts the *signal-level* (pin-accurate) reference model.  Its
/// semantics mirror a classic HDL simulator:
///
///  1. **Evaluate** — every runnable process executes.  Processes read
///     signals' current values and `write()` their next values.
///  2. **Update** — all written signals commit.  Each signal whose value
///     actually changed notifies its subscribed processes, making them
///     runnable in the *next delta* of the same timestep.
///  3. Deltas repeat until no process is runnable, then simulated time
///     advances to the earliest pending timed event.
///
/// The kernel keeps activity counters (deltas, process activations, signal
/// updates) so the speed benchmarks can report *why* signal-level simulation
/// is slow, not just that it is.
///
/// Hot-path engineering: process bodies and timed handlers are move-only
/// `InlineFunction`s (no heap, no copy-per-event), near-future timed events
/// (delay < kTimedWheel — the clock's next-edge case) go into a bucketed
/// ring instead of a binary heap, and the delta loop recycles its scratch
/// vectors, so the steady-state dispatch loop performs zero allocations.

namespace ahbp::sim {

class EventKernel;
class SignalBase;

/// A simulation process: a callable that re-runs whenever one of the signals
/// it subscribes to changes value (or when explicitly triggered).
///
/// Processes are non-copyable identity objects; components own them and the
/// kernel references them.
class Process {
 public:
  using Body = InlineFunction<void()>;

  Process(EventKernel& kernel, std::string name, Body body);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Make the process runnable in the current evaluation phase (deduped).
  void trigger();

  std::string_view name() const noexcept { return name_; }

  /// Invoked by the kernel during the evaluate phase.
  void run();

 private:
  friend class EventKernel;
  EventKernel& kernel_;
  std::string name_;
  Body body_;
  bool scheduled_ = false;
  unsigned prof_id_ = ~0U;  ///< cached self-profiler phase id
};

/// Edge selector for subscriptions on boolean signals.  Non-bool signals
/// only support `kAny`.
enum class Edge : std::uint8_t { kAny, kPos, kNeg };

/// Type-erased base for signals: handles subscriber bookkeeping and the
/// commit protocol with the kernel.
class SignalBase {
 public:
  explicit SignalBase(EventKernel& kernel, std::string name);
  virtual ~SignalBase();

  SignalBase(const SignalBase&) = delete;
  SignalBase& operator=(const SignalBase&) = delete;

  /// Subscribe a process to value changes.  `edge` other than kAny is only
  /// meaningful for Signal<bool>.
  void subscribe(Process& proc, Edge edge = Edge::kAny);

  std::string_view name() const noexcept { return name_; }

  /// Render the current value for tracing (VCD / logs).
  virtual std::string value_string() const = 0;

  /// Committed value as raw bits, for checkpointing.  Only defined for
  /// signals carrying bool/integral/enum payloads (every fabric wire).
  virtual std::uint64_t snapshot_value() const = 0;

  /// Overwrite the committed value from a checkpoint.  No subscribers are
  /// notified and no update is scheduled: restore reproduces a *settled*
  /// state, exactly as the original kernel left it between timesteps.
  virtual void restore_value(std::uint64_t bits) = 0;

 protected:
  /// Ask the kernel to call commit() in the next update phase (deduped).
  void request_update();

  /// Notify subscribers after a committed change.  `rose`/`fell` qualify the
  /// transition for edge-filtered subscribers (bool signals only; other
  /// types pass rose=fell=false and only kAny subscribers fire).
  void notify(bool rose, bool fell);

 private:
  friend class EventKernel;
  /// Commit the pending write.  Returns true if the value changed.
  virtual bool commit() = 0;

  struct Subscription {
    Process* proc;
    Edge edge;
  };

  EventKernel& kernel_;
  std::string name_;
  std::vector<Subscription> subs_;
  bool update_pending_ = false;
};

/// A two-phase signal: `write()` stores a next value that becomes visible to
/// `read()` only after the update phase, exactly like an HDL signal.
template <typename T>
class Signal final : public SignalBase {
 public:
  Signal(EventKernel& kernel, std::string name, T initial = T{})
      : SignalBase(kernel, std::move(name)), cur_(initial), next_(initial) {}

  /// Current (committed) value.
  const T& read() const noexcept { return cur_; }

  /// Schedule `v` to become the value in the next update phase.
  void write(const T& v) {
    next_ = v;
    request_update();
  }

  std::string value_string() const override {
    if constexpr (std::is_same_v<T, bool>) {
      return cur_ ? "1" : "0";
    } else if constexpr (std::is_integral_v<T> || std::is_enum_v<T>) {
      return std::to_string(static_cast<long long>(cur_));
    } else {
      return "?";
    }
  }

  std::uint64_t snapshot_value() const override {
    if constexpr (std::is_same_v<T, bool>) {
      return cur_ ? 1 : 0;
    } else if constexpr (std::is_integral_v<T> || std::is_enum_v<T>) {
      return static_cast<std::uint64_t>(cur_);
    } else {
      throw state::StateError("Signal<" + name_string() +
                              ">: payload type is not checkpointable");
    }
  }

  void restore_value(std::uint64_t bits) override {
    if constexpr (std::is_same_v<T, bool>) {
      cur_ = bits != 0;
    } else if constexpr (std::is_integral_v<T> || std::is_enum_v<T>) {
      cur_ = static_cast<T>(bits);
    } else {
      throw state::StateError("Signal<" + name_string() +
                              ">: payload type is not checkpointable");
    }
    next_ = cur_;  // no pending update survives a restore
  }

 private:
  std::string name_string() const { return std::string(name()); }
  bool commit() override {
    if (cur_ == next_) {
      return false;
    }
    const bool was_false = is_false(cur_);
    cur_ = next_;
    const bool now_true = !is_false(cur_);
    notify(/*rose=*/was_false && now_true, /*fell=*/!was_false && !now_true);
    return true;
  }

  static bool is_false(const T& v) {
    if constexpr (std::is_same_v<T, bool>) {
      return !v;
    } else if constexpr (std::is_integral_v<T>) {
      return v == T{0};
    } else {
      return false;
    }
  }

  T cur_;
  T next_;
};

/// Activity counters exposed for the speed benchmarks and tests.
struct KernelStats {
  std::uint64_t deltas = 0;               ///< evaluate/update rounds executed
  std::uint64_t process_activations = 0;  ///< process bodies run
  std::uint64_t signal_commits = 0;       ///< committed signal changes
  std::uint64_t timed_events = 0;         ///< timed callbacks dispatched
};

/// The event-driven kernel itself.
///
/// Components allocate Signals and Processes against the kernel, subscribe
/// sensitivities, then the testbench calls run_until().
class EventKernel {
 public:
  using EventFn = InlineFunction<void()>;

  /// Ring size for near-future timed events.  A clock with period P
  /// schedules its next edge P/2 ticks out, so any sane clocking fits the
  /// ring and never touches the overflow heap.
  static constexpr Tick kTimedWheel = 16;

  EventKernel() = default;

  EventKernel(const EventKernel&) = delete;
  EventKernel& operator=(const EventKernel&) = delete;

  /// Current simulated time.
  Tick now() const noexcept { return now_; }

  /// Schedule a one-shot callback `delay` ticks from now (delay 0 means the
  /// next delta of the current timestep).  The handler is moved, never
  /// copied; near-future events (delay < kTimedWheel) go to the bucketed
  /// ring, the rest to the overflow heap.
  void schedule(Tick delay, EventFn fn);

  /// Run until simulated time reaches `until` (inclusive of events at
  /// `until`) or until no events remain.
  void run_until(Tick until);

  /// Settle all deltas at the current time without advancing time.
  void settle();

  /// True if no timed events remain.
  bool idle() const noexcept { return timed_count_ == 0; }

  const KernelStats& stats() const noexcept { return stats_; }

  /// Attach a self-profiler: every process activation is timed under a
  /// phase named "rtl.<process name>".  Null detaches; when detached (the
  /// default) the dispatch loop pays one pointer test per activation.
  /// Attach at most one distinct profiler per kernel lifetime (phase ids
  /// are cached in the processes).
  void set_profiler(obs::SelfProfiler* p) noexcept { profiler_ = p; }

  /// Registry of all signals (for tracing).  Non-owning.
  const std::vector<SignalBase*>& signals() const noexcept { return signals_; }

  /// Snapshot every registered signal's committed value (name-tagged, in
  /// registration order) plus the activity counters.  Valid only at a
  /// settled point: no runnable process, no pending commit.
  ///
  /// Time is deliberately *not* saved: a restored kernel restarts at tick 0
  /// with the same edge alignment a fresh platform has (one tick before the
  /// next rising edge), so components — which count bus cycles, not ticks —
  /// resume cycle-exactly.
  void save_signals(state::StateWriter& w) const;

  /// Restore into a freshly constructed platform of the same topology.
  /// Signal count and names must match registration order exactly; any
  /// drift throws StateError naming the offending wire.
  void restore_signals(state::StateReader& r);

 private:
  friend class Process;
  friend class SignalBase;

  void make_runnable(Process& p);
  void request_update(SignalBase& s);
  void register_signal(SignalBase& s);
  void unregister_signal(SignalBase& s);

  /// Run evaluate/update delta rounds until quiescent.
  void run_delta_rounds();

  /// Earliest pending timed event, or kNeverTick.
  Tick next_event_time() const noexcept;

  /// Dispatch every timed event at timestamp `at` (including events
  /// scheduled for `at` by the handlers themselves), in (at, seq) order.
  void dispatch_at(Tick at);

  struct TimedEvent {
    Tick at;
    std::uint64_t seq;  // FIFO order among same-time events
    EventFn fn;
  };
  struct TimedEventLater {
    bool operator()(const TimedEvent& a, const TimedEvent& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  Tick now_ = 0;
  std::uint64_t seq_ = 0;
  std::vector<Process*> runnable_;
  std::vector<SignalBase*> updates_;
  std::vector<Process*> run_scratch_;       ///< recycled delta-round buffer
  std::vector<SignalBase*> commit_scratch_; ///< recycled delta-round buffer
  std::vector<SignalBase*> signals_;

  /// Bucketed ring for events with at in [now_, now_ + kTimedWheel).  Each
  /// non-empty bucket holds exactly one timestamp (the window is narrower
  /// than the ring), in seq order.  Bucket vectors keep their capacity.
  std::array<std::vector<TimedEvent>, kTimedWheel> timed_ring_;
  /// Overflow min-heap (std::push_heap/pop_heap over a reused vector) for
  /// far-future events; entries are moved out on pop, never copied.
  std::vector<TimedEvent> timed_heap_;
  std::vector<TimedEvent> dispatch_scratch_;  ///< recycled dispatch buffer
  std::size_t timed_count_ = 0;

  KernelStats stats_;
  obs::SelfProfiler* profiler_ = nullptr;
};

}  // namespace ahbp::sim
