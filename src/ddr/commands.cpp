#include "ddr/commands.hpp"

namespace ahbp::ddr {

std::string_view to_string(CmdKind k) noexcept {
  switch (k) {
    case CmdKind::kNop: return "NOP";
    case CmdKind::kActivate: return "ACT";
    case CmdKind::kRead: return "RD";
    case CmdKind::kWrite: return "WR";
    case CmdKind::kPrecharge: return "PRE";
    case CmdKind::kRefresh: return "REF";
  }
  return "?";
}

}  // namespace ahbp::ddr
