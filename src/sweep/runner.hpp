#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/platform.hpp"
#include "stats/report.hpp"
#include "sweep/spec.hpp"

/// \file runner.hpp
/// Parallel execution of expanded sweeps.
///
/// Simulation runs are fully self-contained (`run_tlm` / `run_rtl` share no
/// mutable state), so a sweep fans out across a `std::thread` pool and
/// scales with cores.  Results are collected *by expansion index*, never by
/// completion order, so the aggregate report is byte-identical no matter
/// how many workers raced to produce it — determinism the tests pin down.

namespace ahbp::sweep {

/// Which model(s) each point runs on.
enum class Model : std::uint8_t {
  kTlm = 0,
  kRtl = 1,
  kBoth = 2,  ///< both, plus the TLM-vs-RTL accuracy column
};

/// Parse "tlm" / "rtl" / "both".  Returns false on an unknown name.
bool model_from_string(std::string_view name, Model& out);

/// The Table-1 accuracy metric: |tlm - rtl| / rtl total cycles (0 when the
/// RTL count is 0).  One definition, used by run reports and sweep tables.
double cycle_error(const core::SimResult& tlm, const core::SimResult& rtl);

/// Outcome of one sweep point.
struct PointOutcome {
  std::size_t index = 0;
  std::string label;
  bool has_tlm = false;
  bool has_rtl = false;
  core::SimResult tlm;
  core::SimResult rtl;
  std::string error;  ///< non-empty when the run threw instead of finishing

  /// |tlm - rtl| / rtl cycle error (0 unless both models ran).
  double cycle_error() const noexcept;
};

class SweepRunner {
 public:
  /// `jobs` worker threads (clamped to [1, points]; 0 = hardware
  /// concurrency).
  explicit SweepRunner(unsigned jobs = 1) : jobs_(jobs) {}

  unsigned jobs() const noexcept { return jobs_; }

  /// Run every point, in parallel, deterministically ordered by index.
  std::vector<PointOutcome> run(const std::vector<SweepPoint>& points,
                                Model model) const;

 private:
  unsigned jobs_;
};

/// Aggregate comparison table: index, label, cycles, completed
/// transactions, QoS warnings, protocol errors; with `Model::kBoth` also
/// the TLM-vs-RTL error column.  `include_speed` adds kcycles/sec columns —
/// wall-clock dependent, so leave it off wherever byte-stable output
/// matters (the default everywhere except interactive reports).
stats::TextTable aggregate_table(const std::vector<PointOutcome>& outcomes,
                                 Model model, bool include_speed = false);

}  // namespace ahbp::sweep
