#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/time.hpp"

/// \file timing.hpp
/// DDR SDRAM timing parameters.
///
/// All values are in *bus clock cycles* — the models run the memory
/// controller on the AHB clock (the paper's DDRC is on the bus clock domain;
/// its data path is abstracted, §3.3).  Presets approximate a DDR-266 part
/// of the paper's era; the exact values only need to be self-consistent,
/// because every experiment compares two models using the *same* timing.

namespace ahbp::ddr {

struct DdrTiming {
  sim::Cycle tRCD = 3;   ///< ACTIVATE -> READ/WRITE, same bank
  sim::Cycle tRP = 3;    ///< PRECHARGE -> ACTIVATE, same bank
  sim::Cycle tRAS = 7;   ///< ACTIVATE -> PRECHARGE (minimum row-open time)
  sim::Cycle tRC = 10;   ///< ACTIVATE -> ACTIVATE, same bank
  sim::Cycle tRRD = 2;   ///< ACTIVATE -> ACTIVATE, different banks
  sim::Cycle tCL = 3;    ///< READ command -> first data beat (CAS latency)
  sim::Cycle tWL = 1;    ///< WRITE command -> first data beat
  sim::Cycle tWR = 3;    ///< last write data -> PRECHARGE, same bank
  sim::Cycle tCCD = 1;   ///< column command -> column command (any bank)
  sim::Cycle tRFC = 20;  ///< REFRESH -> any command
  sim::Cycle tREFI = 1560;  ///< mean interval between refreshes (0 = off)

  /// Validate internal consistency (e.g. tRC >= tRAS + tRP).  Returns an
  /// empty string when consistent, else a description of the first problem.
  std::string validate() const;
};

/// Preset approximating DDR-266 (PC2100) at a 133MHz bus clock.
DdrTiming ddr266();

/// Preset approximating DDR-400 (PC3200) timings scaled to the bus clock.
DdrTiming ddr400();

/// A fast "toy" timing useful in unit tests (small constants, no refresh).
DdrTiming toy_timing();

/// Look a preset up by name ("ddr266", "ddr400", "toy").  Returns false
/// (and leaves `out` untouched) on an unknown name.
bool timing_preset(std::string_view name, DdrTiming& out);

}  // namespace ahbp::ddr
