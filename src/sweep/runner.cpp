#include "sweep/runner.hpp"

#include <atomic>
#include <cmath>
#include <exception>
#include <thread>

namespace ahbp::sweep {

bool model_from_string(std::string_view name, Model& out) {
  if (name == "tlm") {
    out = Model::kTlm;
  } else if (name == "rtl") {
    out = Model::kRtl;
  } else if (name == "both") {
    out = Model::kBoth;
  } else {
    return false;
  }
  return true;
}

double cycle_error(const core::SimResult& tlm, const core::SimResult& rtl) {
  if (rtl.cycles == 0) {
    return 0.0;
  }
  return std::abs(static_cast<double>(tlm.cycles) -
                  static_cast<double>(rtl.cycles)) /
         static_cast<double>(rtl.cycles);
}

double PointOutcome::cycle_error() const noexcept {
  if (!has_tlm || !has_rtl) {
    return 0.0;
  }
  return sweep::cycle_error(tlm, rtl);
}

std::vector<PointOutcome> SweepRunner::run(
    const std::vector<SweepPoint>& points, Model model) const {
  std::vector<PointOutcome> outcomes(points.size());

  const auto simulate = [&](std::size_t i) {
    const SweepPoint& p = points[i];
    PointOutcome& o = outcomes[i];
    o.index = p.index;
    o.label = p.label;
    try {
      if (model == Model::kTlm || model == Model::kBoth) {
        o.tlm = core::run_tlm(p.config);
        o.has_tlm = true;
      }
      if (model == Model::kRtl || model == Model::kBoth) {
        o.rtl = core::run_rtl(p.config);
        o.has_rtl = true;
      }
    } catch (const std::exception& e) {
      o.error = e.what();
    } catch (...) {
      o.error = "unknown simulation failure";
    }
  };

  unsigned jobs = jobs_ == 0 ? std::thread::hardware_concurrency() : jobs_;
  if (jobs == 0) {
    jobs = 1;
  }
  if (jobs > points.size()) {
    jobs = static_cast<unsigned>(points.size());
  }

  if (jobs <= 1) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      simulate(i);
    }
    return outcomes;
  }

  // Work-stealing by atomic counter: each worker grabs the next unclaimed
  // index.  Writes land in outcomes[i], so completion order is irrelevant.
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(jobs);
  for (unsigned w = 0; w < jobs; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= points.size()) {
          return;
        }
        simulate(i);
      }
    });
  }
  for (std::thread& t : workers) {
    t.join();
  }
  return outcomes;
}

stats::TextTable aggregate_table(const std::vector<PointOutcome>& outcomes,
                                 Model model, bool include_speed) {
  const bool both = model == Model::kBoth;
  const bool tlm = model != Model::kRtl;
  const bool rtl = model != Model::kTlm;

  std::vector<std::string> headers{"#", "configuration"};
  if (tlm) {
    headers.push_back("tlm cycles");
  }
  if (rtl) {
    headers.push_back("rtl cycles");
  }
  if (both) {
    headers.push_back("error");
  }
  headers.push_back("txns");
  headers.push_back("qos warn");
  headers.push_back("errors");
  if (include_speed && tlm) {
    headers.push_back("tlm kcyc/s");
  }
  if (include_speed && rtl) {
    headers.push_back("rtl kcyc/s");
  }
  stats::TextTable table(std::move(headers));

  for (const PointOutcome& o : outcomes) {
    std::vector<std::string> row{std::to_string(o.index), o.label};
    const core::SimResult& primary = o.has_tlm ? o.tlm : o.rtl;
    const auto cycles_cell = [](bool has, const core::SimResult& r) {
      if (!has) {
        return std::string("-");
      }
      return r.finished ? std::to_string(r.cycles)
                        : std::to_string(r.cycles) + " (timeout)";
    };
    if (tlm) {
      row.push_back(cycles_cell(o.has_tlm, o.tlm));
    }
    if (rtl) {
      row.push_back(cycles_cell(o.has_rtl, o.rtl));
    }
    if (both) {
      row.push_back(o.has_tlm && o.has_rtl
                        ? stats::fmt_percent(o.cycle_error())
                        : "-");
    }
    if (!o.error.empty()) {
      row.push_back("FAILED: " + o.error);
      row.push_back("-");
      row.push_back("-");
    } else {
      row.push_back(std::to_string(primary.completed));
      row.push_back(std::to_string(o.has_rtl ? o.rtl.qos_warnings
                                             : o.tlm.qos_warnings));
      row.push_back(std::to_string(primary.protocol_errors));
    }
    if (include_speed && tlm) {
      row.push_back(o.has_tlm
                        ? stats::fmt_double(core::kcycles_per_sec(o.tlm), 0)
                        : "-");
    }
    if (include_speed && rtl) {
      row.push_back(o.has_rtl
                        ? stats::fmt_double(core::kcycles_per_sec(o.rtl), 0)
                        : "-");
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace ahbp::sweep
