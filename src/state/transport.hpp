#pragma once

#include <cstdint>
#include <optional>
#include <vector>

/// \file transport.hpp
/// Snapshot-bytes transport: length-prefixed frames over a byte stream.
///
/// The sweep farm (src/farm/) ships serialized state — warm snapshots,
/// point batches, outcome records — between coordinator and worker
/// processes.  A frame is the unit of transfer:
///
/// ```
///   u32 magic   'A' 'H' 'B' 'F'          rejects desynchronized streams
///   u64 length  payload byte count       bounded (kMaxFrameBytes)
///   ...         payload                  a finished StateWriter image
/// ```
///
/// The payload is expected to be a `StateWriter::finish()` image, which
/// carries its own magic, format version and CRC-32 — so the frame layer
/// only guards *transport* failures (truncation, desync, crafted lengths)
/// and `StateReader` guards *content* corruption.  Both fail with a clear
/// `StateError`; neither can hang on a short read.
///
/// Frames work over any stream file descriptor — a pipe today, a TCP
/// socket tomorrow; nothing here assumes a local peer.  EINTR is retried;
/// a peer that vanishes surfaces as a clean EOF (std::nullopt) at a frame
/// boundary or a StateError mid-frame.
///
/// Note for pipe users: a write to a peer that already died raises
/// SIGPIPE, whose default disposition kills the process before the EPIPE
/// error can be returned.  Callers that must survive peer death (the farm
/// coordinator) ignore SIGPIPE around their transfer loops; see
/// farm/coordinator.cpp.

namespace ahbp::state {

/// Largest accepted frame payload.  A CRC-valid but crafted length fails
/// fast instead of attempting a multi-gigabyte allocation.
inline constexpr std::uint64_t kMaxFrameBytes = 1ull << 30;

/// Write all of `data` to `fd`, retrying short writes and EINTR.
/// Throws StateError on any write failure (including EPIPE).
void write_exact(int fd, const void* data, std::size_t size);

/// Read exactly `size` bytes into `data`.  Returns false on a clean EOF
/// before the first byte; throws StateError on EOF mid-read or any error.
bool read_exact(int fd, void* data, std::size_t size);

/// Write one frame (header + payload) to `fd`.
void write_frame(int fd, const std::uint8_t* payload, std::size_t size);
void write_frame(int fd, const std::vector<std::uint8_t>& payload);

/// Read one frame from `fd`.  Returns std::nullopt on a clean EOF at a
/// frame boundary (the peer closed between frames).  Throws StateError on
/// a truncated header/payload, a bad magic, or an oversized length.
std::optional<std::vector<std::uint8_t>> read_frame(int fd);

}  // namespace ahbp::state
