// Kernel micro-benchmarks (google-benchmark): the cost asymmetry behind
// the paper's §4 modeling choices — method-based components on the 2-step
// cycle kernel vs signal processes with delta cycles on the event kernel.
// These are the per-primitive numbers that aggregate into bench_speed's
// whole-model ratio.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "sim/clock.hpp"
#include "sim/cycle_kernel.hpp"
#include "sim/event_kernel.hpp"

namespace {

using namespace ahbp::sim;

// One cycle of a 2-step cycle kernel hosting N trivial components.
void BM_CycleKernelStep(benchmark::State& state) {
  const int components = static_cast<int>(state.range(0));
  CycleKernel k;
  std::vector<std::unique_ptr<CallbackClocked>> comps;
  std::uint64_t acc = 0;
  for (int i = 0; i < components; ++i) {
    comps.push_back(std::make_unique<CallbackClocked>(
        "c" + std::to_string(i), i, [&acc](Cycle now) { acc += now; }));
    k.add(*comps.back());
  }
  for (auto _ : state) {
    k.step();
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * components);
}
BENCHMARK(BM_CycleKernelStep)->Arg(4)->Arg(8)->Arg(32);

// One clock cycle of the event kernel with N posedge processes each
// committing one signal write — the RTL fabric's base cost.
void BM_EventKernelClockedProcesses(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  EventKernel k;
  Clock clk(k, "clk", 2);
  std::vector<std::unique_ptr<Signal<std::uint64_t>>> sigs;
  std::vector<std::unique_ptr<Process>> ps;
  std::uint64_t n = 0;
  for (int i = 0; i < procs; ++i) {
    sigs.push_back(std::make_unique<Signal<std::uint64_t>>(
        k, "s" + std::to_string(i)));
    auto* sig = sigs.back().get();
    ps.push_back(std::make_unique<Process>(k, "p" + std::to_string(i),
                                           [sig, &n] { sig->write(++n); }));
    clk.signal().subscribe(*ps.back(), Edge::kPos);
  }
  Tick t = 0;
  for (auto _ : state) {
    t += 2;
    k.run_until(t);
  }
  state.SetItemsProcessed(state.iterations() * procs);
}
BENCHMARK(BM_EventKernelClockedProcesses)->Arg(8)->Arg(32)->Arg(128);

// Pure signal commit cost (write + update phase, no subscribers).
void BM_SignalCommit(benchmark::State& state) {
  EventKernel k;
  Signal<std::uint64_t> s(k, "s");
  std::uint64_t v = 0;
  for (auto _ : state) {
    s.write(++v);
    k.settle();
  }
  benchmark::DoNotOptimize(s.read());
}
BENCHMARK(BM_SignalCommit);

// Delta cascade: a chain of N combinational processes settles per write —
// the ripple/mux cost class of the pin-level model.
void BM_DeltaCascade(benchmark::State& state) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  EventKernel k;
  std::vector<std::unique_ptr<Signal<std::uint64_t>>> sigs;
  for (std::size_t i = 0; i <= depth; ++i) {
    sigs.push_back(std::make_unique<Signal<std::uint64_t>>(
        k, "n" + std::to_string(i)));
  }
  std::vector<std::unique_ptr<Process>> ps;
  for (std::size_t i = 0; i < depth; ++i) {
    auto* in = sigs[i].get();
    auto* out = sigs[i + 1].get();
    ps.push_back(std::make_unique<Process>(
        k, "f" + std::to_string(i), [in, out] { out->write(in->read() + 1); }));
    in->subscribe(*ps.back());
  }
  std::uint64_t v = 0;
  for (auto _ : state) {
    sigs[0]->write(++v);
    k.settle();
  }
  benchmark::DoNotOptimize(sigs[depth]->read());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(depth));
}
BENCHMARK(BM_DeltaCascade)->Arg(4)->Arg(16)->Arg(64);

// Timed-event scheduling throughput (the clock generator's cost class).
void BM_TimedEvents(benchmark::State& state) {
  EventKernel k;
  Tick t = 0;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    k.schedule(1, [&fired] { ++fired; });
    ++t;
    k.run_until(t);
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_TimedEvents);

}  // namespace
