// Profiling primitives: summaries, log2 histograms, bus/master profiles,
// and the table/report renderers.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "stats/histogram.hpp"
#include "stats/profiles.hpp"
#include "stats/report.hpp"

namespace {

using namespace ahbp::stats;

TEST(Summary, TracksMinMaxMeanCount) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.min(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(10);
  s.add(20);
  s.add(3);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.min(), 3u);
  EXPECT_EQ(s.max(), 20u);
  EXPECT_DOUBLE_EQ(s.mean(), 11.0);
}

TEST(Log2Histogram, BucketsByPowerOfTwo) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(7);
  h.add(8);
  EXPECT_EQ(h.bucket(0), 2u);  // 0,1
  EXPECT_EQ(h.bucket(1), 2u);  // 2,3
  EXPECT_EQ(h.bucket(2), 2u);  // 4..7
  EXPECT_EQ(h.bucket(3), 1u);  // 8..15
  EXPECT_EQ(h.total(), 7u);
}

TEST(Log2Histogram, PercentileUpperBound) {
  Log2Histogram h;
  for (int i = 0; i < 90; ++i) {
    h.add(1);
  }
  for (int i = 0; i < 10; ++i) {
    h.add(100);
  }
  EXPECT_EQ(h.percentile_upper(50), 1u);
  EXPECT_GE(h.percentile_upper(99), 100u);
}

TEST(Log2Histogram, EmptyPercentileIsZero) {
  Log2Histogram h;
  EXPECT_EQ(h.percentile_upper(99), 0u);
}

TEST(Log2Histogram, EmptyHistogramReportsZeros) {
  Log2Histogram h;
  EXPECT_EQ(h.total(), 0u);
  for (unsigned k = 0; k < h.buckets(); ++k) {
    EXPECT_EQ(h.bucket(k), 0u);
  }
  EXPECT_EQ(h.summary().count(), 0u);
  EXPECT_EQ(h.summary().min(), 0u);
  EXPECT_EQ(h.summary().max(), 0u);
  EXPECT_DOUBLE_EQ(h.summary().mean(), 0.0);
  // Percentile on zero samples: zero at every requested percentile.
  EXPECT_EQ(h.percentile_upper(0), 0u);
  EXPECT_EQ(h.percentile_upper(50), 0u);
  EXPECT_EQ(h.percentile_upper(100), 0u);
}

TEST(Log2Histogram, SingleBucketDistribution) {
  // 0 and 1 both land in bucket 0; every percentile resolves to that
  // bucket's upper bound.
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(1);
  EXPECT_EQ(h.bucket(0), 3u);
  EXPECT_EQ(h.total(), 3u);
  for (unsigned k = 1; k < h.buckets(); ++k) {
    EXPECT_EQ(h.bucket(k), 0u);
  }
  EXPECT_EQ(h.percentile_upper(1), 1u);
  EXPECT_EQ(h.percentile_upper(100), 1u);
}

TEST(Log2Histogram, OverflowValuesClampToLastBucket) {
  Log2Histogram h;
  const std::uint64_t huge = ~std::uint64_t{0};
  h.add(huge);
  h.add(std::uint64_t{1} << 63);
  EXPECT_EQ(h.bucket(h.buckets() - 1), 2u);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.summary().max(), huge);
  // Out-of-range bucket queries answer zero instead of faulting.
  EXPECT_EQ(h.bucket(h.buckets()), 0u);
  EXPECT_EQ(h.bucket(1000), 0u);
}

TEST(BusProfile, UtilizationContentionThroughput) {
  BusProfile p;
  p.sample(0, false, 0);  // idle
  p.sample(1, true, 4);   // one requester, moving
  p.sample(3, true, 4);   // contention
  p.sample(2, false, 0);  // waiting (requesters but no progress)
  EXPECT_EQ(p.cycles, 4u);
  EXPECT_EQ(p.busy_cycles, 2u);
  EXPECT_EQ(p.contention_cycles, 2u);
  EXPECT_EQ(p.wait_cycles, 1u);
  EXPECT_DOUBLE_EQ(p.utilization(), 0.5);
  EXPECT_DOUBLE_EQ(p.contention(), 0.5);
  EXPECT_DOUBLE_EQ(p.throughput(), 2.0);
}

TEST(MasterProfile, RecordsByDirection) {
  MasterProfile m;
  ahbp::ahb::Transaction t;
  t.dir = ahbp::ahb::Dir::kRead;
  t.beats = 4;
  t.size = ahbp::ahb::Size::kWord;
  t.issued_at = 0;
  t.granted_at = 3;
  t.finished_at = 10;
  m.record(t, false);
  t.dir = ahbp::ahb::Dir::kWrite;
  t.data.assign(4, 0);
  m.record(t, true);
  EXPECT_EQ(m.reads, 1u);
  EXPECT_EQ(m.writes, 1u);
  EXPECT_EQ(m.bytes_read, 16u);
  EXPECT_EQ(m.bytes_written, 16u);
  EXPECT_EQ(m.buffered_writes, 1u);
  EXPECT_EQ(m.grant_wait.total(), 2u);
  EXPECT_EQ(m.latency.summary().max(), 10u);
}

TEST(TextTable, AlignsAndCounts) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22222"), std::string::npos);
  EXPECT_NE(s.find('+'), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Format, DoubleAndPercent) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.5, 1), "50.0%");
}

TEST(Report, RendersWithoutCrashing) {
  RunProfile p;
  p.total_cycles = 1000;
  p.completed_txns = 42;
  p.masters.resize(2);
  p.masters[0].name = "M0";
  p.masters[1].name = "M1";
  p.bus.sample(1, true, 4);
  std::ostringstream os;
  print_report(os, p, "test run");
  const std::string s = os.str();
  EXPECT_NE(s.find("test run"), std::string::npos);
  EXPECT_NE(s.find("M0"), std::string::npos);
  EXPECT_NE(s.find("write buffer"), std::string::npos);

  std::ostringstream csv;
  print_csv(csv, p);
  EXPECT_NE(csv.str().find("entity,metric,value"), std::string::npos);
}

TEST(DdrProfile, RowHitRate) {
  DdrProfile d;
  d.hits.row_hits = 3;
  d.hits.row_misses = 1;
  d.hits.row_conflicts = 0;
  EXPECT_DOUBLE_EQ(d.row_hit_rate(), 0.75);
  DdrProfile empty;
  EXPECT_DOUBLE_EQ(empty.row_hit_rate(), 0.0);
}

}  // namespace
