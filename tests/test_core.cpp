// Platform drivers and workload definitions: both models runnable through
// the public API, deterministic scripts, the Table-1 suite's shape, and
// the comparison utilities.

#include <gtest/gtest.h>

#include "core/compare.hpp"
#include "core/platform.hpp"
#include "core/workloads.hpp"

namespace {

using namespace ahbp;
using namespace ahbp::core;

TEST(Workloads, DefaultPlatformShape) {
  const PlatformConfig cfg = default_platform(4, 1, 50);
  EXPECT_EQ(cfg.masters.size(), 4u);
  EXPECT_EQ(cfg.geom.banks, 4u);
  EXPECT_EQ(cfg.timing.validate(), "");
  for (const auto& m : cfg.masters) {
    EXPECT_EQ(m.traffic.items, 50u);
  }
}

TEST(Workloads, Table1HasTwelveRowsInThreeGroups) {
  const auto rows = table1_workloads(10);
  ASSERT_EQ(rows.size(), 12u);
  int cpu = 0, dma = 0, rt = 0;
  for (const auto& w : rows) {
    if (w.name.rfind("cpu-", 0) == 0) {
      ++cpu;
    } else if (w.name.rfind("dma-", 0) == 0) {
      ++dma;
    } else if (w.name.rfind("rt-", 0) == 0) {
      ++rt;
    }
    EXPECT_EQ(w.config.masters.size(), 4u);
  }
  EXPECT_EQ(cpu, 4);
  EXPECT_EQ(dma, 4);
  EXPECT_EQ(rt, 4);
}

TEST(Workloads, RtRowsHaveRealTimeMaster) {
  for (const auto& w : table1_workloads(10)) {
    if (w.name.rfind("rt-", 0) == 0) {
      EXPECT_EQ(w.config.masters[0].qos.cls, ahb::MasterClass::kRealTime);
    }
  }
}

TEST(Workloads, MasterWindowsDisjoint) {
  for (const auto& w : table1_workloads(10)) {
    const auto& ms = w.config.masters;
    for (std::size_t i = 0; i < ms.size(); ++i) {
      for (std::size_t j = i + 1; j < ms.size(); ++j) {
        const auto& a = ms[i].traffic;
        const auto& b = ms[j].traffic;
        const bool disjoint =
            a.base + a.span <= b.base || b.base + b.span <= a.base;
        EXPECT_TRUE(disjoint) << w.name << " masters " << i << "," << j;
      }
    }
  }
}

TEST(Scripts, DeterministicAcrossCalls) {
  const PlatformConfig cfg = default_platform(2, 9, 20);
  const auto a = expand_stimulus(cfg);
  const auto b = expand_stimulus(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t m = 0; m < a.size(); ++m) {
    ASSERT_EQ(a[m].size(), b[m].size());
    for (std::size_t i = 0; i < a[m].size(); ++i) {
      EXPECT_EQ(a[m][i].txn.addr, b[m][i].txn.addr);
    }
  }
}

TEST(RunTlm, CompletesCleanly) {
  PlatformConfig cfg = default_platform(2, 3, 25);
  cfg.max_cycles = 100000;
  const SimResult r = run_tlm(cfg);
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.model, "tlm");
  EXPECT_EQ(r.completed, 50u);
  EXPECT_EQ(r.protocol_errors, 0u) << r.first_violations;
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.kernel_activity, 0u);
  EXPECT_EQ(r.profile.completed_txns, 50u);
}

TEST(RunRtl, CompletesCleanly) {
  PlatformConfig cfg = default_platform(2, 3, 25);
  cfg.max_cycles = 100000;
  const SimResult r = run_rtl(cfg);
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.model, "rtl");
  EXPECT_EQ(r.completed, 50u);
  EXPECT_EQ(r.protocol_errors, 0u) << r.first_violations;
  EXPECT_GT(r.cycles, 0u);
}

TEST(RunBoth, CheckersOffStillRuns) {
  PlatformConfig cfg = default_platform(1, 5, 10);
  cfg.enable_checkers = false;
  EXPECT_TRUE(run_tlm(cfg).finished);
  EXPECT_TRUE(run_rtl(cfg).finished);
}

TEST(Compare, ProducesBoundedError) {
  Workload w{"t", default_platform(2, 7, 30)};
  const AccuracyRow row = compare_models(w);
  EXPECT_TRUE(row.both_finished);
  EXPECT_EQ(row.protocol_errors, 0u);
  EXPECT_GT(row.rtl_cycles, 0u);
  EXPECT_GT(row.tlm_cycles, 0u);
  EXPECT_LT(row.error, 0.25);  // loose sanity bound; tight bound elsewhere
}

TEST(Compare, SuiteAggregates) {
  std::vector<Workload> ws;
  ws.push_back({"a", default_platform(2, 1, 15)});
  ws.push_back({"b", default_platform(2, 2, 15)});
  const AccuracySuite s = compare_suite(ws);
  ASSERT_EQ(s.rows.size(), 2u);
  EXPECT_GE(s.worst_error, s.average_error / 2);
}

TEST(KcyclesPerSec, ZeroWallIsZero) {
  SimResult r;
  r.ran_cycles = 1000;
  r.wall_seconds = 0.0;
  EXPECT_DOUBLE_EQ(kcycles_per_sec(r), 0.0);
  r.wall_seconds = 0.5;
  EXPECT_DOUBLE_EQ(kcycles_per_sec(r), 2.0);
}

TEST(SingleMaster, WorkloadRuns) {
  auto w = single_master_workload(20, 3);
  w.config.max_cycles = 100000;
  const SimResult r = run_tlm(w.config);
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.completed, 20u);
}

}  // namespace
