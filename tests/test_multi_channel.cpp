// Sharded-DDR cross-model equivalence — the acceptance contract of the
// multi-channel refactor: at every channel count the TLM must track the
// signal-level reference within the established accuracy budget, retire
// identical work with silent checkers, and channel scaling must never
// cost cycles on bandwidth-bound traffic.  channels = 1 must reproduce
// the single-controller platform exactly, including through the scenario
// round trip.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace ahbp;

/// The Table-1 accuracy budget the repo already holds its models to
/// (see test_bus_width.cpp / the CI sweep gates).
constexpr double kMaxCycleError = 0.15;

double cycle_error(const core::SimResult& tlm, const core::SimResult& rtl) {
  return std::abs(static_cast<double>(tlm.cycles) -
                  static_cast<double>(rtl.cycles)) /
         static_cast<double>(rtl.cycles);
}

core::PlatformConfig preset(const std::string& name, unsigned items,
                            unsigned channels) {
  core::PlatformConfig cfg =
      scenario::ScenarioRegistry::builtin().build(name, items);
  scenario::apply_key(cfg, "ddr.channels", std::to_string(channels));
  return cfg;
}

// -------------------------------------- equivalence at every channel count

class MultiChannelEquivalence
    : public ::testing::TestWithParam<const char*> {};

TEST_P(MultiChannelEquivalence, ModelsAgreeAtEveryChannelCount) {
  const std::string name = GetParam();
  for (const unsigned channels : {1u, 2u, 4u}) {
    const core::PlatformConfig cfg = preset(name, 60, channels);
    const core::SimResult tlm = core::run_tlm(cfg);
    const core::SimResult rtl = core::run_rtl(cfg);

    ASSERT_TRUE(tlm.finished) << name << " tlm, channels " << channels;
    ASSERT_TRUE(rtl.finished) << name << " rtl, channels " << channels;
    EXPECT_EQ(tlm.protocol_errors, 0u)
        << name << " channels " << channels << "\n" << tlm.first_violations;
    EXPECT_EQ(rtl.protocol_errors, 0u)
        << name << " channels " << channels << "\n" << rtl.first_violations;
    // Identical stimulus retires identical work in both models.
    EXPECT_EQ(tlm.completed, rtl.completed)
        << name << " channels " << channels;
    EXPECT_LT(cycle_error(tlm, rtl), kMaxCycleError)
        << name << " channels " << channels << ": tlm=" << tlm.cycles
        << " rtl=" << rtl.cycles;
  }
}

INSTANTIATE_TEST_SUITE_P(Table1PlusBankConflict, MultiChannelEquivalence,
                         ::testing::Values("table1/cpu-1", "table1/dma-1",
                                           "table1/rt-1", "bank-conflict"),
                         [](const auto& pinfo) {
                           std::string n = pinfo.param;
                           for (char& c : n) {
                             if (c == '/' || c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

// ------------------------------- channel scaling is monotone on bandwidth

TEST(MultiChannelScaling, CyclesNeverIncreaseWithChannelsOnBandwidthBound) {
  // Bandwidth-bound patterns: saturated DMA trains and the pathological
  // single-bank thrash.  More channels mean more row buffers and more
  // command bandwidth, so total cycles must be monotonically
  // non-increasing in the channel count for both models.
  for (const char* name : {"table1/dma-1", "bank-conflict"}) {
    std::vector<sim::Cycle> tlm_cycles, rtl_cycles;
    for (const unsigned channels : {1u, 2u, 4u}) {
      const core::PlatformConfig cfg = preset(name, 60, channels);
      const core::SimResult tlm = core::run_tlm(cfg);
      const core::SimResult rtl = core::run_rtl(cfg);
      ASSERT_TRUE(tlm.finished && rtl.finished)
          << name << " channels " << channels;
      tlm_cycles.push_back(tlm.cycles);
      rtl_cycles.push_back(rtl.cycles);
    }
    for (std::size_t i = 1; i < tlm_cycles.size(); ++i) {
      EXPECT_LE(tlm_cycles[i], tlm_cycles[i - 1])
          << name << " tlm channel step " << i;
      EXPECT_LE(rtl_cycles[i], rtl_cycles[i - 1])
          << name << " rtl channel step " << i;
    }
    // Sharding the thrashing workload buys a real speedup, not a tie.
    if (std::string(name) == "bank-conflict") {
      EXPECT_LT(tlm_cycles.back(), tlm_cycles.front());
      EXPECT_LT(rtl_cycles.back(), rtl_cycles.front());
    }
  }
}

// --------------------------------------- channels = 1 is the old platform

TEST(MultiChannelIdentity, EveryPresetIsUnchangedAtOneChannel) {
  // Every registry preset parses back through the scenario layer with the
  // new [ddr] channels/interleave_bytes keys and reproduces the exact
  // cycle count of the directly built configuration.
  for (const auto& e : scenario::ScenarioRegistry::builtin().entries()) {
    const core::PlatformConfig built = e.build(40, 1);
    ASSERT_EQ(built.interleave.channels, 1u) << e.name;
    const core::PlatformConfig reparsed =
        scenario::parse(scenario::serialize(built));
    const core::SimResult a = core::run_tlm(built);
    const core::SimResult b = core::run_tlm(reparsed);
    EXPECT_EQ(a.cycles, b.cycles) << e.name;
    EXPECT_EQ(a.completed, b.completed) << e.name;
  }
}

TEST(MultiChannelIdentity, ExplicitSingleChannelMatchesDefault) {
  // Forcing channels = 1 / any stripe through the override machinery is a
  // no-op: the interleave is the identity and the ChannelSet passes every
  // call straight through to the one engine.
  core::PlatformConfig base =
      scenario::ScenarioRegistry::builtin().build("table1/cpu-1", 60);
  core::PlatformConfig forced = base;
  scenario::apply_key(forced, "ddr.channels", "1");
  scenario::apply_key(forced, "ddr.interleave_bytes", "64");

  for (const bool rtl : {false, true}) {
    const core::SimResult a = rtl ? core::run_rtl(base) : core::run_tlm(base);
    const core::SimResult b =
        rtl ? core::run_rtl(forced) : core::run_tlm(forced);
    EXPECT_EQ(a.cycles, b.cycles) << (rtl ? "rtl" : "tlm");
    EXPECT_EQ(a.ran_cycles, b.ran_cycles) << (rtl ? "rtl" : "tlm");
    EXPECT_EQ(a.completed, b.completed) << (rtl ? "rtl" : "tlm");
  }
}

// ----------------------------------------------- per-channel overrides

TEST(MultiChannelOverrides, SlowerChannelShowsUpInTheProfile) {
  // channel1.* keys resolve against the shared [ddr] base: degrading one
  // channel's CAS latency still runs clean in both models and both models
  // agree on the result.
  core::PlatformConfig cfg = preset("table1/dma-1", 60, 2);
  scenario::apply_key(cfg, "channel1.tCL", "8");

  const core::SimResult tlm = core::run_tlm(cfg);
  const core::SimResult rtl = core::run_rtl(cfg);
  ASSERT_TRUE(tlm.finished && rtl.finished);
  EXPECT_EQ(tlm.protocol_errors, 0u) << tlm.first_violations;
  EXPECT_EQ(rtl.protocol_errors, 0u) << rtl.first_violations;
  EXPECT_LT(cycle_error(tlm, rtl), kMaxCycleError)
      << "tlm=" << tlm.cycles << " rtl=" << rtl.cycles;

  // The degraded platform is slower than the uniform one.
  const core::PlatformConfig uniform = preset("table1/dma-1", 60, 2);
  EXPECT_GT(tlm.cycles, core::run_tlm(uniform).cycles);
}

}  // namespace
