#pragma once

#include <optional>

#include "ahb/config.hpp"
#include "ahb/types.hpp"
#include "ddr/scheduler.hpp"
#include "rtl/signals.hpp"
#include "sim/event_kernel.hpp"

/// \file ddrc.hpp
/// Pin-level DDR controller.
///
/// The AHB slave interface (HREADY/HRDATA/HWDATA sampling, pipelined
/// address acceptance) and the BI signal bundle are modeled wire-by-wire;
/// the controller FSM inside is the shared ddr::DdrcEngine — the same
/// "FSM as accurate as RTL" (§3.3) the TLM uses, so both models enforce
/// identical DRAM timing.

namespace ahbp::rtl {

class RtlDdrc {
 public:
  RtlDdrc(sim::EventKernel& kernel, const ddr::DdrTiming& timing,
          const ddr::Geometry& geom, ahb::Addr region_base,
          const ahb::BusConfig& cfg, SharedWires& shared,
          const sim::Cycle* now);

  RtlDdrc(const RtlDdrc&) = delete;
  RtlDdrc& operator=(const RtlDdrc&) = delete;

  void bind_clock(sim::Signal<bool>& clk);

  const ddr::DdrcEngine& engine() const noexcept { return engine_; }
  ddr::DdrcEngine& engine() noexcept { return engine_; }

  /// Nothing in flight and no background writes pending.
  bool quiescent() const noexcept {
    return !engine_.busy() && engine_.pending_write_chunks() == 0;
  }

 private:
  void at_edge();
  void sample_inputs(sim::Cycle now);
  void drive_outputs(sim::Cycle now);
  void drive_bi(sim::Cycle now);

  ddr::DdrcEngine engine_;
  ahb::Addr base_;
  const ahb::BusConfig& cfg_;
  SharedWires& sh_;
  const sim::Cycle* now_;
  sim::Process proc_;

  /// BI announce latched from the arbiter (consumed at NONSEQ acceptance).
  struct Announce {
    ahb::Addr addr = 0;
    ahb::Burst burst = ahb::Burst::kSingle;
    ahb::Size size = ahb::Size::kWord;
    unsigned beats = 1;
    bool is_write = false;
  };
  std::optional<Announce> announce_;

  // Current bus-side transfer bookkeeping (write data-phase gating).
  bool cur_active_ = false;
  bool cur_is_write_ = false;
  unsigned cur_beats_ = 0;
  unsigned addr_accepted_ = 0;
  unsigned puts_done_ = 0;
};

}  // namespace ahbp::rtl
