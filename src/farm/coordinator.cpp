#include "farm/coordinator.hpp"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <utility>

#include "core/checkpoint.hpp"
#include "farm/protocol.hpp"
#include "farm/worker.hpp"
#include "scenario/scenario.hpp"
#include "state/transport.hpp"

namespace ahbp::farm {

namespace {

/// Writing to a worker that died raises SIGPIPE, whose default action
/// kills the coordinator before write() can return EPIPE — the exact
/// failure the farm must survive.  Ignore it for the coordinator's
/// lifetime on this code path and restore the previous disposition after.
class SigpipeGuard {
 public:
  SigpipeGuard() {
    struct sigaction ignore = {};
    ignore.sa_handler = SIG_IGN;
    sigaction(SIGPIPE, &ignore, &saved_);
  }
  ~SigpipeGuard() { sigaction(SIGPIPE, &saved_, nullptr); }
  SigpipeGuard(const SigpipeGuard&) = delete;
  SigpipeGuard& operator=(const SigpipeGuard&) = delete;

 private:
  struct sigaction saved_ = {};
};

struct WorkerProc {
  pid_t pid = -1;
  int cmd_fd = -1;  ///< coordinator -> worker (batches, shutdown)
  int res_fd = -1;  ///< worker -> coordinator (outcomes)
  bool alive = false;
  std::vector<std::size_t> outstanding;  ///< issued, not yet acknowledged
};

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Per-point dotted-key override lists, same stride arithmetic as
/// sweep::expand (first axis slowest) — what travels instead of full
/// configurations.
std::vector<PointAssignment> make_assignments(
    const sweep::SweepSpec& spec, const std::vector<sweep::SweepPoint>& points) {
  std::vector<std::size_t> stride(spec.axes.size(), 1);
  for (std::size_t a = spec.axes.size(); a-- > 1;) {
    stride[a - 1] = stride[a] * spec.axes[a].values.size();
  }
  std::vector<PointAssignment> out(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    out[i].index = static_cast<std::uint64_t>(points[i].index);
    out[i].label = points[i].label;
    out[i].overrides.reserve(spec.axes.size());
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      const sweep::Axis& ax = spec.axes[a];
      out[i].overrides.emplace_back(
          ax.key, ax.values[(i / stride[a]) % ax.values.size()]);
    }
  }
  return out;
}

}  // namespace

std::vector<sweep::PointOutcome> Coordinator::run(const sweep::SweepSpec& spec,
                                                  sweep::Model model) const {
  const std::vector<sweep::SweepPoint> points = sweep::expand(spec);
  std::vector<sweep::PointOutcome> outcomes(points.size());
  if (points.empty()) {
    return outcomes;
  }
  const std::size_t total = points.size();

  unsigned worker_count = opts_.workers == 0 ? 1 : opts_.workers;
  if (worker_count > total) {
    worker_count = static_cast<unsigned>(total);
  }
  const std::size_t in_flight =
      opts_.max_in_flight == 0 ? 1 : opts_.max_in_flight;

  // Warm the base once per model — the same serial prefix the in-process
  // runner simulates — then freeze the bytes into the Hello.
  std::vector<std::uint8_t> warm_tlm, warm_rtl;
  sweep::warm_snapshots(spec.base_config, model, opts_.warmup_cycles, warm_tlm,
                        warm_rtl);

  // Self-describing base: canonical scenario text + embedded trace content,
  // exactly what checkpoint files store, so workers never read our disk.
  HelloMsg hello;
  hello.model = model;
  core::PlatformConfig base = spec.base_config;
  core::resolve_stimulus(base);
  hello.scenario_text = scenario::serialize(base);
  for (std::size_t i = 0; i < base.masters.size(); ++i) {
    if (base.masters[i].traffic.is_trace()) {
      hello.traces.emplace_back(static_cast<std::uint64_t>(i),
                                base.masters[i].traffic.trace_text);
    }
  }
  hello.warm_tlm = std::move(warm_tlm);
  hello.warm_rtl = std::move(warm_rtl);
  const std::vector<std::uint8_t> hello_bytes = encode_hello(hello);
  const std::vector<std::uint8_t> shutdown_bytes = encode_shutdown();
  const std::vector<PointAssignment> assignments =
      make_assignments(spec, points);

  SigpipeGuard sigpipe_ignored;

  std::vector<WorkerProc> workers(worker_count);
  for (unsigned w = 0; w < worker_count; ++w) {
    int cmd[2] = {-1, -1};
    int res[2] = {-1, -1};
    if (::pipe(cmd) != 0 || ::pipe(res) != 0) {
      const int err = errno;
      close_fd(cmd[0]);
      close_fd(cmd[1]);
      throw std::runtime_error("sweep farm: pipe() failed: " +
                               std::string(std::strerror(err)));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      const int err = errno;
      close_fd(cmd[0]);
      close_fd(cmd[1]);
      close_fd(res[0]);
      close_fd(res[1]);
      throw std::runtime_error("sweep farm: fork() failed: " +
                               std::string(std::strerror(err)));
    }
    if (pid == 0) {
      // Worker process.  Drop the coordinator-side ends and — critically —
      // every earlier worker's fds we inherited: a surviving copy of a
      // sibling's pipe end would keep that pipe open after the sibling
      // dies and mask its EOF from the coordinator.
      ::close(cmd[1]);
      ::close(res[0]);
      for (unsigned prev = 0; prev < w; ++prev) {
        ::close(workers[prev].cmd_fd);
        ::close(workers[prev].res_fd);
      }
      if (!opts_.worker_command.empty()) {
        std::vector<std::string> argv_s = opts_.worker_command;
        argv_s.push_back("--in");
        argv_s.push_back(std::to_string(cmd[0]));
        argv_s.push_back("--out");
        argv_s.push_back(std::to_string(res[1]));
        std::vector<char*> argv;
        argv.reserve(argv_s.size() + 1);
        for (std::string& s : argv_s) {
          argv.push_back(s.data());
        }
        argv.push_back(nullptr);
        ::execv(argv[0], argv.data());
        ::_exit(127);  // exec failed; the coordinator sees EOF and re-issues
      }
      int code = 0;
      try {
        worker_loop(cmd[0], res[1]);
      } catch (...) {
        code = 3;
      }
      ::_exit(code);  // never return into the coordinator's stack
    }
    // Coordinator side.
    ::close(cmd[0]);
    ::close(res[1]);
    workers[w].pid = pid;
    workers[w].cmd_fd = cmd[1];
    workers[w].res_fd = res[0];
    workers[w].alive = true;
  }

  if (opts_.on_spawn) {
    std::vector<pid_t> pids;
    pids.reserve(workers.size());
    for (const WorkerProc& w : workers) {
      pids.push_back(w.pid);
    }
    opts_.on_spawn(pids);
  }

  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < total; ++i) {
    queue.push_back(i);
  }
  std::vector<bool> received(total, false);
  std::size_t done = 0;

  const auto mark_dead = [&](WorkerProc& w) {
    if (!w.alive) {
      return;
    }
    w.alive = false;
    close_fd(w.cmd_fd);
    close_fd(w.res_fd);
    // Unacknowledged points go back to the head of the queue in index
    // order: earliest points first keeps re-issue close to expansion
    // order, though merge-by-index makes any order byte-identical.
    std::sort(w.outstanding.begin(), w.outstanding.end());
    for (std::size_t k = w.outstanding.size(); k-- > 0;) {
      queue.push_front(w.outstanding[k]);
    }
    w.outstanding.clear();
  };

  const auto feed = [&](WorkerProc& w) {
    while (w.alive && w.outstanding.size() < in_flight && !queue.empty()) {
      const std::size_t i = queue.front();
      queue.pop_front();
      w.outstanding.push_back(i);
      try {
        state::write_frame(w.cmd_fd, encode_batch({assignments[i]}));
      } catch (const state::StateError&) {
        mark_dead(w);  // EPIPE etc; re-queues i along with the rest
        return;
      }
    }
    if (w.alive && queue.empty() && w.outstanding.empty()) {
      // Nothing left for this worker, ever: release it.
      try {
        state::write_frame(w.cmd_fd, shutdown_bytes);
      } catch (const state::StateError&) {
      }
      close_fd(w.cmd_fd);
    }
  };

  for (WorkerProc& w : workers) {
    if (!w.alive) {
      continue;
    }
    try {
      state::write_frame(w.cmd_fd, hello_bytes);
    } catch (const state::StateError&) {
      mark_dead(w);
      continue;
    }
    feed(w);
  }

  std::vector<pollfd> pfds;
  std::vector<std::size_t> pfd_worker;
  while (done < total) {
    pfds.clear();
    pfd_worker.clear();
    for (std::size_t wi = 0; wi < workers.size(); ++wi) {
      if (workers[wi].alive) {
        pfds.push_back(pollfd{workers[wi].res_fd, POLLIN, 0});
        pfd_worker.push_back(wi);
      }
    }
    if (pfds.empty()) {
      throw std::runtime_error(
          "sweep farm: all " + std::to_string(worker_count) +
          " workers died; " + std::to_string(total - done) + " of " +
          std::to_string(total) + " points incomplete");
    }
    if (::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), -1) < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw std::runtime_error("sweep farm: poll() failed: " +
                               std::string(std::strerror(errno)));
    }
    for (std::size_t k = 0; k < pfds.size(); ++k) {
      WorkerProc& w = workers[pfd_worker[k]];
      if (!w.alive || pfds[k].revents == 0) {
        continue;
      }
      // POLLIN first even when POLLHUP is also set: a dead worker's last
      // outcomes may still sit in the pipe and are perfectly valid acks —
      // drain until the read itself reports EOF.
      Msg msg;
      try {
        auto frame = state::read_frame(w.res_fd);
        if (!frame) {
          mark_dead(w);  // clean EOF: worker exited
          continue;
        }
        msg = decode(*frame);
      } catch (const state::StateError&) {
        mark_dead(w);  // truncated/corrupt frame: treat as worker loss
        continue;
      }
      if (msg.kind != MsgKind::kOutcome) {
        mark_dead(w);  // a worker that talks out of turn is not trusted
        continue;
      }
      const std::size_t i = msg.outcome.index;
      for (std::size_t o = 0; o < w.outstanding.size(); ++o) {
        if (w.outstanding[o] == i) {
          w.outstanding.erase(w.outstanding.begin() +
                              static_cast<std::ptrdiff_t>(o));
          break;
        }
      }
      if (i < total && !received[i]) {
        received[i] = true;
        outcomes[i] = std::move(msg.outcome);
        ++done;
        if (opts_.progress) {
          opts_.progress(done, total);
        }
      }
      feed(w);
    }
    // A death above may have re-queued points while every survivor is
    // already below its in-flight cap — push the freed work out now.
    if (!queue.empty()) {
      for (WorkerProc& w : workers) {
        if (w.alive) {
          feed(w);
        }
      }
    }
  }

  for (WorkerProc& w : workers) {
    if (w.alive && w.cmd_fd >= 0) {
      try {
        state::write_frame(w.cmd_fd, shutdown_bytes);
      } catch (const state::StateError&) {
      }
    }
    close_fd(w.cmd_fd);
    close_fd(w.res_fd);
  }
  for (WorkerProc& w : workers) {
    if (w.pid > 0) {
      int status = 0;
      while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
  }
  return outcomes;
}

}  // namespace ahbp::farm
