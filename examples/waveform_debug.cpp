// Signal-level debugging: the one place where the pin-accurate reference
// model beats the TLM.  Runs a short workload on the signal-level platform
// and dumps the architectural bus signals to ahbp_waves.vcd — open it in
// GTKWave to watch HBUSREQ/HGRANT/HTRANS/HADDR/HREADY and the write-buffer
// occupancy cycle by cycle.

#include <fstream>
#include <iostream>

#include "core/platform.hpp"
#include "core/workloads.hpp"
#include "rtl/fabric.hpp"

int main() {
  using namespace ahbp;

  core::PlatformConfig cfg = core::default_platform(2, 5, 12);
  cfg.masters[0].traffic.kind = traffic::PatternKind::kCpu;
  cfg.masters[1].traffic.kind = traffic::PatternKind::kDma;
  cfg.masters[1].traffic.dma_burst_beats = 8;

  rtl::RtlFabricConfig fc;
  fc.bus = cfg.bus;
  fc.timing = cfg.timing;
  fc.geom = cfg.geom;
  fc.ddr_base = cfg.ddr_base;
  for (const auto& m : cfg.masters) {
    fc.qos.push_back(m.qos);
  }

  rtl::RtlFabric fabric(fc, core::expand_stimulus(cfg));

  std::ofstream vcd("ahbp_waves.vcd");
  if (!vcd) {
    std::cerr << "cannot open ahbp_waves.vcd for writing\n";
    return 1;
  }
  fabric.enable_vcd(vcd);

  const sim::Cycle ran = fabric.run(5000);
  std::cout << "ran " << ran << " bus cycles, completed "
            << fabric.completed_txns() << " transactions, "
            << fabric.violations().errors() << " protocol errors\n";
  std::cout << "kernel activity: " << fabric.kernel().stats().deltas
            << " delta rounds, " << fabric.kernel().stats().signal_commits
            << " signal commits\n";
  std::cout << "\nwaveform written to ahbp_waves.vcd — open with:\n"
            << "  gtkwave ahbp_waves.vcd\n";
  return 0;
}
