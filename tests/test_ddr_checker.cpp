// The independent DDR timing checker must flag each rule violation — these
// are the negative tests proving the property checker actually checks.

#include <gtest/gtest.h>

#include "ddr/timing_checker.hpp"

namespace {

using namespace ahbp::ddr;

Geometry geom4() {
  Geometry g;
  g.banks = 4;
  g.rows = 64;
  g.cols = 32;
  g.col_bytes = 4;
  return g;
}

bool has_rule(const TimingChecker& c, const std::string& rule) {
  for (const auto& v : c.violations()) {
    if (v.rule == rule) {
      return true;
    }
  }
  return false;
}

TEST(TimingChecker, CleanSequencePasses) {
  TimingChecker c(toy_timing(), geom4());
  c.observe(Command{CmdKind::kActivate, 0, 1, 0, 0}, 0);
  c.observe(Command{CmdKind::kRead, 0, 1, 0, 4}, 2);
  c.observe(Command{CmdKind::kPrecharge, 0, 0, 0, 0}, 8);
  EXPECT_TRUE(c.clean());
  EXPECT_EQ(c.commands_seen(), 3u);
}

TEST(TimingChecker, FlagsTrcdViolation) {
  TimingChecker c(toy_timing(), geom4());
  c.observe(Command{CmdKind::kActivate, 0, 1, 0, 0}, 0);
  c.observe(Command{CmdKind::kRead, 0, 1, 0, 1}, 1);  // tRCD=2
  EXPECT_TRUE(has_rule(c, "tRCD"));
}

TEST(TimingChecker, FlagsColumnOnClosedBank) {
  TimingChecker c(toy_timing(), geom4());
  c.observe(Command{CmdKind::kRead, 0, 1, 0, 1}, 5);
  EXPECT_TRUE(has_rule(c, "column-on-closed-bank"));
}

TEST(TimingChecker, FlagsRowMismatch) {
  TimingChecker c(toy_timing(), geom4());
  c.observe(Command{CmdKind::kActivate, 0, 1, 0, 0}, 0);
  c.observe(Command{CmdKind::kRead, 0, 2, 0, 1}, 3);
  EXPECT_TRUE(has_rule(c, "column-row-mismatch"));
}

TEST(TimingChecker, FlagsActivateOnOpenBank) {
  TimingChecker c(toy_timing(), geom4());
  c.observe(Command{CmdKind::kActivate, 0, 1, 0, 0}, 0);
  c.observe(Command{CmdKind::kActivate, 0, 2, 0, 0}, 10);
  EXPECT_TRUE(has_rule(c, "activate-on-open-bank"));
}

TEST(TimingChecker, FlagsTrasViolation) {
  TimingChecker c(toy_timing(), geom4());
  c.observe(Command{CmdKind::kActivate, 0, 1, 0, 0}, 0);
  c.observe(Command{CmdKind::kPrecharge, 0, 0, 0, 0}, 2);  // tRAS=4
  EXPECT_TRUE(has_rule(c, "tRAS/tWR"));
}

TEST(TimingChecker, FlagsTrpViolation) {
  TimingChecker c(toy_timing(), geom4());
  c.observe(Command{CmdKind::kActivate, 0, 1, 0, 0}, 0);
  c.observe(Command{CmdKind::kPrecharge, 0, 0, 0, 0}, 4);
  c.observe(Command{CmdKind::kActivate, 0, 2, 0, 0}, 5);  // tRP=2
  EXPECT_TRUE(has_rule(c, "tRP"));
}

TEST(TimingChecker, FlagsTrcViolation) {
  DdrTiming t = toy_timing();
  t.tRC = 10;
  TimingChecker c(t, geom4());
  c.observe(Command{CmdKind::kActivate, 0, 1, 0, 0}, 0);
  c.observe(Command{CmdKind::kPrecharge, 0, 0, 0, 0}, 4);
  c.observe(Command{CmdKind::kActivate, 0, 2, 0, 0}, 7);  // tRC=10
  EXPECT_TRUE(has_rule(c, "tRC"));
}

TEST(TimingChecker, FlagsTrrdViolation) {
  DdrTiming t = toy_timing();
  t.tRRD = 4;
  TimingChecker c(t, geom4());
  c.observe(Command{CmdKind::kActivate, 0, 1, 0, 0}, 0);
  c.observe(Command{CmdKind::kActivate, 1, 1, 0, 0}, 2);
  EXPECT_TRUE(has_rule(c, "tRRD"));
}

TEST(TimingChecker, FlagsDataBusOverlap) {
  TimingChecker c(toy_timing(), geom4());
  c.observe(Command{CmdKind::kActivate, 0, 1, 0, 0}, 0);
  c.observe(Command{CmdKind::kActivate, 1, 1, 0, 0}, 1);
  c.observe(Command{CmdKind::kRead, 0, 1, 0, 8}, 3);
  c.observe(Command{CmdKind::kRead, 1, 1, 0, 4}, 5);  // data would overlap
  EXPECT_TRUE(has_rule(c, "data-bus-overlap"));
}

TEST(TimingChecker, FlagsOneCommandPerCycle) {
  TimingChecker c(toy_timing(), geom4());
  c.observe(Command{CmdKind::kActivate, 0, 1, 0, 0}, 0);
  c.observe(Command{CmdKind::kActivate, 1, 1, 0, 0}, 0);
  EXPECT_TRUE(has_rule(c, "one-command-per-cycle"));
}

TEST(TimingChecker, FlagsRefreshWithOpenBank) {
  TimingChecker c(toy_timing(), geom4());
  c.observe(Command{CmdKind::kActivate, 0, 1, 0, 0}, 0);
  c.observe(Command{CmdKind::kRefresh, 0, 0, 0, 0}, 10);
  EXPECT_TRUE(has_rule(c, "refresh-with-open-bank"));
}

TEST(TimingChecker, FlagsCommandDuringTrfc) {
  DdrTiming t = toy_timing();
  t.tRFC = 8;
  TimingChecker c(t, geom4());
  c.observe(Command{CmdKind::kRefresh, 0, 0, 0, 0}, 0);
  c.observe(Command{CmdKind::kActivate, 0, 1, 0, 0}, 4);
  EXPECT_TRUE(has_rule(c, "tRFC"));
}

TEST(TimingChecker, FlagsZeroBeatColumn) {
  TimingChecker c(toy_timing(), geom4());
  c.observe(Command{CmdKind::kActivate, 0, 1, 0, 0}, 0);
  c.observe(Command{CmdKind::kRead, 0, 1, 0, 0}, 3);
  EXPECT_TRUE(has_rule(c, "zero-beat-column"));
}

TEST(TimingChecker, NopsIgnored) {
  TimingChecker c(toy_timing(), geom4());
  c.observe(Command{}, 0);
  c.observe(Command{}, 0);
  EXPECT_TRUE(c.clean());
  EXPECT_EQ(c.commands_seen(), 0u);
}

}  // namespace
