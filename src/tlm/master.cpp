#include "tlm/master.hpp"

namespace ahbp::tlm {

void TlmMaster::evaluate(sim::Cycle now) {
  switch (state_) {
    case State::kIdle: {
      if (source_.ready(now)) {
        ahb::Transaction t = source_.pop(now);
        bus_.request(id_, t, now);
        state_ = State::kWaiting;
      }
      break;
    }
    case State::kWaiting: {
      if (bus_.poll_done(id_, done_)) {
        ++completed_;
        source_.on_complete(now);
        if (on_complete) {
          on_complete(done_);
        }
        state_ = State::kIdle;
      }
      break;
    }
  }
}

void TlmMaster::save_state(state::StateWriter& w) const {
  w.begin("tlm-master");
  w.put_u8(static_cast<std::uint8_t>(state_));
  w.put_u64(completed_);
  source_.save_state(w);
  w.end();
}

void TlmMaster::restore_state(state::StateReader& r) {
  r.enter("tlm-master");
  state_ = static_cast<State>(r.get_u8());
  completed_ = r.get_u64();
  source_.restore_state(r);
  r.leave();
}

}  // namespace ahbp::tlm
