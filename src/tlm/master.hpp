#pragma once

#include <optional>
#include <string>

#include "ahb/transaction.hpp"
#include "sim/cycle_kernel.hpp"
#include "tlm/bus.hpp"
#include "traffic/generator.hpp"

/// \file master.hpp
/// Transaction-level master port driver.
///
/// Implements the master side of the paper's §3.2 behaviour: raise the
/// request, poll CheckGrant() (our poll_grant), then treat the whole
/// Read()/Write() as one port call that completes when the bus reports OK.
/// Transactions come from a deterministic traffic::ScriptSource, so the
/// same master behaviour can be replayed against the signal-level model.

namespace ahbp::tlm {

class TlmMaster final : public sim::Clocked, public state::Snapshottable {
 public:
  TlmMaster(ahb::MasterId id, AhbPlusBus& bus, traffic::Script script)
      : id_(id), bus_(bus), source_(std::move(script)),
        name_("tlm-master" + std::to_string(id)) {}

  void evaluate(sim::Cycle now) override;
  int phase() const override { return 0; }  // masters act before the bus
  std::string_view name() const override { return name_; }

  /// All scripted transactions issued and completed.
  bool finished() const noexcept {
    return source_.done() && state_ == State::kIdle;
  }

  std::uint64_t completed() const noexcept { return completed_; }

  /// Idle-skip bound: evaluate(t) is a guaranteed no-op for every t in
  /// [now, next_issue_at()) when the returned cycle is in the future.
  /// A waiting master returns 0 (it polls the bus every cycle); an idle
  /// one returns its source's next-ready cycle (kNeverCycle when done).
  sim::Cycle next_issue_at() const noexcept {
    return state_ == State::kWaiting ? 0 : source_.next_ready_at();
  }

  /// Completion callback hook for tests (observes each retired txn).
  std::function<void(const ahb::Transaction&)> on_complete;

  /// Attach a capture tap to this port's script source (symmetric with
  /// the signal-level master: both route through ScriptSource, so the
  /// captured gaps are genuine think-time in either model).
  void set_trace_recorder(traffic::TraceRecorder* rec) noexcept {
    source_.set_recorder(rec);
  }

  void save_state(state::StateWriter& w) const override;
  void restore_state(state::StateReader& r) override;

 private:
  enum class State { kIdle, kWaiting };

  ahb::MasterId id_;
  AhbPlusBus& bus_;
  traffic::ScriptSource source_;
  std::string name_;
  State state_ = State::kIdle;
  std::uint64_t completed_ = 0;
  /// Completion scratch (persistent so poll_done's copy reuses capacity).
  ahb::Transaction done_;
};

}  // namespace ahbp::tlm
