#include "assertions/violation.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace ahbp::chk {

void ViolationLog::record(Severity sev, sim::Cycle cycle, std::string rule,
                          std::string detail) {
  if (sev == Severity::kError) {
    ++errors_;
  }
  violations_.push_back(
      Violation{sev, cycle, std::move(rule), std::move(detail)});
}

std::size_t ViolationLog::count_rule(std::string_view rule) const noexcept {
  std::size_t n = 0;
  for (const Violation& v : violations_) {
    if (v.rule == rule) {
      ++n;
    }
  }
  return n;
}

std::vector<std::pair<std::string, std::uint64_t>> ViolationLog::rule_counts()
    const {
  std::map<std::string, std::uint64_t> by_rule;
  for (const Violation& v : violations_) {
    ++by_rule[v.rule];
  }
  return {by_rule.begin(), by_rule.end()};
}

std::string ViolationLog::to_string(std::size_t max) const {
  std::ostringstream ss;
  std::size_t shown = 0;
  for (const Violation& v : violations_) {
    if (shown++ == max) {
      ss << "... (" << violations_.size() - max << " more)\n";
      break;
    }
    ss << (v.severity == Severity::kError ? "[ERROR]" : "[warn ]") << " @"
       << v.cycle << " " << v.rule << ": " << v.detail << "\n";
  }
  return ss.str();
}

void ViolationLog::save_state(state::StateWriter& w) const {
  w.begin("violations");
  w.put_u64(violations_.size());
  for (const Violation& v : violations_) {
    w.put_u8(static_cast<std::uint8_t>(v.severity));
    w.put_u64(v.cycle);
    w.put_str(v.rule);
    w.put_str(v.detail);
  }
  w.put_u64(errors_);
  w.end();
}

void ViolationLog::restore_state(state::StateReader& r) {
  r.enter("violations");
  violations_.assign(r.get_count(), Violation{});
  for (Violation& v : violations_) {
    v.severity = static_cast<Severity>(r.get_u8());
    v.cycle = r.get_u64();
    v.rule = r.get_str();
    v.detail = r.get_str();
  }
  errors_ = r.get_u64();
  r.leave();
}

}  // namespace ahbp::chk
