#include "ddr/interleave.hpp"

namespace ahbp::ddr {

bool Interleave::valid() const noexcept {
  if (channels != 1 && channels != 2 && channels != 4 && channels != 8) {
    return false;
  }
  // >= 8: the widest AHB beat is 8 bytes and a beat must stay channel-local.
  return is_power_of_two(stripe_bytes) && stripe_bytes >= 8;
}

}  // namespace ahbp::ddr
