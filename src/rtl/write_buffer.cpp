#include "rtl/write_buffer.hpp"

#include "assertions/assert.hpp"

namespace ahbp::rtl {

RtlWriteBuffer::RtlWriteBuffer(sim::EventKernel& kernel,
                               const ahb::BusConfig& cfg, unsigned masters,
                               SharedWires& shared, MasterWires& column,
                               std::vector<MasterWires*> master_wires,
                               const sim::Cycle* now)
    : cfg_(cfg),
      masters_(masters),
      sh_(shared),
      col_(column),
      mw_(std::move(master_wires)),
      now_(now),
      fifo_(cfg.write_buffer_depth, cfg.drain_watermark,
            cfg.write_buffer_enabled),
      staging_(masters),
      proc_(kernel, "rtl-wbuf", [this] { at_edge(); }) {}

void RtlWriteBuffer::bind_clock(sim::Signal<bool>& clk) {
  clk.subscribe(proc_, sim::Edge::kPos);
}

bool RtlWriteBuffer::can_reserve() const noexcept {
  if (!fifo_.enabled()) {
    return false;
  }
  return fifo_.occupancy() + reserved_ < fifo_.depth();
}

void RtlWriteBuffer::reserve(unsigned m, const ahb::Transaction& skeleton) {
  AHBP_ASSERT(m < masters_ && !staging_[m].has_value());
  AHBP_ASSERT_MSG(can_reserve(), "reserve without space");
  Staging s;
  s.txn = skeleton;
  s.txn.data.clear();
  staging_[m] = std::move(s);
  ++reserved_;
}

bool RtlWriteBuffer::overlaps(ahb::Addr lo, ahb::Addr hi) const noexcept {
  if (fifo_.overlaps(lo, hi)) {
    return true;
  }
  for (const auto& s : staging_) {
    if (!s) {
      continue;
    }
    const ahb::Addr s_lo = s->txn.addr;
    const ahb::Addr s_hi = s->txn.addr + s->txn.bytes();
    if (s_lo < hi && lo < s_hi) {
      return true;
    }
  }
  // The entry being drained still counts until its transfer completes.
  if (drain_active_) {
    const ahb::Addr d_lo = drain_txn_.addr;
    const ahb::Addr d_hi = drain_txn_.addr + drain_txn_.bytes();
    if (d_lo < hi && lo < d_hi) {
      return true;
    }
  }
  return false;
}

bool RtlWriteBuffer::drain_requesting() const noexcept {
  if (fifo_.occupancy() <= committed()) {
    return false;  // nothing uncommitted left to offer
  }
  return fifo_.requesting();
}

bool RtlWriteBuffer::staging_full() const noexcept {
  return fifo_.enabled() && fifo_.occupancy() + reserved_ >= fifo_.depth();
}

void RtlWriteBuffer::capture_streams(sim::Cycle now) {
  for (unsigned m = 0; m < masters_; ++m) {
    if (!staging_[m] || !mw_[m]->wbuf_stream.read()) {
      continue;
    }
    Staging& s = *staging_[m];
    s.txn.data.push_back(mw_[m]->hwdata.read());
    ++s.filled;
    if (s.filled >= s.txn.beats) {
      s.txn.granted_at = now;
      s.txn.started_at = now;
      s.txn.finished_at = now;
      const bool ok = fifo_.absorb(s.txn, now);
      AHBP_ASSERT_MSG(ok, "reserved absorb failed");
      staging_[m].reset();
      --reserved_;
    }
  }
}

void RtlWriteBuffer::drain_fsm(sim::Cycle now) {
  if (!drain_active_) {
    // Start when ownership is routed to us and a drain is owed.  (The
    // HGRANT pulse may have passed while a previous drain was streaming;
    // the owed counter carries it.)
    if (owed_ > 0 &&
        sh_.hmaster.read() == static_cast<std::uint8_t>(masters_)) {
      AHBP_ASSERT_MSG(!fifo_.empty(), "wbuf granted with empty FIFO");
      --owed_;
      drain_txn_ = fifo_.front();
      drain_addr_accepted_ = 0;
      drain_data_done_ = 0;
      drain_active_ = true;
      // fall through to drive the first address phase below
    } else {
      return;
    }
  } else {
    const bool hr = sh_.hready.read();
    if (hr) {
      if (drain_data_done_ < drain_addr_accepted_) {
        ++drain_data_done_;
      }
      if (drain_addr_accepted_ < drain_txn_.beats) {
        ++drain_addr_accepted_;
      }
    }
    if (drain_data_done_ == drain_txn_.beats) {
      col_.htrans.write(pack(ahb::Trans::kIdle));
      fifo_.pop_front(now);
      drain_active_ = false;
      return;
    }
  }
  // Drive address/data phases from the buffer's own column.
  if (drain_addr_accepted_ < drain_txn_.beats) {
    const unsigned beat = drain_addr_accepted_;
    col_.htrans.write(
        pack(beat == 0 ? ahb::Trans::kNonSeq : ahb::Trans::kSeq));
    col_.haddr.write(ahb::burst_beat_addr(drain_txn_.addr, drain_txn_.size,
                                          drain_txn_.burst, beat));
    col_.hburst.write(pack(drain_txn_.burst));
    col_.hsize.write(pack(drain_txn_.size));
    col_.hwrite.write(pack(ahb::Dir::kWrite));
  } else {
    col_.htrans.write(pack(ahb::Trans::kIdle));
  }
  if (drain_data_done_ < drain_addr_accepted_) {
    col_.hwdata.write(drain_txn_.data[drain_data_done_]);
  }
}

void RtlWriteBuffer::at_edge() {
  const sim::Cycle now = *now_;
  capture_streams(now);
  drain_fsm(now);
  sh_.wbuf_req.write(drain_requesting());
  sh_.wbuf_occupancy.write(fifo_.occupancy());
  // Drain sideband: advertise the next *uncommitted* entry to the arbiter.
  const unsigned next = committed();
  if (fifo_.occupancy() > next) {
    const ahb::Transaction& t = fifo_.peek(next);
    sh_.wb_req_addr.write(t.addr);
    sh_.wb_req_burst.write(pack(t.burst));
    sh_.wb_req_size.write(pack(t.size));
    sh_.wb_req_beats.write(t.beats);
  }
  fifo_.sample();
}

void RtlWriteBuffer::save_state(state::StateWriter& w) const {
  w.begin("rtl-wbuf");
  fifo_.save_state(w);
  w.put_u64(staging_.size());
  for (const std::optional<Staging>& s : staging_) {
    w.put_bool(s.has_value());
    if (s) {
      ahb::save_state(w, s->txn);
      w.put_u32(s->filled);
    }
  }
  w.put_u32(reserved_);
  w.put_bool(drain_active_);
  w.put_u32(owed_);
  ahb::save_state(w, drain_txn_);
  w.put_u32(drain_addr_accepted_);
  w.put_u32(drain_data_done_);
  w.end();
}

void RtlWriteBuffer::restore_state(state::StateReader& r) {
  r.enter("rtl-wbuf");
  fifo_.restore_state(r);
  if (r.get_u64() != staging_.size()) {
    throw state::StateError("RtlWriteBuffer: staging slot count mismatch");
  }
  for (std::optional<Staging>& s : staging_) {
    if (r.get_bool()) {
      s.emplace();
      ahb::restore_state(r, s->txn);
      s->filled = r.get_u32();
    } else {
      s.reset();
    }
  }
  reserved_ = r.get_u32();
  drain_active_ = r.get_bool();
  owed_ = r.get_u32();
  ahb::restore_state(r, drain_txn_);
  drain_addr_accepted_ = r.get_u32();
  drain_data_done_ = r.get_u32();
  r.leave();
}

}  // namespace ahbp::rtl
