#include "ddr/storage.hpp"

#include <stdexcept>

namespace ahbp::ddr {

const std::vector<std::uint8_t>* SparseMemory::find_page(
    ahb::Addr page_base) const {
  const auto it = pages_.find(page_base);
  return it == pages_.end() ? nullptr : &it->second;
}

std::vector<std::uint8_t>& SparseMemory::touch_page(ahb::Addr page_base) {
  auto& page = pages_[page_base];
  if (page.empty()) {
    page.assign(kPageBytes, 0);
  }
  return page;
}

ahb::Word SparseMemory::read(ahb::Addr addr, unsigned bytes) const {
  if (bytes == 0 || bytes > 8) {
    throw std::invalid_argument("SparseMemory::read: bytes must be 1..8");
  }
  ahb::Word v = 0;
  for (unsigned i = 0; i < bytes; ++i) {
    const ahb::Addr a = addr + i;
    const ahb::Addr base = a / kPageBytes * kPageBytes;
    if (const auto* page = find_page(base)) {
      v |= static_cast<ahb::Word>((*page)[a - base]) << (8 * i);
    }
  }
  return v;
}

void SparseMemory::write(ahb::Addr addr, ahb::Word value, unsigned bytes) {
  if (bytes == 0 || bytes > 8) {
    throw std::invalid_argument("SparseMemory::write: bytes must be 1..8");
  }
  for (unsigned i = 0; i < bytes; ++i) {
    const ahb::Addr a = addr + i;
    const ahb::Addr base = a / kPageBytes * kPageBytes;
    touch_page(base)[a - base] =
        static_cast<std::uint8_t>((value >> (8 * i)) & 0xFF);
  }
}

}  // namespace ahbp::ddr
