#include "traffic/trace_bin.hpp"

#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "assertions/assert.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define AHBP_TRACE_BIN_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace ahbp::traffic {

namespace {

constexpr std::size_t kHeaderBytes = 40;
constexpr std::size_t kRecordHeadBytes = 24;  // gap+addr+4 bytes+beats
/// Same ceiling as the text loader: the AHB 1KB boundary over 1-byte
/// beats; structurally_valid enforces the exact burst-dependent bound.
constexpr std::uint32_t kMaxBeats = 1024;

void append_u32(std::string& out, std::uint32_t v) {
  for (unsigned i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  for (unsigned i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

/// Bounds-checked little-endian reader over one trace image.  Every load
/// funnels through `take`, which both enforces the image size and feeds
/// the bytes-examined counter the window-seek tests pin.
class Cursor {
 public:
  Cursor(std::string_view bytes, TraceBinReadStats* stats)
      : data_(reinterpret_cast<const unsigned char*>(bytes.data())),
        size_(bytes.size()),
        stats_(stats) {}

  std::uint32_t u32_at(std::size_t off, const char* what) {
    const unsigned char* p = take(off, 4, what);
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
  }

  std::uint64_t u64_at(std::size_t off, const char* what) {
    std::uint64_t v = 0;
    const unsigned char* p = take(off, 8, what);
    for (unsigned i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    return v;
  }

  std::uint8_t u8_at(std::size_t off, const char* what) {
    return *take(off, 1, what);
  }

  std::size_t size() const noexcept { return size_; }

 private:
  const unsigned char* take(std::size_t off, std::size_t n,
                            const char* what) {
    if (off > size_ || size_ - off < n) {
      throw std::runtime_error(std::string("binary trace truncated reading ") +
                               what + " at offset " + std::to_string(off) +
                               " (image is " + std::to_string(size_) +
                               " bytes)");
    }
    if (stats_ != nullptr) {
      stats_->bytes_examined += n;
    }
    return data_ + off;
  }

  const unsigned char* data_;
  std::size_t size_;
  TraceBinReadStats* stats_;
};

/// Decode the record at `off`, append it to `script`, and return the
/// offset one past it.  `record` is the 1-based record number for errors;
/// ids restart at script position (a slice is a standalone script).
std::size_t decode_record(Cursor& c, std::size_t off, std::uint64_t record,
                          ahb::MasterId master, Script& script) {
  try {
    TrafficItem item;
    ahb::Transaction& t = item.txn;
    item.gap = c.u64_at(off, "gap");
    t.addr = c.u64_at(off + 8, "address");
    const std::uint8_t dir = c.u8_at(off + 16, "direction");
    if (dir > 1) {
      throw std::runtime_error("direction must be 0 (read) or 1 (write), got " +
                               std::to_string(dir));
    }
    t.dir = dir == 1 ? ahb::Dir::kWrite : ahb::Dir::kRead;
    const std::uint8_t size = c.u8_at(off + 17, "size");
    if (size > static_cast<std::uint8_t>(ahb::Size::kDword)) {
      throw std::runtime_error("size code out of range: " +
                               std::to_string(size));
    }
    t.size = static_cast<ahb::Size>(size);
    const std::uint8_t burst = c.u8_at(off + 18, "burst");
    if (burst > static_cast<std::uint8_t>(ahb::Burst::kIncr16)) {
      throw std::runtime_error("burst code out of range: " +
                               std::to_string(burst));
    }
    t.burst = static_cast<ahb::Burst>(burst);
    const std::uint8_t flags = c.u8_at(off + 19, "flags");
    if ((flags & ~std::uint8_t{1}) != 0) {
      throw std::runtime_error("reserved flag bits set: " +
                               std::to_string(flags));
    }
    t.locked = (flags & 1u) != 0;
    const std::uint32_t beats = c.u32_at(off + 20, "beats");
    // Ceiling before the data read: a crafted beat count must error, not
    // drive a multi-gigabyte allocation.
    if (beats == 0 || beats > kMaxBeats) {
      throw std::runtime_error("beat count out of range: " +
                               std::to_string(beats));
    }
    t.beats = beats;
    std::size_t next = off + kRecordHeadBytes;
    if (t.dir == ahb::Dir::kWrite) {
      t.data.resize(beats);
      for (std::uint32_t b = 0; b < beats; ++b) {
        t.data[b] = c.u64_at(next, "write data");
        next += 8;
      }
    }
    t.id = script.size() + 1;
    t.master = master;
    if (!ahb::structurally_valid(t)) {
      throw std::runtime_error("transaction violates AHB structure rules");
    }
    script.push_back(std::move(item));
    return next;
  } catch (const std::runtime_error& e) {
    throw std::runtime_error("binary trace record " + std::to_string(record) +
                             ": " + e.what());
  }
}

/// Byte length of the record at `off` without decoding its payload — the
/// index-less skip path (reads only the 5 bytes it needs).
std::size_t record_span(Cursor& c, std::size_t off, std::uint64_t record) {
  try {
    const std::uint8_t dir = c.u8_at(off + 16, "direction");
    if (dir > 1) {
      throw std::runtime_error("direction must be 0 (read) or 1 (write), got " +
                               std::to_string(dir));
    }
    const std::uint32_t beats = c.u32_at(off + 20, "beats");
    if (beats == 0 || beats > kMaxBeats) {
      throw std::runtime_error("beat count out of range: " +
                               std::to_string(beats));
    }
    return kRecordHeadBytes + (dir == 1 ? std::size_t{beats} * 8 : 0);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error("binary trace record " + std::to_string(record) +
                             ": " + e.what());
  }
}

TraceBinInfo read_header(Cursor& c, std::string_view bytes) {
  if (!is_trace_bin(bytes)) {
    throw std::runtime_error(
        "not a binary trace (magic mismatch — text traces load through"
        " load_trace)");
  }
  TraceBinInfo info;
  info.file_bytes = bytes.size();
  info.version = c.u32_at(8, "version");
  if (info.version != kTraceBinVersion) {
    throw std::runtime_error(
        "binary trace version " + std::to_string(info.version) +
        " not supported (this build reads version " +
        std::to_string(kTraceBinVersion) + ")");
  }
  const std::uint32_t reserved = c.u32_at(12, "reserved field");
  if (reserved != 0) {
    throw std::runtime_error("binary trace reserved field is nonzero");
  }
  info.records = c.u64_at(16, "record count");
  info.index_offset = c.u64_at(24, "index offset");
  info.payload_bytes = c.u64_at(32, "payload size");
  if (info.payload_bytes > bytes.size() - kHeaderBytes) {
    throw std::runtime_error(
        "binary trace truncated: header declares " +
        std::to_string(info.payload_bytes) + " payload bytes but only " +
        std::to_string(bytes.size() - kHeaderBytes) + " follow");
  }
  if (info.records > info.payload_bytes / kRecordHeadBytes) {
    throw std::runtime_error(
        "binary trace record count " + std::to_string(info.records) +
        " impossible for " + std::to_string(info.payload_bytes) +
        " payload bytes");
  }
  if (info.index_offset != 0) {
    if (info.index_offset != kHeaderBytes + info.payload_bytes ||
        info.records > (bytes.size() - info.index_offset) / 8) {
      throw std::runtime_error("binary trace index offset/size inconsistent");
    }
  }
  return info;
}

}  // namespace

bool is_trace_bin(std::string_view bytes) noexcept {
  return bytes.size() >= sizeof kTraceBinMagic &&
         std::memcmp(bytes.data(), kTraceBinMagic, sizeof kTraceBinMagic) == 0;
}

TraceBinInfo trace_bin_info(std::string_view bytes) {
  Cursor c(bytes, nullptr);
  return read_header(c, bytes);
}

std::size_t save_trace_bin(std::ostream& os, const Script& script) {
  // Records and their offsets first; the header needs the payload size.
  std::string payload;
  std::string index;
  payload.reserve(script.size() * (kRecordHeadBytes + 8));
  index.reserve(script.size() * 8);
  for (const TrafficItem& item : script) {
    const ahb::Transaction& t = item.txn;
    append_u64(index, kHeaderBytes + payload.size());
    append_u64(payload, item.gap);
    append_u64(payload, t.addr);
    payload.push_back(static_cast<char>(t.dir == ahb::Dir::kWrite ? 1 : 0));
    payload.push_back(static_cast<char>(t.size));
    payload.push_back(static_cast<char>(t.burst));
    payload.push_back(static_cast<char>(t.locked ? 1 : 0));
    append_u32(payload, t.beats);
    if (t.dir == ahb::Dir::kWrite) {
      AHBP_ASSERT_MSG(t.data.size() >= t.beats,
                      "write transaction carries fewer data words than beats");
      for (unsigned b = 0; b < t.beats; ++b) {
        append_u64(payload, t.data[b]);
      }
    }
  }

  std::string header;
  header.reserve(kHeaderBytes);
  header.append(reinterpret_cast<const char*>(kTraceBinMagic),
                sizeof kTraceBinMagic);
  append_u32(header, kTraceBinVersion);
  append_u32(header, 0);  // reserved
  append_u64(header, script.size());
  append_u64(header, kHeaderBytes + payload.size());  // index_offset
  append_u64(header, payload.size());

  os.write(header.data(), static_cast<std::streamsize>(header.size()));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  os.write(index.data(), static_cast<std::streamsize>(index.size()));
  return script.size();
}

std::string trace_bin_bytes(const Script& script) {
  std::ostringstream os;
  save_trace_bin(os, script);
  return os.str();
}

Script load_trace_bin(std::string_view bytes, ahb::MasterId master,
                      TraceBinReadStats* stats) {
  return load_trace_bin_window(bytes, master, 0, ~std::uint64_t{0}, stats);
}

Script load_trace_bin_window(std::string_view bytes, ahb::MasterId master,
                             std::uint64_t first, std::uint64_t count,
                             TraceBinReadStats* stats) {
  Cursor c(bytes, stats);
  const TraceBinInfo info = read_header(c, bytes);
  Script script;
  if (first >= info.records || count == 0) {
    return script;
  }
  const std::uint64_t take = std::min(count, info.records - first);
  script.reserve(static_cast<std::size_t>(take));

  // Find record `first`: one index lookup when the file carries its index,
  // otherwise hop record headers (never decoding payloads).  Either way
  // the prefix's data words are untouched — bytes_examined stays far below
  // the prefix size, which is the property the slice tests pin.
  std::size_t off;
  if (info.indexed()) {
    off = static_cast<std::size_t>(
        c.u64_at(static_cast<std::size_t>(info.index_offset + 8 * first),
                 "index entry"));
    if (off < kHeaderBytes || off > kHeaderBytes + info.payload_bytes) {
      throw std::runtime_error("binary trace index entry " +
                               std::to_string(first) + " out of bounds");
    }
  } else {
    off = kHeaderBytes;
    for (std::uint64_t r = 0; r < first; ++r) {
      off += record_span(c, off, r + 1);
    }
  }

  for (std::uint64_t r = 0; r < take; ++r) {
    off = decode_record(c, off, first + r + 1, master, script);
  }
  if (stats != nullptr) {
    stats->records_decoded += take;
  }
  // A whole-file load must consume the payload exactly — trailing garbage
  // between the last record and the index is corruption, not padding.
  if (first == 0 && take == info.records &&
      off != kHeaderBytes + info.payload_bytes) {
    throw std::runtime_error(
        "binary trace payload size mismatch: records end at offset " +
        std::to_string(off) + " but the header declares " +
        std::to_string(kHeaderBytes + info.payload_bytes));
  }
  return script;
}

MappedTrace::MappedTrace(const std::string& path) {
#if AHBP_TRACE_BIN_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("cannot open trace file '" + path + "'");
  }
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("cannot stat trace file '" + path + "'");
  }
  if (S_ISDIR(st.st_mode)) {
    ::close(fd);
    throw std::runtime_error("'" + path +
                             "' is a directory, not a trace file");
  }
  const auto len = static_cast<std::size_t>(st.st_size);
  if (len > 0 && S_ISREG(st.st_mode)) {
    void* map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      ::close(fd);
      data_ = map;
      size_ = len;
      mapped_ = true;
      return;
    }
  }
  ::close(fd);
#endif
  // Fallback: buffered read (non-POSIX hosts, pipes, zero-length files,
  // exotic filesystems where mmap fails).
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open trace file '" + path + "'");
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad() || ss.bad()) {
    throw std::runtime_error("error reading trace file '" + path + "'");
  }
  fallback_ = ss.str();
  data_ = fallback_.data();
  size_ = fallback_.size();
  mapped_ = false;
}

MappedTrace::~MappedTrace() {
#if AHBP_TRACE_BIN_HAVE_MMAP
  if (mapped_) {
    ::munmap(const_cast<void*>(data_), size_);
  }
#endif
}

}  // namespace ahbp::traffic
