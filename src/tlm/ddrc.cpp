#include "tlm/ddrc.hpp"

#include "assertions/assert.hpp"

namespace ahbp::tlm {

void TlmDdrc::begin(const ahb::Transaction& t, sim::Cycle now) {
  AHBP_ASSERT_MSG(!set_.busy(), "DDRC begin while busy");
  ddr::MemRequest req;
  req.is_write = t.dir == ahb::Dir::kWrite;
  req.addr = offset(t.addr);
  req.beat_bytes = ahb::size_bytes(t.size);
  req.beats = t.beats;
  req.burst = t.burst;
  set_.begin(req, now);
}

}  // namespace ahbp::tlm
