#pragma once

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "ahb/transaction.hpp"
#include "sim/cycle_kernel.hpp"
#include "tlm/bus.hpp"
#include "traffic/generator.hpp"

/// \file threaded_master.hpp
/// Thread-based master port driver — the modeling style the paper's §4
/// rejects: "To increase simulation speed, we used method-based modeling
/// method rather than thread-based method."
///
/// In thread-based modeling (SystemC SC_THREAD style) each master is a
/// sequential program that *blocks* mid-transaction waiting for the clock:
///
///     request(txn);
///     while (!done) wait_cycle();   // suspends the master's context
///
/// The readable coding style costs two context switches per master per
/// cycle.  This implementation uses a real OS thread synchronized with the
/// cycle kernel through a condition-variable handshake, which is what a
/// SystemC kernel does with (user-level) coroutines — ours is deliberately
/// the heavier portable variant, making the §4 cost argument measurable on
/// any platform (see bench_modeling_style).
///
/// Functionally it is a drop-in replacement for TlmMaster: same bus port
/// calls, same traffic scripts, same completion semantics — `bench` proves
/// cycle-identical results, only slower.

namespace ahbp::tlm {

class ThreadedMaster final : public sim::Clocked {
 public:
  ThreadedMaster(ahb::MasterId id, AhbPlusBus& bus, traffic::Script script);
  ~ThreadedMaster() override;

  ThreadedMaster(const ThreadedMaster&) = delete;
  ThreadedMaster& operator=(const ThreadedMaster&) = delete;

  void evaluate(sim::Cycle now) override;
  int phase() const override { return 0; }
  std::string_view name() const override { return name_; }

  bool finished() const noexcept { return finished_; }
  std::uint64_t completed() const noexcept { return completed_; }

 private:
  /// The master's sequential program (runs on the worker thread).
  void thread_main();
  /// Suspend the thread until the kernel hands it the next cycle.
  void wait_cycle();

  ahb::MasterId id_;
  AhbPlusBus& bus_;
  traffic::ScriptSource source_;
  std::string name_;

  std::mutex m_;
  std::condition_variable cv_;
  bool master_turn_ = false;   ///< worker may run its slice of this cycle
  bool kernel_turn_ = false;   ///< worker yielded; kernel may continue
  bool shutdown_ = false;
  sim::Cycle now_ = 0;
  bool finished_ = false;
  std::uint64_t completed_ = 0;
  std::thread worker_;
};

}  // namespace ahbp::tlm
