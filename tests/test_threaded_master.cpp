// Thread-based master (the §4 modeling-style ablation): must be a
// cycle-exact drop-in for the method-based TlmMaster — same completions,
// same total cycles — differing only in host cost.

#include <gtest/gtest.h>

#include <memory>

#include "core/platform.hpp"
#include "core/workloads.hpp"
#include "sim/cycle_kernel.hpp"
#include "tlm/bus.hpp"
#include "tlm/ddrc.hpp"
#include "tlm/master.hpp"
#include "tlm/threaded_master.hpp"

namespace {

using namespace ahbp;

template <typename MasterT>
std::pair<sim::Cycle, std::uint64_t> run_with(
    const core::PlatformConfig& cfg) {
  sim::CycleKernel kernel;
  ahb::QosRegisterFile qos(static_cast<unsigned>(cfg.masters.size()));
  for (unsigned m = 0; m < cfg.masters.size(); ++m) {
    qos.program(static_cast<ahb::MasterId>(m), cfg.masters[m].qos);
  }
  tlm::TlmDdrc ddrc(cfg.timing, cfg.geom, cfg.ddr_base);
  chk::ViolationLog log;
  tlm::AhbPlusBus bus(cfg.bus, qos, ddrc,
                      static_cast<unsigned>(cfg.masters.size()), &log);
  kernel.add(bus);
  auto scripts = core::expand_stimulus(cfg);
  std::vector<std::unique_ptr<MasterT>> masters;
  for (unsigned m = 0; m < cfg.masters.size(); ++m) {
    masters.push_back(std::make_unique<MasterT>(
        static_cast<ahb::MasterId>(m), bus, std::move(scripts[m])));
    kernel.add(*masters.back());
  }
  kernel.run_until(
      [&] {
        for (const auto& m : masters) {
          if (!m->finished()) {
            return false;
          }
        }
        return bus.quiescent();
      },
      200000);
  std::uint64_t completed = 0;
  for (const auto& m : masters) {
    completed += m->completed();
  }
  EXPECT_EQ(log.errors(), 0u) << log.to_string();
  return {kernel.now(), completed};
}

TEST(ThreadedMaster, SingleMasterMatchesMethodBased) {
  const auto cfg = core::default_platform(1, 9, 25);
  const auto method = run_with<tlm::TlmMaster>(cfg);
  const auto threaded = run_with<tlm::ThreadedMaster>(cfg);
  EXPECT_EQ(method.first, threaded.first);    // identical cycle count
  EXPECT_EQ(method.second, threaded.second);  // identical completions
  EXPECT_EQ(threaded.second, 25u);
}

TEST(ThreadedMaster, MultiMasterMatchesMethodBased) {
  auto cfg = core::default_platform(3, 4, 20);
  cfg.masters[1].traffic.kind = traffic::PatternKind::kDma;
  cfg.masters[2].traffic.kind = traffic::PatternKind::kRandom;
  const auto method = run_with<tlm::TlmMaster>(cfg);
  const auto threaded = run_with<tlm::ThreadedMaster>(cfg);
  EXPECT_EQ(method.first, threaded.first);
  EXPECT_EQ(method.second, threaded.second);
  EXPECT_EQ(threaded.second, 60u);
}

TEST(ThreadedMaster, CleanShutdownMidRun) {
  // Destroying the platform while the worker threads are mid-script must
  // not hang or crash.
  const auto cfg = core::default_platform(2, 8, 50);
  sim::CycleKernel kernel;
  ahb::QosRegisterFile qos(2);
  for (unsigned m = 0; m < 2; ++m) {
    qos.program(static_cast<ahb::MasterId>(m), cfg.masters[m].qos);
  }
  tlm::TlmDdrc ddrc(cfg.timing, cfg.geom, cfg.ddr_base);
  tlm::AhbPlusBus bus(cfg.bus, qos, ddrc, 2, nullptr);
  kernel.add(bus);
  auto scripts = core::expand_stimulus(cfg);
  tlm::ThreadedMaster m0(0, bus, std::move(scripts[0]));
  tlm::ThreadedMaster m1(1, bus, std::move(scripts[1]));
  kernel.add(m0);
  kernel.add(m1);
  kernel.run(40);  // stop mid-flight
  SUCCEED();       // destructors must join cleanly
}

}  // namespace
