#include "tlm/write_buffer.hpp"

#include "assertions/assert.hpp"

namespace ahbp::tlm {

bool WriteBuffer::absorb(const ahb::Transaction& t, sim::Cycle now) {
  (void)now;
  AHBP_ASSERT_MSG(t.dir == ahb::Dir::kWrite,
                  "write buffer can only absorb writes");
  if (!enabled_ || full()) {
    return false;
  }
  fifo_.push_back(t);
  ++profile_.absorbed;
  return true;
}

const ahb::Transaction& WriteBuffer::front() const {
  AHBP_ASSERT(!fifo_.empty());
  return fifo_.front();
}

const ahb::Transaction& WriteBuffer::peek(unsigned i) const {
  AHBP_ASSERT(i < fifo_.size());
  return fifo_[i];
}

ahb::Transaction WriteBuffer::pop_front(sim::Cycle now) {
  (void)now;
  AHBP_ASSERT(!fifo_.empty());
  ahb::Transaction t = std::move(fifo_.front());
  fifo_.pop_front();
  ++profile_.drained;
  return t;
}

bool WriteBuffer::overlaps(ahb::Addr lo, ahb::Addr hi) const noexcept {
  for (const ahb::Transaction& t : fifo_) {
    // Conservative span: [addr, addr + beats*size) covers INCR exactly and
    // over-approximates WRAP (whose wrap window is within the same span
    // rounded to its boundary — widen to the wrap boundary region).
    ahb::Addr t_lo = t.addr;
    ahb::Addr t_hi = t.addr + t.bytes();
    if (ahb::burst_wraps(t.burst)) {
      const ahb::Addr total = t.bytes();
      t_lo = t.addr & ~(total - 1);
      t_hi = t_lo + total;
    }
    if (t_lo < hi && lo < t_hi) {
      return true;
    }
  }
  return false;
}

void WriteBuffer::save_state(state::StateWriter& w) const {
  w.begin("write-buffer");
  w.put_bool(urgent_);
  w.put_u64(fifo_.size());
  for (const ahb::Transaction& t : fifo_) {
    ahb::save_state(w, t);
  }
  profile_.save_state(w);
  w.end();
}

void WriteBuffer::restore_state(state::StateReader& r) {
  r.enter("write-buffer");
  urgent_ = r.get_bool();
  fifo_.clear();
  const std::uint64_t n = r.get_count();
  if (n != 0 && !enabled_) {
    throw state::StateError(
        "WriteBuffer: snapshot holds " + std::to_string(n) +
        " buffered writes but the restore platform disables the buffer");
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    ahb::Transaction t;
    ahb::restore_state(r, t);
    fifo_.push_back(std::move(t));
  }
  profile_.restore_state(r);
  r.leave();
}

}  // namespace ahbp::tlm
