// The repo-specific source linter (src/lint) — every rule family must fire
// on a violating snippet and stay silent on a compliant one, including the
// deliberate exemptions (TrafficRng, src/obs, assert.hpp).  These are the
// fixtures that keep the linter honest: a rule that never fires is dead
// weight, and a rule that fires on idiomatic code gets deleted in anger.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

using ahbp::lint::Finding;
using ahbp::lint::SnapshotManifest;
using ahbp::lint::SourceFile;

std::size_t count_rule(const std::vector<Finding>& findings,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

std::vector<Finding> lint_one(const std::string& path,
                              const std::string& text) {
  return ahbp::lint::lint_sources({{path, text}}, "");
}

// ---------------------------------------------------------------------------
// strip_code: token rules must never fire on prose.

TEST(StripCode, PreservesLengthAndNewlines) {
  const std::string src =
      "int a = 1; // rand() in a comment\n"
      "/* mt19937 in a block\n   comment */ int b = 2;\n"
      "const char* s = \"time(nullptr)\";\n";
  const std::string out = ahbp::lint::strip_code(src);
  EXPECT_EQ(out.size(), src.size());
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("mt19937"), std::string::npos);
  EXPECT_EQ(out.find("time"), std::string::npos);
  EXPECT_NE(out.find("int a = 1;"), std::string::npos);
  EXPECT_NE(out.find("int b = 2;"), std::string::npos);
}

TEST(StripCode, BlanksRawStringsAndCharLiterals) {
  const std::string src =
      "auto r = R\"(srand(42))\";\n"
      "char c = 'r'; char q = '\\'';\n"
      "int live = 3;\n";
  const std::string out = ahbp::lint::strip_code(src);
  EXPECT_EQ(out.size(), src.size());
  EXPECT_EQ(out.find("srand"), std::string::npos);
  EXPECT_NE(out.find("int live = 3;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// determinism/rng

TEST(LintRules, RngInLibraryCodeFlagged) {
  const auto findings =
      lint_one("src/tlm/bus.cpp", "int jitter() { return rand(); }\n");
  ASSERT_EQ(count_rule(findings, "determinism/rng"), 1u);
  EXPECT_EQ(findings[0].file, "src/tlm/bus.cpp");
  EXPECT_EQ(findings[0].line, 1u);
}

TEST(LintRules, RawEngineFlagged) {
  const auto findings =
      lint_one("src/ddr/bank.cpp", "std::mt19937 eng_{123};\n");
  EXPECT_EQ(count_rule(findings, "determinism/rng"), 1u);
}

TEST(LintRules, TrafficRngHomeIsExempt) {
  // The one sanctioned randomness source: the seeded per-master stream.
  const auto findings = lint_one("src/traffic/generator.cpp",
                                 "std::mt19937_64 eng_{seed};\n");
  EXPECT_EQ(count_rule(findings, "determinism/rng"), 0u);
}

TEST(LintRules, NonLibraryFilesAreOutOfScope) {
  // Drivers (tools/tests/benches) may do what they like.
  const auto findings =
      lint_one("tools/ahbp_sim.cpp", "std::cout << rand();\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintRules, TokenMatchingRespectsWordBoundaries) {
  const auto findings = lint_one(
      "src/tlm/bus.cpp",
      "int strand = 0; int operand = my_rand(); int brand = 1;\n");
  EXPECT_EQ(count_rule(findings, "determinism/rng"), 0u);
}

TEST(LintRules, CommentsAndStringsDoNotFire) {
  const auto findings = lint_one(
      "src/tlm/bus.cpp",
      "// rand() would break determinism\n"
      "const char* why = \"never call srand(1) here\";\n");
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// determinism/wall-clock

TEST(LintRules, SystemClockFlaggedSteadyClockAllowed) {
  const auto bad = lint_one(
      "src/core/sim.cpp",
      "auto t = std::chrono::system_clock::now();\n");
  EXPECT_EQ(count_rule(bad, "determinism/wall-clock"), 1u);

  // steady_clock is the sanctioned self-profiling clock.
  const auto good = lint_one(
      "src/obs/profiler_helper_in_core.cpp",
      "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(count_rule(good, "determinism/wall-clock"), 0u);
}

TEST(LintRules, TimeNullFlaggedOtherTimeCallsAllowed) {
  const auto bad =
      lint_one("src/core/sim.cpp", "std::srand(time(nullptr));\n");
  EXPECT_EQ(count_rule(bad, "determinism/wall-clock"), 1u);

  // A different arity/identifier must not trip the call matcher.
  const auto good = lint_one("src/core/sim.cpp",
                             "timer(0); uptime(nullptr); time(&out);\n");
  EXPECT_EQ(count_rule(good, "determinism/wall-clock"), 0u);
}

// ---------------------------------------------------------------------------
// library/no-stdout

TEST(LintRules, StdoutInLibraryFlagged) {
  const auto findings =
      lint_one("src/sweep/runner_helper.cpp", "std::cout << \"hi\";\n");
  EXPECT_EQ(count_rule(findings, "library/no-stdout"), 1u);
}

TEST(LintRules, SnprintfIsNotPrintf) {
  const auto findings = lint_one(
      "src/obs/format_helper_in_core.cpp",
      "std::snprintf(buf, sizeof buf, \"%d\", v);\n");
  EXPECT_EQ(count_rule(findings, "library/no-stdout"), 0u);
}

// ---------------------------------------------------------------------------
// library/no-cassert

TEST(LintRules, StdFunctionInSimFlagged) {
  const auto f = lint_one(
      "src/sim/cycle_kernel.hpp",
      "#include <functional>\nstd::function<void(int)> cb_;\n");
  EXPECT_EQ(count_rule(f, "sim/no-std-function"), 1u);
}

TEST(LintRules, StdFunctionAllowMarkerAndScopeRespected) {
  // Same-line allow marker opts a setup-time callable out.
  const auto allowed = lint_one(
      "src/sim/cycle_kernel.hpp",
      "std::function<void()> setup_;  // lint:allow-std-function\n");
  EXPECT_EQ(count_rule(allowed, "sim/no-std-function"), 0u);
  // Outside src/sim/ the rule does not apply (tlm test hooks keep
  // std::function for copyability).
  const auto tlm = lint_one("src/tlm/master.hpp",
                            "std::function<void()> on_complete;\n");
  EXPECT_EQ(count_rule(tlm, "sim/no-std-function"), 0u);
  // A comment mention alone never fires.
  const auto comment = lint_one("src/sim/event_kernel.hpp",
                                "// std::function is banned here\n");
  EXPECT_EQ(count_rule(comment, "sim/no-std-function"), 0u);
}

TEST(LintRules, CassertFlaggedInBothForms) {
  const auto findings = lint_one("src/ahb/arbiter_helper.cpp",
                                 "#include <cassert>\n"
                                 "void f(int x) { assert(x > 0); }\n");
  EXPECT_EQ(count_rule(findings, "library/no-cassert"), 2u);
}

TEST(LintRules, ModelAssertAndStaticAssertAllowed) {
  const auto findings = lint_one(
      "src/ahb/arbiter_helper.cpp",
      "static_assert(sizeof(int) == 4, \"w\");\n"
      "void f(int x) { AHBP_ASSERT(x > 0); }\n");
  EXPECT_EQ(count_rule(findings, "library/no-cassert"), 0u);
}

TEST(LintRules, AssertHppItselfIsExempt) {
  const auto findings = lint_one("src/assertions/assert.hpp",
                                 "void g() { assert(true); }\n");
  EXPECT_EQ(count_rule(findings, "library/no-cassert"), 0u);
}

// ---------------------------------------------------------------------------
// snapshot/unordered-iteration (cross-file: member in header, save_state in
// source)

TEST(LintRules, EmittingInUnorderedIterationOrderFlagged) {
  const std::vector<SourceFile> files = {
      {"src/mem/sparse.hpp",
       "std::unordered_map<std::uint64_t, Page> pages_;\n"},
      {"src/mem/sparse.cpp",
       "void Sparse::save_state(state::StateWriter& w) const {\n"
       "  for (const auto& kv : pages_) {\n"
       "    w.put_u64(kv.first);\n"
       "  }\n"
       "}\n"},
  };
  const auto findings = ahbp::lint::lint_sources(files, "");
  EXPECT_EQ(count_rule(findings, "snapshot/unordered-iteration"), 1u);
}

TEST(LintRules, ExplicitPairLoopVariableStillFlagged) {
  // A `std::pair<...>` loop header contains `::` — the range-for detector
  // must still find the standalone ':' separator.
  const std::vector<SourceFile> files = {
      {"src/mem/sparse.hpp",
       "std::unordered_map<std::uint64_t, Page> pages_;\n"},
      {"src/mem/sparse.cpp",
       "void Sparse::save_state(state::StateWriter& w) const {\n"
       "  for (const std::pair<const std::uint64_t, Page>& kv : pages_) {\n"
       "    w.put_u64(kv.first);\n"
       "  }\n"
       "}\n"},
  };
  const auto findings = ahbp::lint::lint_sources(files, "");
  EXPECT_EQ(count_rule(findings, "snapshot/unordered-iteration"), 1u);
}

TEST(LintRules, CollectSortEmitIsAllowed) {
  const std::vector<SourceFile> files = {
      {"src/mem/sparse.hpp",
       "std::unordered_map<std::uint64_t, Page> pages_;\n"},
      {"src/mem/sparse.cpp",
       "void Sparse::save_state(state::StateWriter& w) const {\n"
       "  std::vector<std::uint64_t> keys;\n"
       "  for (const auto& kv : pages_) {\n"
       "    keys.push_back(kv.first);\n"
       "  }\n"
       "  std::sort(keys.begin(), keys.end());\n"
       "  for (const std::uint64_t k : keys) {\n"
       "    w.put_u64(k);\n"
       "  }\n"
       "}\n"},
  };
  const auto findings = ahbp::lint::lint_sources(files, "");
  EXPECT_EQ(count_rule(findings, "snapshot/unordered-iteration"), 0u);
}

TEST(LintRules, UnorderedIterationOutsideSerializationAllowed) {
  // Hash-order iteration is only a problem when it reaches the byte stream.
  const std::vector<SourceFile> files = {
      {"src/mem/sparse.hpp",
       "std::unordered_map<std::uint64_t, Page> pages_;\n"},
      {"src/mem/sparse.cpp",
       "std::size_t Sparse::footprint() const {\n"
       "  std::size_t n = 0;\n"
       "  for (const auto& kv : pages_) { n += kv.second.size(); }\n"
       "  return n;\n"
       "}\n"},
  };
  const auto findings = ahbp::lint::lint_sources(files, "");
  EXPECT_EQ(count_rule(findings, "snapshot/unordered-iteration"), 0u);
}

// ---------------------------------------------------------------------------
// obs/null-gate

TEST(LintRules, UngatedObsDereferenceFlagged) {
  const std::vector<SourceFile> files = {
      {"src/tlm/bus_tap.hpp", "obs::Timeline* timeline_ = nullptr;\n"},
      {"src/tlm/bus_tap.cpp",
       "void Bus::grant(int m) { timeline_->mark_grant(m); }\n"},
  };
  const auto findings = ahbp::lint::lint_sources(files, "");
  ASSERT_EQ(count_rule(findings, "obs/null-gate"), 1u);
}

TEST(LintRules, GatedObsDereferenceAllowed) {
  const std::vector<SourceFile> files = {
      {"src/tlm/bus_tap.hpp", "obs::SelfProfiler* prof_ = nullptr;\n"},
      {"src/tlm/bus_tap.cpp",
       "void Bus::grant(int m) {\n"
       "  if (prof_ != nullptr) { prof_->enter(m); }\n"
       "}\n"},
  };
  const auto findings = ahbp::lint::lint_sources(files, "");
  EXPECT_EQ(count_rule(findings, "obs/null-gate"), 0u);
}

TEST(LintRules, ObsImplementationFilesAreExempt) {
  // The obs layer dereferences its own pointers by construction.
  const std::vector<SourceFile> files = {
      {"src/obs/timeline.cpp",
       "obs::Timeline* parent_ = nullptr;\n"
       "void Timeline::flush() { parent_->absorb(*this); }\n"},
  };
  const auto findings = ahbp::lint::lint_sources(files, "");
  EXPECT_EQ(count_rule(findings, "obs/null-gate"), 0u);
}

// ---------------------------------------------------------------------------
// snapshot tags and the manifest contract

TEST(LintManifest, DuplicateTagsReported) {
  const std::vector<SourceFile> files = {
      {"src/ahb/arbiter.cpp", "w.begin(\"arb\");\n"},
      {"src/tlm/bus.cpp", "w.begin(\"arb\");\n"},
  };
  const auto findings = ahbp::lint::lint_sources(files, "");
  EXPECT_EQ(count_rule(findings, "snapshot/tag-unique"), 1u);
  // No manifest text supplied while tags exist: that is itself a finding.
  EXPECT_EQ(count_rule(findings, "snapshot/manifest"), 1u);
}

TEST(LintManifest, MatchingManifestIsClean) {
  SnapshotManifest m;
  m.version = 7;
  m.tags = {"arb", "bus"};
  const std::vector<SourceFile> files = {
      {"src/tlm/bus.cpp", "w.begin(\"bus\");\nw.begin(\"arb\");\n"},
  };
  const auto findings =
      ahbp::lint::lint_sources(files, ahbp::lint::render_manifest(m));
  EXPECT_TRUE(findings.empty());
}

TEST(LintManifest, TagSetDriftReported) {
  SnapshotManifest m;
  m.version = 7;
  m.tags = {"arb"};
  const std::vector<SourceFile> files = {
      {"src/tlm/bus.cpp", "w.begin(\"bus\");\nw.begin(\"arb\");\n"},
  };
  const auto findings =
      ahbp::lint::lint_sources(files, ahbp::lint::render_manifest(m));
  ASSERT_EQ(count_rule(findings, "snapshot/manifest"), 1u);
  // The message names the drifted tag and demands a version bump.
  const Finding& f = *std::find_if(
      findings.begin(), findings.end(),
      [](const Finding& x) { return x.rule == "snapshot/manifest"; });
  EXPECT_NE(f.message.find("+bus"), std::string::npos);
  EXPECT_NE(f.message.find("kFormatVersion"), std::string::npos);
}

TEST(LintManifest, FormatVersionMismatchReported) {
  SnapshotManifest m;
  m.version = 7;
  m.tags = {"arb"};
  const std::vector<SourceFile> files = {
      {"src/state/snapshot.hpp",
       "inline constexpr std::uint32_t kFormatVersion = 9;\n"},
      {"src/tlm/bus.cpp", "w.begin(\"arb\");\n"},
  };
  const auto findings =
      ahbp::lint::lint_sources(files, ahbp::lint::render_manifest(m));
  ASSERT_EQ(count_rule(findings, "snapshot/manifest"), 1u);
  EXPECT_NE(findings.back().message.find("9"), std::string::npos);
}

TEST(LintManifest, ParseRenderRoundTrip) {
  SnapshotManifest m;
  m.version = 4;
  m.tags = {"bus", "arb", "arb"};  // render sorts and dedups
  const SnapshotManifest back =
      ahbp::lint::parse_manifest(ahbp::lint::render_manifest(m));
  EXPECT_EQ(back.version, 4u);
  ASSERT_EQ(back.tags.size(), 2u);
  EXPECT_EQ(back.tags[0], "arb");
  EXPECT_EQ(back.tags[1], "bus");
}

TEST(LintManifest, MalformedManifestThrows) {
  EXPECT_THROW(ahbp::lint::parse_manifest("no version line\n"),
               std::runtime_error);
}

TEST(LintManifest, FindFormatVersionReadsSnapshotHeader) {
  const std::vector<SourceFile> files = {
      {"src/state/snapshot.hpp",
       "inline constexpr std::uint32_t kFormatVersion = 12;\n"},
  };
  EXPECT_EQ(ahbp::lint::find_format_version(files), 12u);
  EXPECT_EQ(ahbp::lint::find_format_version({}), 0u);
}

// ---------------------------------------------------------------------------
// output contract

TEST(LintOutput, FindingsSortedByFileThenLine) {
  const std::vector<SourceFile> files = {
      {"src/z/late.cpp", "int a = rand();\n"},
      {"src/a/early.cpp", "std::cout << 1;\nint b = rand();\n"},
  };
  const auto findings = ahbp::lint::lint_sources(files, "");
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].file, "src/a/early.cpp");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_EQ(findings[1].file, "src/a/early.cpp");
  EXPECT_EQ(findings[1].line, 2u);
  EXPECT_EQ(findings[2].file, "src/z/late.cpp");
}

}  // namespace
