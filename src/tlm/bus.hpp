#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "ahb/address.hpp"
#include "ahb/config.hpp"
#include "ahb/qos.hpp"
#include "ahb/transaction.hpp"
#include "assertions/bus_checker.hpp"
#include "sim/cycle_kernel.hpp"
#include "state/snapshot.hpp"
#include "stats/profiles.hpp"
#include "tlm/arbiter.hpp"
#include "tlm/ddrc.hpp"
#include "tlm/write_buffer.hpp"

/// \file bus.hpp
/// The AHB+ main bus at transaction level — the paper's primary artifact.
///
/// Method-based modeling (§4): masters interact exclusively through the
/// transaction-level port calls below (`request`, `poll_grant`,
/// `poll_done`), which correspond to the paper's §3.2 mapping
/// (HBUSREQ -> request(), HGRANT -> CheckGrant(), the transfer itself ->
/// Read()/Write() returning OK).  The bus is one `Clocked` component on the
/// 2-step cycle kernel; all state changes happen in its evaluate() pass,
/// which runs after every master's (phase ordering), so a cycle sees:
/// masters act on last cycle's bus state, then the bus advances one cycle.
///
/// ## Cycle pipeline inside evaluate(now)
///
///  1. begin: a granted transaction starts its address phase (1 cycle after
///     its grant, matching the registered HGRANT of the RTL design);
///  2. BI exchange: next-transaction hint down, bank status up (§3.4);
///  3. DDRC step (one DRAM command);
///  4. one data beat moves (read or write) when the DDRC allows;
///  5. completion and master notification;
///  6. arbitration (request pipelining: the next grant is computed while
///     the tail of the current transfer still streams, §2);
///  7. write-buffer absorption of writes that lost arbitration (§3.3);
///  8. profiling sample + protocol-checker view (§3.5, §3.6).

namespace ahbp::tlm {

/// Result of a master's grant poll.
enum class GrantPoll : std::uint8_t {
  kWait,     ///< keep requesting
  kGranted,  ///< bus owned; transfer in progress
  kBuffered, ///< write absorbed by the write buffer; transaction complete
};

class AhbPlusBus final : public sim::Clocked, public state::Snapshottable {
 public:
  /// `checker_log` may be null (checkers off, e.g. inside speed benches).
  AhbPlusBus(const ahb::BusConfig& cfg, ahb::QosRegisterFile& qos,
             TlmDdrc& ddrc, unsigned masters, chk::ViolationLog* checker_log);

  // ------------------------------------------------ master port (§3.2)

  /// Raise HBUSREQ with the AHB+ request sideband (the full descriptor —
  /// this is what enables request pipelining and the BI hint).
  void request(ahb::MasterId m, const ahb::Transaction& txn, sim::Cycle now);

  /// CheckGrant()/write-buffer status poll.
  GrantPoll poll_grant(ahb::MasterId m) const;

  /// Completion poll; fills `out` (with read data and timestamps) once.
  bool poll_done(ahb::MasterId m, ahb::Transaction& out);

  // ----------------------------------------------------------- Clocked

  void evaluate(sim::Cycle now) override;
  int phase() const override { return 2; }
  std::string_view name() const override { return "ahb+bus"; }

  // ------------------------------------------------------------- stats

  const stats::BusProfile& bus_profile() const noexcept { return bus_profile_; }
  const WriteBuffer& write_buffer() const noexcept { return wbuf_; }
  stats::MasterProfile& master_profile(ahb::MasterId m) {
    return master_profiles_.at(m);
  }
  const std::vector<stats::MasterProfile>& master_profiles() const noexcept {
    return master_profiles_;
  }
  const Arbiter& arbiter() const noexcept { return arbiter_; }

  /// Attach a timeline under process `pid`: creates one track per master
  /// plus bus-owner and write-buffer tracks.  Observation only — attaching
  /// never changes simulated behaviour.
  void set_timeline(obs::Timeline& tl, unsigned pid);

  /// All scripted work retired and nothing in flight anywhere.
  bool quiescent() const noexcept;

  // ------------------------------------------------------- quantum skip

  /// Lower bound on the bus's next "interesting" cycle: evaluate(t) is
  /// state-equivalent to the bulk replay skip_idle() performs for every t
  /// in [now, idle_until(now)).  Returns `now` (no skip) unless every
  /// master slot is idle, nothing is in flight or granted, the write
  /// buffer is empty and the DDRC is provably idle; otherwise the DDRC's
  /// own bound (its next refresh deadline, or kNeverCycle).
  sim::Cycle idle_until(sim::Cycle now) const noexcept;

  /// Bulk-replay evaluate() over the provably idle cycles [from, to):
  /// epoch-clock catch-up, per-master think-stall attribution, profile and
  /// write-buffer occupancy samples, checker views.  Pre:
  /// idle_until(from) >= to.
  void skip_idle(sim::Cycle from, sim::Cycle to);

  // ---------------------------------------------------------- snapshot
  // Covers slots, the in-flight transfer, the latched grant, lock owner,
  // arbiter/write-buffer/checker state and every profile counter.  The DDRC
  // and QoS register file snapshot with their own owners.
  void save_state(state::StateWriter& w) const override;
  void restore_state(state::StateReader& r) override;

 private:
  struct Slot {
    enum class St : std::uint8_t { kIdle, kRequested, kBuffered, kOwner, kDone };
    St st = St::kIdle;
    ahb::Transaction txn;
    /// kBuffered: cycle the buffer finishes streaming the write data in
    /// (one beat per cycle, off the bus); the master completes then.
    sim::Cycle buffered_done_at = 0;
  };

  struct Inflight {
    ahb::MasterId owner = ahb::kNoMaster;  ///< == masters_ for wbuf drain
    ahb::Transaction txn;
    unsigned beat = 0;           ///< beats completed on the bus
    sim::Cycle addr_cycle = 0;   ///< cycle of the NONSEQ address phase
    bool from_wbuf = false;
  };

  void do_begin(sim::Cycle now);
  bool move_data_beat(sim::Cycle now);
  void do_completion(sim::Cycle now);
  void do_arbitration(sim::Cycle now);
  void do_absorption(sim::Cycle now);
  void emit_view(sim::Cycle now, chk::BusCycleView view);
  /// Charge this cycle to one stall class per master (always on — reads
  /// component state only, so it cannot perturb the simulation).
  void account_stalls(sim::Cycle now);

  ahb::BusConfig cfg_;
  ahb::QosRegisterFile& qos_;
  TlmDdrc& ddrc_;
  unsigned masters_;
  Arbiter arbiter_;
  WriteBuffer wbuf_;

  std::vector<Slot> slots_;
  /// In-flight transfer; valid only while inflight_active_.  A plain
  /// member (not optional) so the transaction's beat buffer keeps its
  /// capacity across transfers — the steady-state hot path re-begins
  /// without touching the heap.
  Inflight inflight_;
  bool inflight_active_ = false;
  /// Grant latched for begin in a later cycle (registered-HGRANT model).
  std::optional<ahb::MasterId> granted_;
  sim::Cycle granted_cycle_ = 0;
  ahb::MasterId lock_owner_ = ahb::kNoMaster;

  stats::BusProfile bus_profile_;
  std::vector<stats::MasterProfile> master_profiles_;
  std::optional<chk::BusChecker> checker_;
  std::optional<chk::QosChecker> qos_checker_;

  /// Timeline wiring (null when recording is off; never snapshotted).
  obs::Timeline* tl_ = nullptr;
  unsigned tl_bus_track_ = 0;
  unsigned tl_wbuf_track_ = 0;
  unsigned tl_last_occ_ = ~0U;  ///< last emitted wbuf occupancy sample
  /// Scratch arbitration context reused every cycle (method-based TLM is
  /// allocation-free on the simulation hot path).
  ArbContext ctx_;
};

}  // namespace ahbp::tlm
