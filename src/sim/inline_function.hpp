#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

/// \file inline_function.hpp
/// Small-buffer callable for the simulation kernels' hot paths.
///
/// `std::function` heap-allocates large captures, copies on every
/// priority-queue shuffle, and its copyability forces every capture to be
/// copyable.  The kernels need none of that: event handlers and process
/// bodies are created once, moved into place, invoked many times.
/// `InlineFunction` is the minimal replacement — move-only, fixed inline
/// storage, no heap fallback.  A capture larger than the inline buffer is
/// a compile-time error, which is exactly the regression guard we want:
/// a fat capture on the per-cycle path is a bug, not something to silently
/// box on the heap.
///
/// The repo linter bans `std::function` members in `src/sim/` outright;
/// this is what hot-path code uses instead.

namespace ahbp::sim {

/// Default inline capacity: enough for a `this` pointer plus a few words
/// of context — every kernel-internal callable fits (Clock's `[this]`
/// toggle, the fabric's process bodies capture a single object pointer).
inline constexpr std::size_t kInlineFnCapacity = 48;

template <typename Signature, std::size_t Capacity = kInlineFnCapacity>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "capture too large for InlineFunction — hot-path callables"
                  " must stay small (capture a pointer, not the world)");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned captures are not supported");
    ::new (static_cast<void*>(&storage_)) Fn(std::forward<F>(f));
    invoke_ = [](void* s, Args... args) -> R {
      return (*std::launder(reinterpret_cast<Fn*>(s)))(
          std::forward<Args>(args)...);
    };
    relocate_ = [](void* dst, void* src) {
      Fn* from = std::launder(reinterpret_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    };
    if constexpr (!std::is_trivially_destructible_v<Fn>) {
      destroy_ = [](void* s) {
        std::launder(reinterpret_cast<Fn*>(s))->~Fn();
      };
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(&storage_, std::forward<Args>(args)...);
  }

  void reset() noexcept {
    if (destroy_ != nullptr) {
      destroy_(&storage_);
    }
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

 private:
  void move_from(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    destroy_ = other.destroy_;
    relocate_ = other.relocate_;
    if (other.relocate_ != nullptr) {
      other.relocate_(&storage_, &other.storage_);
    }
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  R (*invoke_)(void*, Args...) = nullptr;
  void (*relocate_)(void*, void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

}  // namespace ahbp::sim
