// Sparse backing store: byte addressing, little-endian packing, page
// materialization.

#include <gtest/gtest.h>

#include "ddr/storage.hpp"

namespace {

using namespace ahbp::ddr;

TEST(Storage, UntouchedReadsZero) {
  SparseMemory m;
  EXPECT_EQ(m.read(0x1234, 4), 0u);
  EXPECT_EQ(m.pages(), 0u);  // reads do not materialize pages
}

TEST(Storage, WriteReadRoundtrip) {
  SparseMemory m;
  m.write(0x100, 0x11223344, 4);
  EXPECT_EQ(m.read(0x100, 4), 0x11223344u);
}

TEST(Storage, LittleEndianByteOrder) {
  SparseMemory m;
  m.write(0x0, 0xAABBCCDD, 4);
  EXPECT_EQ(m.read(0x0, 1), 0xDDu);
  EXPECT_EQ(m.read(0x1, 1), 0xCCu);
  EXPECT_EQ(m.read(0x2, 1), 0xBBu);
  EXPECT_EQ(m.read(0x3, 1), 0xAAu);
}

TEST(Storage, PartialWidthWritePreservesNeighbours) {
  SparseMemory m;
  m.write(0x10, 0xFFFFFFFFFFFFFFFFull, 8);
  m.write(0x12, 0x00, 1);
  EXPECT_EQ(m.read(0x10, 8), 0xFFFFFFFFFF00FFFFull);
}

TEST(Storage, CrossPageAccess) {
  SparseMemory m;
  const ahbp::ahb::Addr a = SparseMemory::kPageBytes - 2;
  m.write(a, 0xCAFEBABE, 4);
  EXPECT_EQ(m.read(a, 4), 0xCAFEBABEu);
  EXPECT_EQ(m.pages(), 2u);
}

TEST(Storage, EightByteAccess) {
  SparseMemory m;
  m.write(0x40, 0x0123456789ABCDEFull, 8);
  EXPECT_EQ(m.read(0x40, 8), 0x0123456789ABCDEFull);
  EXPECT_EQ(m.read(0x44, 4), 0x01234567u);
}

TEST(Storage, InvalidWidthThrows) {
  SparseMemory m;
  EXPECT_THROW(m.read(0, 0), std::invalid_argument);
  EXPECT_THROW(m.read(0, 9), std::invalid_argument);
  EXPECT_THROW(m.write(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(m.write(0, 0, 16), std::invalid_argument);
}

TEST(Storage, DistinctPagesIndependent) {
  SparseMemory m;
  m.write(0x0, 1, 4);
  m.write(SparseMemory::kPageBytes * 5, 2, 4);
  EXPECT_EQ(m.read(0x0, 4), 1u);
  EXPECT_EQ(m.read(SparseMemory::kPageBytes * 5, 4), 2u);
  EXPECT_EQ(m.pages(), 2u);
}

}  // namespace
