#pragma once

#include <cstdint>
#include <vector>

#include "ahb/types.hpp"
#include "sim/time.hpp"
#include "state/snapshot.hpp"

/// \file transaction.hpp
/// The transaction descriptor — the unit of work in the TLM.
///
/// This is the paper's §3.1 "re-definition of the protocol at transaction
/// level": everything that in RTL is spread over HADDR/HTRANS/HBURST/HSIZE/
/// HWRITE pins across several cycles becomes one descriptor passed through a
/// method call.  Timestamps are embedded so the profiling layer (§3.6) can
/// compute wait/latency/throughput without external bookkeeping.

namespace ahbp::ahb {

/// Unique transaction id, assigned by the issuing master port.
using TxnId = std::uint64_t;

/// A single bus transaction (one burst).
struct Transaction {
  TxnId id = 0;
  MasterId master = kNoMaster;
  Dir dir = Dir::kRead;
  Addr addr = 0;            ///< starting address (aligned to size)
  Size size = Size::kWord;  ///< per-beat size
  Burst burst = Burst::kSingle;
  unsigned beats = 1;       ///< actual beat count (INCR carries its length here)
  bool locked = false;      ///< HLOCK asserted for the duration

  /// Write payload / read result, one Word per beat (only the low
  /// size_bytes() bytes of each word are meaningful).
  std::vector<Word> data;

  // --- Timestamps stamped by the models (cycles in the owning kernel) ---
  sim::Cycle issued_at = 0;    ///< master raised the request
  sim::Cycle granted_at = 0;   ///< arbiter granted the bus
  sim::Cycle started_at = 0;   ///< first address phase
  sim::Cycle finished_at = 0;  ///< last data beat accepted

  /// Total bytes moved by the transaction.
  std::uint64_t bytes() const noexcept {
    return static_cast<std::uint64_t>(beats) * size_bytes(size);
  }

  /// Request-to-completion latency in cycles (valid once finished).
  sim::Cycle latency() const noexcept { return finished_at - issued_at; }

  /// Grant wait in cycles (valid once granted).
  sim::Cycle wait() const noexcept { return granted_at - issued_at; }
};

/// Control/status block returned by the TLM port calls Read()/Write(),
/// mirroring the paper's `Read(addr, *data, *ctrl)` signature.
struct TransferCtrl {
  Resp resp = Resp::kOkay;
  unsigned beats_done = 0;
  sim::Cycle cycles = 0;   ///< bus cycles the transfer occupied
};

/// Result of a port-level call.
enum class PortStatus : std::uint8_t {
  kOk,        ///< transfer completed OKAY
  kNotGranted,///< CheckGrant() false — caller must retry later
  kError,     ///< slave returned ERROR
  kBuffered,  ///< write absorbed by the AHB+ write buffer (completes later)
};

/// Validate structural invariants of a transaction (alignment, beat count
/// consistent with burst kind, 1KB rule, non-empty).  Returns true if legal;
/// used by model-debug assertions (§3.5 first family).
bool structurally_valid(const Transaction& t) noexcept;

/// Snapshot a transaction descriptor (all fields, including data beats and
/// timestamps) — transactions appear inside bus slots, write-buffer FIFOs
/// and in-flight registers of both models.
void save_state(state::StateWriter& w, const Transaction& t);
void restore_state(state::StateReader& r, Transaction& t);

}  // namespace ahbp::ahb
