// Burst address math and the address decoder.  The WRAP cases follow the
// worked examples in the AMBA 2.0 specification §3.5.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "ahb/address.hpp"

namespace {

using namespace ahbp::ahb;

TEST(BurstAddr, IncrStepsBySize) {
  EXPECT_EQ(burst_beat_addr(0x100, Size::kWord, Burst::kIncr4, 0), 0x100u);
  EXPECT_EQ(burst_beat_addr(0x100, Size::kWord, Burst::kIncr4, 1), 0x104u);
  EXPECT_EQ(burst_beat_addr(0x100, Size::kWord, Burst::kIncr4, 3), 0x10Cu);
  EXPECT_EQ(burst_beat_addr(0x100, Size::kHalf, Burst::kIncr8, 7), 0x10Eu);
  EXPECT_EQ(burst_beat_addr(0x100, Size::kByte, Burst::kIncr, 9), 0x109u);
}

TEST(BurstAddr, Wrap4WordExampleFromSpec) {
  // AMBA 2.0 example: WRAP4 of words starting at 0x38 ->
  // 0x38, 0x3C, 0x30, 0x34 (wraps at the 16-byte boundary).
  EXPECT_EQ(burst_beat_addr(0x38, Size::kWord, Burst::kWrap4, 0), 0x38u);
  EXPECT_EQ(burst_beat_addr(0x38, Size::kWord, Burst::kWrap4, 1), 0x3Cu);
  EXPECT_EQ(burst_beat_addr(0x38, Size::kWord, Burst::kWrap4, 2), 0x30u);
  EXPECT_EQ(burst_beat_addr(0x38, Size::kWord, Burst::kWrap4, 3), 0x34u);
}

TEST(BurstAddr, Wrap8WordWrapsAt32Bytes) {
  // Start at 0x34: 0x34,0x38,0x3C,0x20,0x24,0x28,0x2C,0x30
  const Addr expect[] = {0x34, 0x38, 0x3C, 0x20, 0x24, 0x28, 0x2C, 0x30};
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(burst_beat_addr(0x34, Size::kWord, Burst::kWrap8, i), expect[i])
        << "beat " << i;
  }
}

TEST(BurstAddr, Wrap16HalfwordBoundary) {
  // 16 halfwords = 32-byte wrap window.
  const Addr start = 0x1E;
  const Addr b0 = burst_beat_addr(start, Size::kHalf, Burst::kWrap16, 0);
  const Addr b1 = burst_beat_addr(start, Size::kHalf, Burst::kWrap16, 1);
  EXPECT_EQ(b0, 0x1Eu);
  EXPECT_EQ(b1, 0x00u);  // wrapped to the window base
}

TEST(BurstAddr, WrapAlignedStartNeverWraps) {
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(burst_beat_addr(0x40, Size::kWord, Burst::kWrap8, i),
              0x40u + 4 * i);
  }
}

// Property: a wrapping burst visits exactly the addresses of its aligned
// window, each once.
class WrapWindowProperty
    : public ::testing::TestWithParam<std::tuple<Burst, Size, Addr>> {};

TEST_P(WrapWindowProperty, VisitsWholeWindowOnce) {
  const auto [burst, size, start] = GetParam();
  const unsigned beats = burst_fixed_beats(burst);
  const Addr window = static_cast<Addr>(beats) * size_bytes(size);
  const Addr base = start & ~(window - 1);
  std::set<Addr> seen;
  for (unsigned i = 0; i < beats; ++i) {
    const Addr a = burst_beat_addr(start, size, burst, i);
    EXPECT_GE(a, base);
    EXPECT_LT(a, base + window);
    EXPECT_TRUE(seen.insert(a).second) << "duplicate address";
  }
  EXPECT_EQ(seen.size(), beats);
}

INSTANTIATE_TEST_SUITE_P(
    AllWrapKinds, WrapWindowProperty,
    ::testing::Combine(::testing::Values(Burst::kWrap4, Burst::kWrap8,
                                         Burst::kWrap16),
                       ::testing::Values(Size::kByte, Size::kHalf, Size::kWord,
                                         Size::kDword),
                       ::testing::Values(Addr{0x00}, Addr{0x34}, Addr{0x78},
                                         Addr{0xF8})));

TEST(Burst1Kb, IncrWithinBoundary) {
  EXPECT_TRUE(burst_within_1kb(0x000, Size::kWord, Burst::kIncr16, 16));
  EXPECT_TRUE(burst_within_1kb(0x3C0, Size::kWord, Burst::kIncr16, 16));
  // 0x3D0 + 15*4 = 0x40C crosses 0x400.
  EXPECT_FALSE(burst_within_1kb(0x3D0, Size::kWord, Burst::kIncr16, 16));
}

TEST(Burst1Kb, WrapAlwaysLegal) {
  EXPECT_TRUE(burst_within_1kb(0x3FC, Size::kWord, Burst::kWrap16, 16));
}

TEST(Burst1Kb, UndefinedIncrUsesActualBeats) {
  EXPECT_TRUE(burst_within_1kb(0x3F0, Size::kWord, Burst::kIncr, 4));
  EXPECT_FALSE(burst_within_1kb(0x3F0, Size::kWord, Burst::kIncr, 5));
}

TEST(Sequencer, WalksAllBeats) {
  BurstSequencer s(0x100, Size::kWord, Burst::kIncr4, 4);
  EXPECT_EQ(s.beats(), 4u);
  EXPECT_FALSE(s.done());
  EXPECT_EQ(s.current(), 0x100u);
  s.advance();
  EXPECT_EQ(s.current(), 0x104u);
  EXPECT_FALSE(s.last_beat());
  s.advance();
  EXPECT_TRUE(!s.done());
  s.advance();
  EXPECT_TRUE(s.last_beat() || s.beat() == 3);
  s.advance();
  EXPECT_TRUE(s.done());
}

TEST(Sequencer, WrapSequenceMatchesBeatAddr) {
  BurstSequencer s(0x38, Size::kWord, Burst::kWrap4, 4);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(s.current(), burst_beat_addr(0x38, Size::kWord, Burst::kWrap4, i));
    s.advance();
  }
}

TEST(Sequencer, ZeroBeatsClampedToOne) {
  BurstSequencer s(0x0, Size::kWord, Burst::kIncr, 0);
  EXPECT_EQ(s.beats(), 1u);
}

TEST(AddressMap, DecodeInsideRegions) {
  AddressMap map;
  map.add(Region{0x0000, 0x1000, 0, "ddr"});
  map.add(Region{0x8000, 0x1000, 1, "sram"});
  EXPECT_EQ(map.decode(0x0000).value(), 0);
  EXPECT_EQ(map.decode(0x0FFF).value(), 0);
  EXPECT_EQ(map.decode(0x8000).value(), 1);
  EXPECT_FALSE(map.decode(0x1000).has_value());
  EXPECT_FALSE(map.decode(0x7FFF).has_value());
}

TEST(AddressMap, RejectsOverlap) {
  AddressMap map;
  map.add(Region{0x0000, 0x1000, 0, "a"});
  EXPECT_THROW(map.add(Region{0x0800, 0x1000, 1, "b"}),
               std::invalid_argument);
  EXPECT_THROW(map.add(Region{0x0FFF, 1, 1, "c"}), std::invalid_argument);
}

TEST(AddressMap, RejectsZeroSize) {
  AddressMap map;
  EXPECT_THROW(map.add(Region{0x0, 0, 0, "zero"}), std::invalid_argument);
}

TEST(AddressMap, AdjacentRegionsLegal) {
  AddressMap map;
  map.add(Region{0x0000, 0x1000, 0, "a"});
  EXPECT_NO_THROW(map.add(Region{0x1000, 0x1000, 1, "b"}));
  EXPECT_EQ(map.decode(0x1000).value(), 1);
}

}  // namespace
