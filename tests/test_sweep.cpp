// Sweep subsystem: cross-product expansion is exact and ordered, the
// threaded runner produces byte-identical aggregates at any worker count
// (results are keyed by expansion index, never completion order), and spec
// files compose with the scenario layer.

#include <gtest/gtest.h>

#include <sstream>

#include "scenario/scenario.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"

namespace {

using namespace ahbp;
using scenario::ScenarioError;

const char* kSweepText = R"(
base = table1/rt-1

[master *]
items = 40

[sweep]
bus.write_buffer_depth = 0, 2, 4, 8
bus.filter_mask = 0x7f, 0x77
)";

// ---------------------------------------------------------- expansion ----

TEST(SweepSpec, CrossProductExpansion) {
  const auto spec = sweep::parse_spec(kSweepText);
  EXPECT_EQ(spec.base, "table1/rt-1");
  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.points(), 8u);

  const auto points = sweep::expand(spec);
  ASSERT_EQ(points.size(), 8u);
  // First axis slowest: depth changes every 2 points, mask alternates.
  EXPECT_EQ(points[0].config.bus.write_buffer_depth, 0u);
  EXPECT_EQ(points[1].config.bus.write_buffer_depth, 0u);
  EXPECT_EQ(points[2].config.bus.write_buffer_depth, 2u);
  EXPECT_EQ(points[7].config.bus.write_buffer_depth, 8u);
  EXPECT_EQ(points[0].config.bus.filter_mask, 0x7F);
  EXPECT_EQ(points[1].config.bus.filter_mask, 0x77);
  // Base override applied before axes.
  EXPECT_EQ(points[5].config.masters.at(0).traffic.items, 40u);
  // Labels carry the axis assignments, indices are positional.
  EXPECT_EQ(points[3].index, 3u);
  EXPECT_EQ(points[3].label,
            "bus.write_buffer_depth=2 bus.filter_mask=0x77");
}

TEST(SweepSpec, NoAxesYieldsSingleBasePoint) {
  const auto spec = sweep::parse_spec("base = single-master\n");
  const auto points = sweep::expand(spec);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].label, "base");
  EXPECT_EQ(points[0].config.masters.size(), 1u);
}

TEST(SweepSpec, InlineScenarioAsBase) {
  const auto spec = sweep::parse_spec(R"(
[master 0]
pattern = dma
items = 10

[sweep]
ddr.preset = toy, ddr266
)");
  const auto points = sweep::expand(spec);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].config.timing.tRFC, ddr::toy_timing().tRFC);
  EXPECT_EQ(points[1].config.timing.tRFC, ddr::ddr266().tRFC);
}

TEST(SweepSpec, Errors) {
  EXPECT_THROW(sweep::parse_spec(""), ScenarioError);  // no base, no scenario
  EXPECT_THROW(sweep::parse_spec("base = not-a-scenario-or-file\n"),
               ScenarioError);
  EXPECT_THROW(sweep::parse_spec("base = single-master\n[sweep]\nnodot = 1\n"),
               ScenarioError);
  EXPECT_THROW(
      sweep::parse_spec("base = single-master\n[sweep]\nbus.depth = \n"),
      ScenarioError);
  EXPECT_THROW(sweep::parse_spec("[bus]\nwrite_buffer_depth = 1\n"
                                 "base = single-master\n"),
               ScenarioError);  // base after sections
  EXPECT_THROW(sweep::parse_spec("stray = 1\n"), ScenarioError);
}

TEST(SweepSpec, InlineScenarioErrorsKeepSweepFileLineNumbers) {
  // Blank lines, comments, and the [sweep] section above the bad key must
  // not shift the reported line number.
  try {
    sweep::parse_spec(
        "# header comment\n"       // 1
        "\n"                       // 2
        "[sweep]\n"                // 3
        "bus.filter_mask = 1, 2\n" // 4
        "\n"                       // 5
        "[master 0]\n"             // 6
        "items = nope\n");         // 7
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_EQ(e.line(), 7u) << e.what();
  }
}

TEST(SweepSpec, ExpandEnforcesWholeConfigValidation) {
  // Axis values go through apply_key one at a time, which cannot see
  // whole-config invariants; expand() must re-validate each point.  A
  // swept ddr.rows shrinking the aperture under the base's master windows
  // is an error, not a silently wrapping run.
  const auto spec = sweep::parse_spec(
      "base = table1/dma-1\n"
      "[sweep]\nddr.rows = 4096, 4\n");
  EXPECT_THROW(sweep::expand(spec), ScenarioError);
  // Same rule for the sweep file's own targeted overrides of the base.
  EXPECT_THROW(sweep::parse_spec("base = table1/dma-1\n"
                                 "[ddr]\nrows = 4\n"
                                 "[sweep]\nbus.filter_mask = 0x7f\n"),
               ScenarioError);
  // A channel override the interleave does not instantiate is an error
  // at expand, not silently dropped by resolution.
  const auto ch = sweep::parse_spec(
      "base = table1/dma-1\n"
      "[sweep]\nchannel1.tCL = 4, 6\n");
  EXPECT_THROW(sweep::expand(ch), ScenarioError);
}

TEST(SweepSpec, BadAxisSurfacesAtExpand) {
  const auto bad_value = sweep::parse_spec(
      "base = single-master\n[sweep]\nbus.write_buffer_depth = 1, soon\n");
  EXPECT_THROW(sweep::expand(bad_value), ScenarioError);
  const auto bad_key = sweep::parse_spec(
      "base = single-master\n[sweep]\nbus.bogus = 1, 2\n");
  EXPECT_THROW(sweep::expand(bad_key), ScenarioError);
}

// -------------------------------------------------------------- runner ----

TEST(SweepRunner, ModelNames) {
  sweep::Model m = sweep::Model::kTlm;
  EXPECT_TRUE(sweep::model_from_string("rtl", m));
  EXPECT_EQ(m, sweep::Model::kRtl);
  EXPECT_TRUE(sweep::model_from_string("both", m));
  EXPECT_FALSE(sweep::model_from_string("spice", m));
}

std::string render(const std::vector<sweep::PointOutcome>& outcomes,
                   sweep::Model model) {
  std::ostringstream os;
  sweep::aggregate_table(outcomes, model).print(os);
  return os.str();
}

TEST(SweepRunner, DeterministicAcrossJobCounts) {
  const auto spec = sweep::parse_spec(kSweepText);
  const auto points = sweep::expand(spec);
  ASSERT_GE(points.size(), 8u);

  const auto seq = sweep::SweepRunner(1).run(points, sweep::Model::kTlm);
  const auto par4 = sweep::SweepRunner(4).run(points, sweep::Model::kTlm);
  const auto par0 = sweep::SweepRunner(0).run(points, sweep::Model::kTlm);

  ASSERT_EQ(seq.size(), par4.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].index, i);
    EXPECT_EQ(par4[i].index, i);
    EXPECT_EQ(seq[i].label, par4[i].label);
    EXPECT_EQ(seq[i].tlm.cycles, par4[i].tlm.cycles) << i;
    EXPECT_EQ(seq[i].tlm.completed, par4[i].tlm.completed) << i;
    EXPECT_EQ(seq[i].tlm.cycles, par0[i].tlm.cycles) << i;
  }
  // The rendered aggregate (the artifact reports diff) is byte-identical.
  EXPECT_EQ(render(seq, sweep::Model::kTlm), render(par4, sweep::Model::kTlm));
  EXPECT_EQ(render(seq, sweep::Model::kTlm), render(par0, sweep::Model::kTlm));
}

TEST(SweepRunner, ChannelAxisDeterministicAcrossJobCounts) {
  // `ddr.channels` is a sweepable axis like any other knob, and the
  // index-ordered aggregates stay byte-identical at every worker count.
  const auto spec = sweep::parse_spec(
      "base = table1/dma-1\n"
      "[master *]\nitems = 30\n"
      "[sweep]\n"
      "ddr.channels = 1, 2, 4\n"
      "ddr.interleave_bytes = 256, 1024\n");
  const auto points = sweep::expand(spec);
  ASSERT_EQ(points.size(), 6u);
  EXPECT_EQ(points[0].config.interleave.channels, 1u);
  EXPECT_EQ(points[5].config.interleave.channels, 4u);
  EXPECT_EQ(points[5].config.interleave.stripe_bytes, 1024u);

  const auto seq = sweep::SweepRunner(1).run(points, sweep::Model::kTlm);
  const auto par = sweep::SweepRunner(4).run(points, sweep::Model::kTlm);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_TRUE(seq[i].tlm.finished) << seq[i].label;
    EXPECT_EQ(seq[i].tlm.cycles, par[i].tlm.cycles) << i;
    EXPECT_EQ(seq[i].tlm.completed, par[i].tlm.completed) << i;
  }
  EXPECT_EQ(render(seq, sweep::Model::kTlm), render(par, sweep::Model::kTlm));

  // Sharding pays on the bandwidth-bound base (points are ordered
  // channels-major, stripe-minor; the strict per-step monotonicity
  // property lives in test_multi_channel.cpp at full workload size).
  EXPECT_LE(seq[5].tlm.cycles, seq[1].tlm.cycles);  // 4ch vs 1ch @1024B
}

TEST(SweepRunner, RunsCleanAndAggregates) {
  const auto spec = sweep::parse_spec(kSweepText);
  const auto points = sweep::expand(spec);
  const auto outcomes =
      sweep::SweepRunner(4).run(points, sweep::Model::kTlm);
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.error.empty()) << o.error;
    EXPECT_TRUE(o.has_tlm);
    EXPECT_FALSE(o.has_rtl);
    EXPECT_TRUE(o.tlm.finished) << o.label;
    EXPECT_EQ(o.tlm.protocol_errors, 0u) << o.label;
    EXPECT_EQ(o.tlm.completed, 160u) << o.label;  // 4 masters x 40
  }
  const auto table = sweep::aggregate_table(outcomes, sweep::Model::kTlm);
  EXPECT_EQ(table.rows(), outcomes.size());
}

TEST(SweepRunner, BothModelsProduceAccuracyColumn) {
  auto spec = sweep::parse_spec(
      "base = single-master\n"
      "[master *]\nitems = 25\n"
      "[sweep]\nbus.write_buffer_depth = 2, 4\n");
  const auto outcomes =
      sweep::SweepRunner(2).run(sweep::expand(spec), sweep::Model::kBoth);
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.has_tlm);
    EXPECT_TRUE(o.has_rtl);
    EXPECT_TRUE(o.tlm.finished);
    EXPECT_TRUE(o.rtl.finished);
    EXPECT_LT(o.cycle_error(), 0.25) << o.label;  // models stay close
  }
  const std::string text = render(outcomes, sweep::Model::kBoth);
  EXPECT_NE(text.find("error"), std::string::npos);
}

TEST(SweepRunner, FailedPointIsReportedNotFatal) {
  // max_cycles too small to drain: the run "fails" (finished == false) but
  // the sweep still completes and reports it.
  auto spec = sweep::parse_spec(
      "base = single-master\n"
      "[platform]\nmax_cycles = 50\n"
      "[sweep]\nbus.write_buffer_depth = 2, 4\n");
  const auto outcomes =
      sweep::SweepRunner(2).run(sweep::expand(spec), sweep::Model::kTlm);
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.error.empty());
    EXPECT_FALSE(o.tlm.finished);
  }
}

}  // namespace
