#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/platform.hpp"
#include "state/snapshot.hpp"

namespace ahbp::obs {
class SelfProfiler;
class Timeline;
}

/// \file checkpoint.hpp
/// Run control with checkpoint/restore: the steppable `Platform` and the
/// self-describing checkpoint file helpers.
///
/// `run_tlm` / `run_rtl` are one-shot conveniences built on `Platform`;
/// everything that needs to *stop in the middle* — `ahbp_sim checkpoint`,
/// `resume`, warm-up-forked sweeps, the cycle-exactness tests — drives a
/// `Platform` directly:
///
/// ```
/// core::Platform warm(cfg, core::ModelKind::kTlm);
/// warm.run(100'000);                       // simulate the warm-up prefix
/// state::StateWriter w;
/// warm.save_state(w);                      // freeze DDR banks, buffers, ...
/// auto bytes = w.finish();
///
/// core::Platform fork(point_cfg, core::ModelKind::kTlm);
/// state::StateReader r(bytes.data(), bytes.size());
/// fork.restore_state(r);                   // resume from the warmed state
/// fork.run_to_completion();
/// ```
///
/// The restore contract: the target platform must match the snapshot
/// *structurally* (model kind, master count, channel count, per-channel
/// bank geometry, checker enablement) — violations throw
/// `state::StateError`.  Tunable knobs (timings, QoS values, watermarks,
/// filter masks) may differ; they take effect from the restored cycle on.
/// Restore-then-run is bit-exact with an uninterrupted run when the target
/// configuration equals the snapshot's — the property pinned per registry
/// preset, in both models, by tests/test_checkpoint.cpp.

namespace ahbp::core {

/// Which model a Platform instantiates.
enum class ModelKind : std::uint8_t {
  kTlm = 0,
  kRtl = 1,
};

std::string_view to_string(ModelKind m) noexcept;

/// Parse "tlm" / "rtl".  Returns false on an unknown name.
bool model_kind_from_string(std::string_view name, ModelKind& out);

/// One assembled platform instance that can run in increments, snapshot
/// itself between increments, and restore from a snapshot taken by another
/// instance of the same structural configuration.
class Platform : public state::Snapshottable {
 public:
  Platform(const PlatformConfig& cfg, ModelKind model);
  ~Platform() override;

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  ModelKind model() const noexcept;
  const PlatformConfig& config() const noexcept;

  /// Bus cycles simulated so far (continues across restore).
  sim::Cycle now() const;

  /// Workload drained and nothing in flight.
  bool finished() const;

  /// Simulate at most `n` further cycles, never exceeding
  /// `config().max_cycles` in total; stops early when finished().
  /// Returns the cycles executed.
  sim::Cycle run(sim::Cycle n);

  /// Run until finished() or the max_cycles budget is exhausted.
  void run_to_completion();

  /// The run outcome so far, in exactly the shape `run_tlm`/`run_rtl`
  /// return it.  `wall_seconds` covers this instance's own simulation time
  /// (a resumed platform does not inherit the warm-up's wall clock — that
  /// saving is the whole point).
  SimResult result() const;

  /// RTL only: dump the architectural signals as VCD.  Call before run().
  void enable_vcd(std::ostream& os);

  /// Attach a structured event timeline (obs/timeline.hpp): registers one
  /// timeline process for this model and wires every emission point (master
  /// ports, bus, write buffer, DDR channels/banks).  Call before run();
  /// `tl` must outlive the platform.  Observation only — cycle counts and
  /// all simulated state are bit-identical with or without a timeline.
  void enable_timeline(obs::Timeline& tl);

  /// Attach a self-profiler: the model's kernel times its components (TLM:
  /// per Clocked component; RTL: per process), and the stimulus-expansion
  /// time measured at construction is reported retroactively.  Call before
  /// run(); `sp` must outlive the platform.
  void enable_self_profile(obs::SelfProfiler& sp);

  /// Emit a progress heartbeat to `os` roughly every `interval_sec` of
  /// wall clock while run() executes (cycles, wall time, kcycles/s).  The
  /// chunked execution it implies is alignment-preserving in both models,
  /// so results are bit-identical with progress on or off.  Null disables.
  void set_progress(std::ostream* os, double interval_sec = 1.0);

  /// Attach a traffic::TraceRecorder capture tap to every master port
  /// (both models; call before run(), idempotent).  The recorded streams
  /// replay bit-exactly through trace-backed stimulus.
  void enable_capture();

  /// Master `m`'s capture tap (enable_capture() must have been called).
  const traffic::TraceRecorder& capture(ahb::MasterId m) const;

  /// Convenience: run until cycle `at` (no-op if already past), then
  /// serialize the platform section into `w`.
  void checkpoint_at(sim::Cycle at, state::StateWriter& w);

  void save_state(state::StateWriter& w) const override;
  void restore_state(state::StateReader& r) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// ------------------------------------------------------ checkpoint files --

/// What a checkpoint file knows about itself.  `scenario_text` is the
/// canonical serialized scenario (scenario::serialize) of the platform the
/// snapshot was taken from, so `ahbp_sim resume` needs no other input.
/// Trace-backed masters additionally embed their resolved trace content:
/// the scenario names only the trace *path*, and a self-describing
/// snapshot must resume bit-exactly even after that file is deleted.
struct CheckpointInfo {
  std::string model;          ///< "tlm" or "rtl"
  sim::Cycle taken_at = 0;    ///< bus cycle the snapshot was taken at
  std::string scenario_text;  ///< full scenario, parseable by scenario::parse
  /// (master index, trace text) for every trace-backed master.
  std::vector<std::pair<std::uint64_t, std::string>> traces;
};

/// Inject the embedded traces of `info` into a configuration parsed from
/// `info.scenario_text`, so Platform construction never consults the
/// original trace files.  Throws state::StateError when an embedded trace
/// names a master the scenario does not declare as trace-backed.
void apply_embedded_traces(PlatformConfig& cfg, const CheckpointInfo& info);

/// Append the checkpoint header + the platform section to `w`.
void write_checkpoint(state::StateWriter& w, const Platform& p,
                      std::string_view scenario_text);

/// write_checkpoint + finish to a file.
void write_checkpoint_file(const std::string& path, const Platform& p,
                           std::string_view scenario_text);

/// Read the header section, leaving `r` positioned at the platform section
/// (pass it to Platform::restore_state).  Throws state::StateError.
CheckpointInfo read_checkpoint_header(state::StateReader& r);

/// Restore `r`'s platform section into a fresh platform built from
/// (cfg, model) and run it to completion.
SimResult run_from(const PlatformConfig& cfg, ModelKind model,
                   state::StateReader& r);

}  // namespace ahbp::core
