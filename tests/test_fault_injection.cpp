// Fault injection against the signal-level platform: a rogue process
// drives illegal values onto the wires mid-run and the protocol checkers
// (§3.5 property family) must flag them — proving the assertions would
// catch a broken master/arbiter integration, which is exactly what the
// paper says they are for.

#include <gtest/gtest.h>

#include "assertions/bus_checker.hpp"
#include "assertions/violation.hpp"
#include "rtl/signals.hpp"
#include "sim/clock.hpp"
#include "sim/event_kernel.hpp"

namespace {

using namespace ahbp;
using namespace ahbp::rtl;

/// Minimal signal-level testbench: a clock, the shared wires, a scripted
/// "rogue driver" process, and the checker observing like the fabric does.
struct Bench {
  sim::EventKernel kernel;
  sim::Clock clock{kernel, "clk", 2};
  SharedWires sh{kernel, 2, 4};
  MasterWires m0{kernel, 0};
  chk::ViolationLog log;
  chk::BusChecker checker{chk::CheckerConfig{2, 4, true}, log};
  sim::Cycle cycle = 0;
  std::function<void(sim::Cycle)> script;
  sim::Process drive{kernel, "rogue", [this] {
                       ++cycle;
                       if (script) {
                         script(cycle);
                       }
                     }};
  sim::Process observe{kernel, "observe", [this] {
                         chk::BusCycleView v;
                         v.cycle = cycle;
                         if (m0.hbusreq.read()) {
                           v.request_mask |= 1;
                         }
                         v.hmaster = sh.hmaster.read();
                         v.htrans = unpack_trans(sh.htrans.read());
                         v.haddr = sh.haddr.read();
                         v.hburst = unpack_burst(sh.hburst.read());
                         v.hsize = unpack_size(sh.hsize.read());
                         v.hwrite = unpack_dir(sh.hwrite.read());
                         v.hready = sh.hready.read();
                         v.wbuf_occupancy = sh.wbuf_occupancy.read();
                         checker.on_cycle(v);
                       }};

  Bench() {
    clock.signal().subscribe(drive, sim::Edge::kPos);
    clock.signal().subscribe(observe, sim::Edge::kPos);
  }

  void run(sim::Cycle cycles) { kernel.run_until(kernel.now() + cycles * 2); }

  void drive_beat(ahb::Trans tr, ahb::Addr addr, ahb::Burst b,
                  ahb::Size size = ahb::Size::kWord) {
    sh.hmaster.write(0);
    sh.htrans.write(pack(tr));
    sh.haddr.write(addr);
    sh.hburst.write(pack(b));
    sh.hsize.write(pack(size));
    sh.hready.write(true);
  }
};

TEST(FaultInjection, RogueGrantWithoutRequestCaught) {
  Bench b;
  b.script = [&](sim::Cycle c) {
    if (c == 3) {
      // hmaster points at master 0 which never requested.
      b.drive_beat(ahb::Trans::kNonSeq, 0x100, ahb::Burst::kSingle);
    }
  };
  b.run(6);
  EXPECT_GE(b.log.count_rule("ahb.grant-implies-request"), 1u);
}

TEST(FaultInjection, AddressSkippedMidBurstCaught) {
  Bench b;
  b.script = [&](sim::Cycle c) {
    if (c == 2) {
      b.m0.hbusreq.write(true);
    }
    if (c == 3) {
      b.drive_beat(ahb::Trans::kNonSeq, 0x100, ahb::Burst::kIncr4);
    }
    if (c == 4) {
      b.drive_beat(ahb::Trans::kSeq, 0x10C, ahb::Burst::kIncr4);  // skip 0x104
    }
  };
  b.run(8);
  EXPECT_GE(b.log.count_rule("ahb.seq-addr"), 1u);
}

TEST(FaultInjection, AddressChangedDuringStallCaught) {
  Bench b;
  b.script = [&](sim::Cycle c) {
    if (c == 2) {
      b.m0.hbusreq.write(true);
    }
    if (c == 3) {
      b.drive_beat(ahb::Trans::kNonSeq, 0x100, ahb::Burst::kIncr4);
      b.sh.hready.write(false);  // stall the first beat
    }
    if (c == 4) {
      // Illegally move the address while stalled.
      b.drive_beat(ahb::Trans::kNonSeq, 0x200, ahb::Burst::kIncr4);
    }
  };
  b.run(8);
  EXPECT_GE(b.log.count_rule("ahb.stable-when-stalled"), 1u);
}

TEST(FaultInjection, TruncatedFixedBurstCaught) {
  Bench b;
  b.script = [&](sim::Cycle c) {
    if (c == 2) {
      b.m0.hbusreq.write(true);
    }
    if (c == 3) {
      b.drive_beat(ahb::Trans::kNonSeq, 0x100, ahb::Burst::kIncr8);
    }
    if (c == 4) {
      b.drive_beat(ahb::Trans::kSeq, 0x104, ahb::Burst::kIncr8);
    }
    if (c == 5) {
      // Abandon the burst after 2 of 8 beats.
      b.drive_beat(ahb::Trans::kNonSeq, 0x800, ahb::Burst::kSingle);
    }
  };
  b.run(8);
  EXPECT_GE(b.log.count_rule("ahb.burst-len"), 1u);
}

TEST(FaultInjection, MisalignedAndBoundaryCrossingCaught) {
  Bench b;
  b.script = [&](sim::Cycle c) {
    if (c == 2) {
      b.m0.hbusreq.write(true);
    }
    if (c == 3) {
      b.drive_beat(ahb::Trans::kNonSeq, 0x3D2, ahb::Burst::kIncr16);
    }
  };
  b.run(5);
  EXPECT_GE(b.log.count_rule("ahb.align"), 1u);
  EXPECT_GE(b.log.count_rule("ahb.1kb"), 1u);
}

TEST(FaultInjection, BufferOverflowReportCaught) {
  Bench b;
  b.script = [&](sim::Cycle c) {
    if (c == 3) {
      b.sh.wbuf_occupancy.write(9);  // depth is 4
    }
  };
  b.run(6);
  EXPECT_GE(b.log.count_rule("ahbp.wbuf-depth"), 1u);
}

TEST(FaultInjection, CleanDriverStaysClean) {
  Bench b;
  b.script = [&](sim::Cycle c) {
    if (c == 2) {
      b.m0.hbusreq.write(true);
    }
    if (c == 3) {
      b.drive_beat(ahb::Trans::kNonSeq, 0x100, ahb::Burst::kIncr4);
    }
    if (c >= 4 && c <= 6) {
      b.drive_beat(ahb::Trans::kSeq, 0x100 + 4 * (c - 3), ahb::Burst::kIncr4);
    }
    if (c == 7) {
      b.sh.htrans.write(pack(ahb::Trans::kIdle));
    }
  };
  b.run(10);
  EXPECT_EQ(b.log.count(), 0u) << b.log.to_string();
}

}  // namespace
