#include "sweep/analyze.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "scenario/lexer.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"
#include "traffic/generator.hpp"

namespace ahbp::sweep {

namespace {

using core::PlatformConfig;

void add(LintReport& r, LintSeverity sev, std::string check,
         std::string where, std::string message) {
  r.findings.push_back(
      {sev, std::move(check), std::move(where), std::move(message)});
}

// ------------------------------------------------------------ per-config --

/// Demand summary of one master's expanded script.
struct ScriptDemand {
  std::uint64_t gaps = 0;   ///< total think-time cycles
  std::uint64_t beats = 0;  ///< total bus beats (>= 1 bus cycle each)
  std::uint64_t bytes = 0;
  std::set<std::uint32_t> channels;  ///< memory channels the addresses hit
};

ScriptDemand summarize(const traffic::Script& script,
                       const PlatformConfig& cfg) {
  ScriptDemand d;
  for (const traffic::TrafficItem& it : script) {
    d.gaps += it.gap;
    d.beats += it.txn.beats;
    d.bytes += it.txn.bytes();
    if (it.txn.addr >= cfg.ddr_base) {
      d.channels.insert(cfg.interleave.channel_of(it.txn.addr - cfg.ddr_base));
    }
  }
  return d;
}

void check_config(LintReport& r, const PlatformConfig& cfg,
                  const std::string& where) {
  // Whole-config invariants (aperture vs capacity x channels, stripe
  // divisibility, channel-override ranges) — the analyzer surfaces the
  // same errors `run` would, but before any cycles are spent.
  try {
    scenario::validate(cfg);
  } catch (const scenario::ScenarioError& e) {
    add(r, LintSeverity::kError, "config/validate", where, e.what());
    return;  // later checks assume a coherent config
  }

  // Expand the stimulus exactly as both models would: synthetic patterns
  // through the generator, traces parsed and validated against the bus
  // width and the DDR aperture.  This is the trace pre-validation pass.
  std::vector<traffic::Script> scripts;
  try {
    scripts = core::expand_stimulus(cfg);
  } catch (const std::exception& e) {
    add(r, LintSeverity::kError, "stimulus/expand", where, e.what());
    return;
  }

  // Feasibility: per master, gaps + beats is a provable lower bound on its
  // completion cycle (every beat occupies the bus for >= 1 cycle and gaps
  // are serial with its own transfers); beats summed over masters bound
  // the one shared bus.
  std::uint64_t slowest_master = 0;
  std::uint64_t total_beats = 0;
  std::uint64_t total_bytes = 0;
  std::vector<ScriptDemand> demands;
  demands.reserve(scripts.size());
  for (const traffic::Script& s : scripts) {
    demands.push_back(summarize(s, cfg));
    const ScriptDemand& d = demands.back();
    slowest_master = std::max(slowest_master, d.gaps + d.beats);
    total_beats += d.beats;
    total_bytes += d.bytes;
  }
  const std::uint64_t lower_bound = std::max(slowest_master, total_beats);
  const std::uint64_t budget = cfg.max_cycles;
  if (lower_bound > budget) {
    add(r, LintSeverity::kError, "timeout/provable", where,
        "workload cannot finish: completion needs at least " +
            std::to_string(lower_bound) + " cycles (" +
            std::to_string(total_beats) + " bus beats across " +
            std::to_string(scripts.size()) +
            " masters, slowest master needs " +
            std::to_string(slowest_master) +
            " including think time) but max_cycles = " +
            std::to_string(budget));
  } else if (budget > 0 && lower_bound > budget - budget / 5) {
    add(r, LintSeverity::kWarning, "timeout/estimate", where,
        "completion lower bound " + std::to_string(lower_bound) +
            " cycles is within 20% of max_cycles = " +
            std::to_string(budget) +
            " — arbitration and DDR latency sit on top of this bound, so"
            " the run is likely to hit the cycle limit unfinished");
  }

  // Bandwidth: offered bytes against the bus's peak transfer rate.
  const std::uint64_t peak_bytes =
      static_cast<std::uint64_t>(cfg.bus.data_width_bytes) * budget;
  if (peak_bytes > 0 && total_bytes > peak_bytes) {
    add(r, LintSeverity::kError, "bandwidth/oversubscribed", where,
        "masters offer " + std::to_string(total_bytes) +
            " bytes but the bus peaks at " +
            std::to_string(cfg.bus.data_width_bytes) +
            " bytes/cycle x max_cycles = " + std::to_string(peak_bytes) +
            " bytes — the workload cannot drain");
  } else if (peak_bytes > 0 && total_bytes * 100 > peak_bytes * 85) {
    add(r, LintSeverity::kWarning, "bandwidth/estimate", where,
        "offered traffic (" + std::to_string(total_bytes) +
            " bytes) uses over 85% of the bus's peak capacity (" +
            std::to_string(peak_bytes) +
            " bytes at " + std::to_string(cfg.bus.data_width_bytes) +
            " bytes/cycle) — DDR stalls make sustained rates well below"
            " peak");
  }

  // Channel balance: a master whose addresses land on a strict subset of a
  // multi-channel memory serializes behind that subset.
  if (cfg.interleave.channels > 1) {
    for (std::size_t m = 0; m < demands.size(); ++m) {
      const ScriptDemand& d = demands[m];
      if (!d.channels.empty() && d.channels.size() < cfg.interleave.channels) {
        add(r, LintSeverity::kWarning, "channels/unbalanced",
            where.empty() ? "master " + std::to_string(m)
                          : where + ", master " + std::to_string(m),
            "addresses touch only " + std::to_string(d.channels.size()) +
                " of " + std::to_string(cfg.interleave.channels) +
                " memory channels (window base/span vs the " +
                std::to_string(cfg.interleave.stripe_bytes) +
                "-byte stripe) — widen the window or coarsen the stripe"
                " for balanced channel load");
      }
    }
  }

  // Checkpoint liveness.
  if (cfg.checkpoint.at_cycle > 0 && cfg.checkpoint.path.empty()) {
    add(r, LintSeverity::kWarning, "checkpoint/partial", where,
        "[checkpoint] sets at_cycle = " +
            std::to_string(cfg.checkpoint.at_cycle) +
            " but no path — no snapshot will be written");
  } else if (cfg.checkpoint.at_cycle == 0 && !cfg.checkpoint.path.empty()) {
    add(r, LintSeverity::kWarning, "checkpoint/partial", where,
        "[checkpoint] sets a path but at_cycle = 0 — no snapshot will be"
        " written");
  } else if (cfg.checkpoint.enabled() &&
             cfg.checkpoint.at_cycle >= cfg.max_cycles) {
    add(r, LintSeverity::kWarning, "checkpoint/dead", where,
        "checkpoint at_cycle = " + std::to_string(cfg.checkpoint.at_cycle) +
            " is not before max_cycles = " + std::to_string(cfg.max_cycles) +
            " — the run ends before the snapshot point");
  }
}

// -------------------------------------------------------------- per-spec --

/// Dotted keys that change the expanded stimulus: a warm-up-forked point
/// whose value differs from the warm base diverges from the captured
/// prefix, and the runner demotes it to a cold run (sweep/runner.hpp).
bool is_stimulus_axis(std::string_view key) {
  if (key == "bus.data_width_bytes") {
    return true;  // beat width reshapes every synthetic script
  }
  const std::size_t dot = key.find('.');
  if (dot == std::string_view::npos ||
      key.substr(0, 6) != "master") {
    return false;
  }
  const std::string_view field = key.substr(dot + 1);
  for (const std::string_view f :
       {"seed", "items", "pattern", "trace", "base", "span", "read_ratio",
        "period", "mean_gap", "dma_burst_beats"}) {
    if (field == f) {
      return true;
    }
  }
  return false;
}

/// Dotted keys that change the platform's structure (component counts,
/// memory geometry): snapshots of the warm base cannot restore into them
/// at all, so a warm-up-forked sweep rejects these axes outright.
bool is_structural_axis(std::string_view key) {
  const std::size_t dot = key.find('.');
  if (dot == std::string_view::npos) {
    return false;
  }
  const std::string_view section = key.substr(0, dot);
  const std::string_view field = key.substr(dot + 1);
  if (section == "ddr" || section.substr(0, 7) == "channel") {
    for (const std::string_view f : {"channels", "stripe_bytes", "banks",
                                     "rows", "cols", "col_bytes"}) {
      if (field == f) {
        return true;
      }
    }
  }
  return false;
}

void check_axes(LintReport& r, const SweepSpec& spec,
                const LintOptions& opts) {
  std::map<std::string, std::size_t> first_axis;  // key -> axis index
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    const Axis& ax = spec.axes[a];
    const std::string where = "axis " + ax.key;

    const auto [it, inserted] = first_axis.emplace(ax.key, a);
    if (!inserted) {
      add(r, LintSeverity::kError, "axes/duplicate-key", where,
          "key is already swept by axis " + std::to_string(it->second + 1) +
              " — the later axis silently overwrites the earlier one in"
              " every point");
    }

    std::set<std::string> seen;
    for (const std::string& v : ax.values) {
      if (!seen.insert(v).second) {
        add(r, LintSeverity::kWarning, "axes/duplicate-value", where,
            "value '" + v +
                "' appears more than once — duplicate points simulate the"
                " same configuration twice");
      }
    }
    if (ax.values.size() == 1) {
      add(r, LintSeverity::kNote, "axes/constant", where,
          "single-value axis — fold '" + ax.key + " = " + ax.values[0] +
              "' into the scenario sections instead of the cross product");
    }

    if (opts.warmup_cycles > 0) {
      if (is_structural_axis(ax.key)) {
        add(r, LintSeverity::kError, "warmup/structural-axis", where,
            "axis changes the memory structure — a warm-up snapshot cannot"
            " restore into a different geometry, so 'sweep --warmup-cycles'"
            " rejects this sweep; drop the axis or run without warm-up"
            " forking");
      } else if (is_stimulus_axis(ax.key)) {
        add(r, LintSeverity::kWarning, "warmup/stimulus-axis", where,
            "axis changes the stimulus — points whose scripts diverge from"
            " the warm base within the first " +
                std::to_string(opts.warmup_cycles) +
                " warm-up cycles are demoted to cold runs (flagged in the"
                " per-point CSV), forfeiting the fork speedup");
      }
    }
  }

  if (opts.warmup_cycles > 0 &&
      opts.warmup_cycles >= spec.base_config.max_cycles) {
    add(r, LintSeverity::kError, "warmup/exceeds-max", "",
        "--warmup-cycles " + std::to_string(opts.warmup_cycles) +
            " is not below max_cycles = " +
            std::to_string(spec.base_config.max_cycles) +
            " — every point would end inside the warm-up");
  }
}

}  // namespace

std::string_view to_string(LintSeverity s) {
  switch (s) {
    case LintSeverity::kError: return "error";
    case LintSeverity::kWarning: return "warning";
    case LintSeverity::kNote: return "note";
  }
  return "unknown";
}

std::size_t LintReport::count(LintSeverity s) const noexcept {
  std::size_t n = 0;
  for (const LintFinding& f : findings) {
    n += f.severity == s ? 1 : 0;
  }
  return n;
}

LintReport lint_config(const core::PlatformConfig& cfg,
                       const LintOptions& opts) {
  LintReport r;
  check_config(r, cfg, "");
  if (opts.warmup_cycles > 0 && opts.warmup_cycles >= cfg.max_cycles) {
    add(r, LintSeverity::kError, "warmup/exceeds-max", "",
        "--warmup-cycles " + std::to_string(opts.warmup_cycles) +
            " is not below max_cycles = " + std::to_string(cfg.max_cycles));
  }
  return r;
}

LintReport lint_spec(const SweepSpec& spec, const LintOptions& opts) {
  LintReport r;
  r.is_sweep = true;
  r.points = spec.points();
  r.points_checked = 0;

  check_axes(r, spec, opts);

  // Per-point expansion, replicated from sweep::expand so one bad axis
  // combination is attributed to its point instead of aborting the whole
  // expansion at the first invalid configuration.
  std::vector<std::size_t> stride(spec.axes.size(), 1);
  for (std::size_t a = spec.axes.size(); a-- > 1;) {
    stride[a - 1] = stride[a] * spec.axes[a].values.size();
  }
  const std::size_t deep = std::min(r.points, opts.max_points);
  for (std::size_t i = 0; i < deep; ++i) {
    PlatformConfig cfg = spec.base_config;
    std::string label;
    bool applied = true;
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      const Axis& ax = spec.axes[a];
      const std::string& v = ax.values[(i / stride[a]) % ax.values.size()];
      if (!label.empty()) {
        label += ' ';
      }
      label += ax.key + "=" + v;
      try {
        scenario::apply_key(cfg, ax.key, v);
      } catch (const scenario::ScenarioError& e) {
        add(r, LintSeverity::kError, "point/apply",
            "point " + std::to_string(i) + " (" + label + ")", e.what());
        applied = false;
        break;
      }
    }
    if (applied) {
      const std::string where =
          "point " + std::to_string(i) + " (" +
          (label.empty() ? std::string("base") : label) + ")";
      check_config(r, cfg, where);
    }
    ++r.points_checked;
  }
  if (deep < r.points) {
    add(r, LintSeverity::kNote, "points/truncated", "",
        "deep-checked the first " + std::to_string(deep) + " of " +
            std::to_string(r.points) +
            " points (raise LintOptions::max_points to cover more)");
  }
  return r;
}

LintReport lint_text(std::string_view text, const LintOptions& opts) {
  // Sweep detection mirrors what distinguishes the formats: a [sweep]
  // section or a top-level `base =` line (both illegal in scenarios; a
  // `base` key *inside* a section is a master's address window, so only
  // the pre-section occurrence counts).
  bool is_sweep = false;
  try {
    bool in_section = false;
    scenario::lex::for_each_line(text, [&](const scenario::lex::Line& l) {
      if (l.kind == scenario::lex::Line::Kind::kSection) {
        in_section = true;
        if (l.section == "sweep") {
          is_sweep = true;
        }
      } else if (!in_section && l.key == "base") {
        is_sweep = true;
      }
    });
  } catch (const scenario::ScenarioError&) {
    // Lexical problems fall through to the parser below for a message
    // with line context.
  }

  LintReport r;
  if (is_sweep) {
    try {
      const SweepSpec spec = parse_spec(text);
      return lint_spec(spec, opts);
    } catch (const scenario::ScenarioError& e) {
      r.is_sweep = true;
      r.points = 0;
      r.points_checked = 0;
      add(r, LintSeverity::kError, "sweep/parse", "", e.what());
      return r;
    }
  }
  try {
    const core::PlatformConfig cfg = scenario::parse(text);
    return lint_config(cfg, opts);
  } catch (const scenario::ScenarioError& e) {
    add(r, LintSeverity::kError, "scenario/parse", "", e.what());
    return r;
  }
}

LintReport lint_ref(const std::string& ref, const LintOptions& opts) {
  if (scenario::ScenarioRegistry::builtin().find(ref) != nullptr) {
    return lint_config(scenario::ScenarioRegistry::builtin().build(ref),
                       opts);
  }
  std::ifstream in(ref);
  if (!in) {
    LintReport r;
    add(r, LintSeverity::kError, "input/unreadable", "",
        "'" + ref +
            "' is neither a built-in preset nor a readable scenario/sweep"
            " file");
    return r;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return lint_text(ss.str(), opts);
}

void write_report(std::ostream& os, const LintReport& r) {
  for (const LintFinding& f : r.findings) {
    os << to_string(f.severity) << ": [" << f.check << "]";
    if (!f.where.empty()) {
      os << " " << f.where << ":";
    }
    os << " " << f.message << "\n";
  }
  os << "lint: " << r.errors() << " error(s), " << r.warnings()
     << " warning(s), " << r.count(LintSeverity::kNote) << " note(s)";
  if (r.is_sweep) {
    os << " across " << r.points << " point(s)";
    if (r.points_checked < r.points) {
      os << " (" << r.points_checked << " deep-checked)";
    }
  }
  os << "\n";
}

// ------------------------------------------------------------ sensitivity --

double AxisSensitivity::relative_spread() const noexcept {
  if (max_spread == 0 || min_cycles == 0) {
    return 0.0;
  }
  return static_cast<double>(max_spread) / static_cast<double>(min_cycles);
}

std::vector<AxisSensitivity> sensitivity(
    const SweepSpec& spec, const std::vector<PointOutcome>& outcomes,
    bool use_rtl) {
  // Strides mirror expand(): first axis slowest.  For axis `a`, deleting
  // its digit from a point index yields the group id — two points share a
  // group exactly when every *other* axis agrees.
  std::vector<std::size_t> stride(spec.axes.size(), 1);
  for (std::size_t a = spec.axes.size(); a-- > 1;) {
    stride[a - 1] = stride[a] * spec.axes[a].values.size();
  }

  const auto cycles_of = [&](const PointOutcome& o, std::uint64_t& out) {
    if (!o.error.empty()) {
      return false;
    }
    if (use_rtl ? !o.has_rtl : !o.has_tlm) {
      return false;
    }
    out = use_rtl ? o.rtl.cycles : o.tlm.cycles;
    return true;
  };

  std::vector<AxisSensitivity> report;
  report.reserve(spec.axes.size());
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    const std::size_t size = spec.axes[a].values.size();
    AxisSensitivity s;
    s.key = spec.axes[a].key;
    s.values = size;
    const std::size_t group_count = outcomes.size() / std::max<std::size_t>(
                                                          size, 1);
    bool any_point = false;
    double spread_sum = 0.0;
    for (std::size_t g = 0; g < group_count; ++g) {
      // Re-insert axis `a`'s digit: high digits above it, low digits below.
      const std::size_t high = g / stride[a];
      const std::size_t low = g % stride[a];
      std::uint64_t gmin = 0, gmax = 0;
      std::size_t usable = 0;
      for (std::size_t v = 0; v < size; ++v) {
        const std::size_t i = (high * size + v) * stride[a] + low;
        std::uint64_t cycles = 0;
        if (i >= outcomes.size() || !cycles_of(outcomes[i], cycles)) {
          continue;
        }
        if (usable == 0) {
          gmin = gmax = cycles;
        } else {
          gmin = std::min(gmin, cycles);
          gmax = std::max(gmax, cycles);
        }
        ++usable;
        if (!any_point) {
          s.min_cycles = s.max_cycles = cycles;
          any_point = true;
        } else {
          s.min_cycles = std::min(s.min_cycles, cycles);
          s.max_cycles = std::max(s.max_cycles, cycles);
        }
      }
      if (usable >= 2) {
        const std::uint64_t spread = gmax - gmin;
        s.max_spread = std::max(s.max_spread, spread);
        spread_sum += static_cast<double>(spread);
        ++s.groups;
      }
    }
    if (s.groups > 0) {
      s.mean_spread = spread_sum / static_cast<double>(s.groups);
    }
    report.push_back(std::move(s));
  }

  // Most influential knob first; stable so equal spreads keep axis order.
  std::stable_sort(report.begin(), report.end(),
                   [](const AxisSensitivity& x, const AxisSensitivity& y) {
                     return x.max_spread > y.max_spread;
                   });
  return report;
}

stats::TextTable sensitivity_table(const std::vector<AxisSensitivity>& axes) {
  stats::TextTable t({"axis", "values", "groups", "min cycles", "max cycles",
                      "max spread", "mean spread", "impact"});
  for (const AxisSensitivity& s : axes) {
    t.add_row({s.key, std::to_string(s.values), std::to_string(s.groups),
               std::to_string(s.min_cycles), std::to_string(s.max_cycles),
               std::to_string(s.max_spread), stats::fmt_double(s.mean_spread, 1),
               stats::fmt_percent(s.relative_spread())});
  }
  return t;
}

}  // namespace ahbp::sweep
