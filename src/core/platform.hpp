#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ahb/config.hpp"
#include "ahb/qos.hpp"
#include "ddr/channels.hpp"
#include "ddr/geometry.hpp"
#include "ddr/interleave.hpp"
#include "ddr/timing.hpp"
#include "sim/time.hpp"
#include "stats/profiles.hpp"
#include "traffic/stimulus.hpp"

/// \file platform.hpp
/// Whole-platform assembly and run control — the public entry point of the
/// library.  One PlatformConfig describes a system (bus parameters, DDR
/// part, masters with their QoS registers and traffic); `run_tlm` executes
/// it on the transaction-level model, `run_rtl` on the pin-accurate
/// reference.  Both consume identical traffic scripts, which is what makes
/// the Table-1 accuracy comparison meaningful.

namespace ahbp::core {

/// One master: its QoS registers (§2) and its stimulus — a synthetic
/// traffic pattern or a recorded trace (traffic::StimulusSpec carries
/// both forms; the pattern fields stay accessible as `traffic.<field>`).
struct MasterSpec {
  ahb::QosConfig qos;
  traffic::StimulusSpec traffic;
};

/// Declarative checkpoint request (the scenario `[checkpoint]` section):
/// `ahbp_sim run` — and any other Platform driver that honours it — stops
/// at `at_cycle`, serializes the platform to `path`, then continues.
struct CheckpointSpec {
  sim::Cycle at_cycle = 0;  ///< 0 = no checkpoint
  std::string path;

  bool enabled() const noexcept { return at_cycle > 0 && !path.empty(); }
  bool operator==(const CheckpointSpec&) const = default;
};

/// Simulator tuning (the scenario `[sim]` section).  These knobs change how
/// fast the simulator runs, never what it computes: every setting is
/// required to produce bit-identical results to the defaults.
struct SimTuning {
  /// Temporal-decoupling quantum for the TLM model.  1 (default) = classic
  /// cycle-by-cycle stepping, bit-exact to the pre-quantum code path by
  /// construction.  >1 lets the platform leap provably-idle stretches of up
  /// to `quantum` cycles at a time, bulk-replaying the per-cycle
  /// bookkeeping (stats, checker views, QoS epochs) for the gap.
  sim::Cycle quantum = 1;
  /// Worker threads for stepping independent DDR channel engines in
  /// parallel (effective only when `ddr.channels >= 2`).  1 (default) =
  /// sequential.  Results are byte-identical regardless of the setting:
  /// engines are data-independent within a cycle and commands are merged
  /// on the calling thread in channel order.
  unsigned ddr_threads = 1;

  bool operator==(const SimTuning&) const = default;
};

struct PlatformConfig {
  ahb::BusConfig bus;
  /// Shared DDR part description; with `interleave.channels > 1` every
  /// channel starts from this and `ddr_channels[k]` layers its overrides.
  ddr::DdrTiming timing = ddr::ddr266();
  ddr::Geometry geom;
  /// Memory-side sharding: channel count + stripe granularity.  The
  /// default (1 channel) reproduces the single-controller platform
  /// bit-exactly in both models.
  ddr::Interleave interleave;
  /// Per-channel `channelK.*` overrides (may be shorter than the channel
  /// count; missing tails inherit timing/geom unchanged).
  std::vector<ddr::ChannelOverride> ddr_channels;
  ahb::Addr ddr_base = 0;
  std::vector<MasterSpec> masters;
  bool enable_checkers = true;
  sim::Cycle max_cycles = 4'000'000;
  /// Optional mid-run snapshot (scenario `[checkpoint]` section).
  CheckpointSpec checkpoint;
  /// Simulator speed knobs (scenario `[sim]` section); results are
  /// independent of these by contract.
  SimTuning sim;
};

/// Resolved per-channel DDR configuration (shared base + overrides).
std::vector<ddr::ChannelConfig> ddr_channel_configs(const PlatformConfig& cfg);

/// Byte size of the DDR aperture masters may address (from `ddr_base`):
/// channels x the smallest per-channel capacity — the interleave stripes
/// uniformly, so the smallest device bounds every channel-local address.
/// The one aperture formula shared by scenario validation (synthetic
/// windows) and stimulus expansion (trace addresses).
std::uint64_t ddr_aperture_bytes(const PlatformConfig& cfg);

/// Outcome of one simulation run.
struct SimResult {
  std::string model;           ///< "tlm" or "rtl"
  bool finished = false;       ///< workload drained before max_cycles
  sim::Cycle cycles = 0;       ///< cycle of the last master completion
  sim::Cycle ran_cycles = 0;   ///< total bus cycles simulated
  std::uint64_t completed = 0; ///< master transactions retired
  stats::RunProfile profile;
  std::size_t protocol_errors = 0;
  std::size_t qos_warnings = 0;
  std::string first_violations;  ///< rendered head of the violation log
  double wall_seconds = 0.0;     ///< host time spent simulating
  std::uint64_t kernel_activity = 0;  ///< evaluations (TLM) / deltas (RTL)
};

/// Load every trace-backed master's trace file into its
/// `StimulusSpec::trace_text` so the configuration is self-describing
/// (idempotent; synthetic masters untouched).  Platform construction does
/// this to its own copy — call it yourself when a config must survive the
/// trace files disappearing (checkpoints, sweep bases).
/// Throws std::runtime_error on unreadable trace files.
void resolve_stimulus(PlatformConfig& cfg);

/// Expand every master's stimulus into its deterministic script: synthetic
/// patterns through the generator (beat width forced to the configured bus
/// width), trace-backed masters by parsing their trace (resolving from
/// disk if needed) and validating every transaction against the bus width
/// and the DDR aperture.  Throws std::runtime_error on trace problems.
std::vector<traffic::Script> expand_stimulus(const PlatformConfig& cfg);

/// Run the transaction-level model.
SimResult run_tlm(const PlatformConfig& cfg);

/// Run the pin-accurate signal-level model.  When `vcd_out` is non-null the
/// architectural bus signals are dumped to it (GTKWave-viewable).
SimResult run_rtl(const PlatformConfig& cfg, std::ostream* vcd_out = nullptr);

/// Simulated kilo-cycles per wall-clock second (the paper's §4 metric).
double kcycles_per_sec(const SimResult& r);

/// Machine-readable dump of one SimResult: counters, profiles, per-master
/// stall attribution and violations-by-rule as a single JSON object (no
/// trailing newline — callers embed it in `{"runs": [...]}` wrappers).
void write_stats_json(std::ostream& os, const SimResult& r);

}  // namespace ahbp::core
