#pragma once

#include <cstdint>
#include <optional>

#include "ahb/types.hpp"
#include "ddr/interleave.hpp"

/// \file bi.hpp
/// The BI (Bus Interface) — the AHB+ side channel between arbiter and
/// memory controller (§2, §3.4): "transferring special information between
/// arbiter and memory controller such as the next transaction information,
/// idle bank, access permission and so on".
///
/// In the TLM the BI is a pair of plain records exchanged by method call
/// once per cycle; the signal-level model carries the same fields as a
/// signal bundle.  Keeping the record types here ensures both models
/// transport exactly the same information.

namespace ahbp::tlm {

/// Arbiter -> DDRC: the next transaction the arbiter has (tentatively)
/// selected, sent ahead of its address phase so the controller can
/// pre-charge / pre-activate the target bank (bank interleaving).
struct BiDownstream {
  /// Target of the upcoming txn: owning channel + device coordinates (the
  /// sharded DDR subsystem routes the hint to that channel's controller).
  std::optional<ddr::ChannelCoord> next_coord;
  bool next_is_write = false;
};

/// DDRC -> arbiter: bank status and admission control.
struct BiUpstream {
  std::uint32_t idle_bank_mask = 0;  ///< banks with no open row
  bool access_permitted = true;      ///< false while refresh must win
};

}  // namespace ahbp::tlm
