#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

/// \file snapshot.hpp
/// The uniform checkpoint/restore layer: a versioned, tagged binary format
/// and the `Snapshottable` contract every stateful component of both models
/// implements.
///
/// Design rules (these are what make restore-then-run provably cycle-exact
/// and keep the format debuggable when it is not):
///
///  * **Tagged, not positional.**  Every record carries a one-byte type tag
///    and sections carry their name; a reader that drifts out of sync with
///    the writer fails immediately with the offset and both tags instead of
///    silently reinterpreting bytes.
///  * **Versioned.**  The header stores a format version; mismatches are
///    rejected up front with a clear message (no attempt to migrate —
///    checkpoints are short-lived artifacts, not archives).
///  * **Checksummed.**  A CRC-32 of the payload trails the file, so
///    truncated or bit-flipped checkpoints are rejected before any
///    component sees partial state.
///  * **Canonical.**  Writers emit containers in a deterministic order
///    (e.g. sparse memory pages sorted by address), so
///    serialize -> restore -> serialize is byte-identical — the round-trip
///    property the tests pin down.
///
/// Configuration is *not* stored at this layer: a snapshot captures dynamic
/// state only and is restored into a platform freshly constructed from its
/// configuration.  Checkpoint *files* embed the serialized scenario next to
/// the platform payload (see core/checkpoint.hpp) so they are
/// self-describing.

namespace ahbp::state {

/// Snapshot format version.  Bump on any layout change; readers reject
/// other versions.  v2: checkpoint headers carry embedded trace-backed
/// stimulus (count + per-master trace text) after the scenario.  v3:
/// MasterProfile carries per-master stall-attribution counters.  v4:
/// ScriptSource records a content hash of its consumed script prefix, so a
/// warm-up fork whose stimulus diverges from the snapshotted run is
/// detected (ForkDivergence) instead of silently replaying inconsistent
/// state.  v5: the sweep-farm wire protocol (farm/protocol.hpp) rides the
/// same format — new `farm-msg` message envelope carrying hello / batch /
/// outcome / shutdown records between coordinator and workers.
inline constexpr std::uint32_t kFormatVersion = 5;

/// Any save/restore failure: malformed file, version mismatch, type or
/// section-tag mismatch, or a component-level incompatibility (e.g. a
/// snapshot taken with 4 masters restored into a 2-master platform).
class StateError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A restore that is *structurally* legal but whose stimulus history
/// differs from the snapshotted run: the platform shape matches, yet the
/// transactions the snapshot already issued are not the ones this
/// configuration would have issued (e.g. a sweep axis changed a master's
/// seed or pattern).  Recoverable by running the configuration cold —
/// sweep::SweepRunner catches exactly this type to demote such points
/// instead of failing them, while genuine structural mismatches stay
/// fatal StateErrors.
class ForkDivergence : public StateError {
 public:
  using StateError::StateError;
};

/// Serializer for the tagged binary format.  Typed `put` overloads append
/// records; `begin(tag)` / `end()` bracket named sections.  `finish()`
/// seals header + payload + CRC into the final byte vector.
class StateWriter {
 public:
  StateWriter() = default;

  void begin(std::string_view tag);
  void end();

  void put_bool(bool v);
  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  void put_f64(double v);
  void put_str(std::string_view v);
  void put_blob(const void* data, std::size_t bytes);

  /// Seal the stream: returns magic + version + payload + CRC-32.
  /// The writer must be balanced (every begin() matched by an end()).
  std::vector<std::uint8_t> finish() const;

  /// finish() straight to a file.  Throws StateError on I/O failure.
  void write_file(const std::string& path) const;

 private:
  void tag_byte(std::uint8_t t) { payload_.push_back(t); }
  void raw_u32(std::uint32_t v);
  void raw_u64(std::uint64_t v);

  std::vector<std::uint8_t> payload_;
  unsigned depth_ = 0;
};

/// Deserializer.  Validates magic/version/CRC on construction, then reads
/// must mirror the writes exactly; any divergence throws StateError with
/// the payload offset and the expected/found tags.
class StateReader {
 public:
  /// Owning: takes the whole file image.
  explicit StateReader(std::vector<std::uint8_t> bytes);

  /// Non-owning view (e.g. one warm-up snapshot shared by many sweep
  /// workers).  `data` must outlive the reader.
  StateReader(const std::uint8_t* data, std::size_t size);

  /// Load + validate a checkpoint file.  Throws StateError (unreadable,
  /// truncated, corrupted, wrong magic/version).
  static StateReader from_file(const std::string& path);

  // Copying an owning reader would leave the copy's cursor pointing into
  // the source's buffer; moves keep the buffer alive and are fine.
  StateReader(const StateReader&) = delete;
  StateReader& operator=(const StateReader&) = delete;
  StateReader(StateReader&&) = default;
  StateReader& operator=(StateReader&&) = default;

  void enter(std::string_view tag);
  void leave();

  bool get_bool();
  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();

  /// Read a container length, bounded by the remaining payload (each
  /// element still owes at least `min_bytes_per_item` bytes — 2 is the
  /// smallest record, a tagged bool).  A CRC-valid but crafted length
  /// fails fast with a StateError instead of a multi-exabyte allocation.
  std::uint64_t get_count(std::uint64_t min_bytes_per_item = 2);
  std::int64_t get_i64();
  double get_f64();
  std::string get_str();
  std::vector<std::uint8_t> get_blob();

  /// All payload consumed and all sections left.
  bool at_end() const noexcept;

  /// Throw unless at_end() — callers use this to reject trailing garbage.
  void expect_end() const;

 private:
  void validate_header();
  std::uint8_t take_tag(std::uint8_t expected, const char* what);
  const std::uint8_t* take(std::size_t n, const char* what);
  std::uint32_t raw_u32(const char* what);
  std::uint64_t raw_u64(const char* what);
  [[noreturn]] void fail(const std::string& msg) const;

  std::vector<std::uint8_t> owned_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;      ///< payload size (header/CRC stripped)
  std::size_t pos_ = 0;       ///< cursor within the payload
  unsigned depth_ = 0;
};

/// The contract an audited stateful component honours: `save_state` writes
/// every cross-cycle member (and nothing configuration-derived);
/// `restore_state` reads them back in the same order into an instance
/// freshly constructed from the same structural configuration.  The
/// component is responsible for opening a named section so drift is caught
/// by tag, not by corruption downstream.
class Snapshottable {
 public:
  virtual ~Snapshottable() = default;
  virtual void save_state(StateWriter& w) const = 0;
  virtual void restore_state(StateReader& r) = 0;
};

/// Structural guard shared by components with optional sub-state (e.g.
/// protocol checkers): the snapshot and the restore target must agree on
/// whether `what` exists, or the stream cannot line up.  Throws StateError
/// naming the component and both sides.
void expect_presence_match(bool snapshot_has, bool platform_has,
                           std::string_view what);

/// CRC-32 (IEEE, reflected) over a byte range — exposed for tests.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

}  // namespace ahbp::state
