// Static scenario/sweep analysis (`ahbp_sim lint`, src/sweep/analyze) —
// each check must trigger on a config engineered to violate it and stay
// quiet on the shipping presets.  Findings, not exceptions: a lint that
// aborts on the first problem hides the rest of them.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <string_view>

#include "sweep/analyze.hpp"

namespace {

using ahbp::sweep::LintOptions;
using ahbp::sweep::LintReport;
using ahbp::sweep::LintSeverity;

std::size_t count_check(const LintReport& r, std::string_view check) {
  std::size_t n = 0;
  for (const auto& f : r.findings) {
    n += f.check == check ? 1u : 0u;
  }
  return n;
}

const ahbp::sweep::LintFinding* find_check(const LintReport& r,
                                           std::string_view check) {
  for (const auto& f : r.findings) {
    if (f.check == check) {
      return &f;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Reference resolution

TEST(ScenarioLint, BuiltinPresetIsClean) {
  const LintReport r = ahbp::sweep::lint_ref("table1/cpu-1");
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.is_sweep);
  EXPECT_EQ(r.points, 1u);
}

TEST(ScenarioLint, UnresolvableRefIsAnError) {
  const LintReport r = ahbp::sweep::lint_ref("no/such/preset-or-file");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(count_check(r, "input/unreadable"), 1u);
}

// ---------------------------------------------------------------------------
// Whole-config checks

TEST(ScenarioLint, ProvablyInfeasibleBudgetIsAnError) {
  const LintReport r = ahbp::sweep::lint_text(
      "[platform]\n"
      "max_cycles = 100\n"
      "\n"
      "[master 0]\n"
      "pattern = dma\n"
      "items = 1000\n");
  EXPECT_FALSE(r.ok());
  EXPECT_GE(count_check(r, "timeout/provable"), 1u);
  EXPECT_GE(count_check(r, "bandwidth/oversubscribed"), 1u);
}

TEST(ScenarioLint, UnknownKeyIsAParseFinding) {
  const LintReport r = ahbp::sweep::lint_text(
      "[bus]\n"
      "widgets = 4\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(count_check(r, "scenario/parse"), 1u);
}

TEST(ScenarioLint, DeadCheckpointIsAWarningOnly) {
  const LintReport r = ahbp::sweep::lint_text(
      "[platform]\n"
      "max_cycles = 100000\n"
      "\n"
      "[checkpoint]\n"
      "at_cycle = 200000\n"
      "path = never_written.ckpt\n"
      "\n"
      "[master 0]\n"
      "pattern = cpu\n"
      "items = 100\n");
  EXPECT_TRUE(r.ok());  // warnings do not fail a plain lint
  EXPECT_EQ(count_check(r, "checkpoint/dead"), 1u);
}

TEST(ScenarioLint, NarrowWindowOnMultiChannelMemoryWarns) {
  const LintReport r = ahbp::sweep::lint_text(
      "[platform]\n"
      "max_cycles = 200000\n"
      "\n"
      "[ddr]\n"
      "channels = 2\n"
      "interleave_bytes = 1024\n"
      "\n"
      "[master 0]\n"
      "pattern = cpu\n"
      "items = 200\n"
      "base = 0x0\n"
      "span = 0x400\n"
      "\n"
      "[master 1]\n"
      "pattern = random\n"
      "items = 200\n"
      "base = 0x0\n"
      "span = 0x100000\n");
  EXPECT_TRUE(r.ok());
  ASSERT_GE(count_check(r, "channels/unbalanced"), 1u);
  EXPECT_EQ(find_check(r, "channels/unbalanced")->where, "master 0");
}

// ---------------------------------------------------------------------------
// Sweep auto-detection

TEST(ScenarioLint, TopLevelBaseMakesItASweep) {
  const LintReport r = ahbp::sweep::lint_text(
      "base = table1/cpu-1\n"
      "\n"
      "[sweep]\n"
      "bus.write_buffer_depth = 0, 4\n");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.is_sweep);
  EXPECT_EQ(r.points, 2u);
  EXPECT_EQ(r.points_checked, 2u);
}

TEST(ScenarioLint, MasterWindowBaseKeyIsNotASweep) {
  // `base =` inside [master N] is an address window, not a sweep header —
  // regression for the auto-detector counting any `base` key.
  const LintReport r = ahbp::sweep::lint_text(
      "[platform]\n"
      "max_cycles = 200000\n"
      "\n"
      "[master 0]\n"
      "pattern = cpu\n"
      "items = 100\n"
      "base = 0x0\n"
      "span = 0x100000\n");
  EXPECT_FALSE(r.is_sweep);
  EXPECT_TRUE(r.ok());
}

// ---------------------------------------------------------------------------
// Axis hygiene

TEST(ScenarioLint, DuplicateAxisKeyIsAnError) {
  const LintReport r = ahbp::sweep::lint_text(
      "base = table1/cpu-1\n"
      "\n"
      "[sweep]\n"
      "bus.write_buffer_depth = 0, 4\n"
      "bus.write_buffer_depth = 2, 8\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(count_check(r, "axes/duplicate-key"), 1u);
}

TEST(ScenarioLint, DuplicateValueAndConstantAxisAreSoftFindings) {
  const LintReport r = ahbp::sweep::lint_text(
      "base = table1/cpu-1\n"
      "\n"
      "[sweep]\n"
      "bus.write_buffer_depth = 4, 4\n"
      "bus.request_pipelining = on\n");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(count_check(r, "axes/duplicate-value"), 1u);
  EXPECT_EQ(count_check(r, "axes/constant"), 1u);
}

TEST(ScenarioLint, BadAxisValueIsAttributedToItsPoint) {
  const LintReport r = ahbp::sweep::lint_text(
      "base = table1/cpu-1\n"
      "\n"
      "[sweep]\n"
      "bus.write_buffer_depth = 4, banana\n");
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(count_check(r, "point/apply"), 1u);
  // Point 0 (depth=4) is fine; point 1 carries the bad value.
  EXPECT_NE(find_check(r, "point/apply")->where.find("point 1"),
            std::string::npos);
}

TEST(ScenarioLint, DeepCheckTruncationIsAnnounced) {
  LintOptions opts;
  opts.max_points = 2;
  const LintReport r = ahbp::sweep::lint_text(
      "base = table1/cpu-1\n"
      "\n"
      "[sweep]\n"
      "bus.write_buffer_depth = 0, 1, 2, 4\n",
      opts);
  EXPECT_EQ(r.points, 4u);
  EXPECT_EQ(r.points_checked, 2u);
  EXPECT_EQ(count_check(r, "points/truncated"), 1u);
  EXPECT_TRUE(r.ok());  // a note, not an error
}

// ---------------------------------------------------------------------------
// Warm-up fork hazards (--warmup-cycles)

TEST(ScenarioLint, StimulusAxisUnderWarmupWarns) {
  LintOptions opts;
  opts.warmup_cycles = 1000;
  const LintReport r = ahbp::sweep::lint_text(
      "base = table1/cpu-1\n"
      "\n"
      "[sweep]\n"
      "master0.seed = 1, 2\n",
      opts);
  EXPECT_TRUE(r.ok());  // demotion is a performance hazard, not corruption
  EXPECT_EQ(count_check(r, "warmup/stimulus-axis"), 1u);
}

TEST(ScenarioLint, StructuralAxisUnderWarmupIsAnError) {
  LintOptions opts;
  opts.warmup_cycles = 1000;
  const LintReport r = ahbp::sweep::lint_text(
      "base = table1/cpu-1\n"
      "\n"
      "[sweep]\n"
      "ddr.banks = 2, 4, 8\n",
      opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(count_check(r, "warmup/structural-axis"), 1u);
}

TEST(ScenarioLint, SameAxesWithoutWarmupAreQuiet) {
  const LintReport r = ahbp::sweep::lint_text(
      "base = table1/cpu-1\n"
      "\n"
      "[sweep]\n"
      "master0.seed = 1, 2\n");
  EXPECT_EQ(count_check(r, "warmup/stimulus-axis"), 0u);
  EXPECT_EQ(count_check(r, "warmup/structural-axis"), 0u);
}

TEST(ScenarioLint, WarmupBeyondBudgetIsAnError) {
  LintOptions opts;
  opts.warmup_cycles = 100;
  const LintReport r = ahbp::sweep::lint_text(
      "[platform]\n"
      "max_cycles = 100\n"
      "\n"
      "[master 0]\n"
      "pattern = cpu\n"
      "items = 1\n",
      opts);
  EXPECT_EQ(count_check(r, "warmup/exceeds-max"), 1u);
}

// ---------------------------------------------------------------------------
// Report rendering

TEST(ScenarioLint, ReportListsFindingsAndSummary) {
  const LintReport r = ahbp::sweep::lint_text(
      "base = table1/cpu-1\n"
      "\n"
      "[sweep]\n"
      "bus.write_buffer_depth = 0, 4\n"
      "bus.write_buffer_depth = 2, 8\n");
  std::ostringstream os;
  ahbp::sweep::write_report(os, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("error"), std::string::npos);
  EXPECT_NE(out.find("axes/duplicate-key"), std::string::npos);
}

}  // namespace
