// The AHB+ QoS register file (§2): programming, budget epochs, slack.

#include <gtest/gtest.h>

#include "ahb/qos.hpp"

namespace {

using namespace ahbp::ahb;

TEST(QosRegs, ProgramAndReadBack) {
  QosRegisterFile q(3);
  q.program(1, QosConfig{MasterClass::kRealTime, 40});
  EXPECT_EQ(q.config(1).cls, MasterClass::kRealTime);
  EXPECT_EQ(q.config(1).objective, 40u);
  EXPECT_EQ(q.config(0).cls, MasterClass::kNonRealTime);
  EXPECT_EQ(q.masters(), 3u);
}

TEST(QosRegs, OutOfRangeThrows) {
  QosRegisterFile q(2);
  EXPECT_THROW(q.config(2), std::out_of_range);
  EXPECT_THROW(q.state(5), std::out_of_range);
  EXPECT_THROW(q.program(2, QosConfig{}), std::out_of_range);
}

TEST(QosRegs, RefillGrantsObjectiveTokens) {
  QosRegisterFile q(2);
  q.program(0, QosConfig{MasterClass::kNonRealTime, 64});
  q.program(1, QosConfig{MasterClass::kNonRealTime, 16});
  q.refill_budgets();
  EXPECT_EQ(q.state(0).budget, 64);
  EXPECT_EQ(q.state(1).budget, 16);
}

TEST(QosRegs, RefillCarriesDebt) {
  QosRegisterFile q(1);
  q.program(0, QosConfig{MasterClass::kNonRealTime, 10});
  q.state(0).budget = -25;  // overdrew by 25
  q.refill_budgets();
  EXPECT_EQ(q.state(0).budget, -15);  // debt repaid gradually
  q.refill_budgets();
  EXPECT_EQ(q.state(0).budget, -5);
  q.refill_budgets();
  EXPECT_EQ(q.state(0).budget, 5);
}

TEST(QosRegs, RefillSaturatesAtOneEpoch) {
  QosRegisterFile q(1);
  q.program(0, QosConfig{MasterClass::kNonRealTime, 10});
  q.refill_budgets();
  q.refill_budgets();
  q.refill_budgets();
  EXPECT_EQ(q.state(0).budget, 10);  // idle master does not hoard
}

TEST(QosRegs, RtSlackShrinksWithWait) {
  QosRegisterFile q(1);
  q.program(0, QosConfig{MasterClass::kRealTime, 50});
  auto& st = q.state(0);
  st.requesting = true;
  st.request_since = 100;
  EXPECT_EQ(q.rt_slack(0, 100), 50);
  EXPECT_EQ(q.rt_slack(0, 130), 20);
  EXPECT_EQ(q.rt_slack(0, 160), -10);  // objective blown
}

TEST(QosRegs, SlackFullWhenNotRequesting) {
  QosRegisterFile q(1);
  q.program(0, QosConfig{MasterClass::kRealTime, 50});
  EXPECT_EQ(q.rt_slack(0, 12345), 50);
}

TEST(QosRegs, EpochClampedToNonZero) {
  QosRegisterFile q(1);
  q.set_epoch(0);
  EXPECT_EQ(q.epoch(), 1u);
  q.set_epoch(512);
  EXPECT_EQ(q.epoch(), 512u);
}

}  // namespace
