#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// \file lint.hpp
/// The repo-specific source linter behind `ahbp_lint`.
///
/// Generic tools (warnings, sanitizers, clang-tidy) police the language;
/// this linter polices the *model's* invariants — the rules that make the
/// paper's cycle-accuracy claim and the checkpoint layer's bit-exactness
/// hold, and that no generic checker can express:
///
///  * **Determinism** — the only randomness source in library code is
///    `traffic::TrafficRng` (src/traffic/generator.*); wall-clock reads
///    other than `steady_clock` (used for self-profiling only) are banned,
///    because any `rand()`/`time()` leaking into a model would make two
///    runs of the same scenario disagree.
///  * **Serialization canonicality** — snapshot emitters must never write
///    records in unordered-container iteration order (hash order varies
///    across libraries and runs; the save→restore→save byte-identity the
///    checkpoint tests pin would silently break).
///  * **Snapshot discipline** — every `StateWriter::begin` tag is unique,
///    and the tag set matches the checked-in manifest
///    (tools/snapshot_manifest.txt) which also records the
///    `state::kFormatVersion` it was generated against.  Changing the tag
///    set forces a manifest regeneration, and the regeneration tool
///    refuses to run until the format version is bumped.
///  * **Observability non-perturbation** — library files that hold
///    `obs::Timeline*` / `obs::SelfProfiler*` taps must null-gate them:
///    observation is optional by contract, and an ungated dereference
///    turns "instrumentation changed nothing" into a crash.
///  * **Library hygiene** — no `std::cout`/`printf` in library code (the
///    library reports through return values and caller-supplied streams),
///    and no `<cassert>` (use AHBP_ASSERT, which stays active under
///    NDEBUG; a plain `assert` silently vanishes in Release builds).
///
/// The engine works on in-memory sources so the fixture tests can feed it
/// must-pass / must-fail snippets; `tools/ahbp_lint.cpp` wraps it with
/// directory walking.

namespace ahbp::lint {

/// One source file to lint.  `path` is repo-relative with '/' separators —
/// the scope rules (library vs tool, TrafficRng exemption) key off it.
struct SourceFile {
  std::string path;
  std::string text;
};

struct Finding {
  std::string file;
  std::size_t line = 0;  ///< 1-based; 0 for file-level findings
  std::string rule;      ///< e.g. "determinism/rng"
  std::string message;
};

/// The checked-in record of the snapshot format: the tag set the sources
/// declared when `version` was current.  See tools/snapshot_manifest.txt.
struct SnapshotManifest {
  std::uint32_t version = 0;
  std::vector<std::string> tags;  ///< sorted, unique
};

/// Parse manifest text ("version N" line + one tag per line, '#' comments).
/// Throws std::runtime_error on malformed input.
SnapshotManifest parse_manifest(std::string_view text);

/// Canonical manifest text for (version, tags).
std::string render_manifest(const SnapshotManifest& m);

/// Blank out comments and string/character literals, preserving length and
/// newlines, so token rules cannot fire on prose.  Exposed for tests.
std::string strip_code(std::string_view text);

/// All `StateWriter::begin("tag")` string literals in `files`, sorted and
/// deduplicated.  Duplicate declarations (the same tag used by two
/// components) are reported into `findings` when non-null.
std::vector<std::string> collect_snapshot_tags(
    const std::vector<SourceFile>& files, std::vector<Finding>* findings);

/// `state::kFormatVersion` as declared in src/state/snapshot.hpp within
/// `files`; 0 when the header is not part of the input.
std::uint32_t find_format_version(const std::vector<SourceFile>& files);

/// Run every rule over `files`.  `manifest_text` is the content of
/// tools/snapshot_manifest.txt (empty = manifest missing, itself a finding
/// when the input declares snapshot tags).  Findings are ordered by file,
/// then line.
std::vector<Finding> lint_sources(const std::vector<SourceFile>& files,
                                  std::string_view manifest_text);

}  // namespace ahbp::lint
