// Cross-model equivalence — the properties behind Table 1's validity:
// for identical stimulus the two models must retire the same transactions
// with identical read data, keep every protocol checker silent, and stay
// within a bounded cycle divergence.  Parameterized across traffic
// patterns and seeds.

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "core/compare.hpp"
#include "core/platform.hpp"
#include "core/workloads.hpp"
#include "rtl/fabric.hpp"
#include "sim/cycle_kernel.hpp"
#include "tlm/bus.hpp"
#include "tlm/ddrc.hpp"
#include "tlm/master.hpp"

namespace {

using namespace ahbp;
using namespace ahbp::core;

using Key = std::pair<unsigned, ahb::TxnId>;
using DataMap = std::map<Key, std::vector<ahb::Word>>;

/// Collect per-transaction read data from a TLM run.
DataMap run_tlm_collect(const PlatformConfig& cfg) {
  DataMap out;
  sim::CycleKernel kernel;
  ahb::QosRegisterFile qos(static_cast<unsigned>(cfg.masters.size()));
  for (unsigned m = 0; m < cfg.masters.size(); ++m) {
    qos.program(static_cast<ahb::MasterId>(m), cfg.masters[m].qos);
  }
  tlm::TlmDdrc ddrc(cfg.timing, cfg.geom, cfg.ddr_base);
  chk::ViolationLog log;
  tlm::AhbPlusBus bus(cfg.bus, qos, ddrc,
                      static_cast<unsigned>(cfg.masters.size()), &log);
  kernel.add(bus);
  auto scripts = expand_stimulus(cfg);
  std::vector<std::unique_ptr<tlm::TlmMaster>> masters;
  for (unsigned m = 0; m < cfg.masters.size(); ++m) {
    masters.push_back(std::make_unique<tlm::TlmMaster>(
        static_cast<ahb::MasterId>(m), bus, std::move(scripts[m])));
    masters[m]->on_complete = [&out, m](const ahb::Transaction& t) {
      if (t.dir == ahb::Dir::kRead) {
        out[{m, t.id}] = t.data;
      }
    };
    kernel.add(*masters[m]);
  }
  kernel.run_until(
      [&] {
        for (const auto& m : masters) {
          if (!m->finished()) {
            return false;
          }
        }
        return bus.quiescent();
      },
      cfg.max_cycles);
  EXPECT_EQ(log.errors(), 0u) << log.to_string();
  return out;
}

/// Collect per-transaction read data from an RTL run.
DataMap run_rtl_collect(const PlatformConfig& cfg) {
  DataMap out;
  rtl::RtlFabricConfig fc;
  fc.bus = cfg.bus;
  fc.timing = cfg.timing;
  fc.geom = cfg.geom;
  fc.ddr_base = cfg.ddr_base;
  for (const auto& m : cfg.masters) {
    fc.qos.push_back(m.qos);
  }
  rtl::RtlFabric fabric(fc, expand_stimulus(cfg));
  for (unsigned m = 0; m < cfg.masters.size(); ++m) {
    fabric.set_on_complete(m, [&out, m](const ahb::Transaction& t) {
      if (t.dir == ahb::Dir::kRead) {
        out[{m, t.id}] = t.data;
      }
    });
  }
  fabric.run(cfg.max_cycles);
  EXPECT_TRUE(fabric.finished()) << fabric.dump_state();
  EXPECT_EQ(fabric.violations().errors(), 0u)
      << fabric.violations().to_string();
  return out;
}

class EquivalenceSweep
    : public ::testing::TestWithParam<
          std::tuple<traffic::PatternKind, std::uint64_t>> {};

TEST_P(EquivalenceSweep, IdenticalReadDataAndBoundedCycleGap) {
  const auto [kind, seed] = GetParam();
  PlatformConfig cfg = default_platform(3, seed, 40);
  for (auto& m : cfg.masters) {
    m.traffic.kind = kind;
  }
  cfg.max_cycles = 400000;

  const DataMap tlm_data = run_tlm_collect(cfg);
  const DataMap rtl_data = run_rtl_collect(cfg);

  ASSERT_EQ(tlm_data.size(), rtl_data.size());
  for (const auto& [key, data] : tlm_data) {
    const auto it = rtl_data.find(key);
    ASSERT_NE(it, rtl_data.end())
        << "master " << key.first << " txn " << key.second;
    EXPECT_EQ(it->second, data)
        << "read data differs: master " << key.first << " txn " << key.second;
  }

  // Cycle divergence bound (loose; the bench reports exact percentages).
  const SimResult t = run_tlm(cfg);
  const SimResult r = run_rtl(cfg);
  ASSERT_TRUE(t.finished && r.finished);
  const double err =
      std::abs(static_cast<double>(t.cycles) - static_cast<double>(r.cycles)) /
      static_cast<double>(r.cycles);
  EXPECT_LT(err, 0.15) << "tlm=" << t.cycles << " rtl=" << r.cycles;
}

INSTANTIATE_TEST_SUITE_P(
    PatternsAndSeeds, EquivalenceSweep,
    ::testing::Combine(::testing::Values(traffic::PatternKind::kCpu,
                                         traffic::PatternKind::kDma,
                                         traffic::PatternKind::kRandom),
                       ::testing::Values(1ull, 17ull, 99ull)));

TEST(Equivalence, CompletedCountsMatchOnTable1Rows) {
  // Cheap subset of Table 1 (first row of each group) at low item count.
  auto rows = table1_workloads(15, 5);
  for (const auto idx : {0u, 4u, 8u}) {
    auto w = rows[idx];
    const SimResult t = run_tlm(w.config);
    const SimResult r = run_rtl(w.config);
    ASSERT_TRUE(t.finished) << w.name;
    ASSERT_TRUE(r.finished) << w.name;
    EXPECT_EQ(t.completed, r.completed) << w.name;
    EXPECT_EQ(t.protocol_errors, 0u) << w.name << "\n" << t.first_violations;
    EXPECT_EQ(r.protocol_errors, 0u) << w.name << "\n" << r.first_violations;
  }
}

TEST(Equivalence, SingleMasterModelsAgreeTightly) {
  // With no contention the fixed grant/handover latencies are not hidden
  // by pipelining, so the single-master gap runs a little above the
  // contended Table-1 average (the TLM's calibration targets the paper's
  // multi-master workloads).
  auto w = single_master_workload(60, 21);
  w.config.max_cycles = 400000;
  const SimResult t = run_tlm(w.config);
  const SimResult r = run_rtl(w.config);
  ASSERT_TRUE(t.finished && r.finished);
  const double err =
      std::abs(static_cast<double>(t.cycles) - static_cast<double>(r.cycles)) /
      static_cast<double>(r.cycles);
  EXPECT_LT(err, 0.12) << "tlm=" << t.cycles << " rtl=" << r.cycles;
}

TEST(Equivalence, ProfilesAgreeOnWorkConserved) {
  // Same stimulus means the same bytes moved and the same grant counts
  // (timing differs, work does not).
  PlatformConfig cfg = default_platform(2, 31, 30);
  const SimResult t = run_tlm(cfg);
  const SimResult r = run_rtl(cfg);
  ASSERT_TRUE(t.finished && r.finished);
  for (unsigned m = 0; m < 2; ++m) {
    EXPECT_EQ(t.profile.masters[m].reads, r.profile.masters[m].reads);
    EXPECT_EQ(t.profile.masters[m].writes, r.profile.masters[m].writes);
    EXPECT_EQ(t.profile.masters[m].bytes_read,
              r.profile.masters[m].bytes_read);
    EXPECT_EQ(t.profile.masters[m].bytes_written,
              r.profile.masters[m].bytes_written);
  }
}

TEST(Equivalence, QosMissesSimilarUnderLoad) {
  // An RT master under heavy NRT load: both models must service it within
  // the same order of QoS quality (exact misses may differ slightly).
  auto rows = table1_workloads(25, 3);
  auto w = rows[9];  // rt-2: tight period
  const SimResult t = run_tlm(w.config);
  const SimResult r = run_rtl(w.config);
  ASSERT_TRUE(t.finished && r.finished);
  const auto t_miss = t.profile.masters[0].qos_misses;
  const auto r_miss = r.profile.masters[0].qos_misses;
  EXPECT_LE(t_miss, r_miss + 5);
  EXPECT_LE(r_miss, t_miss + 5);
}

}  // namespace
