#include "rtl/master.hpp"

#include "assertions/assert.hpp"

namespace ahbp::rtl {

RtlMaster::RtlMaster(sim::EventKernel& kernel, ahb::MasterId id,
                     MasterWires& wires, SharedWires& shared,
                     traffic::Script script, const sim::Cycle* now,
                     stats::MasterProfile& profile)
    : kernel_(kernel),
      id_(id),
      w_(wires),
      sh_(shared),
      source_(std::move(script)),
      now_(now),
      profile_(profile),
      proc_(kernel, "rtl-master" + std::to_string(id), [this] { at_edge(); }) {}

void RtlMaster::bind_clock(sim::Signal<bool>& clk) {
  clk.subscribe(proc_, sim::Edge::kPos);
}

std::string_view RtlMaster::state_name() const noexcept {
  switch (state_) {
    case State::kIdle: return "idle";
    case State::kRequest: return "request";
    case State::kTransfer: return "transfer";
    case State::kBufStream: return "bufstream";
  }
  return "?";
}

void RtlMaster::drive_address_phase() {
  // Present the address phase for beat `addr_accepted_` (held until
  // accepted), or drive IDLE once every address phase is out.
  if (addr_accepted_ < txn_.beats) {
    const unsigned beat = addr_accepted_;
    w_.htrans.write(pack(beat == 0 ? ahb::Trans::kNonSeq : ahb::Trans::kSeq));
    w_.haddr.write(
        ahb::burst_beat_addr(txn_.addr, txn_.size, txn_.burst, beat));
    w_.hburst.write(pack(txn_.burst));
    w_.hsize.write(pack(txn_.size));
    w_.hwrite.write(pack(txn_.dir));
  } else {
    w_.htrans.write(pack(ahb::Trans::kIdle));
  }
  // Drive the write data for the beat whose data phase is active.
  if (txn_.dir == ahb::Dir::kWrite && data_done_ < addr_accepted_) {
    w_.hwdata.write(txn_.data[data_done_]);
  }
}

void RtlMaster::complete(bool buffered) {
  txn_.finished_at = *now_;
  profile_.record(txn_, buffered);
  source_.on_complete(*now_);
  ++completed_;
  if (on_complete) {
    on_complete(txn_);
  }
  if (txn_.locked) {
    w_.hlock.write(false);
  }
  state_ = State::kIdle;
}

void RtlMaster::at_edge() {
  const sim::Cycle now = *now_;
  switch (state_) {
    case State::kIdle: {
      if (!source_.ready(now)) {
        break;
      }
      txn_ = source_.pop(now);
      txn_.issued_at = now;
      if (txn_.dir == ahb::Dir::kRead) {
        txn_.data.assign(txn_.beats, 0);
      }
      w_.hbusreq.write(true);
      w_.hlock.write(txn_.locked);
      w_.req_addr.write(txn_.addr);
      w_.req_dir.write(pack(txn_.dir));
      w_.req_burst.write(pack(txn_.burst));
      w_.req_size.write(pack(txn_.size));
      w_.req_beats.write(txn_.beats);
      state_ = State::kRequest;
      break;
    }

    case State::kRequest: {
      if (id_ < sh_.wbuf_take.size() && sh_.wbuf_take[id_]->read()) {
        // The write buffer took the transaction (§3.3): stream the data
        // beats over the private column, one per cycle.
        AHBP_ASSERT(txn_.dir == ahb::Dir::kWrite);
        w_.hbusreq.write(false);
        txn_.granted_at = now;
        txn_.started_at = now;
        stream_beat_ = 0;
        w_.wbuf_stream.write(true);
        w_.hwdata.write(txn_.data[0]);
        state_ = State::kBufStream;
        break;
      }
      if (sh_.hgrant[id_]->read() &&
          sh_.hmaster.read() == static_cast<std::uint8_t>(id_)) {
        // Bus granted and the muxes route our column: start the transfer.
        w_.hbusreq.write(false);
        txn_.granted_at = now;
        txn_.started_at = now;
        addr_accepted_ = 0;
        data_done_ = 0;
        drive_address_phase();
        state_ = State::kTransfer;
      }
      break;
    }

    case State::kTransfer: {
      const bool hr = sh_.hready.read();
      if (hr) {
        // One data phase completes and/or one address phase is accepted at
        // every HREADY-high edge (AHB pipeline).
        if (data_done_ < addr_accepted_) {
          if (txn_.dir == ahb::Dir::kRead) {
            txn_.data[data_done_] = sh_.hrdata.read();
          }
          ++data_done_;
        }
        if (addr_accepted_ < txn_.beats) {
          ++addr_accepted_;
        }
      }
      if (data_done_ == txn_.beats) {
        w_.htrans.write(pack(ahb::Trans::kIdle));
        complete(/*buffered=*/false);
        break;
      }
      drive_address_phase();
      break;
    }

    case State::kBufStream: {
      // The buffer sampled beat `stream_beat_` at this edge.
      ++stream_beat_;
      if (stream_beat_ >= txn_.beats) {
        w_.wbuf_stream.write(false);
        complete(/*buffered=*/true);
        break;
      }
      w_.hwdata.write(txn_.data[stream_beat_]);
      break;
    }
  }
}

void RtlMaster::save_state(state::StateWriter& w) const {
  w.begin("rtl-master");
  w.put_u8(static_cast<std::uint8_t>(state_));
  ahb::save_state(w, txn_);
  w.put_u32(addr_accepted_);
  w.put_u32(data_done_);
  w.put_u32(stream_beat_);
  w.put_u64(completed_);
  source_.save_state(w);
  w.end();
}

void RtlMaster::restore_state(state::StateReader& r) {
  r.enter("rtl-master");
  state_ = static_cast<State>(r.get_u8());
  ahb::restore_state(r, txn_);
  addr_accepted_ = r.get_u32();
  data_done_ = r.get_u32();
  stream_beat_ = r.get_u32();
  completed_ = r.get_u64();
  source_.restore_state(r);
  r.leave();
}

}  // namespace ahbp::rtl
