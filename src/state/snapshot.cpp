#include "state/snapshot.hpp"

#include <array>
#include <cstring>
#include <fstream>

namespace ahbp::state {

namespace {

/// Record type tags.  Values are part of the on-disk format — append only.
enum Tag : std::uint8_t {
  kBool = 1,
  kU8 = 2,
  kU32 = 3,
  kU64 = 4,
  kI64 = 5,
  kF64 = 6,
  kStr = 7,
  kBlob = 8,
  kBegin = 9,
  kEnd = 10,
};

constexpr std::array<char, 8> kMagic = {'A', 'H', 'B', 'P', 'S', 'N', 'A', 'P'};

const char* tag_name(std::uint8_t t) {
  switch (t) {
    case kBool: return "bool";
    case kU8: return "u8";
    case kU32: return "u32";
    case kU64: return "u64";
    case kI64: return "i64";
    case kF64: return "f64";
    case kStr: return "string";
    case kBlob: return "blob";
    case kBegin: return "section-begin";
    case kEnd: return "section-end";
    default: return "unknown";
  }
}

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFU;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ data[i]) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

void expect_presence_match(bool snapshot_has, bool platform_has,
                           std::string_view what) {
  if (snapshot_has != platform_has) {
    throw StateError("snapshot was taken with " + std::string(what) + " " +
                     (snapshot_has ? "on" : "off") +
                     " but the restore platform has them " +
                     (platform_has ? "on" : "off"));
  }
}

// ---------------------------------------------------------- StateWriter --

void StateWriter::raw_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    payload_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void StateWriter::raw_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    payload_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void StateWriter::begin(std::string_view tag) {
  tag_byte(kBegin);
  raw_u32(static_cast<std::uint32_t>(tag.size()));
  payload_.insert(payload_.end(), tag.begin(), tag.end());
  ++depth_;
}

void StateWriter::end() {
  if (depth_ == 0) {
    throw StateError("StateWriter::end() without a matching begin()");
  }
  tag_byte(kEnd);
  --depth_;
}

void StateWriter::put_bool(bool v) {
  tag_byte(kBool);
  payload_.push_back(v ? 1 : 0);
}

void StateWriter::put_u8(std::uint8_t v) {
  tag_byte(kU8);
  payload_.push_back(v);
}

void StateWriter::put_u32(std::uint32_t v) {
  tag_byte(kU32);
  raw_u32(v);
}

void StateWriter::put_u64(std::uint64_t v) {
  tag_byte(kU64);
  raw_u64(v);
}

void StateWriter::put_i64(std::int64_t v) {
  tag_byte(kI64);
  raw_u64(static_cast<std::uint64_t>(v));
}

void StateWriter::put_f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  tag_byte(kF64);
  raw_u64(bits);
}

void StateWriter::put_str(std::string_view v) {
  tag_byte(kStr);
  raw_u32(static_cast<std::uint32_t>(v.size()));
  payload_.insert(payload_.end(), v.begin(), v.end());
}

void StateWriter::put_blob(const void* data, std::size_t bytes) {
  tag_byte(kBlob);
  raw_u64(bytes);
  const auto* p = static_cast<const std::uint8_t*>(data);
  payload_.insert(payload_.end(), p, p + bytes);
}

std::vector<std::uint8_t> StateWriter::finish() const {
  if (depth_ != 0) {
    throw StateError("StateWriter::finish() with " + std::to_string(depth_) +
                     " unclosed section(s)");
  }
  std::vector<std::uint8_t> out(kMagic.size() + 4 + payload_.size() + 4);
  std::size_t o = 0;
  std::memcpy(out.data(), kMagic.data(), kMagic.size());
  o += kMagic.size();
  for (int i = 0; i < 4; ++i) {
    out[o++] = static_cast<std::uint8_t>(kFormatVersion >> (8 * i));
  }
  if (!payload_.empty()) {
    std::memcpy(out.data() + o, payload_.data(), payload_.size());
    o += payload_.size();
  }
  const std::uint32_t crc = crc32(payload_.data(), payload_.size());
  for (int i = 0; i < 4; ++i) {
    out[o++] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  return out;
}

void StateWriter::write_file(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = finish();
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    throw StateError("cannot open '" + path + "' for writing");
  }
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  if (!os) {
    throw StateError("short write to '" + path + "'");
  }
}

// ---------------------------------------------------------- StateReader --

StateReader::StateReader(std::vector<std::uint8_t> bytes)
    : owned_(std::move(bytes)), data_(owned_.data()), size_(owned_.size()) {
  validate_header();
}

StateReader::StateReader(const std::uint8_t* data, std::size_t size)
    : data_(data), size_(size) {
  validate_header();
}

StateReader StateReader::from_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) {
    throw StateError("cannot open checkpoint file '" + path + "'");
  }
  const std::streamsize n = is.tellg();
  is.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(n));
  if (n > 0) {
    is.read(reinterpret_cast<char*>(bytes.data()), n);
  }
  if (!is) {
    throw StateError("cannot read checkpoint file '" + path + "'");
  }
  return StateReader(std::move(bytes));
}

void StateReader::fail(const std::string& msg) const {
  throw StateError("snapshot: " + msg + " (payload offset " +
                   std::to_string(pos_) + ")");
}

void StateReader::validate_header() {
  const std::size_t overhead = kMagic.size() + 4 /*version*/ + 4 /*crc*/;
  if (size_ < overhead) {
    throw StateError(
        "snapshot: file truncated (only " + std::to_string(size_) +
        " bytes, header + checksum need " + std::to_string(overhead) + ")");
  }
  if (std::memcmp(data_, kMagic.data(), kMagic.size()) != 0) {
    throw StateError("snapshot: bad magic (not an ahbp checkpoint)");
  }
  std::uint32_t version = 0;
  for (unsigned i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(data_[kMagic.size() + i]) << (8 * i);
  }
  if (version != kFormatVersion) {
    throw StateError("snapshot: format version " + std::to_string(version) +
                     " is not supported (this build reads version " +
                     std::to_string(kFormatVersion) + ")");
  }
  std::uint32_t stored = 0;
  for (unsigned i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(data_[size_ - 4 + i]) << (8 * i);
  }
  data_ += kMagic.size() + 4;
  size_ -= overhead;
  const std::uint32_t computed = crc32(data_, size_);
  if (stored != computed) {
    throw StateError(
        "snapshot: checksum mismatch (file truncated or corrupted)");
  }
}

const std::uint8_t* StateReader::take(std::size_t n, const char* what) {
  if (size_ - pos_ < n) {
    fail(std::string("unexpected end of payload while reading ") + what);
  }
  const std::uint8_t* p = data_ + pos_;
  pos_ += n;
  return p;
}

std::uint8_t StateReader::take_tag(std::uint8_t expected, const char* what) {
  const std::uint8_t t = *take(1, "record tag");
  if (t != expected) {
    fail(std::string("expected ") + what + " record, found " + tag_name(t));
  }
  return t;
}

std::uint32_t StateReader::raw_u32(const char* what) {
  const std::uint8_t* p = take(4, what);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

std::uint64_t StateReader::raw_u64(const char* what) {
  const std::uint8_t* p = take(8, what);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

void StateReader::enter(std::string_view tag) {
  take_tag(kBegin, "section-begin");
  const std::uint32_t n = raw_u32("section tag length");
  const auto* p = reinterpret_cast<const char*>(take(n, "section tag"));
  const std::string_view found(p, n);
  if (found != tag) {
    fail("section mismatch: expected '" + std::string(tag) + "', found '" +
         std::string(found) + "'");
  }
  ++depth_;
}

void StateReader::leave() {
  if (depth_ == 0) {
    fail("leave() without a matching enter()");
  }
  take_tag(kEnd, "section-end");
  --depth_;
}

bool StateReader::get_bool() {
  take_tag(kBool, "bool");
  return *take(1, "bool value") != 0;
}

std::uint8_t StateReader::get_u8() {
  take_tag(kU8, "u8");
  return *take(1, "u8 value");
}

std::uint32_t StateReader::get_u32() {
  take_tag(kU32, "u32");
  return raw_u32("u32 value");
}

std::uint64_t StateReader::get_u64() {
  take_tag(kU64, "u64");
  return raw_u64("u64 value");
}

std::uint64_t StateReader::get_count(std::uint64_t min_bytes_per_item) {
  const std::uint64_t n = get_u64();
  const std::uint64_t remaining = size_ - pos_;
  if (min_bytes_per_item != 0 && n > remaining / min_bytes_per_item) {
    fail("container length " + std::to_string(n) +
         " exceeds the remaining payload (" + std::to_string(remaining) +
         " bytes)");
  }
  return n;
}

std::int64_t StateReader::get_i64() {
  take_tag(kI64, "i64");
  return static_cast<std::int64_t>(raw_u64("i64 value"));
}

double StateReader::get_f64() {
  take_tag(kF64, "f64");
  const std::uint64_t bits = raw_u64("f64 value");
  double v = 0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string StateReader::get_str() {
  take_tag(kStr, "string");
  const std::uint32_t n = raw_u32("string length");
  const auto* p = reinterpret_cast<const char*>(take(n, "string bytes"));
  return std::string(p, n);
}

std::vector<std::uint8_t> StateReader::get_blob() {
  take_tag(kBlob, "blob");
  const std::uint64_t n = raw_u64("blob length");
  if (n > size_ - pos_) {
    fail("blob length " + std::to_string(n) + " exceeds remaining payload");
  }
  const std::uint8_t* p = take(static_cast<std::size_t>(n), "blob bytes");
  return std::vector<std::uint8_t>(p, p + n);
}

bool StateReader::at_end() const noexcept {
  return pos_ == size_ && depth_ == 0;
}

void StateReader::expect_end() const {
  if (depth_ != 0) {
    fail("stream ended inside " + std::to_string(depth_) +
         " unclosed section(s)");
  }
  if (pos_ != size_) {
    fail("trailing bytes after the last record (" +
         std::to_string(size_ - pos_) + " unread)");
  }
}

}  // namespace ahbp::state
