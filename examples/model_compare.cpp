// Side-by-side model comparison on one workload — the per-row view behind
// Table 1.  Runs the same stimulus through the TLM and the signal-level
// reference, prints cycle counts, the error, simulation speeds and a
// profile diff, and cross-checks the work-conservation invariants.
//
//   $ ./model_compare            # default: the dma-2 Table-1 row
//   $ ./model_compare rt-1 300   # any Table-1 row name + txns/master

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/compare.hpp"
#include "core/platform.hpp"
#include "core/workloads.hpp"
#include "stats/report.hpp"

int main(int argc, char** argv) {
  using namespace ahbp;
  const std::string row = argc > 1 ? argv[1] : "dma-2";
  const unsigned items =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 200;

  core::PlatformConfig cfg;
  bool found = false;
  for (const auto& w : core::table1_workloads(items, 11)) {
    if (w.name == row) {
      cfg = w.config;
      found = true;
      break;
    }
  }
  if (!found) {
    std::cerr << "unknown workload '" << row << "' — use one of:";
    for (const auto& w : core::table1_workloads(10)) {
      std::cerr << ' ' << w.name;
    }
    std::cerr << '\n';
    return 1;
  }

  std::cout << "workload " << row << " (" << items
            << " txns/master, 4 masters)\n\n";
  const core::SimResult rtl = core::run_rtl(cfg);
  const core::SimResult tlm = core::run_tlm(cfg);

  const double err =
      std::abs(static_cast<double>(tlm.cycles) -
               static_cast<double>(rtl.cycles)) /
      static_cast<double>(rtl.cycles);

  stats::TextTable t({"metric", "signal-level", "TLM"});
  t.add_row({"cycles (last completion)", std::to_string(rtl.cycles),
             std::to_string(tlm.cycles)});
  t.add_row({"transactions", std::to_string(rtl.completed),
             std::to_string(tlm.completed)});
  t.add_row({"bus utilization", stats::fmt_percent(rtl.profile.bus.utilization()),
             stats::fmt_percent(tlm.profile.bus.utilization())});
  t.add_row({"bus contention", stats::fmt_percent(rtl.profile.bus.contention()),
             stats::fmt_percent(tlm.profile.bus.contention())});
  t.add_row({"throughput B/cyc",
             stats::fmt_double(rtl.profile.bus.throughput(), 3),
             stats::fmt_double(tlm.profile.bus.throughput(), 3)});
  t.add_row({"writes absorbed",
             std::to_string(rtl.profile.write_buffer.absorbed),
             std::to_string(tlm.profile.write_buffer.absorbed)});
  t.add_row({"DDR row-hit rate",
             stats::fmt_percent(rtl.profile.ddr.row_hit_rate()),
             stats::fmt_percent(tlm.profile.ddr.row_hit_rate())});
  t.add_row({"protocol errors", std::to_string(rtl.protocol_errors),
             std::to_string(tlm.protocol_errors)});
  t.add_row({"Kcycles/s", stats::fmt_double(core::kcycles_per_sec(rtl), 1),
             stats::fmt_double(core::kcycles_per_sec(tlm), 1)});
  t.print(std::cout);

  std::cout << "\ncycle difference : " << stats::fmt_percent(err)
            << "  (accuracy " << stats::fmt_percent(1.0 - err) << ")\n";
  std::cout << "speedup          : "
            << stats::fmt_double(core::kcycles_per_sec(tlm) /
                                     core::kcycles_per_sec(rtl),
                                 1)
            << "x\n";

  // Work conservation: identical stimulus must move identical bytes.
  bool conserved = rtl.completed == tlm.completed;
  for (std::size_t m = 0; m < rtl.profile.masters.size(); ++m) {
    conserved = conserved &&
                rtl.profile.masters[m].bytes_read ==
                    tlm.profile.masters[m].bytes_read &&
                rtl.profile.masters[m].bytes_written ==
                    tlm.profile.masters[m].bytes_written;
  }
  std::cout << "work conserved   : " << (conserved ? "yes" : "NO") << "\n";
  return conserved ? 0 : 1;
}
