#include "stats/profiles.hpp"

namespace ahbp::stats {

void MasterProfile::record(const ahb::Transaction& t, bool buffered) {
  if (t.dir == ahb::Dir::kRead) {
    ++reads;
    bytes_read += t.bytes();
  } else {
    ++writes;
    bytes_written += t.bytes();
    if (buffered) {
      ++buffered_writes;
    }
  }
  grant_wait.add(t.wait());
  latency.add(t.latency());
}

void BusProfile::sample(unsigned requesters, bool busy, unsigned moved_bytes) {
  ++cycles;
  if (busy) {
    ++busy_cycles;
  }
  if (requesters > 1) {
    ++contention_cycles;
  }
  if (requesters >= 1 && !busy) {
    ++wait_cycles;
  }
  bytes += moved_bytes;
}

void MasterProfile::save_state(state::StateWriter& w) const {
  // `name` is configuration (assigned at platform assembly), not state.
  w.put_u64(reads);
  w.put_u64(writes);
  w.put_u64(bytes_read);
  w.put_u64(bytes_written);
  w.put_u64(buffered_writes);
  grant_wait.save_state(w);
  latency.save_state(w);
  w.put_u64(qos_misses);
}

void MasterProfile::restore_state(state::StateReader& r) {
  reads = r.get_u64();
  writes = r.get_u64();
  bytes_read = r.get_u64();
  bytes_written = r.get_u64();
  buffered_writes = r.get_u64();
  grant_wait.restore_state(r);
  latency.restore_state(r);
  qos_misses = r.get_u64();
}

void BusProfile::save_state(state::StateWriter& w) const {
  w.put_u64(cycles);
  w.put_u64(busy_cycles);
  w.put_u64(contention_cycles);
  w.put_u64(wait_cycles);
  w.put_u64(grants);
  w.put_u64(handovers);
  w.put_u64(bytes);
}

void BusProfile::restore_state(state::StateReader& r) {
  cycles = r.get_u64();
  busy_cycles = r.get_u64();
  contention_cycles = r.get_u64();
  wait_cycles = r.get_u64();
  grants = r.get_u64();
  handovers = r.get_u64();
  bytes = r.get_u64();
}

void WriteBufferProfile::save_state(state::StateWriter& w) const {
  w.put_u64(absorbed);
  w.put_u64(drained);
  w.put_u64(bypassed);
  w.put_u64(full_stalls);
  w.put_u64(forwards);
  occupancy.save_state(w);
}

void WriteBufferProfile::restore_state(state::StateReader& r) {
  absorbed = r.get_u64();
  drained = r.get_u64();
  bypassed = r.get_u64();
  full_stalls = r.get_u64();
  forwards = r.get_u64();
  occupancy.restore_state(r);
}

}  // namespace ahbp::stats
