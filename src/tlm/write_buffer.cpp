#include "tlm/write_buffer.hpp"

#include "assertions/assert.hpp"

namespace ahbp::tlm {

bool WriteBuffer::absorb(const ahb::Transaction& t, sim::Cycle now) {
  (void)now;
  AHBP_ASSERT_MSG(t.dir == ahb::Dir::kWrite,
                  "write buffer can only absorb writes");
  if (!enabled_ || full()) {
    return false;
  }
  fifo_.push_back(t);
  ++profile_.absorbed;
  return true;
}

const ahb::Transaction& WriteBuffer::front() const {
  AHBP_ASSERT(!fifo_.empty());
  return fifo_.front();
}

const ahb::Transaction& WriteBuffer::peek(unsigned i) const {
  AHBP_ASSERT(i < fifo_.size());
  return fifo_[i];
}

ahb::Transaction WriteBuffer::pop_front(sim::Cycle now) {
  (void)now;
  AHBP_ASSERT(!fifo_.empty());
  ahb::Transaction t = std::move(fifo_.front());
  fifo_.pop_front();
  ++profile_.drained;
  return t;
}

bool WriteBuffer::overlaps(ahb::Addr lo, ahb::Addr hi) const noexcept {
  for (const ahb::Transaction& t : fifo_) {
    // Conservative span: [addr, addr + beats*size) covers INCR exactly and
    // over-approximates WRAP (whose wrap window is within the same span
    // rounded to its boundary — widen to the wrap boundary region).
    ahb::Addr t_lo = t.addr;
    ahb::Addr t_hi = t.addr + t.bytes();
    if (ahb::burst_wraps(t.burst)) {
      const ahb::Addr total = t.bytes();
      t_lo = t.addr & ~(total - 1);
      t_hi = t_lo + total;
    }
    if (t_lo < hi && lo < t_hi) {
      return true;
    }
  }
  return false;
}

}  // namespace ahbp::tlm
