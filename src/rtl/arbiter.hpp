#pragma once

#include <optional>
#include <vector>

#include "ahb/config.hpp"
#include "ahb/qos.hpp"
#include "assertions/bus_checker.hpp"
#include "ddr/channels.hpp"
#include "rtl/signals.hpp"
#include "sim/event_kernel.hpp"
#include "tlm/arbiter.hpp"
#include "tlm/write_buffer.hpp"

/// \file arbiter.hpp
/// Pin-level AHB+ arbiter.
///
/// Runs the same FilterPipeline as the TLM (shared decision semantics) but
/// lives entirely in the signal world: requests, sidebands, BI status and
/// HREADY are sampled from wires at each rising clock edge; grants, HMASTER
/// and the write-buffer take pulses are driven as registered outputs.
///
/// The arbiter also owns the "at the right time" decision of §3.3: writes
/// that lose arbitration are assigned to the write buffer via wbuf_take
/// pulses (one per master), reserving buffer space synchronously so the
/// take/grant race cannot double-serve a request.

namespace ahbp::rtl {

class RtlWriteBuffer;  // forward (reservation interface)

class RtlArbiter {
 public:
  /// `channels` + `ilv` describe the sharded DDR subsystem: candidate
  /// affinity is evaluated from the per-channel BI bank-state wire slices
  /// through the same interleave decode the controllers use.
  RtlArbiter(sim::EventKernel& kernel, const ahb::BusConfig& cfg,
             ahb::QosRegisterFile& qos, SharedWires& shared,
             std::vector<MasterWires*> masters, RtlWriteBuffer& wbuf,
             std::vector<ddr::ChannelConfig> channels,
             const ddr::Interleave& ilv, ahb::Addr ddr_base,
             const sim::Cycle* now, chk::ViolationLog* qos_log);

  RtlArbiter(const RtlArbiter&) = delete;
  RtlArbiter& operator=(const RtlArbiter&) = delete;

  void bind_clock(sim::Signal<bool>& clk);

  std::uint64_t grants() const noexcept { return arbiter_.grants(); }

  /// Grant/handover counters for the bus profile.
  std::uint64_t handovers() const noexcept { return handovers_; }

  /// One-line diagnostic state summary.
  std::string debug_string() const;

  /// Pending-grant/owner/handshake registers plus the shared bookkeeping
  /// arbiter and QoS-checker counters.
  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);

 private:
  void at_edge();
  void track_requests(sim::Cycle now);
  void track_transfer_progress();
  void do_handover(sim::Cycle now);
  void do_arbitration(sim::Cycle now);
  void do_takes(sim::Cycle now);
  ahb::Transaction txn_from_sideband(unsigned m) const;
  /// Affinity of a candidate's target bank, read from the BI wires of the
  /// channel the interleave routes `bus_addr` to.
  ddr::BankAffinity wire_affinity(ahb::Addr bus_addr) const;

  const ahb::BusConfig& cfg_;
  ahb::QosRegisterFile& qos_;
  SharedWires& sh_;
  std::vector<MasterWires*> mw_;
  RtlWriteBuffer& wbuf_;
  std::vector<ddr::ChannelConfig> channels_;
  ddr::Interleave ilv_;
  std::vector<std::uint32_t> bank_base_;  ///< BI wire offset per channel
  ahb::Addr ddr_base_;
  const sim::Cycle* now_;
  tlm::Arbiter arbiter_;  ///< shared bookkeeping + FilterPipeline
  std::optional<chk::QosChecker> qos_checker_;
  sim::Process proc_;

  unsigned masters_;
  std::vector<bool> prev_req_;
  std::vector<bool> take_pulse_;   ///< takes driven last edge (to deassert)
  std::vector<bool> absorbed_wait_;///< taken; waiting for HBUSREQ to drop

  // Pending (granted but not yet switched-in) transaction.
  bool pending_ = false;
  ahb::MasterId pending_master_ = ahb::kNoMaster;
  ahb::Transaction pending_txn_;
  /// HGRANT is a one-cycle pulse: a parked grant must not let a master
  /// start a second transaction without arbitration.
  bool grant_pulse_ = false;
  ahb::MasterId grant_pulse_master_ = ahb::kNoMaster;

  // Current address-bus owner bookkeeping.
  bool owner_active_ = false;
  ahb::MasterId owner_ = ahb::kNoMaster;
  unsigned owner_beats_ = 0;
  unsigned owner_addr_accepted_ = 0;
  bool owner_locked_ = false;

  std::uint64_t handovers_ = 0;
};

}  // namespace ahbp::rtl
