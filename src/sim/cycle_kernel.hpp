#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "state/snapshot.hpp"

namespace ahbp::obs {
class SelfProfiler;
}

/// \file cycle_kernel.hpp
/// 2-step cycle-based simulation kernel.
///
/// This is the kernel the paper's §4 describes: to maximize speed the TLM is
/// *method-based* (components exchange transactions through direct function
/// calls, not signal toggling) and scheduled by a *2-step cycle-based*
/// engine.  Each simulated bus cycle consists of exactly two sweeps over the
/// registered components:
///
///   1. `evaluate(now)` — components read committed state from the previous
///      cycle and compute/communicate (masters issue transaction calls, the
///      arbiter filters requests, the DDR controller picks commands).
///   2. `update(now)`   — components commit their next state.
///
/// There is no event queue, no sensitivity bookkeeping and no delta
/// iteration: cost per cycle is two virtual calls per component.  Ordering
/// within a phase is controlled by a small integer `phase()` so a platform
/// can guarantee e.g. masters evaluate before the arbiter, independent of
/// registration order.

namespace ahbp::sim {

/// Interface for components clocked by the CycleKernel.
class Clocked {
 public:
  virtual ~Clocked() = default;

  /// Phase 1: read committed state, compute, call methods on peers.
  virtual void evaluate(Cycle now) = 0;

  /// Phase 2: commit next state.  Default: nothing to commit.
  virtual void update(Cycle now) { (void)now; }

  /// Evaluation order within a cycle (lower runs earlier in both phases).
  virtual int phase() const { return 0; }

  /// Component name for diagnostics.
  virtual std::string_view name() const { return "clocked"; }
};

/// Convenience adapter turning two lambdas into a Clocked component.
class CallbackClocked final : public Clocked {
 public:
  CallbackClocked(std::string name, int phase,
                  std::function<void(Cycle)> evaluate,
                  std::function<void(Cycle)> update = {})
      : name_(std::move(name)),
        phase_(phase),
        evaluate_(std::move(evaluate)),
        update_(std::move(update)) {}

  void evaluate(Cycle now) override {
    if (evaluate_) {
      evaluate_(now);
    }
  }
  void update(Cycle now) override {
    if (update_) {
      update_(now);
    }
  }
  int phase() const override { return phase_; }
  std::string_view name() const override { return name_; }

 private:
  std::string name_;
  int phase_;
  std::function<void(Cycle)> evaluate_;
  std::function<void(Cycle)> update_;
};

/// The 2-step cycle-based scheduler.
class CycleKernel {
 public:
  CycleKernel() = default;

  CycleKernel(const CycleKernel&) = delete;
  CycleKernel& operator=(const CycleKernel&) = delete;

  /// Register a component (non-owning).  Components are sorted by phase();
  /// ties keep registration order (stable).
  void add(Clocked& component);

  /// Execute one cycle: evaluate sweep then update sweep.
  void step();

  /// Run `cycles` cycles, or fewer if request_stop() is called.
  void run(Cycle cycles);

  /// Run until `predicate` returns true (checked after each cycle) or
  /// `max_cycles` elapse.  Returns the number of cycles executed.
  Cycle run_until(const std::function<bool()>& predicate, Cycle max_cycles);

  /// Current cycle number (cycles completed so far).
  Cycle now() const noexcept { return now_; }

  /// Stop at the end of the current cycle.
  void request_stop() noexcept { stop_ = true; }

  bool stop_requested() const noexcept { return stop_; }

  /// Total component evaluations performed (for the speed benchmarks).
  std::uint64_t evaluations() const noexcept { return evaluations_; }

  /// Attach a self-profiler: each component's evaluate+update time is
  /// accumulated under a phase named after the component.  Null detaches.
  /// When detached (the default), step() takes the untimed fast path.
  void set_profiler(obs::SelfProfiler* p) {
    profiler_ = p;
    prof_dirty_ = true;
  }

  /// Snapshot the clock: the cycle counter and the evaluation counter
  /// (components snapshot themselves; registration is configuration).
  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);

 private:
  void sort_if_needed();
  void step_profiled();

  std::vector<Clocked*> components_;
  bool sorted_ = true;
  Cycle now_ = 0;
  bool stop_ = false;
  std::uint64_t evaluations_ = 0;

  obs::SelfProfiler* profiler_ = nullptr;
  bool prof_dirty_ = false;  ///< phase ids need (re)resolving
  std::vector<unsigned> prof_ids_;  ///< parallel to components_ once sorted
};

}  // namespace ahbp::sim
