// Design-space exploration — the use case the paper's introduction builds
// toward: "the one of main challenges in the platform based design is how
// to exploit the optional architecture, which requires highly abstracted
// simulation models".  The fast TLM makes a full sweep over write-buffer
// depth x arbitration configuration interactive; the same sweep on the
// pin-accurate model would take orders of magnitude longer.

#include <chrono>
#include <iostream>

#include "core/platform.hpp"
#include "core/workloads.hpp"
#include "stats/report.hpp"

int main() {
  using namespace ahbp;
  const auto t0 = std::chrono::steady_clock::now();

  stats::TextTable t({"wbuf depth", "bank filter", "pipelining", "cycles",
                      "util", "RT misses"});

  struct Best {
    sim::Cycle cycles = ~sim::Cycle{0};
    std::string name;
  } best;

  for (const unsigned depth : {0u, 2u, 4u, 8u}) {
    for (const bool bank : {false, true}) {
      for (const bool pipe : {false, true}) {
        auto cfg = core::table1_workloads(200, 99)[8].config;  // rt-1 mix
        cfg.bus.write_buffer_enabled = depth > 0;
        cfg.bus.write_buffer_depth = depth;
        cfg.bus.request_pipelining = pipe;
        cfg.bus.filter_mask = ahb::with_filter(
            ahb::kAllFilters, ahb::FilterBit::kBank, bank);
        const auto r = core::run_tlm(cfg);
        const std::string name = "depth=" + std::to_string(depth) +
                                 " bank=" + (bank ? "on" : "off") +
                                 " pipe=" + (pipe ? "on" : "off");
        if (r.cycles < best.cycles) {
          best = {r.cycles, name};
        }
        t.add_row({depth == 0 ? "off" : std::to_string(depth),
                   bank ? "on" : "off", pipe ? "on" : "off",
                   std::to_string(r.cycles),
                   stats::fmt_percent(r.profile.bus.utilization()),
                   std::to_string(r.profile.masters[0].qos_misses)});
      }
    }
  }

  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::cout << "16-point design-space sweep (rt-1 mix, 200 txns/master):\n\n";
  t.print(std::cout);
  std::cout << "\nfastest configuration: " << best.name << " ("
            << best.cycles << " cycles)\n";
  std::cout << "whole sweep took " << stats::fmt_double(secs, 2)
            << "s on the TLM — the interactivity the paper's introduction"
               " asks of\narchitecture models.\n";
  return 0;
}
