// DDR timing parameter validation and presets.

#include <gtest/gtest.h>

#include "ddr/timing.hpp"

namespace {

using namespace ahbp::ddr;

TEST(Timing, PresetsAreConsistent) {
  EXPECT_EQ(ddr266().validate(), "");
  EXPECT_EQ(ddr400().validate(), "");
  EXPECT_EQ(toy_timing().validate(), "");
}

TEST(Timing, TrcMustCoverRasPlusRp) {
  DdrTiming t = toy_timing();
  t.tRC = t.tRAS + t.tRP - 1;
  EXPECT_NE(t.validate(), "");
}

TEST(Timing, TrasMustCoverTrcd) {
  DdrTiming t = toy_timing();
  t.tRAS = t.tRCD - 1;
  EXPECT_NE(t.validate(), "");
}

TEST(Timing, ZeroCoreParamsRejected) {
  DdrTiming t = toy_timing();
  t.tRCD = 0;
  EXPECT_NE(t.validate(), "");
  t = toy_timing();
  t.tRP = 0;
  EXPECT_NE(t.validate(), "");
  t = toy_timing();
  t.tCCD = 0;
  EXPECT_NE(t.validate(), "");
}

TEST(Timing, RefreshIntervalMustExceedRfc) {
  DdrTiming t = toy_timing();
  t.tREFI = 5;
  t.tRFC = 10;
  EXPECT_NE(t.validate(), "");
  t.tREFI = 0;  // disabled is fine
  EXPECT_EQ(t.validate(), "");
}

TEST(Timing, PresetsDiffer) {
  EXPECT_NE(ddr266().tRFC, ddr400().tRFC);
}

}  // namespace
