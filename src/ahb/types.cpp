#include "ahb/types.hpp"

namespace ahbp::ahb {

std::string_view to_string(Trans t) noexcept {
  switch (t) {
    case Trans::kIdle: return "IDLE";
    case Trans::kBusy: return "BUSY";
    case Trans::kNonSeq: return "NONSEQ";
    case Trans::kSeq: return "SEQ";
  }
  return "?";
}

std::string_view to_string(Burst b) noexcept {
  switch (b) {
    case Burst::kSingle: return "SINGLE";
    case Burst::kIncr: return "INCR";
    case Burst::kWrap4: return "WRAP4";
    case Burst::kIncr4: return "INCR4";
    case Burst::kWrap8: return "WRAP8";
    case Burst::kIncr8: return "INCR8";
    case Burst::kWrap16: return "WRAP16";
    case Burst::kIncr16: return "INCR16";
  }
  return "?";
}

std::string_view to_string(Size s) noexcept {
  switch (s) {
    case Size::kByte: return "BYTE";
    case Size::kHalf: return "HALF";
    case Size::kWord: return "WORD";
    case Size::kDword: return "DWORD";
  }
  return "?";
}

std::string_view to_string(Resp r) noexcept {
  switch (r) {
    case Resp::kOkay: return "OKAY";
    case Resp::kError: return "ERROR";
    case Resp::kRetry: return "RETRY";
    case Resp::kSplit: return "SPLIT";
  }
  return "?";
}

std::string_view to_string(Dir d) noexcept {
  return d == Dir::kRead ? "READ" : "WRITE";
}

}  // namespace ahbp::ahb
