#pragma once

#include <sys/types.h>

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"

/// \file coordinator.hpp
/// The sweep-farm coordinator: fan a sweep out across worker *processes*.
///
/// The in-process `SweepRunner` saturates one address space; the farm is
/// the next rung.  The coordinator expands the sweep, warms the base once
/// per model (sweep::warm_snapshots — the identical code path the
/// in-process runner uses), ships one Hello per worker (base scenario +
/// embedded traces + warm snapshot bytes), and then feeds each worker
/// index-addressed points, collecting Outcome frames as they stream back.
/// Results land in `outcomes[index]`, so the merged aggregate and
/// per-point CSV are byte-identical to the in-process runner for any
/// worker count — the property tests/test_farm.cpp pins.
///
/// ## Fault tolerance
///
/// A worker's Outcome frame is its acknowledgement.  When a worker dies —
/// EOF or error on its result stream, EPIPE on its command stream — every
/// point issued to it but not yet acknowledged goes back to the head of
/// the work queue (in index order) and is re-issued to surviving workers.
/// The sweep completes with the same bytes as long as one worker survives;
/// when the last worker dies the coordinator throws instead of hanging.
///
/// Workers are spawned locally (fork, or fork+exec of `ahbp_sim
/// farm-worker` when `worker_command` is set); the protocol itself never
/// assumes a shared address space or filesystem, so promoting a worker to
/// the far end of a socket is a transport change, not a protocol change.

namespace ahbp::farm {

struct FarmOptions {
  /// Worker processes to spawn (clamped to [1, points]).
  unsigned workers = 2;

  /// Warm the base for this many cycles and fork every point from the
  /// snapshot (0 = every point runs cold).  Same exactness contract as
  /// `SweepRunner::run` with a warm base — including ForkDivergence
  /// demotion, which happens on the worker and travels back in the
  /// outcome's `demoted` flag.
  sim::Cycle warmup_cycles = 0;

  /// Points in flight per worker.  2 keeps a worker busy while its next
  /// point crosses the pipe without over-committing points to a process
  /// that may die (each death re-issues at most this many).
  std::size_t max_in_flight = 2;

  /// Non-empty: spawn each worker by fork+exec of this command line, with
  /// `--in FD --out FD` appended (the hidden `ahbp_sim farm-worker` entry
  /// point).  Empty: plain fork straight into farm::worker_loop — no exec,
  /// used by the tests and as the fallback when the binary path is
  /// unknown.
  std::vector<std::string> worker_command;

  /// Invoked after each point's outcome is merged with (done, total).
  /// Called from the coordinator's own thread — no synchronization needed.
  std::function<void(std::size_t, std::size_t)> progress;

  /// Test hook: invoked once, right after all workers are spawned, with
  /// their pids (the kill-a-worker test SIGKILLs one mid-sweep).
  std::function<void(const std::vector<pid_t>&)> on_spawn;
};

class Coordinator {
 public:
  explicit Coordinator(FarmOptions opts) : opts_(std::move(opts)) {}

  /// Expand `spec` and run every point across the farm.  Returns outcomes
  /// in expansion-index order (same shape as SweepRunner::run).  Throws
  /// scenario::ScenarioError on an invalid spec, std::runtime_error when
  /// every worker died before the sweep finished.
  std::vector<sweep::PointOutcome> run(const sweep::SweepSpec& spec,
                                       sweep::Model model) const;

 private:
  FarmOptions opts_;
};

}  // namespace ahbp::farm
