#pragma once

#include <memory>
#include <vector>

#include "ahb/types.hpp"
#include "sim/event_kernel.hpp"

/// \file signals.hpp
/// The pin-level AHB+ signal bundle.
///
/// Every wire of the bus fabric exists as a two-phase `Signal`, named after
/// its AMBA 2.0 counterpart, plus the AHB+ extensions: the request sideband
/// (each master advertises its next transaction with its HBUSREQ, enabling
/// request pipelining and the BI hint), the write-buffer handshake, and the
/// BI bundle between arbiter and DDRC.
///
/// This model pays the full pin-accurate cost on purpose: each clock edge
/// re-evaluates master/arbiter/write-buffer/DDRC processes, every signal
/// write runs the two-phase commit with subscriber wake-ups, and the
/// address/data muxes settle combinationally through delta cycles.  The
/// speed gap against the method-based TLM (paper §4) is exactly this
/// machinery.

namespace ahbp::rtl {

using sim::Signal;

/// Signals driven by one master (its private column of the fabric).
struct MasterWires {
  MasterWires(sim::EventKernel& k, unsigned i);

  Signal<bool> hbusreq;
  Signal<bool> hlock;
  // Address-phase outputs (muxed onto the shared bus when granted).
  Signal<std::uint64_t> haddr;
  Signal<std::uint8_t> htrans;
  Signal<std::uint8_t> hburst;
  /// HSIZE encodes log2(bytes per beat), up to the configured
  /// `BusConfig::data_width_bytes` (1/2/4/8; the `ahb.hsize-width` checker
  /// rule enforces the ceiling).  A beat occupies the low size_bytes lanes
  /// of HWDATA/HRDATA — the uint64 signal payload carries any legal width.
  Signal<std::uint8_t> hsize;
  Signal<std::uint8_t> hwrite;
  Signal<std::uint64_t> hwdata;
  // AHB+ request sideband: the pending transaction's descriptor, valid
  // while hbusreq is high (powers request pipelining + BI hints).
  Signal<std::uint64_t> req_addr;
  Signal<std::uint8_t> req_dir;
  Signal<std::uint8_t> req_burst;
  Signal<std::uint8_t> req_size;
  Signal<std::uint32_t> req_beats;
  // Write-buffer streaming strobe: master is pushing buffered-write data.
  Signal<bool> wbuf_stream;
};

/// Shared fabric signals (one instance per platform).
struct SharedWires {
  SharedWires(sim::EventKernel& k, unsigned masters, unsigned banks);

  // Arbiter outputs.  (Signals are identity objects pinned to kernel
  // registration, hence unique_ptr storage for the per-index wires.)
  std::vector<std::unique_ptr<Signal<bool>>> hgrant;  ///< per master (+1: WB)
  Signal<std::uint8_t> hmaster;       ///< address-phase owner
  /// Data-phase owner (AMBA's delayed HMASTER): the write-data mux must
  /// switch one accepted transfer *after* the address mux, or a handover
  /// overlapping a write's data tail would sample the new owner's HWDATA.
  Signal<std::uint8_t> hmaster_data;
  // Muxed address/control/write-data (outputs of the mux processes).
  Signal<std::uint64_t> haddr;
  Signal<std::uint8_t> htrans;
  Signal<std::uint8_t> hburst;
  Signal<std::uint8_t> hsize;
  Signal<std::uint8_t> hwrite;
  Signal<std::uint64_t> hwdata;
  // Slave (DDRC) outputs.
  Signal<bool> hready;
  Signal<std::uint8_t> hresp;
  Signal<std::uint64_t> hrdata;

  // --- write-buffer handshake ---
  std::vector<std::unique_ptr<Signal<bool>>> wbuf_take;  ///< WB absorbs m[i]
  Signal<bool> wbuf_req;                ///< WB pseudo-master request
  Signal<std::uint32_t> wbuf_occupancy;
  std::vector<std::unique_ptr<Signal<bool>>> wbuf_hazard;  ///< RAW block
  // WB drain sideband (the WB advertises its front like a master would).
  Signal<std::uint64_t> wb_req_addr;
  Signal<std::uint8_t> wb_req_burst;
  Signal<std::uint8_t> wb_req_size;
  Signal<std::uint32_t> wb_req_beats;

  // --- BI bundle (§3.4) ---
  // Downstream (arbiter -> DDRC): next transaction information, announced
  // at bus handover so the controller can prep the bank and knows the
  // burst's true length before the address phase arrives.
  Signal<bool> bi_next_valid;
  Signal<std::uint64_t> bi_next_addr;
  Signal<std::uint8_t> bi_next_burst;
  Signal<std::uint8_t> bi_next_size;
  Signal<std::uint32_t> bi_next_beats;
  Signal<bool> bi_next_write;
  // Upstream (DDRC -> arbiter): bank states / open rows / permission /
  // progress of the current transfer (for request pipelining).  With a
  // sharded DDR subsystem the bank wires span every channel,
  // channel-major: channel k's banks start at ChannelSet::bank_base(k).
  std::vector<std::unique_ptr<Signal<std::uint8_t>>> bi_bank_state;
  std::vector<std::unique_ptr<Signal<std::uint32_t>>> bi_open_row;
  Signal<std::uint32_t> bi_idle_mask;
  Signal<bool> bi_permit;
  Signal<std::uint32_t> bi_remaining;
};

/// Helpers to pack enums onto uint8 signals.
inline std::uint8_t pack(ahb::Trans t) { return static_cast<std::uint8_t>(t); }
inline std::uint8_t pack(ahb::Burst b) { return static_cast<std::uint8_t>(b); }
inline std::uint8_t pack(ahb::Size s) { return static_cast<std::uint8_t>(s); }
inline std::uint8_t pack(ahb::Dir d) { return static_cast<std::uint8_t>(d); }
inline ahb::Trans unpack_trans(std::uint8_t v) { return static_cast<ahb::Trans>(v); }
inline ahb::Burst unpack_burst(std::uint8_t v) { return static_cast<ahb::Burst>(v); }
inline ahb::Size unpack_size(std::uint8_t v) { return static_cast<ahb::Size>(v); }
inline ahb::Dir unpack_dir(std::uint8_t v) { return static_cast<ahb::Dir>(v); }

}  // namespace ahbp::rtl
