#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/platform.hpp"

/// \file spec.hpp
/// Sweep specifications: a base scenario plus axis lists whose cross
/// product is the set of configurations to run.
///
/// This is the §3.7 design-space exploration loop made declarative.  A
/// sweep file is a scenario file with one extra `[sweep]` section whose
/// keys are dotted scenario overrides (scenario::apply_key) and whose
/// values are comma-separated lists:
///
/// ```
/// base = table1/rt-1          # registry preset (or a scenario file path)
///
/// [sweep]
/// bus.write_buffer_depth = 0, 2, 4, 8
/// bus.filter_mask = 0x7f, 0x77
/// ddr.preset = ddr266, ddr400
/// ```
///
/// expands to 4 x 2 x 2 = 16 configurations.  The first axis varies
/// slowest, so expansion order — and therefore every report — is stable.

namespace ahbp::sweep {

/// One swept knob: a dotted scenario key and its candidate values.
struct Axis {
  std::string key;
  std::vector<std::string> values;
};

struct SweepSpec {
  std::string base;  ///< registry preset name or scenario file path
  core::PlatformConfig base_config;
  std::vector<Axis> axes;

  /// Number of configurations expand() will produce.
  std::size_t points() const noexcept;
};

/// One expanded configuration of the cross product.
struct SweepPoint {
  std::size_t index = 0;  ///< position in expansion order
  std::string label;      ///< "wbuf_depth=4 filter_mask=0x77"
  core::PlatformConfig config;
};

/// Parse sweep text.  `base =` may name a registry preset or a scenario
/// file path (resolved relative to the process CWD); all other sections
/// are scenario sections overriding the base.  Throws scenario::ScenarioError.
SweepSpec parse_spec(std::string_view text);

/// Parse a sweep file from disk.
SweepSpec parse_spec_file(const std::string& path);

/// Expand the cross product, first axis slowest.  A spec with no axes
/// yields the single base configuration.
std::vector<SweepPoint> expand(const SweepSpec& spec);

}  // namespace ahbp::sweep
