#!/usr/bin/env python3
"""Render the BENCH_SPEED.json throughput trajectory across git history.

Every commit that touched BENCH_SPEED.json is one sample: the committed
artifact records each model's kcycles/sec on the reference machine, so
walking the file's git history recovers how throughput moved PR over PR —
the long-term answer to "did that optimization stick".  Output is a
standalone SVG (stdlib only; no matplotlib on the CI image).

usage:
  plot_speed_trajectory.py --from-git [-o speed_trajectory.svg]
  plot_speed_trajectory.py A.json B.json ... [-o OUT.svg]

With --from-git the samples are every commit touching BENCH_SPEED.json in
first-parent order (needs a full clone: fetch-depth 0 in CI).  With
explicit paths, the files are plotted in the order given.
"""

import argparse
import json
import math
import subprocess
import sys

MODEL_COLORS = {
    "tlm": "#1f77b4",
    "rtl": "#d62728",
    "rtl_arch": "#ff7f0e",
    "tlm_single": "#2ca02c",
    "tlm_rt": "#9467bd",
    "tlm_rt_quantum": "#8c564b",
}
FALLBACK_COLORS = ["#e377c2", "#7f7f7f", "#bcbd22", "#17becf"]


def git(*argv):
    return subprocess.run(
        ["git"] + list(argv), check=True, capture_output=True, text=True
    ).stdout


def samples_from_git(path):
    """[(label, {model: kcycles_per_sec})] for every commit touching path."""
    shas = git("log", "--reverse", "--first-parent", "--format=%H",
               "--", path).split()
    out = []
    for sha in shas:
        try:
            blob = git("show", f"{sha}:{path}")
            j = json.loads(blob)
        except (subprocess.CalledProcessError, json.JSONDecodeError):
            continue  # commit deleted or broke the artifact; skip the sample
        out.append((sha[:10], extract(j)))
    return out


def extract(j):
    return {
        m: row["kcycles_per_sec"]
        for m, row in j.get("models", {}).items()
        if row.get("kcycles_per_sec", 0) > 0
    }


def samples_from_files(paths):
    out = []
    for p in paths:
        with open(p) as f:
            out.append((p, extract(json.load(f))))
    return out


def render_svg(samples, out_path):
    width, height = 860, 420
    ml, mr, mt, mb = 70, 190, 30, 60  # margins; right holds the legend
    pw, ph = width - ml - mr, height - mt - mb

    models = sorted({m for _, vals in samples for m in vals})
    lo = min(v for _, vals in samples for v in vals.values())
    hi = max(v for _, vals in samples for v in vals.values())
    # Log scale: the TLM/RTL gap is ~an order of magnitude by design.
    llo, lhi = math.log10(lo) - 0.05, math.log10(hi) + 0.05

    def x(i):
        if len(samples) == 1:
            return ml + pw / 2
        return ml + pw * i / (len(samples) - 1)

    def y(v):
        return mt + ph * (1 - (math.log10(v) - llo) / (lhi - llo))

    def color(i, m):
        return MODEL_COLORS.get(m, FALLBACK_COLORS[i % len(FALLBACK_COLORS)])

    svg = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}"'
        f' height="{height}" font-family="monospace" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        '<text x="12" y="18" font-size="13">BENCH_SPEED.json: kcycles/sec'
        ' per model, every commit touching the artifact</text>',
    ]

    # Log-decade gridlines and y labels.
    for d in range(math.floor(llo), math.ceil(lhi) + 1):
        v = 10.0 ** d
        if not (llo <= d <= lhi):
            continue
        yy = y(v)
        svg.append(f'<line x1="{ml}" y1="{yy:.1f}" x2="{ml + pw}"'
                   f' y2="{yy:.1f}" stroke="#ddd"/>')
        svg.append(f'<text x="{ml - 8}" y="{yy + 4:.1f}" text-anchor="end">'
                   f'{v:g}</text>')

    # X labels: commit short-shas, thinned to at most ~12.
    step = max(1, len(samples) // 12)
    for i, (label, _) in enumerate(samples):
        if i % step and i != len(samples) - 1:
            continue
        xx = x(i)
        svg.append(
            f'<text x="{xx:.1f}" y="{height - mb + 16}" text-anchor="end"'
            f' transform="rotate(-35 {xx:.1f} {height - mb + 16})">'
            f'{label}</text>')

    for mi, m in enumerate(models):
        pts = [(x(i), y(vals[m])) for i, (_, vals) in enumerate(samples)
               if m in vals]
        if not pts:
            continue
        poly = " ".join(f"{px:.1f},{py:.1f}" for px, py in pts)
        c = color(mi, m)
        svg.append(f'<polyline points="{poly}" fill="none" stroke="{c}"'
                   f' stroke-width="1.6"/>')
        for px, py in pts:
            svg.append(f'<circle cx="{px:.1f}" cy="{py:.1f}" r="2.6"'
                       f' fill="{c}"/>')
        ly = mt + 16 * mi
        svg.append(f'<line x1="{ml + pw + 12}" y1="{ly}" x2="{ml + pw + 36}"'
                   f' y2="{ly}" stroke="{c}" stroke-width="2"/>')
        last = next(vals[m] for _, vals in reversed(samples) if m in vals)
        svg.append(f'<text x="{ml + pw + 42}" y="{ly + 4}">{m}'
                   f' ({last:.0f})</text>')

    svg.append("</svg>")
    with open(out_path, "w") as f:
        f.write("\n".join(svg) + "\n")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("jsons", nargs="*", help="explicit artifact files")
    ap.add_argument("--from-git", action="store_true",
                    help="sample every commit touching BENCH_SPEED.json")
    ap.add_argument("--path", default="BENCH_SPEED.json",
                    help="artifact path for --from-git")
    ap.add_argument("-o", "--out", default="speed_trajectory.svg")
    args = ap.parse_args()

    if args.from_git:
        samples = samples_from_git(args.path)
    elif args.jsons:
        samples = samples_from_files(args.jsons)
    else:
        print("need --from-git or explicit json files", file=sys.stderr)
        return 2
    samples = [(label, vals) for label, vals in samples if vals]
    if not samples:
        print("no usable samples", file=sys.stderr)
        return 1
    render_svg(samples, args.out)
    models = sorted({m for _, vals in samples for m in vals})
    print(f"plot_speed_trajectory: {len(samples)} sample(s), "
          f"{len(models)} model(s) -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
