#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

/// \file json.hpp
/// A minimal streaming JSON writer, shared by every machine-readable dump
/// this repo produces (`--timeline`, `--stats-json`, BENCH_SPEED.json).
/// Comma placement is tracked per nesting level, strings are escaped, and
/// non-finite doubles degrade to 0 so the output always parses.

namespace ahbp::obs {

/// Escape `s` for inclusion inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(double d);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }

  /// key + scalar in one call.
  template <typename T>
  JsonWriter& member(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

 private:
  void comma();

  std::ostream& os_;
  /// One entry per open container: true once the first element was emitted.
  std::vector<bool> started_;
  bool after_key_ = false;
};

}  // namespace ahbp::obs
