#include "ahb/address.hpp"

#include <stdexcept>

namespace ahbp::ahb {

Addr burst_beat_addr(Addr start, Size size, Burst burst,
                     unsigned beat) noexcept {
  const Addr step = size_bytes(size);
  if (!burst_wraps(burst)) {
    return start + static_cast<Addr>(beat) * step;
  }
  // Wrapping burst: addresses wrap at the (beats * step)-byte boundary
  // containing the start address.
  const Addr total = static_cast<Addr>(burst_fixed_beats(burst)) * step;
  const Addr boundary = start & ~(total - 1);
  return boundary + ((start - boundary + static_cast<Addr>(beat) * step) %
                     total);
}

bool burst_within_1kb(Addr start, Size size, Burst burst,
                      unsigned beats) noexcept {
  constexpr Addr kBoundary = 1024;
  if (burst_wraps(burst)) {
    return true;  // wrap region is at most 16*8 = 128 bytes and aligned
  }
  if (beats == 0) {
    beats = 1;
  }
  const Addr first = start;
  const Addr last =
      start + static_cast<Addr>(beats - 1) * size_bytes(size);
  return (first / kBoundary) == (last / kBoundary);
}

BurstSequencer::BurstSequencer(Addr start, Size size, Burst burst,
                               unsigned beats) noexcept
    : start_(start), cur_(start), size_(size), burst_(burst), beats_(beats) {
  if (beats_ == 0) {
    beats_ = 1;
  }
}

void BurstSequencer::advance() noexcept {
  ++beat_;
  if (!done()) {
    cur_ = burst_beat_addr(start_, size_, burst_, beat_);
  }
}

void AddressMap::add(Region region) {
  if (region.size == 0) {
    throw std::invalid_argument("AddressMap: zero-sized region '" +
                                region.name + "'");
  }
  for (const Region& r : regions_) {
    const bool disjoint =
        region.base + region.size <= r.base || r.base + r.size <= region.base;
    if (!disjoint) {
      throw std::invalid_argument("AddressMap: region '" + region.name +
                                  "' overlaps '" + r.name + "'");
    }
  }
  regions_.push_back(std::move(region));
}

void BurstSequencer::save_state(state::StateWriter& w) const {
  w.put_u64(start_);
  w.put_u64(cur_);
  w.put_u8(static_cast<std::uint8_t>(size_));
  w.put_u8(static_cast<std::uint8_t>(burst_));
  w.put_u32(beats_);
  w.put_u32(beat_);
}

void BurstSequencer::restore_state(state::StateReader& r) {
  start_ = r.get_u64();
  cur_ = r.get_u64();
  size_ = static_cast<Size>(r.get_u8());
  burst_ = static_cast<Burst>(r.get_u8());
  beats_ = r.get_u32();
  beat_ = r.get_u32();
}

std::optional<int> AddressMap::decode(Addr a) const noexcept {
  for (const Region& r : regions_) {
    if (r.contains(a)) {
      return r.slave;
    }
  }
  return std::nullopt;
}

}  // namespace ahbp::ahb
