#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ddr/commands.hpp"
#include "ddr/geometry.hpp"
#include "ddr/timing.hpp"
#include "sim/time.hpp"

/// \file timing_checker.hpp
/// Independent DDR protocol-timing validator.
///
/// This checker re-implements the JEDEC-style rules *separately* from
/// BankEngine so the property tests can feed every command the engine
/// issues through it and catch rule drift between scheduler and rules — the
/// second assertion family of the paper's §3.5 (property checking), applied
/// to the memory side.

namespace ahbp::ddr {

struct TimingViolation {
  sim::Cycle at = 0;
  CmdKind kind = CmdKind::kNop;
  std::uint32_t bank = 0;
  std::string rule;  ///< e.g. "tRCD", "tRP", "row-not-open"
};

class TimingChecker {
 public:
  TimingChecker(const DdrTiming& timing, const Geometry& geom);

  /// Observe one command at cycle `now`.  Violations are recorded, not
  /// thrown, so a test can collect all of them.
  void observe(const Command& cmd, sim::Cycle now);

  const std::vector<TimingViolation>& violations() const noexcept {
    return violations_;
  }
  bool clean() const noexcept { return violations_.empty(); }
  std::uint64_t commands_seen() const noexcept { return seen_; }

 private:
  void fail(const Command& cmd, sim::Cycle now, std::string rule);

  struct BankHist {
    bool open = false;
    std::uint32_t row = 0;
    sim::Cycle last_activate = 0;
    bool ever_activated = false;
    sim::Cycle last_precharge_done = 0;  ///< precharge completion (t + tRP)
    sim::Cycle column_ok_at = 0;         ///< last ACTIVATE + tRCD
    sim::Cycle precharge_ok_at = 0;      ///< max(tRAS, write recovery)
  };

  DdrTiming t_;
  Geometry geom_;
  std::vector<BankHist> banks_;
  sim::Cycle last_activate_any_ = 0;
  bool any_activate_ = false;
  sim::Cycle last_column_any_ = 0;
  bool any_column_ = false;
  sim::Cycle data_busy_until_ = 0;  ///< exclusive
  sim::Cycle last_cmd_at_ = 0;
  bool any_cmd_ = false;
  sim::Cycle refresh_until_ = 0;
  std::vector<TimingViolation> violations_;
  std::uint64_t seen_ = 0;
};

}  // namespace ahbp::ddr
