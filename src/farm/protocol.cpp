#include "farm/protocol.hpp"

namespace ahbp::farm {

namespace {

/// Every message lives in one tagged section so a frame that is valid
/// snapshot-format bytes but not a farm message fails on the tag, not by
/// misreading records.  The literal tag below is what the snapshot
/// manifest (tools/snapshot_manifest.txt) records.
constexpr std::string_view kMsgTag = "farm-msg";

state::StateWriter open_msg(MsgKind kind) {
  state::StateWriter w;
  w.begin("farm-msg");
  w.put_u8(static_cast<std::uint8_t>(kind));
  return w;
}

std::vector<std::uint8_t> seal(state::StateWriter& w) {
  w.end();
  return w.finish();
}

}  // namespace

void put_result(state::StateWriter& w, const core::SimResult& r) {
  w.put_str(r.model);
  w.put_bool(r.finished);
  w.put_u64(r.cycles);
  w.put_u64(r.ran_cycles);
  w.put_u64(r.completed);
  w.put_u64(static_cast<std::uint64_t>(r.protocol_errors));
  w.put_u64(static_cast<std::uint64_t>(r.qos_warnings));
  w.put_str(r.first_violations);
  w.put_f64(r.wall_seconds);
  w.put_u64(r.kernel_activity);

  const stats::RunProfile& p = r.profile;
  w.put_u64(p.masters.size());
  for (const stats::MasterProfile& m : p.masters) {
    w.put_str(m.name);  // config-derived in-process; shipped on the wire
    m.save_state(w);
  }
  p.bus.save_state(w);
  p.write_buffer.save_state(w);
  w.put_u64(p.ddr.commands.activates);
  w.put_u64(p.ddr.commands.reads);
  w.put_u64(p.ddr.commands.writes);
  w.put_u64(p.ddr.commands.precharges);
  w.put_u64(p.ddr.commands.refreshes);
  w.put_u64(p.ddr.commands.read_beats);
  w.put_u64(p.ddr.commands.write_beats);
  w.put_u64(p.ddr.hits.row_hits);
  w.put_u64(p.ddr.hits.row_misses);
  w.put_u64(p.ddr.hits.row_conflicts);
  w.put_u64(p.ddr.hits.hint_activates);
  w.put_u64(p.ddr.hits.hint_precharges);
  w.put_u64(p.total_cycles);
  w.put_u64(p.completed_txns);
  w.put_u64(p.violation_rules.size());
  for (const auto& [rule, count] : p.violation_rules) {
    w.put_str(rule);
    w.put_u64(count);
  }
}

core::SimResult get_result(state::StateReader& r) {
  core::SimResult out;
  out.model = r.get_str();
  out.finished = r.get_bool();
  out.cycles = r.get_u64();
  out.ran_cycles = r.get_u64();
  out.completed = r.get_u64();
  out.protocol_errors = static_cast<std::size_t>(r.get_u64());
  out.qos_warnings = static_cast<std::size_t>(r.get_u64());
  out.first_violations = r.get_str();
  out.wall_seconds = r.get_f64();
  out.kernel_activity = r.get_u64();

  stats::RunProfile& p = out.profile;
  p.masters.resize(static_cast<std::size_t>(r.get_count()));
  for (stats::MasterProfile& m : p.masters) {
    m.name = r.get_str();
    m.restore_state(r);
  }
  p.bus.restore_state(r);
  p.write_buffer.restore_state(r);
  p.ddr.commands.activates = r.get_u64();
  p.ddr.commands.reads = r.get_u64();
  p.ddr.commands.writes = r.get_u64();
  p.ddr.commands.precharges = r.get_u64();
  p.ddr.commands.refreshes = r.get_u64();
  p.ddr.commands.read_beats = r.get_u64();
  p.ddr.commands.write_beats = r.get_u64();
  p.ddr.hits.row_hits = r.get_u64();
  p.ddr.hits.row_misses = r.get_u64();
  p.ddr.hits.row_conflicts = r.get_u64();
  p.ddr.hits.hint_activates = r.get_u64();
  p.ddr.hits.hint_precharges = r.get_u64();
  p.total_cycles = r.get_u64();
  p.completed_txns = r.get_u64();
  p.violation_rules.resize(static_cast<std::size_t>(r.get_count()));
  for (auto& [rule, count] : p.violation_rules) {
    rule = r.get_str();
    count = r.get_u64();
  }
  return out;
}

std::vector<std::uint8_t> encode_hello(const HelloMsg& msg) {
  state::StateWriter w = open_msg(MsgKind::kHello);
  w.put_u8(static_cast<std::uint8_t>(msg.model));
  w.put_str(msg.scenario_text);
  w.put_u64(msg.traces.size());
  for (const auto& [master, text] : msg.traces) {
    w.put_u64(master);
    w.put_str(text);
  }
  w.put_blob(msg.warm_tlm.data(), msg.warm_tlm.size());
  w.put_blob(msg.warm_rtl.data(), msg.warm_rtl.size());
  return seal(w);
}

std::vector<std::uint8_t> encode_batch(const std::vector<PointAssignment>& b) {
  state::StateWriter w = open_msg(MsgKind::kBatch);
  w.put_u64(b.size());
  for (const PointAssignment& a : b) {
    w.put_u64(a.index);
    w.put_str(a.label);
    w.put_u64(a.overrides.size());
    for (const auto& [key, value] : a.overrides) {
      w.put_str(key);
      w.put_str(value);
    }
  }
  return seal(w);
}

std::vector<std::uint8_t> encode_outcome(const sweep::PointOutcome& o) {
  state::StateWriter w = open_msg(MsgKind::kOutcome);
  w.put_u64(static_cast<std::uint64_t>(o.index));
  w.put_str(o.label);
  w.put_bool(o.demoted);
  w.put_str(o.error);
  w.put_bool(o.has_tlm);
  if (o.has_tlm) {
    put_result(w, o.tlm);
  }
  w.put_bool(o.has_rtl);
  if (o.has_rtl) {
    put_result(w, o.rtl);
  }
  return seal(w);
}

std::vector<std::uint8_t> encode_shutdown() {
  state::StateWriter w = open_msg(MsgKind::kShutdown);
  return seal(w);
}

Msg decode(const std::vector<std::uint8_t>& frame) {
  state::StateReader r(frame.data(), frame.size());
  r.enter(kMsgTag);
  const std::uint8_t kind = r.get_u8();
  Msg msg;
  switch (kind) {
    case static_cast<std::uint8_t>(MsgKind::kHello): {
      msg.kind = MsgKind::kHello;
      const std::uint8_t model = r.get_u8();
      if (model > static_cast<std::uint8_t>(sweep::Model::kBoth)) {
        throw state::StateError("farm message: unknown sweep model " +
                                std::to_string(model));
      }
      msg.hello.model = static_cast<sweep::Model>(model);
      msg.hello.scenario_text = r.get_str();
      msg.hello.traces.resize(static_cast<std::size_t>(r.get_count()));
      for (auto& [master, text] : msg.hello.traces) {
        master = r.get_u64();
        text = r.get_str();
      }
      msg.hello.warm_tlm = r.get_blob();
      msg.hello.warm_rtl = r.get_blob();
      break;
    }
    case static_cast<std::uint8_t>(MsgKind::kBatch): {
      msg.kind = MsgKind::kBatch;
      msg.batch.resize(static_cast<std::size_t>(r.get_count()));
      for (PointAssignment& a : msg.batch) {
        a.index = r.get_u64();
        a.label = r.get_str();
        a.overrides.resize(static_cast<std::size_t>(r.get_count()));
        for (auto& [key, value] : a.overrides) {
          key = r.get_str();
          value = r.get_str();
        }
      }
      break;
    }
    case static_cast<std::uint8_t>(MsgKind::kOutcome): {
      msg.kind = MsgKind::kOutcome;
      sweep::PointOutcome& o = msg.outcome;
      o.index = static_cast<std::size_t>(r.get_u64());
      o.label = r.get_str();
      o.demoted = r.get_bool();
      o.error = r.get_str();
      o.has_tlm = r.get_bool();
      if (o.has_tlm) {
        o.tlm = get_result(r);
      }
      o.has_rtl = r.get_bool();
      if (o.has_rtl) {
        o.rtl = get_result(r);
      }
      break;
    }
    case static_cast<std::uint8_t>(MsgKind::kShutdown):
      msg.kind = MsgKind::kShutdown;
      break;
    default:
      throw state::StateError("farm message: unknown kind " +
                              std::to_string(kind));
  }
  r.leave();
  r.expect_end();
  return msg;
}

}  // namespace ahbp::farm
