#include "rtl/arbiter.hpp"

#include "assertions/assert.hpp"
#include "rtl/write_buffer.hpp"

namespace ahbp::rtl {

RtlArbiter::RtlArbiter(sim::EventKernel& kernel, const ahb::BusConfig& cfg,
                       ahb::QosRegisterFile& qos, SharedWires& shared,
                       std::vector<MasterWires*> masters,
                       RtlWriteBuffer& wbuf,
                       std::vector<ddr::ChannelConfig> channels,
                       const ddr::Interleave& ilv, ahb::Addr ddr_base,
                       const sim::Cycle* now, chk::ViolationLog* qos_log)
    : cfg_(cfg),
      qos_(qos),
      sh_(shared),
      mw_(std::move(masters)),
      wbuf_(wbuf),
      channels_(std::move(channels)),
      ilv_(ilv),
      ddr_base_(ddr_base),
      now_(now),
      arbiter_(cfg, qos),
      proc_(kernel, "rtl-arbiter", [this] { at_edge(); }),
      masters_(static_cast<unsigned>(mw_.size())),
      prev_req_(masters_, false),
      take_pulse_(masters_, false),
      absorbed_wait_(masters_, false) {
  bank_base_ = ddr::bank_bases(channels_);
  if (qos_log != nullptr) {
    qos_checker_.emplace(qos_, *qos_log);
  }
}

ddr::BankAffinity RtlArbiter::wire_affinity(ahb::Addr bus_addr) const {
  const ahb::Addr off = bus_addr - ddr_base_;
  const std::uint32_t ch = ilv_.channel_of(off);
  const ddr::Coord coord = channels_[ch].geom.decode(ilv_.local_of(off));
  const std::uint32_t w = bank_base_[ch] + coord.bank;
  return ddr::bank_affinity(
      static_cast<ddr::BankState>(sh_.bi_bank_state[w]->read()),
      sh_.bi_open_row[w]->read(), coord);
}

void RtlArbiter::bind_clock(sim::Signal<bool>& clk) {
  clk.subscribe(proc_, sim::Edge::kPos);
}

ahb::Transaction RtlArbiter::txn_from_sideband(unsigned m) const {
  ahb::Transaction t;
  t.master = static_cast<ahb::MasterId>(m);
  t.addr = mw_[m]->req_addr.read();
  t.dir = unpack_dir(mw_[m]->req_dir.read());
  t.burst = unpack_burst(mw_[m]->req_burst.read());
  t.size = unpack_size(mw_[m]->req_size.read());
  t.beats = mw_[m]->req_beats.read();
  t.locked = mw_[m]->hlock.read();
  return t;
}

void RtlArbiter::track_requests(sim::Cycle now) {
  for (unsigned m = 0; m < masters_; ++m) {
    const bool r = mw_[m]->hbusreq.read();
    if (absorbed_wait_[m]) {
      // Taken by the write buffer; wait for the master to drop HBUSREQ so
      // the stale high cannot be double-served.
      if (!r) {
        absorbed_wait_[m] = false;
      }
    } else if (r && !prev_req_[m]) {
      arbiter_.on_request(static_cast<ahb::MasterId>(m), now);
    }
    prev_req_[m] = r;
  }
  // Deassert last edge's take pulses (one-cycle strobes).
  for (unsigned m = 0; m < masters_; ++m) {
    if (take_pulse_[m]) {
      sh_.wbuf_take[m]->write(false);
      take_pulse_[m] = false;
    }
  }
}

void RtlArbiter::track_transfer_progress() {
  const auto tr_any = unpack_trans(sh_.htrans.read());
  const bool hr_any = sh_.hready.read();
  // Delayed data-phase owner (HMASTERD): every accepted address phase
  // hands its data phase to the owner that presented it.
  if (hr_any &&
      (tr_any == ahb::Trans::kNonSeq || tr_any == ahb::Trans::kSeq)) {
    sh_.hmaster_data.write(sh_.hmaster.read());
  }
  if (!owner_active_) {
    return;
  }
  const auto tr = tr_any;
  const bool hr = hr_any;
  if (hr && (tr == ahb::Trans::kNonSeq || tr == ahb::Trans::kSeq)) {
    ++owner_addr_accepted_;
    if (owner_addr_accepted_ >= owner_beats_) {
      owner_active_ = false;  // address bus free; data tail may continue
    }
  }
  // Robustness: an owner driving IDLE after its first address phase has
  // finished presenting (early burst end) — release the address bus even
  // if the announced beat count was stale.
  if (owner_active_ && owner_addr_accepted_ > 0 && tr == ahb::Trans::kIdle) {
    owner_active_ = false;
  }
}

void RtlArbiter::do_handover(sim::Cycle now) {
  (void)now;
  if (!pending_ || owner_active_) {
    return;
  }
  sh_.hmaster.write(static_cast<std::uint8_t>(pending_master_));
  for (unsigned i = 0; i < sh_.hgrant.size(); ++i) {
    sh_.hgrant[i]->write(i == pending_master_);
  }
  grant_pulse_ = true;
  grant_pulse_master_ = pending_master_;
  // BI announce (§3.4): the DDRC learns the upcoming transaction — its
  // target (for bank prep) and its true burst length (INCR carries no
  // length on the AHB control signals).
  sh_.bi_next_valid.write(true);
  sh_.bi_next_addr.write(pending_txn_.addr);
  sh_.bi_next_burst.write(pack(pending_txn_.burst));
  sh_.bi_next_size.write(pack(pending_txn_.size));
  sh_.bi_next_beats.write(pending_txn_.beats);
  sh_.bi_next_write.write(pending_txn_.dir == ahb::Dir::kWrite);

  owner_active_ = true;
  owner_ = pending_master_;
  owner_beats_ = pending_txn_.beats;
  owner_addr_accepted_ = 0;
  owner_locked_ = pending_txn_.locked;
  pending_ = false;
  ++handovers_;
}

void RtlArbiter::do_arbitration(sim::Cycle now) {
  if (pending_) {
    return;
  }
  // Request pipelining window: overlap arbitration only with the tail of
  // the current transfer (<= 2 outstanding beats), as the TLM does.
  const unsigned effective_remaining =
      owner_active_ ? owner_beats_ - owner_addr_accepted_ + 1
                    : sh_.bi_remaining.read();
  if (effective_remaining > 2) {
    return;
  }
  if (!sh_.bi_permit.read()) {
    return;
  }

  tlm::ArbContext ctx;
  ctx.now = now;
  ctx.cfg = &cfg_;
  ctx.qos = &qos_;
  ctx.masters = masters_;
  ctx.candidates.resize(masters_ + 1);
  bool any_hazard = false;
  for (unsigned m = 0; m < masters_; ++m) {
    tlm::ArbCandidate& c = ctx.candidates[m];
    if (!qos_.state(static_cast<ahb::MasterId>(m)).requesting ||
        absorbed_wait_[m]) {
      continue;
    }
    const ahb::Transaction t = txn_from_sideband(m);
    c.requesting = true;
    c.is_write = t.dir == ahb::Dir::kWrite;
    c.locked = t.locked;
    c.beats = t.beats;
    if (cfg_.bi_hints_enabled && t.addr >= ddr_base_) {
      c.affinity = wire_affinity(t.addr);
    }
    if (wbuf_.overlaps(t.addr, t.addr + t.bytes())) {
      c.blocked_by_hazard = true;
      wbuf_.flag_hazard();
      any_hazard = true;
      if (t.dir == ahb::Dir::kRead) {
        wbuf_.fifo().count_forward();
      }
    }
  }
  tlm::ArbCandidate& wc = ctx.candidates[masters_];
  wc.requesting = wbuf_.drain_requesting();
  if (wc.requesting) {
    wc.is_write = true;
    wc.beats = sh_.wb_req_beats.read();
    if (cfg_.bi_hints_enabled) {
      const ahb::Addr a = sh_.wb_req_addr.read();
      if (a >= ddr_base_) {
        wc.affinity = wire_affinity(a);
      }
    }
  }
  ctx.wbuf_urgent = wbuf_.urgent();
  // Lock: the owner holds the bus while its locked transfer is active.
  if (owner_locked_ && (owner_active_ || sh_.bi_remaining.read() > 0)) {
    ctx.lock_owner = owner_;
  }
  wbuf_.clear_hazard_if_unneeded(any_hazard);

  const auto grant = arbiter_.arbitrate(ctx);
  if (!grant) {
    return;
  }
  pending_ = true;
  pending_master_ = grant->master;
  if (grant->is_wbuf) {
    wbuf_.note_grant();
    pending_txn_ = ahb::Transaction{};
    pending_txn_.master = static_cast<ahb::MasterId>(masters_);
    pending_txn_.dir = ahb::Dir::kWrite;
    pending_txn_.addr = sh_.wb_req_addr.read();
    pending_txn_.burst = unpack_burst(sh_.wb_req_burst.read());
    pending_txn_.size = unpack_size(sh_.wb_req_size.read());
    pending_txn_.beats = sh_.wb_req_beats.read();
  } else {
    pending_txn_ = txn_from_sideband(grant->master);
    if (qos_checker_) {
      qos_checker_->on_grant(grant->master, grant->waited, now);
    }
    if (qos_.config(grant->master).cls == ahb::MasterClass::kRealTime &&
        grant->waited > qos_.config(grant->master).objective) {
      ++qos_.state(grant->master).qos_misses;
    }
  }
}

void RtlArbiter::do_takes(sim::Cycle now) {
  (void)now;  // takes are decided on sampled wires; kept for symmetry
  if (!cfg_.write_buffer_enabled) {
    return;
  }
  for (unsigned m = 0; m < masters_; ++m) {
    if (!qos_.state(static_cast<ahb::MasterId>(m)).requesting ||
        absorbed_wait_[m]) {
      continue;
    }
    if (unpack_dir(mw_[m]->req_dir.read()) != ahb::Dir::kWrite) {
      continue;
    }
    if (pending_ && pending_master_ == m) {
      wbuf_.fifo().count_bypass();
      continue;
    }
    // Do not absorb a write overlapping a granted read that has not yet
    // presented its first address phase (it would read stale memory).
    const bool read_grant_in_flight =
        (pending_ || (owner_active_ && owner_addr_accepted_ == 0)) &&
        pending_txn_.dir == ahb::Dir::kRead &&
        pending_txn_.master != static_cast<ahb::MasterId>(masters_);
    if (read_grant_in_flight) {
      const ahb::Transaction t = txn_from_sideband(m);
      const bool overlap = t.addr < pending_txn_.addr + pending_txn_.bytes() &&
                           pending_txn_.addr < t.addr + t.bytes();
      if (overlap) {
        continue;
      }
    }
    if (!wbuf_.can_reserve()) {
      wbuf_.fifo().count_full_stall();
      continue;
    }
    ahb::Transaction t = txn_from_sideband(m);
    wbuf_.reserve(m, t);
    sh_.wbuf_take[m]->write(true);
    take_pulse_[m] = true;
    absorbed_wait_[m] = true;
    qos_.state(static_cast<ahb::MasterId>(m)).requesting = false;
  }
}

std::string RtlArbiter::debug_string() const {
  std::string s = "arbiter{";
  s += pending_ ? "pending=" + std::to_string(pending_master_) : "no-pending";
  s += owner_active_ ? " owner=" + std::to_string(owner_) + " acc=" +
                           std::to_string(owner_addr_accepted_) + "/" +
                           std::to_string(owner_beats_)
                     : " no-owner";
  for (unsigned m = 0; m < masters_; ++m) {
    s += " m" + std::to_string(m) + "(req=" +
         (qos_.state(static_cast<ahb::MasterId>(m)).requesting ? "1" : "0") +
         ",abs=" + (absorbed_wait_[m] ? "1" : "0") + ")";
  }
  s += "}";
  return s;
}

void RtlArbiter::at_edge() {
  const sim::Cycle now = *now_;
  arbiter_.tick(now);
  // Close last edge's grant pulse before anything else: HGRANT is valid
  // for exactly one cycle so a parked grant cannot be reused.
  if (grant_pulse_) {
    sh_.hgrant[grant_pulse_master_]->write(false);
    grant_pulse_ = false;
  }
  track_requests(now);
  track_transfer_progress();
  do_handover(now);
  do_arbitration(now);
  do_takes(now);
  // A grant issued this edge hands over immediately when the address bus
  // is already free (combinational handover off a registered grant).
  do_handover(now);
}

void RtlArbiter::save_state(state::StateWriter& w) const {
  w.begin("rtl-arbiter");
  arbiter_.save_state(w);
  w.put_bool(qos_checker_.has_value());
  if (qos_checker_) {
    qos_checker_->save_state(w);
  }
  const auto save_flags = [&w](const std::vector<bool>& v) {
    w.put_u64(v.size());
    for (const bool b : v) {
      w.put_bool(b);
    }
  };
  save_flags(prev_req_);
  save_flags(take_pulse_);
  save_flags(absorbed_wait_);
  w.put_bool(pending_);
  w.put_u8(pending_master_);
  ahb::save_state(w, pending_txn_);
  w.put_bool(grant_pulse_);
  w.put_u8(grant_pulse_master_);
  w.put_bool(owner_active_);
  w.put_u8(owner_);
  w.put_u32(owner_beats_);
  w.put_u32(owner_addr_accepted_);
  w.put_bool(owner_locked_);
  w.put_u64(handovers_);
  w.end();
}

void RtlArbiter::restore_state(state::StateReader& r) {
  r.enter("rtl-arbiter");
  arbiter_.restore_state(r);
  state::expect_presence_match(r.get_bool(), qos_checker_.has_value(),
                               "RtlArbiter QoS checkers");
  if (qos_checker_) {
    qos_checker_->restore_state(r);
  }
  const auto restore_flags = [&r](std::vector<bool>& v, const char* what) {
    if (r.get_u64() != v.size()) {
      throw state::StateError(std::string("RtlArbiter: ") + what +
                              " width mismatch");
    }
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = r.get_bool();
    }
  };
  restore_flags(prev_req_, "prev_req");
  restore_flags(take_pulse_, "take_pulse");
  restore_flags(absorbed_wait_, "absorbed_wait");
  pending_ = r.get_bool();
  pending_master_ = r.get_u8();
  ahb::restore_state(r, pending_txn_);
  grant_pulse_ = r.get_bool();
  grant_pulse_master_ = r.get_u8();
  owner_active_ = r.get_bool();
  owner_ = r.get_u8();
  owner_beats_ = r.get_u32();
  owner_addr_accepted_ = r.get_u32();
  owner_locked_ = r.get_bool();
  handovers_ = r.get_u64();
  r.leave();
}

}  // namespace ahbp::rtl
