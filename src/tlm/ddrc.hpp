#pragma once

#include <optional>

#include "ahb/transaction.hpp"
#include "ddr/scheduler.hpp"
#include "sim/time.hpp"
#include "tlm/bi.hpp"

/// \file ddrc.hpp
/// Transaction-level DDR controller (§3.3): wraps the shared DdrcEngine
/// behind the AHB+ slave-side method interface and the BI exchange.
///
/// The wrapper is deliberately thin — the controller FSM lives in
/// ddr::DdrcEngine so the signal-level model shares it — but it is the
/// component boundary the paper describes ("AHB+ and DDRC are interfaced
/// with a special protocol called BI"), and the TLM bus only ever talks
/// through this interface.

namespace ahbp::tlm {

class TlmDdrc {
 public:
  TlmDdrc(const ddr::DdrTiming& timing, const ddr::Geometry& geom,
          ahb::Addr region_base)
      : engine_(timing, geom), base_(region_base) {}

  /// --- BI exchange (once per cycle, §3.4) ---

  /// Arbiter -> DDRC: next transaction information.
  void bi_downstream(const BiDownstream& down) {
    engine_.set_hint(down.next_coord);
  }

  /// DDRC -> arbiter: idle banks and access permission.
  BiUpstream bi_upstream(sim::Cycle now) const {
    return BiUpstream{engine_.idle_bank_mask(now),
                      engine_.access_permitted(now)};
  }

  /// Bank affinity for a bus address (BI: arbiter evaluates candidates).
  ddr::BankAffinity affinity(ahb::Addr bus_addr, sim::Cycle now) const {
    return engine_.affinity_for(offset(bus_addr), now);
  }

  /// --- AHB slave side ---

  bool busy() const noexcept { return engine_.busy(); }

  /// Present the address phase of a transaction (NONSEQ cycle).
  void begin(const ahb::Transaction& t, sim::Cycle now);

  /// Advance the controller one cycle (issues at most one DRAM command).
  ddr::Command step(sim::Cycle now) { return engine_.step(now); }

  bool read_beat_available(sim::Cycle now) const {
    return engine_.read_beat_available(now);
  }
  ahb::Word take_read_beat(sim::Cycle now) {
    return engine_.take_read_beat(now);
  }
  bool write_beat_ready(sim::Cycle now) const {
    return engine_.write_beat_ready(now);
  }
  void put_write_beat(sim::Cycle now, ahb::Word w) {
    engine_.put_write_beat(now, w);
  }

  bool done() const noexcept { return engine_.done(); }
  void finish() { engine_.finish(); }

  /// Coordinates of a bus address (for BI downstream hints).
  ddr::Coord coord_of(ahb::Addr bus_addr) const {
    return engine_.geometry().decode(offset(bus_addr));
  }

  const ddr::DdrcEngine& engine() const noexcept { return engine_; }
  ddr::DdrcEngine& engine() noexcept { return engine_; }

 private:
  ahb::Addr offset(ahb::Addr bus_addr) const noexcept {
    return bus_addr - base_;
  }

  ddr::DdrcEngine engine_;
  ahb::Addr base_;
};

}  // namespace ahbp::tlm
