// Parallel sweep throughput: how fast the design-space exploration loop
// spins when independent simulations fan out across a std::thread pool.
// The paper's speed argument (§4) is per-run; this bench tracks the batch
// dimension — runs/sec at 1, 4 and hardware-concurrency workers — and
// writes BENCH_SWEEP.json so the perf trajectory can follow parallel
// scaling across PRs.
//
// Usage: bench_sweep [items-per-master] [repeats]

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "scenario/registry.hpp"
#include "stats/report.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"

int main(int argc, char** argv) {
  using namespace ahbp;
  const unsigned items =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 120;
  const unsigned repeats =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 3;

  // A realistic exploration batch: write-buffer depth x bank filter over
  // the rt-1 Table-1 mix = 8 independent TLM runs per sweep.
  sweep::SweepSpec spec;
  spec.base = "table1/rt-1";
  spec.base_config =
      scenario::ScenarioRegistry::builtin().build("table1/rt-1", items, 7);
  spec.axes.push_back({"bus.write_buffer_depth", {"0", "2", "4", "8"}});
  spec.axes.push_back({"bus.filter_mask", {"0x7f", "0x77"}});
  const auto points = sweep::expand(spec);

  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    hw = 1;
  }
  std::vector<unsigned> job_counts{1, 4, hw};

  std::cout << "=== Sweep throughput: " << points.size()
            << " TLM runs/sweep, " << items << " txns/master, best of "
            << repeats << " ===\n\n";

  stats::TextTable table(
      {"jobs", "sweep wall s", "runs/sec", "speedup vs 1 job"});
  std::vector<double> runs_per_sec(job_counts.size(), 0.0);

  double base_rps = 0.0;
  for (std::size_t j = 0; j < job_counts.size(); ++j) {
    const sweep::SweepRunner runner(job_counts[j]);
    double best = 1e300;
    for (unsigned rep = 0; rep < repeats; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto outcomes = runner.run(points, sweep::Model::kTlm);
      const auto t1 = std::chrono::steady_clock::now();
      for (const auto& o : outcomes) {
        if (!o.error.empty() || !o.tlm.finished) {
          std::cerr << "run " << o.index << " failed\n";
          return 1;
        }
      }
      best = std::min(best,
                      std::chrono::duration<double>(t1 - t0).count());
    }
    runs_per_sec[j] = static_cast<double>(points.size()) / best;
    if (j == 0) {
      base_rps = runs_per_sec[j];
    }
    table.add_row({std::to_string(job_counts[j]),
                   stats::fmt_double(best, 3),
                   stats::fmt_double(runs_per_sec[j], 1),
                   stats::fmt_double(runs_per_sec[j] / base_rps, 2) + "x"});
  }

  table.print(std::cout);
  std::cout << "\n(hardware concurrency: " << hw << ")\n";

  std::ofstream json("BENCH_SWEEP.json");
  if (json) {
    json << "{\n  \"bench\": \"sweep_throughput\",\n  \"runs_per_sweep\": "
         << points.size() << ",\n  \"items_per_master\": " << items
         << ",\n  \"results\": [\n";
    for (std::size_t j = 0; j < job_counts.size(); ++j) {
      json << "    {\"jobs\": " << job_counts[j] << ", \"runs_per_sec\": "
           << stats::fmt_double(runs_per_sec[j], 2) << "}"
           << (j + 1 < job_counts.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "wrote BENCH_SWEEP.json\n";
  }
  return 0;
}
