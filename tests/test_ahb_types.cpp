// Unit tests for the AMBA 2.0 protocol vocabulary.

#include <gtest/gtest.h>

#include "ahb/types.hpp"

namespace {

using namespace ahbp::ahb;

TEST(BurstBeats, FixedLengths) {
  EXPECT_EQ(burst_fixed_beats(Burst::kSingle), 1u);
  EXPECT_EQ(burst_fixed_beats(Burst::kWrap4), 4u);
  EXPECT_EQ(burst_fixed_beats(Burst::kIncr4), 4u);
  EXPECT_EQ(burst_fixed_beats(Burst::kWrap8), 8u);
  EXPECT_EQ(burst_fixed_beats(Burst::kIncr8), 8u);
  EXPECT_EQ(burst_fixed_beats(Burst::kWrap16), 16u);
  EXPECT_EQ(burst_fixed_beats(Burst::kIncr16), 16u);
}

TEST(BurstBeats, IncrIsUndefinedLength) {
  EXPECT_EQ(burst_fixed_beats(Burst::kIncr), 0u);
}

TEST(BurstWraps, OnlyWrapKinds) {
  EXPECT_TRUE(burst_wraps(Burst::kWrap4));
  EXPECT_TRUE(burst_wraps(Burst::kWrap8));
  EXPECT_TRUE(burst_wraps(Burst::kWrap16));
  EXPECT_FALSE(burst_wraps(Burst::kSingle));
  EXPECT_FALSE(burst_wraps(Burst::kIncr));
  EXPECT_FALSE(burst_wraps(Burst::kIncr4));
  EXPECT_FALSE(burst_wraps(Burst::kIncr8));
  EXPECT_FALSE(burst_wraps(Burst::kIncr16));
}

TEST(SizeBytes, PowersOfTwo) {
  EXPECT_EQ(size_bytes(Size::kByte), 1u);
  EXPECT_EQ(size_bytes(Size::kHalf), 2u);
  EXPECT_EQ(size_bytes(Size::kWord), 4u);
  EXPECT_EQ(size_bytes(Size::kDword), 8u);
}

TEST(IncrBurstFor, MatchesArchitecturalKinds) {
  EXPECT_EQ(incr_burst_for(1), Burst::kSingle);
  EXPECT_EQ(incr_burst_for(4), Burst::kIncr4);
  EXPECT_EQ(incr_burst_for(8), Burst::kIncr8);
  EXPECT_EQ(incr_burst_for(16), Burst::kIncr16);
  EXPECT_EQ(incr_burst_for(3), Burst::kIncr);
  EXPECT_EQ(incr_burst_for(100), Burst::kIncr);
}

TEST(ToString, AllEnumsNamed) {
  EXPECT_EQ(to_string(Trans::kIdle), "IDLE");
  EXPECT_EQ(to_string(Trans::kBusy), "BUSY");
  EXPECT_EQ(to_string(Trans::kNonSeq), "NONSEQ");
  EXPECT_EQ(to_string(Trans::kSeq), "SEQ");
  EXPECT_EQ(to_string(Burst::kWrap8), "WRAP8");
  EXPECT_EQ(to_string(Burst::kIncr), "INCR");
  EXPECT_EQ(to_string(Size::kWord), "WORD");
  EXPECT_EQ(to_string(Resp::kOkay), "OKAY");
  EXPECT_EQ(to_string(Resp::kSplit), "SPLIT");
  EXPECT_EQ(to_string(Dir::kRead), "READ");
  EXPECT_EQ(to_string(Dir::kWrite), "WRITE");
}

TEST(Constants, NoMasterSentinel) {
  EXPECT_EQ(kNoMaster, 0xFF);
}

}  // namespace
