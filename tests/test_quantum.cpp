// Temporal decoupling correctness — the quantum knob's contract is that it
// changes *speed only*: for every registry preset and every quantum, cycle
// counts, retired transactions, per-master stall attribution, and every
// other simulated statistic must be bit-identical to classic cycle-by-cycle
// stepping.  Also pins checkpoint-at-mid-quantum restore equivalence and
// the parallel DDR channel stepping determinism (sim.ddr_threads), which
// carries the same results-independent contract.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/checkpoint.hpp"
#include "core/platform.hpp"
#include "scenario/registry.hpp"
#include "state/snapshot.hpp"

namespace {

using namespace ahbp;

/// Canonical form of a run outcome: the full stats JSON (cycle counts,
/// completions, per-master stall attribution, violations) with the
/// host-time fields zeroed.  kernel_activity counts component evaluations,
/// which quantum batching legitimately reduces — everything else must
/// match bit for bit.
std::string canonical(core::SimResult r) {
  r.wall_seconds = 0.0;
  r.kernel_activity = 0;
  std::ostringstream os;
  core::write_stats_json(os, r);
  return os.str();
}

std::string run_canonical(core::PlatformConfig cfg, sim::Cycle quantum,
                          unsigned ddr_threads = 1) {
  cfg.sim.quantum = quantum;
  cfg.sim.ddr_threads = ddr_threads;
  return canonical(core::run_tlm(cfg));
}

TEST(Quantum, BitExactAcrossAllPresetsAndQuanta) {
  const auto& reg = scenario::ScenarioRegistry::builtin();
  ASSERT_GE(reg.entries().size(), 17u);
  for (const auto& info : reg.entries()) {
    SCOPED_TRACE(info.name);
    const auto cfg = reg.build(info.name, /*items=*/60);
    const std::string baseline = run_canonical(cfg, 1);
    for (sim::Cycle q : {sim::Cycle{8}, sim::Cycle{64}, sim::Cycle{1024}}) {
      SCOPED_TRACE("quantum=" + std::to_string(q));
      EXPECT_EQ(baseline, run_canonical(cfg, q));
    }
  }
}

TEST(Quantum, CheckpointMidQuantumRestoresBitExact) {
  // rt-1 is idle-heavy, so at quantum=64 the platform spends most of its
  // time mid-leap; a checkpoint quota of 5003 cycles (prime, nowhere near
  // a quantum boundary) forces the save to land inside a batched stretch.
  const auto& reg = scenario::ScenarioRegistry::builtin();
  auto cfg = reg.build("table1/rt-1", /*items=*/120);
  cfg.sim.quantum = 64;

  const std::string straight = canonical(core::run_tlm(cfg));

  core::Platform warm(cfg, core::ModelKind::kTlm);
  state::StateWriter w;
  warm.checkpoint_at(5003, w);
  ASSERT_EQ(warm.now(), 5003u);
  const auto bytes = w.finish();

  core::Platform fork(cfg, core::ModelKind::kTlm);
  state::StateReader r(bytes.data(), bytes.size());
  fork.restore_state(r);
  ASSERT_EQ(fork.now(), 5003u);
  fork.run_to_completion();
  EXPECT_EQ(straight, canonical(fork.result()));

  // And the resumed run must also equal the quantum=1 ground truth.
  auto q1 = cfg;
  q1.sim.quantum = 1;
  EXPECT_EQ(canonical(core::run_tlm(q1)), canonical(fork.result()));
}

TEST(Quantum, ResumeUnderDifferentQuantumIsBitExact) {
  // The quantum is a tunable, not structure: a snapshot taken at
  // quantum=1 must resume bit-exactly under quantum=256 and vice versa.
  const auto& reg = scenario::ScenarioRegistry::builtin();
  auto cfg = reg.build("table1/cpu-1", /*items=*/100);

  const std::string straight = canonical(core::run_tlm(cfg));

  core::Platform warm(cfg, core::ModelKind::kTlm);
  state::StateWriter w;
  warm.checkpoint_at(3001, w);
  const auto bytes = w.finish();

  auto resumed_cfg = cfg;
  resumed_cfg.sim.quantum = 256;
  core::Platform fork(resumed_cfg, core::ModelKind::kTlm);
  state::StateReader r(bytes.data(), bytes.size());
  fork.restore_state(r);
  fork.run_to_completion();
  EXPECT_EQ(straight, canonical(fork.result()));
}

TEST(Quantum, DdrThreadsAreResultsInvariant) {
  // Parallel channel stepping: independent DdrcEngines stepped by a worker
  // pool with command merge on the calling thread in channel order.  Every
  // thread count must produce byte-identical statistics; this test is part
  // of the TSan CI matrix, which additionally proves the barrier is
  // race-free.
  const auto& reg = scenario::ScenarioRegistry::builtin();
  auto cfg = reg.build("table1/dma-1", /*items=*/80);
  cfg.interleave.channels = 4;

  const std::string baseline = run_canonical(cfg, 1, 1);
  for (unsigned threads : {2u, 4u}) {
    SCOPED_TRACE("ddr_threads=" + std::to_string(threads));
    EXPECT_EQ(baseline, run_canonical(cfg, 1, threads));
  }
  // Threads and quantum compose.
  EXPECT_EQ(baseline, run_canonical(cfg, 64, 4));
}

}  // namespace
