// Ablation B — write buffer depth (§3.3, §3.7 "write buffer depth" /
// "write buffer on/off").  The paper's write buffer exists "for the
// purpose of processing write transactions more speedy and efficiently";
// this bench sweeps depth 0 (off) through 16 on a write-heavy mix and
// reports write latency, absorption rate and total runtime.

#include <cstdlib>
#include <iostream>

#include "core/platform.hpp"
#include "core/workloads.hpp"
#include "stats/report.hpp"

int main(int argc, char** argv) {
  using namespace ahbp;
  const unsigned items =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 300;

  std::cout << "=== Ablation B: write buffer depth sweep (TLM, streaming-"
               "write DMA mix, "
            << items << " txns/master) ===\n\n"
            << "    (the buffer targets posted streaming writes — writes"
               " that are re-read\n     immediately serialize on the RAW"
               " hazard instead and gain nothing)\n\n";

  // Streaming writes (DMA copy loops): write cursors march forward, reads
  // come from disjoint halves, so drains never block dependent reads.
  auto base = core::table1_workloads(items, 5)[5].config;  // dma-2
  for (auto& m : base.masters) {
    if (m.traffic.kind == traffic::PatternKind::kCpu ||
        m.traffic.kind == traffic::PatternKind::kRandom) {
      m.traffic.read_ratio = 0.9;  // keep the non-DMA masters read-mostly
    }
  }

  stats::TextTable t({"depth", "cycles", "wr lat avg", "wr lat max",
                      "absorbed", "full stalls", "util"});
  sim::Cycle cycles_off = 0, cycles_deep = 0;
  for (const unsigned depth : {0u, 1u, 2u, 4u, 8u, 16u}) {
    auto cfg = base;
    cfg.bus.write_buffer_enabled = depth > 0;
    cfg.bus.write_buffer_depth = depth;
    const auto r = core::run_tlm(cfg);
    // Aggregate write latency over all masters.
    stats::Summary lat;
    for (const auto& m : r.profile.masters) {
      if (m.latency.summary().count() > 0) {
        // grant_wait/latency histograms mix reads and writes; use the
        // buffered-write count + latency summary as the sweep signal.
        lat.add(static_cast<std::uint64_t>(m.latency.summary().mean()));
      }
    }
    if (depth == 0) {
      cycles_off = r.cycles;
    }
    if (depth == 16) {
      cycles_deep = r.cycles;
    }
    t.add_row({depth == 0 ? "off" : std::to_string(depth),
               std::to_string(r.cycles), stats::fmt_double(lat.mean(), 1),
               std::to_string(lat.max()),
               std::to_string(r.profile.write_buffer.absorbed),
               std::to_string(r.profile.write_buffer.full_stalls),
               stats::fmt_percent(r.profile.bus.utilization())});
  }
  t.print(std::cout);

  std::cout << "\nexpected shape: enabling the buffer cuts write latency and"
               " total cycles;\nreturns diminish once the depth covers the"
               " drain bandwidth (paper §3.3).\n";
  const bool ok = cycles_deep < cycles_off;
  std::cout << "\nRESULT: " << (ok ? "OK" : "FAIL") << " (depth-16 runtime "
            << cycles_deep << " < buffer-off runtime " << cycles_off << ")\n";
  return ok ? 0 : 1;
}
