#include "traffic/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ahbp::traffic {

std::string burst_token(ahb::Burst b) {
  return std::string(ahb::to_string(b));
}

ahb::Burst parse_burst(const std::string& token) {
  static constexpr ahb::Burst kAll[] = {
      ahb::Burst::kSingle, ahb::Burst::kIncr,   ahb::Burst::kWrap4,
      ahb::Burst::kIncr4,  ahb::Burst::kWrap8,  ahb::Burst::kIncr8,
      ahb::Burst::kWrap16, ahb::Burst::kIncr16,
  };
  for (const ahb::Burst b : kAll) {
    if (token == ahb::to_string(b)) {
      return b;
    }
  }
  throw std::runtime_error("unknown burst kind '" + token + "'");
}

namespace {

ahb::Size size_from_bytes(unsigned bytes) {
  if (!ahb::valid_beat_bytes(bytes)) {
    throw std::runtime_error("size must be 1/2/4/8 bytes");
  }
  return ahb::size_for_bytes(bytes);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream ls(line);
  std::string tok;
  while (ls >> tok) {
    out.push_back(std::move(tok));
  }
  return out;
}

std::uint64_t parse_dec(const std::string& tok, const char* what,
                        std::uint64_t max = ~std::uint64_t{0}) {
  if (tok.empty() || tok.find_first_not_of("0123456789") != std::string::npos) {
    throw std::runtime_error(std::string(what) + " must be a non-negative"
                             " decimal number, got '" + tok + "'");
  }
  try {
    const std::uint64_t out = std::stoull(tok);
    if (out > max) {
      throw std::out_of_range(tok);
    }
    return out;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string(what) + " out of range: '" + tok +
                             "'");
  }
}

/// Hex field (addresses, write data): bare hex or 0x/0X-prefixed.
std::uint64_t parse_hex(const std::string& tok, const char* what) {
  if (tok.empty() || tok[0] == '-' || tok[0] == '+') {
    // stoull would silently wrap a signed token to a huge value.
    throw std::runtime_error(std::string(what) + " must be hex, got '" + tok +
                             "'");
  }
  std::size_t pos = 0;
  std::uint64_t out = 0;
  try {
    out = std::stoull(tok, &pos, 16);  // base 16 itself skips a 0x prefix
  } catch (const std::exception&) {
    throw std::runtime_error(std::string(what) + " must be hex, got '" + tok +
                             "'");
  }
  if (pos != tok.size()) {
    throw std::runtime_error(std::string(what) + " must be hex, got '" + tok +
                             "'");
  }
  return out;
}

}  // namespace

namespace {

/// Pin the caller's stream to default formatting for the duration of
/// save_trace and restore it afterwards — including on exception paths.
/// A caller stream carrying uppercase/showbase/fill/width state would
/// otherwise corrupt the emitted hex fields ("0XDE" parses back as
/// garbage, a nonzero width pads the first field with fill characters),
/// and the hex/dec toggling inside the writer must never leak back out.
class StreamStateGuard {
 public:
  explicit StreamStateGuard(std::ostream& os)
      : os_(os), flags_(os.flags()), fill_(os.fill()), width_(os.width()) {
    os_.flags(std::ios_base::dec | std::ios_base::skipws);
    os_.fill(' ');
    os_.width(0);
  }
  ~StreamStateGuard() {
    os_.flags(flags_);
    os_.fill(fill_);
    os_.width(width_);
  }
  StreamStateGuard(const StreamStateGuard&) = delete;
  StreamStateGuard& operator=(const StreamStateGuard&) = delete;

 private:
  std::ostream& os_;
  std::ios_base::fmtflags flags_;
  char fill_;
  std::streamsize width_;
};

}  // namespace

std::size_t save_trace(std::ostream& os, const Script& script) {
  const StreamStateGuard guard(os);
  os << "# ahbp trace v1: gap dir addr size burst beats [data...]\n";
  for (const TrafficItem& item : script) {
    const ahb::Transaction& t = item.txn;
    os << item.gap << ' ' << (t.dir == ahb::Dir::kRead ? 'R' : 'W') << ' '
       << std::hex << t.addr << std::dec << ' ' << ahb::size_bytes(t.size)
       << ' ' << burst_token(t.burst) << ' ' << t.beats;
    if (t.dir == ahb::Dir::kWrite) {
      os << std::hex;
      for (unsigned b = 0; b < t.beats; ++b) {
        os << ' ' << t.data[b];
      }
      os << std::dec;
    }
    os << '\n';
  }
  return script.size();
}

Script load_trace(std::istream& is, ahb::MasterId master) {
  Script script;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    const std::vector<std::string> tok = tokenize(line);
    if (tok.empty()) {
      continue;  // blank / comment-only line
    }
    try {
      if (tok.size() < 6) {
        throw std::runtime_error(
            "malformed entry (need: gap dir addr size burst beats"
            " [data...])");
      }
      TrafficItem item;
      ahb::Transaction& t = item.txn;
      item.gap = parse_dec(tok[0], "gap");
      if (tok[1] == "R") {
        t.dir = ahb::Dir::kRead;
      } else if (tok[1] == "W") {
        t.dir = ahb::Dir::kWrite;
      } else {
        throw std::runtime_error("dir must be R or W, got '" + tok[1] + "'");
      }
      t.addr = parse_hex(tok[2], "address");
      // Explicit ceilings before narrowing: a 2^32+n value must error, not
      // wrap into a legal-looking field.
      t.size = size_from_bytes(
          static_cast<unsigned>(parse_dec(tok[3], "size", 8)));
      t.burst = parse_burst(tok[4]);
      // 1024 = the AHB 1KB boundary over 1-byte beats; structurally_valid
      // enforces the exact burst-dependent bound below.
      t.beats = static_cast<unsigned>(parse_dec(tok[5], "beats", 1024));
      // Exactly the declared fields and nothing more: silent extra tokens
      // would mask shifted columns or hand-edit typos.
      const std::size_t expect =
          6 + (t.dir == ahb::Dir::kWrite ? t.beats : 0);
      if (tok.size() < expect) {
        throw std::runtime_error(
            "missing write data (" + std::to_string(t.beats) +
            " beat(s) declared, " + std::to_string(tok.size() - 6) +
            " data word(s) given)");
      }
      if (tok.size() > expect) {
        throw std::runtime_error("trailing garbage '" + tok[expect] + "'");
      }
      if (t.dir == ahb::Dir::kWrite) {
        t.data.resize(t.beats);
        for (unsigned b = 0; b < t.beats; ++b) {
          t.data[b] = parse_hex(tok[6 + b], "write data");
        }
      }
      t.id = script.size() + 1;
      t.master = master;
      if (!ahb::structurally_valid(t)) {
        throw std::runtime_error("transaction violates AHB structure rules");
      }
      script.push_back(std::move(item));
    } catch (const std::runtime_error& e) {
      throw std::runtime_error("trace line " + std::to_string(lineno) + ": " +
                               e.what());
    }
  }
  return script;
}

}  // namespace ahbp::traffic
