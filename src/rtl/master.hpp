#pragma once

#include <functional>
#include <string>

#include "ahb/address.hpp"
#include "ahb/transaction.hpp"
#include "rtl/signals.hpp"
#include "sim/event_kernel.hpp"
#include "stats/profiles.hpp"
#include "traffic/generator.hpp"

/// \file master.hpp
/// Pin-accurate AHB+ master driver.
///
/// A clocked FSM that performs the full signal-level protocol per
/// transaction: raise HBUSREQ with the AHB+ request sideband, wait for
/// HGRANT/HMASTER, drive the pipelined address and data phases beat by beat
/// honouring HREADY, or — when the write buffer takes the transaction —
/// stream the write data into the buffer over its private column.
///
/// It consumes the same traffic::ScriptSource as the TLM master, so both
/// models replay identical workloads.

namespace ahbp::rtl {

class RtlMaster {
 public:
  enum class State { kIdle, kRequest, kTransfer, kBufStream };

  RtlMaster(sim::EventKernel& kernel, ahb::MasterId id, MasterWires& wires,
            SharedWires& shared, traffic::Script script,
            const sim::Cycle* now, stats::MasterProfile& profile);

  RtlMaster(const RtlMaster&) = delete;
  RtlMaster& operator=(const RtlMaster&) = delete;

  /// Subscribe the FSM to the clock's rising edge.
  void bind_clock(sim::Signal<bool>& clk);

  bool finished() const noexcept {
    return source_.done() && state_ == State::kIdle;
  }
  std::uint64_t completed() const noexcept { return completed_; }

  /// Diagnostic state string ("idle"/"request"/"transfer"/"bufstream").
  std::string_view state_name() const noexcept;

  /// FSM state + pending transaction, read by the fabric's per-cycle stall
  /// attribution (valid whenever state() != State::kIdle).
  State state() const noexcept { return state_; }
  const ahb::Transaction& pending_txn() const noexcept { return txn_; }

  /// Test hook: observes every retired transaction.
  std::function<void(const ahb::Transaction&)> on_complete;

  /// Attach a capture tap to this port's script source (symmetric with
  /// the TLM master — the tap lives in ScriptSource, so issue/complete
  /// cycles are observed identically in both models).
  void set_trace_recorder(traffic::TraceRecorder* rec) noexcept {
    source_.set_recorder(rec);
  }

  /// FSM registers + script position (wires snapshot with the kernel).
  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);

 private:
  void at_edge();
  void drive_address_phase();
  void complete(bool buffered);

  sim::EventKernel& kernel_;
  ahb::MasterId id_;
  MasterWires& w_;
  SharedWires& sh_;
  traffic::ScriptSource source_;
  const sim::Cycle* now_;
  stats::MasterProfile& profile_;
  sim::Process proc_;

  State state_ = State::kIdle;
  ahb::Transaction txn_;
  unsigned addr_accepted_ = 0;  ///< address phases accepted so far
  unsigned data_done_ = 0;      ///< data phases completed so far
  unsigned stream_beat_ = 0;    ///< write-buffer streaming progress
  std::uint64_t completed_ = 0;
};

}  // namespace ahbp::rtl
