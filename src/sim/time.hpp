#pragma once

#include <cstdint>

/// \file time.hpp
/// Common time types shared by both simulation kernels.
///
/// The event-driven kernel (used by the signal-level reference model) counts
/// `Tick`s — an abstract unit fine enough to place clock edges.  The 2-step
/// cycle-based kernel (used by the transaction-level model) counts whole bus
/// `Cycle`s.  Keeping the two types distinct makes it impossible to mix the
/// two time bases by accident.

namespace ahbp::sim {

/// Event-kernel timestamp.  One tick is an abstract time unit; a clock with
/// period P produces a rising edge every P ticks.
using Tick = std::uint64_t;

/// Cycle-kernel timestamp: number of elapsed bus clock cycles.
using Cycle = std::uint64_t;

/// Sentinel meaning "no deadline / never".
inline constexpr Cycle kNeverCycle = ~Cycle{0};

/// Sentinel meaning "no scheduled tick".
inline constexpr Tick kNeverTick = ~Tick{0};

}  // namespace ahbp::sim
