#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/platform.hpp"

/// \file scenario.hpp
/// Declarative scenario descriptions.
///
/// The paper's value proposition is early design-space exploration:
/// "changing the traffic patterns of the masters" (Table 1) and sweeping
/// the §3.7 structural knobs (bus width, write-buffer depth, arbitration
/// filters, QoS values).  This module makes a whole `PlatformConfig`
/// writable as a small sectioned `key = value` text file, so experiments
/// can be described, versioned, and swept without writing C++:
///
/// ```
/// # four-master mix on a DDR-266 part
/// [platform]
/// max_cycles = 4000000
///
/// [bus]
/// write_buffer_depth = 4
/// filter_mask = 0x7f
///
/// [ddr]
/// preset = ddr266          # tRCD/tRP/... may be overridden below
/// banks = 4
///
/// [master 0]
/// class = rt
/// objective = 40
/// pattern = rt-stream
/// period = 48
///
/// [master *]           # applies to every master defined above
/// items = 200
/// ```
///
/// `serialize()` is the exact inverse: it emits a canonical file that
/// `parse()` maps back to the same configuration (round-trippable, which
/// the tests pin down byte-for-byte).

namespace ahbp::scenario {

/// Parse/apply failure: carries the 1-based line number when the error
/// came from file text (0 when applying a programmatic override).
class ScenarioError : public std::runtime_error {
 public:
  explicit ScenarioError(const std::string& msg, std::size_t line = 0)
      : std::runtime_error(line ? "line " + std::to_string(line) + ": " + msg
                                : msg),
        line_(line) {}

  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_ = 0;
};

/// Parse scenario text into a platform configuration.
/// Throws ScenarioError on unknown sections/keys, malformed values, or
/// non-contiguous master indices.
core::PlatformConfig parse(std::string_view text);

/// Parse a scenario file from disk (throws ScenarioError, including when
/// the file cannot be read).
core::PlatformConfig parse_file(const std::string& path);

/// Emit the canonical scenario text for a configuration.
/// Invariant: serialize(parse(serialize(cfg))) == serialize(cfg).
std::string serialize(const core::PlatformConfig& cfg);

/// Apply one dotted-key override, e.g. ("bus.write_buffer_depth", "8"),
/// ("ddr.preset", "ddr400"), ("channel1.tCL", "6"), ("master1.items",
/// "200"), or ("master*.seed", "7") to touch every master.  This is the
/// same setter machinery the parser uses, shared with sweep axis expansion
/// so a sweepable knob and a scenario key can never drift apart.  Single
/// keys are checked individually; call validate() after a batch of
/// overrides to re-establish the whole-config invariants.
void apply_key(core::PlatformConfig& cfg, std::string_view dotted_key,
               std::string_view value);

/// Whole-config consistency checks a single setter cannot make: the
/// interleave parameters, that channel overrides name existing channels,
/// that the stripe divides every channel's capacity, and that each
/// master's address window fits the DDR aperture (capacity x channels
/// from ddr_base) — `ddr_base` used to be parsed independently of the
/// geometry, so a scenario could target an aperture the device silently
/// wrapped.  parse() and sweep expansion both end with this.
/// Throws ScenarioError.
void validate(const core::PlatformConfig& cfg);

}  // namespace ahbp::scenario
