#pragma once

#include <cstdint>
#include <string>

#include "traffic/generator.hpp"

/// \file stimulus.hpp
/// Pluggable per-master stimulus: synthetic pattern or recorded trace.
///
/// The paper's Table 1 is produced "by changing the traffic patterns of the
/// masters"; real workload rows need the fourth traffic class the synthetic
/// archetypes cannot provide — a *recorded* transaction stream.  A
/// `StimulusSpec` names one master's stimulus either way:
///
///  - synthetic: the inherited `PatternConfig` fields (kind/seed/items/...)
///    expand through `make_script` exactly as before;
///  - trace: `trace_path` names a trace file (traffic/trace.hpp format),
///    optionally pre-resolved into `trace_text` so the platform stays
///    self-describing after the file disappears (checkpoints embed it).
///
/// `expand_stimulus` is the one choke point both models' scripts come
/// through, and `TraceRecorder` is its inverse: a tap on the master port
/// (`ScriptSource::pop` / `on_complete`) that captures the replayable
/// stream — gaps are measured from the previous completion at the *same*
/// port, so they are genuine think-time and the capture→replay loop is
/// closed bit-exactly in both models.

namespace ahbp::traffic {

/// Where a master's transactions come from.
enum class StimulusSource : std::uint8_t {
  kSynthetic = 0,  ///< expand the PatternConfig archetype
  kTrace = 1,      ///< replay a recorded trace
};

std::string to_string(StimulusSource s);

/// One master's stimulus: the synthetic pattern parameters plus the
/// alternative trace reference.  When `source == kTrace` the inherited
/// pattern fields are inert (kept only so overrides stay harmless).
struct StimulusSpec : PatternConfig {
  StimulusSource source = StimulusSource::kSynthetic;

  /// kTrace: path of the trace file (scenario `masterK.trace`).
  std::string trace_path;

  /// kTrace: the trace file's content once resolved.  A resolved spec
  /// never touches the filesystem again — this is what checkpoints embed
  /// so a trace-driven snapshot survives the file being deleted.
  std::string trace_text;

  /// `trace_text` is authoritative — set by resolve() and by checkpoint
  /// restore, so even a legitimately empty trace (zero transactions)
  /// counts as resolved.  Setting `trace_text` by hand also resolves.
  bool trace_loaded = false;

  bool is_trace() const noexcept { return source == StimulusSource::kTrace; }

  /// Expansion can proceed without filesystem access.
  bool resolved() const noexcept {
    return !is_trace() || trace_loaded || !trace_text.empty();
  }
};

/// Load `trace_path` into `trace_text` (no-op for synthetic or already
/// resolved specs).  Throws std::runtime_error when the path is missing or
/// unreadable.  Content errors surface later, at expansion, with line
/// numbers.
void resolve(StimulusSpec& spec);

/// Expand one master's stimulus into its deterministic script.
///
/// Synthetic specs expand through `make_script` with the beat width forced
/// to `bus_beat_bytes` (the §3.7 bus-width knob).  Trace specs parse
/// `trace_text` (resolving from `trace_path` first if needed) and verify
/// every beat fits the bus width.  Throws std::runtime_error with the
/// master id and trace origin on any trace problem.
Script expand_stimulus(const StimulusSpec& spec, ahb::MasterId master,
                       unsigned bus_beat_bytes);

/// Capture tap on a master port.
///
/// `ScriptSource` calls `record_issue` at the exact cycle a transaction is
/// popped and `record_complete` when the master reports completion; the
/// recorded gap of item N is `issue(N) - complete(N-1)` — observed think
/// time relative to the port's own completions, which is precisely the gap
/// semantics `ScriptSource` replays.  Replaying a capture therefore
/// reproduces the original issue cycles bit-exactly, and capturing a replay
/// reproduces the trace (the tap is a fixed point).
///
/// The first item's recorded gap is the absolute issue cycle; `ScriptSource`
/// never consults the first gap (its timer arms at 0), so this is
/// informational only.
class TraceRecorder {
 public:
  explicit TraceRecorder(ahb::MasterId master = ahb::kNoMaster)
      : master_(master) {}

  void record_issue(sim::Cycle now, const ahb::Transaction& txn);
  void record_complete(sim::Cycle now);

  ahb::MasterId master() const noexcept { return master_; }
  const Script& captured() const noexcept { return items_; }

  /// The capture in text trace-file form (traffic/trace.hpp), ready to be
  /// written to disk or embedded as a resolved `StimulusSpec::trace_text`.
  std::string to_trace_text() const;

  /// The capture in binary trace-file form (traffic/trace_bin.hpp) —
  /// interchangeable with the text form everywhere a trace is accepted
  /// (expansion auto-detects by magic), ~10x faster to load back.
  std::string to_trace_bin() const;

 private:
  ahb::MasterId master_;
  Script items_;
  sim::Cycle last_complete_ = 0;
};

}  // namespace ahbp::traffic
