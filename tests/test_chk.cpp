// Protocol property checkers (§3.5 second family): every rule must fire on
// a broken stream and stay silent on a legal one — fault injection for the
// checkers themselves.

#include <gtest/gtest.h>

#include "assertions/assert.hpp"
#include "assertions/bus_checker.hpp"
#include "assertions/violation.hpp"

namespace {

using namespace ahbp::chk;
using namespace ahbp::ahb;

BusCycleView idle_view(ahbp::sim::Cycle c) {
  BusCycleView v;
  v.cycle = c;
  v.htrans = Trans::kIdle;
  v.hready = true;
  v.hmaster = kNoMaster;
  return v;
}

BusCycleView beat_view(ahbp::sim::Cycle c, MasterId m, Trans tr, Addr addr,
                       Burst b, bool ready = true, Dir dir = Dir::kRead) {
  BusCycleView v;
  v.cycle = c;
  v.hmaster = m;
  v.htrans = tr;
  v.haddr = addr;
  v.hburst = b;
  v.hsize = Size::kWord;
  v.hwrite = dir;
  v.hready = ready;
  return v;
}

CheckerConfig cfg2() { return CheckerConfig{2, 4, true}; }

TEST(ViolationLog, RecordsAndCounts) {
  ViolationLog log;
  log.record(Severity::kError, 10, "rule.a", "boom");
  log.record(Severity::kWarning, 11, "rule.b", "meh");
  EXPECT_EQ(log.count(), 2u);
  EXPECT_EQ(log.errors(), 1u);
  EXPECT_EQ(log.warnings(), 1u);
  EXPECT_EQ(log.count_rule("rule.a"), 1u);
  EXPECT_EQ(log.count_rule("rule.c"), 0u);
  EXPECT_NE(log.to_string().find("rule.a"), std::string::npos);
}

TEST(ViolationLog, ToStringTruncates) {
  ViolationLog log;
  for (std::uint64_t i = 0; i < 30; ++i) {
    log.record(Severity::kError, i, "r", "d");
  }
  EXPECT_NE(log.to_string(5).find("more"), std::string::npos);
}

TEST(BusChecker, CleanBurstPasses) {
  ViolationLog log;
  BusChecker c(cfg2(), log);
  // Master 0 requests, then a clean INCR4 read burst.
  BusCycleView v = idle_view(0);
  v.request_mask = 0x1;
  c.on_cycle(v);
  c.on_cycle(beat_view(1, 0, Trans::kNonSeq, 0x100, Burst::kIncr4));
  c.on_cycle(beat_view(2, 0, Trans::kSeq, 0x104, Burst::kIncr4));
  c.on_cycle(beat_view(3, 0, Trans::kSeq, 0x108, Burst::kIncr4));
  c.on_cycle(beat_view(4, 0, Trans::kSeq, 0x10C, Burst::kIncr4));
  c.on_cycle(idle_view(5));
  EXPECT_EQ(log.count(), 0u);
  EXPECT_EQ(c.cycles_checked(), 6u);
}

TEST(BusChecker, GrantWithoutRequestFlagged) {
  ViolationLog log;
  BusChecker c(cfg2(), log);
  c.on_cycle(idle_view(0));  // nobody requested
  c.on_cycle(beat_view(1, 1, Trans::kNonSeq, 0x100, Burst::kSingle));
  EXPECT_EQ(log.count_rule("ahb.grant-implies-request"), 1u);
}

TEST(BusChecker, PseudoMasterExemptFromGrantRule) {
  ViolationLog log;
  BusChecker c(cfg2(), log);
  c.on_cycle(idle_view(0));
  // Master id 2 == write-buffer pseudo-master for a 2-master platform.
  c.on_cycle(beat_view(1, 2, Trans::kNonSeq, 0x100, Burst::kSingle));
  EXPECT_EQ(log.count_rule("ahb.grant-implies-request"), 0u);
}

TEST(BusChecker, StalledAddressMustHold) {
  ViolationLog log;
  BusChecker c(cfg2(), log);
  BusCycleView v = idle_view(0);
  v.request_mask = 1;
  c.on_cycle(v);
  c.on_cycle(beat_view(1, 0, Trans::kNonSeq, 0x100, Burst::kIncr4,
                       /*ready=*/false));
  // Address changed while the previous cycle was stalled.
  c.on_cycle(beat_view(2, 0, Trans::kNonSeq, 0x200, Burst::kIncr4));
  EXPECT_EQ(log.count_rule("ahb.stable-when-stalled"), 1u);
}

TEST(BusChecker, StalledHoldIsLegal) {
  ViolationLog log;
  BusChecker c(cfg2(), log);
  BusCycleView v = idle_view(0);
  v.request_mask = 1;
  c.on_cycle(v);
  c.on_cycle(beat_view(1, 0, Trans::kNonSeq, 0x100, Burst::kIncr4, false));
  c.on_cycle(beat_view(2, 0, Trans::kNonSeq, 0x100, Burst::kIncr4, true));
  c.on_cycle(beat_view(3, 0, Trans::kSeq, 0x104, Burst::kIncr4, true));
  EXPECT_EQ(log.count(), 0u);
}

TEST(BusChecker, SeqAddressMismatchFlagged) {
  ViolationLog log;
  BusChecker c(cfg2(), log);
  BusCycleView v = idle_view(0);
  v.request_mask = 1;
  c.on_cycle(v);
  c.on_cycle(beat_view(1, 0, Trans::kNonSeq, 0x100, Burst::kIncr4));
  c.on_cycle(beat_view(2, 0, Trans::kSeq, 0x10C, Burst::kIncr4));  // skip!
  EXPECT_EQ(log.count_rule("ahb.seq-addr"), 1u);
}

TEST(BusChecker, WrapSeqAddressesAccepted) {
  ViolationLog log;
  BusChecker c(cfg2(), log);
  BusCycleView v = idle_view(0);
  v.request_mask = 1;
  c.on_cycle(v);
  c.on_cycle(beat_view(1, 0, Trans::kNonSeq, 0x38, Burst::kWrap4));
  c.on_cycle(beat_view(2, 0, Trans::kSeq, 0x3C, Burst::kWrap4));
  c.on_cycle(beat_view(3, 0, Trans::kSeq, 0x30, Burst::kWrap4));  // wrap
  c.on_cycle(beat_view(4, 0, Trans::kSeq, 0x34, Burst::kWrap4));
  EXPECT_EQ(log.count(), 0u);
}

TEST(BusChecker, SeqWithoutBurstFlagged) {
  ViolationLog log;
  BusChecker c(cfg2(), log);
  c.on_cycle(idle_view(0));
  c.on_cycle(beat_view(1, 0, Trans::kSeq, 0x104, Burst::kIncr4));
  EXPECT_EQ(log.count_rule("ahb.first-is-nonseq"), 1u);
}

TEST(BusChecker, EarlyBurstTerminationFlagged) {
  ViolationLog log;
  BusChecker c(cfg2(), log);
  BusCycleView v = idle_view(0);
  v.request_mask = 3;
  c.on_cycle(v);
  c.on_cycle(beat_view(1, 0, Trans::kNonSeq, 0x100, Burst::kIncr4));
  c.on_cycle(beat_view(2, 0, Trans::kSeq, 0x104, Burst::kIncr4));
  // New NONSEQ after only 2 of 4 beats.
  c.on_cycle(beat_view(3, 1, Trans::kNonSeq, 0x800, Burst::kSingle));
  EXPECT_EQ(log.count_rule("ahb.burst-len"), 1u);
}

TEST(BusChecker, ControlChangeMidBurstFlagged) {
  ViolationLog log;
  BusChecker c(cfg2(), log);
  BusCycleView v = idle_view(0);
  v.request_mask = 1;
  c.on_cycle(v);
  c.on_cycle(beat_view(1, 0, Trans::kNonSeq, 0x100, Burst::kIncr4));
  auto bad = beat_view(2, 0, Trans::kSeq, 0x104, Burst::kIncr4);
  bad.hwrite = Dir::kWrite;  // direction flips mid-burst
  c.on_cycle(bad);
  EXPECT_EQ(log.count_rule("ahb.seq-ctrl"), 1u);
}

TEST(BusChecker, MisalignedAddressFlagged) {
  ViolationLog log;
  BusChecker c(cfg2(), log);
  BusCycleView v = idle_view(0);
  v.request_mask = 1;
  c.on_cycle(v);
  c.on_cycle(beat_view(1, 0, Trans::kNonSeq, 0x102, Burst::kSingle));
  EXPECT_EQ(log.count_rule("ahb.align"), 1u);
}

TEST(BusChecker, Incr1KbCrossFlagged) {
  ViolationLog log;
  BusChecker c(cfg2(), log);
  BusCycleView v = idle_view(0);
  v.request_mask = 1;
  c.on_cycle(v);
  // INCR16 of words starting at 0x3D0 crosses 0x400.
  c.on_cycle(beat_view(1, 0, Trans::kNonSeq, 0x3D0, Burst::kIncr16));
  EXPECT_EQ(log.count_rule("ahb.1kb"), 1u);
}

TEST(BusChecker, WbufDepthOverflowFlagged) {
  ViolationLog log;
  BusChecker c(cfg2(), log);
  BusCycleView v = idle_view(0);
  v.wbuf_occupancy = 5;  // depth is 4
  c.on_cycle(v);
  EXPECT_EQ(log.count_rule("ahbp.wbuf-depth"), 1u);
}

TEST(BusChecker, WbufDisabledMustBeEmpty) {
  ViolationLog log;
  BusChecker c(CheckerConfig{2, 4, false}, log);
  BusCycleView v = idle_view(0);
  v.wbuf_occupancy = 1;
  c.on_cycle(v);
  EXPECT_EQ(log.count_rule("ahbp.wbuf-depth"), 1u);
}

TEST(QosChecker, RtMissRecordedAsWarning) {
  QosRegisterFile regs(2);
  regs.program(0, QosConfig{MasterClass::kRealTime, 20});
  regs.program(1, QosConfig{MasterClass::kNonRealTime, 20});
  ViolationLog log;
  QosChecker q(regs, log);
  q.on_grant(0, 25, 100);  // RT waited 25 > 20
  q.on_grant(0, 10, 120);  // within objective
  q.on_grant(1, 500, 130); // NRT: no objective on latency
  EXPECT_EQ(q.misses(), 1u);
  EXPECT_EQ(log.warnings(), 1u);
  EXPECT_EQ(log.errors(), 0u);
  EXPECT_EQ(log.count_rule("ahbp.qos-objective"), 1u);
}

TEST(ModelAssert, ThrowsWithLocation) {
  try {
    AHBP_ASSERT_MSG(false, "broken invariant");
    FAIL() << "should have thrown";
  } catch (const ModelAssertError& e) {
    EXPECT_NE(std::string(e.what()).find("broken invariant"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_chk.cpp"), std::string::npos);
  }
}

TEST(ModelAssert, PassingAssertIsSilent) {
  EXPECT_NO_THROW(AHBP_ASSERT(1 + 1 == 2));
}

// AHBP_ASSERT exists precisely because plain assert() vanishes under
// NDEBUG: a Release simulator that silently skips invariant checks keeps
// producing wrong numbers.  The default build type (RelWithDebInfo) and
// every CI configuration define NDEBUG, so this test executing at all is
// the audit that the macro never grew an NDEBUG gate.
TEST(ModelAssert, StaysArmedInReleaseBuilds) {
#ifdef NDEBUG
  // Running under NDEBUG: the throw below proves Release builds keep the
  // invariant checks armed (a <cassert>-style macro would be a no-op here).
  EXPECT_THROW(AHBP_ASSERT(false), ModelAssertError);
#else
  // Debug build: the property trivially holds, but keep the behavioural
  // check so the test body never goes empty.
  EXPECT_THROW(AHBP_ASSERT(false), ModelAssertError);
#endif
}

}  // namespace
