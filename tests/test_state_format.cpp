// The snapshot format's own contract: typed round trips, and — the
// robustness satellite — truncated, corrupted, version-mismatched or
// drifted streams are rejected with a clear StateError before any
// component sees partial state (no UB, no silent reinterpretation).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "state/snapshot.hpp"

namespace {

using namespace ahbp;
using state::StateError;
using state::StateReader;
using state::StateWriter;

std::vector<std::uint8_t> sample_bytes() {
  StateWriter w;
  w.begin("outer");
  w.put_bool(true);
  w.put_u8(0xAB);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFULL);
  w.put_i64(-42);
  w.put_f64(3.25);
  w.put_str("hello, snapshot");
  const std::uint8_t blob[] = {1, 2, 3, 4, 5};
  w.put_blob(blob, sizeof blob);
  w.begin("inner");
  w.put_u64(7);
  w.end();
  w.end();
  return w.finish();
}

TEST(StateFormat, TypedRoundTrip) {
  const auto bytes = sample_bytes();
  StateReader r(bytes);
  r.enter("outer");
  EXPECT_TRUE(r.get_bool());
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.25);
  EXPECT_EQ(r.get_str(), "hello, snapshot");
  EXPECT_EQ(r.get_blob(), (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
  r.enter("inner");
  EXPECT_EQ(r.get_u64(), 7u);
  r.leave();
  r.leave();
  EXPECT_TRUE(r.at_end());
  r.expect_end();
}

TEST(StateFormat, IdenticalWritesProduceIdenticalBytes) {
  EXPECT_EQ(sample_bytes(), sample_bytes());
}

TEST(StateFormat, TruncationIsRejected) {
  const auto bytes = sample_bytes();
  // Every strict prefix must be rejected cleanly (header too short, CRC
  // missing, or CRC over a shorter payload no longer matching).
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, std::size_t{11}, bytes.size() / 2,
        bytes.size() - 1}) {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<long>(keep));
    EXPECT_THROW(StateReader r(std::move(cut)), StateError) << keep;
  }
}

TEST(StateFormat, CorruptionIsRejected) {
  // Flip one bit at every byte position: header, payload or trailer, the
  // reader must refuse (magic, version or checksum failure).
  const auto bytes = sample_bytes();
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::vector<std::uint8_t> bad = bytes;
    bad[pos] ^= 0x40;
    EXPECT_THROW(StateReader r(std::move(bad)), StateError) << pos;
  }
}

TEST(StateFormat, VersionMismatchIsRejectedWithClearMessage) {
  auto bytes = sample_bytes();
  bytes[8] = 0x7F;  // version word follows the 8-byte magic
  try {
    StateReader r(std::move(bytes));
    FAIL() << "future-version snapshot accepted";
  } catch (const StateError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST(StateFormat, TypeMismatchIsRejected) {
  const auto bytes = sample_bytes();
  StateReader r(bytes);
  r.enter("outer");
  EXPECT_THROW(r.get_u64(), StateError);  // stream holds a bool here
}

TEST(StateFormat, SectionTagMismatchIsRejected) {
  const auto bytes = sample_bytes();
  StateReader r(bytes);
  try {
    r.enter("wrong-tag");
    FAIL() << "mismatched section tag accepted";
  } catch (const StateError& e) {
    EXPECT_NE(std::string(e.what()).find("wrong-tag"), std::string::npos)
        << e.what();
  }
}

TEST(StateFormat, HostileContainerLengthIsRejected) {
  // A CRC-valid stream declaring an absurd element count must fail fast
  // with a StateError, not attempt the allocation.
  StateWriter w;
  w.put_u64(~std::uint64_t{0});
  w.put_u64(1u << 20);
  const auto bytes = w.finish();
  StateReader r(bytes);
  EXPECT_THROW(r.get_count(), StateError);
  StateReader r2(bytes);
  (void)r2.get_u64();
  EXPECT_THROW(r2.get_count(), StateError);  // 2^20 items, 9 bytes left
}

TEST(StateFormat, TrailingGarbageIsRejectedByExpectEnd) {
  StateWriter w;
  w.put_u64(1);
  w.put_u64(2);
  const auto bytes = w.finish();
  StateReader r(bytes);
  EXPECT_EQ(r.get_u64(), 1u);
  EXPECT_THROW(r.expect_end(), StateError);
}

TEST(StateFormat, UnbalancedWriterIsRejected) {
  StateWriter w;
  w.begin("open");
  EXPECT_THROW(w.finish(), StateError);
  StateWriter w2;
  EXPECT_THROW(w2.end(), StateError);
}

TEST(StateFormat, FileRoundTripAndMissingFile) {
  const std::string path = ::testing::TempDir() + "ahbp_state_fmt.snap";
  StateWriter w;
  w.put_str("file payload");
  w.write_file(path);
  StateReader r = StateReader::from_file(path);
  EXPECT_EQ(r.get_str(), "file payload");
  r.expect_end();
  std::remove(path.c_str());
  EXPECT_THROW(StateReader::from_file(path), StateError);
}

TEST(StateFormat, EmptyAndForeignFilesAreRejected) {
  const std::string path = ::testing::TempDir() + "ahbp_state_junk.snap";
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
  }
  EXPECT_THROW(StateReader::from_file(path), StateError);
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << "this is not a checkpoint file at all, but long enough";
  }
  EXPECT_THROW(StateReader::from_file(path), StateError);
  std::remove(path.c_str());
}

}  // namespace
