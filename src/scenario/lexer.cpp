#include "scenario/lexer.hpp"

#include <cctype>

#include "scenario/scenario.hpp"

namespace ahbp::scenario::lex {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

void for_each_line(std::string_view text,
                   const std::function<void(const Line&)>& cb) {
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view raw = text.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;

    Line line;
    line.number = line_no;
    line.raw = raw;

    const std::size_t hash = raw.find('#');
    if (hash != std::string_view::npos) {
      raw = raw.substr(0, hash);
    }
    const std::string_view s = trim(raw);
    if (s.empty()) {
      continue;
    }

    if (s.front() == '[') {
      if (s.back() != ']') {
        throw ScenarioError("malformed section header", line_no);
      }
      line.kind = Line::Kind::kSection;
      line.section = trim(s.substr(1, s.size() - 2));
      cb(line);
      continue;
    }

    const std::size_t eq = s.find('=');
    if (eq == std::string_view::npos) {
      throw ScenarioError("expected 'key = value'", line_no);
    }
    line.kind = Line::Kind::kKeyValue;
    line.key = trim(s.substr(0, eq));
    line.value = trim(s.substr(eq + 1));
    if (line.key.empty()) {
      throw ScenarioError("empty key", line_no);
    }
    cb(line);
  }
}

bool master_section(std::string_view section_inner,
                    std::string_view& index_text) {
  if (section_inner.substr(0, 6) != "master") {
    return false;
  }
  index_text = trim(section_inner.substr(6));
  return true;
}

bool channel_section(std::string_view section_inner,
                     std::string_view& index_text) {
  if (section_inner.substr(0, 7) != "channel") {
    return false;
  }
  index_text = trim(section_inner.substr(7));
  return true;
}

}  // namespace ahbp::scenario::lex
