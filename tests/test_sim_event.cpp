// Unit tests for the event-driven kernel: two-phase signals, delta cycles,
// edge-filtered subscriptions, timed-event ordering, clocks and the VCD
// writer.  The subscription-order guarantee is load-bearing for the RTL
// fabric (arbiter runs before the write buffer), so it is pinned here.

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/clock.hpp"
#include "sim/event_kernel.hpp"
#include "sim/vcd.hpp"

namespace {

using namespace ahbp::sim;

TEST(Signal, ReadsInitialValue) {
  EventKernel k;
  Signal<int> s(k, "s", 42);
  EXPECT_EQ(s.read(), 42);
}

TEST(Signal, WriteNotVisibleUntilUpdatePhase) {
  EventKernel k;
  Signal<int> s(k, "s", 1);
  s.write(2);
  EXPECT_EQ(s.read(), 1);  // still the old value before the update phase
  k.settle();
  EXPECT_EQ(s.read(), 2);
}

TEST(Signal, LastWriteInDeltaWins) {
  EventKernel k;
  Signal<int> s(k, "s");
  s.write(5);
  s.write(9);
  k.settle();
  EXPECT_EQ(s.read(), 9);
}

TEST(Signal, SubscriberRunsOnChange) {
  EventKernel k;
  Signal<int> s(k, "s");
  int runs = 0;
  Process p(k, "p", [&] { ++runs; });
  s.subscribe(p);
  s.write(1);
  k.settle();
  EXPECT_EQ(runs, 1);
}

TEST(Signal, NoNotifyWhenValueUnchanged) {
  EventKernel k;
  Signal<int> s(k, "s", 7);
  int runs = 0;
  Process p(k, "p", [&] { ++runs; });
  s.subscribe(p);
  s.write(7);  // same value: committed, but no change, no wakeup
  k.settle();
  EXPECT_EQ(runs, 0);
}

TEST(Signal, PosedgeSubscriptionFiltersEdges) {
  EventKernel k;
  Signal<bool> s(k, "s", false);
  int pos = 0, neg = 0, any = 0;
  Process pp(k, "pos", [&] { ++pos; });
  Process pn(k, "neg", [&] { ++neg; });
  Process pa(k, "any", [&] { ++any; });
  s.subscribe(pp, Edge::kPos);
  s.subscribe(pn, Edge::kNeg);
  s.subscribe(pa, Edge::kAny);
  s.write(true);
  k.settle();
  s.write(false);
  k.settle();
  EXPECT_EQ(pos, 1);
  EXPECT_EQ(neg, 1);
  EXPECT_EQ(any, 2);
}

TEST(Signal, IntegerEdgeSemantics) {
  // For integral signals, "rising" means zero -> nonzero.
  EventKernel k;
  Signal<int> s(k, "s", 0);
  int pos = 0;
  Process p(k, "p", [&] { ++pos; });
  s.subscribe(p, Edge::kPos);
  s.write(3);
  k.settle();
  s.write(5);  // nonzero -> nonzero: not a rising edge
  k.settle();
  EXPECT_EQ(pos, 1);
}

TEST(Delta, ChainedCombinationalProcessesCascade) {
  // a -> (p1) -> b -> (p2) -> c settles across delta rounds in one settle().
  EventKernel k;
  Signal<int> a(k, "a"), b(k, "b"), c(k, "c");
  Process p1(k, "p1", [&] { b.write(a.read() + 1); });
  Process p2(k, "p2", [&] { c.write(b.read() + 1); });
  a.subscribe(p1);
  b.subscribe(p2);
  a.write(10);
  k.settle();
  EXPECT_EQ(b.read(), 11);
  EXPECT_EQ(c.read(), 12);
  EXPECT_GE(k.stats().deltas, 2u);
}

TEST(Delta, ProcessDedupedWithinOneRound) {
  EventKernel k;
  Signal<int> a(k, "a"), b(k, "b");
  int runs = 0;
  Process p(k, "p", [&] { ++runs; });
  a.subscribe(p);
  b.subscribe(p);
  a.write(1);
  b.write(1);
  k.settle();
  EXPECT_EQ(runs, 1);  // both changes wake it once in the same round
}

TEST(Delta, SubscriptionOrderIsExecutionOrder) {
  // The RTL fabric depends on this: processes subscribed to the same
  // signal run in subscription order within a delta round.
  EventKernel k;
  Signal<bool> clk(k, "clk", false);
  std::vector<int> order;
  Process p1(k, "p1", [&] { order.push_back(1); });
  Process p2(k, "p2", [&] { order.push_back(2); });
  Process p3(k, "p3", [&] { order.push_back(3); });
  clk.subscribe(p1, Edge::kPos);
  clk.subscribe(p2, Edge::kPos);
  clk.subscribe(p3, Edge::kPos);
  clk.write(true);
  k.settle();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimedEvents, FireInTimeOrder) {
  EventKernel k;
  std::vector<int> seq;
  k.schedule(20, [&] { seq.push_back(2); });
  k.schedule(10, [&] { seq.push_back(1); });
  k.schedule(30, [&] { seq.push_back(3); });
  k.run_until(100);
  EXPECT_EQ(seq, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(k.now(), 100u);
}

TEST(TimedEvents, SameTimeFifoOrder) {
  EventKernel k;
  std::vector<int> seq;
  k.schedule(5, [&] { seq.push_back(1); });
  k.schedule(5, [&] { seq.push_back(2); });
  k.run_until(5);
  EXPECT_EQ(seq, (std::vector<int>{1, 2}));
}

TEST(TimedEvents, RunUntilStopsAtBoundary) {
  EventKernel k;
  int fired = 0;
  k.schedule(10, [&] { ++fired; });
  k.schedule(11, [&] { ++fired; });
  k.run_until(10);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(k.idle());
  k.run_until(11);
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(k.idle());
}

TEST(TimedEvents, NestedSchedulingWorks) {
  EventKernel k;
  int fired = 0;
  k.schedule(1, [&] {
    ++fired;
    k.schedule(1, [&] { ++fired; });
  });
  k.run_until(5);
  EXPECT_EQ(fired, 2);
}

TEST(Clock, GeneratesExpectedPosedges) {
  EventKernel k;
  Clock clk(k, "clk", 2);
  int edges = 0;
  Process p(k, "p", [&] { ++edges; });
  clk.signal().subscribe(p, Edge::kPos);
  k.run_until(20);
  // period 2: rising at t=1,3,5,...,19 -> 10 edges
  EXPECT_EQ(edges, 10);
  EXPECT_EQ(clk.posedges(), 10u);
}

TEST(Clock, RejectsOddOrTinyPeriod) {
  EventKernel k;
  EXPECT_THROW(Clock(k, "c1", 1), std::invalid_argument);
  EXPECT_THROW(Clock(k, "c2", 3), std::invalid_argument);
}

TEST(Clock, StopHaltsToggling) {
  EventKernel k;
  Clock clk(k, "clk", 2);
  k.run_until(10);
  const auto edges = clk.posedges();
  clk.stop();
  k.run_until(20);
  EXPECT_EQ(clk.posedges(), edges);
}

TEST(Stats, CountersAdvance) {
  EventKernel k;
  Signal<int> s(k, "s");
  Process p(k, "p", [&] {});
  s.subscribe(p);
  s.write(1);
  k.settle();
  EXPECT_GE(k.stats().deltas, 1u);
  EXPECT_GE(k.stats().signal_commits, 1u);
  EXPECT_GE(k.stats().process_activations, 1u);
}

TEST(Stats, TimedEventCounter) {
  EventKernel k;
  k.schedule(1, [] {});
  k.schedule(2, [] {});
  k.run_until(5);
  EXPECT_EQ(k.stats().timed_events, 2u);
}

TEST(Vcd, EmitsHeaderAndChanges) {
  EventKernel k;
  Signal<bool> s(k, "sig_a", false);
  Signal<std::uint32_t> v(k, "bus_b", 0);
  std::ostringstream out;
  VcdWriter vcd(out);
  vcd.add_signal(s, 1);
  vcd.add_signal(v, 8);
  vcd.write_header();
  vcd.sample(0);
  s.write(true);
  v.write(0xA5);
  k.settle();
  vcd.sample(1);
  const std::string text = out.str();
  EXPECT_NE(text.find("$timescale"), std::string::npos);
  EXPECT_NE(text.find("sig_a"), std::string::npos);
  EXPECT_NE(text.find("b10100101"), std::string::npos);
  EXPECT_GE(vcd.changes(), 3u);
}

TEST(Vcd, NoChangeNoEmission) {
  EventKernel k;
  Signal<bool> s(k, "s", false);
  std::ostringstream out;
  VcdWriter vcd(out);
  vcd.add_signal(s);
  vcd.write_header();
  vcd.sample(0);
  const auto after_first = vcd.changes();
  vcd.sample(1);  // no change between samples
  EXPECT_EQ(vcd.changes(), after_first);
}

TEST(Vcd, SampleBeforeHeaderThrows) {
  EventKernel k;
  Signal<bool> s(k, "s");
  std::ostringstream out;
  VcdWriter vcd(out);
  vcd.add_signal(s);
  EXPECT_THROW(vcd.sample(0), std::logic_error);
}

TEST(Process, ManualTriggerRuns) {
  EventKernel k;
  int runs = 0;
  Process p(k, "p", [&] { ++runs; });
  p.trigger();
  k.settle();
  EXPECT_EQ(runs, 1);
}

TEST(Signal, RegistryTracksSignals) {
  EventKernel k;
  EXPECT_TRUE(k.signals().empty());
  {
    Signal<int> s(k, "s");
    EXPECT_EQ(k.signals().size(), 1u);
  }
  EXPECT_TRUE(k.signals().empty());  // unregistered on destruction
}

}  // namespace
