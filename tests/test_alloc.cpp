// Allocation-free hot paths — regression tests for the kernel-speed work.
//
// This binary replaces global operator new/delete with counting wrappers:
// steady-state stepping of the CycleKernel and event dispatch in the
// EventKernel must perform ZERO heap allocations per iteration.  These are
// the properties that keep the simulator's inner loops out of the
// allocator (see src/sim/inline_function.hpp and the bucketed timed-event
// ring in event_kernel.hpp); a regression shows up here as a nonzero
// counter delta, not as a 20%-slower benchmark three PRs later.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "sim/cycle_kernel.hpp"
#include "sim/event_kernel.hpp"

namespace {

std::uint64_t g_allocs = 0;

}  // namespace

// Counting global allocator.  Single-threaded test binary: a plain counter
// is enough, and malloc keeps the sanitizer interposers in the loop.
void* operator new(std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace ahbp;

TEST(AllocFree, CycleKernelStepAllocatesNothing) {
  sim::CycleKernel kernel;
  std::uint64_t work = 0;
  sim::CallbackClocked a("a", 0, [&work](sim::Cycle c) { work += c; });
  sim::CallbackClocked b(
      "b", 1, [&work](sim::Cycle c) { work ^= c; },
      [&work](sim::Cycle) { ++work; });
  kernel.add(a);
  kernel.add(b);

  kernel.run_until([] { return false; }, 16);  // warm-up

  const std::uint64_t before = g_allocs;
  for (int i = 0; i < 100'000; ++i) {
    kernel.step();
  }
  const std::uint64_t after = g_allocs;

  EXPECT_EQ(after - before, 0u)
      << "CycleKernel::step() hit the heap " << (after - before)
      << " times over 100k steps";
  EXPECT_GT(work, 0u);
}

TEST(AllocFree, EventKernelDispatchesMillionEventsWithoutHeapChurn) {
  sim::EventKernel kernel;

  // A self-rescheduling ticker — the clock idiom.  The capture is one
  // pointer, far under InlineFunction's buffer, so every schedule() builds
  // the node in place; near-future delays stay in the bucketed ring.
  struct Ticker {
    sim::EventKernel* k;
    std::uint64_t remaining;
    std::uint64_t fired = 0;
    void operator()() {
      ++fired;
      if (remaining-- > 0) {
        k->schedule(2, [this] { (*this)(); });
      }
    }
  };
  constexpr std::uint64_t kEvents = 1'000'000;
  Ticker t{&kernel, kEvents};
  kernel.schedule(0, [&t] { t(); });

  kernel.run_until(2 * 1000);  // warm-up: ring + scratch reach capacity

  const std::uint64_t before = g_allocs;
  kernel.run_until(2 * (kEvents + 2));
  const std::uint64_t after = g_allocs;

  EXPECT_TRUE(kernel.idle());
  EXPECT_EQ(t.fired, kEvents + 1);
  EXPECT_EQ(after - before, 0u)
      << "EventKernel dispatch hit the heap " << (after - before)
      << " times over ~1M timed events";
  EXPECT_GE(kernel.stats().timed_events, kEvents);
}

TEST(AllocFree, EventKernelSignalCommitLoopAllocatesNothing) {
  // The delta loop: a process subscribed to a signal it toggles via a
  // timed echo.  Steady-state evaluate/update rounds must recycle their
  // scratch vectors instead of reallocating them.
  sim::EventKernel kernel;
  sim::Signal<bool> clk(kernel, "clk");
  std::uint64_t edges = 0;
  sim::Process proc(kernel, "count", [&edges] { ++edges; });
  clk.subscribe(proc, sim::Edge::kPos);

  struct Driver {
    sim::EventKernel* k;
    sim::Signal<bool>* clk;
    bool level = false;
    std::uint64_t remaining;
    void operator()() {
      if (remaining-- == 0) {
        return;
      }
      level = !level;
      clk->write(level);
      k->schedule(1, [this] { (*this)(); });
    }
  };
  Driver d{&kernel, &clk, false, 200'000};
  kernel.schedule(0, [&d] { d(); });

  kernel.run_until(1000);  // warm-up

  const std::uint64_t before = g_allocs;
  kernel.run_until(300'000);
  const std::uint64_t after = g_allocs;

  EXPECT_TRUE(kernel.idle());
  EXPECT_GT(edges, 50'000u);
  EXPECT_EQ(after - before, 0u)
      << "signal/delta loop hit the heap " << (after - before) << " times";
}

}  // namespace
