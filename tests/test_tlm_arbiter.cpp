// The seven-filter arbitration pipeline: each stage in isolation, the
// §3.7 per-filter enable mask, QoS urgency/budget behaviour, fairness and
// the always-one-winner property under randomized contexts.

#include <gtest/gtest.h>

#include <random>

#include "assertions/assert.hpp"
#include "tlm/arbiter.hpp"

namespace {

using namespace ahbp;
using namespace ahbp::tlm;

struct Fixture {
  ahb::BusConfig cfg;
  ahb::QosRegisterFile qos;
  ArbContext ctx;

  explicit Fixture(unsigned masters = 4) : qos(masters) {
    ctx.cfg = &cfg;
    ctx.qos = &qos;
    ctx.masters = masters;
    ctx.candidates.resize(masters + 1);
    ctx.now = 100;
  }

  void request(unsigned m, unsigned beats = 4, bool is_write = false) {
    ctx.candidates[m].requesting = true;
    ctx.candidates[m].beats = beats;
    ctx.candidates[m].is_write = is_write;
    if (m < ctx.masters) {
      qos.state(static_cast<ahb::MasterId>(m)).requesting = true;
      qos.state(static_cast<ahb::MasterId>(m)).request_since = ctx.now;
    }
  }
};

TEST(Pipeline, NoRequestNoWinner) {
  Fixture f;
  FilterPipeline p;
  EXPECT_FALSE(p.arbitrate(f.ctx).has_value());
}

TEST(Pipeline, SoleRequesterWins) {
  Fixture f;
  f.request(2);
  FilterPipeline p;
  EXPECT_EQ(p.arbitrate(f.ctx).value(), 2);
}

TEST(Pipeline, HazardBlockedExcluded) {
  Fixture f;
  f.request(0);
  f.request(1);
  f.ctx.candidates[0].blocked_by_hazard = true;
  FilterPipeline p;
  EXPECT_EQ(p.arbitrate(f.ctx).value(), 1);
}

TEST(Pipeline, AllBlockedNoWinner) {
  Fixture f;
  f.request(0);
  f.ctx.candidates[0].blocked_by_hazard = true;
  FilterPipeline p;
  EXPECT_FALSE(p.arbitrate(f.ctx).has_value());
}

TEST(Pipeline, LockOwnerRetainsBus) {
  Fixture f;
  f.request(0);
  f.request(3);
  f.ctx.lock_owner = 3;
  FilterPipeline p;
  EXPECT_EQ(p.arbitrate(f.ctx).value(), 3);
}

TEST(Pipeline, LockIgnoredWhenOwnerNotRequesting) {
  Fixture f;
  f.request(0);
  f.ctx.lock_owner = 3;  // owner has nothing pending
  FilterPipeline p;
  EXPECT_EQ(p.arbitrate(f.ctx).value(), 0);
}

TEST(Pipeline, UrgentRtPreemptsEverything) {
  Fixture f;
  f.qos.program(3, ahb::QosConfig{ahb::MasterClass::kRealTime, 20});
  f.request(0);
  f.request(3);
  // Master 3 has waited 15 of its 20-cycle objective: slack 5 < threshold 8.
  f.qos.state(3).request_since = f.ctx.now - 15;
  FilterPipeline p;
  EXPECT_EQ(p.arbitrate(f.ctx).value(), 3);
}

TEST(Pipeline, RtWithComfortableSlackNotUrgent) {
  Fixture f;
  f.qos.program(3, ahb::QosConfig{ahb::MasterClass::kRealTime, 100});
  f.request(0);
  f.request(3);
  f.qos.state(3).request_since = f.ctx.now - 5;  // slack 95
  FilterPipeline p;
  // Round-robin from kNoMaster starts at 0.
  EXPECT_EQ(p.arbitrate(f.ctx).value(), 0);
}

TEST(Pipeline, MostNegativeSlackWinsAmongUrgent) {
  Fixture f;
  f.qos.program(1, ahb::QosConfig{ahb::MasterClass::kRealTime, 10});
  f.qos.program(2, ahb::QosConfig{ahb::MasterClass::kRealTime, 10});
  f.request(1);
  f.request(2);
  f.qos.state(1).request_since = f.ctx.now - 12;  // slack -2
  f.qos.state(2).request_since = f.ctx.now - 30;  // slack -20 (worse)
  FilterPipeline p;
  EXPECT_EQ(p.arbitrate(f.ctx).value(), 2);
}

TEST(Pipeline, UrgentWbufWhenNoRtEmergency) {
  Fixture f;
  f.request(0);
  f.request(f.ctx.masters);  // write buffer
  f.ctx.wbuf_urgent = true;
  FilterPipeline p;
  EXPECT_EQ(p.arbitrate(f.ctx).value(), f.ctx.masters);
}

TEST(Pipeline, RtEmergencyOutranksUrgentWbuf) {
  Fixture f;
  f.qos.program(0, ahb::QosConfig{ahb::MasterClass::kRealTime, 10});
  f.request(0);
  f.request(f.ctx.masters);
  f.ctx.wbuf_urgent = true;
  f.qos.state(0).request_since = f.ctx.now - 20;
  FilterPipeline p;
  EXPECT_EQ(p.arbitrate(f.ctx).value(), 0);
}

TEST(Pipeline, BudgetedMasterOutranksExhausted) {
  Fixture f;
  f.qos.program(0, ahb::QosConfig{ahb::MasterClass::kNonRealTime, 64});
  f.qos.program(1, ahb::QosConfig{ahb::MasterClass::kNonRealTime, 64});
  f.request(0);
  f.request(1);
  f.qos.state(0).budget = -10;  // exhausted
  f.qos.state(1).budget = 5;
  FilterPipeline p;
  EXPECT_EQ(p.arbitrate(f.ctx).value(), 1);
}

TEST(Pipeline, BestEffortMasterAlwaysInBudget) {
  Fixture f;
  f.qos.program(0, ahb::QosConfig{ahb::MasterClass::kNonRealTime, 0});
  f.request(0);
  f.qos.state(0).budget = -100;  // irrelevant at objective 0
  FilterPipeline p;
  EXPECT_EQ(p.arbitrate(f.ctx).value(), 0);
}

TEST(Pipeline, BankAffinityPrefersOpenRow) {
  Fixture f;
  f.request(0);
  f.request(1);
  f.ctx.candidates[0].affinity = ddr::BankAffinity::kIdle;
  f.ctx.candidates[1].affinity = ddr::BankAffinity::kOpenRow;
  FilterPipeline p;
  EXPECT_EQ(p.arbitrate(f.ctx).value(), 1);
}

TEST(Pipeline, BankFilterDisabledByConfig) {
  Fixture f;
  f.cfg.bi_hints_enabled = false;
  f.request(0);
  f.request(1);
  f.ctx.candidates[0].affinity = ddr::BankAffinity::kConflict;
  f.ctx.candidates[1].affinity = ddr::BankAffinity::kOpenRow;
  FilterPipeline p;
  // Without BI the round-robin tie-break from kNoMaster picks master 0.
  EXPECT_EQ(p.arbitrate(f.ctx).value(), 0);
}

TEST(Pipeline, RoundRobinRotatesAfterLastGrant) {
  Fixture f;
  f.request(0);
  f.request(2);
  f.ctx.last_grant = 0;
  FilterPipeline p;
  EXPECT_EQ(p.arbitrate(f.ctx).value(), 2);
  f.ctx.last_grant = 2;
  EXPECT_EQ(p.arbitrate(f.ctx).value(), 0);  // wraps around
}

TEST(Pipeline, RoundRobinDisabledFallsToPriority) {
  Fixture f;
  f.cfg.filter_mask =
      ahb::with_filter(f.cfg.filter_mask, ahb::FilterBit::kRoundRobin, false);
  f.request(1);
  f.request(3);
  f.ctx.last_grant = 1;  // would pick 3 under RR
  FilterPipeline p;
  EXPECT_EQ(p.arbitrate(f.ctx).value(), 1);  // fixed priority: lowest index
}

TEST(Pipeline, TraceReportsSevenStages) {
  Fixture f;
  f.request(0);
  FilterPipeline p;
  std::vector<std::pair<std::string_view, CandidateMask>> trace;
  p.arbitrate(f.ctx, &trace);
  ASSERT_EQ(trace.size(), 7u);
  EXPECT_EQ(trace[0].first, "request");
  EXPECT_EQ(trace[6].first, "priority");
}

TEST(Pipeline, StagesExposedForIntrospection) {
  FilterPipeline p;
  ASSERT_EQ(p.stages().size(), 7u);
  EXPECT_EQ(p.stages()[2]->name(), "urgency");
}

// Property: any combination of enabled filters and any requesting subset
// still yields exactly one winner from the requesting set.
class PipelineMaskProperty : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(PipelineMaskProperty, AlwaysExactlyOneWinnerFromRequesters) {
  std::mt19937_64 rng(GetParam() * 977);
  FilterPipeline p;
  for (int round = 0; round < 200; ++round) {
    Fixture f;
    f.cfg.filter_mask = GetParam();
    std::uint32_t requesting = 0;
    for (unsigned m = 0; m <= f.ctx.masters; ++m) {
      if (rng() % 2) {
        f.request(m, 1 + rng() % 16, rng() % 2);
        requesting |= 1u << m;
        f.ctx.candidates[m].affinity =
            static_cast<ddr::BankAffinity>(rng() % 3);
      }
    }
    f.ctx.last_grant = static_cast<ahb::MasterId>(rng() % 6);
    const auto winner = p.arbitrate(f.ctx);
    if (requesting == 0) {
      EXPECT_FALSE(winner.has_value());
    } else {
      ASSERT_TRUE(winner.has_value());
      EXPECT_TRUE(requesting & (1u << *winner));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FilterMasks, PipelineMaskProperty,
                         ::testing::Values<std::uint8_t>(
                             ahbp::ahb::kAllFilters, 0x01, 0x03, 0x07, 0x0F,
                             0x1F, 0x3F, 0x41, 0x55, 0x2A));

TEST(Arbiter, GrantBookkeepingUpdatesQos) {
  Fixture f;
  f.qos.program(1, ahb::QosConfig{ahb::MasterClass::kNonRealTime, 64});
  f.qos.state(1).budget = 64;
  Arbiter arb(f.cfg, f.qos);
  arb.on_request(1, 90);
  f.ctx.candidates[1].requesting = true;
  f.ctx.candidates[1].beats = 8;
  const auto grant = arb.arbitrate(f.ctx);
  ASSERT_TRUE(grant.has_value());
  EXPECT_EQ(grant->master, 1);
  EXPECT_FALSE(grant->is_wbuf);
  EXPECT_EQ(grant->waited, 10u);  // 100 - 90
  EXPECT_FALSE(f.qos.state(1).requesting);
  EXPECT_EQ(f.qos.state(1).budget, 64 - 8);
  EXPECT_EQ(f.qos.state(1).grants, 1u);
  EXPECT_EQ(arb.grants(), 1u);
  EXPECT_EQ(arb.last_grant(), 1);
}

TEST(Arbiter, WbufGrantSkipsQosBookkeeping) {
  Fixture f;
  Arbiter arb(f.cfg, f.qos);
  f.ctx.candidates[f.ctx.masters].requesting = true;
  f.ctx.candidates[f.ctx.masters].beats = 4;
  const auto grant = arb.arbitrate(f.ctx);
  ASSERT_TRUE(grant.has_value());
  EXPECT_TRUE(grant->is_wbuf);
}

TEST(Arbiter, TickRefillsBudgetsPerEpoch) {
  Fixture f;
  f.qos.program(0, ahb::QosConfig{ahb::MasterClass::kNonRealTime, 32});
  f.qos.set_epoch(100);
  Arbiter arb(f.cfg, f.qos);
  arb.tick(0);
  f.qos.state(0).budget = -5;
  arb.tick(50);  // mid-epoch: no refill
  EXPECT_EQ(f.qos.state(0).budget, -5);
  arb.tick(100);
  EXPECT_EQ(f.qos.state(0).budget, 27);
}

TEST(Arbiter, DoubleRequestAsserts) {
  Fixture f;
  Arbiter arb(f.cfg, f.qos);
  arb.on_request(0, 1);
  EXPECT_THROW(arb.on_request(0, 2), ahbp::chk::ModelAssertError);
}

}  // namespace
