// The capture→replay acceptance contract (closed loop).
//
// For every Table-1 preset: tap the master ports, run, write the captured
// streams back in as trace-backed stimulus, and the replay must reproduce
// the original run's per-master transaction stream bit-exactly and its
// cycle count exactly — in both the transaction-level and the signal-level
// model.  Captured gaps are think time relative to the same port's
// completions, so a capture taken on one model also replays cycle-exactly
// on the other.  A checkpoint taken mid-way through a trace-driven run
// must resume bit-exactly after the trace file is deleted (self-describing
// snapshot).

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "assertions/assert.hpp"
#include "core/checkpoint.hpp"
#include "core/platform.hpp"
#include "core/workloads.hpp"
#include "scenario/scenario.hpp"
#include "state/snapshot.hpp"
#include "traffic/stimulus.hpp"
#include "traffic/trace.hpp"
#include "traffic/trace_bin.hpp"

namespace {

using namespace ahbp;

constexpr unsigned kItems = 30;  // per master; keeps 12 presets x 2 models fast

/// Bitwise equality of two captured/expanded streams.
void expect_stream_equal(const traffic::Script& a, const traffic::Script& b,
                         const std::string& what, bool compare_gaps) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::string at = what + " item " + std::to_string(i);
    if (compare_gaps) {
      EXPECT_EQ(a[i].gap, b[i].gap) << at;
    }
    EXPECT_EQ(a[i].txn.id, b[i].txn.id) << at;
    EXPECT_EQ(a[i].txn.master, b[i].txn.master) << at;
    EXPECT_EQ(a[i].txn.dir, b[i].txn.dir) << at;
    EXPECT_EQ(a[i].txn.addr, b[i].txn.addr) << at;
    EXPECT_EQ(a[i].txn.size, b[i].txn.size) << at;
    EXPECT_EQ(a[i].txn.burst, b[i].txn.burst) << at;
    EXPECT_EQ(a[i].txn.beats, b[i].txn.beats) << at;
    EXPECT_EQ(a[i].txn.locked, b[i].txn.locked) << at;
    EXPECT_EQ(a[i].txn.data, b[i].txn.data) << at;
  }
}

/// Run `cfg` on `model` with the capture tap on; returns (result, captures).
std::pair<core::SimResult, std::vector<traffic::Script>> run_captured(
    const core::PlatformConfig& cfg, core::ModelKind model) {
  core::Platform p(cfg, model);
  p.enable_capture();
  p.run_to_completion();
  std::vector<traffic::Script> captured;
  for (std::size_t m = 0; m < cfg.masters.size(); ++m) {
    captured.push_back(p.capture(static_cast<ahb::MasterId>(m)).captured());
  }
  return {p.result(), std::move(captured)};
}

/// Flip every master of `cfg` to replay `captures` via resolved trace text.
core::PlatformConfig replay_config(const core::PlatformConfig& cfg,
                                   const std::vector<traffic::Script>& caps) {
  core::PlatformConfig replay = cfg;
  for (std::size_t m = 0; m < replay.masters.size(); ++m) {
    std::ostringstream os;
    traffic::save_trace(os, caps[m]);
    traffic::StimulusSpec& spec = replay.masters[m].traffic;
    spec.source = traffic::StimulusSource::kTrace;
    spec.trace_path.clear();
    spec.trace_text = os.str();
  }
  return replay;
}

class TraceReplayClosedLoop
    : public ::testing::TestWithParam<core::ModelKind> {};

TEST_P(TraceReplayClosedLoop, EveryTable1PresetReplaysBitExactly) {
  const core::ModelKind model = GetParam();
  for (const core::Workload& row : core::table1_workloads(kItems)) {
    // Original synthetic run, master ports tapped.
    const auto [orig, captured] = run_captured(row.config, model);
    ASSERT_TRUE(orig.finished) << row.name;

    // The tap saw exactly the expanded stimulus (same skeletons, in order).
    const auto scripts = core::expand_stimulus(row.config);
    for (std::size_t m = 0; m < scripts.size(); ++m) {
      expect_stream_equal(captured[m], scripts[m],
                          row.name + " capture m" + std::to_string(m),
                          /*compare_gaps=*/false);
    }

    // Replay the capture through trace-backed stimulus: same cycle count,
    // same transaction count, and the replay's own capture reproduces the
    // original capture bit-exactly (gaps included — the tap is a fixed
    // point, so a re-capture of a replay is the trace itself).
    const auto [replayed, recaptured] =
        run_captured(replay_config(row.config, captured), model);
    EXPECT_EQ(replayed.cycles, orig.cycles) << row.name;
    EXPECT_EQ(replayed.ran_cycles, orig.ran_cycles) << row.name;
    EXPECT_EQ(replayed.completed, orig.completed) << row.name;
    EXPECT_EQ(replayed.protocol_errors, orig.protocol_errors) << row.name;
    for (std::size_t m = 0; m < captured.size(); ++m) {
      expect_stream_equal(recaptured[m], captured[m],
                          row.name + " replay m" + std::to_string(m),
                          /*compare_gaps=*/true);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothModels, TraceReplayClosedLoop,
                         ::testing::Values(core::ModelKind::kTlm,
                                           core::ModelKind::kRtl),
                         [](const auto& pinfo) {
                           return std::string(core::to_string(pinfo.param));
                         });

TEST(TraceReplay, CaptureCrossesModels) {
  // Gaps are recorded relative to the capturing port's own completions, so
  // a TLM capture replays cycle-exactly on the RTL and vice versa — one
  // recorded workload serves both sides of the Table-1 comparison.
  const core::Workload row = core::table1_workloads(kItems)[4];  // dma-1
  const auto [tlm_orig, tlm_caps] = run_captured(row.config,
                                                 core::ModelKind::kTlm);
  const auto [rtl_orig, rtl_caps] = run_captured(row.config,
                                                 core::ModelKind::kRtl);

  core::Platform rtl_replay(replay_config(row.config, tlm_caps),
                            core::ModelKind::kRtl);
  rtl_replay.run_to_completion();
  EXPECT_EQ(rtl_replay.result().cycles, rtl_orig.cycles);
  EXPECT_EQ(rtl_replay.result().completed, rtl_orig.completed);

  core::Platform tlm_replay(replay_config(row.config, rtl_caps),
                            core::ModelKind::kTlm);
  tlm_replay.run_to_completion();
  EXPECT_EQ(tlm_replay.result().cycles, tlm_orig.cycles);
  EXPECT_EQ(tlm_replay.result().completed, tlm_orig.completed);
}

TEST(TraceReplay, CheckpointOfTraceDrivenRunSurvivesFileDeletion) {
  // Capture a preset, park the traces in real files, and drive a
  // trace-driven run through checkpoint/restore with the files deleted
  // before the resume: the snapshot must be self-describing.
  const core::Workload row = core::table1_workloads(kItems)[0];  // cpu-1
  for (const core::ModelKind model :
       {core::ModelKind::kTlm, core::ModelKind::kRtl}) {
    const auto [orig, captured] = run_captured(row.config, model);

    core::PlatformConfig cfg = row.config;
    std::vector<std::string> paths;
    for (std::size_t m = 0; m < cfg.masters.size(); ++m) {
      const std::string path = "trace_replay_ckpt_m" + std::to_string(m) +
                               "." + std::string(core::to_string(model)) +
                               ".trace";
      std::ofstream os(path);
      ASSERT_TRUE(os) << path;
      traffic::save_trace(os, captured[m]);
      paths.push_back(path);
      traffic::StimulusSpec& spec = cfg.masters[m].traffic;
      spec.source = traffic::StimulusSource::kTrace;
      spec.trace_path = path;
      spec.trace_text.clear();
    }

    // Straight trace-driven run for the reference result.
    core::Platform straight(cfg, model);
    straight.run_to_completion();
    const core::SimResult expect = straight.result();
    EXPECT_EQ(expect.cycles, orig.cycles);

    // Checkpoint strictly inside the run.
    core::Platform warm(cfg, model);
    warm.run(expect.ran_cycles / 2 + 1);
    ASSERT_FALSE(warm.finished());
    state::StateWriter w;
    core::write_checkpoint(w, warm, scenario::serialize(cfg));
    const std::vector<std::uint8_t> bytes = w.finish();

    // The trace files are gone; only the snapshot knows the workload.
    for (const std::string& path : paths) {
      std::remove(path.c_str());
    }

    state::StateReader r(bytes.data(), bytes.size());
    const core::CheckpointInfo info = core::read_checkpoint_header(r);
    EXPECT_EQ(info.model, core::to_string(model));
    EXPECT_EQ(info.traces.size(), cfg.masters.size());
    core::PlatformConfig resumed_cfg = scenario::parse(info.scenario_text);
    core::apply_embedded_traces(resumed_cfg, info);
    const core::SimResult resumed = core::run_from(resumed_cfg, model, r);

    EXPECT_EQ(resumed.finished, expect.finished);
    EXPECT_EQ(resumed.cycles, expect.cycles);
    EXPECT_EQ(resumed.ran_cycles, expect.ran_cycles);
    EXPECT_EQ(resumed.completed, expect.completed);
    EXPECT_EQ(resumed.protocol_errors, expect.protocol_errors);
    EXPECT_EQ(resumed.qos_warnings, expect.qos_warnings);
  }
}

TEST(TraceReplay, PathlessTraceCheckpointIsResumable) {
  // A capture fed back as resolved text only (no file ever parked on
  // disk) must still checkpoint and resume: the serialized scenario
  // carries the '<embedded>' marker and the snapshot carries the content.
  const core::Workload row = core::table1_workloads(kItems)[8];  // rt-1
  const auto [orig, captured] = run_captured(row.config,
                                             core::ModelKind::kTlm);
  const core::PlatformConfig cfg = replay_config(row.config, captured);

  core::Platform warm(cfg, core::ModelKind::kTlm);
  warm.run(orig.ran_cycles / 2 + 1);
  ASSERT_FALSE(warm.finished());
  state::StateWriter w;
  core::write_checkpoint(w, warm, scenario::serialize(cfg));
  const std::vector<std::uint8_t> bytes = w.finish();

  state::StateReader r(bytes.data(), bytes.size());
  const core::CheckpointInfo info = core::read_checkpoint_header(r);
  core::PlatformConfig resumed_cfg = scenario::parse(info.scenario_text);
  core::apply_embedded_traces(resumed_cfg, info);
  const core::SimResult resumed =
      core::run_from(resumed_cfg, core::ModelKind::kTlm, r);
  EXPECT_EQ(resumed.cycles, orig.cycles);
  EXPECT_EQ(resumed.completed, orig.completed);
}

TEST(TraceReplay, EmptyCaptureReplaysAsIdleMaster) {
  // items = 0 captures an empty stream; replaying it is a master that
  // finishes immediately — the platform must still drain cleanly.
  core::PlatformConfig cfg = core::default_platform(2, 3, kItems);
  cfg.masters[1].traffic.items = 0;
  const auto [orig, captured] = run_captured(cfg, core::ModelKind::kTlm);
  ASSERT_TRUE(orig.finished);
  EXPECT_TRUE(captured[1].empty());
  core::Platform replay(replay_config(cfg, captured), core::ModelKind::kTlm);
  replay.run_to_completion();
  EXPECT_EQ(replay.result().cycles, orig.cycles);
  EXPECT_EQ(replay.result().completed, orig.completed);
}

TEST(TraceReplay, EmptyTraceFileResolvesAndSurvivesDeletion) {
  // A zero-byte trace file is a valid empty stimulus; resolution must mark
  // it authoritative (not "unresolved") so a checkpoint-style flow never
  // goes back to the (deleted) file.
  const std::string path = "trace_replay_empty.trace";
  { std::ofstream os(path); ASSERT_TRUE(os); }
  core::PlatformConfig cfg = core::default_platform(2, 3, kItems);
  traffic::StimulusSpec& spec = cfg.masters[1].traffic;
  spec.source = traffic::StimulusSource::kTrace;
  spec.trace_path = path;
  core::resolve_stimulus(cfg);
  EXPECT_TRUE(spec.resolved());
  std::remove(path.c_str());
  // Expansion works purely from the resolved (empty) text.
  const auto scripts = core::expand_stimulus(cfg);
  EXPECT_TRUE(scripts[1].empty());
  core::Platform p(cfg, core::ModelKind::kTlm);
  p.run_to_completion();
  EXPECT_TRUE(p.result().finished);
}

TEST(TraceReplay, TraceWiderThanBusRejected) {
  // A trace recorded on an 8-byte bus must not silently replay on a
  // 4-byte one.
  core::PlatformConfig cfg = core::default_platform(1, 3, kItems);
  cfg.bus.data_width_bytes = 8;
  const auto [orig, captured] = run_captured(cfg, core::ModelKind::kTlm);
  ASSERT_TRUE(orig.finished);
  core::PlatformConfig replay = replay_config(cfg, captured);
  replay.bus.data_width_bytes = 4;
  EXPECT_THROW(core::expand_stimulus(replay), std::runtime_error);
}

TEST(TraceReplay, TraceOutsideApertureRejected) {
  core::PlatformConfig cfg = core::default_platform(1, 3, kItems);
  traffic::StimulusSpec& spec = cfg.masters[0].traffic;
  spec.source = traffic::StimulusSource::kTrace;
  spec.trace_text = "0 R fffffff0 4 SINGLE 1\n";  // far past an 8MB device
  EXPECT_THROW(core::expand_stimulus(cfg), std::runtime_error);
}

TEST(TraceReplay, BinaryCaptureReplaysBitExactlyOnBothModels) {
  // The binary format closes the same loop as the text format: feed a
  // capture back as binary trace_text (auto-detected by magic) and both
  // models reproduce the original cycles, and a re-capture of the replay
  // reproduces the capture bit-exactly, gaps included.
  const core::Workload row = core::table1_workloads(kItems)[8];  // rt-1
  for (const core::ModelKind model :
       {core::ModelKind::kTlm, core::ModelKind::kRtl}) {
    const auto [orig, captured] = run_captured(row.config, model);
    ASSERT_TRUE(orig.finished);

    core::PlatformConfig replay = row.config;
    for (std::size_t m = 0; m < replay.masters.size(); ++m) {
      traffic::StimulusSpec& spec = replay.masters[m].traffic;
      spec.source = traffic::StimulusSource::kTrace;
      spec.trace_path.clear();
      spec.trace_text = traffic::trace_bin_bytes(captured[m]);
    }
    const auto [replayed, recaptured] = run_captured(replay, model);
    EXPECT_EQ(replayed.cycles, orig.cycles)
        << core::to_string(model);
    EXPECT_EQ(replayed.completed, orig.completed);
    for (std::size_t m = 0; m < captured.size(); ++m) {
      expect_stream_equal(recaptured[m], captured[m],
                          std::string(core::to_string(model)) +
                              " bin replay m" + std::to_string(m),
                          /*compare_gaps=*/true);
    }
  }
}

TEST(TraceReplay, BinaryTraceCheckpointSurvivesFileDeletion) {
  // Same self-describing-snapshot contract as the text-trace test, with
  // the parked files in the binary format: the checkpoint embeds the
  // binary bytes intact and the resume auto-detects them.
  const core::Workload row = core::table1_workloads(kItems)[4];  // dma-1
  for (const core::ModelKind model :
       {core::ModelKind::kTlm, core::ModelKind::kRtl}) {
    const auto [orig, captured] = run_captured(row.config, model);

    core::PlatformConfig cfg = row.config;
    std::vector<std::string> paths;
    for (std::size_t m = 0; m < cfg.masters.size(); ++m) {
      const std::string path = "trace_replay_bin_ckpt_m" + std::to_string(m) +
                               "." + std::string(core::to_string(model)) +
                               ".trace";
      std::ofstream os(path, std::ios::binary);
      ASSERT_TRUE(os) << path;
      traffic::save_trace_bin(os, captured[m]);
      paths.push_back(path);
      traffic::StimulusSpec& spec = cfg.masters[m].traffic;
      spec.source = traffic::StimulusSource::kTrace;
      spec.trace_path = path;
      spec.trace_text.clear();
    }

    core::Platform straight(cfg, model);
    straight.run_to_completion();
    const core::SimResult expect = straight.result();
    EXPECT_EQ(expect.cycles, orig.cycles);

    core::Platform warm(cfg, model);
    warm.run(expect.ran_cycles / 2 + 1);
    ASSERT_FALSE(warm.finished());
    state::StateWriter w;
    core::write_checkpoint(w, warm, scenario::serialize(cfg));
    const std::vector<std::uint8_t> bytes = w.finish();

    for (const std::string& path : paths) {
      std::remove(path.c_str());
    }

    state::StateReader r(bytes.data(), bytes.size());
    const core::CheckpointInfo info = core::read_checkpoint_header(r);
    ASSERT_EQ(info.traces.size(), cfg.masters.size());
    // The embedded payloads are the binary images, carried intact.
    for (const auto& [master, text] : info.traces) {
      EXPECT_TRUE(traffic::is_trace_bin(text)) << master;
    }
    core::PlatformConfig resumed_cfg = scenario::parse(info.scenario_text);
    core::apply_embedded_traces(resumed_cfg, info);
    const core::SimResult resumed = core::run_from(resumed_cfg, model, r);

    EXPECT_EQ(resumed.finished, expect.finished);
    EXPECT_EQ(resumed.cycles, expect.cycles);
    EXPECT_EQ(resumed.ran_cycles, expect.ran_cycles);
    EXPECT_EQ(resumed.completed, expect.completed);
    EXPECT_EQ(resumed.protocol_errors, expect.protocol_errors);
  }
}

TEST(TraceReplay, DirectoryTracePathRejected) {
  // Regression: an openable directory used to resolve into an empty
  // workload with trace_loaded = true (on Linux, ifstream opens a
  // directory and rdbuf extraction reports it exactly like an empty
  // file).  It must throw, naming the path, and leave the spec
  // unresolved.
  const std::string dir = "trace_replay_dir_fixture";
  std::filesystem::create_directory(dir);

  traffic::StimulusSpec spec;
  spec.source = traffic::StimulusSource::kTrace;
  spec.trace_path = dir;
  try {
    traffic::resolve(spec);
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(dir), std::string::npos) << msg;
    EXPECT_NE(msg.find("directory"), std::string::npos) << msg;
  }
  EXPECT_FALSE(spec.trace_loaded);
  EXPECT_FALSE(spec.resolved());

  // Through the platform choke point the error also names the master.
  core::PlatformConfig cfg = core::default_platform(2, 3, kItems);
  cfg.masters[1].traffic.source = traffic::StimulusSource::kTrace;
  cfg.masters[1].traffic.trace_path = dir;
  try {
    core::expand_stimulus(cfg);
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("master 1"), std::string::npos)
        << e.what();
  }
  std::filesystem::remove(dir);
}

TEST(TraceReplay, UnreadableTraceFileRejected) {
  // A file the process cannot open must throw, not resolve empty.  Root
  // bypasses permission bits entirely, so skip there (CI runners and
  // developer machines exercise it).
  if (::geteuid() == 0) {
    GTEST_SKIP() << "running as root: permission bits are not enforced";
  }
  const std::string path = "trace_replay_unreadable.trace";
  {
    std::ofstream os(path);
    ASSERT_TRUE(os);
    os << "0 R 100 4 INCR4 4\n";
  }
  ASSERT_EQ(::chmod(path.c_str(), 0), 0);

  traffic::StimulusSpec spec;
  spec.source = traffic::StimulusSource::kTrace;
  spec.trace_path = path;
  EXPECT_THROW(traffic::resolve(spec), std::runtime_error);
  EXPECT_FALSE(spec.trace_loaded);

  ::chmod(path.c_str(), 0600);
  std::remove(path.c_str());
}

TEST(TraceReplay, RecorderRejectsIssueBeforeCompletion) {
  // Regression: `now - last_complete_` on uint64 wrapped a contradictory
  // issue-before-completion report into a near-2^64 gap that poisoned the
  // capture.  The recorder must assert (throw) instead, and the bad entry
  // must not be captured.
  traffic::TraceRecorder rec(0);
  ahb::Transaction txn;
  txn.addr = 0x100;
  rec.record_issue(10, txn);
  rec.record_complete(100);
  EXPECT_THROW(rec.record_issue(50, txn), chk::ModelAssertError);
  ASSERT_EQ(rec.captured().size(), 1u);  // the bad entry was rejected

  // Equality is legal (zero think time): gap saturates at exactly 0.
  rec.record_issue(100, txn);
  ASSERT_EQ(rec.captured().size(), 2u);
  EXPECT_EQ(rec.captured()[1].gap, 0u);

  // And the normal case still measures think time.
  rec.record_complete(120);
  rec.record_issue(127, txn);
  EXPECT_EQ(rec.captured()[2].gap, 7u);
}

TEST(TraceReplay, MissingTraceFileNamesTheMaster) {
  core::PlatformConfig cfg = core::default_platform(2, 3, kItems);
  traffic::StimulusSpec& spec = cfg.masters[1].traffic;
  spec.source = traffic::StimulusSource::kTrace;
  spec.trace_path = "definitely/not/here.trace";
  try {
    core::expand_stimulus(cfg);
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("master 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("definitely/not/here.trace"), std::string::npos)
        << msg;
  }
}

}  // namespace
