// The pin-accurate platform: end-to-end runs, protocol cleanliness, data
// integrity, write-buffer streaming path, detail/bit-level layer
// invariance (fidelity knobs must not change architecture), and the
// signal-level building blocks.

#include <gtest/gtest.h>

#include "rtl/bitlevel.hpp"
#include "rtl/fabric.hpp"

namespace {

using namespace ahbp;
using namespace ahbp::rtl;

ddr::Geometry geom4() {
  ddr::Geometry g;
  g.banks = 4;
  g.rows = 64;
  g.cols = 32;
  g.col_bytes = 4;
  return g;
}

RtlFabricConfig base_cfg(unsigned masters) {
  RtlFabricConfig fc;
  fc.geom = geom4();
  fc.timing = ddr::toy_timing();
  fc.qos.assign(masters, ahb::QosConfig{});
  return fc;
}

traffic::Script script_for(traffic::PatternKind kind, unsigned items,
                           ahb::Addr base, std::uint64_t seed,
                           ahb::MasterId m) {
  traffic::PatternConfig pat;
  pat.kind = kind;
  pat.items = items;
  pat.base = base;
  pat.span = 8192;
  pat.seed = seed;
  return traffic::make_script(pat, m);
}

TEST(RtlFabric, SingleMasterCompletesClean) {
  auto fc = base_cfg(1);
  std::vector<traffic::Script> scripts;
  scripts.push_back(script_for(traffic::PatternKind::kCpu, 20, 0, 3, 0));
  RtlFabric fabric(fc, std::move(scripts));
  fabric.run(50000);
  EXPECT_TRUE(fabric.finished());
  EXPECT_EQ(fabric.completed_txns(), 20u);
  EXPECT_EQ(fabric.violations().errors(), 0u)
      << fabric.violations().to_string();
}

TEST(RtlFabric, MultiMasterMixedTrafficClean) {
  auto fc = base_cfg(3);
  std::vector<traffic::Script> scripts;
  scripts.push_back(script_for(traffic::PatternKind::kCpu, 25, 0, 7, 0));
  scripts.push_back(script_for(traffic::PatternKind::kDma, 25, 8192, 7, 1));
  scripts.push_back(
      script_for(traffic::PatternKind::kRandom, 25, 16384, 7, 2));
  RtlFabric fabric(fc, std::move(scripts));
  fabric.run(100000);
  EXPECT_TRUE(fabric.finished()) << fabric.dump_state();
  EXPECT_EQ(fabric.completed_txns(), 75u);
  EXPECT_EQ(fabric.violations().errors(), 0u)
      << fabric.violations().to_string();
}

TEST(RtlFabric, ReadDataMatchesWrites) {
  // One master writes then reads the same addresses; the reads must see
  // the written values (exercises the full signal-level datapath).
  auto fc = base_cfg(1);
  traffic::Script s;
  for (unsigned i = 0; i < 4; ++i) {
    traffic::TrafficItem w;
    w.txn.dir = ahb::Dir::kWrite;
    w.txn.addr = 0x100 + 16 * i;
    w.txn.size = ahb::Size::kWord;
    w.txn.burst = ahb::Burst::kIncr4;
    w.txn.beats = 4;
    w.txn.data = {i + 1, i + 2, i + 3, i + 4};
    w.txn.id = s.size() + 1;
    s.push_back(w);
  }
  for (unsigned i = 0; i < 4; ++i) {
    traffic::TrafficItem r;
    r.txn.dir = ahb::Dir::kRead;
    r.txn.addr = 0x100 + 16 * i;
    r.txn.size = ahb::Size::kWord;
    r.txn.burst = ahb::Burst::kIncr4;
    r.txn.beats = 4;
    r.txn.id = s.size() + 1;
    s.push_back(r);
  }
  std::vector<traffic::Script> scripts;
  scripts.push_back(std::move(s));
  RtlFabric fabric(fc, std::move(scripts));
  std::vector<ahb::Transaction> reads;
  fabric.set_on_complete(0, [&](const ahb::Transaction& t) {
    if (t.dir == ahb::Dir::kRead) {
      reads.push_back(t);
    }
  });
  fabric.run(50000);
  ASSERT_TRUE(fabric.finished()) << fabric.dump_state();
  ASSERT_EQ(reads.size(), 4u);
  for (unsigned i = 0; i < 4; ++i) {
    ASSERT_EQ(reads[i].data.size(), 4u);
    for (unsigned b = 0; b < 4; ++b) {
      EXPECT_EQ(reads[i].data[b], i + 1 + b) << "txn " << i << " beat " << b;
    }
  }
  EXPECT_EQ(fabric.violations().errors(), 0u);
}

TEST(RtlFabric, WriteBufferStreamingPathUsed) {
  // Two masters, one hammering reads, one writing: writes go through the
  // take/stream path.
  auto fc = base_cfg(2);
  std::vector<traffic::Script> scripts;
  scripts.push_back(script_for(traffic::PatternKind::kDma, 30, 0, 11, 0));
  traffic::PatternConfig pat;
  pat.kind = traffic::PatternKind::kCpu;
  pat.items = 30;
  pat.base = 8192;
  pat.span = 8192;
  pat.read_ratio = 0.0;  // all writes
  pat.seed = 11;
  scripts.push_back(traffic::make_script(pat, 1));
  RtlFabric fabric(fc, std::move(scripts));
  fabric.run(100000);
  ASSERT_TRUE(fabric.finished()) << fabric.dump_state();
  const auto prof = fabric.profile();
  EXPECT_GT(prof.write_buffer.absorbed, 0u);
  EXPECT_EQ(prof.write_buffer.absorbed, prof.write_buffer.drained);
  EXPECT_EQ(fabric.violations().errors(), 0u)
      << fabric.violations().to_string();
}

TEST(RtlFabric, DetailLayersDoNotChangeArchitecture) {
  // Fidelity knob invariance: with and without the RT-detail/bit-level
  // layers the cycle-by-cycle behaviour must be identical.
  auto make = [&](bool detail) {
    auto fc = base_cfg(2);
    fc.rt_detail = detail;
    std::vector<traffic::Script> scripts;
    scripts.push_back(script_for(traffic::PatternKind::kCpu, 20, 0, 13, 0));
    scripts.push_back(script_for(traffic::PatternKind::kDma, 20, 8192, 13, 1));
    auto fabric = std::make_unique<RtlFabric>(fc, std::move(scripts));
    fabric->run(100000);
    return fabric;
  };
  auto with = make(true);
  auto without = make(false);
  EXPECT_TRUE(with->finished());
  EXPECT_TRUE(without->finished());
  EXPECT_EQ(with->last_completion(), without->last_completion());
  EXPECT_EQ(with->completed_txns(), without->completed_txns());
  // The detail build evaluates strictly more kernel activity.
  EXPECT_GT(with->kernel().stats().signal_commits,
            without->kernel().stats().signal_commits);
}

TEST(RtlFabric, QosStateVisibleInProfile) {
  auto fc = base_cfg(2);
  fc.qos[0] = ahb::QosConfig{ahb::MasterClass::kRealTime, 2};  // tiny budget
  std::vector<traffic::Script> scripts;
  scripts.push_back(script_for(traffic::PatternKind::kRtStream, 10, 0, 5, 0));
  scripts.push_back(script_for(traffic::PatternKind::kDma, 40, 8192, 5, 1));
  RtlFabric fabric(fc, std::move(scripts));
  fabric.run(100000);
  ASSERT_TRUE(fabric.finished());
  const auto prof = fabric.profile();
  EXPECT_EQ(prof.masters.size(), 2u);
  // With a 2-cycle objective some grant inevitably misses it.
  EXPECT_GT(prof.masters[0].qos_misses, 0u);
  EXPECT_GT(fabric.violations().warnings(), 0u);
  EXPECT_EQ(fabric.violations().errors(), 0u);
}

TEST(RtlFabric, DumpStateRenders) {
  auto fc = base_cfg(1);
  std::vector<traffic::Script> scripts;
  scripts.push_back(script_for(traffic::PatternKind::kCpu, 5, 0, 3, 0));
  RtlFabric fabric(fc, std::move(scripts));
  fabric.run(10);
  const std::string s = fabric.dump_state();
  EXPECT_NE(s.find("m0:"), std::string::npos);
  EXPECT_NE(s.find("wbuf:"), std::string::npos);
  EXPECT_NE(s.find("arbiter"), std::string::npos);
}

TEST(BitBus, DriveAndSampleRoundtrip) {
  sim::EventKernel k;
  BitBus bus(k, "t", 16);
  bus.drive(0xA5C3);
  k.settle();
  EXPECT_EQ(bus.sample(), 0xA5C3u);
  bus.drive(0x0001);
  k.settle();
  EXPECT_EQ(bus.sample(), 0x0001u);
}

TEST(RippleIncrementer, ComputesSumThroughCarryChain) {
  sim::EventKernel k;
  BitBus in(k, "in", 32);
  sim::Signal<std::uint8_t> step(k, "step", 0);
  RippleIncrementer incr(k, "incr", in, step);
  step.write(4);
  in.drive(0x0000FFFC);
  k.settle();  // carries ripple across nibbles
  EXPECT_EQ(incr.sum(), 0x00010000u);
  in.drive(0x12345678);
  k.settle();
  EXPECT_EQ(incr.sum(), 0x1234567Cu);
}

TEST(RippleIncrementer, CarryCascadeCostsDeltas) {
  sim::EventKernel k;
  BitBus in(k, "in", 32);
  sim::Signal<std::uint8_t> step(k, "step", 1);
  RippleIncrementer incr(k, "incr", in, step);
  in.drive(0xFFFFFFFF);
  const auto before = k.stats().deltas;
  k.settle();  // carry ripples through all 8 nibbles
  EXPECT_EQ(incr.sum(), 0x0u);
  EXPECT_GE(k.stats().deltas - before, 8u);
}

TEST(RtlFabric, VcdDumpProducesValidWaveform) {
  auto fc = base_cfg(1);
  std::vector<traffic::Script> scripts;
  scripts.push_back(script_for(traffic::PatternKind::kCpu, 8, 0, 3, 0));
  RtlFabric fabric(fc, std::move(scripts));
  std::ostringstream vcd;
  fabric.enable_vcd(vcd);
  fabric.run(2000);
  EXPECT_TRUE(fabric.finished());
  const std::string text = vcd.str();
  EXPECT_NE(text.find("$timescale"), std::string::npos);
  EXPECT_NE(text.find("haddr"), std::string::npos);
  EXPECT_NE(text.find("hready"), std::string::npos);
  // Real activity: timestamps and value changes present.
  EXPECT_NE(text.find("\n#"), std::string::npos);
  EXPECT_GT(text.size(), 1000u);
}

TEST(RtlFabric, DetailLayerInstantiatesFullRegisterPopulation) {
  auto fc = base_cfg(2);
  std::vector<traffic::Script> scripts;
  scripts.push_back(script_for(traffic::PatternKind::kCpu, 3, 0, 3, 0));
  scripts.push_back(script_for(traffic::PatternKind::kCpu, 3, 8192, 3, 1));
  RtlFabric with(fc, std::move(scripts));
  // Detail + bit-level layers multiply the signal population several-fold
  // over the architectural wires alone.
  std::vector<traffic::Script> scripts2;
  scripts2.push_back(script_for(traffic::PatternKind::kCpu, 3, 0, 3, 0));
  scripts2.push_back(script_for(traffic::PatternKind::kCpu, 3, 8192, 3, 1));
  auto fc2 = base_cfg(2);
  fc2.rt_detail = false;
  RtlFabric without(fc2, std::move(scripts2));
  EXPECT_GT(with.kernel().signals().size(),
            3 * without.kernel().signals().size());
}

TEST(BitLevelLayer, ShadowsSharedBusesBitTrue) {
  sim::EventKernel k;
  SharedWires sh(k, 2, 4);
  MasterWires m0(k, 0), m1(k, 1), wb(k, 2);
  BitLevelLayer layer(k, sh, {&m0, &m1, &wb});
  EXPECT_GT(layer.signal_count(), 200u);  // 3 buses + per-column pins
  sh.haddr.write(0xABCD1234);
  k.settle();
  // The blasted pins re-assemble to the driven word (inspected through the
  // kernel's signal registry by name).
  std::uint64_t v = 0;
  for (const auto* sig : k.signals()) {
    const std::string_view n = sig->name();
    if (n.rfind("pin.haddr.b", 0) == 0) {
      const unsigned bit =
          static_cast<unsigned>(std::stoul(std::string(n.substr(11))));
      if (sig->value_string() == "1") {
        v |= 1ull << bit;
      }
    }
  }
  EXPECT_EQ(v, 0xABCD1234u);
}

}  // namespace
