// Address-to-(bank,row,col) mapping: roundtrips, interleaving behaviour of
// the two mapping schemes, and capacity math.

#include <gtest/gtest.h>

#include "ddr/geometry.hpp"

namespace {

using namespace ahbp::ddr;

Geometry small_geom(Mapping m = Mapping::kRowBankCol) {
  Geometry g;
  g.banks = 4;
  g.rows = 64;
  g.cols = 32;
  g.col_bytes = 4;
  g.mapping = m;
  return g;
}

TEST(Geometry, CapacityAndRowBytes) {
  const Geometry g = small_geom();
  EXPECT_EQ(g.capacity(), 4u * 64 * 32 * 4);
  EXPECT_EQ(g.row_bytes(), 32u * 4);
}

class GeometryRoundtrip : public ::testing::TestWithParam<Mapping> {};

TEST_P(GeometryRoundtrip, EncodeDecodeIdentity) {
  const Geometry g = small_geom(GetParam());
  for (ahbp::ahb::Addr a = 0; a < g.capacity(); a += g.col_bytes) {
    const Coord c = g.decode(a);
    EXPECT_LT(c.bank, g.banks);
    EXPECT_LT(c.row, g.rows);
    EXPECT_LT(c.col, g.cols);
    EXPECT_EQ(g.encode(c), a);
  }
}

INSTANTIATE_TEST_SUITE_P(BothMappings, GeometryRoundtrip,
                         ::testing::Values(Mapping::kRowBankCol,
                                           Mapping::kBankRowCol));

TEST(Geometry, RowBankColInterleavesSequentialStreams) {
  // Sequential addresses cross into the next bank after one row's worth of
  // columns — the interleaving-friendly layout.
  const Geometry g = small_geom(Mapping::kRowBankCol);
  const Coord first = g.decode(0);
  const Coord next_page = g.decode(g.row_bytes());
  EXPECT_EQ(first.bank, 0u);
  EXPECT_EQ(next_page.bank, 1u);
  EXPECT_EQ(next_page.row, first.row);
}

TEST(Geometry, BankRowColKeepsStreamsInOneBank) {
  const Geometry g = small_geom(Mapping::kBankRowCol);
  const Coord first = g.decode(0);
  const Coord next_page = g.decode(g.row_bytes());
  EXPECT_EQ(first.bank, next_page.bank);
  EXPECT_EQ(next_page.row, first.row + 1);
}

TEST(Geometry, AddressesWrapAtCapacity) {
  const Geometry g = small_geom();
  EXPECT_EQ(g.decode(g.capacity()), g.decode(0));
  EXPECT_EQ(g.decode(g.capacity() + 8), g.decode(8));
}

TEST(Geometry, SubColumnBytesShareCoord) {
  const Geometry g = small_geom();
  EXPECT_EQ(g.decode(0), g.decode(1));
  EXPECT_EQ(g.decode(0), g.decode(3));
  EXPECT_NE(g.decode(0), g.decode(4));
}

}  // namespace
