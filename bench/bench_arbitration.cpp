// Ablation A — the seven arbitration filters (§3.3, §3.7 "arbitration
// algorithm on/off").  The paper states the filters exist to "maximize bus
// utilization and guarantee master's QoS"; this bench quantifies both
// claims by disabling one mechanism at a time on the RT-stream mix and
// reporting QoS misses, RT latency and total runtime.

#include <cstdlib>
#include <iostream>

#include "core/platform.hpp"
#include "core/workloads.hpp"
#include "stats/report.hpp"

namespace {

/// RT-stream mix with the real-time master at the *lowest* fixed priority
/// (index 3): any QoS the RT master receives is then attributable to the
/// filters, not to its position in the final priority tie-break.
ahbp::core::PlatformConfig rt_last_mix(unsigned items) {
  using namespace ahbp;
  core::PlatformConfig cfg = core::default_platform(4, 7, items);
  cfg.masters[0].traffic.kind = traffic::PatternKind::kDma;
  cfg.masters[0].traffic.dma_burst_beats = 16;
  cfg.masters[0].qos.objective = 128;
  cfg.masters[1].traffic.kind = traffic::PatternKind::kCpu;
  cfg.masters[1].traffic.mean_gap = 1;
  cfg.masters[2].traffic.kind = traffic::PatternKind::kRandom;
  cfg.masters[2].qos.objective = 0;
  cfg.masters[3].qos = {ahb::MasterClass::kRealTime, 32};
  cfg.masters[3].traffic.kind = traffic::PatternKind::kRtStream;
  cfg.masters[3].traffic.period = 24;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ahbp;
  const unsigned items =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 300;

  std::cout << "=== Ablation A: arbitration filters (TLM, RT master at the"
               " lowest fixed priority, "
            << items << " txns/master) ===\n\n";

  struct Variant {
    const char* name;
    std::uint8_t mask;
  };
  const std::uint8_t all = ahb::kAllFilters;
  const Variant variants[] = {
      {"all seven filters", all},
      {"no urgency filter",
       ahb::with_filter(all, ahb::FilterBit::kUrgency, false)},
      {"no qos-budget filter",
       ahb::with_filter(all, ahb::FilterBit::kQosBudget, false)},
      {"no bank filter", ahb::with_filter(all, ahb::FilterBit::kBank, false)},
      {"no round-robin",
       ahb::with_filter(all, ahb::FilterBit::kRoundRobin, false)},
      {"fixed priority only",
       ahb::with_filter(
           ahb::with_filter(
               ahb::with_filter(
                   ahb::with_filter(all, ahb::FilterBit::kUrgency, false),
                   ahb::FilterBit::kQosBudget, false),
               ahb::FilterBit::kBank, false),
           ahb::FilterBit::kRoundRobin, false)},
  };

  stats::TextTable t({"arbitration", "cycles", "RT qos misses", "RT wait avg",
                      "RT wait p99", "RT wait max", "util"});
  std::uint64_t max_all = 0, max_none = 0;
  std::uint32_t objective = 0;
  for (const Variant& v : variants) {
    auto cfg = rt_last_mix(items);
    objective = cfg.masters[3].qos.objective;
    cfg.bus.filter_mask = v.mask;
    const auto r = core::run_tlm(cfg);
    const auto& rt = r.profile.masters[3];
    if (std::string(v.name) == "all seven filters") {
      max_all = rt.grant_wait.summary().max();
    }
    if (std::string(v.name) == "fixed priority only") {
      max_none = rt.grant_wait.summary().max();
    }
    t.add_row({v.name, std::to_string(r.cycles),
               std::to_string(rt.qos_misses),
               stats::fmt_double(rt.grant_wait.summary().mean(), 1),
               std::to_string(rt.grant_wait.percentile_upper(99)),
               std::to_string(rt.grant_wait.summary().max()),
               stats::fmt_percent(r.profile.bus.utilization())});
  }
  t.print(std::cout);

  std::cout
      << "\nthe guarantee the paper's §2 claims is about the *tail*: the"
         " full chain bounds\nthe RT master's worst-case wait near its "
      << objective
      << "-cycle objective, while plain fixed\npriority leaves the lowest-"
         "priority RT master open to unbounded starvation\n(occasional"
         " thousand-cycle waits), even when its average looks acceptable.\n";
  const bool ok = max_all <= 4ull * objective && max_none > max_all;
  std::cout << "\nRESULT: " << (ok ? "OK" : "FAIL") << " (full-chain max "
            << max_all << " <= 4x objective; fixed-priority max " << max_none
            << ")\n";
  return ok ? 0 : 1;
}
