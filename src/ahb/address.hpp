#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ahb/types.hpp"
#include "state/snapshot.hpp"

/// \file address.hpp
/// Burst address sequencing and the system address map.
///
/// Burst address math is protocol *semantics*, shared verbatim by the
/// signal-level model and the TLM so that any cycle-count difference between
/// them comes from timing abstraction, never from divergent address streams.

namespace ahbp::ahb {

/// Compute the address of beat `beat` (0-based) of a burst starting at
/// `start`.  INCR* bursts increment by the beat size; WRAP* bursts wrap at
/// the boundary of (beats * beat size) bytes, as per AMBA 2.0 §3.5.
///
/// `start` must be aligned to the transfer size (checked by callers /
/// protocol assertions, not here).
Addr burst_beat_addr(Addr start, Size size, Burst burst, unsigned beat) noexcept;

/// True if every beat of the burst stays within the same 1KB boundary
/// region, which AMBA 2.0 requires for INCR* bursts (wrapping bursts satisfy
/// it by construction).  Traffic generators use this to emit legal bursts.
bool burst_within_1kb(Addr start, Size size, Burst burst,
                      unsigned beats) noexcept;

/// Sequential address iterator used by master drivers: yields the expected
/// HADDR for each beat so protocol checkers can verify SEQ addresses.
class BurstSequencer {
 public:
  BurstSequencer() = default;
  BurstSequencer(Addr start, Size size, Burst burst, unsigned beats) noexcept;

  /// Address of the current beat.
  Addr current() const noexcept { return cur_; }

  /// Beat index (0-based).
  unsigned beat() const noexcept { return beat_; }

  unsigned beats() const noexcept { return beats_; }

  /// True when all beats have been consumed.
  bool done() const noexcept { return beat_ >= beats_; }

  /// True if the *next* advance() would finish the burst.
  bool last_beat() const noexcept { return beat_ + 1 == beats_; }

  /// Move to the next beat.
  void advance() noexcept;

  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);

 private:
  Addr start_ = 0;
  Addr cur_ = 0;
  Size size_ = Size::kWord;
  Burst burst_ = Burst::kSingle;
  unsigned beats_ = 1;
  unsigned beat_ = 0;
};

/// One region of the system memory map.
struct Region {
  Addr base = 0;
  Addr size = 0;      ///< bytes; region covers [base, base+size)
  int slave = -1;     ///< slave port index
  std::string name;

  bool contains(Addr a) const noexcept { return a >= base && a - base < size; }
};

/// The address decoder (the AHB "decoder" component).  Maps HADDR to a
/// slave select.  Regions must not overlap (validated on add).
class AddressMap {
 public:
  /// Add a region; throws std::invalid_argument on overlap or zero size.
  void add(Region region);

  /// Slave index for an address, or std::nullopt if unmapped (an AHB system
  /// typically routes unmapped addresses to a default slave that ERRORs).
  std::optional<int> decode(Addr a) const noexcept;

  const std::vector<Region>& regions() const noexcept { return regions_; }

 private:
  std::vector<Region> regions_;
};

}  // namespace ahbp::ahb
