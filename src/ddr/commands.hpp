#pragma once

#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

/// \file commands.hpp
/// DRAM command vocabulary used by the controller, the timing checker and
/// the profiling layer.

namespace ahbp::ddr {

enum class CmdKind : std::uint8_t {
  kNop = 0,
  kActivate,   ///< open a row in a bank (RAS)
  kRead,       ///< column read burst (CAS)
  kWrite,      ///< column write burst (CAS)
  kPrecharge,  ///< close the open row of a bank
  kRefresh,    ///< auto-refresh (all banks must be idle)
};

/// Scheduling priority class (paper §3.3: "column, row, and pre-charge
/// accesses have different priorities by scheduling scheme").  Lower value
/// wins; column accesses move data so they outrank row opens, which outrank
/// speculative precharges.
enum class CmdClass : std::uint8_t {
  kColumn = 0,
  kRow = 1,
  kPrecharge = 2,
  kOther = 3,
};

constexpr CmdClass cmd_class(CmdKind k) noexcept {
  switch (k) {
    case CmdKind::kRead:
    case CmdKind::kWrite:
      return CmdClass::kColumn;
    case CmdKind::kActivate:
      return CmdClass::kRow;
    case CmdKind::kPrecharge:
      return CmdClass::kPrecharge;
    case CmdKind::kRefresh:
    case CmdKind::kNop:
      return CmdClass::kOther;
  }
  return CmdClass::kOther;
}

/// One command on the DRAM command bus.
struct Command {
  CmdKind kind = CmdKind::kNop;
  std::uint32_t bank = 0;
  std::uint32_t row = 0;   ///< kActivate only
  std::uint32_t col = 0;   ///< kRead/kWrite only
  unsigned beats = 0;      ///< kRead/kWrite: data beats this CAS moves
};

std::string_view to_string(CmdKind k) noexcept;

}  // namespace ahbp::ddr
