// Ablation C — bank interleaving via the BI next-transaction hint (§2,
// §3.4): "the arbiter gives the next transaction information to DDRC in
// advance, then DDRC can pre-charge the next accessed memory bank ... the
// next data can be served immediately right after the previous data is
// processed."  This bench toggles the BI hints and the request-pipelining
// scheme on a DMA+CPU mix and also contrasts the interleaving-friendly
// address mapping against the bank-serial one.

#include <cstdlib>
#include <iostream>

#include "core/platform.hpp"
#include "core/workloads.hpp"
#include "stats/report.hpp"

int main(int argc, char** argv) {
  using namespace ahbp;
  const unsigned items =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 300;

  std::cout << "=== Ablation C: bank interleaving / BI hints (TLM, dma-1 mix, "
            << items << " txns/master) ===\n\n";

  struct Variant {
    const char* name;
    bool bi;
    bool pipelining;
    ddr::Mapping mapping;
  };
  const Variant variants[] = {
      {"BI hints + pipelining (AHB+)", true, true, ddr::Mapping::kRowBankCol},
      {"no BI hints", false, true, ddr::Mapping::kRowBankCol},
      {"no request pipelining", true, false, ddr::Mapping::kRowBankCol},
      {"plain AHB (no BI, no pipelining)", false, false,
       ddr::Mapping::kRowBankCol},
      {"bank-serial mapping", true, true, ddr::Mapping::kBankRowCol},
  };

  stats::TextTable t({"configuration", "cycles", "throughput B/cyc", "util",
                      "row hit", "hint ACT", "ACT"});
  sim::Cycle cycles_ahbp = 0, cycles_plain = 0;
  for (const Variant& v : variants) {
    auto cfg = core::table1_workloads(items, 13)[4].config;  // dma-1
    cfg.bus.bi_hints_enabled = v.bi;
    cfg.bus.request_pipelining = v.pipelining;
    cfg.geom.mapping = v.mapping;
    const auto r = core::run_tlm(cfg);
    if (std::string(v.name).rfind("BI hints +", 0) == 0) {
      cycles_ahbp = r.cycles;
    }
    if (std::string(v.name).rfind("plain AHB", 0) == 0) {
      cycles_plain = r.cycles;
    }
    t.add_row({v.name, std::to_string(r.cycles),
               stats::fmt_double(r.profile.bus.throughput(), 3),
               stats::fmt_percent(r.profile.bus.utilization()),
               stats::fmt_percent(r.profile.ddr.row_hit_rate()),
               std::to_string(r.profile.ddr.hits.hint_activates),
               std::to_string(r.profile.ddr.commands.activates)});
  }
  t.print(std::cout);

  std::cout << "\nexpected shape: the full AHB+ feature set (hints +"
               " pipelining) finishes the\nworkload fastest; stripping either"
               " mechanism costs cycles (paper §2's rationale).\n";
  const bool ok = cycles_ahbp <= cycles_plain;
  std::cout << "\nRESULT: " << (ok ? "OK" : "FAIL") << " (AHB+ " << cycles_ahbp
            << " cycles <= plain AHB " << cycles_plain << ")\n";
  return ok ? 0 : 1;
}
