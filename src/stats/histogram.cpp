#include "stats/histogram.hpp"

#include <bit>

namespace ahbp::stats {

Log2Histogram::Log2Histogram() : counts_(64, 0) {}

void Log2Histogram::add(std::uint64_t v) noexcept {
  const unsigned k = v < 2 ? 0 : static_cast<unsigned>(std::bit_width(v) - 1);
  counts_[k < counts_.size() ? k : counts_.size() - 1] += 1;
  ++total_;
  summary_.add(v);
}

std::uint64_t Log2Histogram::bucket(unsigned k) const noexcept {
  return k < counts_.size() ? counts_[k] : 0;
}

std::uint64_t Log2Histogram::percentile_upper(double pct) const noexcept {
  if (total_ == 0) {
    return 0;
  }
  const double target = pct / 100.0 * static_cast<double>(total_);
  std::uint64_t cum = 0;
  for (unsigned k = 0; k < counts_.size(); ++k) {
    cum += counts_[k];
    if (static_cast<double>(cum) >= target) {
      return k == 0 ? 1 : (std::uint64_t{1} << (k + 1)) - 1;
    }
  }
  return summary_.max();
}

}  // namespace ahbp::stats
