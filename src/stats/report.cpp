#include "stats/report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "obs/stall.hpp"

namespace ahbp::stats {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](char fill) {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, fill) << '+';
    }
    os << '\n';
  };
  auto row_out = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(width[c])) << std::right
         << row[c] << " |";
    }
    os << '\n';
  };
  line('-');
  row_out(headers_);
  line('=');
  for (const auto& row : rows_) {
    row_out(row);
  }
  line('-');
}

void TextTable::print_csv(std::ostream& os) const {
  auto csv_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) {
        os << ',';
      }
      os << row[c];
    }
    os << '\n';
  };
  csv_row(headers_);
  for (const auto& row : rows_) {
    csv_row(row);
  }
}

std::string fmt_double(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + "%";
}

void print_report(std::ostream& os, const RunProfile& p,
                  const std::string& title) {
  os << "=== " << title << " ===\n";
  os << "cycles: " << p.total_cycles << "  completed txns: " << p.completed_txns
     << "\n\n";

  TextTable masters({"master", "reads", "writes", "rd bytes", "wr bytes",
                     "buffered", "wait avg", "wait max", "lat avg", "lat max",
                     "qos miss"});
  for (const MasterProfile& m : p.masters) {
    masters.add_row({m.name, std::to_string(m.reads), std::to_string(m.writes),
                     std::to_string(m.bytes_read),
                     std::to_string(m.bytes_written),
                     std::to_string(m.buffered_writes),
                     fmt_double(m.grant_wait.summary().mean()),
                     std::to_string(m.grant_wait.summary().max()),
                     fmt_double(m.latency.summary().mean()),
                     std::to_string(m.latency.summary().max()),
                     std::to_string(m.qos_misses)});
  }
  masters.print(os);

  // Stall attribution: where each master's cycles went.  Classes are
  // mutually exclusive per cycle, so the row sums to the cycles the master
  // was simulated for.  Omitted entirely when nothing was attributed (e.g.
  // hand-built profiles in tests).
  bool any_stalls = false;
  for (const MasterProfile& m : p.masters) {
    any_stalls = any_stalls || m.stalls.total() > 0;
  }
  if (any_stalls) {
    std::vector<std::string> headers{"master"};
    for (unsigned c = 0; c < obs::kStallClassCount; ++c) {
      headers.emplace_back(obs::to_string(static_cast<obs::StallClass>(c)));
    }
    headers.emplace_back("total");
    TextTable stalls(std::move(headers));
    for (const MasterProfile& m : p.masters) {
      std::vector<std::string> row{m.name};
      for (unsigned c = 0; c < obs::kStallClassCount; ++c) {
        row.push_back(std::to_string(m.stalls.cycles[c]));
      }
      row.push_back(std::to_string(m.stalls.total()));
      stalls.add_row(std::move(row));
    }
    os << "\nstall attribution (cycles):\n";
    stalls.print(os);
  }

  os << "\nbus: utilization " << fmt_percent(p.bus.utilization())
     << "  contention " << fmt_percent(p.bus.contention()) << "  throughput "
     << fmt_double(p.bus.throughput()) << " B/cyc  grants " << p.bus.grants
     << "  handovers " << p.bus.handovers << "\n";

  os << "write buffer: absorbed " << p.write_buffer.absorbed << "  drained "
     << p.write_buffer.drained << "  bypassed " << p.write_buffer.bypassed
     << "  full-stalls " << p.write_buffer.full_stalls << "  occupancy avg "
     << fmt_double(p.write_buffer.occupancy.mean()) << "\n";

  os << "ddr: ACT " << p.ddr.commands.activates << "  RD "
     << p.ddr.commands.reads << "  WR " << p.ddr.commands.writes << "  PRE "
     << p.ddr.commands.precharges << "  REF " << p.ddr.commands.refreshes
     << "  row-hit " << fmt_percent(p.ddr.row_hit_rate()) << "  hintACT "
     << p.ddr.hits.hint_activates << "\n";

  if (!p.violation_rules.empty()) {
    os << "violations by rule:";
    for (const auto& [rule, count] : p.violation_rules) {
      os << "  " << rule << " x" << count;
    }
    os << "\n";
  }
}

void print_csv(std::ostream& os, const RunProfile& p) {
  TextTable t({"entity", "metric", "value"});
  t.add_row({"run", "cycles", std::to_string(p.total_cycles)});
  t.add_row({"run", "txns", std::to_string(p.completed_txns)});
  t.add_row({"bus", "utilization", fmt_double(p.bus.utilization(), 6)});
  t.add_row({"bus", "contention", fmt_double(p.bus.contention(), 6)});
  t.add_row({"bus", "throughput", fmt_double(p.bus.throughput(), 6)});
  t.add_row({"bus", "grants", std::to_string(p.bus.grants)});
  t.add_row({"bus", "handovers", std::to_string(p.bus.handovers)});
  for (std::size_t i = 0; i < p.masters.size(); ++i) {
    const MasterProfile& m = p.masters[i];
    const std::string id = "master" + std::to_string(i);
    t.add_row({id, "reads", std::to_string(m.reads)});
    t.add_row({id, "writes", std::to_string(m.writes)});
    t.add_row({id, "lat_avg", fmt_double(m.latency.summary().mean(), 4)});
    t.add_row({id, "lat_max", std::to_string(m.latency.summary().max())});
    t.add_row({id, "qos_misses", std::to_string(m.qos_misses)});
    for (unsigned c = 0; c < obs::kStallClassCount; ++c) {
      t.add_row({id,
                 "stall_" + std::string(obs::to_string(
                                static_cast<obs::StallClass>(c))),
                 std::to_string(m.stalls.cycles[c])});
    }
  }
  t.add_row({"wbuf", "absorbed", std::to_string(p.write_buffer.absorbed)});
  t.add_row({"wbuf", "drained", std::to_string(p.write_buffer.drained)});
  t.add_row({"ddr", "activates", std::to_string(p.ddr.commands.activates)});
  t.add_row({"ddr", "row_hit_rate", fmt_double(p.ddr.row_hit_rate(), 6)});
  for (const auto& [rule, count] : p.violation_rules) {
    t.add_row({"violation", rule, std::to_string(count)});
  }
  t.print_csv(os);
}

}  // namespace ahbp::stats
