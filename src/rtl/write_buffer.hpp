#pragma once

#include <optional>
#include <vector>

#include "ahb/address.hpp"
#include "ahb/config.hpp"
#include "ahb/transaction.hpp"
#include "rtl/signals.hpp"
#include "sim/event_kernel.hpp"
#include "tlm/write_buffer.hpp"

/// \file write_buffer.hpp
/// Pin-level AHB+ write buffer.
///
/// Wraps the shared tlm::WriteBuffer FIFO (identical capacity/ordering/
/// hazard semantics in both models) with the signal-level machinery the
/// paper's RTL design needs:
///
///  * absorption is a handshake — the arbiter reserves space and pulses
///    wbuf_take[m]; the master then streams its write data over its private
///    column at one beat per cycle into a per-master staging slot; the
///    filled transaction enters the FIFO.  (The TLM absorbs a whole
///    transaction in one cycle — a deliberate §3.3 abstraction; this data
///    streaming is part of the accuracy gap Table 1 measures.)
///  * draining is a real bus transfer: when granted as pseudo-master the
///    buffer drives address/data phases from its own wire column.

namespace ahbp::rtl {

class RtlWriteBuffer {
 public:
  RtlWriteBuffer(sim::EventKernel& kernel, const ahb::BusConfig& cfg,
                 unsigned masters, SharedWires& shared, MasterWires& column,
                 std::vector<MasterWires*> master_wires,
                 const sim::Cycle* now);

  RtlWriteBuffer(const RtlWriteBuffer&) = delete;
  RtlWriteBuffer& operator=(const RtlWriteBuffer&) = delete;

  void bind_clock(sim::Signal<bool>& clk);

  // ---- arbiter-facing interface (called within the same edge, after the
  //      arbiter's own process — ordering fixed by subscription order) ----

  /// Space check counting both FIFO entries and reserved staging slots.
  bool can_reserve() const noexcept;

  /// Reserve a slot for master m's transaction (data streams in later).
  void reserve(unsigned m, const ahb::Transaction& skeleton);

  /// Any buffered or staged write overlapping [lo, hi)?
  bool overlaps(ahb::Addr lo, ahb::Addr hi) const noexcept;

  /// Pseudo-master request: an *uncommitted* FIFO entry exists (entries
  /// already draining or promised to an outstanding grant do not count).
  /// Grants therefore pipeline: the next drain can be granted while the
  /// current one still streams, exactly like the TLM's drain pipelining.
  bool drain_requesting() const noexcept;

  /// FIFO entries already committed (draining now or owed to a grant).
  unsigned committed() const noexcept {
    return (drain_active_ ? 1U : 0U) + owed_;
  }

  /// The arbiter granted the buffer: a drain is owed.  Cleared when the
  /// drain transfer starts.
  void note_grant() noexcept { ++owed_; }

  bool urgent() const noexcept { return fifo_.urgent() || staging_full(); }
  void flag_hazard() noexcept { fifo_.flag_hazard(); }
  void clear_hazard_if_unneeded(bool still) noexcept {
    fifo_.clear_hazard_if_unneeded(still);
  }

  bool draining() const noexcept { return drain_active_; }
  const ahb::Transaction& drain_front() const { return fifo_.front(); }

  const tlm::WriteBuffer& fifo() const noexcept { return fifo_; }
  tlm::WriteBuffer& fifo() noexcept { return fifo_; }

  std::uint64_t drained() const noexcept { return fifo_.profile().drained; }

  /// FIFO + per-master staging slots + drain-transfer registers.
  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);

 private:
  struct Staging {
    ahb::Transaction txn;
    unsigned filled = 0;
  };

  void at_edge();
  void capture_streams(sim::Cycle now);
  void drain_fsm(sim::Cycle now);
  bool staging_full() const noexcept;

  const ahb::BusConfig& cfg_;
  unsigned masters_;
  SharedWires& sh_;
  MasterWires& col_;  ///< the write buffer's own bus column
  std::vector<MasterWires*> mw_;
  const sim::Cycle* now_;
  tlm::WriteBuffer fifo_;
  std::vector<std::optional<Staging>> staging_;
  unsigned reserved_ = 0;
  sim::Process proc_;

  // Drain transfer state (mirrors a master's kTransfer).
  bool drain_active_ = false;
  unsigned owed_ = 0;  ///< grants received, drains not yet started
  ahb::Transaction drain_txn_;
  unsigned drain_addr_accepted_ = 0;
  unsigned drain_data_done_ = 0;
};

}  // namespace ahbp::rtl
