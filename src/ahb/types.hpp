#pragma once

#include <cstdint>
#include <string_view>

/// \file types.hpp
/// Core AMBA 2.0 AHB protocol types shared by every model in the library.
///
/// Names follow the AMBA 2.0 specification (HTRANS, HBURST, HSIZE, HRESP)
/// so the signal-level model's ports read like the original spec, and the
/// TLM's transaction descriptors map one-to-one onto them — the mapping the
/// paper's §3.1 calls "re-definition of protocol in transaction-level".

namespace ahbp::ahb {

/// Bus address type (AHB is a 32-bit bus; we keep 64 for headroom).
using Addr = std::uint64_t;

/// One data beat as carried on HWDATA/HRDATA (up to 64-bit bus width).
using Word = std::uint64_t;

/// Master identifier (index into the platform's master table).
using MasterId = std::uint8_t;

/// Sentinel: no master (e.g. HMASTER when the bus is parked idle).
inline constexpr MasterId kNoMaster = 0xFF;

/// HTRANS[1:0] — transfer type of the current address phase.
enum class Trans : std::uint8_t {
  kIdle = 0,    ///< no transfer
  kBusy = 1,    ///< master inserted a busy cycle mid-burst
  kNonSeq = 2,  ///< first transfer of a burst (or single)
  kSeq = 3,     ///< subsequent transfer of a burst
};

/// HBURST[2:0] — burst kind.
enum class Burst : std::uint8_t {
  kSingle = 0,
  kIncr = 1,    ///< undefined-length incrementing
  kWrap4 = 2,
  kIncr4 = 3,
  kWrap8 = 4,
  kIncr8 = 5,
  kWrap16 = 6,
  kIncr16 = 7,
};

/// HSIZE[2:0] — transfer size, encoded as log2(bytes per beat).
enum class Size : std::uint8_t {
  kByte = 0,      ///< 8-bit
  kHalf = 1,      ///< 16-bit
  kWord = 2,      ///< 32-bit
  kDword = 3,     ///< 64-bit
};

/// HRESP[1:0] — slave response.
enum class Resp : std::uint8_t {
  kOkay = 0,
  kError = 1,
  kRetry = 2,
  kSplit = 3,
};

/// Transfer direction (HWRITE).
enum class Dir : std::uint8_t {
  kRead = 0,
  kWrite = 1,
};

/// Fixed beat count of a burst kind; 0 means undefined length (INCR).
constexpr unsigned burst_fixed_beats(Burst b) noexcept {
  switch (b) {
    case Burst::kSingle: return 1;
    case Burst::kIncr: return 0;
    case Burst::kWrap4:
    case Burst::kIncr4: return 4;
    case Burst::kWrap8:
    case Burst::kIncr8: return 8;
    case Burst::kWrap16:
    case Burst::kIncr16: return 16;
  }
  return 1;
}

/// True for wrapping burst kinds.
constexpr bool burst_wraps(Burst b) noexcept {
  return b == Burst::kWrap4 || b == Burst::kWrap8 || b == Burst::kWrap16;
}

/// Bytes moved per beat for a transfer size.
constexpr unsigned size_bytes(Size s) noexcept {
  return 1U << static_cast<unsigned>(s);
}

/// True when `bytes` is a beat width HSIZE can encode on a bus up to 64 bit
/// wide: a power of two in {1, 2, 4, 8}.  This is also the validity rule for
/// `BusConfig::data_width_bytes` (a 3-byte beat has no HSIZE encoding).
constexpr bool valid_beat_bytes(unsigned bytes) noexcept {
  return bytes == 1 || bytes == 2 || bytes == 4 || bytes == 8;
}

/// Inverse of size_bytes().  Pre: valid_beat_bytes(bytes) — callers must
/// validate first (the default case exists only to keep this constexpr;
/// invalid widths would otherwise silently decay to kWord).
constexpr Size size_for_bytes(unsigned bytes) noexcept {
  switch (bytes) {
    case 1: return Size::kByte;
    case 2: return Size::kHalf;
    case 8: return Size::kDword;
    default: return Size::kWord;
  }
}

/// Widest legal beat for moving `total_bytes` on a `bus_bytes`-wide bus:
/// a beat can never exceed the bus width, and a transfer smaller than the
/// bus occupies only its own lanes.  Pre: `total_bytes` is a power of two
/// and `bus_bytes` satisfies valid_beat_bytes().
constexpr unsigned beat_bytes_for(unsigned total_bytes,
                                  unsigned bus_bytes) noexcept {
  return total_bytes < bus_bytes ? total_bytes : bus_bytes;
}

/// Pick the burst kind matching `beats` beats of an incrementing burst.
/// Unmatched counts return kIncr (undefined length).
constexpr Burst incr_burst_for(unsigned beats) noexcept {
  switch (beats) {
    case 1: return Burst::kSingle;
    case 4: return Burst::kIncr4;
    case 8: return Burst::kIncr8;
    case 16: return Burst::kIncr16;
    default: return Burst::kIncr;
  }
}

std::string_view to_string(Trans t) noexcept;
std::string_view to_string(Burst b) noexcept;
std::string_view to_string(Size s) noexcept;
std::string_view to_string(Resp r) noexcept;
std::string_view to_string(Dir d) noexcept;

}  // namespace ahbp::ahb
