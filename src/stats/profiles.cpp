#include "stats/profiles.hpp"

#include <cstdio>

#include "obs/timeline.hpp"

namespace ahbp::stats {

namespace {

std::string txn_label(const ahb::Transaction& t, bool buffered) {
  char buf[48];
  const char* kind = t.dir == ahb::Dir::kRead ? "rd"
                     : buffered               ? "wr(buf)"
                                              : "wr";
  std::snprintf(buf, sizeof(buf), "%s@0x%llx x%u", kind,
                static_cast<unsigned long long>(t.addr), t.beats);
  return buf;
}

}  // namespace

void MasterProfile::record(const ahb::Transaction& t, bool buffered) {
  if (t.dir == ahb::Dir::kRead) {
    ++reads;
    bytes_read += t.bytes();
  } else {
    ++writes;
    bytes_written += t.bytes();
    if (buffered) {
      ++buffered_writes;
    }
  }
  grant_wait.add(t.wait());
  latency.add(t.latency());
  if (timeline != nullptr) {
    if (buffered) {
      // Posted write: the master observes instant completion; the drain
      // shows up later on the bus/write-buffer tracks.
      timeline->instant(timeline_track, t.granted_at, txn_label(t, true));
    } else {
      if (t.granted_at > t.issued_at) {
        timeline->begin(timeline_track, t.issued_at, "wait");
        timeline->end(timeline_track, t.granted_at);
      }
      timeline->begin(timeline_track, t.granted_at, txn_label(t, false));
      timeline->end(timeline_track, t.finished_at);
    }
  }
}

void BusProfile::sample(unsigned requesters, bool busy, unsigned moved_bytes) {
  ++cycles;
  if (busy) {
    ++busy_cycles;
  }
  if (requesters > 1) {
    ++contention_cycles;
  }
  if (requesters >= 1 && !busy) {
    ++wait_cycles;
  }
  bytes += moved_bytes;
}

void MasterProfile::save_state(state::StateWriter& w) const {
  // `name` is configuration (assigned at platform assembly), not state.
  w.put_u64(reads);
  w.put_u64(writes);
  w.put_u64(bytes_read);
  w.put_u64(bytes_written);
  w.put_u64(buffered_writes);
  grant_wait.save_state(w);
  latency.save_state(w);
  w.put_u64(qos_misses);
  stalls.save_state(w);
}

void MasterProfile::restore_state(state::StateReader& r) {
  reads = r.get_u64();
  writes = r.get_u64();
  bytes_read = r.get_u64();
  bytes_written = r.get_u64();
  buffered_writes = r.get_u64();
  grant_wait.restore_state(r);
  latency.restore_state(r);
  qos_misses = r.get_u64();
  stalls.restore_state(r);
}

void BusProfile::save_state(state::StateWriter& w) const {
  w.put_u64(cycles);
  w.put_u64(busy_cycles);
  w.put_u64(contention_cycles);
  w.put_u64(wait_cycles);
  w.put_u64(grants);
  w.put_u64(handovers);
  w.put_u64(bytes);
}

void BusProfile::restore_state(state::StateReader& r) {
  cycles = r.get_u64();
  busy_cycles = r.get_u64();
  contention_cycles = r.get_u64();
  wait_cycles = r.get_u64();
  grants = r.get_u64();
  handovers = r.get_u64();
  bytes = r.get_u64();
}

void WriteBufferProfile::save_state(state::StateWriter& w) const {
  w.put_u64(absorbed);
  w.put_u64(drained);
  w.put_u64(bypassed);
  w.put_u64(full_stalls);
  w.put_u64(forwards);
  occupancy.save_state(w);
}

void WriteBufferProfile::restore_state(state::StateReader& r) {
  absorbed = r.get_u64();
  drained = r.get_u64();
  bypassed = r.get_u64();
  full_stalls = r.get_u64();
  forwards = r.get_u64();
  occupancy.restore_state(r);
}

}  // namespace ahbp::stats
