// The QoS theorem behind the paper's §2 claim, tested as a property across
// seeds and load levels: with the full AHB+ filter chain, a real-time
// master's request-to-grant wait is bounded by
//
//     objective + (longest possible bus occupancy ahead of it) + pipeline
//
// regardless of what the non-real-time masters do.  The bound below uses
// the longest transfer in flight (16 beats + DDR worst case row cycle) and
// the grant pipeline depth.  Plain fixed-priority arbitration violates the
// bound under the same loads (checked as the negative control).

#include <gtest/gtest.h>

#include <tuple>

#include "core/platform.hpp"
#include "core/workloads.hpp"

namespace {

using namespace ahbp;
using namespace ahbp::core;

PlatformConfig rt_under_load(unsigned hogs, std::uint64_t seed,
                             unsigned items, std::uint32_t objective) {
  PlatformConfig cfg = default_platform(1 + hogs, seed, items);
  cfg.masters[0].qos = {ahb::MasterClass::kRealTime, objective};
  cfg.masters[0].traffic.kind = traffic::PatternKind::kRtStream;
  cfg.masters[0].traffic.period = 32;
  for (unsigned m = 1; m <= hogs; ++m) {
    cfg.masters[m].traffic.kind = traffic::PatternKind::kDma;
    cfg.masters[m].traffic.dma_burst_beats = 16;
  }
  return cfg;
}

/// Worst bus occupancy that can sit ahead of an urgent RT master: one
/// maximal transfer (16 beats) through a full DDR row cycle plus the
/// write-buffer drain the arbiter may have committed to, plus the grant
/// pipeline.  Deliberately generous — the property is "bounded", not
/// "tight".
sim::Cycle qos_bound(const PlatformConfig& cfg) {
  const auto& t = cfg.timing;
  const sim::Cycle row_cycle = t.tRP + t.tRCD + t.tCL + 16 + t.tWR;
  const sim::Cycle refresh = t.tREFI ? t.tRFC + t.tRP : 0;
  return cfg.masters[0].qos.objective + 2 * row_cycle + refresh +
         cfg.bus.tlm_grant_to_start + 8;
}

class QosBoundSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, std::uint64_t>> {};

TEST_P(QosBoundSweep, RtWaitBoundedWithFullChain) {
  const auto [hogs, seed] = GetParam();
  PlatformConfig cfg = rt_under_load(hogs, seed, 60, 48);
  const SimResult r = run_tlm(cfg);
  ASSERT_TRUE(r.finished);
  ASSERT_EQ(r.protocol_errors, 0u);
  const auto max_wait = r.profile.masters[0].grant_wait.summary().max();
  EXPECT_LE(max_wait, qos_bound(cfg))
      << "hogs=" << hogs << " seed=" << seed;
}

TEST_P(QosBoundSweep, RtWaitBoundedOnRtlToo) {
  const auto [hogs, seed] = GetParam();
  PlatformConfig cfg = rt_under_load(hogs, seed, 40, 48);
  const SimResult r = run_rtl(cfg);
  ASSERT_TRUE(r.finished);
  ASSERT_EQ(r.protocol_errors, 0u);
  const auto max_wait = r.profile.masters[0].grant_wait.summary().max();
  // The signal-level fabric adds a few handshake cycles on top.
  EXPECT_LE(max_wait, qos_bound(cfg) + 8)
      << "hogs=" << hogs << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    LoadsAndSeeds, QosBoundSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(3ull, 29ull, 404ull)));

TEST(QosBound, NegativeControlFixedPriorityViolates) {
  // Same heaviest load, QoS stages stripped, RT master demoted to the
  // lowest fixed priority: the bound must break (otherwise the property
  // test above proves nothing).
  PlatformConfig cfg = default_platform(4, 29, 60);
  cfg.masters[3].qos = {ahb::MasterClass::kRealTime, 48};
  cfg.masters[3].traffic.kind = traffic::PatternKind::kRtStream;
  cfg.masters[3].traffic.period = 32;
  for (unsigned m = 0; m < 3; ++m) {
    cfg.masters[m].traffic.kind = traffic::PatternKind::kDma;
    cfg.masters[m].traffic.dma_burst_beats = 16;
  }
  cfg.bus.filter_mask = ahb::with_filter(
      ahb::with_filter(
          ahb::with_filter(ahb::kAllFilters, ahb::FilterBit::kUrgency, false),
          ahb::FilterBit::kQosBudget, false),
      ahb::FilterBit::kRoundRobin, false);
  const SimResult r = run_tlm(cfg);
  ASSERT_TRUE(r.finished);
  const auto max_wait = r.profile.masters[3].grant_wait.summary().max();
  EXPECT_GT(max_wait, qos_bound(cfg))
      << "stripped arbitration unexpectedly met the QoS bound";
}

TEST(QosBound, ObjectiveScalesTheBound) {
  // A tighter objective gives tighter service (monotonicity of the
  // guarantee knob).
  PlatformConfig tight = rt_under_load(3, 7, 60, 24);
  PlatformConfig loose = rt_under_load(3, 7, 60, 96);
  const auto rt_tight = run_tlm(tight).profile.masters[0];
  const auto rt_loose = run_tlm(loose).profile.masters[0];
  EXPECT_LE(rt_tight.grant_wait.percentile_upper(99),
            rt_loose.grant_wait.percentile_upper(99) + 63)
      << "tightening the objective must not worsen tail service";
}

}  // namespace
