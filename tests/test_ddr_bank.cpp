// The per-bank FSM and rank-level BankEngine: every JEDEC-style interval
// rule (tRCD/tRP/tRAS/tRC/tRRD/tCCD), the shared data bus, and refresh.

#include <gtest/gtest.h>

#include "ddr/bank.hpp"

namespace {

using namespace ahbp::ddr;
using ahbp::sim::Cycle;

Geometry geom4() {
  Geometry g;
  g.banks = 4;
  g.rows = 64;
  g.cols = 32;
  g.col_bytes = 4;
  return g;
}

// toy_timing: tRCD=2 tRP=2 tRAS=4 tRC=6 tRRD=1 tCL=2 tWL=1 tWR=2 tCCD=1.

TEST(BankEngine, ActivateThenColumnAfterTrcd) {
  BankEngine e(toy_timing(), geom4());
  Command act{CmdKind::kActivate, 0, 5, 0, 0};
  ASSERT_TRUE(e.can_issue(act, 10));
  e.issue(act, 10);
  Command rd{CmdKind::kRead, 0, 5, 0, 4};
  EXPECT_FALSE(e.can_issue(rd, 10));
  EXPECT_FALSE(e.can_issue(rd, 11));
  EXPECT_TRUE(e.can_issue(rd, 12));  // tRCD = 2
}

TEST(BankEngine, ColumnToWrongRowIllegal) {
  BankEngine e(toy_timing(), geom4());
  e.issue(Command{CmdKind::kActivate, 0, 5, 0, 0}, 0);
  Command rd{CmdKind::kRead, 0, 6, 0, 4};
  EXPECT_FALSE(e.can_issue(rd, 10));
}

TEST(BankEngine, ActivateOnOpenBankIllegal) {
  BankEngine e(toy_timing(), geom4());
  e.issue(Command{CmdKind::kActivate, 0, 5, 0, 0}, 0);
  EXPECT_FALSE(e.can_issue(Command{CmdKind::kActivate, 0, 6, 0, 0}, 20));
}

TEST(BankEngine, PrechargeNeedsTras) {
  BankEngine e(toy_timing(), geom4());
  e.issue(Command{CmdKind::kActivate, 0, 5, 0, 0}, 10);
  Command pre{CmdKind::kPrecharge, 0, 0, 0, 0};
  EXPECT_FALSE(e.can_issue(pre, 12));
  EXPECT_FALSE(e.can_issue(pre, 13));
  EXPECT_TRUE(e.can_issue(pre, 14));  // tRAS = 4
}

TEST(BankEngine, ReactivateNeedsTrpAndTrc) {
  BankEngine e(toy_timing(), geom4());
  e.issue(Command{CmdKind::kActivate, 0, 5, 0, 0}, 0);
  e.issue(Command{CmdKind::kPrecharge, 0, 0, 0, 0}, 4);
  Command act{CmdKind::kActivate, 0, 7, 0, 0};
  EXPECT_FALSE(e.can_issue(act, 5));  // tRP not elapsed (ready at 6)
  // tRC from cycle 0 means next activate >= 6 too.
  EXPECT_TRUE(e.can_issue(act, 6));
}

TEST(BankEngine, TrrdBetweenBanks) {
  DdrTiming t = toy_timing();
  t.tRRD = 3;
  BankEngine e(t, geom4());
  e.issue(Command{CmdKind::kActivate, 0, 1, 0, 0}, 10);
  Command act1{CmdKind::kActivate, 1, 1, 0, 0};
  EXPECT_FALSE(e.can_issue(act1, 11));
  EXPECT_FALSE(e.can_issue(act1, 12));
  EXPECT_TRUE(e.can_issue(act1, 13));
}

TEST(BankEngine, TccdBetweenColumns) {
  DdrTiming t = toy_timing();
  t.tCCD = 2;
  BankEngine e(t, geom4());
  e.issue(Command{CmdKind::kActivate, 0, 1, 0, 0}, 0);
  e.issue(Command{CmdKind::kActivate, 1, 1, 0, 0}, 1);
  e.issue(Command{CmdKind::kRead, 0, 1, 0, 1}, 3);
  Command rd{CmdKind::kRead, 1, 1, 0, 1};
  EXPECT_FALSE(e.can_issue(rd, 4));
  // tCCD=2 satisfied at 5, and the 1-beat data bus is free by then too.
  EXPECT_TRUE(e.can_issue(rd, 5));
}

TEST(BankEngine, DataBusNoOverlap) {
  BankEngine e(toy_timing(), geom4());
  e.issue(Command{CmdKind::kActivate, 0, 1, 0, 0}, 0);
  e.issue(Command{CmdKind::kActivate, 1, 1, 0, 0}, 1);
  // 8-beat read at t=2: data occupies [4, 12) (tCL=2).
  const Cycle first = e.issue(Command{CmdKind::kRead, 0, 1, 0, 8}, 2);
  EXPECT_EQ(first, 4u);
  EXPECT_EQ(e.data_bus_free_at(), 12u);
  // A read on the other bank whose data would start before 12 must wait.
  Command rd{CmdKind::kRead, 1, 1, 0, 4};
  EXPECT_FALSE(e.can_issue(rd, 8));  // data would start at 10 < 12
  EXPECT_TRUE(e.can_issue(rd, 10));  // data starts at 12: ok
}

TEST(BankEngine, WriteRecoveryBeforePrecharge) {
  BankEngine e(toy_timing(), geom4());
  e.issue(Command{CmdKind::kActivate, 0, 1, 0, 0}, 0);
  // write at 2 (tWL=1): beats at 3,4; tWR=2 -> precharge >= 5+2 = 7
  e.issue(Command{CmdKind::kWrite, 0, 1, 0, 2}, 2);
  Command pre{CmdKind::kPrecharge, 0, 0, 0, 0};
  EXPECT_FALSE(e.can_issue(pre, 6));
  EXPECT_TRUE(e.can_issue(pre, 7));
}

TEST(BankEngine, OneCommandPerCycle) {
  BankEngine e(toy_timing(), geom4());
  e.issue(Command{CmdKind::kActivate, 0, 1, 0, 0}, 5);
  EXPECT_FALSE(e.can_issue(Command{CmdKind::kActivate, 1, 1, 0, 0}, 5));
  EXPECT_TRUE(e.can_issue(Command{CmdKind::kActivate, 1, 1, 0, 0}, 6));
}

TEST(BankEngine, IllegalIssueThrows) {
  BankEngine e(toy_timing(), geom4());
  EXPECT_THROW(e.issue(Command{CmdKind::kRead, 0, 1, 0, 4}, 0),
               std::logic_error);
}

TEST(BankEngine, BankStateProgression) {
  BankEngine e(toy_timing(), geom4());
  EXPECT_EQ(e.bank_state(0, 0), BankState::kIdle);
  e.issue(Command{CmdKind::kActivate, 0, 9, 0, 0}, 0);
  EXPECT_EQ(e.bank_state(0, 1), BankState::kActivating);
  EXPECT_EQ(e.bank_state(0, 2), BankState::kActive);
  EXPECT_EQ(e.open_row(0), 9u);
  e.issue(Command{CmdKind::kPrecharge, 0, 0, 0, 0}, 4);
  EXPECT_EQ(e.bank_state(0, 5), BankState::kPrecharging);
  EXPECT_EQ(e.bank_state(0, 6), BankState::kIdle);
}

TEST(BankEngine, IdleMaskTracksBanks) {
  BankEngine e(toy_timing(), geom4());
  EXPECT_EQ(e.idle_bank_mask(0), 0xFu);
  e.issue(Command{CmdKind::kActivate, 2, 1, 0, 0}, 0);
  EXPECT_EQ(e.idle_bank_mask(1), 0xFu & ~(1u << 2));
}

TEST(BankEngine, EarliestColumnEstimates) {
  BankEngine e(toy_timing(), geom4());
  // Closed bank: activate + tRCD.
  EXPECT_EQ(e.earliest_column(Coord{0, 3, 0}, 10), 12u);
  e.issue(Command{CmdKind::kActivate, 0, 3, 0, 0}, 10);
  // Matching open row: ready when tRCD elapses.
  EXPECT_EQ(e.earliest_column(Coord{0, 3, 0}, 11), 12u);
  // Row conflict: precharge (>= tRAS at 14) + tRP + tRCD.
  EXPECT_EQ(e.earliest_column(Coord{0, 4, 0}, 11), 14u + 2 + 2);
}

TEST(BankEngine, RefreshNeedsAllBanksIdle) {
  DdrTiming t = toy_timing();
  t.tREFI = 100;
  t.tRFC = 8;
  BankEngine e(t, geom4());
  e.issue(Command{CmdKind::kActivate, 0, 1, 0, 0}, 0);
  EXPECT_FALSE(e.refresh_due(50));
  EXPECT_TRUE(e.refresh_due(100));
  EXPECT_FALSE(e.can_refresh(100));  // bank 0 open
  e.issue(Command{CmdKind::kPrecharge, 0, 0, 0, 0}, 100);
  EXPECT_FALSE(e.can_refresh(101));  // still precharging
  EXPECT_TRUE(e.can_refresh(102));
  e.issue(Command{CmdKind::kRefresh, 0, 0, 0, 0}, 102);
  EXPECT_TRUE(e.in_refresh(105));
  EXPECT_FALSE(e.in_refresh(110));
  // All banks blocked during tRFC.
  EXPECT_FALSE(e.can_issue(Command{CmdKind::kActivate, 1, 1, 0, 0}, 105));
  EXPECT_TRUE(e.can_issue(Command{CmdKind::kActivate, 1, 1, 0, 0}, 110));
}

TEST(BankEngine, CountersTrackCommands) {
  BankEngine e(toy_timing(), geom4());
  e.issue(Command{CmdKind::kActivate, 0, 1, 0, 0}, 0);
  e.issue(Command{CmdKind::kRead, 0, 1, 0, 4}, 2);
  e.issue(Command{CmdKind::kWrite, 0, 1, 4, 2}, 8);
  e.issue(Command{CmdKind::kPrecharge, 0, 0, 0, 0}, 13);
  EXPECT_EQ(e.counters().activates, 1u);
  EXPECT_EQ(e.counters().reads, 1u);
  EXPECT_EQ(e.counters().writes, 1u);
  EXPECT_EQ(e.counters().precharges, 1u);
  EXPECT_EQ(e.counters().read_beats, 4u);
  EXPECT_EQ(e.counters().write_beats, 2u);
}

TEST(BankEngine, BadTimingRejectedAtConstruction) {
  DdrTiming t = toy_timing();
  t.tRC = 1;
  EXPECT_THROW(BankEngine(t, geom4()), std::invalid_argument);
}

TEST(BankEngine, NopAlwaysLegalAndFree) {
  BankEngine e(toy_timing(), geom4());
  e.issue(Command{CmdKind::kActivate, 0, 1, 0, 0}, 5);
  // NOP does not consume the one-command-per-cycle slot.
  EXPECT_TRUE(e.can_issue(Command{}, 5));
  e.issue(Command{}, 5);
  EXPECT_FALSE(e.can_issue(Command{CmdKind::kActivate, 1, 1, 0, 0}, 5));
}

}  // namespace
