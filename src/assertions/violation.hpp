#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "state/snapshot.hpp"

/// \file violation.hpp
/// Recorded property violations — the second assertion family of §3.5:
/// "property checking ... very helpful especially when the bus model is
/// integrated with master models and simulated for performance analysis".
/// Property violations are *recorded*, not thrown: a QoS miss is a finding
/// about the simulated design, not a bug in the simulator.

namespace ahbp::chk {

enum class Severity : std::uint8_t {
  kWarning = 0,  ///< performance property (e.g. QoS objective missed)
  kError = 1,    ///< protocol rule broken (design/model integration bug)
};

struct Violation {
  Severity severity = Severity::kError;
  sim::Cycle cycle = 0;
  std::string rule;     ///< stable rule identifier, e.g. "ahb.seq-addr"
  std::string detail;   ///< human-readable specifics
};

/// Append-only violation log shared by all checkers of one model instance.
class ViolationLog {
 public:
  void record(Severity sev, sim::Cycle cycle, std::string rule,
              std::string detail);

  const std::vector<Violation>& all() const noexcept { return violations_; }
  std::size_t count() const noexcept { return violations_.size(); }
  std::size_t errors() const noexcept { return errors_; }
  std::size_t warnings() const noexcept { return violations_.size() - errors_; }

  /// Number of violations of one rule (exact match).
  std::size_t count_rule(std::string_view rule) const noexcept;

  /// All distinct rule ids with their counts, sorted by rule id — the
  /// aggregation the stats report and `--stats-json` surface.
  std::vector<std::pair<std::string, std::uint64_t>> rule_counts() const;

  /// Render the first `max` violations, one per line.
  std::string to_string(std::size_t max = 20) const;

  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);

 private:
  std::vector<Violation> violations_;
  std::size_t errors_ = 0;
};

}  // namespace ahbp::chk
