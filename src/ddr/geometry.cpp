#include "ddr/geometry.hpp"

namespace ahbp::ddr {

Coord Geometry::decode(ahb::Addr offset) const noexcept {
  const std::uint64_t word = (offset % capacity()) / col_bytes;
  Coord c;
  switch (mapping) {
    case Mapping::kRowBankCol: {
      c.col = static_cast<std::uint32_t>(word % cols);
      c.bank = static_cast<std::uint32_t>((word / cols) % banks);
      c.row = static_cast<std::uint32_t>(word / cols / banks % rows);
      break;
    }
    case Mapping::kBankRowCol: {
      c.col = static_cast<std::uint32_t>(word % cols);
      c.row = static_cast<std::uint32_t>((word / cols) % rows);
      c.bank = static_cast<std::uint32_t>(word / cols / rows % banks);
      break;
    }
  }
  return c;
}

ahb::Addr Geometry::encode(const Coord& c) const noexcept {
  std::uint64_t word = 0;
  switch (mapping) {
    case Mapping::kRowBankCol:
      word = (static_cast<std::uint64_t>(c.row) * banks + c.bank) * cols + c.col;
      break;
    case Mapping::kBankRowCol:
      word = (static_cast<std::uint64_t>(c.bank) * rows + c.row) * cols + c.col;
      break;
  }
  return word * col_bytes;
}

}  // namespace ahbp::ddr
