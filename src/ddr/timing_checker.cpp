#include "ddr/timing_checker.hpp"

#include <algorithm>
#include <utility>

namespace ahbp::ddr {

TimingChecker::TimingChecker(const DdrTiming& timing, const Geometry& geom)
    : t_(timing), geom_(geom), banks_(geom.banks) {}

void TimingChecker::fail(const Command& cmd, sim::Cycle now,
                         std::string rule) {
  violations_.push_back(
      TimingViolation{now, cmd.kind, cmd.bank, std::move(rule)});
}

void TimingChecker::observe(const Command& cmd, sim::Cycle now) {
  if (cmd.kind == CmdKind::kNop) {
    return;
  }
  ++seen_;
  if (any_cmd_ && now == last_cmd_at_) {
    fail(cmd, now, "one-command-per-cycle");
  }
  if (now < refresh_until_) {
    fail(cmd, now, "tRFC");
  }
  if (cmd.kind != CmdKind::kRefresh && cmd.bank >= banks_.size()) {
    fail(cmd, now, "bank-index");
    return;
  }
  switch (cmd.kind) {
    case CmdKind::kActivate: {
      BankHist& b = banks_[cmd.bank];
      if (b.open) {
        fail(cmd, now, "activate-on-open-bank");
      }
      if (now < b.last_precharge_done) {
        fail(cmd, now, "tRP");
      }
      if (b.ever_activated && now < b.last_activate + t_.tRC) {
        fail(cmd, now, "tRC");
      }
      if (any_activate_ && now < last_activate_any_ + t_.tRRD) {
        fail(cmd, now, "tRRD");
      }
      b.open = true;
      b.row = cmd.row;
      b.last_activate = now;
      b.ever_activated = true;
      b.column_ok_at = now + t_.tRCD;
      b.precharge_ok_at = now + t_.tRAS;
      last_activate_any_ = now;
      any_activate_ = true;
      break;
    }
    case CmdKind::kRead:
    case CmdKind::kWrite: {
      BankHist& b = banks_[cmd.bank];
      if (!b.open) {
        fail(cmd, now, "column-on-closed-bank");
      } else if (b.row != cmd.row) {
        fail(cmd, now, "column-row-mismatch");
      }
      if (now < b.column_ok_at) {
        fail(cmd, now, "tRCD");
      }
      if (any_column_ && now < last_column_any_ + t_.tCCD) {
        fail(cmd, now, "tCCD");
      }
      if (cmd.beats == 0) {
        fail(cmd, now, "zero-beat-column");
      }
      const bool is_write = cmd.kind == CmdKind::kWrite;
      const sim::Cycle lat = is_write ? t_.tWL : t_.tCL;
      if (now + lat < data_busy_until_) {
        fail(cmd, now, "data-bus-overlap");
      }
      const sim::Cycle last_beat = now + lat + (cmd.beats ? cmd.beats - 1 : 0);
      data_busy_until_ = last_beat + 1;
      const sim::Cycle guard =
          is_write ? last_beat + 1 + t_.tWR : last_beat + 1;
      b.precharge_ok_at = std::max(b.precharge_ok_at, guard);
      last_column_any_ = now;
      any_column_ = true;
      break;
    }
    case CmdKind::kPrecharge: {
      BankHist& b = banks_[cmd.bank];
      if (!b.open) {
        fail(cmd, now, "precharge-on-closed-bank");
      }
      if (now < b.precharge_ok_at) {
        fail(cmd, now, "tRAS/tWR");
      }
      b.open = false;
      b.last_precharge_done = now + t_.tRP;
      break;
    }
    case CmdKind::kRefresh: {
      for (std::uint32_t i = 0; i < banks_.size(); ++i) {
        BankHist& b = banks_[i];
        if (b.open) {
          fail(cmd, now, "refresh-with-open-bank");
        }
        if (now < b.last_precharge_done) {
          fail(cmd, now, "refresh-before-tRP");
        }
        b.last_precharge_done =
            std::max(b.last_precharge_done, now + t_.tRFC);
        // tRC also applies across refresh; approximate by pushing the
        // activate window out with the refresh recovery.
        b.column_ok_at = std::max(b.column_ok_at, now + t_.tRFC);
      }
      refresh_until_ = now + t_.tRFC;
      break;
    }
    case CmdKind::kNop:
      break;
  }
  last_cmd_at_ = now;
  any_cmd_ = true;
}

}  // namespace ahbp::ddr
