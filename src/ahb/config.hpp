#pragma once

#include <cstdint>

#include "ahb/qos.hpp"
#include "ahb/types.hpp"

/// \file config.hpp
/// Structural parameters of the AHB+ bus (§3.7 "Flexibility and
/// Reusability": bus width, write buffer depth & on/off, arbitration
/// algorithm on/off, RT/NRT type, QoS value).

namespace ahbp::ahb {

/// Bitmask enabling individual arbitration filters (see tlm/arbiter.hpp for
/// the seven filters).  The paper states all seven are "always activated" in
/// the real design but exposes per-filter on/off as a model parameter — so
/// do we.
enum class FilterBit : std::uint8_t {
  kRequest = 0,
  kLock = 1,
  kUrgency = 2,
  kBank = 3,
  kQosBudget = 4,
  kRoundRobin = 5,
  kPriority = 6,
};

inline constexpr std::uint8_t kAllFilters = 0x7F;

constexpr bool filter_enabled(std::uint8_t mask, FilterBit f) noexcept {
  return ((static_cast<unsigned>(mask) >> static_cast<unsigned>(f)) & 1U) != 0;
}

constexpr std::uint8_t with_filter(std::uint8_t mask, FilterBit f,
                                   bool on) noexcept {
  const std::uint8_t bit = static_cast<std::uint8_t>(1U << static_cast<unsigned>(f));
  return on ? (mask | bit) : (mask & static_cast<std::uint8_t>(~bit));
}

/// Static configuration of the AHB+ bus fabric, shared by the TLM and the
/// signal-level model so both build identical topologies.
struct BusConfig {
  unsigned data_width_bytes = 4;   ///< HWDATA/HRDATA width (4 = AHB 32-bit)
  std::uint8_t filter_mask = kAllFilters;

  bool write_buffer_enabled = true;
  unsigned write_buffer_depth = 4; ///< entries (whole transactions)

  /// Request pipelining (§2): overlap arbitration of the next request with
  /// the current data phase.  Off forces grant-after-completion.
  bool request_pipelining = true;

  /// Bank interleaving via the BI next-transaction hint (§2, §3.4).
  bool bi_hints_enabled = true;

  /// Urgency threshold: an RT master becomes "urgent" when its slack drops
  /// below this many cycles (filter 3).
  std::uint32_t urgency_slack_threshold = 8;

  /// Write-buffer drain policy: buffer requests the bus when it holds at
  /// least `drain_watermark` entries, or unconditionally when the bus is
  /// idle.  Its urgency escalates when full.
  unsigned drain_watermark = 1;

  /// TLM timing calibration (§3.4 "we defined the timings of each
  /// transaction function"): cycles between the grant decision and the
  /// first address phase, modeling the registered HGRANT + mux handover +
  /// NONSEQ launch of the pin-level fabric.
  sim::Cycle tlm_grant_to_start = 3;
};

}  // namespace ahbp::ahb
